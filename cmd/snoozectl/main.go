// Command snoozectl is the CLI for the api/v1 control plane — the analogue
// of the paper's command line interface for VM management and "live
// visualizing and exporting of the hierarchy organization" (Section II-A).
// It speaks only the versioned typed client (api/v1/client), so it works
// identically against a live snoozed process and any other /v1 server.
//
// Usage:
//
//	snoozectl -server http://localhost:7001 gl
//	snoozectl -server http://localhost:7001 topology -deep
//	snoozectl -server http://localhost:7001 submit -n 4 -cpu 2 -mem 2048
//	snoozectl -server http://localhost:7001 vms
//	snoozectl -server http://localhost:7001 nodes
//	snoozectl -server http://localhost:7001 consolidate -algorithm aco
//	snoozectl -server http://localhost:7001 metrics
//	snoozectl -server http://localhost:7001 series
//	snoozectl -server http://localhost:7001 series -entity node/n1 -metric util -agg max -step 30s
//	snoozectl -server http://localhost:7001 watch -from 1
//	snoozectl -server http://localhost:7001 experiment e4
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	apiv1 "snooze/api/v1"
	apiclient "snooze/api/v1/client"
)

func main() {
	server := flag.String("server", "http://localhost:7001", "control process base URL")
	timeout := flag.Duration("timeout", 2*time.Minute, "request timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cli := apiclient.New(*server, apiclient.WithTimeout(*timeout))
	ctx := context.Background()

	switch args[0] {
	case "gl":
		topo, err := cli.Topology(ctx, false)
		fatalIf(err)
		fmt.Println(topo.GL)

	case "topology":
		fs := flag.NewFlagSet("topology", flag.ExitOnError)
		deep := fs.Bool("deep", false, "include per-LC detail (GL fans out to GMs)")
		fatalIf(fs.Parse(args[1:]))
		topo, err := cli.Topology(ctx, *deep)
		fatalIf(err)
		printTopology(topo)

	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		n := fs.Int("n", 1, "number of VMs")
		cpu := fs.Float64("cpu", 1, "CPU cores per VM")
		mem := fs.Float64("mem", 1024, "memory (MB) per VM")
		prefix := fs.String("prefix", "vm", "VM ID prefix")
		fatalIf(fs.Parse(args[1:]))
		specs := make([]apiv1.VMSpec, 0, *n)
		for i := 0; i < *n; i++ {
			specs = append(specs, apiv1.VMSpec{
				ID:        fmt.Sprintf("%s-%d-%d", *prefix, time.Now().UnixNano()%100000, i),
				Requested: apiv1.Resources{CPU: *cpu, MemoryMB: *mem, NetRxMbps: 10, NetTxMbps: 10},
			})
		}
		result, err := cli.SubmitVMs(ctx, specs)
		fatalIf(err)
		printJSON(result)

	case "vms":
		vms, err := cli.ListVMs(ctx)
		fatalIf(err)
		for _, vm := range vms {
			fmt.Printf("%-24s %-10s node=%-12s cpu=%.2f mem=%.0f\n",
				vm.ID, vm.State, vm.Node, vm.Requested.CPU, vm.Requested.MemoryMB)
		}
		fmt.Printf("%d VMs\n", len(vms))

	case "vm":
		if len(args) < 2 {
			usage()
		}
		vm, err := cli.GetVM(ctx, args[1])
		fatalIf(err)
		printJSON(vm)

	case "nodes":
		nodes, err := cli.ListNodes(ctx)
		fatalIf(err)
		for _, n := range nodes {
			fmt.Printf("%-14s %-10s %2d VMs  reserved cpu=%.2f/%.2f mem=%.0f/%.0f\n",
				n.ID, n.Power, len(n.VMs), n.Reserved.CPU, n.Capacity.CPU, n.Reserved.MemoryMB, n.Capacity.MemoryMB)
		}
		fmt.Printf("%d nodes\n", len(nodes))

	case "node":
		if len(args) < 2 {
			usage()
		}
		node, err := cli.GetNode(ctx, args[1])
		fatalIf(err)
		printJSON(node)

	case "fail":
		if len(args) < 2 {
			usage()
		}
		fatalIf(cli.FailNode(ctx, args[1]))
		fmt.Printf("node %s failed\n", args[1])

	case "consolidate":
		// "consolidate status|start|stop" controls the online optimizer;
		// anything else computes a dry-run plan.
		if len(args) > 1 {
			var call func(context.Context) (apiv1.ConsolidationStatusList, error)
			switch args[1] {
			case "status":
				call = cli.ConsolidationStatus
			case "start":
				call = cli.StartConsolidation
			case "stop":
				call = cli.StopConsolidation
			}
			if call != nil {
				list, err := call(ctx)
				fatalIf(err)
				printConsolidationStatus(list)
				break
			}
		}
		fs := flag.NewFlagSet("consolidate", flag.ExitOnError)
		algo := fs.String("algorithm", apiv1.AlgorithmACO, "solver: aco | ffd | optimal")
		demand := fs.String("demand", "", "VM pricing: requested (default) | p95 (windowed telemetry demand)")
		fatalIf(fs.Parse(args[1:]))
		plan, err := cli.Consolidate(ctx, apiv1.ConsolidationRequest{Algorithm: *algo, Demand: *demand})
		fatalIf(err)
		fmt.Printf("%s: %d VMs on %d/%d hosts -> %d hosts (%d migrations)\n",
			plan.Algorithm, plan.VMs, plan.HostsBefore, plan.HostsTotal, plan.HostsAfter, len(plan.Migrations))
		for _, m := range plan.Migrations {
			fmt.Printf("  %-24s %s -> %s\n", m.VM, m.From, m.To)
		}

	case "metrics":
		snap, err := cli.Metrics(ctx)
		fatalIf(err)
		for _, name := range sortedKeys(snap.Counters) {
			fmt.Printf("%-32s %d\n", name, snap.Counters[name])
		}
		for _, name := range sortedKeys(snap.Gauges) {
			fmt.Printf("%-32s %g\n", name, snap.Gauges[name])
		}
		for _, name := range sortedKeys(snap.Series) {
			s := snap.Series[name]
			fmt.Printf("%-32s n=%d mean=%.2f p95=%.2f p99=%.2f\n", name, s.N, s.Mean, s.P95, s.P99)
		}

	case "recovery":
		// The failover state-recovery dashboard: the counters and latency
		// series of the GM->GL state-sync / restore flow, plus the
		// robustness counters (rejected reports, migration retry budget).
		snap, err := cli.Metrics(ctx)
		fatalIf(err)
		shown := 0
		for _, name := range []string{
			"gm.state-syncs", "gl.state-syncs", "gl.recovery-fetches",
			"gl.state-restores", "gm.recoveries", "gm.monitor-rejects",
			"gm.migration-retries", "gm.migration-abandoned",
		} {
			if v, ok := snap.Counters[name]; ok {
				fmt.Printf("%-24s %d\n", name, v)
				shown++
			}
		}
		if s, ok := snap.Series["gm.recovery-latency"]; ok {
			fmt.Printf("%-24s n=%d mean=%.2fms p95=%.2fms p99=%.2fms\n",
				"gm.recovery-latency", s.N, s.Mean, s.P95, s.P99)
			shown++
		}
		if shown == 0 {
			fmt.Println("no recovery activity recorded")
		}

	case "series":
		fs := flag.NewFlagSet("series", flag.ExitOnError)
		entity := fs.String("entity", "", "series entity (node/<id>, vm/<id>, gm/<id>); empty lists all keys")
		metric := fs.String("metric", "", "series metric (util, cpu.used, mem.used, vms, ...)")
		from := fs.Duration("from", 0, "window start (runtime-relative, e.g. 10m)")
		to := fs.Duration("to", 0, "window end (0 = unbounded)")
		agg := fs.String("agg", "", "downsample aggregation: min|max|avg|last|pXX")
		step := fs.Duration("step", 0, "downsample bucket width (with -agg)")
		fatalIf(fs.Parse(args[1:]))
		if *entity == "" && *metric == "" {
			keys, err := cli.ListSeries(ctx)
			fatalIf(err)
			for _, k := range keys {
				fmt.Printf("%-24s %s\n", k.Entity, k.Metric)
			}
			fmt.Printf("%d series\n", len(keys))
			break
		}
		data, err := cli.QuerySeries(ctx, apiv1.SeriesQuery{
			Entity: *entity, Metric: *metric,
			FromNs: int64(*from), ToNs: int64(*to),
			Agg: *agg, StepNs: int64(*step),
		})
		fatalIf(err)
		fmt.Printf("%s %s", data.Entity, data.Metric)
		if data.Agg != "" {
			fmt.Printf(" (%s per %s)", data.Agg, time.Duration(data.StepNs))
		}
		fmt.Printf(": %d points\n", data.Total)
		if data.NewestNs > 0 || data.OldestNs > 0 {
			fmt.Printf("retained [%s, %s], full resolution from %s",
				time.Duration(data.OldestNs), time.Duration(data.NewestNs), time.Duration(data.RawFromNs))
			for i, tr := range data.Tiers {
				if i == 0 {
					fmt.Printf("; tiers:")
				}
				fmt.Printf(" %s×%d (%d pts)", time.Duration(tr.StepNs), tr.Capacity, tr.Points)
			}
			fmt.Println()
		}
		if data.Truncated {
			fmt.Println("window TRUNCATED: part of it predates full-resolution retention (decimated or evicted)")
		}
		if s := data.Summary; s != nil {
			fmt.Printf("summary: min=%.4f max=%.4f avg=%.4f p50=%.4f p95=%.4f (weight %d)",
				s.Min, s.Max, s.Avg, s.P50, s.P95, s.Weight)
			if s.QuantileError > 0 {
				fmt.Printf(" ±%.1f%% quantile error", s.QuantileError*100)
			} else {
				fmt.Printf(" exact")
			}
			fmt.Println()
		}
		for _, p := range data.Points {
			fmt.Printf("%14s  %.4f\n", time.Duration(p.AtNs), p.Value)
		}

	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		from := fs.Uint64("from", 0, "replay retained events from this sequence number")
		n := fs.Int("n", 0, "stop after N events (0 = stream forever)")
		fatalIf(fs.Parse(args[1:]))
		// Fail fast on a bad server address — WatchResume would otherwise
		// retry a hopeless endpoint silently forever.
		fatalIf(cli.Healthz(ctx))
		// WatchResume reconnects with from = lastSeq+1 on lag or link loss,
		// so a long-lived CLI watch survives flaky links and server restarts.
		stream := cli.WatchResume(ctx, *from)
		defer stream.Close()
		seen := 0
		for ev := range stream.Events() {
			attrs := ""
			for _, k := range sortedKeys(ev.Attrs) {
				attrs += fmt.Sprintf(" %s=%s", k, ev.Attrs[k])
			}
			fmt.Printf("%8d %14s %-20s %s%s\n", ev.Seq, time.Duration(ev.AtNs), ev.Type, ev.Entity, attrs)
			if seen++; *n > 0 && seen >= *n {
				break
			}
		}
		// No trailing Err check: transient reconnect errors are retried
		// internally, and after a voluntary -n break a stale one would
		// race the next delivery's reset.

	case "trace":
		if len(args) < 2 {
			usage()
		}
		list, err := queryTraces(ctx, cli, args[1])
		fatalIf(err)
		if len(list.Items) == 0 {
			fmt.Printf("no decision traces for %q (tracing samples every trace by default; see snoozed -trace-sample)\n", args[1])
			break
		}
		printTraces(list.Items)

	case "experiment":
		if len(args) < 2 {
			usage()
		}
		exp, err := cli.Experiment(ctx, args[1])
		fatalIf(err)
		fmt.Printf("== %s: %s ==\n%s", exp.ID, exp.Title, exp.Table)
		for _, n := range exp.Notes {
			fmt.Println("note: " + n)
		}

	default:
		usage()
	}
}

// queryTraces resolves the trace argument: a bare ID is tried as a VM first
// ("trace vm-123" is the common case), then as a trace ID; an entity path
// like node/n1 or gm/gm-00 is used verbatim. Entity matches are widened to
// their full traces so the output shows the whole decision chain, not only
// the spans naming that entity.
func queryTraces(ctx context.Context, cli *apiclient.Client, arg string) (apiv1.TraceList, error) {
	entity := arg
	if !strings.Contains(arg, "/") {
		entity = "vm/" + arg
	}
	list, err := cli.ListTraces(ctx, apiv1.TraceQuery{Entity: entity})
	if err != nil {
		return apiv1.TraceList{}, err
	}
	if len(list.Items) == 0 && !strings.Contains(arg, "/") {
		if list, err = cli.ListTraces(ctx, apiv1.TraceQuery{TraceID: arg}); err != nil {
			return apiv1.TraceList{}, err
		}
		return list, nil
	}
	// Widen each matched trace to its complete span chain.
	seen := map[string]bool{}
	var full apiv1.TraceList
	for _, sp := range list.Items {
		if seen[sp.TraceID] {
			continue
		}
		seen[sp.TraceID] = true
		chain, err := cli.ListTraces(ctx, apiv1.TraceQuery{TraceID: sp.TraceID})
		if err != nil {
			return apiv1.TraceList{}, err
		}
		full.Items = append(full.Items, chain.Items...)
	}
	full.Total = len(full.Items)
	return full, nil
}

// printTraces renders span chains grouped by trace, children indented under
// their parents, with the decision evidence (policy, capacity-view
// generation, per-candidate rejection reasons) each span recorded.
func printTraces(spans []apiv1.TraceSpan) {
	byTrace := map[string][]apiv1.TraceSpan{}
	var order []string
	for _, sp := range spans {
		if _, ok := byTrace[sp.TraceID]; !ok {
			order = append(order, sp.TraceID)
		}
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	for _, tid := range order {
		fmt.Printf("trace %s\n", tid)
		chain := byTrace[tid]
		children := map[string][]apiv1.TraceSpan{}
		var roots []apiv1.TraceSpan
		byID := map[string]bool{}
		for _, sp := range chain {
			byID[sp.SpanID] = true
		}
		for _, sp := range chain {
			if sp.Parent != "" && byID[sp.Parent] {
				children[sp.Parent] = append(children[sp.Parent], sp)
			} else {
				roots = append(roots, sp)
			}
		}
		var walk func(sp apiv1.TraceSpan, depth int)
		walk = func(sp apiv1.TraceSpan, depth int) {
			printSpan(sp, depth)
			for _, c := range children[sp.SpanID] {
				walk(c, depth+1)
			}
		}
		for _, r := range roots {
			walk(r, 1)
		}
	}
}

func printSpan(sp apiv1.TraceSpan, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Printf("%s%-12s %-16s", indent, sp.Kind, sp.Entity)
	if sp.Policy != "" {
		fmt.Printf(" policy=%s", sp.Policy)
	}
	if sp.Target != "" {
		fmt.Printf(" -> %s", sp.Target)
	}
	fmt.Printf(" [%s, %s]", sp.Outcome, time.Duration(sp.EndNs-sp.StartNs))
	if v := sp.View; v != nil {
		fmt.Printf(" view(gen=%d samples=%d fresh=%t", v.Gen, v.Samples, v.Fresh)
		if v.Truncated {
			fmt.Printf(" truncated")
		}
		fmt.Printf(")")
	}
	for _, k := range sortedKeys(sp.Attrs) {
		fmt.Printf(" %s=%s", k, sp.Attrs[k])
	}
	fmt.Println()
	for _, c := range sp.Candidates {
		if c.Chosen {
			fmt.Printf("%s  + %-16s chosen\n", indent, c.ID)
		} else {
			fmt.Printf("%s  - %-16s rejected: %s\n", indent, c.ID, c.Reason)
		}
	}
}

func printTopology(topo apiv1.Topology) {
	fmt.Printf("GL %s\n", topo.GL)
	if s := topo.Scheduling; s.Dispatch != "" || s.Placement != "" {
		fmt.Printf("scheduling: dispatch=%s placement=%s overload=%s underload=%s",
			s.Dispatch, s.Placement, s.Overload, s.Underload)
		if s.Estimator != "" {
			fmt.Printf(" estimator=%s", s.Estimator)
		}
		if s.ViewHorizonNs > 0 {
			fmt.Printf(" view-horizon=%s", time.Duration(s.ViewHorizonNs))
		}
		fmt.Println()
	}
	for _, gm := range topo.GMs {
		s := gm.Summary
		fmt.Printf("└─ GM %s (%s): %d active LCs, %d asleep, %d VMs, reserved cpu=%.2f of %.2f\n",
			gm.ID, gm.Addr, s.ActiveLCs, s.AsleepLCs, s.VMs, s.Reserved.CPU, s.Total.CPU)
		// Per-GM policies are printed only when they diverge from the GL's,
		// so uniform deployments stay compact and mixed-policy ones visible.
		if gs := gm.Scheduling; gs != nil && *gs != topo.Scheduling {
			fmt.Printf("   scheduling: dispatch=%s placement=%s overload=%s underload=%s",
				gs.Dispatch, gs.Placement, gs.Overload, gs.Underload)
			if gs.Estimator != "" {
				fmt.Printf(" estimator=%s", gs.Estimator)
			}
			if gs.ViewHorizonNs > 0 {
				fmt.Printf(" view-horizon=%s", time.Duration(gs.ViewHorizonNs))
			}
			fmt.Println()
		}
		for _, lc := range gm.LCs {
			fmt.Printf("   └─ LC %s [%s]: %d VMs, reserved cpu=%.2f of %.2f\n",
				lc.ID, lc.Power, lc.VMs, lc.Reserved.CPU, lc.Capacity.CPU)
		}
	}
}

func printConsolidationStatus(list apiv1.ConsolidationStatusList) {
	for _, st := range list.Items {
		state := "stopped"
		if st.Running {
			state = "running"
		}
		if st.InRound {
			state += " (in round)"
		}
		fmt.Printf("GM %-10s %-18s period=%s budget=%d rounds=%d migrations=%d cancels=%d failures=%d\n",
			st.GM, state, time.Duration(st.PeriodNs), st.Budget, st.Rounds, st.Migrations, st.Cancels, st.Failures)
		if lr := st.LastRound; lr != nil {
			fmt.Printf("  last round %d at %s: hosts %d -> %d, planned=%d executed=%d failed=%d cancelled=%d\n",
				lr.Round, time.Duration(lr.AtNs), lr.HostsBefore, lr.HostsAfter, lr.Planned, lr.Executed, lr.Failed, lr.Cancelled)
		}
	}
	fmt.Printf("%d GMs\n", len(list.Items))
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func printJSON(v any) {
	out, _ := json.MarshalIndent(v, "", "  ")
	fmt.Println(string(out))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: snoozectl [-server URL] [-timeout D] COMMAND
commands:
  gl                      print the current group leader address
  topology [-deep]        show the hierarchy (GL -> GMs -> LCs)
  submit [-n -cpu -mem]   submit a batch of VMs
  vms | vm ID             list VMs / show one VM
  nodes | node ID         list nodes / show one node
  fail ID                 crash-stop a node (simulation backends)
  consolidate [-algorithm aco|ffd|optimal] [-demand requested|p95]
                          compute a dry-run consolidation plan
  consolidate status|start|stop
                          control the online consolidation optimizer (per GM)
  metrics                 control-plane counters, gauges and latency series
  recovery                failover state-recovery counters and latency
  series [-entity -metric -from -to -agg -step]
                          list telemetry series, or dump one as a table
  watch [-from SEQ] [-n N]
                          stream telemetry events (overloads, vm.state, ...)
  trace VM-ID|TRACE-ID|ENTITY
                          show decision traces (dispatch -> placement chain
                          with per-candidate rejection reasons)
  experiment ID           reproduce one evaluation table (e1..e9, a1, a2, f1)`)
	os.Exit(2)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "snoozectl:", err)
		os.Exit(1)
	}
}
