// Command snoozectl is the CLI client for a snoozed control process — the
// analogue of the paper's command line interface: it supports VM management
// and "live visualizing and exporting of the hierarchy organization"
// (Section II-A).
//
// Usage:
//
//	snoozectl -server http://localhost:7001 gl
//	snoozectl -server http://localhost:7001 topology
//	snoozectl -server http://localhost:7001 submit -n 4 -cpu 2 -mem 2048
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"snooze/internal/protocol"
	"snooze/internal/rest"
	"snooze/internal/types"
)

func main() {
	server := flag.String("server", "http://localhost:7001", "control process base URL")
	ep := flag.String("ep", "ep:0", "entry point bus address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cli := rest.NewClient(2 * time.Minute)

	discoverGL := func() string {
		reply, err := cli.Call(*server, *ep, protocol.KindGLQuery, struct{}{})
		fatalIf(err)
		r := reply.(protocol.GLQueryResponse)
		if !r.Known {
			fatalIf(fmt.Errorf("no group leader known to entry point %s", *ep))
		}
		return r.Addr
	}

	switch args[0] {
	case "gl":
		fmt.Println(discoverGL())
	case "topology":
		fs := flag.NewFlagSet("topology", flag.ExitOnError)
		deep := fs.Bool("deep", false, "include per-LC detail (GL fans out to GMs)")
		fatalIf(fs.Parse(args[1:]))
		gl := discoverGL()
		reply, err := cli.Call(*server, gl, protocol.KindTopology, protocol.TopologyRequest{Deep: *deep})
		fatalIf(err)
		topo := reply.(protocol.TopologyResponse)
		fmt.Printf("GL %s\n", topo.GL)
		for _, gm := range topo.GMs {
			s := gm.Summary
			fmt.Printf("└─ GM %s (%s): %d active LCs, %d asleep, %d VMs, reserved %v of %v\n",
				gm.GM, gm.Addr, s.ActiveLCs, s.AsleepLCs, s.VMs, s.Reserved, s.Total)
			for _, lc := range gm.LCs {
				fmt.Printf("   └─ LC %s [%s]: %d VMs, reserved %v of %v\n",
					lc.ID, lc.Power, lc.VMs, lc.Reserved, lc.Capacity)
			}
		}
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		n := fs.Int("n", 1, "number of VMs")
		cpu := fs.Float64("cpu", 1, "CPU cores per VM")
		mem := fs.Float64("mem", 1024, "memory (MB) per VM")
		prefix := fs.String("prefix", "vm", "VM ID prefix")
		fatalIf(fs.Parse(args[1:]))
		var vms []types.VMSpec
		for i := 0; i < *n; i++ {
			vms = append(vms, types.VMSpec{
				ID:        types.VMID(fmt.Sprintf("%s-%d-%d", *prefix, time.Now().UnixNano()%100000, i)),
				Requested: types.RV(*cpu, *mem, 10, 10),
			})
		}
		gl := discoverGL()
		reply, err := cli.Call(*server, gl, protocol.KindSubmit, protocol.SubmitRequest{VMs: vms})
		fatalIf(err)
		resp := reply.(protocol.SubmitResponse)
		out, _ := json.MarshalIndent(resp, "", "  ")
		fmt.Println(string(out))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: snoozectl [-server URL] [-ep ADDR] gl|topology|submit [flags]")
	os.Exit(2)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "snoozectl:", err)
		os.Exit(1)
	}
}
