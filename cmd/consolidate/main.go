// Command consolidate runs the consolidation algorithms standalone on a
// generated instance — the paper's Section III-B comparison as a tool.
//
// Usage:
//
//	consolidate -vms 100 -kind correlated -algo all
//	consolidate -vms 20 -algo exact
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"snooze/internal/consolidation"
	"snooze/internal/metrics"
	"snooze/internal/power"
	"snooze/internal/types"
	"snooze/internal/workload"
)

func main() {
	vms := flag.Int("vms", 50, "number of VMs in the instance")
	seed := flag.Int64("seed", 1, "instance seed")
	kindName := flag.String("kind", "uniform", "demand distribution: uniform | correlated | anti-correlated")
	algo := flag.String("algo", "all", "algorithm: aco | ffd-cpu | ffd-l1 | ffd-l2 | exact | all")
	ants := flag.Int("ants", 0, "ACO ants (0 = default)")
	cycles := flag.Int("cycles", 0, "ACO cycles (0 = default)")
	flag.Parse()

	var kind workload.InstanceKind
	switch *kindName {
	case "uniform":
		kind = workload.UniformInstance
	case "correlated":
		kind = workload.CorrelatedInstance
	case "anti-correlated":
		kind = workload.AntiCorrelatedInstance
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kindName)
		os.Exit(2)
	}

	inst := workload.NewInstance(workload.InstanceConfig{Seed: *seed, VMs: *vms, Kind: kind, Lo: 0.05, Hi: 0.45})
	p := consolidation.Problem{VMs: inst.VMs, Nodes: inst.Nodes}
	fmt.Printf("instance: %d VMs, %s demand, node capacity %v, lower bound %d hosts\n\n",
		*vms, kind, inst.Capacity, p.LowerBound())

	acoCfg := consolidation.DefaultACOConfig()
	acoCfg.Seed = *seed
	if *ants > 0 {
		acoCfg.Ants = *ants
	}
	if *cycles > 0 {
		acoCfg.Cycles = *cycles
	}
	algos := map[string]consolidation.Algorithm{
		"aco":     consolidation.ACO{Config: acoCfg},
		"ffd-cpu": consolidation.FFD{Key: consolidation.SortCPU},
		"ffd-l1":  consolidation.FFD{Key: consolidation.SortL1},
		"ffd-l2":  consolidation.FFD{Key: consolidation.SortL2},
		"exact":   consolidation.Exact{},
	}
	var order []string
	if *algo == "all" {
		order = []string{"ffd-cpu", "ffd-l1", "ffd-l2", "aco"}
		if *vms <= 24 {
			order = append(order, "exact")
		}
	} else {
		if _, ok := algos[*algo]; !ok {
			fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
			os.Exit(2)
		}
		order = []string{*algo}
	}

	model := power.DefaultModel()
	demand := map[types.VMID]types.ResourceVector{}
	specs := map[types.NodeID]types.NodeSpec{}
	for _, vm := range p.VMs {
		demand[vm.ID] = vm.Requested
	}
	for _, nd := range p.Nodes {
		specs[nd.ID] = nd
	}

	tb := metrics.NewTable("algorithm", "hosts", "util", "power(W)", "optimal?", "time")
	for _, name := range order {
		a := algos[name]
		start := time.Now()
		r, err := a.Solve(p)
		elapsed := time.Since(start)
		if err != nil {
			tb.AddRow(name, "ERR: "+err.Error(), "-", "-", "-", elapsed)
			continue
		}
		if err := consolidation.Validate(p, r.Placement); err != nil {
			fmt.Fprintf(os.Stderr, "%s produced an invalid placement: %v\n", name, err)
			os.Exit(1)
		}
		tb.AddRow(name, r.HostsUsed,
			consolidation.AvgHostUtilization(p, r.Placement),
			power.PlacementPower(model, r.Placement, demand, specs),
			r.Optimal, elapsed)
	}
	fmt.Print(tb.String())
}
