// Command snoozed runs Snooze components as a real (wall-clock) process
// serving the control plane over HTTP — the deployment analogue of the
// paper's Java RESTful web services.
//
// Two roles exist:
//
//   - control: hosts the manager processes (GL election happens among
//     them), the coordination service and the entry points. Control
//     processes serve two HTTP surfaces: POST /deliver, the inter-component
//     RPC tunnel (internal/rest), and /v1/*, the versioned typed operator
//     API (api/v1) that snoozectl and programmatic clients consume.
//   - node: hosts one simulated physical node with its Local Controller
//     (serves /deliver only; operators talk to a control process).
//
// Processes discover each other through a peers file (JSON), standing in
// for the paper's UDP multicast groups:
//
//	[
//	  {"addr": "mgr:gm-00", "url": "http://ctrl:7001", "groups": []},
//	  {"addr": "lc:n1", "url": "http://node1:7002", "groups": ["snooze.gl"]},
//	  {"addr": "oob:lc:n1", "url": "http://node1:7002", "groups": []}
//	]
//
// Example (three terminals):
//
//	snoozed -role control -listen :7001 -managers 3 -peers peers.json
//	snoozed -role node -listen :7002 -node n1 -peers peers.json
//	snoozectl -server http://localhost:7001 submit -n 4
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"snooze/api/v1/livebackend"
	apiserver "snooze/api/v1/server"
	"snooze/internal/consolidation/online"
	"snooze/internal/coord"
	"snooze/internal/hierarchy"
	"snooze/internal/hypervisor"
	"snooze/internal/metrics"
	"snooze/internal/obs"
	"snooze/internal/protocol"
	"snooze/internal/rest"
	"snooze/internal/scheduling"
	"snooze/internal/simkernel"
	"snooze/internal/telemetry"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// peer is one entry of the peers file.
type peer struct {
	Addr   string   `json:"addr"`
	URL    string   `json:"url"`
	Groups []string `json:"groups"`
}

func main() {
	role := flag.String("role", "control", "process role: control | node")
	listen := flag.String("listen", ":7001", "HTTP listen address")
	managers := flag.Int("managers", 3, "control role: number of manager processes (>=2: one becomes GL)")
	nodeID := flag.String("node", "n1", "node role: node identifier")
	cpu := flag.Float64("cpu", 8, "node role: CPU cores")
	memMB := flag.Float64("mem", 32768, "node role: memory (MB)")
	peersFile := flag.String("peers", "", "path to the peers JSON file")
	dispatch := flag.String("dispatch", "", "control role: GL dispatch policy (round-robin | least-loaded | most-loaded | p95-headroom)")
	placement := flag.String("placement", "", "control role: GM placement policy (first-fit | best-fit | worst-fit | round-robin | percentile-fit)")
	overload := flag.String("overload", "", "control role: overload relocation policy (overload-relocation | trend-relocation)")
	underload := flag.String("underload", "underload-relocation", "control role: underload relocation policy (underload-relocation | trend-underload)")
	viewHorizon := flag.Duration("view-horizon", 0, "control role: capacity-view history window (0 = default 5m)")
	seriesCapacity := flag.Int("series-capacity", 0, "control role: raw telemetry ring length per series (0 = 512)")
	seriesTiers := flag.String("series-tiers", "", `control role: downsampled retention tiers as "step:capacity,..." (default "1m:512,10m:512"; "none" disables)`)
	vmLivenessGrace := flag.Duration("vm-liveness-grace", 0, "control role: reap vm/* series silent+unknown for this long (0 = 4×LC timeout; <0 disables)")
	consolidation := flag.Bool("consolidation", false, "control role: run the online consolidation optimizer on the elected GM")
	consolidationPeriod := flag.Duration("consolidation-period", 0, "control role: online consolidation round period (0 = default 30s)")
	consolidationBudget := flag.Int("consolidation-budget", 0, "control role: migrations per consolidation round (0 = default 4; <0 unlimited)")
	consolidationColonies := flag.Int("consolidation-colonies", 0, "control role: parallel ant colonies per consolidation round (0 = default 4)")
	traceSample := flag.Int("trace-sample", 1, "control role: record every Nth decision trace (<=1 records all)")
	dispatchBatch := flag.Int("dispatch-batch", 0, "control role: max VMs the GL coalesces into one placement request per GM (<=1 sequential dispatch)")
	admissionOrder := flag.String("admission-order", "", "control role: batched-dispatch admission order (ffd = largest-first packing, arrival = submission order)")
	exactReduce := flag.Bool("exact-reduce", false, "control role: answer telemetry quantiles by exact sort instead of mergeable sketches (reference mode)")
	rollupInterval := flag.Duration("rollup-interval", 0, "control role: GM rollup series debounce (0 = heartbeat period; <0 disables rollups)")
	stateSyncPeriod := flag.Duration("state-sync-period", 0, "control role: GM->GL telemetry state-sync period for warm failover (0 = auto: off on this process's shared hub; >0 forces; <0 disables)")
	migrationRetries := flag.Int("migration-retries", 0, "control role: total migration attempts before abandoning (0 = default 3)")
	migrationBackoff := flag.Duration("migration-backoff", 0, "control role: base backoff between migration retries (0 = default 500ms)")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiling is opt-in)")
	flag.Parse()

	rt := simkernel.NewWallRuntime()
	bus := transport.NewBus(rt, transport.Config{})
	gw := rest.NewGateway(bus, 30*time.Second)
	if *peersFile != "" {
		data, err := os.ReadFile(*peersFile)
		if err != nil {
			log.Fatalf("read peers: %v", err)
		}
		var peers []peer
		if err := json.Unmarshal(data, &peers); err != nil {
			log.Fatalf("parse peers: %v", err)
		}
		for _, p := range peers {
			gw.AddPeer(transport.Address(p.Addr), p.URL, p.Groups...)
		}
		log.Printf("registered %d peers", len(peers))
	}

	// The signal context ends long-lived /v1/watch streams at shutdown, so
	// http.Server.Shutdown can drain; short in-flight requests are left to
	// complete normally.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mux := http.NewServeMux()
	switch *role {
	case "control":
		reg := metrics.NewRegistry()
		tiers, err := telemetry.ParseTiers(*seriesTiers)
		if err != nil {
			log.Fatalf("-series-tiers: %v", err)
		}
		// One telemetry hub per control process: every manager feeds it and
		// the /v1/series + /v1/watch routes read from it. The store keeps a
		// raw ring per series backed by the downsampled retention tiers.
		tel := telemetry.NewHub(telemetry.Options{
			Metrics: reg,
			Store:   telemetry.StoreConfig{SeriesCapacity: *seriesCapacity, Tiers: tiers, ExactReduce: *exactReduce},
		})
		svc := coord.NewService(rt)
		// One decision tracer per control process: every manager records its
		// dispatch/placement/relocation spans into it and GET /v1/traces reads
		// them back. Span completions also land in the journal as
		// decision.trace events, so /v1/watch streams them.
		tracer := obs.New(obs.Config{
			Sample:  *traceSample,
			Now:     rt.Now,
			Metrics: reg,
			Emit: func(entity string, attrs map[string]string) {
				tel.Emit(telemetry.EventDecisionTrace, entity, rt.Now(), telemetry.AttrsFromMap(attrs))
			},
		})
		for i := 0; i < *managers; i++ {
			id := types.GroupManagerID(fmt.Sprintf("gm-%02d", i))
			cfg := hierarchy.DefaultManagerConfig(id, transport.Address("mgr:"+string(id)))
			cfg.Metrics = reg
			cfg.Telemetry = tel
			cfg.Tracer = tracer
			cfg.ViewHorizon = *viewHorizon
			cfg.VMLivenessGrace = *vmLivenessGrace
			cfg.DispatchBatch = *dispatchBatch
			cfg.AdmissionOrder = *admissionOrder
			cfg.RollupInterval = *rollupInterval
			if *stateSyncPeriod != 0 {
				cfg.StateSyncPeriod = *stateSyncPeriod
			}
			if *migrationRetries != 0 {
				cfg.MigrationRetries = *migrationRetries
			}
			if *migrationBackoff != 0 {
				cfg.MigrationBackoff = *migrationBackoff
			}
			cfg.Consolidation = online.Config{
				Enabled:         *consolidation,
				Period:          *consolidationPeriod,
				MigrationBudget: *consolidationBudget,
				Colonies:        *consolidationColonies,
			}
			// Policy instances are per manager: the round-robin policies keep
			// cursor state that must not be shared across processes.
			var perr error
			if cfg.Dispatch, perr = scheduling.NewDispatchPolicy(*dispatch); perr != nil {
				log.Fatalf("-dispatch: %v", perr)
			}
			if cfg.Placement, perr = scheduling.NewPlacementPolicy(*placement); perr != nil {
				log.Fatalf("-placement: %v", perr)
			}
			if cfg.Overload, perr = scheduling.NewRelocationPolicy(*overload); perr != nil {
				log.Fatalf("-overload: %v", perr)
			}
			if cfg.Underload, perr = scheduling.NewRelocationPolicy(*underload); perr != nil {
				log.Fatalf("-underload: %v", perr)
			}
			m := hierarchy.NewManager(rt, bus, svc, cfg)
			if err := m.Start(); err != nil {
				log.Fatalf("manager %s: %v", id, err)
			}
			log.Printf("manager %s started at bus address %s", id, cfg.Addr)
		}
		ep := hierarchy.NewEP(rt, bus, "ep:0", 0)
		ep.Start()
		log.Printf("entry point at bus address ep:0")

		// The operator API: the same /v1 contract the simulated backend
		// serves, here backed by the live hierarchy on this process's bus.
		backend := livebackend.New(livebackend.Config{
			Bus:       bus,
			EPs:       []transport.Address{"ep:0"},
			Metrics:   reg,
			Telemetry: tel,
			Now:       rt.Now,
			Tracer:    tracer,
		})
		api := apiserver.New(backend)
		api.StreamContext = ctx
		mux.Handle("/v1/", api.Handler())
		mux.Handle("/metrics", api.PrometheusHandler())
		log.Printf("api/v1 mounted at /v1 (Prometheus exposition at /metrics)")
	case "node":
		spec := types.NodeSpec{ID: types.NodeID(*nodeID), Capacity: types.RV(*cpu, *memMB, 1000, 1000)}
		node := hypervisor.NewNode(rt, spec, hypervisor.DefaultConfig())
		lcAddr := transport.Address("lc:" + *nodeID)
		lc := hierarchy.NewLC(rt, bus, node, lcAddr, func(types.NodeID) (*hypervisor.Node, bool) {
			return nil, false // cross-process migration needs a shared data plane
		}, hierarchy.DefaultLCConfig())
		lc.Start()
		log.Printf("node %s with LC at bus address %s (oob at %s)", *nodeID, lcAddr, hierarchy.OOBAddress(lcAddr))
	default:
		log.Fatalf("unknown role %q (want control|node)", *role)
	}
	_ = protocol.GroupGL // groups are wired through the peers file

	if *pprof {
		// net/http/pprof self-registers on DefaultServeMux, which this
		// process does not serve; mount its handlers explicitly so profiling
		// stays opt-in.
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		log.Printf("pprof mounted at /debug/pprof/")
	}

	srv := rest.NewServer(bus, 60*time.Second)
	mux.Handle("/", srv.Handler())

	// Serve until SIGINT/SIGTERM, then drain gracefully: watch streams end
	// via StreamContext, everything else finishes inside the Shutdown
	// deadline.
	httpSrv := &http.Server{Addr: *listen, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("snoozed %s listening on %s", *role, *listen)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received, draining connections")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("shutdown: %v", err)
		}
		log.Printf("snoozed %s stopped", *role)
	}
}
