// Command snoozesim reproduces the paper's evaluation: it runs the
// experiment suite (E1–E7, see DESIGN.md and EXPERIMENTS.md) on the
// simulated cluster and prints one table per reproduced figure/table.
//
// Usage:
//
//	snoozesim                 # all experiments, quick scale
//	snoozesim -scale full     # paper-scale dimensions (slower)
//	snoozesim -exp e4         # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"snooze/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1..e9, a name like gray-failures, or 'all'")
	scaleName := flag.String("scale", "quick", "experiment scale: quick | full")
	flag.Parse()

	scale := experiments.ScaleQuick
	switch *scaleName {
	case "quick":
	case "full":
		scale = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick|full)\n", *scaleName)
		os.Exit(2)
	}

	start := time.Now()
	if *exp == "all" {
		for _, r := range experiments.All(scale) {
			fmt.Println(r)
		}
	} else {
		r, err := experiments.ByID(*exp, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(r)
	}
	fmt.Printf("(wall time: %v)\n", time.Since(start).Round(time.Millisecond))
}
