// Command benchjson converts `go test -bench` text output (read from stdin)
// into a stable JSON document, so CI can record benchmark baselines as
// artifacts and diff them across commits:
//
//	go test -bench=Telemetry -benchmem ./internal/telemetry | benchjson > BENCH_telemetry.json
//
// Standard metrics (ns/op, B/op, allocs/op) get dedicated fields; any custom
// b.ReportMetric unit lands in "extra".
//
// With -compare BASELINE.json the command additionally enforces a regression
// gate: after emitting the JSON it exits non-zero when any benchmark present
// in both documents regressed by more than -tolerance (default 0.30, i.e.
// fail on >30% ns/op growth). Benchmarks new to either side are reported but
// never fail the gate — renames and additions must not break CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  *int64             `json:"bytesPerOp,omitempty"`
	AllocsPerOp *int64             `json:"allocsPerOp,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.String("compare", "", "baseline JSON file; exit non-zero on ns/op regression beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional ns/op regression vs the baseline")
	flag.Parse()

	doc := Document{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *compare != "" {
		if !gate(doc, *compare, *tolerance) {
			os.Exit(1)
		}
	}
}

// gate compares doc against the baseline file and reports the outcome;
// false means at least one shared benchmark regressed beyond tolerance.
func gate(doc Document, baselinePath string, tolerance float64) bool {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read baseline:", err)
		return false
	}
	var base Document
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: parse baseline:", err)
		return false
	}
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	ok := true
	compared := 0
	for _, cur := range doc.Benchmarks {
		ref, found := baseline[cur.Name]
		if !found {
			fmt.Fprintf(os.Stderr, "benchjson: %s: no baseline (new benchmark, not gated)\n", cur.Name)
			continue
		}
		compared++
		if ref.NsPerOp <= 0 {
			continue
		}
		ratio := cur.NsPerOp / ref.NsPerOp
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSION"
			ok = false
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s: %.1f -> %.1f ns/op (%+.1f%%) %s\n",
			ref.Name, ref.NsPerOp, cur.NsPerOp, (ratio-1)*100, status)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks shared with the baseline — gate cannot pass vacuously")
		return false
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond %.0f%% tolerance vs %s\n", tolerance*100, baselinePath)
	}
	return ok
}

// parseLine parses one "BenchmarkFoo-8  N  V unit  V unit ..." result line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			n := int64(v)
			b.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			b.AllocsPerOp = &n
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}
