// Command benchjson converts `go test -bench` text output (read from stdin)
// into a stable JSON document, so CI can record benchmark baselines as
// artifacts and diff them across commits:
//
//	go test -bench=Telemetry -benchmem ./internal/telemetry | benchjson > BENCH_telemetry.json
//
// Standard metrics (ns/op, B/op, allocs/op) get dedicated fields; any custom
// b.ReportMetric unit lands in "extra".
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  *int64             `json:"bytesPerOp,omitempty"`
	AllocsPerOp *int64             `json:"allocsPerOp,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	doc := Document{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one "BenchmarkFoo-8  N  V unit  V unit ..." result line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			n := int64(v)
			b.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			b.AllocsPerOp = &n
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}
