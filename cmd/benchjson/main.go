// Command benchjson converts `go test -bench` text output (read from stdin)
// into a stable JSON document, so CI can record benchmark baselines as
// artifacts and diff them across commits:
//
//	go test -bench=Telemetry -benchmem ./internal/telemetry | benchjson > BENCH_telemetry.json
//
// Standard metrics (ns/op, B/op, allocs/op) get dedicated fields; any custom
// b.ReportMetric unit lands in "extra".
//
// With -compare BASELINE.json the command additionally enforces a regression
// gate: after emitting the JSON it exits non-zero when any benchmark present
// in both documents regressed by more than -tolerance (default 0.30) in
// ns/op or in allocs/op (zero-alloc baselines are exempt from the allocation
// gate — there is no ratio to grow). Benchmarks new to either side are
// reported but never fail the gate — renames and additions must not break
// CI — except when NOTHING overlaps the baseline, which fails deliberately:
// a gate with zero comparisons would pass vacuously forever. Custom units
// (placements/s, skips/simsec, ...) get an informational delta column but
// never gate: throughput numbers are machine-dependent, so the wall-clock
// ns/op ratio is the enforced signal. -summary FILE appends the comparison
// as a markdown table (append mode, so pointing it at $GITHUB_STEP_SUMMARY
// surfaces the deltas on the PR).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  *int64             `json:"bytesPerOp,omitempty"`
	AllocsPerOp *int64             `json:"allocsPerOp,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.String("compare", "", "baseline JSON file; exit non-zero on ns/op or allocs/op regression beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional ns/op / allocs/op regression vs the baseline")
	summary := flag.String("summary", "", "append the comparison as a markdown table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	doc := Document{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *compare != "" {
		if !gate(doc, *compare, *tolerance, *summary) {
			os.Exit(1)
		}
	}
}

// allocs dereferences an allocs/op field (-1 when the benchmark was run
// without -benchmem).
func allocs(b Benchmark) int64 {
	if b.AllocsPerOp == nil {
		return -1
	}
	return *b.AllocsPerOp
}

// gate compares doc against the baseline file and reports the outcome; false
// means at least one shared benchmark regressed beyond tolerance in ns/op or
// allocs/op. A non-empty summaryPath additionally receives the comparison as
// an appended markdown table.
func gate(doc Document, baselinePath string, tolerance float64, summaryPath string) bool {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read baseline:", err)
		return false
	}
	var base Document
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: parse baseline:", err)
		return false
	}
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	ok := true
	compared := 0
	var md strings.Builder
	md.WriteString("### Benchmark comparison vs " + baselinePath + "\n\n")
	md.WriteString("| benchmark | ns/op (base → new) | Δ ns/op | allocs/op (base → new) | Δ allocs | extra | status |\n")
	md.WriteString("|---|---|---|---|---|---|---|\n")
	for _, cur := range doc.Benchmarks {
		ref, found := baseline[cur.Name]
		if !found {
			fmt.Fprintf(os.Stderr, "benchjson: %s: no baseline (new benchmark, not gated)\n", cur.Name)
			fmt.Fprintf(&md, "| %s | — → %.1f | new | — → %s | new | %s | not gated |\n",
				cur.Name, cur.NsPerOp, allocsCell(allocs(cur)), extraDeltas(Benchmark{}, cur))
			continue
		}
		compared++
		status := "ok"
		nsDelta := "—"
		if ref.NsPerOp > 0 {
			ratio := cur.NsPerOp / ref.NsPerOp
			nsDelta = fmt.Sprintf("%+.1f%%", (ratio-1)*100)
			if ratio > 1+tolerance {
				status = "REGRESSION (ns/op)"
				ok = false
			}
		}
		// Allocations gate with the same tolerance. Zero-alloc baselines are
		// skipped (no ratio to grow); any new allocation there still shows in
		// the table.
		allocDelta := "—"
		if refA, curA := allocs(ref), allocs(cur); refA > 0 && curA >= 0 {
			ratio := float64(curA) / float64(refA)
			allocDelta = fmt.Sprintf("%+.1f%%", (ratio-1)*100)
			if ratio > 1+tolerance {
				status = "REGRESSION (allocs/op)"
				ok = false
			}
		}
		extras := extraDeltas(ref, cur)
		fmt.Fprintf(os.Stderr, "benchjson: %s: %.1f -> %.1f ns/op (%s), %s -> %s allocs/op (%s), extra: %s %s\n",
			ref.Name, ref.NsPerOp, cur.NsPerOp, nsDelta,
			allocsCell(allocs(ref)), allocsCell(allocs(cur)), allocDelta, extras, status)
		fmt.Fprintf(&md, "| %s | %.1f → %.1f | %s | %s → %s | %s | %s | %s |\n",
			cur.Name, ref.NsPerOp, cur.NsPerOp, nsDelta,
			allocsCell(allocs(ref)), allocsCell(allocs(cur)), allocDelta, extras, status)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks shared with the baseline — gate cannot pass vacuously")
		return false
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: regression beyond %.0f%% tolerance vs %s\n", tolerance*100, baselinePath)
		fmt.Fprintf(&md, "\n**Regression beyond %.0f%% tolerance.**\n", tolerance*100)
	}
	if summaryPath != "" {
		f, err := os.OpenFile(summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: open summary:", err)
			return false
		}
		if _, err := f.WriteString(md.String()); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: write summary:", err)
			f.Close()
			return false
		}
		f.Close()
	}
	return ok
}

// extraDeltas renders the custom-unit metrics (b.ReportMetric: items/s,
// placements/s, skips/simsec, ...) as "unit base → new (Δ%)" pairs. Purely
// informational — throughput units are machine-dependent, so they never
// gate; the enforced signal stays ns/op and allocs/op. A zero-value ref
// (new benchmark) renders the current values without deltas.
func extraDeltas(ref, cur Benchmark) string {
	if len(cur.Extra) == 0 {
		return "—"
	}
	units := make([]string, 0, len(cur.Extra))
	for u := range cur.Extra {
		units = append(units, u)
	}
	sort.Strings(units)
	parts := make([]string, 0, len(units))
	for _, u := range units {
		cv := cur.Extra[u]
		rv, shared := ref.Extra[u]
		switch {
		case !shared:
			parts = append(parts, fmt.Sprintf("%s %.1f", u, cv))
		case rv != 0:
			parts = append(parts, fmt.Sprintf("%s %.1f → %.1f (%+.1f%%)", u, rv, cv, (cv/rv-1)*100))
		default:
			parts = append(parts, fmt.Sprintf("%s %.1f → %.1f", u, rv, cv))
		}
	}
	return strings.Join(parts, "; ")
}

// allocsCell renders an allocs/op value for output ("—" when unrecorded).
func allocsCell(v int64) string {
	if v < 0 {
		return "—"
	}
	return strconv.FormatInt(v, 10)
}

// parseLine parses one "BenchmarkFoo-8  N  V unit  V unit ..." result line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			n := int64(v)
			b.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			b.AllocsPerOp = &n
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}
