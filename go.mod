module snooze

go 1.22
