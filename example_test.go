package snooze_test

import (
	"fmt"
	"sort"
	"time"

	"snooze"
)

// ExampleNewCluster boots a small hierarchy and submits VMs — the package's
// quick-start as runnable documentation.
func ExampleNewCluster() {
	c := snooze.NewCluster(snooze.DefaultClusterConfig(snooze.Grid5000Topology(8, 2), 42))
	c.Settle(30 * time.Second) // election, joins, heartbeats

	resp, err := c.SubmitAndWait(snooze.NewGenerator(1, nil).Batch(4), 2*time.Minute)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("leader: %s\n", c.Leader().ID())
	fmt.Printf("group managers: %d\n", len(c.GroupManagers()))
	fmt.Printf("placed: %d of 4\n", len(resp.Placed))
	// Output:
	// leader: gm-00
	// group managers: 2
	// placed: 4 of 4
}

// ExampleSolveACO reproduces the paper's consolidation comparison on one
// instance.
func ExampleSolveACO() {
	inst := snooze.NewInstance(snooze.InstanceConfig{Seed: 3, VMs: 18})
	p := snooze.Problem{VMs: inst.VMs, Nodes: inst.Nodes}

	ffd, _ := snooze.SolveFFD(p)
	aco, _ := snooze.SolveACO(p, snooze.DefaultACOConfig())
	opt, _ := snooze.SolveOptimal(p)

	fmt.Printf("FFD: %d hosts\n", ffd.HostsUsed)
	fmt.Printf("ACO: %d hosts\n", aco.HostsUsed)
	fmt.Printf("optimal: %d hosts (proved: %v)\n", opt.HostsUsed, opt.Optimal)
	// Output:
	// FFD: 7 hosts
	// ACO: 6 hosts
	// optimal: 6 hosts (proved: true)
}

// ExampleCluster_PowerStates shows the energy manager suspending idle nodes.
func ExampleCluster_PowerStates() {
	cfg := snooze.DefaultClusterConfig(snooze.Grid5000Topology(4, 1), 7)
	cfg.Manager.EnergyEnabled = true
	cfg.Manager.IdleThreshold = 20 * time.Second
	c := snooze.NewCluster(cfg)
	c.Settle(2 * time.Minute) // no VMs: every node goes idle and suspends

	states := c.PowerStates()
	var names []string
	for st := range states {
		names = append(names, st.String())
	}
	sort.Strings(names)
	for _, n := range names {
		if n == "suspended" {
			fmt.Printf("suspended nodes: %d\n", states[snooze.PowerSuspendedState])
		}
	}
	// Output:
	// suspended nodes: 4
}
