package transport

import (
	"errors"
	"testing"
	"time"

	"snooze/internal/simkernel"
)

func newBus() (*Bus, *simkernel.Kernel) {
	k := simkernel.New(1)
	return NewBus(k, Config{Latency: time.Millisecond}), k
}

func TestSendDelivers(t *testing.T) {
	b, k := newBus()
	var got *Request
	b.Register("dst", func(r *Request) { got = r })
	if err := b.Send("src", "dst", "ping", 42); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("delivered synchronously, want latency")
	}
	k.Run(time.Second)
	if got == nil || got.Kind != "ping" || got.Payload.(int) != 42 || got.From != "src" {
		t.Fatalf("delivery: %+v", got)
	}
	if !got.OneWay() {
		t.Fatal("Send should produce a one-way request")
	}
	d, dr := b.Stats()
	if d != 1 || dr != 0 {
		t.Fatalf("stats: %d %d", d, dr)
	}
}

func TestSendUnregistered(t *testing.T) {
	b, _ := newBus()
	if err := b.Send("src", "nope", "x", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err: %v", err)
	}
	_, dr := b.Stats()
	if dr != 1 {
		t.Fatalf("dropped: %d", dr)
	}
}

func TestCallRoundTrip(t *testing.T) {
	b, k := newBus()
	b.Register("server", func(r *Request) {
		r.Respond(r.Payload.(int) * 2)
	})
	var reply any
	var err error
	b.Call("client", "server", "double", 21, time.Second, func(rep any, e error) { reply, err = rep, e })
	k.Run(time.Second)
	if err != nil || reply.(int) != 42 {
		t.Fatalf("call: %v %v", reply, err)
	}
}

func TestCallErrorReply(t *testing.T) {
	b, k := newBus()
	sentinel := errors.New("boom")
	b.Register("server", func(r *Request) { r.RespondErr(sentinel) })
	var err error
	b.Call("client", "server", "x", nil, time.Second, func(_ any, e error) { err = e })
	k.Run(time.Second)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err: %v", err)
	}
}

func TestCallTimeout(t *testing.T) {
	b, k := newBus()
	b.Register("server", func(r *Request) { /* never responds */ })
	var err error
	called := 0
	b.Call("client", "server", "x", nil, 50*time.Millisecond, func(_ any, e error) { err, called = e, called+1 })
	k.Run(time.Second)
	if !errors.Is(err, ErrTimeout) || called != 1 {
		t.Fatalf("timeout: %v calls=%d", err, called)
	}
}

func TestCallToUnreachableFailsFast(t *testing.T) {
	b, k := newBus()
	var err error
	b.Call("client", "ghost", "x", nil, time.Minute, func(_ any, e error) { err = e })
	k.Run(time.Second)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err: %v", err)
	}
}

func TestRespondOnce(t *testing.T) {
	b, k := newBus()
	b.Register("server", func(r *Request) {
		r.Respond(1)
		r.Respond(2)
		r.RespondErr(errors.New("late"))
	})
	replies := 0
	var last any
	b.Call("client", "server", "x", nil, time.Second, func(rep any, e error) {
		replies++
		last = rep
	})
	k.Run(time.Second)
	if replies != 1 || last.(int) != 1 {
		t.Fatalf("replies=%d last=%v", replies, last)
	}
}

func TestCrashedDestination(t *testing.T) {
	b, k := newBus()
	got := false
	b.Register("dst", func(*Request) { got = true })
	b.SetDown("dst", true)
	if !b.IsDown("dst") {
		t.Fatal("IsDown")
	}
	if err := b.Send("src", "dst", "x", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("send to crashed: %v", err)
	}
	k.Run(time.Second)
	if got {
		t.Fatal("crashed endpoint received message")
	}
	// Recovery restores delivery.
	b.SetDown("dst", false)
	b.Send("src", "dst", "x", nil)
	k.Run(2 * time.Second)
	if !got {
		t.Fatal("recovered endpoint missed message")
	}
}

func TestCrashInFlight(t *testing.T) {
	b, k := newBus()
	got := false
	b.Register("dst", func(*Request) { got = true })
	b.Send("src", "dst", "x", nil) // in flight for 1ms
	b.SetDown("dst", true)         // crashes before delivery
	k.Run(time.Second)
	if got {
		t.Fatal("message delivered to endpoint that crashed in flight")
	}
}

func TestResponseLostWhenCallerCrashes(t *testing.T) {
	b, k := newBus()
	b.Register("server", func(r *Request) {
		b.SetDown("client", true) // caller dies while request is being served
		r.Respond("late reply")
	})
	b.Register("client", func(*Request) {})
	var err error
	got := false
	b.Call("client", "server", "x", nil, 100*time.Millisecond, func(rep any, e error) {
		got, err = rep != nil, e
	})
	k.Run(time.Second)
	// The callback still fires (timeout) but never with the reply payload.
	if got || !errors.Is(err, ErrTimeout) {
		t.Fatalf("got=%v err=%v", got, err)
	}
}

func TestPartition(t *testing.T) {
	b, k := newBus()
	gotA, gotB := 0, 0
	b.Register("a", func(*Request) { gotA++ })
	b.Register("b", func(*Request) { gotB++ })
	b.SetPartition("a", 1)
	b.SetPartition("b", 2)
	if err := b.Send("a", "b", "x", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cross-partition send: %v", err)
	}
	// Same partition works.
	b.SetPartition("b", 1)
	if err := b.Send("a", "b", "x", nil); err != nil {
		t.Fatal(err)
	}
	k.Run(time.Second)
	if gotB != 1 {
		t.Fatalf("same-partition delivery: %d", gotB)
	}
	// Healing restores default connectivity.
	b.ClearPartitions()
	b.Send("a", "b", "x", nil)
	k.Run(2 * time.Second)
	if gotB != 2 {
		t.Fatalf("after heal: %d", gotB)
	}
}

func TestDropProbability(t *testing.T) {
	k := simkernel.New(7)
	b := NewBus(k, Config{Latency: time.Microsecond, Seed: 7})
	got := 0
	b.Register("dst", func(*Request) { got++ })
	b.SetDropProbability(0.5)
	const n = 1000
	for i := 0; i < n; i++ {
		b.Send("src", "dst", "x", nil)
	}
	k.Run(time.Second)
	if got < 350 || got > 650 {
		t.Fatalf("with 50%% drop, delivered %d of %d", got, n)
	}
	// Bounds clamp without panicking.
	b.SetDropProbability(-1)
	b.SetDropProbability(2)
}

func TestMulticast(t *testing.T) {
	b, k := newBus()
	got := map[Address]int{}
	for _, a := range []Address{"m1", "m2", "m3"} {
		a := a
		b.Register(a, func(*Request) { got[a]++ })
		b.JoinGroup("heartbeat", a)
	}
	// Sender does not receive its own multicast.
	b.Multicast("m1", "heartbeat", "hb", nil)
	k.Run(time.Second)
	if got["m1"] != 0 || got["m2"] != 1 || got["m3"] != 1 {
		t.Fatalf("multicast: %v", got)
	}
	// Leaving stops delivery.
	b.LeaveGroup("heartbeat", "m3")
	b.Multicast("m1", "heartbeat", "hb", nil)
	k.Run(2 * time.Second)
	if got["m3"] != 1 || got["m2"] != 2 {
		t.Fatalf("after leave: %v", got)
	}
	members := b.GroupMembers("heartbeat")
	if len(members) != 2 {
		t.Fatalf("members: %v", members)
	}
	// Multicast to an empty/unknown group is a no-op.
	b.Multicast("m1", "ghost-group", "hb", nil)
}

func TestMulticastSkipsCrashed(t *testing.T) {
	b, k := newBus()
	got := 0
	b.Register("up", func(*Request) { got++ })
	b.Register("down", func(*Request) { t.Error("crashed member got multicast") })
	b.JoinGroup("g", "up")
	b.JoinGroup("g", "down")
	b.SetDown("down", true)
	b.Multicast("sender", "g", "hb", nil)
	k.Run(time.Second)
	if got != 1 {
		t.Fatalf("up member deliveries: %d", got)
	}
}

func TestUnregisterRemovesFromGroups(t *testing.T) {
	b, k := newBus()
	b.Register("x", func(*Request) { t.Error("unregistered endpoint received") })
	b.JoinGroup("g", "x")
	b.Unregister("x")
	if len(b.GroupMembers("g")) != 0 {
		t.Fatal("unregister left group membership")
	}
	b.Multicast("y", "g", "hb", nil)
	k.Run(time.Second)
}

func TestJitterWithinBounds(t *testing.T) {
	k := simkernel.New(3)
	b := NewBus(k, Config{Latency: time.Millisecond, Jitter: time.Millisecond, Seed: 3})
	var deliveredAt []time.Duration
	b.Register("dst", func(*Request) { deliveredAt = append(deliveredAt, k.Now()) })
	for i := 0; i < 100; i++ {
		b.Send("src", "dst", "x", nil)
	}
	k.Run(time.Second)
	if len(deliveredAt) != 100 {
		t.Fatalf("deliveries: %d", len(deliveredAt))
	}
	for _, at := range deliveredAt {
		if at < time.Millisecond || at >= 2*time.Millisecond {
			t.Fatalf("delivery at %v outside [1ms,2ms)", at)
		}
	}
}

func TestCallNilCallbackActsAsSend(t *testing.T) {
	b, k := newBus()
	got := false
	b.Register("dst", func(r *Request) { got = true })
	b.Call("src", "dst", "x", nil, time.Second, nil)
	k.Run(time.Second)
	if !got {
		t.Fatal("nil-callback Call not delivered")
	}
}
