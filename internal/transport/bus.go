// Package transport is the in-process message fabric connecting hierarchy
// components in simulation mode. It models what the paper's deployment gets
// from the data-center network: unicast RPC between components (the paper's
// Java RESTful web services), UDP-multicast heartbeat groups (Section II-A:
// "multicast-based heartbeat protocols are implemented at all levels of the
// hierarchy"), message latency, and — for the fault-tolerance experiments —
// crash failures, message loss and network partitions.
//
// The same component code talks to this bus or to the real HTTP transport in
// internal/rest through identical request/response semantics, so behaviour
// measured on the bus transfers to the deployed system.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"snooze/internal/simkernel"
)

// Address identifies a bus endpoint (one hierarchy component).
type Address string

// Errors surfaced to callers.
var (
	// ErrUnreachable means the destination is not registered, crashed, or
	// partitioned away; the paper's components observe this as a timed-out
	// REST call.
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrTimeout means no response arrived within the call timeout.
	ErrTimeout = errors.New("transport: request timed out")
)

// Message is one delivered payload.
type Message struct {
	From    Address
	To      Address
	Kind    string
	Payload any
}

// Request wraps an inbound message that may be responded to. Respond may be
// called at most once; later calls are ignored (like writing to a closed
// HTTP connection).
type Request struct {
	Message
	respond func(payload any, err error)
	once    sync.Once
}

// Respond sends a successful reply to the caller.
func (r *Request) Respond(payload any) {
	r.once.Do(func() {
		if r.respond != nil {
			r.respond(payload, nil)
		}
	})
}

// RespondErr sends an error reply to the caller.
func (r *Request) RespondErr(err error) {
	r.once.Do(func() {
		if r.respond != nil {
			r.respond(nil, err)
		}
	})
}

// OneWay reports whether the sender expects no response.
func (r *Request) OneWay() bool { return r.respond == nil }

// Handler processes inbound requests for one endpoint.
type Handler func(req *Request)

// Config parameterizes a Bus.
type Config struct {
	// Latency is the one-way delivery delay applied to every message.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Seed seeds the bus's private RNG (jitter, drops).
	Seed int64
}

// Bus is the in-process fabric. Safe for concurrent use; in simulation mode
// all activity happens on the kernel goroutine anyway.
type Bus struct {
	rt  simkernel.Runtime
	cfg Config

	mu         sync.Mutex
	rng        *rand.Rand
	handlers   map[Address]Handler
	groups     map[string]map[Address]struct{}
	down       map[Address]struct{}
	partition  map[Address]int // partition group id; addresses in different non-zero groups cannot talk
	dropProb   float64
	delivered  uint64
	dropped    uint64
	unreliable uint64 // messages lost to injected drop probability

	// Gray-failure injection (see SetLinkDelay, SetDuplication, BlockDirected):
	// failures the crash-stop model cannot express — endpoints that are slow
	// or duplicating but alive, and one-way reachability loss.
	linkDelay map[Address]time.Duration
	dupProb   map[Address]float64
	blocked   map[Address]map[Address]struct{}
}

// NewBus creates a bus on the given runtime.
func NewBus(rt simkernel.Runtime, cfg Config) *Bus {
	return &Bus{
		rt:        rt,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		handlers:  make(map[Address]Handler),
		groups:    make(map[string]map[Address]struct{}),
		down:      make(map[Address]struct{}),
		partition: make(map[Address]int),
		linkDelay: make(map[Address]time.Duration),
		dupProb:   make(map[Address]float64),
		blocked:   make(map[Address]map[Address]struct{}),
	}
}

// Register installs the handler for addr, replacing any previous one and
// clearing a crash flag (a rebooted component re-registers).
func (b *Bus) Register(addr Address, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers[addr] = h
	delete(b.down, addr)
}

// Unregister removes addr entirely (component decommissioned).
func (b *Bus) Unregister(addr Address) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.handlers, addr)
	for _, members := range b.groups {
		delete(members, addr)
	}
}

// SetDown marks addr crashed (true) or recovered (false). A crashed endpoint
// keeps its registration but receives nothing and its pending responses are
// lost — exactly a fail-stop crash.
func (b *Bus) SetDown(addr Address, down bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if down {
		b.down[addr] = struct{}{}
	} else {
		delete(b.down, addr)
	}
}

// IsDown reports the crash flag for addr.
func (b *Bus) IsDown(addr Address) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, d := b.down[addr]
	return d
}

// SetDropProbability injects uniform message loss in [0,1).
func (b *Bus) SetDropProbability(p float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 0.999999
	}
	b.dropProb = p
}

// SetPartition assigns addr to a partition group. Addresses in different
// non-zero groups cannot exchange messages; group 0 (default) talks to
// everyone in group 0. Use ClearPartitions to heal.
func (b *Bus) SetPartition(addr Address, group int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if group == 0 {
		delete(b.partition, addr)
	} else {
		b.partition[addr] = group
	}
}

// ClearPartitions heals all partitions.
func (b *Bus) ClearPartitions() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.partition = make(map[Address]int)
}

// SetLinkDelay injects d of extra one-way delay on every message SENT by
// addr (0 removes it) — a slow-but-alive endpoint: its heartbeats and reports
// still arrive, but late enough to flirt with liveness timeouts. Responses it
// produces to inbound calls are delayed too (the reply travels its slow link).
func (b *Bus) SetLinkDelay(addr Address, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if d <= 0 {
		delete(b.linkDelay, addr)
	} else {
		b.linkDelay[addr] = d
	}
}

// SetDuplication makes every message sent by addr be delivered twice with
// probability p in [0,1) (0 removes it) — the duplicated-heartbeat gray
// failure. Duplicated requests reach the handler twice; duplicated responses
// are de-duplicated by the caller's once-only completion.
func (b *Bus) SetDuplication(addr Address, p float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p <= 0 {
		delete(b.dupProb, addr)
	} else {
		if p >= 1 {
			p = 0.999999
		}
		b.dupProb[addr] = p
	}
}

// BlockDirected drops every message flowing from→to while leaving the
// reverse direction intact — a one-way partition between hierarchy levels
// (e.g. a GM whose pushes to the GL vanish while GL heartbeats still arrive).
// Unlike SetPartition it is asymmetric and per-link.
func (b *Bus) BlockDirected(from, to Address) {
	b.mu.Lock()
	defer b.mu.Unlock()
	set, ok := b.blocked[from]
	if !ok {
		set = make(map[Address]struct{})
		b.blocked[from] = set
	}
	set[to] = struct{}{}
}

// UnblockDirected removes one directed block.
func (b *Bus) UnblockDirected(from, to Address) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if set, ok := b.blocked[from]; ok {
		delete(set, to)
		if len(set) == 0 {
			delete(b.blocked, from)
		}
	}
}

// ClearGrayFailures removes every injected link delay, duplication and
// directed block (the gray-failure counterpart of ClearPartitions).
func (b *Bus) ClearGrayFailures() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.linkDelay = make(map[Address]time.Duration)
	b.dupProb = make(map[Address]float64)
	b.blocked = make(map[Address]map[Address]struct{})
}

// Stats returns (delivered, dropped) message counts; dropped includes
// unreachable destinations and injected loss.
func (b *Bus) Stats() (delivered, dropped uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.delivered, b.dropped
}

// JoinGroup subscribes addr to a multicast group.
func (b *Bus) JoinGroup(group string, addr Address) {
	b.mu.Lock()
	defer b.mu.Unlock()
	members, ok := b.groups[group]
	if !ok {
		members = make(map[Address]struct{})
		b.groups[group] = members
	}
	members[addr] = struct{}{}
}

// LeaveGroup unsubscribes addr from a multicast group.
func (b *Bus) LeaveGroup(group string, addr Address) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if members, ok := b.groups[group]; ok {
		delete(members, addr)
	}
}

// GroupMembers returns a snapshot of the group's membership, sorted so that
// multicast fan-out order (and hence jitter assignment) is deterministic.
func (b *Bus) GroupMembers(group string) []Address {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Address, 0, len(b.groups[group]))
	for a := range b.groups[group] {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// canTalkLocked applies crash, partition and directed-block rules.
func (b *Bus) canTalkLocked(from, to Address) bool {
	if _, d := b.down[to]; d {
		return false
	}
	if _, d := b.down[from]; d {
		return false
	}
	if set, ok := b.blocked[from]; ok {
		if _, blocked := set[to]; blocked {
			return false
		}
	}
	pf, pt := b.partition[from], b.partition[to]
	return pf == pt
}

// delayLocked computes this message's delivery delay, including any injected
// slow-link delay on the sender.
func (b *Bus) delayLocked(from Address) time.Duration {
	d := b.cfg.Latency + b.linkDelay[from]
	if b.cfg.Jitter > 0 {
		d += time.Duration(b.rng.Int63n(int64(b.cfg.Jitter)))
	}
	return d
}

// duplicateRollLocked reports whether a message from the given sender should
// be delivered twice.
func (b *Bus) duplicateRollLocked(from Address) bool {
	p := b.dupProb[from]
	return p > 0 && b.rng.Float64() < p
}

// Send delivers a one-way message (no response expected). Returns
// ErrUnreachable when the destination is known-unreachable at send time;
// delivery is re-checked at arrival time (the destination may crash in
// flight).
func (b *Bus) Send(from, to Address, kind string, payload any) error {
	return b.dispatch(from, to, kind, payload, nil)
}

// Call delivers a request and invokes cb exactly once with the response or
// an error. The timeout covers the full round trip. cb runs on the runtime
// executor.
func (b *Bus) Call(from, to Address, kind string, payload any, timeout time.Duration, cb func(reply any, err error)) {
	if cb == nil {
		_ = b.Send(from, to, kind, payload)
		return
	}
	var mu sync.Mutex
	done := false
	finish := func(reply any, err error) {
		mu.Lock()
		if done {
			mu.Unlock()
			return
		}
		done = true
		mu.Unlock()
		cb(reply, err)
	}
	if timeout > 0 {
		b.rt.After(timeout, func() { finish(nil, ErrTimeout) })
	}
	err := b.dispatch(from, to, kind, payload, func(reply any, err error) {
		// Response travels back over the network: apply latency and
		// reachability in the reverse direction.
		b.mu.Lock()
		if !b.canTalkLocked(to, from) || b.dropRollLocked() {
			b.dropped++
			b.mu.Unlock()
			return // caller's timeout will fire
		}
		d := b.delayLocked(to)
		b.delivered++
		b.mu.Unlock()
		b.rt.After(d, func() { finish(reply, err) })
	})
	if err != nil {
		b.rt.After(0, func() { finish(nil, err) })
	}
}

func (b *Bus) dropRollLocked() bool {
	if b.dropProb <= 0 {
		return false
	}
	if b.rng.Float64() < b.dropProb {
		b.unreliable++
		return true
	}
	return false
}

func (b *Bus) dispatch(from, to Address, kind string, payload any, respond func(any, error)) error {
	b.mu.Lock()
	if _, ok := b.handlers[to]; !ok {
		b.dropped++
		b.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	if !b.canTalkLocked(from, to) {
		b.dropped++
		b.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	if b.dropRollLocked() {
		b.dropped++
		b.mu.Unlock()
		return nil // lost in flight: sender cannot tell
	}
	d0 := b.delayLocked(from)
	dup := b.duplicateRollLocked(from)
	var d1 time.Duration
	if dup {
		d1 = b.delayLocked(from)
	}
	b.mu.Unlock()

	deliver := func(d time.Duration) {
		b.rt.After(d, func() {
			b.mu.Lock()
			h, ok := b.handlers[to]
			reachable := ok && b.canTalkLocked(from, to)
			if reachable {
				b.delivered++
			} else {
				b.dropped++
			}
			b.mu.Unlock()
			if !reachable {
				return
			}
			h(&Request{
				Message: Message{From: from, To: to, Kind: kind, Payload: payload},
				respond: respond,
			})
		})
	}
	deliver(d0)
	if dup {
		deliver(d1)
	}
	return nil
}

// Multicast delivers a one-way message to every current member of the group
// except the sender. Unreachable members are silently skipped (UDP multicast
// semantics).
func (b *Bus) Multicast(from Address, group, kind string, payload any) {
	for _, member := range b.GroupMembers(group) {
		if member == from {
			continue
		}
		_ = b.Send(from, member, kind, payload)
	}
}
