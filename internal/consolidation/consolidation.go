// Package consolidation implements the paper's second contribution: VM
// consolidation algorithms that pack VMs onto as few hosts as possible so
// that freed hosts can be suspended (Section III).
//
// Three solvers are provided, matching the paper's evaluation (Section
// III-B):
//
//   - ACO: the novel Ant Colony Optimization consolidation algorithm
//     (ref [10]), a Max-Min Ant System over a VM×host pheromone matrix.
//   - FFD: the First-Fit Decreasing heuristic baseline, including the
//     single-dimension presort the paper criticizes plus L1/L2 vector
//     variants.
//   - Exact: a branch-and-bound vector bin-packing solver standing in for
//     the paper's CPLEX runs, yielding the optimal host count on the
//     instance sizes the paper evaluated.
package consolidation

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"snooze/internal/types"
)

// Problem is one consolidation instance: VM demands and the host inventory.
type Problem struct {
	// VMs carry their demand estimate in Requested.
	VMs []types.VMSpec
	// Nodes is the host inventory (assumed available and empty; callers
	// consolidating a live system pass current VM demand estimates).
	Nodes []types.NodeSpec
}

// TotalDemand sums VM demand.
func (p Problem) TotalDemand() types.ResourceVector {
	var sum types.ResourceVector
	for _, vm := range p.VMs {
		sum = sum.Add(vm.Requested)
	}
	return sum
}

// LowerBound returns the classic per-dimension LP lower bound on the number
// of hosts: max over dimensions of ceil(total demand / per-host capacity),
// assuming homogeneous hosts (heterogeneous inventories use the largest
// host, keeping the bound valid).
func (p Problem) LowerBound() int {
	if len(p.VMs) == 0 {
		return 0
	}
	var capMax types.ResourceVector
	for _, n := range p.Nodes {
		capMax = capMax.Max(n.Capacity)
	}
	total := p.TotalDemand()
	lb := 1
	for d := 0; d < 4; d++ {
		c := capMax.Components()[d]
		t := total.Components()[d]
		if c <= 0 {
			continue
		}
		if b := int(math.Ceil(t/c - 1e-9)); b > lb {
			lb = b
		}
	}
	return lb
}

// Result is a solver outcome.
type Result struct {
	Placement types.Placement
	HostsUsed int
	// Optimal is set by the exact solver when it proved optimality.
	Optimal bool
	// Cycles reports solver-specific iteration counts (ACO cycles, B&B
	// nodes explored).
	Cycles int
}

// Algorithm is a consolidation solver.
type Algorithm interface {
	Solve(p Problem) (Result, error)
	Name() string
}

// Errors shared by solvers.
var (
	// ErrInfeasible means some VM fits in no host.
	ErrInfeasible = errors.New("consolidation: VM fits in no host")
)

// Validate checks that placement assigns every VM of p to a node of p and
// respects capacity on every dimension.
func Validate(p Problem, placement types.Placement) error {
	nodeCap := make(map[types.NodeID]types.ResourceVector, len(p.Nodes))
	for _, n := range p.Nodes {
		nodeCap[n.ID] = n.Capacity
	}
	load := make(map[types.NodeID]types.ResourceVector)
	for _, vm := range p.VMs {
		node, ok := placement[vm.ID]
		if !ok {
			return fmt.Errorf("consolidation: VM %s unplaced", vm.ID)
		}
		capv, ok := nodeCap[node]
		if !ok {
			return fmt.Errorf("consolidation: VM %s placed on unknown node %s", vm.ID, node)
		}
		l := load[node].Add(vm.Requested)
		if !l.FitsIn(capv) {
			return fmt.Errorf("consolidation: node %s overcommitted: %v > %v", node, l, capv)
		}
		load[node] = l
	}
	return nil
}

// AvgHostUtilization returns the mean L1 utilization over hosts that carry
// at least one VM — the "average host utilization" metric of Section III-B.
func AvgHostUtilization(p Problem, placement types.Placement) float64 {
	nodeCap := make(map[types.NodeID]types.ResourceVector, len(p.Nodes))
	for _, n := range p.Nodes {
		nodeCap[n.ID] = n.Capacity
	}
	load := make(map[types.NodeID]types.ResourceVector)
	for _, vm := range p.VMs {
		if node, ok := placement[vm.ID]; ok {
			load[node] = load[node].Add(vm.Requested)
		}
	}
	if len(load) == 0 {
		return 0
	}
	var sum float64
	for node, l := range load {
		sum += l.UtilizationL1(nodeCap[node])
	}
	return sum / float64(len(load))
}

// sortedNodes returns the host inventory in deterministic ID order.
func sortedNodes(p Problem) []types.NodeSpec {
	nodes := append([]types.NodeSpec(nil), p.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	return nodes
}

func fitsAny(vm types.VMSpec, nodes []types.NodeSpec) bool {
	for _, n := range nodes {
		if vm.Requested.FitsIn(n.Capacity) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// FFD baseline
// ---------------------------------------------------------------------------

// SortKey selects the FFD presort dimension.
type SortKey int

// FFD presort keys.
const (
	// SortCPU presorts by CPU only — the single-dimension variant the
	// paper criticizes ("presorting the VMs according to a single
	// dimension (e.g. CPU)", Section I).
	SortCPU SortKey = iota
	// SortL1 presorts by the L1 norm of the demand vector normalized by
	// host capacity.
	SortL1
	// SortL2 presorts by the normalized L2 norm.
	SortL2
)

// String implements fmt.Stringer.
func (k SortKey) String() string {
	switch k {
	case SortCPU:
		return "cpu"
	case SortL1:
		return "l1"
	case SortL2:
		return "l2"
	default:
		return fmt.Sprintf("SortKey(%d)", int(k))
	}
}

// FFD is First-Fit Decreasing over the configured sort key.
type FFD struct {
	Key SortKey
}

// Name implements Algorithm.
func (f FFD) Name() string { return "ffd-" + f.Key.String() }

// Solve implements Algorithm.
func (f FFD) Solve(p Problem) (Result, error) {
	nodes := sortedNodes(p)
	var ref types.ResourceVector
	for _, n := range nodes {
		ref = ref.Max(n.Capacity)
	}
	key := func(vm types.VMSpec) float64 {
		switch f.Key {
		case SortL1:
			return vm.Requested.Divide(ref).Norm1()
		case SortL2:
			return vm.Requested.Divide(ref).Norm2()
		default:
			return vm.Requested.CPU
		}
	}
	vms := append([]types.VMSpec(nil), p.VMs...)
	sort.Slice(vms, func(i, j int) bool {
		ki, kj := key(vms[i]), key(vms[j])
		if ki != kj {
			return ki > kj
		}
		return vms[i].ID < vms[j].ID
	})
	placement := make(types.Placement, len(vms))
	residual := make([]types.ResourceVector, len(nodes))
	for i, n := range nodes {
		residual[i] = n.Capacity
	}
	for _, vm := range vms {
		placed := false
		for i := range nodes {
			if vm.Requested.FitsIn(residual[i]) {
				placement[vm.ID] = nodes[i].ID
				residual[i] = residual[i].Sub(vm.Requested)
				placed = true
				break
			}
		}
		if !placed {
			return Result{}, fmt.Errorf("%w: %s", ErrInfeasible, vm.ID)
		}
	}
	return Result{Placement: placement, HostsUsed: placement.NodesUsed()}, nil
}

// ---------------------------------------------------------------------------
// Exact branch-and-bound (CPLEX substitute)
// ---------------------------------------------------------------------------

// Exact is a branch-and-bound vector bin-packing solver. It assumes a
// homogeneous host inventory (which the paper's instances and this repo's
// generated instances satisfy) and exploits bin symmetry: a VM may go into
// any currently used bin or exactly one fresh bin.
type Exact struct {
	// MaxNodes caps the number of search nodes explored; 0 means 50M.
	// When the cap is hit, the best placement found so far is returned
	// with Optimal=false.
	MaxNodes int
}

// Name implements Algorithm.
func (Exact) Name() string { return "exact-bb" }

// Solve implements Algorithm.
func (e Exact) Solve(p Problem) (Result, error) {
	nodes := sortedNodes(p)
	if len(p.VMs) == 0 {
		return Result{Placement: types.Placement{}, Optimal: true}, nil
	}
	if len(nodes) == 0 {
		return Result{}, fmt.Errorf("%w: no hosts", ErrInfeasible)
	}
	capv := nodes[0].Capacity
	for _, vm := range p.VMs {
		if !vm.Requested.FitsIn(capv) {
			return Result{}, fmt.Errorf("%w: %s", ErrInfeasible, vm.ID)
		}
	}
	// Sort VMs decreasing (stronger pruning early).
	vms := append([]types.VMSpec(nil), p.VMs...)
	sort.Slice(vms, func(i, j int) bool {
		ki, kj := vms[i].Requested.Divide(capv).Norm1(), vms[j].Requested.Divide(capv).Norm1()
		if ki != kj {
			return ki > kj
		}
		return vms[i].ID < vms[j].ID
	})

	maxNodes := e.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 50_000_000
	}
	lb := p.LowerBound()

	// Start from the best FFD variant as the incumbent.
	bestUsed := len(nodes) + 1
	var bestAssign []int
	for _, k := range []SortKey{SortCPU, SortL1, SortL2} {
		if r, err := (FFD{Key: k}).Solve(p); err == nil && r.HostsUsed < bestUsed {
			bestUsed = r.HostsUsed
			bestAssign = make([]int, len(vms))
			idx := make(map[types.NodeID]int, len(nodes))
			next := 0
			for i, vm := range vms {
				nid := r.Placement[vm.ID]
				j, ok := idx[nid]
				if !ok {
					j = next
					idx[nid] = j
					next++
				}
				bestAssign[i] = j
			}
		}
	}

	assign := make([]int, len(vms))
	residual := make([]types.ResourceVector, len(vms)) // at most one bin per VM
	for i := range residual {
		residual[i] = capv
	}
	explored := 0
	proved := true

	var rec func(i, used int)
	rec = func(i, used int) {
		if explored >= maxNodes {
			proved = false
			return
		}
		explored++
		if used >= bestUsed {
			return // bound
		}
		if i == len(vms) {
			bestUsed = used
			bestAssign = append(bestAssign[:0:0], assign...)
			return
		}
		vm := vms[i]
		// Try each open bin, then one fresh bin (symmetry breaking).
		limit := used + 1
		if limit > len(vms) {
			limit = len(vms)
		}
		for b := 0; b < limit; b++ {
			if !vm.Requested.FitsIn(residual[b]) {
				continue
			}
			newUsed := used
			if b == used {
				newUsed = used + 1
			}
			if newUsed >= bestUsed {
				continue
			}
			residual[b] = residual[b].Sub(vm.Requested)
			assign[i] = b
			rec(i+1, newUsed)
			residual[b] = residual[b].Add(vm.Requested)
			if bestUsed == lb {
				return // provably optimal already
			}
		}
	}
	rec(0, 0)

	if bestAssign == nil {
		return Result{}, fmt.Errorf("%w: no feasible packing found", ErrInfeasible)
	}
	if bestUsed > len(nodes) {
		return Result{}, fmt.Errorf("%w: needs %d hosts, have %d", ErrInfeasible, bestUsed, len(nodes))
	}
	placement := make(types.Placement, len(vms))
	for i, vm := range vms {
		placement[vm.ID] = nodes[bestAssign[i]].ID
	}
	return Result{
		Placement: placement,
		HostsUsed: placement.NodesUsed(),
		Optimal:   proved,
		Cycles:    explored,
	}, nil
}
