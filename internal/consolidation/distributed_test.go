package consolidation

import (
	"errors"
	"testing"

	"snooze/internal/types"
	"snooze/internal/workload"
)

func TestDistributedACOValid(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		p := uniformProblem(seed, 120, workload.UniformInstance)
		r, err := (DistributedACO{GroupSize: 20}).Solve(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Validate(p, r.Placement); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.HostsUsed < p.LowerBound() {
			t.Fatalf("seed %d: below lower bound", seed)
		}
	}
}

func TestDistributedACONearCentralized(t *testing.T) {
	// Distributed quality must stay within a modest factor of centralized
	// ACO — the scalability/quality trade the paper's future work targets.
	p := uniformProblem(9, 120, workload.UniformInstance)
	central, err := (ACO{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := (DistributedACO{GroupSize: 24}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if float64(dist.HostsUsed) > 1.25*float64(central.HostsUsed)+1 {
		t.Fatalf("distributed %d hosts vs centralized %d", dist.HostsUsed, central.HostsUsed)
	}
}

func TestDistributedACOBeatsNoExchange(t *testing.T) {
	// The exchange phase must not hurt, and usually releases hosts the
	// local phase stranded.
	p := uniformProblem(5, 90, workload.UniformInstance)
	with, err := (DistributedACO{GroupSize: 15, ExchangeRounds: 10}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// ExchangeRounds: -1 is coerced to default; emulate "none" via 0-size
	// comparison using one round of a fresh run minus releases is not
	// directly expressible, so compare against group-count lower rounds.
	minimal, err := (DistributedACO{GroupSize: 15, ExchangeRounds: 1}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if with.HostsUsed > minimal.HostsUsed {
		t.Fatalf("more exchange rounds made it worse: %d vs %d", with.HostsUsed, minimal.HostsUsed)
	}
}

func TestDistributedACOEdgeCases(t *testing.T) {
	if r, err := (DistributedACO{}).Solve(Problem{Nodes: tinyProblem().Nodes}); err != nil || len(r.Placement) != 0 {
		t.Fatalf("empty: %+v %v", r, err)
	}
	if _, err := (DistributedACO{}).Solve(Problem{VMs: tinyProblem().VMs}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("no hosts: %v", err)
	}
	p := tinyProblem()
	p.VMs[0].Requested = types.RV(1000, 1, 1, 1)
	if _, err := (DistributedACO{}).Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("oversized: %v", err)
	}
	// Tiny group size coerces to a sane default rather than panicking.
	small := uniformProblem(2, 30, workload.UniformInstance)
	r, err := (DistributedACO{GroupSize: 1}).Solve(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(small, r.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedACODeterministic(t *testing.T) {
	p := uniformProblem(7, 80, workload.CorrelatedInstance)
	cfg := DefaultACOConfig()
	cfg.Seed = 3
	a, err := (DistributedACO{Config: cfg, GroupSize: 16}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (DistributedACO{Config: cfg, GroupSize: 16}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.HostsUsed != b.HostsUsed {
		t.Fatalf("non-deterministic: %d vs %d", a.HostsUsed, b.HostsUsed)
	}
	for vm, n := range a.Placement {
		if b.Placement[vm] != n {
			t.Fatalf("placement differs for %s", vm)
		}
	}
}

func TestReleaseOneHost(t *testing.T) {
	capv := types.RV(8, 16384, 1000, 1000)
	specs := map[types.VMID]types.VMSpec{
		"a": {ID: "a", Requested: capv.Scale(0.25)},
		"b": {ID: "b", Requested: capv.Scale(0.25)},
		"c": {ID: "c", Requested: capv.Scale(0.5)},
	}
	capacity := map[types.NodeID]types.ResourceVector{"n1": capv, "n2": capv}
	// n1 holds a+b (50%), n2 holds c (50%): releasing n1 moves a,b to n2.
	placement := types.Placement{"a": "n1", "b": "n1", "c": "n2"}
	if !releaseOneHost(placement, specs, capacity) {
		t.Fatal("release failed")
	}
	if placement.NodesUsed() != 1 {
		t.Fatalf("hosts after release: %d", placement.NodesUsed())
	}
	// Nothing more to release (single host).
	if releaseOneHost(placement, specs, capacity) {
		t.Fatal("released the last host")
	}
}
