package consolidation

import (
	"fmt"
	"sort"
	"sync"

	"snooze/internal/types"
)

// DistributedACO is the distributed variant of the consolidation algorithm
// the paper lists as future work (Section V: "a distributed version of the
// algorithm will be developed"). It mirrors how consolidation would run
// across Snooze's Group Managers:
//
//  1. Partition: hosts are split into groups of GroupSize (one per GM) and
//     every VM is attributed to its group (for a fresh instance, VMs are
//     dealt round-robin; for a live system the grouping is the GM
//     membership).
//  2. Local phase: each group runs the centralized ACO on its own VMs and
//     hosts, in parallel — no cross-group communication, exactly the
//     scalability argument of Section III ("distributed nature-inspired VM
//     consolidation approaches to enhance scalability").
//  3. Exchange phase: groups are ordered by how empty their least-utilized
//     host is; a fixed number of rounds migrates the VMs of each group's
//     emptiest host into residual capacity of other groups (the
//     inter-group handoff a GL-coordinated reconfiguration would perform),
//     releasing whole hosts that the local phase could not free.
//
// The result is a valid global placement whose quality approaches the
// centralized algorithm while each ACO instance only sees 1/k of the
// problem.
type DistributedACO struct {
	Config ACOConfig
	// GroupSize is the number of hosts per group (a GM's LC count).
	// Values < 2 default to 16.
	GroupSize int
	// ExchangeRounds bounds the inter-group host-release rounds; 0 means
	// one round per group.
	ExchangeRounds int
}

// Name implements Algorithm.
func (DistributedACO) Name() string { return "aco-distributed" }

type acoGroup struct {
	nodes []types.NodeSpec
	vms   []types.VMSpec
}

// Solve implements Algorithm.
func (d DistributedACO) Solve(p Problem) (Result, error) {
	groupSize := d.GroupSize
	if groupSize < 2 {
		groupSize = 16
	}
	nodes := sortedNodes(p)
	if len(p.VMs) == 0 {
		return Result{Placement: types.Placement{}}, nil
	}
	if len(nodes) == 0 {
		return Result{}, fmt.Errorf("%w: no hosts", ErrInfeasible)
	}
	for _, vm := range p.VMs {
		if !fitsAny(vm, nodes) {
			return Result{}, fmt.Errorf("%w: %s", ErrInfeasible, vm.ID)
		}
	}

	// 1. Partition hosts, deal VMs round-robin (largest first so every
	// group receives a comparable mix).
	var groups []*acoGroup
	for i := 0; i < len(nodes); i += groupSize {
		end := i + groupSize
		if end > len(nodes) {
			end = len(nodes)
		}
		groups = append(groups, &acoGroup{nodes: nodes[i:end]})
	}
	vms := append([]types.VMSpec(nil), p.VMs...)
	sort.Slice(vms, func(i, j int) bool {
		ni, nj := vms[i].Requested.Norm1(), vms[j].Requested.Norm1()
		if ni != nj {
			return ni > nj
		}
		return vms[i].ID < vms[j].ID
	})
	// Deal round-robin but never give a group more VMs than it has hosts
	// (the tail group may be smaller than GroupSize).
	gi := 0
	for _, vm := range vms {
		placedInGroup := false
		for tries := 0; tries < len(groups); tries++ {
			g := groups[(gi+tries)%len(groups)]
			if len(g.vms) < len(g.nodes) {
				g.vms = append(g.vms, vm)
				gi = (gi + tries + 1) % len(groups)
				placedInGroup = true
				break
			}
		}
		if !placedInGroup {
			// More VMs than hosts overall: give it to the round-robin
			// group anyway; the local solver (or the global fallback)
			// decides feasibility.
			groups[gi].vms = append(groups[gi].vms, vm)
			gi = (gi + 1) % len(groups)
		}
	}

	// 2. Local phase, in parallel.
	placements := make([]types.Placement, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for gi, g := range groups {
		wg.Add(1)
		go func(gi int, g *acoGroup) {
			defer wg.Done()
			if len(g.vms) == 0 {
				placements[gi] = types.Placement{}
				return
			}
			cfg := d.Config
			if cfg.Ants <= 0 || cfg.Cycles <= 0 {
				cfg = DefaultACOConfig()
			}
			cfg.Seed = cfg.Seed*31 + int64(gi) // independent colonies
			r, err := (ACO{Config: cfg}).Solve(Problem{VMs: g.vms, Nodes: g.nodes})
			placements[gi], errs[gi] = r.Placement, err
		}(gi, g)
	}
	wg.Wait()
	global := types.Placement{}
	for gi, pl := range placements {
		if errs[gi] != nil {
			continue // group failed locally; its VMs go to the fallback
		}
		for vm, n := range pl {
			global[vm] = n
		}
	}
	// Global fallback: first-fit any VMs a local colony could not pack
	// into the cluster-wide residual capacity.
	if err := fallbackPlace(global, vms, nodes); err != nil {
		return Result{}, err
	}

	// 3. Exchange phase: try to release each group's emptiest host by
	// rehoming its VMs into residual capacity anywhere in the cluster.
	specByID := make(map[types.VMID]types.VMSpec, len(p.VMs))
	for _, vm := range p.VMs {
		specByID[vm.ID] = vm
	}
	capByNode := make(map[types.NodeID]types.ResourceVector, len(nodes))
	for _, n := range nodes {
		capByNode[n.ID] = n.Capacity
	}
	rounds := d.ExchangeRounds
	if rounds <= 0 {
		rounds = len(groups)
	}
	for round := 0; round < rounds; round++ {
		if !releaseOneHost(global, specByID, capByNode) {
			break
		}
	}

	return Result{
		Placement: global,
		HostsUsed: global.NodesUsed(),
		Cycles:    len(groups),
	}, nil
}

// fallbackPlace first-fits every VM missing from placement into residual
// capacity, preferring already-occupied hosts.
func fallbackPlace(placement types.Placement, vms []types.VMSpec, nodes []types.NodeSpec) error {
	load := make(map[types.NodeID]types.ResourceVector)
	specByID := make(map[types.VMID]types.VMSpec, len(vms))
	for _, vm := range vms {
		specByID[vm.ID] = vm
	}
	for vm, n := range placement {
		load[n] = load[n].Add(specByID[vm].Requested)
	}
	for _, vm := range vms {
		if _, ok := placement[vm.ID]; ok {
			continue
		}
		placed := false
		// Occupied hosts first (keeps free hosts free), then empty ones.
		for pass := 0; pass < 2 && !placed; pass++ {
			for _, n := range nodes {
				_, occupied := load[n.ID]
				if (pass == 0) != occupied {
					continue
				}
				if vm.Requested.FitsIn(n.Capacity.Sub(load[n.ID])) {
					placement[vm.ID] = n.ID
					load[n.ID] = load[n.ID].Add(vm.Requested)
					placed = true
					break
				}
			}
		}
		if !placed {
			return fmt.Errorf("%w: %s (distributed fallback)", ErrInfeasible, vm.ID)
		}
	}
	return nil
}

// releaseOneHost finds the least-loaded occupied host whose VMs all fit
// elsewhere, migrates them, and reports whether a host was freed.
func releaseOneHost(placement types.Placement, specs map[types.VMID]types.VMSpec, capacity map[types.NodeID]types.ResourceVector) bool {
	load := make(map[types.NodeID]types.ResourceVector)
	byNode := make(map[types.NodeID][]types.VMID)
	for vm, n := range placement {
		load[n] = load[n].Add(specs[vm].Requested)
		byNode[n] = append(byNode[n], vm)
	}
	// Candidate donors: occupied hosts, least L1-utilized first.
	type cand struct {
		id   types.NodeID
		util float64
	}
	var donors []cand
	for n, l := range load {
		donors = append(donors, cand{id: n, util: l.UtilizationL1(capacity[n])})
	}
	sort.Slice(donors, func(i, j int) bool {
		if donors[i].util != donors[j].util {
			return donors[i].util < donors[j].util
		}
		return donors[i].id < donors[j].id
	})
	// Receivers: most-utilized first so releases concentrate free hosts.
	for _, donor := range donors {
		vms := append([]types.VMID(nil), byNode[donor.id]...)
		sort.Slice(vms, func(i, j int) bool {
			ni, nj := specs[vms[i]].Requested.Norm1(), specs[vms[j]].Requested.Norm1()
			if ni != nj {
				return ni > nj
			}
			return vms[i] < vms[j]
		})
		trialLoad := make(map[types.NodeID]types.ResourceVector, len(load))
		for n, l := range load {
			trialLoad[n] = l
		}
		moves := make(map[types.VMID]types.NodeID, len(vms))
		ok := true
		for _, vm := range vms {
			var recv []cand
			for n, l := range trialLoad {
				if n == donor.id {
					continue
				}
				recv = append(recv, cand{id: n, util: l.UtilizationL1(capacity[n])})
			}
			sort.Slice(recv, func(i, j int) bool {
				if recv[i].util != recv[j].util {
					return recv[i].util > recv[j].util
				}
				return recv[i].id < recv[j].id
			})
			placed := false
			for _, r := range recv {
				if specs[vm].Requested.FitsIn(capacity[r.id].Sub(trialLoad[r.id])) {
					trialLoad[r.id] = trialLoad[r.id].Add(specs[vm].Requested)
					moves[vm] = r.id
					placed = true
					break
				}
			}
			if !placed {
				ok = false
				break
			}
		}
		if ok && len(moves) > 0 {
			for vm, to := range moves {
				placement[vm] = to
			}
			return true
		}
	}
	return false
}
