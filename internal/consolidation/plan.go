package consolidation

import (
	"sort"

	"snooze/internal/types"
)

// Plan converts a target placement into an ordered migration sequence from
// the current placement. The order matters: a naive sequence can transiently
// overcommit a destination that is itself waiting to be drained. Plan emits
// moves greedily, always picking a migration whose destination currently has
// room; cyclic dependencies that admit no safe order (rare in consolidation,
// which empties hosts rather than swapping) are appended at the end as
// best-effort moves the executor may retry.
//
// VMs present in current but absent from target are left untouched; VMs in
// target but not in current are ignored (they are placements, not
// migrations).
func Plan(current, target types.Placement, specs map[types.VMID]types.VMSpec, nodes []types.NodeSpec) []types.Migration {
	capacity := make(map[types.NodeID]types.ResourceVector, len(nodes))
	for _, n := range nodes {
		capacity[n.ID] = n.Capacity
	}
	// Current reservation per node.
	load := make(map[types.NodeID]types.ResourceVector)
	for vm, node := range current {
		if spec, ok := specs[vm]; ok {
			load[node] = load[node].Add(spec.Requested)
		}
	}
	// Pending moves, deterministic order.
	var pending []types.Migration
	for vm, from := range current {
		to, ok := target[vm]
		if !ok || to == from {
			continue
		}
		pending = append(pending, types.Migration{VM: vm, From: from, To: to})
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].VM < pending[j].VM })

	var plan []types.Migration
	for len(pending) > 0 {
		progressed := false
		rest := pending[:0]
		for _, m := range pending {
			spec, ok := specs[m.VM]
			if !ok {
				continue // unknown VM: drop silently
			}
			free := capacity[m.To].Sub(load[m.To])
			if spec.Requested.FitsIn(free) {
				plan = append(plan, m)
				load[m.To] = load[m.To].Add(spec.Requested)
				load[m.From] = load[m.From].Sub(spec.Requested).Max(types.ResourceVector{})
				progressed = true
			} else {
				rest = append(rest, m)
			}
		}
		pending = rest
		if !progressed {
			// Deadlocked cycle: emit remaining moves unordered.
			plan = append(plan, pending...)
			break
		}
	}
	return plan
}

// MigrationCost estimates the total data moved by a plan in megabytes
// (pre-copy transfers the VM's memory), the cost metric consolidation
// policies weigh against the energy savings of freed hosts.
func MigrationCost(plan []types.Migration, specs map[types.VMID]types.VMSpec) float64 {
	var mb float64
	for _, m := range plan {
		if spec, ok := specs[m.VM]; ok {
			mb += spec.Requested.Memory
		}
	}
	return mb
}
