package consolidation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snooze/internal/types"
	"snooze/internal/workload"
)

// Property-based tests over randomly generated instances: every solver must
// produce a valid placement whose host count respects the problem's lower
// bound, and the solvers must respect their quality ordering.

func randomProblem(rng *rand.Rand) Problem {
	n := 5 + rng.Intn(26) // 5..30 VMs
	kind := workload.InstanceKind(rng.Intn(3))
	lo := 0.05 + rng.Float64()*0.15
	hi := lo + 0.1 + rng.Float64()*0.3
	inst := workload.NewInstance(workload.InstanceConfig{
		Seed: rng.Int63(), VMs: n, Kind: kind, Lo: lo, Hi: hi,
	})
	return Problem{VMs: inst.VMs, Nodes: inst.Nodes}
}

func TestPropertyAllSolversValid(t *testing.T) {
	algos := []Algorithm{
		FFD{Key: SortCPU}, FFD{Key: SortL1}, FFD{Key: SortL2},
		ACO{Config: ACOConfig{Ants: 4, Cycles: 5, Alpha: 1, Beta: 4, Rho: 0.3, Q: 2, Seed: 1}},
		DistributedACO{GroupSize: 8},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		lb := p.LowerBound()
		for _, a := range algos {
			r, err := a.Solve(p)
			if err != nil {
				t.Logf("%s: %v", a.Name(), err)
				return false
			}
			if err := Validate(p, r.Placement); err != nil {
				t.Logf("%s: %v", a.Name(), err)
				return false
			}
			if r.HostsUsed < lb {
				t.Logf("%s: %d hosts below bound %d", a.Name(), r.HostsUsed, lb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyExactNeverWorse(t *testing.T) {
	// The exact solver (bounded) must never use more hosts than any
	// heuristic, and when it proves optimality it must match or beat ACO.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := workload.NewInstance(workload.InstanceConfig{
			Seed: rng.Int63(), VMs: 6 + rng.Intn(10), Kind: workload.UniformInstance, Lo: 0.1, Hi: 0.4,
		})
		p := Problem{VMs: inst.VMs, Nodes: inst.Nodes}
		ex, err := (Exact{MaxNodes: 500_000}).Solve(p)
		if err != nil {
			return false
		}
		ffd, err := (FFD{Key: SortCPU}).Solve(p)
		if err != nil {
			return false
		}
		if ex.HostsUsed > ffd.HostsUsed {
			t.Logf("exact %d > ffd %d", ex.HostsUsed, ffd.HostsUsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPlanReachesTarget(t *testing.T) {
	// For any two valid placements of the same instance, applying the plan
	// transforms current into target exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		cur, err := (FFD{Key: SortCPU}).Solve(p)
		if err != nil {
			return false
		}
		tgt, err := (ACO{Config: ACOConfig{Ants: 4, Cycles: 4, Alpha: 1, Beta: 4, Rho: 0.3, Q: 2, Seed: seed}}).Solve(p)
		if err != nil {
			return false
		}
		specs := map[types.VMID]types.VMSpec{}
		for _, vm := range p.VMs {
			specs[vm.ID] = vm
		}
		plan := Plan(cur.Placement, tgt.Placement, specs, p.Nodes)
		got := cur.Placement.Clone()
		for _, m := range plan {
			got[m.VM] = m.To
		}
		for vm, n := range tgt.Placement {
			if got[vm] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
