package consolidation

import (
	"testing"

	"snooze/internal/workload"
)

// benchSink keeps solver results live across iterations.
var benchSink int

// BenchmarkACOSolve compares the serial solver against the parallel-colony
// solver at equal total work. ParallelACO with C colonies explores C
// independent trajectories (plus the best-plan exchange); its serial
// equivalent is C multi-start runs taking the best placement. The single-run
// variant prices one raw trajectory for reference.
func BenchmarkACOSolve(b *testing.B) {
	p := uniformProblem(3, 48, workload.CorrelatedInstance)
	cfg := DefaultACOConfig()
	cfg.Seed = 17
	const colonies = 4

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := (ACO{Config: cfg}).Solve(p)
			if err != nil {
				b.Fatal(err)
			}
			benchSink = r.HostsUsed
		}
	})
	b.Run("serial-multistart-x4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best := -1
			for c := 0; c < colonies; c++ {
				run := cfg
				run.Seed = colonySeed(cfg.Seed, c)
				r, err := (ACO{Config: run}).Solve(p)
				if err != nil {
					b.Fatal(err)
				}
				if best < 0 || r.HostsUsed < best {
					best = r.HostsUsed
				}
			}
			benchSink = best
		}
	})
	b.Run("parallel-x4", func(b *testing.B) {
		solver := ParallelACO{Colonies: colonies, Config: cfg}
		for i := 0; i < b.N; i++ {
			r, err := solver.Solve(p)
			if err != nil {
				b.Fatal(err)
			}
			benchSink = r.HostsUsed
		}
	})
}
