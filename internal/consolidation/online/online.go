// Package online runs consolidation as a continuous control loop — the
// paper's headline use of the ACO packer inside the autonomic GL/GM/LC
// hierarchy (Feller & Morin, Sections II-C and III) — instead of the one-shot
// dry run the api/v1 surface started with.
//
// Each round the Optimizer builds its packing problem from live capacity
// views (scheduling/view): VM demand is the p95 of the windowed per-VM
// series, falling back to the snapshot when history is thin, never raw
// points. The problem is solved by parallel ant colonies
// (consolidation.ParallelACO — independent colonies on goroutines sharing a
// deterministic best-plan exchange), and the resulting incremental plan is
// capped by a per-round migration budget. Plan execution is a small state
// machine: migrations are issued one at a time through the Host (the GM), and
// before each one the plan is re-validated against fresh views — a source
// whose load is falling or a receiver heating past the p95 gate cancels the
// remainder of the plan, because the trends it was computed from have shifted
// under it.
//
// Every round journals a consolidation.round event and every migration
// outcome a consolidation.migration event; the Host's counters
// (gm.consolidation-rounds, gm.consolidation-migrations,
// gm.consolidation-cancels) expose the same flow to metrics.
package online

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"snooze/internal/consolidation"
	"snooze/internal/obs"
	"snooze/internal/simkernel"
	"snooze/internal/telemetry"
	"snooze/internal/types"
)

// Defaults.
const (
	// DefaultPeriod is the round period.
	DefaultPeriod = 30 * time.Second
	// DefaultMigrationBudget caps migrations per round.
	DefaultMigrationBudget = 4
	// DefaultColonies is the parallel ant-colony count.
	DefaultColonies = 4
	// DefaultReceiverHotP95 is the receiver-side cancellation gate: a
	// migration is cancelled when its destination's fresh p95 utilization
	// reaches this level.
	DefaultReceiverHotP95 = 0.90
	// DefaultSourceFallingTrend is the source-side cancellation gate in
	// utilization per second: a migration is cancelled when its source's
	// fresh load trend falls below this (the load is draining on its own,
	// so the plan's premise has shifted).
	DefaultSourceFallingTrend = -0.002
	// DefaultMinNodes is the minimum active node count worth consolidating.
	DefaultMinNodes = 2
)

// Config parameterizes the online optimizer. The zero value disables it; a
// Config with Enabled set and everything else zero runs with the defaults
// above.
type Config struct {
	// Enabled starts the optimizer with the GM role.
	Enabled bool
	// Period is the round period (DefaultPeriod when zero).
	Period time.Duration
	// MigrationBudget caps migrations per round
	// (DefaultMigrationBudget when zero; negative means unlimited).
	MigrationBudget int
	// Colonies is the parallel ant-colony count (DefaultColonies when zero).
	Colonies int
	// ACO parameterizes every colony (consolidation.DefaultACOConfig when
	// zero). The per-round solver seed is derived from ACO.Seed and the
	// round number, so rounds explore independently yet reproducibly.
	ACO consolidation.ACOConfig
	// ReceiverHotP95 is the receiver-side cancellation gate
	// (DefaultReceiverHotP95 when zero).
	ReceiverHotP95 float64
	// SourceFallingTrend is the source-side cancellation gate
	// (DefaultSourceFallingTrend when zero).
	SourceFallingTrend float64
	// MinNodes is the minimum active node count worth consolidating
	// (DefaultMinNodes when zero).
	MinNodes int
	// Tracer records a consolidation.round span per round and a
	// consolidation.migration child span per planned migration (nil
	// disables tracing).
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = DefaultPeriod
	}
	if c.MigrationBudget == 0 {
		c.MigrationBudget = DefaultMigrationBudget
	}
	if c.Colonies <= 0 {
		c.Colonies = DefaultColonies
	}
	if c.ACO.Ants <= 0 || c.ACO.Cycles <= 0 {
		c.ACO = consolidation.DefaultACOConfig()
	}
	if c.ReceiverHotP95 <= 0 {
		c.ReceiverHotP95 = DefaultReceiverHotP95
	}
	if c.SourceFallingTrend == 0 {
		c.SourceFallingTrend = DefaultSourceFallingTrend
	}
	if c.MinNodes <= 0 {
		c.MinNodes = DefaultMinNodes
	}
	return c
}

// VMDemand prices one running VM for the packing problem: its spec, its
// current node and the demand estimate the round plans against (p95 of the
// windowed series, snapshot fallback — see Host.ConsolidationSnapshot).
type VMDemand struct {
	Spec   types.VMSpec
	Node   types.NodeID
	Demand types.ResourceVector
}

// NodeLoad is one schedulable node plus its current view statistics.
type NodeLoad struct {
	Spec types.NodeSpec
	// P95 and Trend summarize the node's windowed "util" series; Fresh
	// reports whether they are trustworthy (view.Stats semantics). Stale
	// statistics never cancel a migration.
	P95   float64
	Trend float64
	Fresh bool
}

// Snapshot is the optimizer's per-round input, assembled by the Host from
// live capacity views.
type Snapshot struct {
	Now   time.Duration
	Nodes []NodeLoad
	VMs   []VMDemand
	// Epoch is the host's group-wide view epoch at assembly time (0 when the
	// host does not track one): a counter bumped by every state change that
	// can alter the views — monitor ingestion, reservations, migrations,
	// sleep/wake, membership. An unchanged epoch since the last completed
	// round means nothing moved, and the optimizer skips the round's solve
	// entirely.
	Epoch uint64
}

// Host is the optimizer's interface to the GM: problem input, fresh per-node
// re-validation views, migration execution, and the journal/metrics sinks.
// All methods must be safe to call from runtime callbacks.
type Host interface {
	// ConsolidationSnapshot assembles the round input; ok is false when the
	// host currently has nothing to consolidate (not in the GM role, too few
	// nodes).
	ConsolidationSnapshot() (Snapshot, bool)
	// NodeLoad returns a fresh view of one node for pre-migration
	// re-validation; ok is false when the node is gone or unschedulable.
	NodeLoad(id types.NodeID) (NodeLoad, bool)
	// Migrate issues one live migration; done is invoked exactly once with
	// the outcome.
	Migrate(m types.Migration, done func(ok bool))
	// Emit journals an event at the current runtime instant.
	Emit(typ, entity string, attrs map[string]string)
	// Mark bumps a counter.
	Mark(name string, delta int64)
}

// RoundInfo summarizes one completed round.
type RoundInfo struct {
	Round       uint64        `json:"round"`
	At          time.Duration `json:"at"`
	HostsBefore int           `json:"hostsBefore"`
	HostsAfter  int           `json:"hostsAfter"`
	Planned     int           `json:"planned"`
	Executed    int           `json:"executed"`
	Failed      int           `json:"failed"`
	Cancelled   int           `json:"cancelled"`
}

// Status is the optimizer's externally visible state.
type Status struct {
	Running    bool          `json:"running"`
	InRound    bool          `json:"inRound"`
	Rounds     uint64        `json:"rounds"`
	Migrations uint64        `json:"migrations"`
	Cancels    uint64        `json:"cancels"`
	Failures   uint64        `json:"failures"`
	Budget     int           `json:"budget"`
	Period     time.Duration `json:"period"`
	LastRound  *RoundInfo    `json:"lastRound,omitempty"`
}

// Optimizer is the continuous consolidation service: a Start/Stop lifecycle
// around a periodic round of snapshot → parallel-ACO solve → budgeted,
// trend-revalidated plan execution.
type Optimizer struct {
	rt   simkernel.Runtime
	host Host
	cfg  Config

	mu      sync.Mutex
	running bool
	ticker  *simkernel.Ticker
	gen     uint64 // bumped by Stop; orphans in-flight migration callbacks
	// lastEpoch is the snapshot epoch of the last round that ran its solve;
	// a tick whose snapshot carries the same (non-zero) epoch skips outright.
	lastEpoch uint64

	inRound bool
	round   uint64 // rounds completed
	mig     uint64 // migrations executed ok
	cancels uint64
	fails   uint64
	last    *RoundInfo

	// Current plan execution state (valid while inRound).
	span    obs.Span // round span (no-op when tracing is off)
	plan    []types.Migration
	next    int
	applied []types.Migration // successfully executed moves, in order
	info    RoundInfo
	start   types.Placement // placement the round planned from
}

// New creates an optimizer; call Start to begin rounds.
func New(rt simkernel.Runtime, host Host, cfg Config) *Optimizer {
	return &Optimizer{rt: rt, host: host, cfg: cfg.withDefaults()}
}

// Config returns the effective (default-filled) configuration.
func (o *Optimizer) Config() Config { return o.cfg }

// Start begins periodic rounds. It is idempotent.
func (o *Optimizer) Start() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.running {
		return
	}
	o.running = true
	// Tickers cannot be re-armed after Stop; each Start gets a fresh one.
	o.ticker = simkernel.NewTicker(o.rt, o.cfg.Period, o.tick)
	o.ticker.Start()
}

// Stop halts rounds and abandons any in-flight plan: pending migration
// callbacks from a previous generation are ignored. It is idempotent.
func (o *Optimizer) Stop() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.running {
		return
	}
	o.running = false
	o.gen++
	o.lastEpoch = 0 // a restarted optimizer re-plans unconditionally
	o.inRound = false
	o.span = obs.Span{}
	o.plan = nil
	o.start = nil
	if o.ticker != nil {
		o.ticker.Stop()
		o.ticker = nil
	}
}

// Status snapshots the optimizer state.
func (o *Optimizer) Status() Status {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := Status{
		Running:    o.running,
		InRound:    o.inRound,
		Rounds:     o.round,
		Migrations: o.mig,
		Cancels:    o.cancels,
		Failures:   o.fails,
		Budget:     o.cfg.MigrationBudget,
		Period:     o.cfg.Period,
	}
	if o.last != nil {
		info := *o.last
		st.LastRound = &info
	}
	return st
}

// tick starts one round unless the previous one is still executing (a round
// that outlives the period is not stacked — the next tick picks up from the
// then-current state, which makes partially executed plans naturally
// idempotent: the follow-up round re-plans from wherever execution stopped).
func (o *Optimizer) tick() {
	o.mu.Lock()
	if !o.running || o.inRound {
		o.mu.Unlock()
		return
	}
	o.inRound = true
	gen := o.gen
	// The round is trace-root: the period tick, not a request, started it;
	// its migrations become child spans.
	span := o.cfg.Tracer.StartTrace(obs.KindConsolidationRound, "consolidation")
	o.span = span
	o.mu.Unlock()

	snap, ok := o.host.ConsolidationSnapshot()
	if !ok || len(snap.Nodes) < o.cfg.MinNodes || len(snap.VMs) == 0 {
		o.mu.Lock()
		o.inRound = false
		o.span = obs.Span{}
		o.mu.Unlock()
		span.Finish("skipped")
		return
	}
	// Epoch gate: an unchanged group-wide view epoch means no monitor
	// ingestion, placement, migration, sleep/wake or membership change
	// happened since the last solve — the same problem would be rebuilt and
	// re-solved. Skip the whole scan (including the ACO solve, the expensive
	// part) and wait for something to move.
	o.mu.Lock()
	if snap.Epoch != 0 && snap.Epoch == o.lastEpoch {
		o.inRound = false
		o.span = obs.Span{}
		o.mu.Unlock()
		span.Finish("skipped-unchanged")
		o.host.Mark("gm.consolidation-skips-unchanged", 1)
		return
	}
	o.lastEpoch = snap.Epoch
	o.mu.Unlock()
	o.runRound(gen, snap)
}

// runRound solves the packing problem and starts plan execution.
func (o *Optimizer) runRound(gen uint64, snap Snapshot) {
	problem := consolidation.Problem{}
	current := types.Placement{}
	specs := map[types.VMID]types.VMSpec{}
	for _, n := range snap.Nodes {
		problem.Nodes = append(problem.Nodes, n.Spec)
	}
	for _, vm := range snap.VMs {
		spec := vm.Spec
		spec.Requested = vm.Demand
		problem.VMs = append(problem.VMs, spec)
		current[vm.Spec.ID] = vm.Node
		specs[vm.Spec.ID] = spec
	}

	cfg := o.cfg.ACO
	// Derive the round seed deterministically so rounds differ but replay.
	cfg.Seed = cfg.Seed + int64(o.roundNumber())*1000003
	solver := consolidation.ParallelACO{Colonies: o.cfg.Colonies, Config: cfg}
	result, err := solver.Solve(problem)
	if err != nil {
		o.finishRound(gen, RoundInfo{At: snap.Now, HostsBefore: current.NodesUsed(), HostsAfter: current.NodesUsed()})
		return
	}

	hostsBefore := current.NodesUsed()
	info := RoundInfo{At: snap.Now, HostsBefore: hostsBefore, HostsAfter: hostsBefore}
	if result.HostsUsed >= hostsBefore {
		// No improvement: journal the no-op round and idle until next tick.
		o.finishRound(gen, info)
		return
	}
	plan := consolidation.Plan(current, result.Placement, specs, problem.Nodes)
	// Under a budget, an arbitrary prefix of the full plan tends to shuffle
	// VMs among the target's surviving hosts without emptying any source —
	// and since every round re-solves (with a fresh seed), the shuffling can
	// repeat forever. Spend the budget on whole-source evacuations instead:
	// those are the moves that actually free hosts.
	if b := o.cfg.MigrationBudget; b > 0 && len(plan) > b {
		plan = budgetedPlan(current, result.Placement, specs, problem.Nodes, b)
	}
	info.Planned = len(plan)
	if len(plan) == 0 {
		o.finishRound(gen, info)
		return
	}

	o.mu.Lock()
	if o.gen != gen {
		o.mu.Unlock()
		return
	}
	o.plan = plan
	o.next = 0
	o.applied = o.applied[:0]
	o.info = info
	o.start = current
	o.mu.Unlock()
	o.executeNext(gen)
}

// budgetedPlan selects at most budget moves of the target placement that make
// real packing progress: complete source evacuations, cheapest source first,
// with a partial evacuation of the next source if budget remains (the leftover
// VMs make that source cheaper for the following round). Moves between hosts
// the target keeps active are dropped — they never change the host count.
func budgetedPlan(current, target types.Placement, specs map[types.VMID]types.VMSpec, nodes []types.NodeSpec, budget int) []types.Migration {
	survivors := make(map[types.NodeID]bool, len(target))
	for _, node := range target {
		survivors[node] = true
	}
	bySource := map[types.NodeID][]types.VMID{}
	for vm, from := range current {
		if to, ok := target[vm]; ok && to != from && !survivors[from] {
			bySource[from] = append(bySource[from], vm)
		}
	}
	sources := make([]types.NodeID, 0, len(bySource))
	for id := range bySource {
		sources = append(sources, id)
	}
	sort.Slice(sources, func(i, j int) bool {
		a, b := sources[i], sources[j]
		if len(bySource[a]) != len(bySource[b]) {
			return len(bySource[a]) < len(bySource[b])
		}
		return a < b
	})
	partial := make(types.Placement, len(current))
	for vm, node := range current {
		partial[vm] = node
	}
	remaining := budget
	for _, src := range sources {
		vms := bySource[src]
		sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
		if len(vms) > remaining {
			vms = vms[:remaining]
		}
		for _, vm := range vms {
			partial[vm] = target[vm]
		}
		remaining -= len(vms)
		if remaining == 0 {
			break
		}
	}
	// Re-derive a feasibility-ordered sequence for exactly the selected moves.
	plan := consolidation.Plan(current, partial, specs, nodes)
	if len(plan) > budget {
		plan = plan[:budget]
	}
	return plan
}

func (o *Optimizer) roundNumber() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.round
}

// roundSpan returns the current round's span (a no-op span between rounds).
func (o *Optimizer) roundSpan() obs.Span {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.span
}

// executeNext issues the next migration of the current plan, re-validating it
// against fresh views first. A tripped gate cancels the remainder of the
// plan; an exhausted plan finishes the round.
func (o *Optimizer) executeNext(gen uint64) {
	for {
		o.mu.Lock()
		if o.gen != gen || !o.inRound {
			o.mu.Unlock()
			return
		}
		if o.next >= len(o.plan) {
			info := o.info
			o.mu.Unlock()
			o.finishRound(gen, info)
			return
		}
		m := o.plan[o.next]
		o.next++
		o.mu.Unlock()

		sp := o.cfg.Tracer.StartSpan(obs.KindConsolidationMigration, telemetry.VMEntity(m.VM), o.roundSpan().Context())
		sp.SetTarget(string(m.To))
		sp.Annotate("from", string(m.From))
		if reason, tripped := o.revalidate(m); tripped {
			// The trends the plan was computed from have shifted under it:
			// cancel this migration and the rest of the plan. The next round
			// re-plans from live state.
			sp.Annotate("reason", reason)
			sp.Finish("cancelled")
			o.host.Mark("gm.consolidation-cancels", 1)
			o.host.Emit(telemetry.EventConsolidationMigration, telemetry.VMEntity(m.VM), map[string]string{
				"outcome": "cancelled",
				"reason":  reason,
				"from":    string(m.From),
				"to":      string(m.To),
			})
			o.mu.Lock()
			o.cancels++
			o.info.Cancelled++
			o.next = len(o.plan) // abandon the remainder
			info := o.info
			o.mu.Unlock()
			o.finishRound(gen, info)
			return
		}

		o.host.Migrate(m, func(ok bool) {
			if ok {
				sp.Finish("executed")
			} else {
				sp.Finish("failed")
			}
			o.onMigrationDone(gen, m, ok)
		})
		return // onMigrationDone chains to the next migration
	}
}

// onMigrationDone records one migration outcome and chains execution.
func (o *Optimizer) onMigrationDone(gen uint64, m types.Migration, ok bool) {
	o.mu.Lock()
	if o.gen != gen || !o.inRound {
		o.mu.Unlock()
		return
	}
	if ok {
		o.mig++
		o.info.Executed++
		o.applied = append(o.applied, m)
	} else {
		o.fails++
		o.info.Failed++
	}
	o.mu.Unlock()
	outcome := "executed"
	if !ok {
		outcome = "failed"
	}
	if ok {
		o.host.Mark("gm.consolidation-migrations", 1)
	}
	o.host.Emit(telemetry.EventConsolidationMigration, telemetry.VMEntity(m.VM), map[string]string{
		"outcome": outcome,
		"from":    string(m.From),
		"to":      string(m.To),
	})
	o.executeNext(gen)
}

// revalidate checks one planned migration against fresh views: it is
// cancelled when the source's load is falling (the underload is draining on
// its own) or the receiver is heating past the p95 gate. Only fresh
// statistics trip the gates — thin or stale history never cancels.
func (o *Optimizer) revalidate(m types.Migration) (reason string, tripped bool) {
	if src, ok := o.host.NodeLoad(m.From); ok && src.Fresh && src.Trend < o.cfg.SourceFallingTrend {
		return "source-trend-falling", true
	}
	if dst, ok := o.host.NodeLoad(m.To); !ok {
		return "receiver-gone", true
	} else if dst.Fresh && dst.P95 >= o.cfg.ReceiverHotP95 {
		return "receiver-hot-p95", true
	}
	return "", false
}

// finishRound journals the round event, updates counters and returns the
// optimizer to the idle state.
func (o *Optimizer) finishRound(gen uint64, info RoundInfo) {
	o.mu.Lock()
	if o.gen != gen {
		o.mu.Unlock()
		return
	}
	o.round++
	info.Round = o.round
	// HostsAfter reflects plan execution: each executed migration off a
	// now-empty source frees it. Recompute cheaply from the plan outcome.
	if info.Executed > 0 && o.start != nil {
		info.HostsAfter = o.hostsAfterLocked()
	}
	o.last = &info
	o.inRound = false
	span := o.span
	o.span = obs.Span{}
	o.plan = nil
	o.start = nil
	o.mu.Unlock()

	span.Annotate("hostsBefore", fmt.Sprintf("%d", info.HostsBefore))
	span.Annotate("hostsAfter", fmt.Sprintf("%d", info.HostsAfter))
	span.Annotate("planned", fmt.Sprintf("%d", info.Planned))
	span.Annotate("executed", fmt.Sprintf("%d", info.Executed))
	span.Finish("completed")
	o.host.Mark("gm.consolidation-rounds", 1)
	o.host.Emit(telemetry.EventConsolidationRound, "", map[string]string{
		"round":       fmt.Sprintf("%d", info.Round),
		"hostsBefore": fmt.Sprintf("%d", info.HostsBefore),
		"hostsAfter":  fmt.Sprintf("%d", info.HostsAfter),
		"planned":     fmt.Sprintf("%d", info.Planned),
		"executed":    fmt.Sprintf("%d", info.Executed),
		"failed":      fmt.Sprintf("%d", info.Failed),
		"cancelled":   fmt.Sprintf("%d", info.Cancelled),
	})
}

// hostsAfterLocked computes the active host count after the executed moves:
// sources emptied by them no longer count. VMs outside the executed set are
// counted where the round found them, not where the target wanted them — a
// budget-truncated plan leaves them in place.
func (o *Optimizer) hostsAfterLocked() int {
	placement := make(types.Placement, len(o.start))
	for vm, node := range o.start {
		placement[vm] = node
	}
	for _, m := range o.applied {
		placement[m.VM] = m.To
	}
	return placement.NodesUsed()
}
