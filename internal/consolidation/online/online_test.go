package online

import (
	"fmt"
	"testing"
	"time"

	"snooze/internal/simkernel"
	"snooze/internal/telemetry"
	"snooze/internal/types"
)

// fakeHost is a deterministic in-memory Host: a set of nodes with view
// statistics and VMs that actually move when Migrate succeeds. The kernel is
// single-threaded, so no locking is needed.
type fakeHost struct {
	rt    simkernel.Runtime
	nodes map[types.NodeID]NodeLoad
	vms   map[types.VMID]VMDemand

	// loadOverride, when non-nil, answers NodeLoad instead of the node map —
	// the hook tests use to shift trends between snapshot and re-validation.
	loadOverride func(id types.NodeID) (NodeLoad, bool)
	// migrateOK decides each migration's outcome (nil = always ok).
	migrateOK func(m types.Migration) bool
	// migrateDelay postpones each done callback (0 = next runtime step).
	migrateDelay time.Duration

	migrations []types.Migration
	events     []fakeEvent
	marks      map[string]int64
}

type fakeEvent struct {
	typ    string
	entity string
	attrs  map[string]string
}

func newFakeHost(rt simkernel.Runtime, nodes, vmsPerNode int) *fakeHost {
	h := &fakeHost{
		rt:    rt,
		nodes: map[types.NodeID]NodeLoad{},
		vms:   map[types.VMID]VMDemand{},
		marks: map[string]int64{},
	}
	capv := types.RV(8, 32768, 1000, 1000)
	for i := 0; i < nodes; i++ {
		id := types.NodeID(fmt.Sprintf("n%d", i))
		h.nodes[id] = NodeLoad{
			Spec:  types.NodeSpec{ID: id, Capacity: capv},
			P95:   0.2,
			Trend: 0,
			Fresh: true,
		}
		for j := 0; j < vmsPerNode; j++ {
			vmID := types.VMID(fmt.Sprintf("v%d-%d", i, j))
			h.vms[vmID] = VMDemand{
				Spec:   types.VMSpec{ID: vmID, Requested: types.RV(2, 4096, 50, 50)},
				Node:   id,
				Demand: types.RV(1, 1024, 10, 10),
			}
		}
	}
	return h
}

func (h *fakeHost) ConsolidationSnapshot() (Snapshot, bool) {
	snap := Snapshot{Now: h.rt.Now()}
	for _, n := range h.nodes {
		snap.Nodes = append(snap.Nodes, n)
	}
	for _, vm := range h.vms {
		snap.VMs = append(snap.VMs, vm)
	}
	// Deterministic order (the GM host sorts the same way).
	for i := range snap.Nodes {
		for j := i + 1; j < len(snap.Nodes); j++ {
			if snap.Nodes[j].Spec.ID < snap.Nodes[i].Spec.ID {
				snap.Nodes[i], snap.Nodes[j] = snap.Nodes[j], snap.Nodes[i]
			}
		}
	}
	for i := range snap.VMs {
		for j := i + 1; j < len(snap.VMs); j++ {
			if snap.VMs[j].Spec.ID < snap.VMs[i].Spec.ID {
				snap.VMs[i], snap.VMs[j] = snap.VMs[j], snap.VMs[i]
			}
		}
	}
	return snap, true
}

func (h *fakeHost) NodeLoad(id types.NodeID) (NodeLoad, bool) {
	if h.loadOverride != nil {
		return h.loadOverride(id)
	}
	n, ok := h.nodes[id]
	return n, ok
}

func (h *fakeHost) Migrate(m types.Migration, done func(ok bool)) {
	h.migrations = append(h.migrations, m)
	ok := h.migrateOK == nil || h.migrateOK(m)
	h.rt.After(h.migrateDelay, func() {
		if ok {
			vm := h.vms[m.VM]
			vm.Node = m.To
			h.vms[m.VM] = vm
		}
		done(ok)
	})
}

func (h *fakeHost) Emit(typ, entity string, attrs map[string]string) {
	h.events = append(h.events, fakeEvent{typ: typ, entity: entity, attrs: attrs})
}

func (h *fakeHost) Mark(name string, delta int64) { h.marks[name] += delta }

func (h *fakeHost) hostsUsed() int {
	used := map[types.NodeID]bool{}
	for _, vm := range h.vms {
		used[vm.Node] = true
	}
	return len(used)
}

func (h *fakeHost) eventCount(typ, outcome string) int {
	n := 0
	for _, ev := range h.events {
		if ev.typ == typ && (outcome == "" || ev.attrs["outcome"] == outcome) {
			n++
		}
	}
	return n
}

func testConfig() Config {
	cfg := Config{Enabled: true, Period: 10 * time.Second, Colonies: 2}
	cfg.ACO.Seed = 42
	return cfg
}

func TestOnlineRoundConsolidates(t *testing.T) {
	k := simkernel.New(1)
	h := newFakeHost(k, 4, 1) // 4 hosts, 1 small VM each — packs onto 1
	o := New(k, h, testConfig())
	o.Start()
	k.Run(11 * time.Second)

	st := o.Status()
	if st.Rounds != 1 || st.Migrations == 0 {
		t.Fatalf("status: %+v", st)
	}
	if h.hostsUsed() >= 4 {
		t.Fatalf("no consolidation: still %d hosts", h.hostsUsed())
	}
	lr := st.LastRound
	if lr == nil || lr.HostsBefore != 4 || lr.HostsAfter >= lr.HostsBefore {
		t.Fatalf("last round: %+v", lr)
	}
	if h.marks["gm.consolidation-rounds"] != 1 || h.marks["gm.consolidation-migrations"] != int64(st.Migrations) {
		t.Fatalf("marks: %+v", h.marks)
	}
	if h.eventCount(telemetry.EventConsolidationRound, "") != 1 {
		t.Fatalf("round events: %+v", h.events)
	}
	if n := h.eventCount(telemetry.EventConsolidationMigration, "executed"); n != int(st.Migrations) {
		t.Fatalf("migration events: %d != %d", n, st.Migrations)
	}
}

// TestOnlineBudgetAcrossRounds drives a plan that needs more migrations than
// one round's budget: each round executes exactly the budget and the next
// re-plans from wherever execution stopped, converging over multiple rounds.
func TestOnlineBudgetAcrossRounds(t *testing.T) {
	k := simkernel.New(1)
	h := newFakeHost(k, 6, 1) // needs ~5 moves to reach 1 host
	cfg := testConfig()
	cfg.MigrationBudget = 2
	o := New(k, h, cfg)
	o.Start()

	k.Run(11 * time.Second) // round 1
	st := o.Status()
	if st.Rounds != 1 || st.Migrations > 2 {
		t.Fatalf("round 1: %+v", st)
	}
	if st.LastRound.Executed > 2 || st.LastRound.Planned > 2 {
		t.Fatalf("budget exceeded: %+v", st.LastRound)
	}
	afterRound1 := h.hostsUsed()
	if afterRound1 >= 6 {
		t.Fatalf("round 1 did not improve: %d hosts", afterRound1)
	}

	k.Run(21 * time.Second) // round 2
	st = o.Status()
	if st.Rounds != 2 {
		t.Fatalf("round 2: %+v", st)
	}
	if h.hostsUsed() >= afterRound1 {
		t.Fatalf("round 2 did not improve further: %d hosts", h.hostsUsed())
	}
	// Every round stayed within budget.
	if st.Migrations > 4 {
		t.Fatalf("total migrations %d exceed 2 rounds × budget 2", st.Migrations)
	}
}

// TestOnlineCancelOnReceiverHot trips the receiver-side gate between snapshot
// and execution: the plan is abandoned, the cancel is journalled and counted,
// and nothing migrates.
func TestOnlineCancelOnReceiverHot(t *testing.T) {
	k := simkernel.New(1)
	h := newFakeHost(k, 3, 1)
	// Every re-validation sees a suddenly hot receiver.
	h.loadOverride = func(id types.NodeID) (NodeLoad, bool) {
		n, ok := h.nodes[id]
		n.P95 = 0.95
		n.Fresh = true
		return n, ok
	}
	o := New(k, h, testConfig())
	o.Start()
	k.Run(11 * time.Second)

	st := o.Status()
	if st.Cancels != 1 || st.Migrations != 0 {
		t.Fatalf("status: %+v", st)
	}
	if len(h.migrations) != 0 {
		t.Fatalf("migrations issued despite cancel: %+v", h.migrations)
	}
	if h.marks["gm.consolidation-cancels"] != 1 {
		t.Fatalf("marks: %+v", h.marks)
	}
	if h.eventCount(telemetry.EventConsolidationMigration, "cancelled") != 1 {
		t.Fatalf("cancel events: %+v", h.events)
	}
	if lr := st.LastRound; lr == nil || lr.Cancelled != 1 || lr.Executed != 0 {
		t.Fatalf("last round: %+v", st.LastRound)
	}
}

// TestOnlineCancelOnSourceDraining trips the source-side gate: a source whose
// fresh trend is falling steeply is already draining, so migrating off it is
// pointless churn.
func TestOnlineCancelOnSourceDraining(t *testing.T) {
	k := simkernel.New(1)
	h := newFakeHost(k, 3, 1)
	h.loadOverride = func(id types.NodeID) (NodeLoad, bool) {
		n, ok := h.nodes[id]
		n.Trend = -0.01
		n.Fresh = true
		return n, ok
	}
	o := New(k, h, testConfig())
	o.Start()
	k.Run(11 * time.Second)

	st := o.Status()
	if st.Cancels != 1 || st.Migrations != 0 || len(h.migrations) != 0 {
		t.Fatalf("status: %+v migrations: %v", st, h.migrations)
	}
	for _, ev := range h.events {
		if ev.attrs["outcome"] == "cancelled" && ev.attrs["reason"] != "source-trend-falling" {
			t.Fatalf("reason: %+v", ev)
		}
	}
}

// TestOnlineStaleStatsNeverCancel: the same shifted statistics marked stale
// must not trip the gates.
func TestOnlineStaleStatsNeverCancel(t *testing.T) {
	k := simkernel.New(1)
	h := newFakeHost(k, 3, 1)
	h.loadOverride = func(id types.NodeID) (NodeLoad, bool) {
		n, ok := h.nodes[id]
		n.P95 = 0.95
		n.Trend = -0.01
		n.Fresh = false
		return n, ok
	}
	o := New(k, h, testConfig())
	o.Start()
	k.Run(11 * time.Second)

	st := o.Status()
	if st.Cancels != 0 || st.Migrations == 0 {
		t.Fatalf("stale stats cancelled: %+v", st)
	}
}

// TestOnlineFailedMigrationRetriedNextRound: failures are counted, the round
// completes, and the next round re-plans the same moves from live state.
func TestOnlineFailedMigrationRetriedNextRound(t *testing.T) {
	k := simkernel.New(1)
	h := newFakeHost(k, 3, 1)
	fail := true
	h.migrateOK = func(types.Migration) bool { return !fail }
	o := New(k, h, testConfig())
	o.Start()

	k.Run(11 * time.Second)
	st := o.Status()
	if st.Failures == 0 || st.Migrations != 0 || st.Rounds != 1 {
		t.Fatalf("round 1: %+v", st)
	}
	if h.hostsUsed() != 3 {
		t.Fatalf("failed migrations moved VMs: %d hosts", h.hostsUsed())
	}

	fail = false
	k.Run(21 * time.Second)
	st = o.Status()
	if st.Rounds != 2 || st.Migrations == 0 {
		t.Fatalf("round 2: %+v", st)
	}
	if h.hostsUsed() >= 3 {
		t.Fatalf("retry round did not consolidate: %d hosts", h.hostsUsed())
	}
}

// TestOnlineStopOrphansInFlightPlan: stopping mid-plan abandons it — the
// pending migration callback from the old generation is ignored and no
// further migrations are issued.
func TestOnlineStopOrphansInFlightPlan(t *testing.T) {
	k := simkernel.New(1)
	h := newFakeHost(k, 4, 1)
	h.migrateDelay = 5 * time.Second // done callbacks land after Stop
	o := New(k, h, testConfig())
	o.Start()

	k.Run(11 * time.Second) // tick fires, first migration issued, done pending
	if len(h.migrations) != 1 {
		t.Fatalf("migrations before stop: %+v", h.migrations)
	}
	o.Stop()
	k.Run(60 * time.Second)

	st := o.Status()
	if st.Running || st.InRound {
		t.Fatalf("status after stop: %+v", st)
	}
	if st.Migrations != 0 || st.Rounds != 0 {
		t.Fatalf("orphaned callback still counted: %+v", st)
	}
	if len(h.migrations) != 1 {
		t.Fatalf("migrations issued after stop: %+v", h.migrations)
	}

	// Restart runs fresh rounds on a new ticker.
	h.migrateDelay = 0
	o.Start()
	k.Run(k.Now() + 30*time.Second)
	if st := o.Status(); !st.Running || st.Rounds == 0 {
		t.Fatalf("status after restart: %+v", st)
	}
}

// TestOnlineSkipsDegenerateInputs: too few nodes or no VMs never start a
// round.
func TestOnlineSkipsDegenerateInputs(t *testing.T) {
	k := simkernel.New(1)
	h := newFakeHost(k, 1, 1) // below MinNodes
	o := New(k, h, testConfig())
	o.Start()
	k.Run(25 * time.Second)
	if st := o.Status(); st.Rounds != 0 {
		t.Fatalf("round ran on 1 node: %+v", st)
	}

	h2 := newFakeHost(k, 3, 0) // no VMs
	o2 := New(k, h2, testConfig())
	o2.Start()
	k.Run(k.Now() + 25*time.Second)
	if st := o2.Status(); st.Rounds != 0 {
		t.Fatalf("round ran with no VMs: %+v", st)
	}
}

// TestOnlineNoImprovementIsNoOpRound: an already packed group journals the
// round but plans nothing.
func TestOnlineNoImprovementIsNoOpRound(t *testing.T) {
	k := simkernel.New(1)
	h := newFakeHost(k, 2, 1)
	// Both VMs already on n0.
	vm := h.vms["v1-0"]
	vm.Node = "n0"
	h.vms["v1-0"] = vm
	o := New(k, h, testConfig())
	o.Start()
	k.Run(11 * time.Second)

	st := o.Status()
	if st.Rounds != 1 || st.Migrations != 0 {
		t.Fatalf("status: %+v", st)
	}
	if lr := st.LastRound; lr == nil || lr.Planned != 0 || lr.HostsAfter != lr.HostsBefore {
		t.Fatalf("last round: %+v", st.LastRound)
	}
	if len(h.migrations) != 0 {
		t.Fatalf("migrations: %+v", h.migrations)
	}
}
