package online

import (
	"testing"

	"snooze/internal/simkernel"
)

// BenchmarkOnlineRound prices one full optimizer round — snapshot, parallel
// solve, budgeted plan execution on the virtual-time kernel — over 16 nodes
// carrying 32 VMs.
func BenchmarkOnlineRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := simkernel.New(1)
		h := newFakeHost(k, 16, 2)
		o := New(k, h, testConfig())
		o.Start()
		k.Run(o.Config().Period * 2) // one round plus its migrations
		o.Stop()
		if len(h.migrations) == 0 {
			b.Fatal("round executed no migrations")
		}
	}
}
