package consolidation

import (
	"testing"

	"snooze/internal/workload"
)

func TestParallelACOSolvesTinyOptimally(t *testing.T) {
	cfg := DefaultACOConfig()
	cfg.Seed = 7
	r, err := (ParallelACO{Colonies: 4, Config: cfg}).Solve(tinyProblem())
	if err != nil {
		t.Fatal(err)
	}
	if r.HostsUsed != 2 || !r.Optimal {
		t.Fatalf("hosts=%d optimal=%v", r.HostsUsed, r.Optimal)
	}
	if err := Validate(tinyProblem(), r.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestParallelACODeterministicPerSeed(t *testing.T) {
	p := uniformProblem(21, 40, workload.UniformInstance)
	cfg := DefaultACOConfig()
	cfg.Seed = 99
	solver := ParallelACO{Colonies: 4, ExchangeEvery: 3, Config: cfg}
	first, err := solver.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := solver.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if again.HostsUsed != first.HostsUsed {
			t.Fatalf("run %d: hosts %d != %d", i, again.HostsUsed, first.HostsUsed)
		}
		for vm, node := range first.Placement {
			if again.Placement[vm] != node {
				t.Fatalf("run %d: vm %s on %s, want %s", i, vm, again.Placement[vm], node)
			}
		}
	}
}

func TestParallelACOSingleColonyMatchesSerial(t *testing.T) {
	p := uniformProblem(5, 30, workload.UniformInstance)
	cfg := DefaultACOConfig()
	cfg.Seed = 11
	serial, err := (ACO{Config: cfg}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (ParallelACO{Colonies: 1, Config: cfg}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if par.HostsUsed != serial.HostsUsed {
		t.Fatalf("hosts %d != serial %d", par.HostsUsed, serial.HostsUsed)
	}
	for vm, node := range serial.Placement {
		if par.Placement[vm] != node {
			t.Fatalf("vm %s on %s, want %s", vm, par.Placement[vm], node)
		}
	}
}

// TestParallelACOQualityNoWorseThanSerial is the export-only-reference
// property: colony 0 replays the serial trajectory bit-for-bit and the result
// is the best across colonies, so for any seed the parallel solver cannot
// pack onto more hosts than the serial one.
func TestParallelACOQualityNoWorseThanSerial(t *testing.T) {
	for _, kind := range []workload.InstanceKind{workload.UniformInstance, workload.CorrelatedInstance} {
		for seed := int64(1); seed <= 5; seed++ {
			p := uniformProblem(seed, 36, kind)
			cfg := DefaultACOConfig()
			cfg.Seed = seed * 31
			serial, err := (ACO{Config: cfg}).Solve(p)
			if err != nil {
				t.Fatalf("kind %v seed %d serial: %v", kind, seed, err)
			}
			par, err := (ParallelACO{Colonies: 4, Config: cfg}).Solve(p)
			if err != nil {
				t.Fatalf("kind %v seed %d parallel: %v", kind, seed, err)
			}
			if par.HostsUsed > serial.HostsUsed {
				t.Fatalf("kind %v seed %d: parallel %d hosts > serial %d",
					kind, seed, par.HostsUsed, serial.HostsUsed)
			}
			if err := Validate(p, par.Placement); err != nil {
				t.Fatalf("kind %v seed %d: %v", kind, seed, err)
			}
			if lb := p.LowerBound(); par.HostsUsed < lb {
				t.Fatalf("kind %v seed %d: %d hosts below lower bound %d", kind, seed, par.HostsUsed, lb)
			}
		}
	}
}

func TestParallelACOEdgeCases(t *testing.T) {
	cfg := DefaultACOConfig()
	solver := ParallelACO{Colonies: 3, Config: cfg}
	r, err := solver.Solve(Problem{Nodes: tinyProblem().Nodes})
	if err != nil || r.HostsUsed != 0 {
		t.Fatalf("empty VM set: %+v %v", r, err)
	}
	infeasible := tinyProblem()
	infeasible.Nodes = nil
	if _, err := solver.Solve(infeasible); err == nil {
		t.Fatal("no hosts: want error")
	}
}
