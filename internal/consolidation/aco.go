package consolidation

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"snooze/internal/types"
)

// ACOConfig holds the Ant Colony Optimization parameters. The defaults are
// calibrated to reproduce the solution quality reported in Section III-B
// (ACO within ~1% of optimal, a few percent fewer hosts than FFD) on the
// instance classes of internal/workload.
type ACOConfig struct {
	// Ants per cycle ("multiple agents ... compute solutions
	// probabilistically and simultaneously within multiple cycles").
	Ants int
	// Cycles of construction + pheromone update.
	Cycles int
	// Alpha weights the pheromone term in the decision rule.
	Alpha float64
	// Beta weights the heuristic information term.
	Beta float64
	// Rho is the pheromone evaporation rate in (0,1).
	Rho float64
	// Q scales the pheromone deposit (deposit = Q / hostsUsed(best)).
	Q float64
	// Seed makes runs reproducible.
	Seed int64
	// Parallel evaluates the ants of each cycle on multiple goroutines
	// ("the algorithm is well suited for parallelization", Section III-A).
	Parallel bool
}

// DefaultACOConfig returns the parameter set used by the experiments.
func DefaultACOConfig() ACOConfig {
	return ACOConfig{
		Ants:   8,
		Cycles: 15,
		Alpha:  1,
		Beta:   4, // strongly utilization-guided; calibrated in E7's ablation
		Rho:    0.3,
		Q:      2,
		Seed:   1,
	}
}

// ACO is the paper's nature-inspired consolidation algorithm: a Max-Min Ant
// System over a pheromone matrix indexed by (VM, host) pairs (Section III-A:
// ants "communicate indirectly by depositing ... pheromone on each VM-LC
// pair within a pheromone matrix").
type ACO struct {
	Config ACOConfig
}

// Name implements Algorithm.
func (ACO) Name() string { return "aco" }

// Solve implements Algorithm.
//
// Per cycle, every ant constructs a complete VM→host assignment host by
// host: it keeps filling the current host with unassigned VMs chosen by the
// probabilistic decision rule
//
//	P(vm) ∝ τ[vm,host]^α · η(vm,host)^β
//
// where the heuristic information η favours VMs that lead to "better overall
// LC utilization" — here the host's mean utilization after packing the VM.
// When no unassigned VM fits the residual capacity, the ant opens the next
// host. At cycle end the best solution (fewest hosts) updates the global
// best; the pheromone matrix evaporates by ρ and the global best's pairs are
// reinforced, with Max-Min clamping to keep exploration alive.
func (a ACO) Solve(p Problem) (Result, error) {
	cfg := a.Config
	if cfg.Ants <= 0 || cfg.Cycles <= 0 {
		cfg = DefaultACOConfig()
	}
	if cfg.Rho <= 0 || cfg.Rho >= 1 {
		cfg.Rho = 0.3
	}
	if cfg.Q <= 0 {
		cfg.Q = 2
	}
	nodes := sortedNodes(p)
	nVMs, nHosts := len(p.VMs), len(nodes)
	if nVMs == 0 {
		return Result{Placement: types.Placement{}}, nil
	}
	if nHosts == 0 {
		return Result{}, fmt.Errorf("%w: no hosts", ErrInfeasible)
	}
	vms := append([]types.VMSpec(nil), p.VMs...)
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
	for _, vm := range vms {
		if !fitsAny(vm, nodes) {
			return Result{}, fmt.Errorf("%w: %s", ErrInfeasible, vm.ID)
		}
	}

	// Max-Min pheromone bounds. τmax tracks the theoretical deposit on an
	// ideal solution; τmin keeps every pair selectable.
	lb := p.LowerBound()
	tauMax := cfg.Q / (cfg.Rho * math.Max(1, float64(lb)))
	tauMin := tauMax / (2 * float64(nVMs))
	tau := make([][]float64, nVMs)
	for i := range tau {
		tau[i] = make([]float64, nHosts)
		for j := range tau[i] {
			tau[i][j] = tauMax
		}
	}

	type solution struct {
		assign []int // VM index -> host index
		used   int
	}

	construct := func(rng *rand.Rand) solution {
		assign := make([]int, nVMs)
		for i := range assign {
			assign[i] = -1
		}
		remaining := nVMs
		used := 0
		host := 0
		residual := nodes[0].Capacity
		var probs []float64
		var cands []int
		for remaining > 0 && host < nHosts {
			// Candidates: unassigned VMs that fit the residual.
			cands = cands[:0]
			for i := range vms {
				if assign[i] < 0 && vms[i].Requested.FitsIn(residual) {
					cands = append(cands, i)
				}
			}
			if len(cands) == 0 {
				host++
				if host < nHosts {
					residual = nodes[host].Capacity
				}
				continue
			}
			// Probabilistic decision rule.
			probs = probs[:0]
			var total float64
			for _, i := range cands {
				after := nodes[host].Capacity.Sub(residual).Add(vms[i].Requested)
				eta := after.UtilizationL1(nodes[host].Capacity)
				w := math.Pow(tau[i][host], cfg.Alpha) * math.Pow(eta+1e-9, cfg.Beta)
				probs = append(probs, w)
				total += w
			}
			pick := cands[len(cands)-1]
			if total > 0 {
				r := rng.Float64() * total
				acc := 0.0
				for k, w := range probs {
					acc += w
					if r <= acc {
						pick = cands[k]
						break
					}
				}
			}
			if residual == nodes[host].Capacity {
				used++ // first VM on this host
			}
			assign[pick] = host
			residual = residual.Sub(vms[pick].Requested)
			remaining--
		}
		return solution{assign: assign, used: used}
	}

	complete := func(s solution) bool {
		for _, h := range s.assign {
			if h < 0 {
				return false
			}
		}
		return true
	}

	var best solution
	best.used = nHosts + 1
	rootRNG := rand.New(rand.NewSource(cfg.Seed))
	cycles := 0
	for c := 0; c < cfg.Cycles; c++ {
		cycles++
		sols := make([]solution, cfg.Ants)
		if cfg.Parallel {
			done := make(chan int, cfg.Ants)
			for a := 0; a < cfg.Ants; a++ {
				a := a
				seed := rootRNG.Int63()
				go func() {
					sols[a] = construct(rand.New(rand.NewSource(seed)))
					done <- a
				}()
			}
			for a := 0; a < cfg.Ants; a++ {
				<-done
			}
		} else {
			for a := 0; a < cfg.Ants; a++ {
				sols[a] = construct(rand.New(rand.NewSource(rootRNG.Int63())))
			}
		}
		// "At the end of each cycle, local solutions are compared and the
		// one requiring the least number of LCs is saved as the new
		// globally optimal solution."
		for _, s := range sols {
			if complete(s) && s.used < best.used {
				best = s
			}
		}
		if best.used > nHosts {
			continue // no complete solution yet; keep exploring
		}
		// Evaporation + reinforcement of the global best (MMAS).
		deposit := cfg.Q / float64(best.used)
		for i := range tau {
			for j := range tau[i] {
				tau[i][j] *= 1 - cfg.Rho
				if best.assign[i] == j {
					tau[i][j] += deposit
				}
				if tau[i][j] > tauMax {
					tau[i][j] = tauMax
				}
				if tau[i][j] < tauMin {
					tau[i][j] = tauMin
				}
			}
		}
		if best.used == lb {
			break // provably optimal; stop early
		}
	}
	if best.used > nHosts {
		return Result{}, fmt.Errorf("%w: ants found no complete packing", ErrInfeasible)
	}
	placement := make(types.Placement, nVMs)
	for i, h := range best.assign {
		placement[vms[i].ID] = nodes[h].ID
	}
	return Result{
		Placement: placement,
		HostsUsed: placement.NodesUsed(),
		Optimal:   best.used == lb,
		Cycles:    cycles,
	}, nil
}
