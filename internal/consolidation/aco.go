package consolidation

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"snooze/internal/types"
)

// ACOConfig holds the Ant Colony Optimization parameters. The defaults are
// calibrated to reproduce the solution quality reported in Section III-B
// (ACO within ~1% of optimal, a few percent fewer hosts than FFD) on the
// instance classes of internal/workload.
type ACOConfig struct {
	// Ants per cycle ("multiple agents ... compute solutions
	// probabilistically and simultaneously within multiple cycles").
	Ants int
	// Cycles of construction + pheromone update.
	Cycles int
	// Alpha weights the pheromone term in the decision rule.
	Alpha float64
	// Beta weights the heuristic information term.
	Beta float64
	// Rho is the pheromone evaporation rate in (0,1).
	Rho float64
	// Q scales the pheromone deposit (deposit = Q / hostsUsed(best)).
	Q float64
	// Seed makes runs reproducible.
	Seed int64
	// Parallel evaluates the ants of each cycle on multiple goroutines
	// ("the algorithm is well suited for parallelization", Section III-A).
	Parallel bool
}

// DefaultACOConfig returns the parameter set used by the experiments.
func DefaultACOConfig() ACOConfig {
	return ACOConfig{
		Ants:   8,
		Cycles: 15,
		Alpha:  1,
		Beta:   4, // strongly utilization-guided; calibrated in E7's ablation
		Rho:    0.3,
		Q:      2,
		Seed:   1,
	}
}

// ACO is the paper's nature-inspired consolidation algorithm: a Max-Min Ant
// System over a pheromone matrix indexed by (VM, host) pairs (Section III-A:
// ants "communicate indirectly by depositing ... pheromone on each VM-LC
// pair within a pheromone matrix").
type ACO struct {
	Config ACOConfig
}

// Name implements Algorithm.
func (ACO) Name() string { return "aco" }

// Solve implements Algorithm.
//
// Per cycle, every ant constructs a complete VM→host assignment host by
// host: it keeps filling the current host with unassigned VMs chosen by the
// probabilistic decision rule
//
//	P(vm) ∝ τ[vm,host]^α · η(vm,host)^β
//
// where the heuristic information η favours VMs that lead to "better overall
// LC utilization" — here the host's mean utilization after packing the VM.
// When no unassigned VM fits the residual capacity, the ant opens the next
// host. At cycle end the best solution (fewest hosts) updates the global
// best; the pheromone matrix evaporates by ρ and the global best's pairs are
// reinforced, with Max-Min clamping to keep exploration alive.
func (a ACO) Solve(p Problem) (Result, error) {
	inst, res, err := newACOInstance(a.Config, p)
	if inst == nil {
		return res, err
	}
	col := newColony(inst, inst.cfg.Seed)
	for c := 0; c < inst.cfg.Cycles; c++ {
		if col.runCycle() {
			break
		}
	}
	return inst.result(col.best, col.cycles)
}

// acoInstance is the shared, read-only part of one ACO run: the validated and
// deterministically ordered problem plus the Max-Min pheromone bounds. One
// instance backs a single serial colony (ACO) or several exchanging colonies
// (ParallelACO).
type acoInstance struct {
	cfg    ACOConfig
	vms    []types.VMSpec
	nodes  []types.NodeSpec
	lb     int
	tauMax float64
	tauMin float64
}

// newACOInstance validates the problem and precomputes the shared run state.
// A nil instance means the run is already decided: the accompanying Result
// and error are final (empty problem, no hosts, or an unpackable VM).
func newACOInstance(cfg ACOConfig, p Problem) (*acoInstance, Result, error) {
	if cfg.Ants <= 0 || cfg.Cycles <= 0 {
		cfg = DefaultACOConfig()
	}
	if cfg.Rho <= 0 || cfg.Rho >= 1 {
		cfg.Rho = 0.3
	}
	if cfg.Q <= 0 {
		cfg.Q = 2
	}
	nodes := sortedNodes(p)
	if len(p.VMs) == 0 {
		return nil, Result{Placement: types.Placement{}}, nil
	}
	if len(nodes) == 0 {
		return nil, Result{}, fmt.Errorf("%w: no hosts", ErrInfeasible)
	}
	vms := append([]types.VMSpec(nil), p.VMs...)
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
	for _, vm := range vms {
		if !fitsAny(vm, nodes) {
			return nil, Result{}, fmt.Errorf("%w: %s", ErrInfeasible, vm.ID)
		}
	}
	// Max-Min pheromone bounds. τmax tracks the theoretical deposit on an
	// ideal solution; τmin keeps every pair selectable.
	lb := p.LowerBound()
	tauMax := cfg.Q / (cfg.Rho * math.Max(1, float64(lb)))
	tauMin := tauMax / (2 * float64(len(vms)))
	return &acoInstance{cfg: cfg, vms: vms, nodes: nodes, lb: lb, tauMax: tauMax, tauMin: tauMin}, Result{}, nil
}

// result maps a best solution back onto VM/node IDs.
func (inst *acoInstance) result(best acoSolution, cycles int) (Result, error) {
	if best.assign == nil {
		return Result{}, fmt.Errorf("%w: ants found no complete packing", ErrInfeasible)
	}
	placement := make(types.Placement, len(inst.vms))
	for i, h := range best.assign {
		placement[inst.vms[i].ID] = inst.nodes[h].ID
	}
	return Result{
		Placement: placement,
		HostsUsed: placement.NodesUsed(),
		Optimal:   best.used == inst.lb,
		Cycles:    cycles,
	}, nil
}

// acoSolution is one complete VM→host assignment by VM index. The assign
// slice is never mutated after construction, so solutions may be shared
// across colonies without copying. A nil assign marks "no complete solution
// yet".
type acoSolution struct {
	assign []int // VM index -> host index
	used   int
}

// colony is one pheromone matrix plus its ants: the unit both the serial ACO
// and the parallel multi-colony variant iterate. All methods run on a single
// goroutine; cross-colony exchange happens only at ParallelACO's barriers.
type colony struct {
	inst   *acoInstance
	rng    *rand.Rand
	tau    [][]float64
	best   acoSolution
	cycles int
}

func newColony(inst *acoInstance, seed int64) *colony {
	tau := make([][]float64, len(inst.vms))
	for i := range tau {
		tau[i] = make([]float64, len(inst.nodes))
		for j := range tau[i] {
			tau[i][j] = inst.tauMax
		}
	}
	return &colony{inst: inst, rng: rand.New(rand.NewSource(seed)), tau: tau}
}

// construct builds one ant's solution host by host (see ACO.Solve).
func (c *colony) construct(rng *rand.Rand) acoSolution {
	inst := c.inst
	nVMs, nHosts := len(inst.vms), len(inst.nodes)
	assign := make([]int, nVMs)
	for i := range assign {
		assign[i] = -1
	}
	remaining := nVMs
	used := 0
	host := 0
	residual := inst.nodes[0].Capacity
	var probs []float64
	var cands []int
	for remaining > 0 && host < nHosts {
		// Candidates: unassigned VMs that fit the residual.
		cands = cands[:0]
		for i := range inst.vms {
			if assign[i] < 0 && inst.vms[i].Requested.FitsIn(residual) {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			host++
			if host < nHosts {
				residual = inst.nodes[host].Capacity
			}
			continue
		}
		// Probabilistic decision rule.
		probs = probs[:0]
		var total float64
		for _, i := range cands {
			after := inst.nodes[host].Capacity.Sub(residual).Add(inst.vms[i].Requested)
			eta := after.UtilizationL1(inst.nodes[host].Capacity)
			w := math.Pow(c.tau[i][host], inst.cfg.Alpha) * math.Pow(eta+1e-9, inst.cfg.Beta)
			probs = append(probs, w)
			total += w
		}
		pick := cands[len(cands)-1]
		if total > 0 {
			r := rng.Float64() * total
			acc := 0.0
			for k, w := range probs {
				acc += w
				if r <= acc {
					pick = cands[k]
					break
				}
			}
		}
		if residual == inst.nodes[host].Capacity {
			used++ // first VM on this host
		}
		assign[pick] = host
		residual = residual.Sub(inst.vms[pick].Requested)
		remaining--
	}
	if remaining > 0 {
		return acoSolution{assign: nil, used: nHosts + 1} // incomplete
	}
	return acoSolution{assign: assign, used: used}
}

// runCycle runs one cycle (ant construction, best update, pheromone update)
// and reports whether the colony's best is provably optimal, i.e. further
// cycles cannot improve it.
func (c *colony) runCycle() bool {
	inst := c.inst
	cfg := inst.cfg
	c.cycles++
	sols := make([]acoSolution, cfg.Ants)
	if cfg.Parallel {
		done := make(chan int, cfg.Ants)
		for a := 0; a < cfg.Ants; a++ {
			a := a
			// Ant seeds are drawn serially so the construction order cannot
			// perturb determinism.
			seed := c.rng.Int63()
			go func() {
				sols[a] = c.construct(rand.New(rand.NewSource(seed)))
				done <- a
			}()
		}
		for a := 0; a < cfg.Ants; a++ {
			<-done
		}
	} else {
		for a := 0; a < cfg.Ants; a++ {
			sols[a] = c.construct(rand.New(rand.NewSource(c.rng.Int63())))
		}
	}
	// "At the end of each cycle, local solutions are compared and the one
	// requiring the least number of LCs is saved as the new globally optimal
	// solution."
	for _, s := range sols {
		if s.assign != nil && (c.best.assign == nil || s.used < c.best.used) {
			c.best = s
		}
	}
	if c.best.assign == nil {
		return false // no complete solution yet; keep exploring
	}
	c.reinforce()
	return c.best.used == inst.lb
}

// reinforce evaporates the pheromone matrix and deposits on the colony's best
// solution's pairs, with Max-Min clamping (MMAS).
func (c *colony) reinforce() {
	inst := c.inst
	deposit := inst.cfg.Q / float64(c.best.used)
	for i := range c.tau {
		for j := range c.tau[i] {
			c.tau[i][j] *= 1 - inst.cfg.Rho
			if c.best.assign[i] == j {
				c.tau[i][j] += deposit
			}
			if c.tau[i][j] > inst.tauMax {
				c.tau[i][j] = inst.tauMax
			}
			if c.tau[i][j] < inst.tauMin {
				c.tau[i][j] = inst.tauMin
			}
		}
	}
}

// adopt imports an external best solution if it strictly beats the colony's
// own; subsequent cycles then reinforce the imported assignment. The solution
// is shared, not copied — acoSolution assign slices are immutable.
func (c *colony) adopt(s acoSolution) {
	if s.assign == nil {
		return
	}
	if c.best.assign == nil || s.used < c.best.used {
		c.best = s
	}
}
