package consolidation

import (
	"errors"
	"fmt"
	"testing"

	"snooze/internal/types"
	"snooze/internal/workload"
)

func uniformProblem(seed int64, n int, kind workload.InstanceKind) Problem {
	inst := workload.NewInstance(workload.InstanceConfig{Seed: seed, VMs: n, Kind: kind, Lo: 0.05, Hi: 0.45})
	return Problem{VMs: inst.VMs, Nodes: inst.Nodes}
}

func tinyProblem() Problem {
	// 4 VMs of half a node each → optimal is 2 hosts.
	capv := types.RV(8, 16384, 1000, 1000)
	var p Problem
	for i := 0; i < 4; i++ {
		p.VMs = append(p.VMs, types.VMSpec{
			ID:        types.VMID(fmt.Sprintf("v%d", i)),
			Requested: capv.Scale(0.5),
		})
	}
	for i := 0; i < 4; i++ {
		p.Nodes = append(p.Nodes, types.NodeSpec{ID: types.NodeID(fmt.Sprintf("n%d", i)), Capacity: capv})
	}
	return p
}

func TestLowerBound(t *testing.T) {
	p := tinyProblem()
	if lb := p.LowerBound(); lb != 2 {
		t.Fatalf("lower bound: %d", lb)
	}
	if lb := (Problem{}).LowerBound(); lb != 0 {
		t.Fatalf("empty lower bound: %d", lb)
	}
	// Memory-dominant instance: bound driven by the memory dimension.
	capv := types.RV(8, 1000, 0, 0)
	p2 := Problem{
		VMs:   []types.VMSpec{{ID: "a", Requested: types.RV(1, 900, 0, 0)}, {ID: "b", Requested: types.RV(1, 900, 0, 0)}},
		Nodes: []types.NodeSpec{{ID: "n1", Capacity: capv}, {ID: "n2", Capacity: capv}},
	}
	if lb := p2.LowerBound(); lb != 2 {
		t.Fatalf("memory-driven bound: %d", lb)
	}
}

func TestFFDSolvesTiny(t *testing.T) {
	for _, k := range []SortKey{SortCPU, SortL1, SortL2} {
		r, err := (FFD{Key: k}).Solve(tinyProblem())
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if r.HostsUsed != 2 {
			t.Fatalf("%v: hosts=%d", k, r.HostsUsed)
		}
		if err := Validate(tinyProblem(), r.Placement); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

func TestFFDInfeasible(t *testing.T) {
	p := tinyProblem()
	p.VMs = append(p.VMs, types.VMSpec{ID: "huge", Requested: types.RV(100, 1, 1, 1)})
	if _, err := (FFD{}).Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err: %v", err)
	}
}

func TestFFDValidOnRandomInstances(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, kind := range []workload.InstanceKind{workload.UniformInstance, workload.CorrelatedInstance, workload.AntiCorrelatedInstance} {
			p := uniformProblem(seed, 60, kind)
			for _, k := range []SortKey{SortCPU, SortL1, SortL2} {
				r, err := (FFD{Key: k}).Solve(p)
				if err != nil {
					t.Fatalf("seed=%d kind=%v key=%v: %v", seed, kind, k, err)
				}
				if err := Validate(p, r.Placement); err != nil {
					t.Fatalf("seed=%d kind=%v key=%v: %v", seed, kind, k, err)
				}
				if r.HostsUsed < p.LowerBound() {
					t.Fatalf("hosts %d below lower bound %d", r.HostsUsed, p.LowerBound())
				}
			}
		}
	}
}

func TestExactOptimalOnTiny(t *testing.T) {
	r, err := (Exact{}).Solve(tinyProblem())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Optimal || r.HostsUsed != 2 {
		t.Fatalf("exact: hosts=%d optimal=%v", r.HostsUsed, r.Optimal)
	}
	if err := Validate(tinyProblem(), r.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestExactBeatsOrMatchesFFD(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		p := uniformProblem(seed, 16, workload.CorrelatedInstance)
		ffd, err := (FFD{Key: SortCPU}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := (Exact{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if ex.HostsUsed > ffd.HostsUsed {
			t.Fatalf("seed %d: exact %d > ffd %d", seed, ex.HostsUsed, ffd.HostsUsed)
		}
		if ex.HostsUsed < p.LowerBound() {
			t.Fatalf("exact below lower bound")
		}
		if err := Validate(p, ex.Placement); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExactEdgeCases(t *testing.T) {
	// Empty problem.
	r, err := (Exact{}).Solve(Problem{Nodes: tinyProblem().Nodes})
	if err != nil || !r.Optimal || len(r.Placement) != 0 {
		t.Fatalf("empty: %+v %v", r, err)
	}
	// No hosts.
	if _, err := (Exact{}).Solve(Problem{VMs: tinyProblem().VMs}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("no hosts: %v", err)
	}
	// Oversized VM.
	p := tinyProblem()
	p.VMs[0].Requested = types.RV(1000, 1, 1, 1)
	if _, err := (Exact{}).Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("oversized: %v", err)
	}
	// Node cap: falls back to incumbent without proving optimality.
	big := uniformProblem(9, 30, workload.UniformInstance)
	r, err = (Exact{MaxNodes: 10}).Solve(big)
	if err != nil {
		t.Fatal(err)
	}
	if r.Optimal {
		t.Fatal("claimed optimality with a 10-node search budget")
	}
	if err := Validate(big, r.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestACOSolvesTinyOptimally(t *testing.T) {
	r, err := (ACO{}).Solve(tinyProblem())
	if err != nil {
		t.Fatal(err)
	}
	if r.HostsUsed != 2 {
		t.Fatalf("aco hosts: %d", r.HostsUsed)
	}
	if err := Validate(tinyProblem(), r.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestACODeterministicPerSeed(t *testing.T) {
	p := uniformProblem(3, 40, workload.UniformInstance)
	cfg := DefaultACOConfig()
	cfg.Seed = 99
	a, err := (ACO{Config: cfg}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (ACO{Config: cfg}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.HostsUsed != b.HostsUsed {
		t.Fatalf("non-deterministic: %d vs %d", a.HostsUsed, b.HostsUsed)
	}
	for vm, n := range a.Placement {
		if b.Placement[vm] != n {
			t.Fatalf("placement differs for %s", vm)
		}
	}
}

func TestACOValidAndBounded(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p := uniformProblem(seed, 50, workload.CorrelatedInstance)
		r, err := (ACO{}).Solve(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Validate(p, r.Placement); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.HostsUsed < p.LowerBound() {
			t.Fatalf("seed %d: hosts %d below bound %d", seed, r.HostsUsed, p.LowerBound())
		}
	}
}

func TestACOBeatsOrMatchesFFDOnAverage(t *testing.T) {
	// The paper's headline (Section III-B): ACO uses fewer hosts than FFD
	// on average. Verify over a seed sweep; allow individual ties.
	var acoTotal, ffdTotal int
	for seed := int64(1); seed <= 8; seed++ {
		p := uniformProblem(seed, 50, workload.CorrelatedInstance)
		a, err := (ACO{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		f, err := (FFD{Key: SortCPU}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		acoTotal += a.HostsUsed
		ffdTotal += f.HostsUsed
	}
	if acoTotal > ffdTotal {
		t.Fatalf("ACO used more hosts in aggregate: %d vs %d", acoTotal, ffdTotal)
	}
}

func TestACONearOptimal(t *testing.T) {
	// Deviation from optimal should be small (paper: 1.1%). On small
	// instances we demand at most one extra host.
	for seed := int64(1); seed <= 4; seed++ {
		p := uniformProblem(seed, 14, workload.UniformInstance)
		a, err := (ACO{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := (Exact{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if a.HostsUsed > ex.HostsUsed+1 {
			t.Fatalf("seed %d: ACO %d vs optimal %d", seed, a.HostsUsed, ex.HostsUsed)
		}
	}
}

func TestACOParallelMatchesConfigBounds(t *testing.T) {
	p := uniformProblem(2, 40, workload.UniformInstance)
	cfg := DefaultACOConfig()
	cfg.Parallel = true
	r, err := (ACO{Config: cfg}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p, r.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestACOInvalidConfigFallsBack(t *testing.T) {
	p := tinyProblem()
	r, err := (ACO{Config: ACOConfig{Ants: -1, Cycles: 0, Rho: 7}}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.HostsUsed != 2 {
		t.Fatalf("fallback config hosts: %d", r.HostsUsed)
	}
}

func TestACOEdgeCases(t *testing.T) {
	if r, err := (ACO{}).Solve(Problem{Nodes: tinyProblem().Nodes}); err != nil || len(r.Placement) != 0 {
		t.Fatalf("empty: %+v %v", r, err)
	}
	if _, err := (ACO{}).Solve(Problem{VMs: tinyProblem().VMs}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("no hosts: %v", err)
	}
	p := tinyProblem()
	p.VMs[0].Requested = types.RV(1000, 1, 1, 1)
	if _, err := (ACO{}).Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("oversized: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	p := tinyProblem()
	// Unplaced VM.
	if err := Validate(p, types.Placement{}); err == nil {
		t.Fatal("unplaced accepted")
	}
	// Unknown node.
	pl := types.Placement{}
	for _, vm := range p.VMs {
		pl[vm.ID] = "ghost"
	}
	if err := Validate(p, pl); err == nil {
		t.Fatal("unknown node accepted")
	}
	// Overcommit.
	pl = types.Placement{}
	for _, vm := range p.VMs {
		pl[vm.ID] = p.Nodes[0].ID // 4 × half-node on one node
	}
	if err := Validate(p, pl); err == nil {
		t.Fatal("overcommit accepted")
	}
}

func TestAvgHostUtilization(t *testing.T) {
	p := tinyProblem()
	r, _ := (Exact{}).Solve(p)
	// Two hosts, each with 2 half-node VMs → 100% mean utilization.
	if u := AvgHostUtilization(p, r.Placement); u < 0.99 {
		t.Fatalf("utilization: %v", u)
	}
	if u := AvgHostUtilization(p, types.Placement{}); u != 0 {
		t.Fatalf("empty placement utilization: %v", u)
	}
	// Spreading over 4 hosts halves utilization.
	spread := types.Placement{}
	for i, vm := range p.VMs {
		spread[vm.ID] = p.Nodes[i].ID
	}
	if u := AvgHostUtilization(p, spread); u > 0.51 {
		t.Fatalf("spread utilization: %v", u)
	}
}

func TestConsolidationImprovementShape(t *testing.T) {
	// The qualitative claim: ACO yields "superior average host utilization"
	// vs FFD. Check utilization ordering on a larger instance.
	p := uniformProblem(7, 80, workload.CorrelatedInstance)
	a, err := (ACO{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	f, err := (FFD{Key: SortCPU}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if AvgHostUtilization(p, a.Placement)+0.02 < AvgHostUtilization(p, f.Placement) {
		t.Fatalf("ACO utilization %v well below FFD %v",
			AvgHostUtilization(p, a.Placement), AvgHostUtilization(p, f.Placement))
	}
}
