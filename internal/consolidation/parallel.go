package consolidation

import (
	"sync"
)

// ParallelACO runs several independent ant colonies on separate goroutines
// over one shared problem instance, exchanging the best plan at barrier
// epochs — the coarse-grained parallelization Section III-A anticipates ("the
// algorithm is well suited for parallelization"). Each colony owns a private
// pheromone matrix and RNG, so runs are deterministic under a seed; the only
// cross-colony interaction is the deterministic best-plan exchange.
//
// Colony 0 is the reference colony: it exports its best into the exchange but
// never imports, so its trajectory is bit-identical to a serial ACO run with
// the same configuration. The returned result is the best across colonies —
// by construction never worse than the serial result for the same seed.
type ParallelACO struct {
	// Colonies is the number of concurrent colonies (default 4). A value of
	// 1 degenerates to the serial ACO.
	Colonies int
	// ExchangeEvery is the number of cycles each colony runs between
	// best-plan exchanges (default 5).
	ExchangeEvery int
	// Config parameterizes every colony. Seeds are derived per colony;
	// colony 0 uses Config.Seed itself (the serial-reference property).
	Config ACOConfig
}

// Name implements Algorithm.
func (ParallelACO) Name() string { return "aco-parallel" }

// colonySeed derives colony i's RNG seed. Colony 0 keeps the base seed so it
// replays the serial run exactly; the golden-ratio multiplier decorrelates
// the rest.
func colonySeed(base int64, i int) int64 {
	if i == 0 {
		return base
	}
	return base ^ (int64(i) * -0x61c8864680b583eb) // 2^64/φ, signed
}

// Solve implements Algorithm.
func (p ParallelACO) Solve(pr Problem) (Result, error) {
	nCols := p.Colonies
	if nCols <= 0 {
		nCols = 4
	}
	if nCols == 1 {
		return ACO{Config: p.Config}.Solve(pr)
	}
	cfg := p.Config
	// Parallelism lives across colonies here; per-ant goroutines inside each
	// colony would only add scheduling overhead.
	cfg.Parallel = false
	inst, res, err := newACOInstance(cfg, pr)
	if inst == nil {
		return res, err
	}
	every := p.ExchangeEvery
	if every <= 0 {
		every = 5
	}
	cols := make([]*colony, nCols)
	for i := range cols {
		cols[i] = newColony(inst, colonySeed(inst.cfg.Seed, i))
	}
	remaining := inst.cfg.Cycles
	for remaining > 0 {
		span := every
		if span > remaining {
			span = remaining
		}
		var wg sync.WaitGroup
		for _, c := range cols {
			wg.Add(1)
			go func(c *colony) {
				defer wg.Done()
				for k := 0; k < span; k++ {
					if c.runCycle() {
						return // colony-local optimum; nothing left to improve
					}
				}
			}(c)
		}
		wg.Wait()
		remaining -= span
		// Deterministic reduction: fewest hosts wins, ties go to the lowest
		// colony index.
		best := globalBest(cols)
		if best.assign == nil {
			continue
		}
		if best.used == inst.lb {
			break // provably optimal; stop early
		}
		// Exchange: colonies adopt the global best and reinforce it next
		// epoch. Colony 0 only exports, preserving its serial identity.
		for i, c := range cols {
			if i == 0 {
				continue
			}
			c.adopt(best)
		}
	}
	cycles := 0
	for _, c := range cols {
		if c.cycles > cycles {
			cycles = c.cycles
		}
	}
	return inst.result(globalBest(cols), cycles)
}

// globalBest reduces the colonies' bests deterministically: fewest hosts,
// ties broken by colony order.
func globalBest(cols []*colony) acoSolution {
	best := acoSolution{}
	for _, c := range cols {
		if c.best.assign == nil {
			continue
		}
		if best.assign == nil || c.best.used < best.used {
			best = c.best
		}
	}
	return best
}
