package consolidation

import (
	"testing"

	"snooze/internal/types"
	"snooze/internal/workload"
)

func planFixture() (map[types.VMID]types.VMSpec, []types.NodeSpec) {
	capv := types.RV(8, 16384, 1000, 1000)
	specs := map[types.VMID]types.VMSpec{
		"a": {ID: "a", Requested: capv.Scale(0.5)},
		"b": {ID: "b", Requested: capv.Scale(0.5)},
		"c": {ID: "c", Requested: capv.Scale(0.5)},
	}
	nodes := []types.NodeSpec{
		{ID: "n1", Capacity: capv},
		{ID: "n2", Capacity: capv},
		{ID: "n3", Capacity: capv},
	}
	return specs, nodes
}

func TestPlanSimpleMove(t *testing.T) {
	specs, nodes := planFixture()
	current := types.Placement{"a": "n1", "b": "n2", "c": "n3"}
	target := types.Placement{"a": "n1", "b": "n1", "c": "n3"}
	plan := Plan(current, target, specs, nodes)
	if len(plan) != 1 || plan[0].VM != "b" || plan[0].From != "n2" || plan[0].To != "n1" {
		t.Fatalf("plan: %+v", plan)
	}
}

func TestPlanNoMovesWhenEqual(t *testing.T) {
	specs, nodes := planFixture()
	p := types.Placement{"a": "n1", "b": "n2", "c": "n3"}
	if plan := Plan(p, p, specs, nodes); len(plan) != 0 {
		t.Fatalf("plan: %+v", plan)
	}
}

func TestPlanOrdersByCapacity(t *testing.T) {
	// n1 holds a+b (full); target wants c -> n1 impossible until one
	// leaves. Plan must drain n1 first.
	specs, nodes := planFixture()
	current := types.Placement{"a": "n1", "b": "n1", "c": "n2"}
	target := types.Placement{"a": "n3", "b": "n1", "c": "n1"}
	plan := Plan(current, target, specs, nodes)
	if len(plan) != 2 {
		t.Fatalf("plan: %+v", plan)
	}
	if plan[0].VM != "a" || plan[1].VM != "c" {
		t.Fatalf("order: %+v", plan)
	}
	// Replay the plan verifying capacity at each step.
	load := map[types.NodeID]types.ResourceVector{}
	for vm, n := range current {
		load[n] = load[n].Add(specs[vm].Requested)
	}
	capByID := map[types.NodeID]types.ResourceVector{}
	for _, n := range nodes {
		capByID[n.ID] = n.Capacity
	}
	for _, m := range plan {
		newLoad := load[m.To].Add(specs[m.VM].Requested)
		if !newLoad.FitsIn(capByID[m.To]) {
			t.Fatalf("step %+v overcommits %s", m, m.To)
		}
		load[m.To] = newLoad
		load[m.From] = load[m.From].Sub(specs[m.VM].Requested)
	}
}

func TestPlanCycleFallsBackToUnordered(t *testing.T) {
	// a on n1, b on n2, both full nodes, target swaps them: no safe order
	// exists. Plan must still return both moves (best effort).
	capv := types.RV(8, 16384, 1000, 1000)
	specs := map[types.VMID]types.VMSpec{
		"a": {ID: "a", Requested: capv},
		"b": {ID: "b", Requested: capv},
	}
	nodes := []types.NodeSpec{{ID: "n1", Capacity: capv}, {ID: "n2", Capacity: capv}}
	current := types.Placement{"a": "n1", "b": "n2"}
	target := types.Placement{"a": "n2", "b": "n1"}
	plan := Plan(current, target, specs, nodes)
	if len(plan) != 2 {
		t.Fatalf("cycle plan: %+v", plan)
	}
}

func TestPlanIgnoresUnknownAndNewVMs(t *testing.T) {
	specs, nodes := planFixture()
	current := types.Placement{"a": "n1", "ghost": "n2"}
	target := types.Placement{"a": "n2", "ghost": "n3", "newvm": "n3"}
	plan := Plan(current, target, specs, nodes)
	for _, m := range plan {
		if m.VM == "ghost" || m.VM == "newvm" {
			t.Fatalf("plan moved %s: %+v", m.VM, plan)
		}
	}
	if len(plan) != 1 || plan[0].VM != "a" {
		t.Fatalf("plan: %+v", plan)
	}
}

func TestMigrationCost(t *testing.T) {
	specs, _ := planFixture()
	plan := []types.Migration{{VM: "a"}, {VM: "b"}, {VM: "unknown"}}
	want := specs["a"].Requested.Memory + specs["b"].Requested.Memory
	if got := MigrationCost(plan, specs); got != want {
		t.Fatalf("cost: %v want %v", got, want)
	}
	if got := MigrationCost(nil, specs); got != 0 {
		t.Fatalf("empty plan cost: %v", got)
	}
}

func TestPlanConsolidationEndToEnd(t *testing.T) {
	// Consolidate a spread placement with ACO, then plan the migrations and
	// verify the plan transforms current into target.
	p := uniformProblem(11, 30, workload.UniformInstance)
	current := types.Placement{}
	for i, vm := range p.VMs {
		current[vm.ID] = p.Nodes[i].ID // one VM per node
	}
	r, err := (ACO{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	specs := map[types.VMID]types.VMSpec{}
	for _, vm := range p.VMs {
		specs[vm.ID] = vm
	}
	plan := Plan(current, r.Placement, specs, p.Nodes)
	got := current.Clone()
	for _, m := range plan {
		got[m.VM] = m.To
	}
	for vm, n := range r.Placement {
		if got[vm] != n {
			t.Fatalf("plan does not reach target for %s: %s != %s", vm, got[vm], n)
		}
	}
}
