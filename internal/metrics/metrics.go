// Package metrics provides the lightweight counters, gauges and duration
// histograms used to instrument the hierarchy and to print the experiment
// tables in EXPERIMENTS.md. It is intentionally minimal (stdlib only) and
// safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is a named collection of metrics.
type Registry struct {
	mu     sync.Mutex
	counts map[string]int64
	gauges map[string]float64
	series map[string][]float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]int64),
		gauges: make(map[string]float64),
		series: make(map[string][]float64),
	}
}

// Inc adds delta to the named counter.
func (r *Registry) Inc(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[name] += delta
}

// Count returns the counter's current value.
func (r *Registry) Count(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[name]
}

// SetGauge sets the named gauge to its current value (last write wins).
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = v
}

// Gauge returns the gauge's current value and whether it has been set.
func (r *Registry) Gauge(name string) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	return v, ok
}

// Gauges returns a copy of all gauges.
func (r *Registry) Gauges() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for n, v := range r.gauges {
		out[n] = v
	}
	return out
}

// Observe appends a sample to the named series.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series[name] = append(r.series[name], v)
}

// ObserveDuration appends a duration sample in milliseconds.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.Observe(name, float64(d)/float64(time.Millisecond))
}

// Series returns a copy of the named series.
func (r *Registry) Series(name string) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]float64(nil), r.series[name]...)
}

// Names returns all metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]struct{}{}
	for n := range r.counts {
		seen[n] = struct{}{}
	}
	for n := range r.gauges {
		seen[n] = struct{}{}
	}
	for n := range r.series {
		seen[n] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Summary describes a series statistically.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P95, P99  float64
	Stddev         float64
}

// Summarize computes a Summary of the named series.
func (r *Registry) Summarize(name string) Summary {
	return Summarize(r.Series(name))
}

// Summarize computes summary statistics for the samples.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum, sumsq float64
	for _, v := range s {
		sum += v
		sumsq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Min:    s[0],
		Max:    s[len(s)-1],
		P50:    quantile(s, 0.50),
		P95:    quantile(s, 0.95),
		P99:    quantile(s, 0.99),
		Stddev: math.Sqrt(variance),
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ---------------------------------------------------------------------------
// Table rendering (experiment output)
// ---------------------------------------------------------------------------

// Table accumulates rows and renders a fixed-width text table, the format
// the benches print for each reproduced figure/table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v (floats get %.2f).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
