// Package metrics provides the lightweight counters, gauges and duration
// histograms used to instrument the hierarchy and to print the experiment
// tables in EXPERIMENTS.md. It is intentionally minimal (stdlib only) and
// safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is a named collection of metrics.
type Registry struct {
	mu     sync.Mutex
	counts map[string]int64
	gauges map[string]float64
	hists  map[string]*histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]int64),
		gauges: make(map[string]float64),
		hists:  make(map[string]*histogram),
	}
}

// Inc adds delta to the named counter.
func (r *Registry) Inc(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[name] += delta
}

// Count returns the counter's current value.
func (r *Registry) Count(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[name]
}

// SetGauge sets the named gauge to its current value (last write wins).
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = v
}

// Gauge returns the gauge's current value and whether it has been set.
func (r *Registry) Gauge(name string) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	return v, ok
}

// Gauges returns a copy of all gauges.
func (r *Registry) Gauges() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for n, v := range r.gauges {
		out[n] = v
	}
	return out
}

// ReservoirSize bounds the per-series sample reservoir backing Series and
// Summarize: a sliding window of the most recent observations. Everything
// older survives only in the fixed-bucket histogram (count, sum, min, max,
// bucket counts), so a long-running process holds a constant amount of
// memory per metric no matter how many samples it observes.
const ReservoirSize = 512

// DefaultBuckets are the histogram upper bounds shared by every observed
// series: an exponential ladder (factor 4 from 1µs) wide enough to cover
// second-unit decision latencies, millisecond-unit durations and small
// counts like probe depths in one fixed layout. Values above the last bound
// land in the implicit +Inf overflow bucket.
var DefaultBuckets = func() []float64 {
	bounds := make([]float64, 20)
	b := 1e-6
	for i := range bounds {
		bounds[i] = b
		b *= 4
	}
	return bounds
}()

// histogram is one observed series: fixed cumulative-style bucket counts
// plus a bounded ring of the most recent raw samples for quantiles.
type histogram struct {
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets []int64 // per-bucket counts; len(DefaultBuckets)+1, last = +Inf
	ring    []float64
	head    int // next write position
	n       int // valid ring entries
}

func (h *histogram) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(DefaultBuckets, v) // first bound >= v: the le bucket
	h.buckets[i]++
	if h.n < len(h.ring) {
		h.ring[h.head] = v
		h.head++
		h.n++
		if h.head == len(h.ring) {
			h.head = 0
		}
		return
	}
	h.ring[h.head] = v
	h.head = (h.head + 1) % len(h.ring)
}

// samples appends the retained reservoir to dst, oldest first.
func (h *histogram) samples(dst []float64) []float64 {
	start := h.head - h.n
	if start < 0 {
		start += len(h.ring)
	}
	for i := 0; i < h.n; i++ {
		dst = append(dst, h.ring[(start+i)%len(h.ring)])
	}
	return dst
}

// Observe records a sample into the named series: its fixed-bucket histogram
// and its bounded reservoir. Unlike the former raw-slice series this never
// grows — long-running snoozed processes hold ReservoirSize samples plus the
// bucket counts per metric, total.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &histogram{
			buckets: make([]int64, len(DefaultBuckets)+1),
			ring:    make([]float64, ReservoirSize),
		}
		r.hists[name] = h
	}
	h.observe(v)
}

// ObserveDuration records a duration sample in milliseconds.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.Observe(name, float64(d)/float64(time.Millisecond))
}

// Series returns a copy of the named series' retained reservoir (the most
// recent ReservoirSize samples, oldest first).
func (r *Registry) Series(name string) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil || h.n == 0 {
		return nil
	}
	return h.samples(make([]float64, 0, h.n))
}

// HistogramSnapshot is a point-in-time copy of one observed series'
// fixed-bucket histogram.
type HistogramSnapshot struct {
	// Count and Sum cover every observation ever made, not just the
	// reservoir window.
	Count int64
	Sum   float64
	// Min and Max are lifetime extremes.
	Min, Max float64
	// Bounds are the bucket upper bounds (le semantics, DefaultBuckets).
	Bounds []float64
	// Counts are per-bucket observation counts, len(Bounds)+1: Counts[i]
	// holds observations v <= Bounds[i] (and > Bounds[i-1]); the final
	// entry is the +Inf overflow bucket.
	Counts []int64
}

// Histogram returns the named series' histogram snapshot.
func (r *Registry) Histogram(name string) (HistogramSnapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return HistogramSnapshot{}, false
	}
	return HistogramSnapshot{
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
		Bounds: DefaultBuckets,
		Counts: append([]int64(nil), h.buckets...),
	}, true
}

// Histograms returns snapshots of every observed series, keyed by name.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(r.hists))
	for n, h := range r.hists {
		out[n] = HistogramSnapshot{
			Count:  h.count,
			Sum:    h.sum,
			Min:    h.min,
			Max:    h.max,
			Bounds: DefaultBuckets,
			Counts: append([]int64(nil), h.buckets...),
		}
	}
	return out
}

// Names returns all metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]struct{}{}
	for n := range r.counts {
		seen[n] = struct{}{}
	}
	for n := range r.gauges {
		seen[n] = struct{}{}
	}
	for n := range r.hists {
		seen[n] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Summary describes a series statistically.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P95, P99  float64
	Stddev         float64
}

// Summarize computes a Summary of the named series.
func (r *Registry) Summarize(name string) Summary {
	return Summarize(r.Series(name))
}

// Summarize computes summary statistics for the samples.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum, sumsq float64
	for _, v := range s {
		sum += v
		sumsq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Min:    s[0],
		Max:    s[len(s)-1],
		P50:    quantile(s, 0.50),
		P95:    quantile(s, 0.95),
		P99:    quantile(s, 0.99),
		Stddev: math.Sqrt(variance),
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ---------------------------------------------------------------------------
// Table rendering (experiment output)
// ---------------------------------------------------------------------------

// Table accumulates rows and renders a fixed-width text table, the format
// the benches print for each reproduced figure/table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v (floats get %.2f).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
