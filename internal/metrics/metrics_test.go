package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounters(t *testing.T) {
	r := NewRegistry()
	if r.Count("x") != 0 {
		t.Fatal("zero default")
	}
	r.Inc("x", 2)
	r.Inc("x", 3)
	if r.Count("x") != 5 {
		t.Fatalf("count: %d", r.Count("x"))
	}
}

func TestSeriesAndNames(t *testing.T) {
	r := NewRegistry()
	r.Observe("lat", 1)
	r.Observe("lat", 2)
	r.ObserveDuration("dur", 3*time.Millisecond)
	r.Inc("c", 1)
	got := r.Series("lat")
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("series: %v", got)
	}
	if d := r.Series("dur"); len(d) != 1 || d[0] != 3 {
		t.Fatalf("duration series: %v", d)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "c" || names[1] != "dur" || names[2] != "lat" {
		t.Fatalf("names: %v", names)
	}
	// Series returns a copy.
	got[0] = 99
	if r.Series("lat")[0] == 99 {
		t.Fatal("Series exposes internal slice")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev: %v", s.Stddev)
	}
	if s.P95 < s.P50 || s.P99 < s.P95 || s.P99 > s.Max {
		t.Fatalf("quantile ordering: %+v", s)
	}
	if got := Summarize(nil); got.N != 0 || got.Mean != 0 {
		t.Fatalf("empty summary: %+v", got)
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P99 != 7 || one.Stddev != 0 {
		t.Fatalf("single-sample summary: %+v", one)
	}
}

func TestRegistrySummarize(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 100; i++ {
		r.Observe("v", float64(i))
	}
	s := r.Summarize("v")
	if s.N != 100 || math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.P95-95.05) > 0.5 {
		t.Fatalf("p95: %v", s.P95)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Inc("c", 1)
				r.Observe("s", float64(j))
			}
		}()
	}
	wg.Wait()
	if r.Count("c") != 8000 {
		t.Fatalf("count: %d", r.Count("c"))
	}
	// The reservoir is bounded: every sample is counted in the histogram,
	// but only the most recent ReservoirSize survive as raw samples.
	if got := len(r.Series("s")); got != ReservoirSize {
		t.Fatalf("series len: %d, want %d", got, ReservoirSize)
	}
	h, ok := r.Histogram("s")
	if !ok || h.Count != 8000 {
		t.Fatalf("histogram count: %+v ok=%v", h, ok)
	}
}

func TestHistogramBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 3*ReservoirSize; i++ {
		r.Observe("h", float64(i))
	}
	s := r.Series("h")
	if len(s) != ReservoirSize {
		t.Fatalf("reservoir len: %d", len(s))
	}
	// Oldest-first sliding window of the most recent observations.
	if s[0] != float64(2*ReservoirSize) || s[len(s)-1] != float64(3*ReservoirSize-1) {
		t.Fatalf("window: first=%v last=%v", s[0], s[len(s)-1])
	}
	h, ok := r.Histogram("h")
	if !ok {
		t.Fatal("missing histogram")
	}
	if h.Count != int64(3*ReservoirSize) || h.Min != 0 || h.Max != float64(3*ReservoirSize-1) {
		t.Fatalf("snapshot: %+v", h)
	}
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != h.Count {
		t.Fatalf("bucket counts sum %d, want %d", total, h.Count)
	}
	if len(h.Counts) != len(h.Bounds)+1 {
		t.Fatalf("bucket layout: %d counts for %d bounds", len(h.Counts), len(h.Bounds))
	}
	// 0 lands in the first bucket (le 1e-6); huge values overflow to +Inf.
	r.Observe("inf", 1e12)
	hi, _ := r.Histogram("inf")
	if hi.Counts[len(hi.Counts)-1] != 1 {
		t.Fatalf("overflow bucket: %+v", hi.Counts)
	}
	if _, ok := r.Histogram("missing"); ok {
		t.Fatal("missing series should not have a histogram")
	}
	all := r.Histograms()
	if len(all) != 2 || all["h"].Count != h.Count {
		t.Fatalf("Histograms(): %+v", all)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "hosts", "util")
	tb.AddRow("aco", 42, 0.87654)
	tb.AddRow("ffd-cpu", 44, float32(0.8))
	tb.AddRow("exact", 41, 5*time.Millisecond)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "util") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(out, "0.88") {
		t.Fatalf("float formatting missing: %s", out)
	}
	if !strings.Contains(out, "5ms") {
		t.Fatalf("duration formatting missing: %s", out)
	}
	// Column alignment: every line has the same prefix width for column 2.
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator: %q", lines[1])
	}
}
