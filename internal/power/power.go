// Package power models physical-node power draw and energy accounting.
//
// The evaluation in the paper (Section III-B, ref [10]) reports "4.1% of
// energy ... conserved (including energy spent into the computation)". Energy
// is computed from a standard linear host power model: an idle node draws
// IdleWatts and the draw grows linearly with CPU utilization up to BusyWatts
// at 100%. Suspended nodes draw SuspendWatts; transition costs (both time and
// an energy surcharge for suspend/resume cycles) are modelled explicitly so
// that the idle-threshold ablation (experiment E5) captures the break-even
// behaviour of aggressive suspension.
package power

import (
	"fmt"
	"time"

	"snooze/internal/types"
)

// Model describes the power behaviour of one node class.
type Model struct {
	// IdleWatts is the draw of a powered-on node at 0% CPU utilization.
	IdleWatts float64
	// BusyWatts is the draw at 100% CPU utilization.
	BusyWatts float64
	// SuspendWatts is the draw while suspended (suspend-to-RAM keeps DRAM
	// refreshed, so this is small but non-zero).
	SuspendWatts float64
	// OffWatts is the residual draw while powered off (PSU standby).
	OffWatts float64
	// SuspendLatency / WakeLatency are the state-transition durations.
	SuspendLatency time.Duration
	WakeLatency    time.Duration
	// BootLatency is the cold-boot duration from PowerOff.
	BootLatency time.Duration
	// TransitionWatts is the draw during any transition (suspending,
	// waking, booting); transitions typically run the platform near full
	// tilt.
	TransitionWatts float64
}

// DefaultModel is calibrated on the Grid'5000-era hardware class the paper
// evaluated on (Sun Fire X2270-like: ~100W idle, ~220W busy).
func DefaultModel() Model {
	return Model{
		IdleWatts:       100,
		BusyWatts:       220,
		SuspendWatts:    5,
		OffWatts:        2,
		SuspendLatency:  8 * time.Second,
		WakeLatency:     15 * time.Second,
		BootLatency:     120 * time.Second,
		TransitionWatts: 180,
	}
}

// Validate checks the model for physical plausibility.
func (m Model) Validate() error {
	switch {
	case m.IdleWatts < 0 || m.BusyWatts < 0 || m.SuspendWatts < 0 || m.OffWatts < 0 || m.TransitionWatts < 0:
		return fmt.Errorf("power: negative wattage in model %+v", m)
	case m.BusyWatts < m.IdleWatts:
		return fmt.Errorf("power: busy watts %.1f below idle watts %.1f", m.BusyWatts, m.IdleWatts)
	case m.SuspendWatts > m.IdleWatts:
		return fmt.Errorf("power: suspend watts %.1f above idle watts %.1f", m.SuspendWatts, m.IdleWatts)
	case m.SuspendLatency < 0 || m.WakeLatency < 0 || m.BootLatency < 0:
		return fmt.Errorf("power: negative latency in model")
	}
	return nil
}

// Draw returns the instantaneous draw in watts for a node in the given power
// state at the given CPU utilization (0..1). Utilization outside [0,1] is
// clamped.
func (m Model) Draw(state types.PowerState, cpuUtil float64) float64 {
	switch state {
	case types.PowerOn:
		if cpuUtil < 0 {
			cpuUtil = 0
		}
		if cpuUtil > 1 {
			cpuUtil = 1
		}
		return m.IdleWatts + (m.BusyWatts-m.IdleWatts)*cpuUtil
	case types.PowerSuspended:
		return m.SuspendWatts
	case types.PowerOff, types.PowerFailed:
		return m.OffWatts
	case types.PowerSuspending, types.PowerWaking, types.PowerBooting:
		return m.TransitionWatts
	default:
		return 0
	}
}

// Energy returns watt-seconds (joules) drawn over the given duration at a
// fixed state/utilization.
func (m Model) Energy(state types.PowerState, cpuUtil float64, d time.Duration) float64 {
	return m.Draw(state, cpuUtil) * d.Seconds()
}

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

// Meter integrates the energy of one node over (virtual) time. Callers feed
// it the node's state and utilization at each observation instant; the meter
// accumulates joules assuming the previous observation held since the last
// call. Meter is not safe for concurrent use; each node owns one.
type Meter struct {
	model    Model
	lastT    time.Duration // virtual time of last observation
	lastSt   types.PowerState
	lastUtil float64
	joules   float64
	started  bool
}

// NewMeter creates a meter using the given model.
func NewMeter(m Model) *Meter {
	return &Meter{model: m}
}

// Observe records that at virtual time t the node is in state st with the
// given CPU utilization. Energy for [lastT, t) is charged at the PREVIOUS
// observation's rate (left-continuous step integration). Observations must
// be fed in non-decreasing time order; out-of-order calls are ignored.
func (mt *Meter) Observe(t time.Duration, st types.PowerState, cpuUtil float64) {
	if !mt.started {
		mt.started = true
		mt.lastT, mt.lastSt, mt.lastUtil = t, st, cpuUtil
		return
	}
	if t < mt.lastT {
		return
	}
	mt.joules += mt.model.Energy(mt.lastSt, mt.lastUtil, t-mt.lastT)
	mt.lastT, mt.lastSt, mt.lastUtil = t, st, cpuUtil
}

// Joules returns the accumulated energy.
func (mt *Meter) Joules() float64 { return mt.joules }

// KWh returns the accumulated energy in kilowatt-hours.
func (mt *Meter) KWh() float64 { return mt.joules / 3.6e6 }

// AddJoules charges an explicit energy surcharge (e.g. the consolidation
// computation's own energy, which the paper includes in its 4.1% figure).
func (mt *Meter) AddJoules(j float64) { mt.joules += j }

// ---------------------------------------------------------------------------
// Aggregate cluster accounting
// ---------------------------------------------------------------------------

// ClusterMeter aggregates per-node meters and exposes cluster totals.
type ClusterMeter struct {
	model  Model
	meters map[types.NodeID]*Meter
}

// NewClusterMeter creates an empty cluster meter with the given node model.
func NewClusterMeter(m Model) *ClusterMeter {
	return &ClusterMeter{model: m, meters: make(map[types.NodeID]*Meter)}
}

// Observe forwards an observation for one node, creating its meter on first
// use.
func (c *ClusterMeter) Observe(id types.NodeID, t time.Duration, st types.PowerState, cpuUtil float64) {
	mt, ok := c.meters[id]
	if !ok {
		mt = NewMeter(c.model)
		c.meters[id] = mt
	}
	mt.Observe(t, st, cpuUtil)
}

// TotalJoules returns the sum over all nodes.
func (c *ClusterMeter) TotalJoules() float64 {
	var sum float64
	for _, mt := range c.meters {
		sum += mt.Joules()
	}
	return sum
}

// NodeJoules returns one node's accumulated energy (0 for unknown nodes).
func (c *ClusterMeter) NodeJoules(id types.NodeID) float64 {
	if mt, ok := c.meters[id]; ok {
		return mt.Joules()
	}
	return 0
}

// Nodes returns the number of nodes observed so far.
func (c *ClusterMeter) Nodes() int { return len(c.meters) }

// AddJoules charges a surcharge to the cluster total via a dedicated virtual
// node, keeping per-node figures clean.
func (c *ClusterMeter) AddJoules(j float64) {
	const surchargeNode = types.NodeID("__surcharge__")
	mt, ok := c.meters[surchargeNode]
	if !ok {
		mt = NewMeter(c.model)
		c.meters[surchargeNode] = mt
	}
	mt.AddJoules(j)
}

// ---------------------------------------------------------------------------
// Placement energy estimation (used by the consolidation evaluation)
// ---------------------------------------------------------------------------

// PlacementPower returns the instantaneous cluster draw, in watts, of running
// the given VM demands on the given placement: active hosts draw per the
// linear model at their aggregate CPU utilization, hosts without VMs draw
// SuspendWatts (the consolidation objective assumes freed hosts are
// suspended, per Section III). Demands of VMs missing from the placement are
// ignored.
func PlacementPower(m Model, placement types.Placement, demand map[types.VMID]types.ResourceVector, nodes map[types.NodeID]types.NodeSpec) float64 {
	usedCPU := make(map[types.NodeID]float64, len(nodes))
	for vm, node := range placement {
		usedCPU[node] += demand[vm].CPU // hosting any VM marks the node active
	}
	var watts float64
	for id, spec := range nodes {
		cpu, active := usedCPU[id]
		if !active {
			watts += m.SuspendWatts
			continue
		}
		util := 0.0
		if spec.Capacity.CPU > 0 {
			util = cpu / spec.Capacity.CPU
		}
		watts += m.Draw(types.PowerOn, util)
	}
	return watts
}
