package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"snooze/internal/types"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []Model{
		{IdleWatts: -1, BusyWatts: 10},
		{IdleWatts: 100, BusyWatts: 50},
		{IdleWatts: 100, BusyWatts: 200, SuspendWatts: 150},
		{IdleWatts: 100, BusyWatts: 200, SuspendLatency: -time.Second},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, m)
		}
	}
}

func TestDrawLinear(t *testing.T) {
	m := Model{IdleWatts: 100, BusyWatts: 200, SuspendWatts: 5, OffWatts: 2, TransitionWatts: 150}
	if got := m.Draw(types.PowerOn, 0); got != 100 {
		t.Fatalf("idle: got %v", got)
	}
	if got := m.Draw(types.PowerOn, 1); got != 200 {
		t.Fatalf("busy: got %v", got)
	}
	if got := m.Draw(types.PowerOn, 0.5); got != 150 {
		t.Fatalf("half: got %v", got)
	}
	// Clamping.
	if got := m.Draw(types.PowerOn, -1); got != 100 {
		t.Fatalf("clamp low: got %v", got)
	}
	if got := m.Draw(types.PowerOn, 7); got != 200 {
		t.Fatalf("clamp high: got %v", got)
	}
	if got := m.Draw(types.PowerSuspended, 0.9); got != 5 {
		t.Fatalf("suspended: got %v", got)
	}
	if got := m.Draw(types.PowerOff, 0); got != 2 {
		t.Fatalf("off: got %v", got)
	}
	if got := m.Draw(types.PowerFailed, 0); got != 2 {
		t.Fatalf("failed: got %v", got)
	}
	for _, st := range []types.PowerState{types.PowerSuspending, types.PowerWaking, types.PowerBooting} {
		if got := m.Draw(st, 0); got != 150 {
			t.Fatalf("%v: got %v", st, got)
		}
	}
}

func TestDrawMonotoneInUtilization(t *testing.T) {
	m := DefaultModel()
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return m.Draw(types.PowerOn, lo) <= m.Draw(types.PowerOn, hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnergy(t *testing.T) {
	m := Model{IdleWatts: 100, BusyWatts: 200}
	j := m.Energy(types.PowerOn, 0, time.Hour)
	if math.Abs(j-100*3600) > 1e-6 {
		t.Fatalf("Energy: got %v", j)
	}
}

func TestMeterIntegration(t *testing.T) {
	m := Model{IdleWatts: 100, BusyWatts: 200, SuspendWatts: 10}
	mt := NewMeter(m)
	mt.Observe(0, types.PowerOn, 0)              // idle from t=0
	mt.Observe(10*time.Second, types.PowerOn, 1) // 10s at 100W = 1000J
	if math.Abs(mt.Joules()-1000) > 1e-6 {
		t.Fatalf("after first interval: %v", mt.Joules())
	}
	mt.Observe(20*time.Second, types.PowerSuspended, 0) // 10s at 200W = 2000J
	if math.Abs(mt.Joules()-3000) > 1e-6 {
		t.Fatalf("after second interval: %v", mt.Joules())
	}
	mt.Observe(30*time.Second, types.PowerSuspended, 0) // 10s at 10W = 100J
	if math.Abs(mt.Joules()-3100) > 1e-6 {
		t.Fatalf("after third interval: %v", mt.Joules())
	}
	if math.Abs(mt.KWh()-3100/3.6e6) > 1e-12 {
		t.Fatalf("KWh: %v", mt.KWh())
	}
}

func TestMeterOutOfOrderIgnored(t *testing.T) {
	mt := NewMeter(DefaultModel())
	mt.Observe(10*time.Second, types.PowerOn, 0)
	mt.Observe(5*time.Second, types.PowerOn, 1) // out of order: ignored
	mt.Observe(20*time.Second, types.PowerOn, 0)
	want := DefaultModel().IdleWatts * 10
	if math.Abs(mt.Joules()-want) > 1e-6 {
		t.Fatalf("got %v want %v", mt.Joules(), want)
	}
}

func TestMeterSurcharge(t *testing.T) {
	mt := NewMeter(DefaultModel())
	mt.AddJoules(42)
	if mt.Joules() != 42 {
		t.Fatalf("surcharge: %v", mt.Joules())
	}
}

func TestClusterMeter(t *testing.T) {
	cm := NewClusterMeter(Model{IdleWatts: 100, BusyWatts: 200, SuspendWatts: 10})
	cm.Observe("n1", 0, types.PowerOn, 0)
	cm.Observe("n2", 0, types.PowerSuspended, 0)
	cm.Observe("n1", 10*time.Second, types.PowerOn, 0)
	cm.Observe("n2", 10*time.Second, types.PowerSuspended, 0)
	if got := cm.NodeJoules("n1"); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("n1: %v", got)
	}
	if got := cm.NodeJoules("n2"); math.Abs(got-100) > 1e-6 {
		t.Fatalf("n2: %v", got)
	}
	if got := cm.TotalJoules(); math.Abs(got-1100) > 1e-6 {
		t.Fatalf("total: %v", got)
	}
	if cm.Nodes() != 2 {
		t.Fatalf("Nodes: %d", cm.Nodes())
	}
	if got := cm.NodeJoules("unknown"); got != 0 {
		t.Fatalf("unknown node: %v", got)
	}
	cm.AddJoules(50)
	if got := cm.TotalJoules(); math.Abs(got-1150) > 1e-6 {
		t.Fatalf("total after surcharge: %v", got)
	}
}

func TestPlacementPower(t *testing.T) {
	m := Model{IdleWatts: 100, BusyWatts: 200, SuspendWatts: 10}
	nodes := map[types.NodeID]types.NodeSpec{
		"n1": {ID: "n1", Capacity: types.RV(4, 8192, 0, 0)},
		"n2": {ID: "n2", Capacity: types.RV(4, 8192, 0, 0)},
	}
	demand := map[types.VMID]types.ResourceVector{
		"v1": types.RV(2, 1024, 0, 0),
		"v2": types.RV(2, 1024, 0, 0),
	}
	// Both VMs on n1: n1 at 100% (200W), n2 suspended (10W).
	p := types.Placement{"v1": "n1", "v2": "n1"}
	if got := PlacementPower(m, p, demand, nodes); math.Abs(got-210) > 1e-6 {
		t.Fatalf("consolidated: %v", got)
	}
	// Spread: both at 50% (150W each).
	p = types.Placement{"v1": "n1", "v2": "n2"}
	if got := PlacementPower(m, p, demand, nodes); math.Abs(got-300) > 1e-6 {
		t.Fatalf("spread: %v", got)
	}
	// Consolidation should never draw more than spreading for identical demand.
	if PlacementPower(m, types.Placement{"v1": "n1", "v2": "n1"}, demand, nodes) >
		PlacementPower(m, types.Placement{"v1": "n1", "v2": "n2"}, demand, nodes) {
		t.Fatal("consolidated draw exceeds spread draw")
	}
	// VM with no demand entry ignored; zero-capacity node contributes idle draw.
	nodes["n3"] = types.NodeSpec{ID: "n3"}
	p = types.Placement{"v1": "n1", "vX": "n3"}
	got := PlacementPower(m, p, demand, nodes)
	// n1 at 50% = 150, n2 suspended = 10, n3 active but 0 util = 100.
	if math.Abs(got-260) > 1e-6 {
		t.Fatalf("partial: %v", got)
	}
}
