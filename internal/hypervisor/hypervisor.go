// Package hypervisor simulates a physical node: the VM lifecycle (boot, run,
// live-migrate, terminate), capacity accounting, the host power-state
// machine (on / suspend / wake / off / failed) and time-varying VM demand
// driven by workload traces.
//
// This package substitutes for the paper's Grid'5000 nodes with libvirt/KVM
// hypervisors (DESIGN.md §2). The management plane above it — Local
// Controllers, Group Managers, the Group Leader — is the system under test
// and is fully real; only instruction execution inside VMs is abstracted to
// utilization traces. Live migration uses the standard pre-copy cost model
// (transfer time ≈ VM memory / migration bandwidth), which is what makes
// relocation and consolidation decisions carry a realistic price.
package hypervisor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"snooze/internal/power"
	"snooze/internal/simkernel"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// Errors returned by node operations.
var (
	ErrNotAvailable   = errors.New("hypervisor: node not in a state to host VMs")
	ErrInsufficient   = errors.New("hypervisor: insufficient capacity")
	ErrUnknownVM      = errors.New("hypervisor: unknown VM")
	ErrDuplicateVM    = errors.New("hypervisor: VM already present")
	ErrBadTransition  = errors.New("hypervisor: invalid power transition")
	ErrMigrationBusy  = errors.New("hypervisor: VM already migrating")
	ErrNodeFailed     = errors.New("hypervisor: node failed")
	ErrNotSuspendable = errors.New("hypervisor: node hosts VMs")
)

// Config parameterizes node behaviour.
type Config struct {
	// Power is the node power/energy model.
	Power power.Model
	// VMBootDelay is the time from StartVM to the VM entering VMRunning.
	VMBootDelay time.Duration
	// MigrationMBps is the live-migration bandwidth in megabytes/s used to
	// derive transfer time from VM memory size.
	MigrationMBps float64
	// Traces resolves VMSpec.TraceID to utilization traces; nil means
	// every VM runs flat at its reservation.
	Traces *workload.Registry
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Power:         power.DefaultModel(),
		VMBootDelay:   2 * time.Second,
		MigrationMBps: 1000, // 10 GbE class
		Traces:        nil,
	}
}

type vmInstance struct {
	spec      types.VMSpec
	state     types.VMState
	bootTimer simkernel.Canceler
	migrating bool
}

// PowerListener observes completed node power transitions (for the energy
// manager and for metering).
type PowerListener func(id types.NodeID, state types.PowerState)

// Node is one simulated physical machine. Safe for concurrent use.
type Node struct {
	rt  simkernel.Runtime
	cfg Config

	mu         sync.Mutex
	spec       types.NodeSpec
	pwr        types.PowerState
	vms        map[types.VMID]*vmInstance
	generation uint64
	idleSince  time.Duration // time the node last became VM-free
	meter      *power.Meter
	listeners  []PowerListener
	transition simkernel.Canceler
	migrations uint64
	started    uint64
	stopped    uint64
}

// NewNode creates a powered-on, empty node.
func NewNode(rt simkernel.Runtime, spec types.NodeSpec, cfg Config) *Node {
	if cfg.MigrationMBps <= 0 {
		cfg.MigrationMBps = 1000
	}
	n := &Node{
		rt:         rt,
		cfg:        cfg,
		spec:       spec,
		pwr:        types.PowerOn,
		vms:        make(map[types.VMID]*vmInstance),
		generation: 1,
		idleSince:  rt.Now(),
		meter:      power.NewMeter(cfg.Power),
	}
	n.meter.Observe(rt.Now(), types.PowerOn, 0)
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() types.NodeID { return n.spec.ID }

// Spec returns the node's static description.
func (n *Node) Spec() types.NodeSpec { return n.spec }

// OnPowerChange registers a listener for completed power transitions.
func (n *Node) OnPowerChange(l PowerListener) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.listeners = append(n.listeners, l)
}

func (n *Node) notify(state types.PowerState) {
	n.mu.Lock()
	ls := append([]PowerListener(nil), n.listeners...)
	id := n.spec.ID
	n.mu.Unlock()
	for _, l := range ls {
		l(id, state)
	}
}

// ---------------------------------------------------------------------------
// Capacity / monitoring
// ---------------------------------------------------------------------------

// Reserved returns the sum of reservations of all present VMs.
func (n *Node) Reserved() types.ResourceVector {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reservedLocked()
}

func (n *Node) reservedLocked() types.ResourceVector {
	var sum types.ResourceVector
	for _, vm := range n.vms {
		sum = sum.Add(vm.spec.Requested)
	}
	return sum
}

// Usage returns the current measured utilization: the sum over running VMs
// of their trace demand, clamped to node capacity (a saturated host cannot
// deliver more than it has — that is exactly an overload).
func (n *Node) Usage() types.ResourceVector {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.usageLocked()
}

func (n *Node) usageLocked() types.ResourceVector {
	now := n.rt.Now()
	var sum types.ResourceVector
	for _, vm := range n.vms {
		if vm.state != types.VMRunning && vm.state != types.VMMigrating {
			continue
		}
		frac := types.RV(1, 1, 1, 1)
		if n.cfg.Traces != nil {
			frac = n.cfg.Traces.Lookup(vm.spec.TraceID).At(now)
		}
		sum = sum.Add(types.ResourceVector{
			CPU:    vm.spec.Requested.CPU * frac.CPU,
			Memory: vm.spec.Requested.Memory * frac.Memory,
			NetRx:  vm.spec.Requested.NetRx * frac.NetRx,
			NetTx:  vm.spec.Requested.NetTx * frac.NetTx,
		})
	}
	return sum.Min(n.spec.Capacity)
}

// Status returns the monitored node view (what the LC reports to its GM).
func (n *Node) Status() types.NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := types.NodeStatus{
		Spec:       n.spec,
		Power:      n.pwr,
		Used:       n.usageLocked(),
		Reserved:   n.reservedLocked(),
		Generation: n.generation,
	}
	if len(n.vms) == 0 {
		st.Idle = true
		st.IdleSince = int64(n.idleSince)
	}
	for id := range n.vms {
		st.VMs = append(st.VMs, id)
	}
	return st
}

// VMs returns the statuses of all present VMs.
func (n *Node) VMs() []types.VMStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.rt.Now()
	out := make([]types.VMStatus, 0, len(n.vms))
	for _, vm := range n.vms {
		frac := types.RV(1, 1, 1, 1)
		if n.cfg.Traces != nil {
			frac = n.cfg.Traces.Lookup(vm.spec.TraceID).At(now)
		}
		used := types.ResourceVector{}
		if vm.state == types.VMRunning || vm.state == types.VMMigrating {
			used = types.ResourceVector{
				CPU:    vm.spec.Requested.CPU * frac.CPU,
				Memory: vm.spec.Requested.Memory * frac.Memory,
				NetRx:  vm.spec.Requested.NetRx * frac.NetRx,
				NetTx:  vm.spec.Requested.NetTx * frac.NetTx,
			}
		}
		out = append(out, types.VMStatus{
			Spec:  vm.spec,
			State: vm.state,
			Node:  n.spec.ID,
			Used:  used,
		})
	}
	return out
}

// Power returns the current power state.
func (n *Node) Power() types.PowerState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pwr
}

// Generation returns the boot generation (bumped on wake/boot/recover).
func (n *Node) Generation() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.generation
}

// Counters returns lifetime (started, stopped, migrations) VM counts.
func (n *Node) Counters() (started, stopped, migrations uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.started, n.stopped, n.migrations
}

// ---------------------------------------------------------------------------
// Energy metering
// ---------------------------------------------------------------------------

// MeterSample records the node's current draw into its energy meter; the
// cluster harness calls this on every monitoring tick and state change.
func (n *Node) MeterSample() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.meterSampleLocked()
}

func (n *Node) meterSampleLocked() {
	util := 0.0
	if n.spec.Capacity.CPU > 0 {
		util = n.usageLocked().CPU / n.spec.Capacity.CPU
	}
	n.meter.Observe(n.rt.Now(), n.pwr, util)
}

// EnergyJoules returns energy accumulated up to the last MeterSample.
func (n *Node) EnergyJoules() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.meter.Joules()
}

// ---------------------------------------------------------------------------
// VM lifecycle
// ---------------------------------------------------------------------------

// StartVM instantiates a VM; it enters VMRunning after VMBootDelay. The
// reservation is admission-controlled against total capacity.
func (n *Node) StartVM(spec types.VMSpec) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pwr != types.PowerOn {
		return fmt.Errorf("%w: %s is %s", ErrNotAvailable, n.spec.ID, n.pwr)
	}
	if _, dup := n.vms[spec.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateVM, spec.ID)
	}
	if !n.reservedLocked().Add(spec.Requested).FitsIn(n.spec.Capacity) {
		return fmt.Errorf("%w: %s on %s", ErrInsufficient, spec.ID, n.spec.ID)
	}
	n.meterSampleLocked()
	vm := &vmInstance{spec: spec, state: types.VMBooting}
	n.vms[spec.ID] = vm
	n.started++
	gen := n.generation
	vm.bootTimer = n.rt.After(n.cfg.VMBootDelay, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.generation != gen { // node rebooted under us
			return
		}
		if cur, ok := n.vms[spec.ID]; ok && cur.state == types.VMBooting {
			cur.state = types.VMRunning
			n.meterSampleLocked()
		}
	})
	return nil
}

// StopVM destroys a VM immediately.
func (n *Node) StopVM(id types.VMID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	vm, ok := n.vms[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownVM, id)
	}
	if vm.bootTimer != nil {
		vm.bootTimer.Cancel()
	}
	n.meterSampleLocked()
	delete(n.vms, id)
	n.stopped++
	if len(n.vms) == 0 {
		n.idleSince = n.rt.Now()
	}
	return nil
}

// HasVM reports whether id is present.
func (n *Node) HasVM(id types.VMID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.vms[id]
	return ok
}

// MigrationDuration returns the modelled pre-copy transfer time for a VM of
// the given memory reservation.
func (n *Node) MigrationDuration(spec types.VMSpec) time.Duration {
	secs := spec.Requested.Memory / n.cfg.MigrationMBps
	return time.Duration(secs * float64(time.Second))
}

// MigrateTo live-migrates a VM to dst. Destination capacity is reserved for
// the whole transfer; the VM keeps running on the source (pre-copy) and
// switches over at completion. done (optional) receives the outcome.
func (n *Node) MigrateTo(id types.VMID, dst *Node, done func(error)) error {
	report := func(err error) {
		if done != nil {
			n.rt.After(0, func() { done(err) })
		}
	}
	n.mu.Lock()
	vm, ok := n.vms[id]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownVM, id)
	}
	if vm.migrating {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrMigrationBusy, id)
	}
	if vm.state != types.VMRunning {
		n.mu.Unlock()
		return fmt.Errorf("hypervisor: VM %s not running (%s)", id, vm.state)
	}
	spec := vm.spec
	srcGen := n.generation
	n.mu.Unlock()

	if dst == nil || dst == n {
		return errors.New("hypervisor: invalid migration destination")
	}
	// Reserve on destination (shadow VM in Booting state holds capacity).
	dst.mu.Lock()
	if dst.pwr != types.PowerOn {
		dst.mu.Unlock()
		return fmt.Errorf("%w: destination %s is %s", ErrNotAvailable, dst.spec.ID, dst.pwr)
	}
	if _, dup := dst.vms[id]; dup {
		dst.mu.Unlock()
		return fmt.Errorf("%w: %s on destination", ErrDuplicateVM, id)
	}
	if !dst.reservedLocked().Add(spec.Requested).FitsIn(dst.spec.Capacity) {
		dst.mu.Unlock()
		return fmt.Errorf("%w: destination %s", ErrInsufficient, dst.spec.ID)
	}
	dst.vms[id] = &vmInstance{spec: spec, state: types.VMBooting}
	dstGen := dst.generation
	dst.mu.Unlock()

	n.mu.Lock()
	vm.migrating = true
	vm.state = types.VMMigrating
	n.mu.Unlock()

	n.rt.After(n.MigrationDuration(spec), func() {
		// Evaluate both endpoints before committing: a transfer only
		// succeeds if the source survived long enough to finish pre-copy
		// AND the destination is still up to receive the switch-over.
		dst.mu.Lock()
		dstAlive := dst.generation == dstGen && dst.pwr == types.PowerOn
		dst.mu.Unlock()
		n.mu.Lock()
		srcAlive := n.generation == srcGen && n.pwr == types.PowerOn

		if srcAlive && dstAlive {
			n.meterSampleLocked()
			delete(n.vms, id)
			n.migrations++
			if len(n.vms) == 0 {
				n.idleSince = n.rt.Now()
			}
			n.mu.Unlock()
			dst.mu.Lock()
			if cur, ok := dst.vms[id]; ok {
				cur.state = types.VMRunning
				dst.meterSampleLocked()
			}
			dst.mu.Unlock()
			report(nil)
			return
		}
		// Abort: the VM stays (or dies) with the source; release the
		// destination-side reservation.
		if srcAlive {
			if cur, ok := n.vms[id]; ok {
				cur.migrating = false
				cur.state = types.VMRunning
			}
		}
		n.mu.Unlock()
		dst.mu.Lock()
		if dstAlive {
			delete(dst.vms, id)
			if len(dst.vms) == 0 {
				dst.idleSince = dst.rt.Now()
			}
		}
		dst.mu.Unlock()
		report(fmt.Errorf("hypervisor: migration of %s aborted by node failure", id))
	})
	return nil
}

// ---------------------------------------------------------------------------
// Power state machine
// ---------------------------------------------------------------------------

// Suspend transitions an idle node PowerOn → PowerSuspending → PowerSuspended.
// Nodes hosting VMs refuse (the paper suspends idle LCs only).
func (n *Node) Suspend() error {
	n.mu.Lock()
	if n.pwr != types.PowerOn {
		n.mu.Unlock()
		return fmt.Errorf("%w: suspend from %s", ErrBadTransition, n.pwr)
	}
	if len(n.vms) > 0 {
		n.mu.Unlock()
		return fmt.Errorf("%w: %d VMs present", ErrNotSuspendable, len(n.vms))
	}
	n.meterSampleLocked()
	n.pwr = types.PowerSuspending
	n.meterSampleLocked() // start charging at the transition rate
	gen := n.generation
	n.transition = n.rt.After(n.cfg.Power.SuspendLatency, func() {
		n.completeTransition(gen, types.PowerSuspending, types.PowerSuspended, false)
	})
	n.mu.Unlock()
	n.notify(types.PowerSuspending)
	return nil
}

// Wake transitions PowerSuspended → PowerWaking → PowerOn.
func (n *Node) Wake() error {
	n.mu.Lock()
	if n.pwr != types.PowerSuspended {
		n.mu.Unlock()
		return fmt.Errorf("%w: wake from %s", ErrBadTransition, n.pwr)
	}
	n.meterSampleLocked()
	n.pwr = types.PowerWaking
	n.meterSampleLocked() // start charging at the transition rate
	gen := n.generation
	n.transition = n.rt.After(n.cfg.Power.WakeLatency, func() {
		n.completeTransition(gen, types.PowerWaking, types.PowerOn, true)
	})
	n.mu.Unlock()
	n.notify(types.PowerWaking)
	return nil
}

// PowerOff forces the node off immediately, destroying any VMs (used for
// decommissioning; crash injection uses Fail).
func (n *Node) PowerOff() {
	n.setTerminalState(types.PowerOff)
}

// Fail crash-stops the node: all VMs are lost, pending transitions cancelled.
func (n *Node) Fail() {
	n.setTerminalState(types.PowerFailed)
}

func (n *Node) setTerminalState(st types.PowerState) {
	n.mu.Lock()
	n.meterSampleLocked()
	if n.transition != nil {
		n.transition.Cancel()
		n.transition = nil
	}
	for id, vm := range n.vms {
		if vm.bootTimer != nil {
			vm.bootTimer.Cancel()
		}
		delete(n.vms, id)
	}
	n.pwr = st
	n.meterSampleLocked()
	n.mu.Unlock()
	n.notify(st)
}

// Boot restarts a node from PowerOff or PowerFailed (repair): PowerBooting →
// PowerOn after BootLatency, with a fresh generation.
func (n *Node) Boot() error {
	n.mu.Lock()
	if n.pwr != types.PowerOff && n.pwr != types.PowerFailed {
		n.mu.Unlock()
		return fmt.Errorf("%w: boot from %s", ErrBadTransition, n.pwr)
	}
	n.meterSampleLocked()
	n.pwr = types.PowerBooting
	n.meterSampleLocked() // start charging at the transition rate
	gen := n.generation
	n.transition = n.rt.After(n.cfg.Power.BootLatency, func() {
		n.completeTransition(gen, types.PowerBooting, types.PowerOn, true)
	})
	n.mu.Unlock()
	n.notify(types.PowerBooting)
	return nil
}

func (n *Node) completeTransition(gen uint64, from, to types.PowerState, bumpGen bool) {
	n.mu.Lock()
	if n.generation != gen || n.pwr != from {
		n.mu.Unlock()
		return
	}
	n.meterSampleLocked()
	n.pwr = to
	if bumpGen {
		n.generation++
		n.idleSince = n.rt.Now()
	}
	n.meterSampleLocked()
	n.mu.Unlock()
	n.notify(to)
}
