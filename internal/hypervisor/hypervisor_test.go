package hypervisor

import (
	"errors"
	"math"
	"testing"
	"time"

	"snooze/internal/simkernel"
	"snooze/internal/types"
	"snooze/internal/workload"
)

func testNode(k *simkernel.Kernel) *Node {
	return NewNode(k, types.NodeSpec{ID: "n1", Capacity: types.RV(8, 16384, 1000, 1000)}, DefaultConfig())
}

func vm(id string, cpu, mem float64) types.VMSpec {
	return types.VMSpec{ID: types.VMID(id), Requested: types.RV(cpu, mem, 10, 10)}
}

func TestStartVMLifecycle(t *testing.T) {
	k := simkernel.New(1)
	n := testNode(k)
	if err := n.StartVM(vm("v1", 2, 2048)); err != nil {
		t.Fatal(err)
	}
	st := n.Status()
	if len(st.VMs) != 1 || st.IdleSince != 0 {
		t.Fatalf("status: %+v", st)
	}
	vms := n.VMs()
	if vms[0].State != types.VMBooting {
		t.Fatalf("state before boot: %v", vms[0].State)
	}
	k.Run(5 * time.Second) // boot delay 2s
	if got := n.VMs()[0].State; got != types.VMRunning {
		t.Fatalf("state after boot: %v", got)
	}
	started, stopped, _ := n.Counters()
	if started != 1 || stopped != 0 {
		t.Fatalf("counters: %d %d", started, stopped)
	}
}

func TestStartVMErrors(t *testing.T) {
	k := simkernel.New(1)
	n := testNode(k)
	if err := n.StartVM(vm("v1", 6, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := n.StartVM(vm("v1", 1, 1024)); !errors.Is(err, ErrDuplicateVM) {
		t.Fatalf("dup: %v", err)
	}
	if err := n.StartVM(vm("v2", 4, 1024)); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("capacity: %v", err)
	}
	// Memory dimension enforced independently.
	if err := n.StartVM(vm("v3", 1, 20000)); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("mem capacity: %v", err)
	}
	n.Fail()
	if err := n.StartVM(vm("v4", 1, 1024)); !errors.Is(err, ErrNotAvailable) {
		t.Fatalf("failed node: %v", err)
	}
}

func TestStopVM(t *testing.T) {
	k := simkernel.New(1)
	n := testNode(k)
	n.StartVM(vm("v1", 2, 2048))
	k.Run(5 * time.Second)
	if err := n.StopVM("v1"); err != nil {
		t.Fatal(err)
	}
	if n.HasVM("v1") {
		t.Fatal("VM still present")
	}
	if err := n.StopVM("v1"); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("double stop: %v", err)
	}
	st := n.Status()
	if st.IdleSince != int64(5*time.Second) {
		t.Fatalf("idleSince: %d", st.IdleSince)
	}
}

func TestStopDuringBootCancelsTimer(t *testing.T) {
	k := simkernel.New(1)
	n := testNode(k)
	n.StartVM(vm("v1", 2, 2048))
	n.StopVM("v1")
	k.Run(5 * time.Second)
	if n.HasVM("v1") {
		t.Fatal("stopped VM reappeared after boot timer")
	}
}

func TestReservedAndUsage(t *testing.T) {
	k := simkernel.New(1)
	reg := workload.NewRegistry()
	reg.Register("half", workload.FlatTrace{Fraction: 0.5})
	cfg := DefaultConfig()
	cfg.Traces = reg
	n := NewNode(k, types.NodeSpec{ID: "n1", Capacity: types.RV(8, 16384, 1000, 1000)}, cfg)

	spec := vm("v1", 4, 4096)
	spec.TraceID = "half"
	n.StartVM(spec)
	if got := n.Reserved(); got != spec.Requested {
		t.Fatalf("reserved: %v", got)
	}
	// Booting VMs consume no measured usage.
	if got := n.Usage(); !got.Zero() {
		t.Fatalf("usage while booting: %v", got)
	}
	k.Run(5 * time.Second)
	got := n.Usage()
	if math.Abs(got.CPU-2) > 1e-9 || math.Abs(got.Memory-2048) > 1e-9 {
		t.Fatalf("usage at 50%%: %v", got)
	}
}

func TestUsageClampedAtCapacity(t *testing.T) {
	k := simkernel.New(1)
	reg := workload.NewRegistry()
	reg.Register("over", workload.FlatTrace{Fraction: 1})
	cfg := DefaultConfig()
	cfg.Traces = reg
	n := NewNode(k, types.NodeSpec{ID: "n1", Capacity: types.RV(8, 16384, 1000, 1000)}, cfg)
	for i, id := range []string{"a", "b", "c", "d"} {
		s := vm(id, 2, 2048)
		s.TraceID = "over"
		if err := n.StartVM(s); err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
	}
	k.Run(5 * time.Second)
	if got := n.Usage(); got.CPU > 8+1e-9 {
		t.Fatalf("usage exceeds capacity: %v", got)
	}
}

func TestMigration(t *testing.T) {
	k := simkernel.New(1)
	src, dst := testNode(k), NewNode(k, types.NodeSpec{ID: "n2", Capacity: types.RV(8, 16384, 1000, 1000)}, DefaultConfig())
	spec := vm("v1", 2, 2000) // 2000 MB at 1000 MB/s = 2s transfer
	src.StartVM(spec)
	k.Run(5 * time.Second)
	var result error
	set := false
	if err := src.MigrateTo("v1", dst, func(err error) { result, set = err, true }); err != nil {
		t.Fatal(err)
	}
	// During migration: source still runs it (pre-copy), destination holds
	// a reservation.
	if got := src.VMs()[0].State; got != types.VMMigrating {
		t.Fatalf("source state: %v", got)
	}
	if got := dst.Reserved(); got != spec.Requested {
		t.Fatalf("destination reservation: %v", got)
	}
	k.Run(5*time.Second + src.MigrationDuration(spec) + time.Second)
	if !set || result != nil {
		t.Fatalf("migration outcome: set=%v err=%v", set, result)
	}
	if src.HasVM("v1") || !dst.HasVM("v1") {
		t.Fatalf("placement after migration: src=%v dst=%v", src.HasVM("v1"), dst.HasVM("v1"))
	}
	if got := dst.VMs()[0].State; got != types.VMRunning {
		t.Fatalf("destination state: %v", got)
	}
	_, _, migs := src.Counters()
	if migs != 1 {
		t.Fatalf("migration counter: %d", migs)
	}
}

func TestMigrationErrors(t *testing.T) {
	k := simkernel.New(1)
	src, dst := testNode(k), NewNode(k, types.NodeSpec{ID: "n2", Capacity: types.RV(2, 2048, 100, 100)}, DefaultConfig())
	src.StartVM(vm("v1", 2, 2048))
	if err := src.MigrateTo("ghost", dst, nil); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("unknown: %v", err)
	}
	// Not running yet (still booting).
	if err := src.MigrateTo("v1", dst, nil); err == nil {
		t.Fatal("migrating a booting VM should fail")
	}
	k.Run(5 * time.Second)
	if err := src.MigrateTo("v1", src, nil); err == nil {
		t.Fatal("self-migration should fail")
	}
	if err := src.MigrateTo("v1", nil, nil); err == nil {
		t.Fatal("nil destination should fail")
	}
	// Destination too small.
	src.StartVM(vm("v2", 4, 4096))
	k.Run(10 * time.Second)
	if err := src.MigrateTo("v2", dst, nil); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("small destination: %v", err)
	}
	// Concurrent second migration of the same VM.
	if err := src.MigrateTo("v1", dst, nil); err != nil {
		t.Fatal(err)
	}
	if err := src.MigrateTo("v1", dst, nil); !errors.Is(err, ErrMigrationBusy) {
		t.Fatalf("busy: %v", err)
	}
}

func TestMigrationAbortOnDestinationFailure(t *testing.T) {
	k := simkernel.New(1)
	src, dst := testNode(k), NewNode(k, types.NodeSpec{ID: "n2", Capacity: types.RV(8, 16384, 1000, 1000)}, DefaultConfig())
	src.StartVM(vm("v1", 2, 2000))
	k.Run(5 * time.Second)
	var result error
	set := false
	src.MigrateTo("v1", dst, func(err error) { result, set = err, true })
	dst.Fail() // destination dies mid-transfer
	k.Run(20 * time.Second)
	if !set || result == nil {
		t.Fatalf("expected abort error, got set=%v err=%v", set, result)
	}
	if !src.HasVM("v1") {
		t.Fatal("VM lost from source on aborted migration")
	}
	// VM is runnable again (migrating flag cleared).
	if got := src.VMs()[0]; got.State != types.VMMigrating && got.State != types.VMRunning {
		t.Fatalf("source VM state after abort: %v", got.State)
	}
}

func TestSuspendWakeCycle(t *testing.T) {
	k := simkernel.New(1)
	n := testNode(k)
	var transitions []types.PowerState
	n.OnPowerChange(func(_ types.NodeID, st types.PowerState) { transitions = append(transitions, st) })
	if err := n.Suspend(); err != nil {
		t.Fatal(err)
	}
	if n.Power() != types.PowerSuspending {
		t.Fatalf("power: %v", n.Power())
	}
	k.Run(time.Minute)
	if n.Power() != types.PowerSuspended {
		t.Fatalf("power after latency: %v", n.Power())
	}
	gen := n.Generation()
	if err := n.Wake(); err != nil {
		t.Fatal(err)
	}
	k.Run(2 * time.Minute)
	if n.Power() != types.PowerOn {
		t.Fatalf("power after wake: %v", n.Power())
	}
	if n.Generation() != gen+1 {
		t.Fatalf("generation not bumped: %d -> %d", gen, n.Generation())
	}
	want := []types.PowerState{types.PowerSuspending, types.PowerSuspended, types.PowerWaking, types.PowerOn}
	if len(transitions) != len(want) {
		t.Fatalf("transitions: %v", transitions)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions: %v", transitions)
		}
	}
}

func TestSuspendRefusedWithVMs(t *testing.T) {
	k := simkernel.New(1)
	n := testNode(k)
	n.StartVM(vm("v1", 1, 1024))
	if err := n.Suspend(); !errors.Is(err, ErrNotSuspendable) {
		t.Fatalf("suspend with VMs: %v", err)
	}
}

func TestInvalidPowerTransitions(t *testing.T) {
	k := simkernel.New(1)
	n := testNode(k)
	if err := n.Wake(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("wake while on: %v", err)
	}
	if err := n.Boot(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("boot while on: %v", err)
	}
	n.Suspend()
	if err := n.Suspend(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("double suspend: %v", err)
	}
}

func TestFailDestroysVMs(t *testing.T) {
	k := simkernel.New(1)
	n := testNode(k)
	n.StartVM(vm("v1", 1, 1024))
	n.StartVM(vm("v2", 1, 1024))
	k.Run(5 * time.Second)
	n.Fail()
	if n.Power() != types.PowerFailed {
		t.Fatalf("power: %v", n.Power())
	}
	if len(n.Status().VMs) != 0 {
		t.Fatal("VMs survived crash")
	}
	// Repair: boot brings it back empty with a new generation.
	gen := n.Generation()
	if err := n.Boot(); err != nil {
		t.Fatal(err)
	}
	k.Run(10 * time.Minute)
	if n.Power() != types.PowerOn || n.Generation() != gen+1 {
		t.Fatalf("after boot: %v gen %d->%d", n.Power(), gen, n.Generation())
	}
}

func TestEnergyAccounting(t *testing.T) {
	k := simkernel.New(1)
	cfg := DefaultConfig()
	n := NewNode(k, types.NodeSpec{ID: "n1", Capacity: types.RV(8, 16384, 1000, 1000)}, cfg)
	// 100s idle at IdleWatts.
	k.Run(100 * time.Second)
	n.MeterSample()
	idle := n.EnergyJoules()
	want := cfg.Power.IdleWatts * 100
	if math.Abs(idle-want) > 1 {
		t.Fatalf("idle energy: %v want %v", idle, want)
	}
	// Suspend: after the transition completes, draw is SuspendWatts.
	n.Suspend()
	k.Run(100*time.Second + cfg.Power.SuspendLatency)
	n.MeterSample()
	k.Run(200*time.Second + cfg.Power.SuspendLatency)
	n.MeterSample()
	total := n.EnergyJoules()
	suspended := total - idle - cfg.Power.TransitionWatts*cfg.Power.SuspendLatency.Seconds()
	wantSusp := cfg.Power.SuspendWatts * 100
	if math.Abs(suspended-wantSusp) > 1 {
		t.Fatalf("suspended energy: %v want %v", suspended, wantSusp)
	}
}

func TestSuspendedDrawsLessThanIdle(t *testing.T) {
	k := simkernel.New(1)
	a := testNode(k)
	b := NewNode(k, types.NodeSpec{ID: "n2", Capacity: types.RV(8, 16384, 1000, 1000)}, DefaultConfig())
	b.Suspend()
	k.Run(time.Hour)
	a.MeterSample()
	b.MeterSample()
	if b.EnergyJoules() >= a.EnergyJoules() {
		t.Fatalf("suspended node drew %v >= idle node %v", b.EnergyJoules(), a.EnergyJoules())
	}
}

func TestMigrationDurationScalesWithMemory(t *testing.T) {
	k := simkernel.New(1)
	n := testNode(k)
	small := n.MigrationDuration(vm("a", 1, 1000))
	big := n.MigrationDuration(vm("b", 1, 4000))
	if small != time.Second || big != 4*time.Second {
		t.Fatalf("durations: %v %v", small, big)
	}
}

func TestGenerationFencesStaleBootTimer(t *testing.T) {
	k := simkernel.New(1)
	n := testNode(k)
	n.StartVM(vm("v1", 1, 1024))
	n.Fail() // destroys VM, cancels timers
	n.Boot()
	k.Run(10 * time.Minute)
	if n.HasVM("v1") {
		t.Fatal("stale VM after reboot")
	}
}
