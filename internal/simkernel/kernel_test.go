package simkernel

import (
	"sync"
	"testing"
	"time"
)

func TestKernelOrdering(t *testing.T) {
	k := New(1)
	var order []int
	k.After(30*time.Millisecond, func() { order = append(order, 3) })
	k.After(10*time.Millisecond, func() { order = append(order, 1) })
	k.After(20*time.Millisecond, func() { order = append(order, 2) })
	k.Run(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order: %v", order)
	}
	if k.Now() != time.Second {
		t.Fatalf("Now after Run: %v", k.Now())
	}
	if k.Processed() != 3 {
		t.Fatalf("Processed: %d", k.Processed())
	}
}

func TestKernelFIFOTieBreak(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(5*time.Millisecond, func() { order = append(order, i) })
	}
	k.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestKernelTimeAdvances(t *testing.T) {
	k := New(1)
	var at1, at2 time.Duration
	k.After(100*time.Millisecond, func() { at1 = k.Now() })
	k.After(250*time.Millisecond, func() { at2 = k.Now() })
	k.Run(time.Second)
	if at1 != 100*time.Millisecond || at2 != 250*time.Millisecond {
		t.Fatalf("event times: %v %v", at1, at2)
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := New(1)
	fired := false
	k.After(10*time.Millisecond, func() {
		k.After(10*time.Millisecond, func() { fired = true })
	})
	k.Run(15 * time.Millisecond)
	if fired {
		t.Fatal("nested event fired too early")
	}
	k.Run(25 * time.Millisecond)
	if !fired {
		t.Fatal("nested event did not fire")
	}
}

func TestKernelCancel(t *testing.T) {
	k := New(1)
	fired := false
	c := k.After(10*time.Millisecond, func() { fired = true })
	if !c.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if c.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	k.Run(time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestKernelCancelAfterFire(t *testing.T) {
	k := New(1)
	c := k.After(10*time.Millisecond, func() {})
	k.Run(time.Second)
	if c.Cancel() {
		t.Fatal("Cancel after firing should report false")
	}
}

func TestKernelNegativeDelay(t *testing.T) {
	k := New(1)
	fired := false
	k.After(-time.Hour, func() { fired = true })
	if !k.Step() || !fired {
		t.Fatal("negative-delay event should run immediately")
	}
}

func TestKernelAt(t *testing.T) {
	k := New(1)
	var at time.Duration
	k.At(77*time.Millisecond, func() { at = k.Now() })
	k.Run(time.Second)
	if at != 77*time.Millisecond {
		t.Fatalf("At: fired at %v", at)
	}
	// Past times clamp to now.
	fired := false
	k.At(5*time.Millisecond, func() { fired = true })
	k.Step()
	if !fired || k.Now() != time.Second {
		t.Fatalf("past At: fired=%v now=%v", fired, k.Now())
	}
}

func TestKernelStepEmpty(t *testing.T) {
	k := New(1)
	if k.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestKernelRunStopsAtUntil(t *testing.T) {
	k := New(1)
	fired := false
	k.After(2*time.Second, func() { fired = true })
	k.Run(time.Second)
	if fired {
		t.Fatal("event past until fired")
	}
	if k.Now() != time.Second {
		t.Fatalf("Now: %v", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending: %d", k.Pending())
	}
	k.Run(3 * time.Second)
	if !fired {
		t.Fatal("event did not fire on later Run")
	}
}

func TestKernelRunAll(t *testing.T) {
	k := New(1)
	n := 0
	var rec func()
	rec = func() {
		n++
		if n < 5 {
			k.After(time.Millisecond, rec)
		}
	}
	k.After(time.Millisecond, rec)
	if !k.RunAll(100) {
		t.Fatal("RunAll should drain")
	}
	if n != 5 {
		t.Fatalf("n=%d", n)
	}
	// Self-rearming chain hits the cap.
	var forever func()
	forever = func() { k.After(time.Millisecond, forever) }
	k.After(time.Millisecond, forever)
	if k.RunAll(10) {
		t.Fatal("RunAll should report not drained at cap")
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func() []time.Duration {
		k := New(42)
		var log []time.Duration
		for i := 0; i < 50; i++ {
			d := time.Duration(k.RNG().Intn(1000)) * time.Millisecond
			k.After(d, func() { log = append(log, k.Now()) })
		}
		k.Run(2 * time.Second)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTickerPeriodic(t *testing.T) {
	k := New(1)
	n := 0
	tk := NewTicker(k, 10*time.Millisecond, func() { n++ })
	tk.Start()
	tk.Start() // double start is a no-op
	k.Run(55 * time.Millisecond)
	if n != 5 {
		t.Fatalf("ticks: %d", n)
	}
	tk.Stop()
	k.Run(200 * time.Millisecond)
	if n != 5 {
		t.Fatalf("ticks after stop: %d", n)
	}
	tk.Start() // start after stop is a no-op
	k.Run(300 * time.Millisecond)
	if n != 5 {
		t.Fatalf("ticks after restart attempt: %d", n)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	k := New(1)
	n := 0
	var tk *Ticker
	tk = NewTicker(k, 10*time.Millisecond, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	tk.Start()
	k.Run(time.Second)
	if n != 3 {
		t.Fatalf("ticks: %d", n)
	}
}

func TestWallRuntime(t *testing.T) {
	w := NewWallRuntime()
	start := w.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	fired := false
	w.After(5*time.Millisecond, func() { fired = true; wg.Done() })
	wg.Wait()
	if !fired {
		t.Fatal("wall timer did not fire")
	}
	if w.Now() <= start {
		t.Fatal("wall clock did not advance")
	}
	c := w.After(time.Hour, func() {})
	if !c.Cancel() {
		t.Fatal("wall Cancel should report true for pending timer")
	}
}

func TestWallTicker(t *testing.T) {
	w := NewWallRuntime()
	var mu sync.Mutex
	n := 0
	tk := NewTicker(w, 2*time.Millisecond, func() {
		mu.Lock()
		n++
		mu.Unlock()
	})
	tk.Start()
	time.Sleep(20 * time.Millisecond)
	tk.Stop()
	mu.Lock()
	got := n
	mu.Unlock()
	if got < 2 {
		t.Fatalf("wall ticker ticks: %d", got)
	}
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	after := n
	mu.Unlock()
	if after > got+1 { // at most one in-flight tick after Stop
		t.Fatalf("ticker kept firing after Stop: %d -> %d", got, after)
	}
}
