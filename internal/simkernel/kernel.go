// Package simkernel provides the deterministic discrete-event simulation
// kernel that drives the Snooze hierarchy in experiments, plus the Runtime
// abstraction that lets the very same component code run against the wall
// clock in real deployments (cmd/snoozed).
//
// The paper evaluated Snooze on a 144-node Grid'5000 cluster; this repo's
// substitute is a virtual-time kernel (DESIGN.md §2) so that experiments with
// thousands of Local Controllers, precise failure injection and repeatable
// seeds run in milliseconds on a laptop.
package simkernel

import (
	"container/heap"
	"math/rand"
	"sync"
	"time"
)

// Canceler cancels a pending timer. Cancel is idempotent and reports whether
// the timer was still pending.
type Canceler interface {
	Cancel() bool
}

// Runtime is the execution environment a hierarchy component runs in: a
// clock and a timer facility. Two implementations exist: *Kernel (virtual
// time, deterministic) and *WallRuntime (real time).
type Runtime interface {
	// Now returns the current time as an offset from the runtime epoch.
	Now() time.Duration
	// After schedules fn to run once, d from now. fn runs on the runtime's
	// executor goroutine (the simulation loop for Kernel, a timer goroutine
	// for WallRuntime).
	After(d time.Duration, fn func()) Canceler
}

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

type event struct {
	at    time.Duration
	seq   uint64 // FIFO tie-break for equal timestamps → determinism
	fn    func()
	index int // heap index; -1 when popped or cancelled
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

// Kernel is a single-threaded discrete-event simulator with a seeded RNG.
// All component callbacks execute on the goroutine that calls Run/Step, so
// simulation-mode components need no internal locking for kernel-driven
// work. Schedule/After may be called from within callbacks.
type Kernel struct {
	mu    sync.Mutex
	queue eventQueue
	now   time.Duration
	seq   uint64
	rng   *rand.Rand
	// processed counts executed events, for experiment accounting.
	processed uint64
}

// New creates a kernel whose RNG is seeded with seed (use a fixed seed for
// reproducible experiments).
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now implements Runtime.
func (k *Kernel) Now() time.Duration {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.now
}

// RNG returns the kernel's deterministic random source. It must only be used
// from kernel callbacks (the simulation goroutine).
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.processed
}

type kernelCanceler struct {
	k *Kernel
	e *event
}

func (c kernelCanceler) Cancel() bool {
	c.k.mu.Lock()
	defer c.k.mu.Unlock()
	if c.e.index < 0 {
		return false
	}
	heap.Remove(&c.k.queue, c.e.index)
	return true
}

// After implements Runtime: schedule fn at now+d. Negative d is treated as 0
// (the event still runs strictly after the current callback returns).
func (k *Kernel) After(d time.Duration, fn func()) Canceler {
	if d < 0 {
		d = 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.scheduleLocked(k.now+d, fn)
}

// At schedules fn at the absolute virtual time t; times in the past run at
// the current time.
func (k *Kernel) At(t time.Duration, fn func()) Canceler {
	k.mu.Lock()
	defer k.mu.Unlock()
	if t < k.now {
		t = k.now
	}
	return k.scheduleLocked(t, fn)
}

func (k *Kernel) scheduleLocked(t time.Duration, fn func()) Canceler {
	e := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return kernelCanceler{k: k, e: e}
}

// Step executes the next pending event, advancing virtual time to it.
// It reports whether an event was executed.
func (k *Kernel) Step() bool {
	k.mu.Lock()
	if len(k.queue) == 0 {
		k.mu.Unlock()
		return false
	}
	e := heap.Pop(&k.queue).(*event)
	k.now = e.at
	k.processed++
	k.mu.Unlock()
	e.fn()
	return true
}

// Run executes events until the queue is empty or virtual time would exceed
// until. Time is left at min(until, last event time); if events remain past
// until, time is advanced to exactly until.
func (k *Kernel) Run(until time.Duration) {
	for {
		k.mu.Lock()
		if len(k.queue) == 0 || k.queue[0].at > until {
			if k.now < until {
				k.now = until
			}
			k.mu.Unlock()
			return
		}
		e := heap.Pop(&k.queue).(*event)
		k.now = e.at
		k.processed++
		k.mu.Unlock()
		e.fn()
	}
}

// RunAll executes events until the queue is empty. Periodic timers that
// re-arm themselves make this non-terminating, so RunAll takes a safety cap
// on the number of events and reports whether it drained the queue.
func (k *Kernel) RunAll(maxEvents uint64) bool {
	for i := uint64(0); i < maxEvents; i++ {
		if !k.Step() {
			return true
		}
	}
	k.mu.Lock()
	empty := len(k.queue) == 0
	k.mu.Unlock()
	return empty
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.queue)
}

// ---------------------------------------------------------------------------
// Wall-clock runtime
// ---------------------------------------------------------------------------

// WallRuntime implements Runtime on the real clock. Timer callbacks run on
// per-timer goroutines (time.AfterFunc semantics), so components used with it
// must be internally synchronized — which all hierarchy components are.
type WallRuntime struct {
	epoch time.Time
}

// NewWallRuntime creates a wall-clock runtime with epoch = now.
func NewWallRuntime() *WallRuntime {
	return &WallRuntime{epoch: time.Now()}
}

// Now implements Runtime.
func (w *WallRuntime) Now() time.Duration { return time.Since(w.epoch) }

type wallCanceler struct{ t *time.Timer }

func (c wallCanceler) Cancel() bool { return c.t.Stop() }

// After implements Runtime.
func (w *WallRuntime) After(d time.Duration, fn func()) Canceler {
	return wallCanceler{t: time.AfterFunc(d, fn)}
}

// ---------------------------------------------------------------------------
// Periodic helper
// ---------------------------------------------------------------------------

// Ticker re-arms itself on runtime rt every period and invokes fn each tick.
// Stop prevents further ticks (a tick already dispatched by a WallRuntime may
// still run). The first tick fires one full period after Start.
type Ticker struct {
	rt      Runtime
	period  time.Duration
	fn      func()
	mu      sync.Mutex
	pending Canceler
	stopped bool
}

// NewTicker creates a ticker; call Start to arm it.
func NewTicker(rt Runtime, period time.Duration, fn func()) *Ticker {
	return &Ticker{rt: rt, period: period, fn: fn}
}

// Start arms the ticker. Calling Start on a running or stopped ticker is a
// no-op.
func (t *Ticker) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped || t.pending != nil {
		return
	}
	t.armLocked()
}

func (t *Ticker) armLocked() {
	t.pending = t.rt.After(t.period, func() {
		t.mu.Lock()
		if t.stopped {
			t.mu.Unlock()
			return
		}
		t.armLocked()
		t.mu.Unlock()
		t.fn()
	})
}

// Stop disarms the ticker.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopped = true
	if t.pending != nil {
		t.pending.Cancel()
		t.pending = nil
	}
}
