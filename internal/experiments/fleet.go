package experiments

import (
	"fmt"
	"time"

	"snooze/internal/cluster"
	"snooze/internal/metrics"
	"snooze/internal/workload"
)

// This file holds the fleet-scale scheduling-throughput harness: sustained
// submission waves through the full GL→GM→LC hierarchy on the simulated
// clock, reported as placements per wall-clock second plus per-decision
// latency percentiles. It is the experiment behind the
// BenchmarkPlacementsPerSecond CI gate and the README "Fleet scale" table;
// ScaleFull drives the paper's hierarchy shape at 10k nodes.

// F1FleetThroughput measures scheduling throughput under the dispatch
// variants: sequential per-VM probing (the paper-faithful E1 path) against
// batched dispatch (one multi-VM placement request per candidate GM), each
// with the GM rollup series on and off. Expected shape: batched dispatch
// multiplies placements/s at large scale because the GL builds the group
// views once per wave instead of once per VM, and one RPC carries a whole
// GM's share of the wave; rollups shave the GL's summary-recording overhead
// on top.
func F1FleetThroughput(scale Scale) Result {
	lcs, gms, waves, wave := 192, 12, 6, 24
	if scale == ScaleFull {
		lcs, gms, waves, wave = 10240, 256, 20, 100
	}
	type variant struct {
		name   string
		batch  int
		rollup time.Duration
	}
	variants := []variant{
		{"sequential", 1, -1},
		{"sequential+rollup", 1, 0},
		{"batched", 32, -1},
		{"batched+rollup", 32, 0},
	}
	tb := metrics.NewTable("config", "LCs", "GMs", "placed", "virtual-time", "per-VM", "placements/s(wall)", "submit-p50", "submit-p95", "submit-p99")
	for _, v := range variants {
		cfg := cluster.DefaultConfig(workload.Grid5000Topology(lcs, gms), 8100)
		cfg.Manager.DispatchBatch = v.batch
		cfg.Manager.RollupInterval = v.rollup
		c := cluster.New(cfg)
		c.Settle(30 * time.Second)
		gen := workload.NewGenerator(17, nil)
		placed := 0
		start := c.Kernel.Now()
		wallStart := time.Now()
		var ferr error
		for w := 0; w < waves; w++ {
			resp, err := c.SubmitAndWait(gen.Batch(wave), time.Hour)
			if err != nil {
				ferr = err
				break
			}
			placed += len(resp.Placed)
		}
		wall := time.Since(wallStart)
		virt := c.Kernel.Now() - start
		if ferr != nil || placed == 0 {
			msg := "nothing placed"
			if ferr != nil {
				msg = ferr.Error()
			}
			tb.AddRow(v.name, lcs, gms, placed, "ERROR: "+msg, "-", "-", "-", "-", "-")
			continue
		}
		// Per-decision latency: one gl.submit-latency observation per wave
		// (virtual milliseconds from submission arrival to the response).
		lat := c.Metrics.Summarize("gl.submit-latency")
		ms := func(v float64) string {
			return time.Duration(v * float64(time.Millisecond)).Round(10 * time.Microsecond).String()
		}
		tb.AddRow(v.name, lcs, gms, placed,
			virt.Round(time.Millisecond),
			(virt / time.Duration(placed)).Round(time.Microsecond),
			fmt.Sprintf("%.0f", float64(placed)/wall.Seconds()),
			ms(lat.P50), ms(lat.P95), ms(lat.P99))
	}
	return Result{
		ID:    "F1",
		Title: fmt.Sprintf("Fleet scheduling throughput: %d waves x %d VMs on %d LCs / %d GMs", waves, wave, lcs, gms),
		Table: tb,
		Notes: []string{
			"expected shape: batched dispatch raises placements/s and cuts submit-time percentiles;",
			"per-VM virtual time stays flat in cluster size (the hierarchy absorbs scale, E1)",
			"placements/s(wall) is wall-clock simulator throughput — machine-dependent, gated in CI by BenchmarkPlacementsPerSecond",
		},
	}
}
