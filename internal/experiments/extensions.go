package experiments

import (
	"fmt"
	"time"

	"snooze/internal/cluster"
	"snooze/internal/consolidation"
	"snooze/internal/metrics"
	"snooze/internal/resource"
	"snooze/internal/scheduling"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// This file holds the extension experiments: E8 implements the paper's
// stated future work (Section V: "a distributed version of the algorithm
// will be developed"), and A1/A2 are the design-choice ablations DESIGN.md
// §5 calls out (demand estimator, dispatch policy).

// E8DistributedACO compares the centralized ACO against the distributed
// variant (per-GM colonies + exchange phase). Expected shape: distributed
// runs much faster on large instances at a small host-count premium.
func E8DistributedACO(scale Scale) Result {
	sizes := []int{100, 200, 400}
	groupSize := 16
	if scale == ScaleQuick {
		sizes = []int{60, 120}
	}
	tb := metrics.NewTable("n-VMs", "FFD-hosts", "ACO-hosts", "ACO-time", "dist-hosts", "dist-time", "groups", "premium%")
	for _, n := range sizes {
		inst := workload.NewInstance(workload.InstanceConfig{Seed: 13, VMs: n, Kind: workload.UniformInstance, Lo: 0.05, Hi: 0.45})
		p := consolidation.Problem{VMs: inst.VMs, Nodes: inst.Nodes}
		ffd, err := (consolidation.FFD{Key: consolidation.SortCPU}).Solve(p)
		if err != nil {
			tb.AddRow(n, "ERROR: "+err.Error(), "-", "-", "-", "-", "-", "-")
			continue
		}
		start := time.Now()
		central, err1 := (consolidation.ACO{}).Solve(p)
		centralTime := time.Since(start)
		start = time.Now()
		dist, err2 := (consolidation.DistributedACO{GroupSize: groupSize}).Solve(p)
		distTime := time.Since(start)
		if err1 != nil || err2 != nil {
			tb.AddRow(n, ffd.HostsUsed, "ERROR", "-", "-", "-", "-", "-")
			continue
		}
		premium := 100 * float64(dist.HostsUsed-central.HostsUsed) / float64(central.HostsUsed)
		tb.AddRow(n, ffd.HostsUsed, central.HostsUsed, centralTime.Round(time.Millisecond),
			dist.HostsUsed, distTime.Round(time.Millisecond), dist.Cycles, premium)
	}
	return Result{
		ID:    "E8",
		Title: "Distributed ACO (paper future work): quality/time vs centralized",
		Table: tb,
		Notes: []string{
			"expected shape: distributed wall time grows far slower with n; host premium stays single-digit %",
		},
	}
}

// A1EstimatorAblation sweeps the GM's demand estimator under a bursty
// workload and reports relocation activity — the estimator choice trades
// responsiveness (last-value chases every spike) against stability
// (p95/max over-provision and stay quiet).
func A1EstimatorAblation(scale Scale) Result {
	// A tight cluster (~80% reserved) makes the receiver-safety check the
	// bottleneck, which is exactly where the estimator choice matters.
	nodes, gms, vms := 24, 2, 80
	horizon := 30 * time.Minute
	if scale == ScaleQuick {
		nodes, gms, vms = 6, 1, 20
		horizon = 10 * time.Minute
	}
	ests := []resource.Estimator{
		resource.LastValue{},
		resource.MovingAverage{},
		resource.EWMA{Alpha: 0.5},
		resource.Percentile{P: 95},
		resource.MaxWindow{},
	}
	tb := metrics.NewTable("estimator", "anomalies", "overload-events", "relocations", "migrations-ok", "running-VMs")
	for _, est := range ests {
		top := workload.Grid5000Topology(nodes, gms)
		cfg := cluster.DefaultConfig(top, 4100)
		reg := workload.NewRegistry()
		for i := 0; i < vms; i++ {
			reg.Register(fmt.Sprintf("b%d", i), workload.BurstyTrace{
				Seed: int64(i), Baseline: 0.3, BurstTo: 1.0, BurstProb: 0.4,
				Slot: 2 * time.Minute, MemBase: 0.4,
			})
		}
		cfg.Hypervisor.Traces = reg
		// First-fit packs ~4 VMs per node; a 75% threshold makes multi-VM
		// burst coincidences overload a node a few times per horizon. The
		// GM relocation policies share the LC thresholds (the target the
		// moves must restore).
		th := scheduling.Thresholds{Overload: 0.75, Underload: 0.1}
		cfg.LC.Thresholds = th
		cfg.Manager.Overload = scheduling.OverloadRelocation{Thresholds: th}
		cfg.Manager.Underload = scheduling.UnderloadRelocation{Thresholds: th}
		cfg.Manager.Estimator = est
		c := cluster.New(cfg)
		c.Settle(30 * time.Second)
		gen := workload.NewGenerator(4, []workload.VMClass{
			{Name: "std", Capacity: topNodeFraction(top, 0.25), Weight: 1},
		})
		batch := gen.Batch(vms)
		for i := range batch {
			batch[i].TraceID = fmt.Sprintf("b%d", i)
		}
		if _, err := c.SubmitAndWait(batch, time.Hour); err != nil {
			tb.AddRow(est.Name(), "ERROR: "+err.Error(), "-", "-", "-", "-")
			continue
		}
		c.Settle(horizon)
		tb.AddRow(est.Name(),
			c.Metrics.Count("gm.anomalies-received"),
			c.Metrics.Count("gm.overload-events"),
			c.Metrics.Count("gm.relocations"),
			c.Metrics.Count("gm.migrations-ok"),
			c.RunningVMs())
	}
	return Result{
		ID:    "A1",
		Title: "Ablation: GM demand estimator under bursty load",
		Table: tb,
		Notes: []string{
			"expected shape: the estimator visibly shifts relocation volume; smoothed",
			"estimators judge receivers by sustained demand while last-value chases the",
			"instantaneous sample — the feedback between moves and later anomalies",
			"dominates, so no choice is universally quieter (hence the ablation)",
		},
	}
}

func topNodeFraction(top workload.Topology, f float64) types.ResourceVector {
	return top.Nodes[0].Capacity.Scale(f)
}

// A2DispatchAblation compares the GL dispatch policies on placement balance
// and probe depth.
func A2DispatchAblation(scale Scale) Result {
	nodes, gms, vms := 48, 4, 100
	if scale == ScaleQuick {
		nodes, gms, vms = 16, 2, 30
	}
	policies := []func() scheduling.DispatchPolicy{
		func() scheduling.DispatchPolicy { return &scheduling.RoundRobinDispatch{} },
		func() scheduling.DispatchPolicy { return scheduling.LeastLoadedDispatch{} },
		func() scheduling.DispatchPolicy { return scheduling.MostLoadedDispatch{} },
	}
	tb := metrics.NewTable("dispatch", "placed", "probe-depth(mean)", "node-util-stddev", "occupied-nodes")
	for _, mk := range policies {
		pol := mk()
		cfg := cluster.DefaultConfig(workload.Grid5000Topology(nodes, gms), 4200)
		cfg.Manager.Dispatch = pol
		c := cluster.New(cfg)
		c.Settle(30 * time.Second)
		gen := workload.NewGenerator(6, nil)
		resp, err := c.SubmitAndWait(gen.Batch(vms), time.Hour)
		if err != nil {
			tb.AddRow(pol.Name(), "ERROR: "+err.Error(), "-", "-", "-")
			continue
		}
		c.Settle(15 * time.Second)
		// Per-node reservation utilization spread.
		var utils []float64
		occupied := 0
		for _, n := range c.Nodes {
			st := n.Status()
			u := st.Reserved.UtilizationL1(st.Spec.Capacity)
			utils = append(utils, u)
			if len(st.VMs) > 0 {
				occupied++
			}
		}
		s := metrics.Summarize(utils)
		tb.AddRow(pol.Name(), len(resp.Placed),
			c.Metrics.Summarize("gl.probe-depth").Mean, s.Stddev, occupied)
	}
	return Result{
		ID:    "A2",
		Title: "Ablation: GL dispatch policy (balance vs packing)",
		Table: tb,
		Notes: []string{
			"expected shape: least-loaded minimizes utilization spread;",
			"most-loaded concentrates VMs on fewer nodes (energy-friendly)",
		},
	}
}
