// Package experiments reproduces every result the paper reports. The PhD
// forum paper summarizes two evaluations textually: the Snooze system
// evaluation (Section II-F, from ref [7]: 144-node Grid'5000 cluster, up to
// 500 VMs — scalability, distributed-management overhead, fault tolerance)
// and the ACO consolidation evaluation (Section III-B, from ref [10]: ACO vs
// FFD vs CPLEX-optimal — hosts, utilization, energy, deviation). Each
// experiment here regenerates one of those results as a table; the expected
// *shape* (who wins, by roughly what factor) is documented in EXPERIMENTS.md.
//
// Every experiment takes a Scale: ScaleQuick runs in about a second for
// tests and `go test -bench`; ScaleFull matches the paper's dimensions.
package experiments

import (
	"fmt"
	"time"

	"snooze/internal/cluster"
	"snooze/internal/consolidation"
	"snooze/internal/faults"
	"snooze/internal/metrics"
	"snooze/internal/power"
	"snooze/internal/protocol"
	"snooze/internal/scheduling"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// Scale selects experiment dimensions.
type Scale int

// Experiment scales.
const (
	// ScaleQuick keeps each experiment around a second of wall time.
	ScaleQuick Scale = iota
	// ScaleFull matches the paper's dimensions (144 nodes, 500 VMs, ...).
	ScaleFull
)

// Result is one reproduced table/figure.
type Result struct {
	ID    string
	Title string
	Table *metrics.Table
	Notes []string
}

// String renders the result for terminal output.
func (r Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table.String())
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// All runs every experiment in order.
func All(scale Scale) []Result {
	return []Result{
		E1SubmissionScalability(scale),
		E2ManagementOverhead(scale),
		E3FaultTolerance(scale),
		E4ACOvsFFD(scale),
		E5EnergySavings(scale),
		E6SelfHealing(scale),
		E7ACOAblation(scale),
		E8DistributedACO(scale),
		E9GrayFailures(scale),
		A1EstimatorAblation(scale),
		A2DispatchAblation(scale),
		F1FleetThroughput(scale),
	}
}

// ByID runs one experiment by its identifier (e.g. "e1").
func ByID(id string, scale Scale) (Result, error) {
	switch id {
	case "e1", "submission-scalability":
		return E1SubmissionScalability(scale), nil
	case "e2", "management-overhead":
		return E2ManagementOverhead(scale), nil
	case "e3", "fault-tolerance":
		return E3FaultTolerance(scale), nil
	case "e4", "aco-vs-ffd":
		return E4ACOvsFFD(scale), nil
	case "e5", "energy-savings":
		return E5EnergySavings(scale), nil
	case "e6", "self-healing":
		return E6SelfHealing(scale), nil
	case "e7", "aco-ablation":
		return E7ACOAblation(scale), nil
	case "e8", "distributed-aco":
		return E8DistributedACO(scale), nil
	case "e9", "gray-failures":
		return E9GrayFailures(scale), nil
	case "a1", "estimator-ablation":
		return A1EstimatorAblation(scale), nil
	case "a2", "dispatch-ablation":
		return A2DispatchAblation(scale), nil
	case "f1", "fleet-throughput":
		return F1FleetThroughput(scale), nil
	default:
		return Result{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}

// ---------------------------------------------------------------------------
// E1: VM submission scalability (Section II-F / ref [7])
// ---------------------------------------------------------------------------

// E1SubmissionScalability measures VM submission time as the number of VMs
// and the number of LCs grow. Expected shape: submission time linear in the
// batch size, near-flat in the cluster size (the hierarchy absorbs scale).
func E1SubmissionScalability(scale Scale) Result {
	type point struct{ lcs, gms, vms int }
	var sweep []point
	if scale == ScaleFull {
		sweep = []point{
			{16, 2, 100}, {64, 4, 100}, {144, 8, 100}, {512, 16, 100}, {1024, 32, 100},
			{144, 8, 50}, {144, 8, 200}, {144, 8, 350}, {144, 8, 500},
		}
	} else {
		sweep = []point{
			{16, 2, 20}, {64, 4, 20},
			{64, 4, 10}, {64, 4, 40},
		}
	}
	tb := metrics.NewTable("LCs", "GMs", "VMs", "submit-time", "per-VM")
	for _, p := range sweep {
		c := cluster.New(cluster.DefaultConfig(workload.Grid5000Topology(p.lcs, p.gms), 1000+int64(p.lcs)+int64(p.vms)))
		c.Settle(30 * time.Second)
		gen := workload.NewGenerator(int64(p.vms), nil)
		start := c.Kernel.Now()
		resp, err := c.SubmitAndWait(gen.Batch(p.vms), time.Hour)
		elapsed := c.Kernel.Now() - start
		if err != nil {
			tb.AddRow(p.lcs, p.gms, p.vms, "ERROR: "+err.Error(), "-")
			continue
		}
		tb.AddRow(p.lcs, p.gms, p.vms,
			elapsed.Round(time.Millisecond),
			(elapsed / time.Duration(max(1, len(resp.Placed)))).Round(time.Microsecond))
	}
	return Result{
		ID:    "E1",
		Title: "VM submission time vs cluster and batch size (virtual time)",
		Table: tb,
		Notes: []string{
			"expected shape: linear in batch size, near-flat in LC count",
		},
	}
}

// ---------------------------------------------------------------------------
// E2: distributed VM management overhead (Section II-F)
// ---------------------------------------------------------------------------

// E2ManagementOverhead compares per-VM dispatch+placement cost between a
// centralized deployment (1 GM) and increasingly distributed ones. Expected
// shape: "negligible cost is involved in performing distributed VM
// management" — per-VM time roughly constant in the number of GMs.
func E2ManagementOverhead(scale Scale) Result {
	lcs, vms := 144, 300
	gmSweep := []int{1, 2, 4, 8, 12}
	if scale == ScaleQuick {
		lcs, vms = 32, 40
		gmSweep = []int{1, 2, 4}
	}
	tb := metrics.NewTable("GMs", "LCs", "VMs", "submit-time", "per-VM", "probe-depth(mean)")
	for _, gms := range gmSweep {
		cfg := cluster.DefaultConfig(workload.Grid5000Topology(lcs, gms), 2000+int64(gms))
		c := cluster.New(cfg)
		c.Settle(30 * time.Second)
		gen := workload.NewGenerator(7, nil)
		start := c.Kernel.Now()
		resp, err := c.SubmitAndWait(gen.Batch(vms), time.Hour)
		elapsed := c.Kernel.Now() - start
		if err != nil {
			tb.AddRow(gms, lcs, vms, "ERROR: "+err.Error(), "-", "-")
			continue
		}
		depth := c.Metrics.Summarize("gl.probe-depth").Mean
		tb.AddRow(gms, lcs, vms,
			elapsed.Round(time.Millisecond),
			(elapsed / time.Duration(max(1, len(resp.Placed)))).Round(time.Microsecond),
			depth)
	}
	return Result{
		ID:    "E2",
		Title: "Per-VM management cost: centralized (1 GM) vs distributed",
		Table: tb,
		Notes: []string{"expected shape: per-VM cost roughly flat as GMs grow"},
	}
}

// ---------------------------------------------------------------------------
// E3: fault tolerance (Section II-F)
// ---------------------------------------------------------------------------

// E3FaultTolerance runs a steady workload, kills the GL and then a GM, and
// reports VM survival and submission service before/after. Expected shape:
// running VMs untouched by management-plane failures; submissions stall at
// most for the heartbeat timeout + election time.
func E3FaultTolerance(scale Scale) Result {
	lcs, gms, vms := 64, 4, 120
	if scale == ScaleQuick {
		lcs, gms, vms = 16, 3, 24
	}
	cfg := cluster.DefaultConfig(workload.Grid5000Topology(lcs, gms), 3000)
	c := cluster.New(cfg)
	c.Settle(30 * time.Second)
	gen := workload.NewGenerator(3, nil)
	baseline := gen.Batch(vms)
	resp, err := c.SubmitAndWait(baseline, time.Hour)
	placedBefore := len(resp.Placed)
	c.Settle(15 * time.Second)
	runningBefore := countRunning(c, baseline)

	tb := metrics.NewTable("phase", "running-VMs", "placed", "submit-time", "leader")
	leaderName := func() string {
		if l := c.Leader(); l != nil {
			return string(l.ID())
		}
		return "-"
	}
	tb.AddRow("baseline", runningBefore, placedBefore, "-", leaderName())
	if err != nil {
		return Result{ID: "E3", Title: "fault tolerance", Table: tb, Notes: []string{"baseline submission failed: " + err.Error()}}
	}

	// Crash the GL; a client that keeps retrying (as the paper's CLI would)
	// is served once the EP view expires and a new GL announces itself —
	// the measured stall is the client-visible failover time.
	c.CrashLeader()
	start := c.Kernel.Now()
	resp2, err2 := submitWithRetry(c, gen.Batch(5), 2*time.Second, 10*time.Minute)
	afterGL := c.Kernel.Now() - start
	row := func(phase string, placed int, d time.Duration, err error) {
		val := d.Round(time.Millisecond).String()
		if err != nil {
			val = "ERROR: " + err.Error()
		}
		tb.AddRow(phase, c.RunningVMs(), placed, val, leaderName())
	}
	row("GL crash +submit", len(resp2.Placed), afterGL, err2)

	// Crash one GM; its LCs (and their VMs) keep running, and rejoin.
	faults.CrashGMs{N: 1}.Apply(c)
	start = c.Kernel.Now()
	resp3, err3 := submitWithRetry(c, gen.Batch(5), 2*time.Second, 10*time.Minute)
	afterGM := c.Kernel.Now() - start
	row("GM crash +submit", len(resp3.Placed), afterGM, err3)
	c.Settle(60 * time.Second) // orphaned LCs rejoin before the final audit

	running := countRunning(c, baseline)
	avail := 100 * float64(running) / float64(max(1, runningBefore))
	return Result{
		ID:    "E3",
		Title: "Fault tolerance: GL and GM crashes under a running workload",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("baseline-VM availability through both failures: %.1f%% (%d/%d still running)", avail, running, runningBefore),
			"expected shape: availability 100% (management-plane failures never touch VMs); submission stalls bounded by heartbeat timeout + election",
		},
	}
}

// countRunning counts how many of the given VMs are currently running.
func countRunning(c *cluster.Cluster, vms []types.VMSpec) int {
	n := 0
	for _, spec := range vms {
		for _, node := range c.Nodes {
			if node.HasVM(spec.ID) {
				n++
				break
			}
		}
	}
	return n
}

// submitWithRetry keeps resubmitting until the batch is served (the
// transport-level failure mode during failover) or maxSim elapses. Retrying
// is only safe while nothing was placed, which holds for unreachable-GL
// failures.
func submitWithRetry(c *cluster.Cluster, vms []types.VMSpec, retryEvery, maxSim time.Duration) (resp protocol.SubmitResponse, err error) {
	deadline := c.Kernel.Now() + maxSim
	for c.Kernel.Now() < deadline {
		resp, err = c.SubmitAndWait(vms, maxSim)
		if err == nil && len(resp.Placed) > 0 {
			return resp, nil
		}
		if err == nil && len(resp.Placed) == 0 && len(resp.Unplaced) > 0 {
			// GL reachable but no capacity routed yet (fresh leader with no
			// summaries): retry too.
			c.Settle(retryEvery)
			continue
		}
		if err != nil {
			c.Settle(retryEvery)
			continue
		}
		return resp, err
	}
	return resp, fmt.Errorf("experiments: submission not served within %v", maxSim)
}

// ---------------------------------------------------------------------------
// E4: ACO vs FFD vs optimal (Section III-B / ref [10])
// ---------------------------------------------------------------------------

// E4ACOvsFFD reproduces the consolidation comparison. Paper numbers: ACO
// conserves on average 4.7% of hosts and 4.1% of energy vs FFD, and deviates
// 1.1% from the CPLEX optimal.
func E4ACOvsFFD(scale Scale) Result {
	small := []int{10, 14, 18, 22} // exact-comparable sizes
	large := []int{50, 100, 200}
	seeds := []int64{1, 2, 3, 4, 5}
	if scale == ScaleQuick {
		small = []int{10, 14}
		large = []int{50}
		seeds = []int64{1, 2}
	}
	model := power.DefaultModel()
	tb := metrics.NewTable("n-VMs", "kind", "FFD-hosts", "ACO-hosts", "opt-hosts", "ACO-util", "FFD-util", "hosts-saved%", "energy-saved%", "dev-opt%")

	var aggHostsSaved, aggEnergySaved, aggDev []float64
	run := func(n int, kind workload.InstanceKind, withExact bool) {
		var ffdH, acoH, optH, acoU, ffdU, hostsSaved, energySaved, dev float64
		var rounds float64
		for _, seed := range seeds {
			inst := workload.NewInstance(workload.InstanceConfig{Seed: seed * 101, VMs: n, Kind: kind, Lo: 0.05, Hi: 0.45})
			p := consolidation.Problem{VMs: inst.VMs, Nodes: inst.Nodes}
			ffd, err1 := (consolidation.FFD{Key: consolidation.SortCPU}).Solve(p)
			acoCfg := consolidation.DefaultACOConfig()
			acoCfg.Seed = seed
			aco, err2 := (consolidation.ACO{Config: acoCfg}).Solve(p)
			if err1 != nil || err2 != nil {
				continue
			}
			demand := map[types.VMID]types.ResourceVector{}
			specs := map[types.NodeID]types.NodeSpec{}
			for _, vm := range p.VMs {
				demand[vm.ID] = vm.Requested
			}
			for _, nd := range p.Nodes {
				specs[nd.ID] = nd
			}
			ffdW := power.PlacementPower(model, ffd.Placement, demand, specs)
			acoW := power.PlacementPower(model, aco.Placement, demand, specs)
			opt := ffd.HostsUsed
			if withExact {
				if ex, err := (consolidation.Exact{MaxNodes: 2_000_000}).Solve(p); err == nil {
					opt = ex.HostsUsed
				}
			} else {
				opt = p.LowerBound() // report the LP bound for large instances
			}
			rounds++
			ffdH += float64(ffd.HostsUsed)
			acoH += float64(aco.HostsUsed)
			optH += float64(opt)
			acoU += consolidation.AvgHostUtilization(p, aco.Placement)
			ffdU += consolidation.AvgHostUtilization(p, ffd.Placement)
			hostsSaved += 100 * float64(ffd.HostsUsed-aco.HostsUsed) / float64(ffd.HostsUsed)
			energySaved += 100 * (ffdW - acoW) / ffdW
			dev += 100 * float64(aco.HostsUsed-opt) / float64(max(1, opt))
		}
		if rounds == 0 {
			return
		}
		f := func(v float64) float64 { return v / rounds }
		tb.AddRow(n, kind.String(), f(ffdH), f(acoH), f(optH), f(acoU), f(ffdU), f(hostsSaved), f(energySaved), f(dev))
		aggHostsSaved = append(aggHostsSaved, f(hostsSaved))
		aggEnergySaved = append(aggEnergySaved, f(energySaved))
		if withExact {
			aggDev = append(aggDev, f(dev))
		}
	}
	for _, n := range small {
		run(n, workload.UniformInstance, true)
	}
	for _, n := range large {
		run(n, workload.UniformInstance, false)
		run(n, workload.CorrelatedInstance, false)
	}
	return Result{
		ID:    "E4",
		Title: "Consolidation: ACO vs FFD vs optimal (paper: 4.7% hosts, 4.1% energy, 1.1% deviation)",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("mean hosts saved vs FFD: %.1f%% (paper: 4.7%%)", metrics.Summarize(aggHostsSaved).Mean),
			fmt.Sprintf("mean energy saved vs FFD: %.1f%% (paper: 4.1%%)", metrics.Summarize(aggEnergySaved).Mean),
			fmt.Sprintf("mean deviation from optimal: %.1f%% (paper: 1.1%%)", metrics.Summarize(aggDev).Mean),
			"dev-opt%% on large instances is vs the LP lower bound (CPLEX-infeasible sizes)",
		},
	}
}

// ---------------------------------------------------------------------------
// E5: energy savings (Section III / E5 in DESIGN.md)
// ---------------------------------------------------------------------------

// E5EnergySavings runs the same diurnal workload under three configurations
// and reports total energy. Expected shape: idle-suspend beats no power
// management; suspend + periodic ACO consolidation does at least as well.
func E5EnergySavings(scale Scale) Result {
	nodes, gms, vms := 36, 2, 90
	day := 4 * time.Hour
	if scale == ScaleQuick {
		nodes, gms, vms = 10, 1, 16
		day = time.Hour
	}
	type variant struct {
		name    string
		energy  bool
		reconf  bool
		suspend time.Duration
	}
	variants := []variant{
		{name: "no-power-mgmt"},
		{name: "idle-suspend", energy: true, suspend: 2 * time.Minute},
		{name: "suspend+consolidation", energy: true, reconf: true, suspend: 2 * time.Minute},
	}
	tb := metrics.NewTable("config", "kWh", "suspends", "wakes", "migrations", "running-VMs", "saved%")
	var baseline float64
	for _, v := range variants {
		top := workload.Grid5000Topology(nodes, gms)
		cfg := cluster.DefaultConfig(top, 5000)
		// Diurnal trace: VMs idle at night, busy at day.
		reg := workload.NewRegistry()
		for i := 0; i < vms; i++ {
			reg.Register(fmt.Sprintf("t%d", i), workload.DiurnalTrace{
				Low: 0.05, High: 0.75, MemFraction: 0.5,
				Period: day, Phase: time.Duration(i) * day / time.Duration(4*vms),
			})
		}
		cfg.Hypervisor.Traces = reg
		// Round-robin placement (the paper's load-balancing example policy)
		// spreads VMs across LCs; the consolidation variant then shows how
		// much reconfiguration can claw back. Underload relocation is
		// disabled here so the consolidation contribution is isolated —
		// moderately loaded nodes are exactly the population Section II-C
		// says reconfiguration targets. (Event-based underload relocation
		// is exercised in E3 and the cluster tests.)
		cfg.Manager.Placement = &scheduling.RoundRobinPlacement{}
		cfg.LC.Thresholds = scheduling.Thresholds{Overload: 0.95, Underload: 0}
		cfg.Manager.EnergyEnabled = v.energy
		cfg.Manager.IdleThreshold = v.suspend
		if v.reconf {
			acoCfg := consolidation.DefaultACOConfig()
			cfg.Manager.Reconfig = consolidation.ACO{Config: acoCfg}
			cfg.Manager.ReconfigPeriod = day / 8
		}
		c := cluster.New(cfg)
		c.Settle(30 * time.Second)
		gen := workload.NewGenerator(11, []workload.VMClass{
			{Name: "std", Capacity: types.RV(2, 4096, 50, 50), Weight: 1},
		})
		batch := gen.Batch(vms)
		for i := range batch {
			batch[i].TraceID = fmt.Sprintf("t%d", i)
		}
		if _, err := c.SubmitAndWait(batch, time.Hour); err != nil {
			tb.AddRow(v.name, "ERROR: "+err.Error(), "-", "-", "-", "-", "-")
			continue
		}
		c.Settle(day)
		kwh := c.TotalEnergyJoules() / 3.6e6
		saved := 0.0
		if v.name == "no-power-mgmt" {
			baseline = kwh
		} else if baseline > 0 {
			saved = 100 * (baseline - kwh) / baseline
		}
		tb.AddRow(v.name, kwh,
			c.Metrics.Count("gm.suspends"), c.Metrics.Count("gm.wakes"),
			c.Metrics.Count("gm.migrations-ok"), c.RunningVMs(), saved)
	}
	return Result{
		ID:    "E5",
		Title: "Cluster energy over a diurnal day: power management variants",
		Table: tb,
		Notes: []string{
			"expected shape: suspend+consolidation strictly below the others — with load spread",
			"across moderately loaded nodes, idle times (and savings) only appear once",
			"consolidation packs the VMs (the paper's 'to favor idle times' thesis, Section III)",
		},
	}
}

// ---------------------------------------------------------------------------
// E6: self-healing latency (Section II-E)
// ---------------------------------------------------------------------------

// E6SelfHealing measures time-to-heal after a GL crash as the hierarchy
// grows. Expected shape: dominated by the election session TTL + heartbeat
// periods; near-constant in cluster size.
func E6SelfHealing(scale Scale) Result {
	sweep := [][2]int{{16, 2}, {64, 4}, {144, 8}}
	if scale == ScaleQuick {
		sweep = [][2]int{{8, 2}, {16, 2}}
	}
	tb := metrics.NewTable("LCs", "GMs", "heal-time", "lc-rejoins")
	for _, p := range sweep {
		cfg := cluster.DefaultConfig(workload.Grid5000Topology(p[0], p[1]), 6000+int64(p[0]))
		c := cluster.New(cfg)
		c.Settle(30 * time.Second)
		before := totalRejoins(c)
		heal, err := faults.HealLatency(c, 10*time.Minute)
		if err != nil {
			tb.AddRow(p[0], p[1], "ERROR: "+err.Error(), "-")
			continue
		}
		tb.AddRow(p[0], p[1], heal.Round(time.Millisecond), totalRejoins(c)-before)
	}
	return Result{
		ID:    "E6",
		Title: "Self-healing: time from GL crash to restored hierarchy",
		Table: tb,
		Notes: []string{"expected shape: near-constant in cluster size (TTL + heartbeat dominated)"},
	}
}

func totalRejoins(c *cluster.Cluster) uint64 {
	var n uint64
	for _, lc := range c.LCs {
		n += lc.Rejoins()
	}
	return n
}

// ---------------------------------------------------------------------------
// E7: ACO parameter ablation (ref [10] solution-quality figures)
// ---------------------------------------------------------------------------

// E7ACOAblation sweeps ants × cycles on a fixed instance. Expected shape:
// quality improves with more ants/cycles and saturates.
func E7ACOAblation(scale Scale) Result {
	n := 100
	betas := []float64{0, 1, 2, 4, 6}
	ants := []int{2, 8, 16}
	cycles := []int{2, 10, 30}
	if scale == ScaleQuick {
		n = 40
		betas = []float64{1, 4}
		ants = []int{2, 8}
		cycles = []int{2, 10}
	}
	inst := workload.NewInstance(workload.InstanceConfig{Seed: 77, VMs: n, Kind: workload.UniformInstance, Lo: 0.05, Hi: 0.45})
	p := consolidation.Problem{VMs: inst.VMs, Nodes: inst.Nodes}
	ffd, _ := (consolidation.FFD{Key: consolidation.SortCPU}).Solve(p)
	tb := metrics.NewTable("beta", "ants", "cycles", "hosts", "vs-FFD", "util")
	for _, b := range betas {
		for _, a := range ants {
			for _, cy := range cycles {
				cfg := consolidation.DefaultACOConfig()
				cfg.Beta, cfg.Ants, cfg.Cycles, cfg.Seed = b, a, cy, 9
				r, err := (consolidation.ACO{Config: cfg}).Solve(p)
				if err != nil {
					tb.AddRow(b, a, cy, "ERR", "-", "-")
					continue
				}
				tb.AddRow(b, a, cy, r.HostsUsed, r.HostsUsed-ffd.HostsUsed,
					consolidation.AvgHostUtilization(p, r.Placement))
			}
		}
	}
	return Result{
		ID:    "E7",
		Title: fmt.Sprintf("ACO ablation on %d VMs (FFD baseline: %d hosts)", n, ffd.HostsUsed),
		Table: tb,
		Notes: []string{
			"expected shape: quality improves (hosts drop) as beta grows and with more ants x cycles, then saturates",
			"beta=0 disables the utilization heuristic: pheromone alone packs poorly",
		},
	}
}
