package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"snooze/internal/cluster"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// The experiment suite at quick scale must run clean (no ERROR cells) and
// reproduce the paper's qualitative shapes. These tests are the repo's
// regression net for the reproduced results.

func tableText(t *testing.T, r Result) string {
	t.Helper()
	txt := r.Table.String()
	if strings.Contains(txt, "ERROR") {
		t.Fatalf("%s contains errors:\n%s", r.ID, txt)
	}
	return txt
}

func TestE1Shape(t *testing.T) {
	r := E1SubmissionScalability(ScaleQuick)
	tableText(t, r)
	if r.ID != "E1" || len(r.Notes) == 0 {
		t.Fatalf("metadata: %+v", r)
	}
}

func TestE2Shape(t *testing.T) {
	r := E2ManagementOverhead(ScaleQuick)
	tableText(t, r)
}

func TestE3AvailabilityIs100Percent(t *testing.T) {
	r := E3FaultTolerance(ScaleQuick)
	tableText(t, r)
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "still running") {
			found = true
			if !strings.Contains(n, "100.0%") {
				t.Fatalf("availability not 100%%: %s", n)
			}
		}
	}
	if !found {
		t.Fatal("availability note missing")
	}
}

func TestE4ACOWinsOnAggregate(t *testing.T) {
	r := E4ACOvsFFD(ScaleQuick)
	txt := tableText(t, r)
	// The headline shape: ACO saves hosts and energy vs FFD on average.
	var hostsSaved, energySaved string
	for _, n := range r.Notes {
		if strings.Contains(n, "hosts saved") {
			hostsSaved = n
		}
		if strings.Contains(n, "energy saved") {
			energySaved = n
		}
	}
	if hostsSaved == "" || energySaved == "" {
		t.Fatalf("notes missing: %v", r.Notes)
	}
	if strings.Contains(hostsSaved, "-") && !strings.Contains(hostsSaved, "vs FFD: -0.0") {
		// A leading minus would mean ACO used MORE hosts.
		if strings.Contains(hostsSaved, ": -") {
			t.Fatalf("ACO used more hosts than FFD: %s\n%s", hostsSaved, txt)
		}
	}
}

func TestE5ConsolidationSavesEnergy(t *testing.T) {
	r := E5EnergySavings(ScaleQuick)
	txt := tableText(t, r)
	lines := strings.Split(strings.TrimSpace(txt), "\n")
	// Parse the kWh column: baseline is row 3 (after header+sep),
	// consolidation is the last row.
	var base, consolidated float64
	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		kwh, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "no-power-mgmt":
			base = kwh
		case "suspend+consolidation":
			consolidated = kwh
		}
	}
	if base == 0 || consolidated == 0 {
		t.Fatalf("could not parse kWh column:\n%s", txt)
	}
	if consolidated >= base {
		t.Fatalf("consolidation did not save energy: %.2f >= %.2f\n%s", consolidated, base, txt)
	}
}

func TestE6HealsBounded(t *testing.T) {
	r := E6SelfHealing(ScaleQuick)
	txt := tableText(t, r)
	if !strings.Contains(txt, "s") {
		t.Fatalf("no heal times:\n%s", txt)
	}
}

func TestE7AblationRuns(t *testing.T) {
	r := E7ACOAblation(ScaleQuick)
	tableText(t, r)
}

func TestE9GrayFailuresShape(t *testing.T) {
	r := E9GrayFailures(ScaleQuick)
	txt := tableText(t, r)
	lines := strings.Split(strings.TrimSpace(txt), "\n")
	rows := 0
	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		if len(fields) < 6 {
			continue
		}
		rows++
		name := fields[0]
		before, err1 := strconv.Atoi(fields[2])
		after, err2 := strconv.Atoi(fields[3])
		rejects, err3 := strconv.Atoi(fields[4])
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparseable row %q:\n%s", line, txt)
		}
		// No gray failure may lose running VMs once healed.
		if after < before {
			t.Fatalf("%s lost VMs: %d -> %d\n%s", name, before, after, txt)
		}
		// Corrupted reports must be rejected at ingestion, and only there.
		if strings.HasPrefix(name, "corrupt-") && rejects == 0 {
			t.Fatalf("%s produced no monitor rejects:\n%s", name, txt)
		}
		if !strings.HasPrefix(name, "corrupt-") && rejects != 0 {
			t.Fatalf("%s unexpectedly rejected reports:\n%s", name, txt)
		}
	}
	if rows != 5 {
		t.Fatalf("expected 5 scenarios, got %d:\n%s", rows, txt)
	}
}

func TestF1FleetThroughputShape(t *testing.T) {
	r := F1FleetThroughput(ScaleQuick)
	txt := tableText(t, r)
	// Every dispatch variant must place the full workload: batching may only
	// change throughput, never the placement outcome (unplaced VMs fall back
	// to the sequential probe).
	lines := strings.Split(strings.TrimSpace(txt), "\n")
	rows := 0
	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		rows++
		if placed, err := strconv.Atoi(fields[3]); err != nil || placed != 6*24 {
			t.Fatalf("variant %s placed %s of %d VMs:\n%s", fields[0], fields[3], 6*24, txt)
		}
	}
	if rows != 4 {
		t.Fatalf("expected 4 variants, got %d:\n%s", rows, txt)
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7",
		"submission-scalability", "aco-vs-ffd"} {
		if id == "e1" || id == "e2" || id == "e3" || id == "e5" || id == "e6" {
			continue // covered above; skip the slow re-runs
		}
		if _, err := ByID(id, ScaleQuick); err != nil {
			t.Fatalf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("bogus", ScaleQuick); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}

func TestSubmitWithRetryServesAfterFailover(t *testing.T) {
	cfg := cluster.DefaultConfig(workload.Grid5000Topology(8, 2), 99)
	c := cluster.New(cfg)
	c.Settle(30 * time.Second)
	c.CrashLeader()
	vms := []types.VMSpec{{ID: "retry-vm", Requested: types.RV(1, 1024, 10, 10)}}
	resp, err := submitWithRetry(c, vms, 2*time.Second, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Placed) != 1 {
		t.Fatalf("placed: %+v", resp)
	}
}

func TestResultString(t *testing.T) {
	r := E7ACOAblation(ScaleQuick)
	s := r.String()
	if !strings.Contains(s, "E7") || !strings.Contains(s, "note:") {
		t.Fatalf("rendering: %s", s)
	}
}
