package experiments

import (
	"sort"
	"time"

	"snooze/internal/cluster"
	"snooze/internal/faults"
	"snooze/internal/metrics"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// E9GrayFailures exercises the fault modes that are harder than crashes:
// components that stay up but misbehave. A slow-but-alive LC delays and
// duplicates its heartbeats, a corrupted LC reports NaN/negative/future
// monitoring samples, and a one-way level partition silences LC→GM traffic
// while the reverse direction stays intact. The hierarchy must neither
// poison its capacity views (ingestion validation rejects bad reports) nor
// lose running VMs, and LCs must rejoin after the partition heals.
func E9GrayFailures(scale Scale) Result {
	nodes, gms, vms := 18, 3, 36
	if scale == ScaleQuick {
		nodes, gms, vms = 9, 2, 12
	}
	type scenario struct {
		name   string
		inject func(c *cluster.Cluster, ids []types.NodeID) faults.Action
	}
	scenarios := []scenario{
		{"slow-lc", func(c *cluster.Cluster, ids []types.NodeID) faults.Action {
			return faults.SlowLC{IDs: ids, Delay: 900 * time.Millisecond, DupProbability: 0.3}
		}},
		{"corrupt-nan", func(c *cluster.Cluster, ids []types.NodeID) faults.Action {
			return faults.CorruptReports{IDs: ids, Mode: faults.CorruptNaN}
		}},
		{"corrupt-negative", func(c *cluster.Cluster, ids []types.NodeID) faults.Action {
			return faults.CorruptReports{IDs: ids, Mode: faults.CorruptNegative}
		}},
		{"corrupt-future", func(c *cluster.Cluster, ids []types.NodeID) faults.Action {
			return faults.CorruptReports{IDs: ids, Mode: faults.CorruptFuture}
		}},
		{"partition-lc-gm", func(c *cluster.Cluster, ids []types.NodeID) faults.Action {
			return faults.LevelPartition{Direction: "lc->gm"}
		}},
	}
	tb := metrics.NewTable("scenario", "placed", "running-before", "running-after-heal", "monitor-rejects", "lc-rejoins")
	for _, sc := range scenarios {
		cfg := cluster.DefaultConfig(workload.Grid5000Topology(nodes, gms), 4900)
		c := cluster.New(cfg)
		c.Settle(30 * time.Second)
		gen := workload.NewGenerator(9, nil)
		resp, err := c.SubmitAndWait(gen.Batch(vms), time.Hour)
		if err != nil {
			tb.AddRow(sc.name, "ERROR: "+err.Error(), "-", "-", "-", "-")
			continue
		}
		c.Settle(15 * time.Second)
		before := c.RunningVMs()
		// Degrade a third of the LCs (deterministic choice: lowest node IDs).
		ids := make([]types.NodeID, 0, len(c.LCs))
		for id := range c.LCs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ids = ids[:len(ids)/3]
		sc.inject(c, ids).Apply(c)
		c.Settle(45 * time.Second)
		faults.Heal{}.Apply(c)
		c.Settle(45 * time.Second)
		rejoins := uint64(0)
		for _, lc := range c.LCs {
			rejoins += lc.Rejoins()
		}
		tb.AddRow(sc.name, len(resp.Placed), before, c.RunningVMs(),
			c.Metrics.Count("gm.monitor-rejects"), rejoins)
	}
	return Result{
		ID:    "E9",
		Title: "Gray failures: slow LCs, corrupted reports, one-way level partitions",
		Table: tb,
		Notes: []string{
			"expected shape: running VMs survive every gray failure (no false",
			"rescheduling storms); corrupt-* rows show monitor-rejects > 0 with",
			"capacity views untouched; partition-lc-gm recovers via LC rejoin",
		},
	}
}
