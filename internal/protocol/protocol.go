// Package protocol defines the control-plane messages exchanged between
// Snooze components. The paper implements components as "Java RESTful web
// services" (Section II-A); here every message is a JSON-codable struct so
// the identical payloads flow over the in-process bus (simulation) and the
// net/http REST services (deployment, internal/rest).
package protocol

import (
	"snooze/internal/telemetry"
	"snooze/internal/telemetry/sketch"
	"snooze/internal/types"
)

// Message kinds. The naming convention is "<receiver-role>.<operation>".
const (
	// KindGLHeartbeat is multicast by the Group Leader on GroupGL
	// (Section II-D: LCs and EPs "listen for GL heartbeats").
	KindGLHeartbeat = "gl.heartbeat"
	// KindGMHeartbeat is multicast by a GM to its LC group.
	KindGMHeartbeat = "gm.heartbeat"
	// KindGMJoin is sent by a GM to the GL after the election resolves.
	KindGMJoin = "gl.gm-join"
	// KindSummary carries a GM's aggregated resource summary to the GL and
	// doubles as the GM's heartbeat to the GL (Section II-B).
	KindSummary = "gl.summary"
	// KindLCAssign is sent by an unassigned LC to the GL to request a GM
	// assignment (Section II-D).
	KindLCAssign = "gl.lc-assign"
	// KindLCJoin is sent by an LC to its assigned GM.
	KindLCJoin = "gm.lc-join"
	// KindMonitor carries an LC's periodic monitoring data to its GM and
	// doubles as the LC heartbeat (Section II-B).
	KindMonitor = "gm.monitor"
	// KindAnomaly reports a local overload/underload situation to the GM
	// (Section II-A).
	KindAnomaly = "gm.anomaly"
	// KindSubmit is a client VM submission to the GL (via an EP).
	KindSubmit = "gl.submit"
	// KindPlace is the GL's placement probe to one candidate GM.
	KindPlace = "gm.place"
	// KindStartVM instructs an LC to instantiate a VM.
	KindStartVM = "lc.start-vm"
	// KindStopVM instructs an LC to destroy a VM.
	KindStopVM = "lc.stop-vm"
	// KindMigrateVM instructs the source LC to live-migrate a VM.
	KindMigrateVM = "lc.migrate-vm"
	// KindSuspendHost instructs an idle LC to enter the admin-specified
	// low-power state (Section III).
	KindSuspendHost = "lc.suspend"
	// KindWakeHost is delivered out-of-band (IPMI/Wake-on-LAN analogue) to
	// a suspended node.
	KindWakeHost = "oob.wake"
	// KindGLQuery asks an Entry Point for the current GL address.
	KindGLQuery = "ep.gl-query"
	// KindTopology asks the GL for the current hierarchy layout (used by
	// the CLI's visualization/export, Section II-A).
	KindTopology = "gl.topology"
	// KindShed asks an over-subscribed GM to release some of its LCs back
	// into the hierarchy (the GL's rebalancing lever once autonomic role
	// assignment grows the GM population, Section V future work).
	KindShed = "gm.shed"
	// KindRejoin instructs an LC to leave its GM and run the join protocol
	// again (it will be assigned to the least-loaded GM).
	KindRejoin = "lc.rejoin"
)

// ShedRequest asks a GM to release up to Count LCs.
type ShedRequest struct {
	Count int `json:"count"`
}

// ShedResponse reports how many LCs the GM released.
type ShedResponse struct {
	Released int `json:"released"`
}

// Multicast group names.
const (
	// GroupGL carries GL heartbeats; EPs and unassigned LCs subscribe.
	GroupGL = "snooze.gl"
	// GroupGMPrefix + GM ID carries one GM's heartbeats to its LCs.
	GroupGMPrefix = "snooze.gm."
)

// GLHeartbeat announces the current Group Leader.
type GLHeartbeat struct {
	Addr  string `json:"addr"`  // bus/REST address of the GL
	Epoch uint64 `json:"epoch"` // bumped on every leadership change
}

// GMHeartbeat announces a live GM to its LC group.
type GMHeartbeat struct {
	GM   types.GroupManagerID `json:"gm"`
	Addr string               `json:"addr"`
}

// GMJoinRequest enrolls a GM with the GL.
type GMJoinRequest struct {
	GM   types.GroupManagerID `json:"gm"`
	Addr string               `json:"addr"`
}

// GMJoinResponse acknowledges enrollment.
type GMJoinResponse struct {
	Accepted bool `json:"accepted"`
}

// SummaryUpdate is a GM's periodic aggregate (Section II-B). Rollup reports
// that the sending GM also appends its own gm/<id> rollup series on monitor
// ingestion, so a GL sharing the sender's telemetry hub need not re-record
// the summary.
//
// UtilSketch carries the mergeable quantile sketch of the group's member
// node-util distribution: the GM merges its per-node util sketches and ships
// the result, so the GL's group capacity views answer p50/p95 over the
// members' actual utilization instead of over the rollup series of group
// averages (whose quantiles are quantiles-of-averages). Scheduling carries
// the sender's own active policy configuration, so a GL fronting a
// mixed-policy deployment can report which policies each group actually runs.
type SummaryUpdate struct {
	Summary    types.GroupSummary `json:"summary"`
	Addr       string             `json:"addr"`
	Rollup     bool               `json:"rollup,omitempty"`
	UtilSketch *sketch.Encoded    `json:"utilSketch,omitempty"`
	Scheduling *SchedulingInfo    `json:"scheduling,omitempty"`
}

// LCAssignRequest asks the GL for a GM assignment.
type LCAssignRequest struct {
	Spec types.NodeSpec `json:"spec"`
}

// LCAssignResponse carries the assigned GM.
type LCAssignResponse struct {
	GM   types.GroupManagerID `json:"gm"`
	Addr string               `json:"addr"`
}

// LCJoinRequest enrolls an LC (and its current VMs, after a rejoin) with a GM.
type LCJoinRequest struct {
	Addr   string           `json:"addr"`
	OOB    string           `json:"oob"` // out-of-band wake address
	Status types.NodeStatus `json:"status"`
	VMs    []types.VMStatus `json:"vms"`
}

// LCJoinResponse acknowledges the join.
type LCJoinResponse struct {
	Accepted bool `json:"accepted"`
}

// MonitorReport is the LC→GM periodic monitoring message. AtNs stamps the
// measurement in the sender's runtime-relative clock; the GM rejects reports
// stamped in the future (a corrupted or replayed report) before they reach
// the telemetry store or the anomaly detector. 0 means unstamped (accepted,
// ingested at arrival time) for compatibility with hand-crafted reports.
type MonitorReport struct {
	Status types.NodeStatus `json:"status"`
	VMs    []types.VMStatus `json:"vms"`
	AtNs   int64            `json:"atNs,omitempty"`
}

// AnomalyKind distinguishes overload from underload events.
type AnomalyKind int

// Anomaly kinds.
const (
	AnomalyOverload AnomalyKind = iota
	AnomalyUnderload
)

// String implements fmt.Stringer.
func (k AnomalyKind) String() string {
	if k == AnomalyOverload {
		return "overload"
	}
	return "underload"
}

// AnomalyReport is the LC→GM anomaly event (Section II-A).
type AnomalyReport struct {
	Kind   AnomalyKind      `json:"kind"`
	Status types.NodeStatus `json:"status"`
	VMs    []types.VMStatus `json:"vms"`
}

// SubmitRequest is a client VM submission.
type SubmitRequest struct {
	VMs []types.VMSpec `json:"vms"`
}

// SubmitResponse reports per-VM placement outcomes.
type SubmitResponse struct {
	Placed   map[types.VMID]types.NodeID `json:"placed"`
	Unplaced []types.VMID                `json:"unplaced"`
}

// PlaceRequest is the GL's probe asking one GM to place VMs (the linear
// search step of Section II-C).
type PlaceRequest struct {
	VMs []types.VMSpec `json:"vms"`
	// TraceID/ParentSpan carry the dispatch decision's trace across the
	// GL→GM hop, so the placement span joins the submit chain. Empty when
	// tracing is disabled or the trace was sampled out.
	TraceID    string `json:"traceId,omitempty"`
	ParentSpan string `json:"parentSpan,omitempty"`
}

// PlaceResponse reports which of the probed VMs the GM managed to place.
type PlaceResponse struct {
	Placed   map[types.VMID]types.NodeID `json:"placed"`
	Unplaced []types.VMID                `json:"unplaced"`
}

// StartVMRequest instructs an LC to start a VM.
type StartVMRequest struct {
	Spec types.VMSpec `json:"spec"`
	// TraceID/ParentSpan carry the placement decision's trace across the
	// GM→LC hop (the LC echoes them back untouched today).
	TraceID    string `json:"traceId,omitempty"`
	ParentSpan string `json:"parentSpan,omitempty"`
}

// StartVMResponse acknowledges (or refuses) the start.
type StartVMResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// StopVMRequest instructs an LC to destroy a VM.
type StopVMRequest struct {
	VM types.VMID `json:"vm"`
}

// MigrateVMRequest instructs the source LC to live-migrate a VM to the
// destination LC's node.
type MigrateVMRequest struct {
	VM       types.VMID   `json:"vm"`
	DestNode types.NodeID `json:"destNode"`
	DestAddr string       `json:"destAddr"`
	// TraceID/ParentSpan carry the relocation/consolidation decision's
	// trace across the GM→LC hop.
	TraceID    string `json:"traceId,omitempty"`
	ParentSpan string `json:"parentSpan,omitempty"`
}

// MigrateVMResponse reports migration initiation/completion.
type MigrateVMResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// GLQueryResponse is the EP's answer to a GL discovery query.
type GLQueryResponse struct {
	Addr  string `json:"addr"`
	Known bool   `json:"known"`
}

// TopologyRequest parameterizes the hierarchy export; Deep makes the GL fan
// out to its GMs and include per-LC detail (the CLI's "live visualizing and
// exporting of the hierarchy organization", Section II-A).
type TopologyRequest struct {
	Deep bool `json:"deep,omitempty"`
}

// TopologyLC describes one Local Controller in a deep topology export.
type TopologyLC struct {
	ID       types.NodeID         `json:"id"`
	Power    string               `json:"power"`
	VMs      int                  `json:"vms"`
	Reserved types.ResourceVector `json:"reserved"`
	Capacity types.ResourceVector `json:"capacity"`
}

// TopologyGM describes one GM in a topology export. Scheduling is the GM's
// own reported policy configuration (learned from its summary pushes), so the
// export surfaces mixed-policy deployments; nil when the GM has not reported
// it yet.
type TopologyGM struct {
	GM         types.GroupManagerID `json:"gm"`
	Addr       string               `json:"addr"`
	Summary    types.GroupSummary   `json:"summary"`
	Scheduling *SchedulingInfo      `json:"scheduling,omitempty"`
	LCs        []TopologyLC         `json:"lcs,omitempty"` // deep export only
}

// SchedulingInfo is the active scheduling configuration carried by topology
// exports: the policy names of the two scheduling levels, the demand
// estimator, and the capacity-view horizon the policies consume.
type SchedulingInfo struct {
	Dispatch      string `json:"dispatch"`
	Placement     string `json:"placement"`
	Overload      string `json:"overload"`
	Underload     string `json:"underload"`
	Estimator     string `json:"estimator,omitempty"`
	ViewHorizonNs int64  `json:"viewHorizonNs,omitempty"`
}

// TopologyResponse is the GL's hierarchy export (CLI visualization).
type TopologyResponse struct {
	GL         string         `json:"gl"`
	GMs        []TopologyGM   `json:"gms"`
	Scheduling SchedulingInfo `json:"scheduling"`
}

// KindLCList asks a GM for its LC inventory (used by deep topology export).
const KindLCList = "gm.lc-list"

// LCListResponse is a GM's LC inventory.
type LCListResponse struct {
	LCs []TopologyLC `json:"lcs"`
}

// KindInventory asks a GM for its full resource inventory: the monitored
// status of every managed LC and every VM it hosts. The api/v1 control-plane
// backends aggregate these per-GM inventories into the GET /v1/vms and
// GET /v1/nodes collections.
const KindInventory = "gm.inventory"

// InventoryNode is one LC's monitored status plus the age of its last
// monitor report. During hierarchy churn (a rejoin after a GL change) two
// GMs may briefly both claim an LC — the previous GM keeps a stale record
// until its sweep expires it — so aggregators keep the freshest claim.
type InventoryNode struct {
	Status types.NodeStatus `json:"status"`
	AgeNs  int64            `json:"ageNs"`
}

// InventoryResponse is a GM's resource inventory. VM statuses carry the
// hosting node in their Node field. Scheduling is the responding GM's own
// active policy configuration — per-GM ground truth for deployments whose
// groups run different policies than the GL's template suggests.
type InventoryResponse struct {
	Nodes      []InventoryNode  `json:"nodes"`
	VMs        []types.VMStatus `json:"vms"`
	Scheduling SchedulingInfo   `json:"scheduling"`
}

// KindConsolidation controls one GM's online consolidation optimizer
// (internal/consolidation/online). The api/v1 control-plane backends fan it
// out to every GM for GET /v1/consolidations/status and the start/stop
// routes.
const KindConsolidation = "gm.consolidation"

// Consolidation control actions.
const (
	ConsolidationStatus = "status"
	ConsolidationStart  = "start"
	ConsolidationStop   = "stop"
)

// ConsolidationCtlRequest asks a GM to report, start or stop its online
// consolidation optimizer. An empty Action means status.
type ConsolidationCtlRequest struct {
	Action string `json:"action"`
}

// ConsolidationRound summarizes one completed consolidation round.
type ConsolidationRound struct {
	Round       uint64 `json:"round"`
	AtNs        int64  `json:"atNs"`
	HostsBefore int    `json:"hostsBefore"`
	HostsAfter  int    `json:"hostsAfter"`
	Planned     int    `json:"planned"`
	Executed    int    `json:"executed"`
	Failed      int    `json:"failed"`
	Cancelled   int    `json:"cancelled"`
}

// ---------------------------------------------------------------------------
// GM state replication and failover recovery
// ---------------------------------------------------------------------------

// KindStateSync is a GM's periodic one-way state replication push to the GL:
// a snapshot of the GM's owned telemetry (series, owner stamps, detector
// state) plus the journal events published since the previous push. The GL
// archives the latest snapshot and accumulates the incremental segments, so
// a successor can rebuild the GM's hub as snapshot + journal tail after a
// failure (the paper's self-healing, Section II, extended from membership
// recovery to state recovery).
const KindStateSync = "gl.state-sync"

// KindRecoveryFetch asks the GL for one GM's archived state. A manager
// entering the GM role sends it during its bootstrap phase to recover the
// windowed telemetry a previous incarnation pushed.
const KindRecoveryFetch = "gl.recovery-fetch"

// KindStateRestore is the GL's push of a FAILED GM's archived state to a
// surviving GM: when the GL's sweep declares a GM dead, the orphaned LCs
// rejoin other GMs, and those successors adopt the dead GM's history so
// their first policy decisions run on restored windowed statistics instead
// of snapshot fallback.
const KindStateRestore = "gm.state-restore"

// StateSync is the GM→GL replication push. Events carries the journal
// segment with Seq > SinceSeq at the time of the push; Snapshot is the full
// owned-state snapshot cut at the same instant.
type StateSync struct {
	GM       types.GroupManagerID  `json:"gm"`
	Addr     string                `json:"addr"`
	Snapshot telemetry.HubSnapshot `json:"snapshot"`
	SinceSeq uint64                `json:"sinceSeq"`
	Events   []telemetry.Event     `json:"events,omitempty"`
}

// RecoveryFetchRequest asks for the archived state of one GM.
type RecoveryFetchRequest struct {
	GM types.GroupManagerID `json:"gm"`
}

// RecoveryFetchResponse carries the archive (Found false when the GL has
// never seen a push from that GM).
type RecoveryFetchResponse struct {
	Found    bool                  `json:"found"`
	Snapshot telemetry.HubSnapshot `json:"snapshot"`
	Events   []telemetry.Event     `json:"events,omitempty"`
}

// StateRestore is the GL→GM push of a failed GM's archive. FailedAtNs is the
// runtime instant the GL declared the failure, so the adopting GM can journal
// the failure-to-recovery latency.
type StateRestore struct {
	FailedGM   types.GroupManagerID  `json:"failedGm"`
	Snapshot   telemetry.HubSnapshot `json:"snapshot"`
	Events     []telemetry.Event     `json:"events,omitempty"`
	FailedAtNs int64                 `json:"failedAtNs"`
}

// ConsolidationCtlResponse reports one GM's optimizer state after the
// requested action was applied.
type ConsolidationCtlResponse struct {
	GM         types.GroupManagerID `json:"gm"`
	Running    bool                 `json:"running"`
	InRound    bool                 `json:"inRound"`
	Rounds     uint64               `json:"rounds"`
	Migrations uint64               `json:"migrations"`
	Cancels    uint64               `json:"cancels"`
	Failures   uint64               `json:"failures"`
	Budget     int                  `json:"budget"`
	PeriodNs   int64                `json:"periodNs"`
	LastRound  *ConsolidationRound  `json:"lastRound,omitempty"`
}
