package protocol

import (
	"encoding/json"
	"fmt"
)

// The REST transport (internal/rest) carries payloads as JSON tagged with
// the message kind. DecodeRequest / DecodeReply rebuild the concrete typed
// values the component handlers expect, so component code is oblivious to
// whether a message travelled in-process or over HTTP.

// DecodeRequest decodes a request payload for the given message kind.
func DecodeRequest(kind string, data json.RawMessage) (any, error) {
	switch kind {
	case KindGLHeartbeat:
		return decode[GLHeartbeat](data)
	case KindGMHeartbeat:
		return decode[GMHeartbeat](data)
	case KindGMJoin:
		return decode[GMJoinRequest](data)
	case KindSummary:
		return decode[SummaryUpdate](data)
	case KindLCAssign:
		return decode[LCAssignRequest](data)
	case KindLCJoin:
		return decode[LCJoinRequest](data)
	case KindMonitor:
		return decode[MonitorReport](data)
	case KindAnomaly:
		return decode[AnomalyReport](data)
	case KindSubmit:
		return decode[SubmitRequest](data)
	case KindPlace:
		return decode[PlaceRequest](data)
	case KindStartVM:
		return decode[StartVMRequest](data)
	case KindStopVM:
		return decode[StopVMRequest](data)
	case KindMigrateVM:
		return decode[MigrateVMRequest](data)
	case KindShed:
		return decode[ShedRequest](data)
	case KindTopology:
		return decode[TopologyRequest](data)
	case KindConsolidation:
		return decode[ConsolidationCtlRequest](data)
	case KindStateSync:
		return decode[StateSync](data)
	case KindRecoveryFetch:
		return decode[RecoveryFetchRequest](data)
	case KindStateRestore:
		return decode[StateRestore](data)
	case KindSuspendHost, KindWakeHost, KindGLQuery, KindRejoin, KindLCList, KindInventory:
		return struct{}{}, nil
	default:
		return nil, fmt.Errorf("protocol: unknown request kind %q", kind)
	}
}

// DecodeReply decodes a response payload for the given message kind.
func DecodeReply(kind string, data json.RawMessage) (any, error) {
	switch kind {
	case KindGMJoin:
		return decode[GMJoinResponse](data)
	case KindLCAssign:
		return decode[LCAssignResponse](data)
	case KindLCJoin:
		return decode[LCJoinResponse](data)
	case KindSubmit:
		return decode[SubmitResponse](data)
	case KindPlace:
		return decode[PlaceResponse](data)
	case KindStartVM:
		return decode[StartVMResponse](data)
	case KindMigrateVM:
		return decode[MigrateVMResponse](data)
	case KindGLQuery:
		return decode[GLQueryResponse](data)
	case KindTopology:
		return decode[TopologyResponse](data)
	case KindShed:
		return decode[ShedResponse](data)
	case KindLCList:
		return decode[LCListResponse](data)
	case KindInventory:
		return decode[InventoryResponse](data)
	case KindConsolidation:
		return decode[ConsolidationCtlResponse](data)
	case KindRecoveryFetch:
		return decode[RecoveryFetchResponse](data)
	case KindGLHeartbeat, KindGMHeartbeat, KindSummary, KindMonitor, KindAnomaly,
		KindStopVM, KindSuspendHost, KindWakeHost, KindRejoin, KindStateSync, KindStateRestore:
		return struct{}{}, nil
	default:
		return nil, fmt.Errorf("protocol: unknown reply kind %q", kind)
	}
}

func decode[T any](data json.RawMessage) (any, error) {
	var v T
	if len(data) == 0 {
		return v, nil
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return v, nil
}
