package protocol

import (
	"encoding/json"
	"reflect"
	"testing"

	"snooze/internal/types"
)

// roundTrip encodes v to JSON and decodes into a fresh value of the same
// type, returning the decoded value. The REST layer depends on every
// protocol payload surviving this.
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v))
	if err := json.Unmarshal(data, out.Interface()); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	return out.Elem().Interface()
}

func TestJSONRoundTrips(t *testing.T) {
	spec := types.VMSpec{ID: "vm-1", Requested: types.RV(2, 2048, 10, 10), TraceID: "diurnal"}
	status := types.NodeStatus{
		Spec:       types.NodeSpec{ID: "n1", Capacity: types.RV(8, 16384, 1000, 1000)},
		Power:      types.PowerOn,
		Used:       types.RV(1, 512, 5, 5),
		Reserved:   types.RV(2, 2048, 10, 10),
		VMs:        []types.VMID{"vm-1"},
		Idle:       false,
		Generation: 3,
	}
	vmStatus := types.VMStatus{Spec: spec, State: types.VMRunning, Node: "n1", Used: types.RV(1, 512, 5, 5)}

	cases := []any{
		GLHeartbeat{Addr: "mgr:gm-00", Epoch: 2},
		GMHeartbeat{GM: "gm-01", Addr: "mgr:gm-01"},
		GMJoinRequest{GM: "gm-01", Addr: "mgr:gm-01"},
		GMJoinResponse{Accepted: true},
		SummaryUpdate{Addr: "mgr:gm-01", Summary: types.GroupSummary{GM: "gm-01", Total: types.RV(16, 32768, 2000, 2000), ActiveLCs: 2, VMs: 3}},
		LCAssignRequest{Spec: status.Spec},
		LCAssignResponse{GM: "gm-01", Addr: "mgr:gm-01"},
		LCJoinRequest{Addr: "lc:n1", OOB: "oob:lc:n1", Status: status, VMs: []types.VMStatus{vmStatus}},
		LCJoinResponse{Accepted: true},
		MonitorReport{Status: status, VMs: []types.VMStatus{vmStatus}},
		AnomalyReport{Kind: AnomalyOverload, Status: status, VMs: []types.VMStatus{vmStatus}},
		SubmitRequest{VMs: []types.VMSpec{spec}},
		SubmitResponse{Placed: map[types.VMID]types.NodeID{"vm-1": "n1"}, Unplaced: []types.VMID{"vm-2"}},
		PlaceRequest{VMs: []types.VMSpec{spec}},
		PlaceResponse{Placed: map[types.VMID]types.NodeID{"vm-1": "n1"}},
		StartVMRequest{Spec: spec},
		StartVMResponse{OK: false, Error: "insufficient"},
		StopVMRequest{VM: "vm-1"},
		MigrateVMRequest{VM: "vm-1", DestNode: "n2", DestAddr: "lc:n2"},
		MigrateVMResponse{OK: true},
		GLQueryResponse{Addr: "mgr:gm-00", Known: true},
		TopologyResponse{GL: "mgr:gm-00", GMs: []TopologyGM{{GM: "gm-01", Addr: "mgr:gm-01"}}},
	}
	for _, c := range cases {
		got := roundTrip(t, c)
		if !reflect.DeepEqual(got, c) {
			t.Errorf("%T: round trip mismatch:\n got %+v\nwant %+v", c, got, c)
		}
	}
}

func TestAnomalyKindString(t *testing.T) {
	if AnomalyOverload.String() != "overload" || AnomalyUnderload.String() != "underload" {
		t.Fatal("anomaly kind strings")
	}
}

func TestKindNamingConvention(t *testing.T) {
	kinds := []string{
		KindGLHeartbeat, KindGMHeartbeat, KindGMJoin, KindSummary, KindLCAssign,
		KindLCJoin, KindMonitor, KindAnomaly, KindSubmit, KindPlace, KindStartVM,
		KindStopVM, KindMigrateVM, KindSuspendHost, KindWakeHost, KindGLQuery, KindTopology,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if k == "" || seen[k] {
			t.Fatalf("empty or duplicate kind %q", k)
		}
		seen[k] = true
	}
}
