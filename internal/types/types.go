// Package types defines the core domain types shared by every layer of the
// Snooze reproduction: resource vectors, virtual machines, node descriptions,
// power states and the identifiers used across the hierarchy.
//
// The paper models three monitored dimensions per VM and host — CPU, memory
// and network utilization (Section II-B). ResourceVector captures those as a
// four-component vector (network is split into receive and transmit, as in
// the Snooze implementation).
package types

import (
	"fmt"
	"math"
	"strings"
)

// ResourceVector is a demand or capacity expressed over the four monitored
// dimensions. Units are abstract but used consistently: CPU in cores (or
// fractions thereof), Memory in megabytes, network in megabits per second.
type ResourceVector struct {
	CPU    float64 `json:"cpu"`
	Memory float64 `json:"memory"`
	NetRx  float64 `json:"netRx"`
	NetTx  float64 `json:"netTx"`
}

// RV is shorthand for constructing a ResourceVector.
func RV(cpu, mem, rx, tx float64) ResourceVector {
	return ResourceVector{CPU: cpu, Memory: mem, NetRx: rx, NetTx: tx}
}

// Zero reports whether all components are zero.
func (r ResourceVector) Zero() bool {
	return r.CPU == 0 && r.Memory == 0 && r.NetRx == 0 && r.NetTx == 0
}

// Add returns the component-wise sum r + o.
func (r ResourceVector) Add(o ResourceVector) ResourceVector {
	return ResourceVector{
		CPU:    r.CPU + o.CPU,
		Memory: r.Memory + o.Memory,
		NetRx:  r.NetRx + o.NetRx,
		NetTx:  r.NetTx + o.NetTx,
	}
}

// Sub returns the component-wise difference r - o.
func (r ResourceVector) Sub(o ResourceVector) ResourceVector {
	return ResourceVector{
		CPU:    r.CPU - o.CPU,
		Memory: r.Memory - o.Memory,
		NetRx:  r.NetRx - o.NetRx,
		NetTx:  r.NetTx - o.NetTx,
	}
}

// Scale returns r with every component multiplied by f.
func (r ResourceVector) Scale(f float64) ResourceVector {
	return ResourceVector{
		CPU:    r.CPU * f,
		Memory: r.Memory * f,
		NetRx:  r.NetRx * f,
		NetTx:  r.NetTx * f,
	}
}

// Max returns the component-wise maximum of r and o.
func (r ResourceVector) Max(o ResourceVector) ResourceVector {
	return ResourceVector{
		CPU:    math.Max(r.CPU, o.CPU),
		Memory: math.Max(r.Memory, o.Memory),
		NetRx:  math.Max(r.NetRx, o.NetRx),
		NetTx:  math.Max(r.NetTx, o.NetTx),
	}
}

// Min returns the component-wise minimum of r and o.
func (r ResourceVector) Min(o ResourceVector) ResourceVector {
	return ResourceVector{
		CPU:    math.Min(r.CPU, o.CPU),
		Memory: math.Min(r.Memory, o.Memory),
		NetRx:  math.Min(r.NetRx, o.NetRx),
		NetTx:  math.Min(r.NetTx, o.NetTx),
	}
}

// Clamp returns r with every component clamped to [0, hi.component].
func (r ResourceVector) Clamp(hi ResourceVector) ResourceVector {
	return r.Max(ResourceVector{}).Min(hi)
}

// FitsIn reports whether r fits within capacity c on every dimension.
func (r ResourceVector) FitsIn(c ResourceVector) bool {
	const eps = 1e-9
	return r.CPU <= c.CPU+eps && r.Memory <= c.Memory+eps &&
		r.NetRx <= c.NetRx+eps && r.NetTx <= c.NetTx+eps
}

// Dominates reports whether every component of r is >= the matching
// component of o.
func (r ResourceVector) Dominates(o ResourceVector) bool {
	return o.FitsIn(r)
}

// Norm1 returns the L1 norm (sum of components).
func (r ResourceVector) Norm1() float64 {
	return r.CPU + r.Memory + r.NetRx + r.NetTx
}

// Norm2 returns the L2 (Euclidean) norm.
func (r ResourceVector) Norm2() float64 {
	return math.Sqrt(r.CPU*r.CPU + r.Memory*r.Memory + r.NetRx*r.NetRx + r.NetTx*r.NetTx)
}

// NormInf returns the L∞ norm (largest component).
func (r ResourceVector) NormInf() float64 {
	return math.Max(math.Max(r.CPU, r.Memory), math.Max(r.NetRx, r.NetTx))
}

// Divide returns the component-wise ratio r/c with zero capacity components
// mapping to zero (a dimension the host does not provide contributes no
// utilization).
func (r ResourceVector) Divide(c ResourceVector) ResourceVector {
	div := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	return ResourceVector{
		CPU:    div(r.CPU, c.CPU),
		Memory: div(r.Memory, c.Memory),
		NetRx:  div(r.NetRx, c.NetRx),
		NetTx:  div(r.NetTx, c.NetTx),
	}
}

// UtilizationL1 returns the mean utilization across dimensions of demand r on
// capacity c; a scalar in [0,1] when r fits in c. This is the utilization
// measure used by the ACO heuristic information and the evaluation's "average
// host utilization" metric.
func (r ResourceVector) UtilizationL1(c ResourceVector) float64 {
	u := r.Divide(c)
	n := 0
	sum := 0.0
	for _, pair := range [][2]float64{{u.CPU, c.CPU}, {u.Memory, c.Memory}, {u.NetRx, c.NetRx}, {u.NetTx, c.NetTx}} {
		if pair[1] > 0 {
			sum += pair[0]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Components returns the vector as a fixed-size array, in the canonical
// dimension order (CPU, Memory, NetRx, NetTx).
func (r ResourceVector) Components() [4]float64 {
	return [4]float64{r.CPU, r.Memory, r.NetRx, r.NetTx}
}

// FromComponents builds a ResourceVector from the canonical array order.
func FromComponents(c [4]float64) ResourceVector {
	return ResourceVector{CPU: c[0], Memory: c[1], NetRx: c[2], NetTx: c[3]}
}

// String renders the vector compactly for logs and tables.
func (r ResourceVector) String() string {
	return fmt.Sprintf("[cpu=%.2f mem=%.0f rx=%.1f tx=%.1f]", r.CPU, r.Memory, r.NetRx, r.NetTx)
}

// ---------------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------------

// ComponentKind identifies the role of a hierarchy component.
type ComponentKind int

// Hierarchy component kinds, in top-down order.
const (
	KindEntryPoint ComponentKind = iota
	KindGroupLeader
	KindGroupManager
	KindLocalController
)

// String returns the conventional short name used in the paper.
func (k ComponentKind) String() string {
	switch k {
	case KindEntryPoint:
		return "EP"
	case KindGroupLeader:
		return "GL"
	case KindGroupManager:
		return "GM"
	case KindLocalController:
		return "LC"
	default:
		return fmt.Sprintf("ComponentKind(%d)", int(k))
	}
}

// NodeID identifies a physical node / local controller.
type NodeID string

// GroupManagerID identifies a group manager.
type GroupManagerID string

// VMID identifies a virtual machine.
type VMID string

// ---------------------------------------------------------------------------
// Virtual machines
// ---------------------------------------------------------------------------

// VMState is the lifecycle state of a virtual machine.
type VMState int

// VM lifecycle states.
const (
	VMPending    VMState = iota // submitted, not yet placed
	VMBooting                   // placed, hypervisor is instantiating it
	VMRunning                   // actively running on a node
	VMMigrating                 // live migration in progress
	VMSuspended                 // suspended with its host
	VMTerminated                // destroyed (client request or LC failure)
	VMFailed                    // lost due to an unrecoverable failure
)

// String implements fmt.Stringer.
func (s VMState) String() string {
	switch s {
	case VMPending:
		return "pending"
	case VMBooting:
		return "booting"
	case VMRunning:
		return "running"
	case VMMigrating:
		return "migrating"
	case VMSuspended:
		return "suspended"
	case VMTerminated:
		return "terminated"
	case VMFailed:
		return "failed"
	default:
		return fmt.Sprintf("VMState(%d)", int(s))
	}
}

// VMSpec is the client-facing description of a VM submission request: the
// requested capacity is the reservation the scheduler must honour.
type VMSpec struct {
	ID        VMID           `json:"id"`
	Requested ResourceVector `json:"requested"`
	// TraceID optionally names the synthetic utilization trace driving the
	// VM's actual demand in simulation. Empty means "flat at requested".
	TraceID string `json:"traceId,omitempty"`
}

// VMStatus is the monitored view of a VM held by LCs and GMs.
type VMStatus struct {
	Spec  VMSpec         `json:"spec"`
	State VMState        `json:"state"`
	Node  NodeID         `json:"node,omitempty"`
	Used  ResourceVector `json:"used"` // most recent measured utilization
}

// ---------------------------------------------------------------------------
// Nodes and power states
// ---------------------------------------------------------------------------

// PowerState is the power state of a physical node. The paper's energy
// manager transitions idle nodes into a system-administrator-specified
// low-power state ("e.g. suspend") and wakes them on demand.
type PowerState int

// Power states, roughly in decreasing power draw.
const (
	PowerOn PowerState = iota
	PowerSuspending
	PowerSuspended
	PowerWaking
	PowerOff
	PowerBooting
	PowerFailed
)

// String implements fmt.Stringer.
func (p PowerState) String() string {
	switch p {
	case PowerOn:
		return "on"
	case PowerSuspending:
		return "suspending"
	case PowerSuspended:
		return "suspended"
	case PowerWaking:
		return "waking"
	case PowerOff:
		return "off"
	case PowerBooting:
		return "booting"
	case PowerFailed:
		return "failed"
	default:
		return fmt.Sprintf("PowerState(%d)", int(p))
	}
}

// Available reports whether the node can host running VMs in this state.
func (p PowerState) Available() bool { return p == PowerOn }

// Reachable reports whether the management plane can contact a node in this
// state (a suspended node still answers wake-on-LAN but not RPCs).
func (p PowerState) Reachable() bool { return p == PowerOn || p == PowerSuspending }

// NodeSpec describes a physical node's total capacity and identity.
type NodeSpec struct {
	ID       NodeID         `json:"id"`
	Capacity ResourceVector `json:"capacity"`
}

// NodeStatus is the monitored view of a node.
type NodeStatus struct {
	Spec       NodeSpec       `json:"spec"`
	Power      PowerState     `json:"power"`
	Used       ResourceVector `json:"used"`     // sum of current VM demand
	Reserved   ResourceVector `json:"reserved"` // sum of VM reservations
	VMs        []VMID         `json:"vms"`
	Idle       bool           `json:"idle"`       // true when the node hosts no VMs
	IdleSince  int64          `json:"idleSince"`  // virtual-time ns when the node became idle (valid when Idle)
	Generation uint64         `json:"generation"` // bumped on every (re)boot, used to fence stale commands
}

// FreeReserved returns capacity minus reservations, clamped at zero.
func (n NodeStatus) FreeReserved() ResourceVector {
	return n.Spec.Capacity.Sub(n.Reserved).Max(ResourceVector{})
}

// FreeUsed returns capacity minus measured usage, clamped at zero.
func (n NodeStatus) FreeUsed() ResourceVector {
	return n.Spec.Capacity.Sub(n.Used).Max(ResourceVector{})
}

// ---------------------------------------------------------------------------
// GM summaries (GL-level scheduling input)
// ---------------------------------------------------------------------------

// GroupSummary is the aggregated resource information each GM periodically
// pushes to the GL (Section II-B): used and total capacity across its LCs.
// As the paper notes, summary information is NOT sufficient for exact
// dispatching decisions — the GL only shortlists candidate GMs.
type GroupSummary struct {
	GM        GroupManagerID `json:"gm"`
	Used      ResourceVector `json:"used"`
	Reserved  ResourceVector `json:"reserved"`
	Total     ResourceVector `json:"total"`
	ActiveLCs int            `json:"activeLcs"`
	AsleepLCs int            `json:"asleepLcs"`
	VMs       int            `json:"vms"`
}

// Free returns the summary's total minus reserved capacity, clamped at zero.
func (g GroupSummary) Free() ResourceVector {
	return g.Total.Sub(g.Reserved).Max(ResourceVector{})
}

// ---------------------------------------------------------------------------
// Placement (consolidation input/output)
// ---------------------------------------------------------------------------

// Placement is an assignment of VMs to nodes, the object optimized by the
// consolidation algorithms.
type Placement map[VMID]NodeID

// Clone returns a deep copy of the placement.
func (p Placement) Clone() Placement {
	c := make(Placement, len(p))
	for vm, n := range p {
		c[vm] = n
	}
	return c
}

// NodesUsed returns the number of distinct nodes that host at least one VM.
func (p Placement) NodesUsed() int {
	set := make(map[NodeID]struct{}, len(p))
	for _, n := range p {
		set[n] = struct{}{}
	}
	return len(set)
}

// String renders the placement sorted-ish for debugging (map order is
// randomized; callers that need determinism should sort themselves).
func (p Placement) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Placement{%d VMs on %d nodes}", len(p), p.NodesUsed())
	return b.String()
}

// Migration is one VM move from a source to a destination node.
type Migration struct {
	VM   VMID   `json:"vm"`
	From NodeID `json:"from"`
	To   NodeID `json:"to"`
}
