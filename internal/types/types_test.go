package types

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRVConstructorAndZero(t *testing.T) {
	r := RV(1, 2, 3, 4)
	if r.CPU != 1 || r.Memory != 2 || r.NetRx != 3 || r.NetTx != 4 {
		t.Fatalf("RV fields wrong: %+v", r)
	}
	if r.Zero() {
		t.Fatal("non-zero vector reported Zero")
	}
	if !(ResourceVector{}).Zero() {
		t.Fatal("zero vector not reported Zero")
	}
}

// bound maps an arbitrary generated float into a realistic demand range so
// floating-point cancellation does not dominate the property.
func bound(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Mod(v, 1e6)
}

func boundRV(r ResourceVector) ResourceVector {
	return RV(bound(r.CPU), bound(r.Memory), bound(r.NetRx), bound(r.NetTx))
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b ResourceVector) bool {
		a, b = boundRV(a), boundRV(b)
		got := a.Add(b).Sub(b)
		const eps = 1e-6
		return math.Abs(got.CPU-a.CPU) < eps && math.Abs(got.Memory-a.Memory) < eps &&
			math.Abs(got.NetRx-a.NetRx) < eps && math.Abs(got.NetTx-a.NetTx) < eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScale(t *testing.T) {
	r := RV(2, 4, 6, 8).Scale(0.5)
	want := RV(1, 2, 3, 4)
	if r != want {
		t.Fatalf("Scale: got %v want %v", r, want)
	}
}

func TestMaxMinClamp(t *testing.T) {
	a, b := RV(1, 8, 3, 0), RV(2, 4, 3, 1)
	if got := a.Max(b); got != RV(2, 8, 3, 1) {
		t.Fatalf("Max: got %v", got)
	}
	if got := a.Min(b); got != RV(1, 4, 3, 0) {
		t.Fatalf("Min: got %v", got)
	}
	if got := RV(-1, 10, 2, 5).Clamp(RV(4, 4, 4, 4)); got != RV(0, 4, 2, 4) {
		t.Fatalf("Clamp: got %v", got)
	}
}

func TestFitsInAndDominates(t *testing.T) {
	small, big := RV(1, 1024, 10, 10), RV(4, 8192, 100, 100)
	if !small.FitsIn(big) {
		t.Fatal("small should fit in big")
	}
	if big.FitsIn(small) {
		t.Fatal("big should not fit in small")
	}
	if !big.Dominates(small) {
		t.Fatal("big should dominate small")
	}
	// Exact equality fits (eps tolerance).
	if !big.FitsIn(big) {
		t.Fatal("vector should fit in itself")
	}
}

func TestFitsInSingleDimensionViolation(t *testing.T) {
	cap := RV(4, 4096, 100, 100)
	for i, r := range []ResourceVector{
		RV(5, 1, 1, 1), RV(1, 5000, 1, 1), RV(1, 1, 200, 1), RV(1, 1, 1, 200),
	} {
		if r.FitsIn(cap) {
			t.Errorf("case %d: %v should not fit in %v", i, r, cap)
		}
	}
}

func TestNorms(t *testing.T) {
	r := RV(3, 4, 0, 0)
	if !almostEq(r.Norm1(), 7) {
		t.Fatalf("Norm1: got %v", r.Norm1())
	}
	if !almostEq(r.Norm2(), 5) {
		t.Fatalf("Norm2: got %v", r.Norm2())
	}
	if !almostEq(r.NormInf(), 4) {
		t.Fatalf("NormInf: got %v", r.NormInf())
	}
}

func TestNormTriangleInequality(t *testing.T) {
	f := func(a, b ResourceVector) bool {
		// Norms are only meaningful on non-negative demand vectors.
		a, b = boundRV(a).Max(ResourceVector{}), boundRV(b).Max(ResourceVector{})
		return a.Add(b).Norm2() <= a.Norm2()+b.Norm2()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivideAndUtilization(t *testing.T) {
	capV := RV(4, 8192, 0, 0) // node that does not account network
	used := RV(2, 2048, 5, 5)
	u := used.Divide(capV)
	if !almostEq(u.CPU, 0.5) || !almostEq(u.Memory, 0.25) || u.NetRx != 0 || u.NetTx != 0 {
		t.Fatalf("Divide: got %v", u)
	}
	// UtilizationL1 averages only over provided dimensions.
	if got := used.UtilizationL1(capV); !almostEq(got, 0.375) {
		t.Fatalf("UtilizationL1: got %v want 0.375", got)
	}
	if got := used.UtilizationL1(ResourceVector{}); got != 0 {
		t.Fatalf("UtilizationL1 on zero capacity: got %v want 0", got)
	}
}

func TestComponentsRoundTrip(t *testing.T) {
	f := func(r ResourceVector) bool {
		return FromComponents(r.Components()) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComponentKindString(t *testing.T) {
	cases := map[ComponentKind]string{
		KindEntryPoint: "EP", KindGroupLeader: "GL",
		KindGroupManager: "GM", KindLocalController: "LC",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestVMStateString(t *testing.T) {
	states := []VMState{VMPending, VMBooting, VMRunning, VMMigrating, VMSuspended, VMTerminated, VMFailed}
	seen := map[string]bool{}
	for _, s := range states {
		str := s.String()
		if str == "" || seen[str] {
			t.Errorf("state %d has empty or duplicate string %q", int(s), str)
		}
		seen[str] = true
	}
}

func TestPowerStatePredicates(t *testing.T) {
	if !PowerOn.Available() {
		t.Fatal("PowerOn should be available")
	}
	for _, p := range []PowerState{PowerSuspended, PowerSuspending, PowerWaking, PowerOff, PowerBooting, PowerFailed} {
		if p.Available() {
			t.Errorf("%v should not be available", p)
		}
	}
	if !PowerOn.Reachable() || !PowerSuspending.Reachable() {
		t.Fatal("on/suspending should be reachable")
	}
	if PowerSuspended.Reachable() || PowerFailed.Reachable() {
		t.Fatal("suspended/failed should not be reachable")
	}
}

func TestNodeStatusFree(t *testing.T) {
	n := NodeStatus{
		Spec:     NodeSpec{ID: "n1", Capacity: RV(8, 16384, 1000, 1000)},
		Used:     RV(2, 4096, 100, 100),
		Reserved: RV(4, 8192, 500, 500),
	}
	if got := n.FreeReserved(); got != RV(4, 8192, 500, 500) {
		t.Fatalf("FreeReserved: got %v", got)
	}
	if got := n.FreeUsed(); got != RV(6, 12288, 900, 900) {
		t.Fatalf("FreeUsed: got %v", got)
	}
	// Over-reservation clamps at zero.
	n.Reserved = RV(10, 999999, 2000, 2000)
	if got := n.FreeReserved(); !got.Zero() {
		t.Fatalf("over-reserved FreeReserved should clamp to zero, got %v", got)
	}
}

func TestGroupSummaryFree(t *testing.T) {
	g := GroupSummary{Total: RV(16, 32768, 2000, 2000), Reserved: RV(4, 8192, 100, 100)}
	if got := g.Free(); got != RV(12, 24576, 1900, 1900) {
		t.Fatalf("Free: got %v", got)
	}
}

func TestPlacementCloneIndependence(t *testing.T) {
	p := Placement{"vm1": "n1", "vm2": "n2"}
	c := p.Clone()
	c["vm1"] = "n9"
	if p["vm1"] != "n1" {
		t.Fatal("Clone is not independent")
	}
	if c.NodesUsed() != 2 || p.NodesUsed() != 2 {
		t.Fatalf("NodesUsed wrong: clone=%d orig=%d", c.NodesUsed(), p.NodesUsed())
	}
}

func TestPlacementNodesUsed(t *testing.T) {
	p := Placement{}
	if p.NodesUsed() != 0 {
		t.Fatal("empty placement should use 0 nodes")
	}
	p["a"], p["b"], p["c"] = "n1", "n1", "n2"
	if p.NodesUsed() != 2 {
		t.Fatalf("NodesUsed: got %d want 2", p.NodesUsed())
	}
}

func TestResourceVectorStringStable(t *testing.T) {
	s := RV(1.5, 2048, 10, 20).String()
	if s != "[cpu=1.50 mem=2048 rx=10.0 tx=20.0]" {
		t.Fatalf("String: got %q", s)
	}
}
