package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"snooze/internal/types"
)

func TestFlatTrace(t *testing.T) {
	tr := FlatTrace{Fraction: 0.7}
	for _, at := range []time.Duration{0, time.Hour, 99 * time.Hour} {
		if got := tr.At(at); got.CPU != 0.7 || got.Memory != 0.7 {
			t.Fatalf("flat at %v: %v", at, got)
		}
	}
	if tr.Name() != "flat(0.70)" {
		t.Fatalf("name: %s", tr.Name())
	}
}

func TestDiurnalTraceShape(t *testing.T) {
	tr := DiurnalTrace{Low: 0.2, High: 0.8, MemFraction: 0.5, Period: 24 * time.Hour}
	// Trough at t=0, peak at half period.
	if got := tr.At(0); math.Abs(got.CPU-0.2) > 1e-9 {
		t.Fatalf("trough: %v", got)
	}
	if got := tr.At(12 * time.Hour); math.Abs(got.CPU-0.8) > 1e-9 {
		t.Fatalf("peak: %v", got)
	}
	// Periodicity.
	if a, b := tr.At(3*time.Hour), tr.At(27*time.Hour); math.Abs(a.CPU-b.CPU) > 1e-9 {
		t.Fatalf("not periodic: %v vs %v", a, b)
	}
	// Phase shift moves the trough.
	shifted := DiurnalTrace{Low: 0.2, High: 0.8, Period: 24 * time.Hour, Phase: 12 * time.Hour}
	if got := shifted.At(0); math.Abs(got.CPU-0.8) > 1e-9 {
		t.Fatalf("phase: %v", got)
	}
	// Default period kicks in.
	dflt := DiurnalTrace{Low: 0.1, High: 0.9}
	if got := dflt.At(0); math.Abs(got.CPU-0.1) > 1e-9 {
		t.Fatalf("default period trough: %v", got)
	}
	// Bounds hold everywhere.
	f := func(hours uint16) bool {
		v := tr.At(time.Duration(hours) * time.Hour).CPU
		return v >= 0.2-1e-9 && v <= 0.8+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnOffTrace(t *testing.T) {
	tr := OnOffTrace{Busy: 0.9, OnFor: 10 * time.Minute, OffFor: 20 * time.Minute}
	if got := tr.At(5 * time.Minute); got.CPU != 0.9 {
		t.Fatalf("on phase: %v", got)
	}
	if got := tr.At(15 * time.Minute); got.CPU != 0 {
		t.Fatalf("off phase: %v", got)
	}
	if got := tr.At(35 * time.Minute); got.CPU != 0.9 {
		t.Fatalf("second cycle: %v", got)
	}
	// StartOffset shifts the cycle; IdleFraction floors the off phase.
	tr2 := OnOffTrace{Busy: 0.9, OnFor: 10 * time.Minute, OffFor: 10 * time.Minute, StartOffset: 10 * time.Minute, IdleFraction: 0.05}
	if got := tr2.At(0); got.CPU != 0.05 {
		t.Fatalf("offset off phase: %v", got)
	}
	// Degenerate cycle is always busy.
	if got := (OnOffTrace{Busy: 0.4}).At(time.Hour); got.CPU != 0.4 {
		t.Fatalf("degenerate: %v", got)
	}
}

func TestRandomWalkTraceDeterministicAndBounded(t *testing.T) {
	tr := RandomWalkTrace{Seed: 7, Step: time.Minute, Volatile: 0.2, Start: 0.5, Min: 0.1, Max: 0.9, MemBase: 0.6}
	a := tr.At(90 * time.Minute)
	b := tr.At(90 * time.Minute)
	if a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	for m := 0; m < 300; m += 7 {
		v := tr.At(time.Duration(m) * time.Minute)
		if v.CPU < 0.1-1e-9 || v.CPU > 0.9+1e-9 {
			t.Fatalf("out of bounds at %dm: %v", m, v)
		}
		if v.Memory != 0.6 {
			t.Fatalf("mem base at %dm: %v", m, v)
		}
	}
	// Degenerate bounds fall back to [0,1]; zero step to 1 minute.
	d := RandomWalkTrace{Seed: 1, Volatile: 0.5, Start: 0.5}
	v := d.At(10 * time.Minute)
	if v.CPU < 0 || v.CPU > 1 {
		t.Fatalf("fallback bounds: %v", v)
	}
}

func TestBurstyTrace(t *testing.T) {
	tr := BurstyTrace{Seed: 3, Baseline: 0.1, BurstTo: 0.95, BurstProb: 0.3, Slot: 5 * time.Minute, MemBase: 0.5}
	bursts, total := 0, 0
	for s := 0; s < 2000; s++ {
		v := tr.At(time.Duration(s) * 5 * time.Minute)
		if v.CPU != 0.1 && v.CPU != 0.95 {
			t.Fatalf("unexpected level: %v", v)
		}
		if v.CPU == 0.95 {
			bursts++
		}
		total++
	}
	frac := float64(bursts) / float64(total)
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("burst fraction %v not near 0.3", frac)
	}
	// Same slot yields same value (deterministic).
	if tr.At(7*time.Minute) != tr.At(9*time.Minute) { // both slot 1
		t.Fatal("same slot differs")
	}
	// Default slot is used when zero.
	d := BurstyTrace{Seed: 1, Baseline: 0.2, BurstTo: 0.8, BurstProb: 0.5}
	_ = d.At(time.Hour)
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Len() != 0 {
		t.Fatal("new registry not empty")
	}
	// Unknown ID → conservative flat(1).
	if got := r.Lookup("nope").At(0); got.CPU != 1 {
		t.Fatalf("default trace: %v", got)
	}
	r.Register("d", DiurnalTrace{Low: 0.3, High: 0.3})
	if r.Len() != 1 {
		t.Fatal("Len after register")
	}
	if got := r.Lookup("d").At(0); math.Abs(got.CPU-0.3) > 1e-9 {
		t.Fatalf("lookup: %v", got)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(11, nil).Batch(50)
	b := NewGenerator(11, nil).Batch(50)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Requested != b[i].Requested {
			t.Fatalf("generator not deterministic at %d", i)
		}
	}
	c := NewGenerator(12, nil).Batch(50)
	same := 0
	for i := range a {
		if a[i].Requested == c[i].Requested {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical stream")
	}
}

func TestGeneratorClassMix(t *testing.T) {
	g := NewGenerator(5, nil)
	counts := map[float64]int{}
	for i := 0; i < 4000; i++ {
		counts[g.Next().Requested.CPU]++
	}
	// Weights 4:3:2:1 over cpu 1,2,4,8 — check ordering of frequencies.
	if !(counts[1] > counts[2] && counts[2] > counts[4] && counts[4] > counts[8]) {
		t.Fatalf("class mix not weight-ordered: %v", counts)
	}
	if counts[8] == 0 {
		t.Fatal("heaviest class never drawn")
	}
}

func TestGeneratorCustomClasses(t *testing.T) {
	g := NewGenerator(1, []VMClass{{Name: "only", Capacity: types.RV(2, 2, 2, 2), Weight: 1}})
	for i := 0; i < 10; i++ {
		spec := g.Next()
		if spec.Requested != types.RV(2, 2, 2, 2) {
			t.Fatalf("custom class: %v", spec)
		}
	}
}

func TestGeneratorUniqueIDs(t *testing.T) {
	g := NewGenerator(9, nil)
	seen := map[types.VMID]bool{}
	for _, s := range g.Batch(500) {
		if seen[s.ID] {
			t.Fatalf("duplicate ID %s", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestNewInstanceBasics(t *testing.T) {
	inst := NewInstance(InstanceConfig{Seed: 3, VMs: 40, Kind: UniformInstance, Lo: 0.1, Hi: 0.4})
	if len(inst.VMs) != 40 || len(inst.Nodes) != 40 || len(inst.Demand) != 40 {
		t.Fatalf("sizes: %d %d %d", len(inst.VMs), len(inst.Nodes), len(inst.Demand))
	}
	for _, vm := range inst.VMs {
		d := inst.Demand[vm.ID]
		if d != vm.Requested {
			t.Fatal("demand map and spec disagree")
		}
		if !d.FitsIn(inst.Capacity) {
			t.Fatalf("VM %s demand %v exceeds capacity", vm.ID, d)
		}
		if d.CPU < 0.1*inst.Capacity.CPU-1e-9 || d.CPU > 0.4*inst.Capacity.CPU+1e-9 {
			t.Fatalf("CPU out of configured bounds: %v", d)
		}
	}
}

func TestNewInstanceDeterministic(t *testing.T) {
	cfg := InstanceConfig{Seed: 42, VMs: 20, Kind: CorrelatedInstance}
	a, b := NewInstance(cfg), NewInstance(cfg)
	for i := range a.VMs {
		if a.VMs[i].Requested != b.VMs[i].Requested {
			t.Fatal("instance not deterministic")
		}
	}
}

func TestNewInstanceCorrelation(t *testing.T) {
	corrCoef := func(kind InstanceKind) float64 {
		inst := NewInstance(InstanceConfig{Seed: 8, VMs: 400, Kind: kind, Lo: 0.05, Hi: 0.5})
		var sx, sy, sxx, syy, sxy float64
		n := float64(len(inst.VMs))
		for _, vm := range inst.VMs {
			x := vm.Requested.CPU / inst.Capacity.CPU
			y := vm.Requested.Memory / inst.Capacity.Memory
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
		}
		cov := sxy/n - sx/n*sy/n
		vx, vy := sxx/n-sx/n*sx/n, syy/n-sy/n*sy/n
		return cov / math.Sqrt(vx*vy)
	}
	if c := corrCoef(CorrelatedInstance); c < 0.5 {
		t.Fatalf("correlated instance corr=%v, want >0.5", c)
	}
	if c := corrCoef(AntiCorrelatedInstance); c > -0.5 {
		t.Fatalf("anti-correlated instance corr=%v, want <-0.5", c)
	}
	if c := corrCoef(UniformInstance); math.Abs(c) > 0.2 {
		t.Fatalf("uniform instance corr=%v, want ~0", c)
	}
}

func TestNewInstanceDefaults(t *testing.T) {
	inst := NewInstance(InstanceConfig{Seed: 1, VMs: 5}) // zero capacity/bounds → defaults
	if inst.Capacity.Zero() {
		t.Fatal("default capacity missing")
	}
	for _, vm := range inst.VMs {
		if vm.Requested.CPU <= 0 {
			t.Fatalf("degenerate demand: %v", vm.Requested)
		}
	}
}

func TestInstanceKindString(t *testing.T) {
	if UniformInstance.String() != "uniform" || CorrelatedInstance.String() != "correlated" || AntiCorrelatedInstance.String() != "anti-correlated" {
		t.Fatal("kind strings")
	}
}

func TestGrid5000Topology(t *testing.T) {
	top := Grid5000Topology(144, 12)
	if len(top.Nodes) != 144 || top.GMs != 12 || top.EPs != 2 {
		t.Fatalf("topology: %d nodes, %d GMs, %d EPs", len(top.Nodes), top.GMs, top.EPs)
	}
	total := top.TotalCapacity()
	if total.CPU != 144*8 || total.Memory != 144*32768 {
		t.Fatalf("total capacity: %v", total)
	}
	// IDs unique.
	seen := map[types.NodeID]bool{}
	for _, n := range top.Nodes {
		if seen[n.ID] {
			t.Fatalf("duplicate node ID %s", n.ID)
		}
		seen[n.ID] = true
	}
}

func TestSampledTraceInterpolation(t *testing.T) {
	tr := SampledTrace{
		Step: time.Minute,
		Samples: []types.ResourceVector{
			types.RV(0, 0, 0, 0),
			types.RV(1, 1, 1, 1),
			types.RV(0.5, 0.5, 0.5, 0.5),
		},
	}
	if got := tr.At(0); got.CPU != 0 {
		t.Fatalf("t=0: %v", got)
	}
	if got := tr.At(30 * time.Second); math.Abs(got.CPU-0.5) > 1e-9 {
		t.Fatalf("midpoint: %v", got)
	}
	if got := tr.At(time.Minute); got.CPU != 1 {
		t.Fatalf("t=1m: %v", got)
	}
	if got := tr.At(90 * time.Second); math.Abs(got.CPU-0.75) > 1e-9 {
		t.Fatalf("t=1.5m: %v", got)
	}
	// Non-cyclic: holds the last sample forever.
	if got := tr.At(time.Hour); math.Abs(got.CPU-0.5) > 1e-9 {
		t.Fatalf("hold: %v", got)
	}
}

func TestSampledTraceCycle(t *testing.T) {
	tr := SampledTrace{
		Step:    time.Minute,
		Samples: []types.ResourceVector{types.RV(0, 0, 0, 0), types.RV(1, 1, 1, 1)},
		Cycle:   true,
	}
	// Span is 2 minutes; t=2m wraps to t=0.
	if got := tr.At(2 * time.Minute); math.Abs(got.CPU) > 1e-9 {
		t.Fatalf("wrap: %v", got)
	}
	// Between the last sample and the wrap, interpolate toward sample 0.
	if got := tr.At(90 * time.Second); math.Abs(got.CPU-0.5) > 1e-9 {
		t.Fatalf("wrap interpolation: %v", got)
	}
	// Periodicity.
	a, b := tr.At(30*time.Second), tr.At(2*time.Minute+30*time.Second)
	if math.Abs(a.CPU-b.CPU) > 1e-9 {
		t.Fatalf("not periodic: %v vs %v", a, b)
	}
}

func TestSampledTraceEdge(t *testing.T) {
	if got := (SampledTrace{}).At(time.Minute); !got.Zero() {
		t.Fatalf("empty: %v", got)
	}
	one := SampledTrace{Step: time.Minute, Samples: []types.ResourceVector{types.RV(0.3, 0.3, 0.3, 0.3)}}
	if got := one.At(5 * time.Hour); math.Abs(got.CPU-0.3) > 1e-9 {
		t.Fatalf("single sample: %v", got)
	}
	// Zero step defaults to a minute rather than dividing by zero.
	d := SampledTrace{Samples: []types.ResourceVector{types.RV(0.1, 0, 0, 0), types.RV(0.2, 0, 0, 0)}}
	_ = d.At(30 * time.Second)
	if d.Name() != "sampled" {
		t.Fatal("name")
	}
}
