// Package workload generates the synthetic workloads driving every
// experiment: per-VM utilization traces, VM submission request streams and
// cluster topologies.
//
// The paper's evaluations used real applications on Grid'5000 (up to 500 VMs
// on 144 nodes, Section II-F) and randomly generated consolidation instances
// (ref [10], Section III-B). Since neither the applications nor the exact
// instances are available, this package provides seeded generators producing
// the same workload classes: flat reservations for placement experiments,
// uniform and correlated random demands for consolidation instances, and
// time-varying traces (diurnal, bursty, random-walk, on/off) for the energy
// and relocation experiments. All generators are deterministic per seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"snooze/internal/types"
)

// ---------------------------------------------------------------------------
// Utilization traces
// ---------------------------------------------------------------------------

// Trace yields the utilization of a VM as a fraction of its requested
// capacity at a given virtual time. Implementations must be deterministic
// functions of (seed, time).
type Trace interface {
	// At returns the demand fraction (>= 0, usually <= 1) per dimension at
	// time t. A fraction of 1 means "uses everything it reserved".
	At(t time.Duration) types.ResourceVector
	// Name identifies the trace class in experiment output.
	Name() string
}

// FlatTrace uses a constant fraction of the reservation on all dimensions.
type FlatTrace struct {
	Fraction float64
}

// At implements Trace.
func (f FlatTrace) At(time.Duration) types.ResourceVector {
	return types.RV(f.Fraction, f.Fraction, f.Fraction, f.Fraction)
}

// Name implements Trace.
func (f FlatTrace) Name() string { return fmt.Sprintf("flat(%.2f)", f.Fraction) }

// DiurnalTrace models the day/night load pattern of interactive services:
// a sinusoid with the given period between Low and High CPU fraction, with a
// per-VM phase shift. Memory stays at MemFraction (memory of real services
// varies little); network follows CPU.
type DiurnalTrace struct {
	Low, High   float64
	MemFraction float64
	Period      time.Duration
	Phase       time.Duration
}

// At implements Trace.
func (d DiurnalTrace) At(t time.Duration) types.ResourceVector {
	period := d.Period
	if period <= 0 {
		period = 24 * time.Hour
	}
	x := 2 * math.Pi * float64(t+d.Phase) / float64(period)
	cpu := d.Low + (d.High-d.Low)*(0.5-0.5*math.Cos(x))
	return types.RV(cpu, d.MemFraction, cpu, cpu)
}

// Name implements Trace.
func (d DiurnalTrace) Name() string { return "diurnal" }

// OnOffTrace alternates between a busy fraction and (nearly) zero, modelling
// batch jobs: Busy for OnFor, then idle for OffFor, repeating.
type OnOffTrace struct {
	Busy         float64
	OnFor        time.Duration
	OffFor       time.Duration
	StartOffset  time.Duration
	IdleFraction float64 // demand while "off"; default 0
}

// At implements Trace.
func (o OnOffTrace) At(t time.Duration) types.ResourceVector {
	cycle := o.OnFor + o.OffFor
	if cycle <= 0 {
		return types.RV(o.Busy, o.Busy, o.Busy, o.Busy)
	}
	pos := (t + o.StartOffset) % cycle
	if pos < o.OnFor {
		return types.RV(o.Busy, o.Busy, o.Busy, o.Busy)
	}
	f := o.IdleFraction
	return types.RV(f, f, f, f)
}

// Name implements Trace.
func (o OnOffTrace) Name() string { return "onoff" }

// RandomWalkTrace is a bounded random walk sampled on a fixed step grid; the
// value at any t is deterministic in (Seed, t). It models the noisy CPU of
// general-purpose VMs.
type RandomWalkTrace struct {
	Seed     int64
	Step     time.Duration
	Volatile float64 // max per-step change, e.g. 0.1
	Start    float64
	Min, Max float64
	MemBase  float64
}

// At implements Trace. The walk is replayed from 0 to t; steps are O(t/Step)
// but traces are sampled on coarse monitoring intervals so this stays cheap,
// and determinism matters more than speed here.
func (r RandomWalkTrace) At(t time.Duration) types.ResourceVector {
	step := r.Step
	if step <= 0 {
		step = time.Minute
	}
	n := int(t / step)
	rng := rand.New(rand.NewSource(r.Seed))
	v := r.Start
	lo, hi := r.Min, r.Max
	if hi <= lo {
		lo, hi = 0, 1
	}
	for i := 0; i < n; i++ {
		v += (rng.Float64()*2 - 1) * r.Volatile
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
	}
	return types.RV(v, r.MemBase, v, v)
}

// Name implements Trace.
func (r RandomWalkTrace) Name() string { return "randomwalk" }

// BurstyTrace is a low baseline with deterministic pseudo-random bursts to a
// high fraction, modelling spiky web workloads that trigger overload
// relocation.
type BurstyTrace struct {
	Seed      int64
	Baseline  float64
	BurstTo   float64
	BurstProb float64 // probability a given slot is a burst
	Slot      time.Duration
	MemBase   float64
}

// At implements Trace.
func (b BurstyTrace) At(t time.Duration) types.ResourceVector {
	slot := b.Slot
	if slot <= 0 {
		slot = 5 * time.Minute
	}
	idx := int64(t / slot)
	// Hash the slot index with the seed for O(1) deterministic lookup.
	h := uint64(b.Seed)*0x9E3779B97F4A7C15 + uint64(idx)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	u := float64(h%1e9) / 1e9
	cpu := b.Baseline
	if u < b.BurstProb {
		cpu = b.BurstTo
	}
	return types.RV(cpu, b.MemBase, cpu, cpu)
}

// Name implements Trace.
func (b BurstyTrace) Name() string { return "bursty" }

// SampledTrace replays recorded utilization samples (e.g. from a production
// monitoring system) with linear interpolation between points and optional
// cyclic repetition — the hook for driving experiments from real traces
// instead of synthetic generators.
type SampledTrace struct {
	// Step is the sampling interval of Samples.
	Step time.Duration
	// Samples are per-interval demand fractions.
	Samples []types.ResourceVector
	// Cycle repeats the trace when t runs past the end; otherwise the last
	// sample holds forever.
	Cycle bool
}

// At implements Trace.
func (s SampledTrace) At(t time.Duration) types.ResourceVector {
	if len(s.Samples) == 0 {
		return types.ResourceVector{}
	}
	step := s.Step
	if step <= 0 {
		step = time.Minute
	}
	span := step * time.Duration(len(s.Samples))
	if s.Cycle {
		t %= span
		if t < 0 {
			t += span
		}
	} else if t >= span-step {
		return s.Samples[len(s.Samples)-1]
	}
	idx := int(t / step)
	if idx >= len(s.Samples)-1 {
		// Cyclic wrap interpolates toward the first sample.
		if s.Cycle {
			frac := float64(t-time.Duration(idx)*step) / float64(step)
			last, first := s.Samples[len(s.Samples)-1], s.Samples[0]
			return last.Scale(1 - frac).Add(first.Scale(frac))
		}
		return s.Samples[len(s.Samples)-1]
	}
	frac := float64(t-time.Duration(idx)*step) / float64(step)
	return s.Samples[idx].Scale(1 - frac).Add(s.Samples[idx+1].Scale(frac))
}

// Name implements Trace.
func (s SampledTrace) Name() string { return "sampled" }

// ---------------------------------------------------------------------------
// Trace registry
// ---------------------------------------------------------------------------

// Registry maps trace IDs (carried in VMSpec.TraceID) to Trace instances so
// that the hypervisor can evaluate a VM's demand over time.
type Registry struct {
	traces map[string]Trace
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{traces: make(map[string]Trace)}
}

// Register adds tr under id, replacing any previous registration.
func (r *Registry) Register(id string, tr Trace) { r.traces[id] = tr }

// Lookup returns the trace for id. Unknown (or empty) IDs return a flat
// trace at 100% of reservation, the conservative default.
func (r *Registry) Lookup(id string) Trace {
	if tr, ok := r.traces[id]; ok {
		return tr
	}
	return FlatTrace{Fraction: 1}
}

// Len returns the number of registered traces.
func (r *Registry) Len() int { return len(r.traces) }

// ---------------------------------------------------------------------------
// VM request generation
// ---------------------------------------------------------------------------

// VMClass is a template for generating VM reservations, mirroring the
// instance-type model of IaaS clouds.
type VMClass struct {
	Name     string
	Capacity types.ResourceVector
	Weight   float64 // relative frequency
}

// DefaultVMClasses models the small/medium/large/xlarge mix typical of the
// period's EC2-style offerings, scaled to the simulated node size.
func DefaultVMClasses() []VMClass {
	return []VMClass{
		{Name: "small", Capacity: types.RV(1, 1024, 50, 50), Weight: 4},
		{Name: "medium", Capacity: types.RV(2, 2048, 100, 100), Weight: 3},
		{Name: "large", Capacity: types.RV(4, 4096, 200, 200), Weight: 2},
		{Name: "xlarge", Capacity: types.RV(8, 8192, 400, 400), Weight: 1},
	}
}

// Generator produces deterministic VM submission streams.
type Generator struct {
	rng     *rand.Rand
	classes []VMClass
	cum     []float64
	total   float64
	next    int
}

// NewGenerator creates a generator over the given classes (DefaultVMClasses
// when nil) seeded with seed.
func NewGenerator(seed int64, classes []VMClass) *Generator {
	if len(classes) == 0 {
		classes = DefaultVMClasses()
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed)), classes: classes}
	for _, c := range classes {
		g.total += c.Weight
		g.cum = append(g.cum, g.total)
	}
	return g
}

// Next returns the next VM spec, drawing a class proportionally to weight.
func (g *Generator) Next() types.VMSpec {
	u := g.rng.Float64() * g.total
	cls := g.classes[len(g.classes)-1]
	for i, c := range g.cum {
		if u <= c {
			cls = g.classes[i]
			break
		}
	}
	g.next++
	return types.VMSpec{
		ID:        types.VMID(fmt.Sprintf("vm-%s-%04d", cls.Name, g.next)),
		Requested: cls.Capacity,
	}
}

// Batch returns n specs.
func (g *Generator) Batch(n int) []types.VMSpec {
	out := make([]types.VMSpec, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// ---------------------------------------------------------------------------
// Consolidation instances (ref [10] style)
// ---------------------------------------------------------------------------

// Instance is one consolidation problem: items (VM demands), identical bins
// (node capacity) and the node inventory large enough to hold a trivial
// one-VM-per-node solution.
type Instance struct {
	VMs      []types.VMSpec
	Demand   map[types.VMID]types.ResourceVector
	Nodes    []types.NodeSpec
	Capacity types.ResourceVector
}

// InstanceKind selects the demand distribution of generated instances.
type InstanceKind int

// Instance kinds per the consolidation literature the paper draws on.
const (
	// UniformInstance draws each dimension independently uniform in
	// [lo, hi] fractions of node capacity.
	UniformInstance InstanceKind = iota
	// CorrelatedInstance draws CPU uniform and makes the other dimensions
	// positively correlated with it (real VMs' memory/network correlate
	// with CPU), which is the harder packing case for single-dimension FFD
	// — the weakness the paper calls out ("presorting the VMs according to
	// a single dimension").
	CorrelatedInstance
	// AntiCorrelatedInstance makes memory anti-correlated with CPU
	// (cache-heavy vs compute-heavy mix).
	AntiCorrelatedInstance
)

// String implements fmt.Stringer.
func (k InstanceKind) String() string {
	switch k {
	case UniformInstance:
		return "uniform"
	case CorrelatedInstance:
		return "correlated"
	case AntiCorrelatedInstance:
		return "anti-correlated"
	default:
		return fmt.Sprintf("InstanceKind(%d)", int(k))
	}
}

// InstanceConfig parameterizes NewInstance.
type InstanceConfig struct {
	Seed     int64
	VMs      int
	Kind     InstanceKind
	Lo, Hi   float64              // demand fraction bounds per dimension
	Capacity types.ResourceVector // node capacity; default 8 cores / 16 GB / 1 Gb
}

// NewInstance generates a consolidation instance.
func NewInstance(cfg InstanceConfig) Instance {
	if cfg.Capacity.Zero() {
		cfg.Capacity = types.RV(8, 16384, 1000, 1000)
	}
	if cfg.Hi <= cfg.Lo {
		cfg.Lo, cfg.Hi = 0.05, 0.45
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inst := Instance{
		Demand:   make(map[types.VMID]types.ResourceVector, cfg.VMs),
		Capacity: cfg.Capacity,
	}
	span := cfg.Hi - cfg.Lo
	for i := 0; i < cfg.VMs; i++ {
		id := types.VMID(fmt.Sprintf("vm-%04d", i))
		cpuF := cfg.Lo + rng.Float64()*span
		var memF, netF float64
		switch cfg.Kind {
		case CorrelatedInstance:
			// mem/net = cpu +- 20% of span, clamped.
			memF = clamp(cpuF+(rng.Float64()*0.4-0.2)*span, cfg.Lo, cfg.Hi)
			netF = clamp(cpuF+(rng.Float64()*0.4-0.2)*span, cfg.Lo, cfg.Hi)
		case AntiCorrelatedInstance:
			memF = clamp(cfg.Lo+cfg.Hi-cpuF+(rng.Float64()*0.2-0.1)*span, cfg.Lo, cfg.Hi)
			netF = cfg.Lo + rng.Float64()*span
		default:
			memF = cfg.Lo + rng.Float64()*span
			netF = cfg.Lo + rng.Float64()*span
		}
		d := types.ResourceVector{
			CPU:    cpuF * cfg.Capacity.CPU,
			Memory: memF * cfg.Capacity.Memory,
			NetRx:  netF * cfg.Capacity.NetRx,
			NetTx:  netF * cfg.Capacity.NetTx,
		}
		inst.VMs = append(inst.VMs, types.VMSpec{ID: id, Requested: d})
		inst.Demand[id] = d
	}
	for i := 0; i < cfg.VMs; i++ { // one bin per item upper-bounds any packing
		inst.Nodes = append(inst.Nodes, types.NodeSpec{
			ID:       types.NodeID(fmt.Sprintf("node-%04d", i)),
			Capacity: cfg.Capacity,
		})
	}
	return inst
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ---------------------------------------------------------------------------
// Topologies
// ---------------------------------------------------------------------------

// Topology describes a cluster to simulate: its nodes plus the hierarchy
// shape (#GMs, #EPs).
type Topology struct {
	Nodes []types.NodeSpec
	GMs   int
	EPs   int
}

// Grid5000Topology reproduces the paper's testbed shape: n homogeneous nodes
// (144 in the paper) with gms group managers. The per-node capacity matches
// the dual-socket quad-core / 32 GB class of the testbed.
func Grid5000Topology(n, gms int) Topology {
	t := Topology{GMs: gms, EPs: 2}
	for i := 0; i < n; i++ {
		t.Nodes = append(t.Nodes, types.NodeSpec{
			ID:       types.NodeID(fmt.Sprintf("lc-%04d", i)),
			Capacity: types.RV(8, 32768, 1000, 1000),
		})
	}
	return t
}

// TotalCapacity sums node capacity over the topology.
func (t Topology) TotalCapacity() types.ResourceVector {
	var sum types.ResourceVector
	for _, n := range t.Nodes {
		sum = sum.Add(n.Capacity)
	}
	return sum
}
