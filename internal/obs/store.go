package obs

import (
	"sort"
	"sync"
	"time"
)

// Record is one finished span.
type Record struct {
	TraceID string
	SpanID  string
	// Parent is the parent span's ID within the trace (empty for roots).
	Parent string
	Kind   string
	// Entity names the subject, e.g. "vm/web-1" or "node/n3".
	Entity string
	// Policy is the deciding policy's registered name.
	Policy string
	// Target is the chosen destination (node, GM), if any.
	Target  string
	Outcome string
	Start   time.Duration
	End     time.Duration
	// View is the capacity-view evidence the decision was priced from.
	View ViewEvidence
	// Candidates lists every considered target in policy-visit order.
	Candidates []Candidate
	Attrs      map[string]string
}

// ViewEvidence pins the decision to the capacity view it consumed.
type ViewEvidence struct {
	// Gen is the telemetry append generation of the series the view was
	// reduced from (0 when the decision used snapshots only).
	Gen       uint64
	Samples   int
	Fresh     bool
	Truncated bool
}

// Candidate is one considered target and, if rejected, why.
type Candidate struct {
	ID     string
	Chosen bool
	Reason string
}

// Query filters Select. Zero fields match everything.
type Query struct {
	TraceID string
	Entity  string
	Kind    string
}

func (q Query) matches(r *Record) bool {
	if q.TraceID != "" && r.TraceID != q.TraceID {
		return false
	}
	if q.Entity != "" && r.Entity != q.Entity {
		return false
	}
	if q.Kind != "" && r.Kind != q.Kind {
		return false
	}
	return true
}

// Store retains finished spans in lock-sharded bounded rings. Spans are
// sharded by trace ID, so a whole trace is evicted (ring-overwritten)
// together-ish and a trace query touches one shard.
type Store struct {
	mask   uint64
	shards []storeShard
}

type storeShard struct {
	mu   sync.RWMutex
	ring []Record
	head int // next write position
	n    int // valid entries
}

func newStore(shards, capacity int) *Store {
	n := 1
	for n < shards {
		n <<= 1
	}
	st := &Store{mask: uint64(n - 1), shards: make([]storeShard, n)}
	for i := range st.shards {
		st.shards[i].ring = make([]Record, capacity)
	}
	return st
}

// hashKey is FNV-1a, matching internal/telemetry's sharding discipline.
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (st *Store) shardFor(traceID string) *storeShard {
	return &st.shards[hashKey(traceID)&st.mask]
}

func (st *Store) add(r Record) {
	sh := st.shardFor(r.TraceID)
	sh.mu.Lock()
	sh.ring[sh.head] = r
	sh.head = (sh.head + 1) % len(sh.ring)
	if sh.n < len(sh.ring) {
		sh.n++
	}
	sh.mu.Unlock()
}

// Len returns the number of retained spans.
func (st *Store) Len() int {
	total := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		total += sh.n
		sh.mu.RUnlock()
	}
	return total
}

// Select returns copies of the retained spans matching q, ordered by trace
// ID, then start time, then span ID — so a trace reads as a stable
// chronological chain. A query with a TraceID only scans that trace's shard.
func (st *Store) Select(q Query) []Record {
	var out []Record
	collect := func(sh *storeShard) {
		sh.mu.RLock()
		start := sh.head - sh.n
		if start < 0 {
			start += len(sh.ring)
		}
		for i := 0; i < sh.n; i++ {
			r := &sh.ring[(start+i)%len(sh.ring)]
			if q.matches(r) {
				out = append(out, *r)
			}
		}
		sh.mu.RUnlock()
	}
	if q.TraceID != "" {
		collect(st.shardFor(q.TraceID))
	} else {
		for i := range st.shards {
			collect(&st.shards[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TraceID != out[j].TraceID {
			return out[i].TraceID < out[j].TraceID
		}
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}
