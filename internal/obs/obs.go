// Package obs is the decision-tracing subsystem for the autonomic loop.
//
// Every autonomic action — a GL dispatch, a GM placement or relocation, a
// consolidation round and each of its migrations, an energy transition —
// opens a Span. Spans carry a trace ID that is propagated through the
// hierarchy on protocol messages, so a VM's submit→dispatch→place→boot chain
// and a detector-event→relocation→migration chain each share one trace, no
// matter how many managers the decision crossed.
//
// A span records structured decision evidence, not log lines: the policy
// that decided, the capacity-view generation (and its staleness/truncation
// flags) the decision was priced from, every candidate considered with its
// per-candidate rejection reason, the chosen target, and the outcome.
// Finished spans land in a lock-sharded bounded ring Store (the same
// discipline as internal/telemetry.Store): the hot path takes one shard
// lock, old traces are evicted by ring overwrite, and traces can be sampled
// down under load. A nil *Tracer — or a sampled-out trace — costs nothing:
// every Span method is a no-op on the zero value, so instrumentation sites
// record unconditionally.
//
// On Finish a span also feeds the wider observability surface: a
// "<kind>.duration.seconds" observation into the metrics Registry (exported
// as a Prometheus histogram on /metrics) and an optional journal emit hook
// (the decision.trace event), so watch streams correlate with /v1/traces.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"

	"snooze/internal/metrics"
)

// Span kinds used by the hierarchy. Free-form kinds are allowed; these are
// the ones the built-in instrumentation emits.
const (
	KindDispatch               = "dispatch"
	KindPlacement              = "placement"
	KindRelocation             = "relocation"
	KindMigration              = "migration"
	KindEnergy                 = "energy"
	KindConsolidationRound     = "consolidation.round"
	KindConsolidationMigration = "consolidation.migration"
)

// Config parameterizes a Tracer.
type Config struct {
	// Capacity is the per-shard ring size in finished spans (default 256).
	Capacity int
	// Shards is the shard count, rounded up to a power of two (default 8).
	// Spans are sharded by trace ID, so one trace lives in one shard.
	Shards int
	// Sample records every Nth trace (<=1 records all). The decision is
	// made at the trace root; children of a sampled-out root are no-ops.
	Sample int
	// Now supplies timestamps (defaults to wall-clock time since Tracer
	// creation; the sim passes its virtual clock).
	Now func() time.Duration
	// Emit, when set, is invoked once per finished span with the span's
	// entity and summary attributes — the hook the cluster uses to publish
	// decision.trace journal events without obs importing telemetry.
	Emit func(entity string, attrs map[string]string)
	// Metrics, when set, receives a "<kind>.duration.seconds" observation
	// per finished span, feeding the Prometheus latency histograms.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Now == nil {
		start := time.Now()
		c.Now = func() time.Duration { return time.Since(start) }
	}
	return c
}

// Tracer creates spans and owns the finished-span store. A nil *Tracer is a
// valid disabled tracer: StartTrace and StartSpan return no-op spans.
type Tracer struct {
	cfg    Config
	store  *Store
	ids    atomic.Uint64 // span/trace ID counter
	traces atomic.Uint64 // root counter, drives sampling
}

// New creates a Tracer.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{cfg: cfg, store: newStore(cfg.Shards, cfg.Capacity)}
}

// SpanContext identifies a span for parent/child linking and for carrying a
// trace across protocol messages.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context identifies a real (recorded) span.
func (c SpanContext) Valid() bool { return c.TraceID != "" && c.SpanID != "" }

func (t *Tracer) nextID() string {
	return fmt.Sprintf("%016x", t.ids.Add(1))
}

// StartTrace opens a root span, beginning a new trace. The sampling decision
// is made here: a sampled-out trace returns a no-op span whose context is
// invalid, so children (local or remote) are no-ops too.
func (t *Tracer) StartTrace(kind, entity string) Span {
	if t == nil {
		return Span{}
	}
	n := t.traces.Add(1)
	if t.cfg.Sample > 1 && n%uint64(t.cfg.Sample) != 0 {
		return Span{}
	}
	id := t.nextID()
	return Span{t: t, rec: &Record{
		TraceID: id,
		SpanID:  id,
		Kind:    kind,
		Entity:  entity,
		Start:   t.cfg.Now(),
	}}
}

// StartSpan opens a child span under parent. An invalid parent (the trace
// was sampled out, or the message arrived untraced) yields a no-op span.
func (t *Tracer) StartSpan(kind, entity string, parent SpanContext) Span {
	if t == nil || !parent.Valid() {
		return Span{}
	}
	return Span{t: t, rec: &Record{
		TraceID: parent.TraceID,
		SpanID:  t.nextID(),
		Parent:  parent.SpanID,
		Kind:    kind,
		Entity:  entity,
		Start:   t.cfg.Now(),
	}}
}

// Select returns finished spans matching q; see Store.Select.
func (t *Tracer) Select(q Query) []Record {
	if t == nil {
		return nil
	}
	return t.store.Select(q)
}

// Len returns the number of finished spans currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.store.Len()
}

// Span is one in-flight decision. The zero value is a valid no-op span —
// every method returns immediately — so call sites record evidence
// unconditionally and the disabled path stays allocation-free.
type Span struct {
	t   *Tracer
	rec *Record
}

// Enabled reports whether the span records anything.
func (s Span) Enabled() bool { return s.rec != nil }

// Context returns the span's identity for child linking and protocol
// propagation. Invalid (empty) for no-op spans.
func (s Span) Context() SpanContext {
	if s.rec == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID}
}

// SetPolicy records the deciding policy's name.
func (s Span) SetPolicy(name string) {
	if s.rec != nil {
		s.rec.Policy = name
	}
}

// SetTarget records the chosen target (node, GM, ...).
func (s Span) SetTarget(id string) {
	if s.rec != nil {
		s.rec.Target = id
	}
}

// SetView records the capacity-view evidence the decision was priced from.
func (s Span) SetView(gen uint64, samples int, fresh, truncated bool) {
	if s.rec != nil {
		s.rec.View = ViewEvidence{Gen: gen, Samples: samples, Fresh: fresh, Truncated: truncated}
	}
}

// Candidate records one considered candidate; reason is empty unless the
// candidate was rejected.
func (s Span) Candidate(id string, chosen bool, reason string) {
	if s.rec != nil {
		s.rec.Candidates = append(s.rec.Candidates, Candidate{ID: id, Chosen: chosen, Reason: reason})
	}
}

// Annotate attaches a free-form key/value to the span.
func (s Span) Annotate(k, v string) {
	if s.rec == nil {
		return
	}
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[k] = v
}

// Finish completes the span with an outcome, stores it, observes its
// duration into the metrics registry and fires the emit hook. The span must
// not be used afterwards.
func (s Span) Finish(outcome string) {
	if s.rec == nil {
		return
	}
	rec := s.rec
	rec.Outcome = outcome
	rec.End = s.t.cfg.Now()
	s.t.store.add(*rec)
	if s.t.cfg.Metrics != nil {
		s.t.cfg.Metrics.Observe(rec.Kind+".duration.seconds", (rec.End - rec.Start).Seconds())
	}
	if s.t.cfg.Emit != nil {
		attrs := map[string]string{
			"trace":   rec.TraceID,
			"span":    rec.SpanID,
			"kind":    rec.Kind,
			"outcome": outcome,
		}
		if rec.Target != "" {
			attrs["target"] = rec.Target
		}
		s.t.cfg.Emit(rec.Entity, attrs)
	}
}
