package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceChain(t *testing.T) {
	tr := New(Config{Now: func() time.Duration { return 0 }})
	root := tr.StartTrace(KindDispatch, "vm/a")
	if !root.Enabled() {
		t.Fatal("root span should be enabled")
	}
	root.SetPolicy("round-robin")
	root.Candidate("gm-0", false, "no-fit")
	root.Candidate("gm-1", true, "")
	root.SetTarget("gm-1")
	root.SetView(7, 12, true, false)
	root.Annotate("node", "n3")

	child := tr.StartSpan(KindPlacement, "vm/a", root.Context())
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child must share the root's trace ID")
	}
	child.Finish("placed")
	root.Finish("placed")

	recs := tr.Select(Query{TraceID: root.Context().TraceID})
	if len(recs) != 2 {
		t.Fatalf("Select(trace) = %d spans, want 2", len(recs))
	}
	var rootRec, childRec *Record
	for i := range recs {
		if recs[i].Parent == "" {
			rootRec = &recs[i]
		} else {
			childRec = &recs[i]
		}
	}
	if rootRec == nil || childRec == nil {
		t.Fatalf("want one root and one child, got %+v", recs)
	}
	if childRec.Parent != rootRec.SpanID {
		t.Fatalf("child.Parent = %q, want %q", childRec.Parent, rootRec.SpanID)
	}
	if rootRec.Policy != "round-robin" || rootRec.Target != "gm-1" {
		t.Fatalf("evidence lost: %+v", rootRec)
	}
	if rootRec.View.Gen != 7 || rootRec.View.Samples != 12 || !rootRec.View.Fresh {
		t.Fatalf("view evidence lost: %+v", rootRec.View)
	}
	if len(rootRec.Candidates) != 2 || rootRec.Candidates[0].Reason != "no-fit" {
		t.Fatalf("candidates lost: %+v", rootRec.Candidates)
	}
	if rootRec.Attrs["node"] != "n3" {
		t.Fatalf("attrs lost: %+v", rootRec.Attrs)
	}

	if got := tr.Select(Query{Entity: "vm/a", Kind: KindPlacement}); len(got) != 1 {
		t.Fatalf("Select(entity,kind) = %d spans, want 1", len(got))
	}
}

func TestNoopSpans(t *testing.T) {
	// A nil tracer and a zero-value span must absorb every call.
	var tr *Tracer
	sp := tr.StartTrace(KindDispatch, "vm/a")
	if sp.Enabled() || sp.Context().Valid() {
		t.Fatal("nil tracer must return a disabled span")
	}
	sp.SetPolicy("p")
	sp.SetTarget("t")
	sp.SetView(1, 2, true, true)
	sp.Candidate("c", false, "r")
	sp.Annotate("k", "v")
	sp.Finish("ok")
	if tr.Len() != 0 || tr.Select(Query{}) != nil {
		t.Fatal("nil tracer must retain nothing")
	}

	// A child under an invalid parent (untraced message) is a no-op too.
	real := New(Config{})
	child := real.StartSpan(KindPlacement, "vm/a", SpanContext{})
	child.Finish("ok")
	if real.Len() != 0 {
		t.Fatalf("child of invalid parent recorded: Len = %d", real.Len())
	}
}

func TestSampling(t *testing.T) {
	tr := New(Config{Sample: 4, Now: func() time.Duration { return 0 }})
	enabled := 0
	for i := 0; i < 100; i++ {
		sp := tr.StartTrace(KindDispatch, "vm/a")
		if sp.Enabled() {
			enabled++
			// Children of a kept root are kept; children of a sampled-out
			// root (invalid context) are no-ops.
			if !tr.StartSpan(KindPlacement, "vm/a", sp.Context()).Enabled() {
				t.Fatal("child of a sampled-in root must be enabled")
			}
		} else if tr.StartSpan(KindPlacement, "vm/a", sp.Context()).Enabled() {
			t.Fatal("child of a sampled-out root must be disabled")
		}
		sp.Finish("ok")
	}
	if enabled != 25 {
		t.Fatalf("Sample=4 kept %d of 100 traces, want 25", enabled)
	}
}

func TestStoreEviction(t *testing.T) {
	const capacity = 8
	st := newStore(1, capacity) // one shard: deterministic eviction order
	for i := 0; i < 3*capacity; i++ {
		st.add(Record{TraceID: fmt.Sprintf("t%03d", i), SpanID: "s", Kind: KindDispatch})
	}
	if st.Len() != capacity {
		t.Fatalf("Len = %d, want %d", st.Len(), capacity)
	}
	recs := st.Select(Query{})
	if len(recs) != capacity {
		t.Fatalf("Select = %d, want %d", len(recs), capacity)
	}
	// The ring must retain exactly the newest `capacity` records.
	for i, r := range recs {
		want := fmt.Sprintf("t%03d", 2*capacity+i)
		if r.TraceID != want {
			t.Fatalf("recs[%d].TraceID = %q, want %q (oldest must be evicted)", i, r.TraceID, want)
		}
	}
	// An evicted trace is gone; a retained one is found via its single shard.
	if got := st.Select(Query{TraceID: "t000"}); len(got) != 0 {
		t.Fatalf("evicted trace still selectable: %+v", got)
	}
	if got := st.Select(Query{TraceID: recs[0].TraceID}); len(got) != 1 {
		t.Fatalf("retained trace not selectable by ID")
	}
}

func TestConcurrentSpanFinish(t *testing.T) {
	// Exercised under -race in CI: concurrent roots, children, queries.
	tr := New(Config{Capacity: 64, Shards: 4})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			entity := fmt.Sprintf("vm/%d", w)
			for i := 0; i < perWorker; i++ {
				root := tr.StartTrace(KindDispatch, entity)
				root.Candidate("gm-0", true, "")
				child := tr.StartSpan(KindPlacement, entity, root.Context())
				child.Finish("placed")
				root.Finish("placed")
				if i%32 == 0 {
					tr.Select(Query{Entity: entity})
					tr.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if got, max := tr.Len(), 4*64; got > max {
		t.Fatalf("Len = %d exceeds store capacity %d", got, max)
	}
}

// BenchmarkDecisionSpan measures the disabled path a nil tracer takes at
// every instrumentation site — it must stay allocation-free.
func BenchmarkDecisionSpan(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var tr *Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.StartTrace(KindDispatch, "vm/a")
			sp.SetPolicy("p")
			sp.Candidate("gm-0", true, "")
			sp.Finish("ok")
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tr := New(Config{Now: func() time.Duration { return 0 }})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.StartTrace(KindDispatch, "vm/a")
			sp.SetPolicy("p")
			sp.Candidate("gm-0", true, "")
			sp.Finish("ok")
		}
	})
}

func BenchmarkTraceStoreAppend(b *testing.B) {
	st := newStore(8, 256)
	rec := Record{TraceID: "0000000000000001", SpanID: "0000000000000002", Kind: KindPlacement, Entity: "vm/a"}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r := rec
			r.TraceID = fmt.Sprintf("%016x", i)
			st.add(r)
			i++
		}
	})
}
