package telemetry

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"snooze/internal/types"
)

// fillSeries appends n samples to (entity, metric) at step intervals and
// returns every sample appended — the brute-force reference history.
func fillSeries(s *Store, entity, metric string, n int, step time.Duration) []Sample {
	ref := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * step
		v := float64(i%17) + 0.25
		s.Append(entity, metric, at, v)
		ref = append(ref, Sample{At: at, Value: v})
	}
	return ref
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cfg := StoreConfig{
		SeriesCapacity: 16,
		Tiers:          []TierConfig{{Step: 10 * time.Second, Capacity: 4}, {Step: time.Minute, Capacity: 4}},
	}
	src := NewStore(cfg)
	keys := []Key{
		{Entity: "node/n1", Metric: "util"},
		{Entity: "node/n1", Metric: "cpu.used"},
		{Entity: "node/n2", Metric: "util"},
	}
	refs := map[Key][]Sample{}
	for i, k := range keys {
		// Enough samples to wrap the raw ring and cascade through both tiers.
		refs[k] = fillSeries(src, k.Entity, k.Metric, 200+10*i, time.Second)
	}

	snap := src.Snapshot(nil)
	if len(snap.Series) != len(keys) {
		t.Fatalf("snapshot has %d series, want %d", len(snap.Series), len(keys))
	}

	dst := NewStore(cfg)
	if got := dst.Restore(snap); got != len(keys) {
		t.Fatalf("Restore adopted %d series, want %d", got, len(keys))
	}

	horizon := 400 * time.Second
	for _, k := range keys {
		// Stitched queries over the full range must agree exactly.
		want := src.Query(k.Entity, k.Metric, 0, horizon)
		got := dst.Query(k.Entity, k.Metric, 0, horizon)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: restored Query mismatch:\n got %v\nwant %v", k, got, want)
		}
		// The raw window must equal the brute-force reference tail.
		ref := refs[k]
		rawRef := ref[len(ref)-cfg.SeriesCapacity:]
		var raw []Sample
		dst.Window(k.Entity, k.Metric, 0, horizon, func(seg []Sample) {
			raw = append(raw, seg...)
		})
		if !reflect.DeepEqual(raw, rawRef) {
			t.Fatalf("%v: restored raw window mismatch:\n got %v\nwant %v", k, raw, rawRef)
		}
		// Watermarks, retention metadata and generations survive.
		wantInfo, _ := src.Info(k.Entity, k.Metric)
		gotInfo, ok := dst.Info(k.Entity, k.Metric)
		if !ok || !reflect.DeepEqual(gotInfo, wantInfo) {
			t.Fatalf("%v: restored Info mismatch:\n got %+v\nwant %+v", k, gotInfo, wantInfo)
		}
		if got, want := dst.Generation(k.Entity, k.Metric), src.Generation(k.Entity, k.Metric); got != want {
			t.Fatalf("%v: restored generation %d, want %d", k, got, want)
		}
	}
}

func TestRestoreKeepsFresherLocalSeries(t *testing.T) {
	src := NewStore(StoreConfig{SeriesCapacity: 8, Tiers: NoTiers})
	fillSeries(src, "node/n1", "util", 5, time.Second)
	snap := src.Snapshot(nil)

	dst := NewStore(StoreConfig{SeriesCapacity: 8, Tiers: NoTiers})
	dst.Append("node/n1", "util", 10*time.Second, 0.9) // newer than the snapshot
	if got := dst.Restore(snap); got != 0 {
		t.Fatalf("Restore adopted %d series over fresher local data, want 0", got)
	}
	if n := dst.Len("node/n1", "util"); n != 1 {
		t.Fatalf("local series was replaced: len %d, want 1", n)
	}
}

func TestRestoreAdvancesGenerations(t *testing.T) {
	src := NewStore(StoreConfig{SeriesCapacity: 8, Tiers: NoTiers})
	fillSeries(src, "node/n1", "util", 6, time.Second)
	snap := src.Snapshot(nil)
	restoredGen := src.Generation("node/n1", "util")

	dst := NewStore(StoreConfig{SeriesCapacity: 8, Tiers: NoTiers})
	dst.Restore(snap)
	dst.Append("node/n2", "util", time.Second, 0.5)
	if g := dst.Generation("node/n2", "util"); g <= restoredGen {
		t.Fatalf("post-restore append generation %d not above restored generation %d", g, restoredGen)
	}
}

func TestJournalImportIdempotent(t *testing.T) {
	src := NewJournal(32)
	for i := 0; i < 10; i++ {
		src.Publish(Event{At: time.Duration(i) * time.Second, Type: "vm.state", Entity: fmt.Sprintf("vm/v%d", i)})
	}
	segment := src.Replay(1, 0)

	dst := NewJournal(32)
	if got := dst.Import(segment); got != 10 {
		t.Fatalf("first Import adopted %d, want 10", got)
	}
	if got := dst.Import(segment); got != 0 {
		t.Fatalf("second Import adopted %d, want 0 (idempotence)", got)
	}
	if got, want := dst.Replay(1, 0), segment; !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after import mismatch:\n got %v\nwant %v", got, want)
	}
	if got, want := dst.LastSeq(), src.LastSeq(); got != want {
		t.Fatalf("LastSeq %d, want %d", got, want)
	}
	// New publishes continue past the imported tail.
	ev := dst.Publish(Event{Type: "node.normal"})
	if ev.Seq != src.LastSeq()+1 {
		t.Fatalf("post-import publish got seq %d, want %d", ev.Seq, src.LastSeq()+1)
	}
}

func TestJournalImportSkipsOverlap(t *testing.T) {
	src := NewJournal(32)
	for i := 0; i < 8; i++ {
		src.Publish(Event{Type: "vm.state"})
	}
	dst := NewJournal(32)
	dst.Import(src.Replay(1, 5)) // seqs 1..5
	if got := dst.Import(src.Replay(3, 0)); got != 3 {
		t.Fatalf("overlapping Import adopted %d, want 3 (seqs 6..8)", got)
	}
	if got := dst.LastSeq(); got != 8 {
		t.Fatalf("LastSeq %d, want 8", got)
	}
}

func TestDetectorExportImport(t *testing.T) {
	node := func(util float64, vms int) types.NodeStatus {
		st := types.NodeStatus{
			Spec:  types.NodeSpec{ID: "n1", Capacity: types.RV(10, 1000, 100, 100)},
			Power: types.PowerOn,
			Used:  types.RV(util*10, 0, 0, 0),
		}
		for i := 0; i < vms; i++ {
			st.VMs = append(st.VMs, types.VMID(fmt.Sprintf("v%d", i)))
		}
		return st
	}
	src := NewDetector(Thresholds{Overload: 0.9, Underload: 0.2, Repeat: 15 * time.Second})
	if _, fired := src.Observe("node/n1", time.Second, node(0.95, 2)); !fired {
		t.Fatal("overload crossing did not fire")
	}

	entries := src.Export(nil)
	if len(entries) != 1 || entries[0].Condition != "overload" || !entries[0].Announced {
		t.Fatalf("unexpected export: %+v", entries)
	}

	dst := NewDetector(Thresholds{Overload: 0.9, Underload: 0.2, Repeat: 15 * time.Second})
	if got := dst.Import(entries); got != 1 {
		t.Fatalf("Import adopted %d, want 1", got)
	}
	if c := dst.Condition("node/n1"); c != "overload" {
		t.Fatalf("imported condition %q, want overload", c)
	}
	// A persisting overload inside the Repeat cooldown must NOT re-fire on
	// the successor — the imported lastAnomaly re-arms the suppression.
	if _, fired := dst.Observe("node/n1", 5*time.Second, node(0.95, 2)); fired {
		t.Fatal("imported cooldown did not suppress re-emission")
	}
	// The recovery pairs with the imported announced flag.
	ev, fired := dst.Observe("node/n1", 6*time.Second, node(0.5, 2))
	if !fired || ev.Type != EventNodeNormal {
		t.Fatalf("recovery after import: fired=%v type=%q, want node.normal", fired, ev.Type)
	}
	// Live local state wins over a second import.
	if got := dst.Import(entries); got != 0 {
		t.Fatalf("re-Import adopted %d, want 0", got)
	}
}

func TestHubSnapshotOwnerFiltered(t *testing.T) {
	h := NewHub(Options{Store: StoreConfig{SeriesCapacity: 8, Tiers: NoTiers}})
	now := 30 * time.Second
	h.Record("node/a1", "util", now, 0.4)
	h.Record("node/b1", "util", now, 0.5)
	h.Record("gm/gm-a", "util", now, 0.3)
	h.Record("gm/gm-b", "util", now, 0.6)
	h.Claim("node/a1", "gm-a")
	h.Claim("node/b1", "gm-b")
	h.Emit("node.overload", "node/a1", now, Attrs{})

	snap := h.Snapshot(now, "gm-a")
	var entities []string
	for _, ss := range snap.Store.Series {
		entities = append(entities, ss.Entity)
	}
	want := []string{"gm/gm-a", "node/a1"}
	if !reflect.DeepEqual(entities, want) {
		t.Fatalf("owner-filtered snapshot entities %v, want %v", entities, want)
	}
	if _, ok := snap.Owners["node/b1"]; ok {
		t.Fatal("foreign owner stamp leaked into the snapshot")
	}
	if snap.BaseSeq != h.Journal().LastSeq() {
		t.Fatalf("BaseSeq %d, want journal LastSeq %d", snap.BaseSeq, h.Journal().LastSeq())
	}

	// Restore into a fresh hub: series, owner stamp and journal tail arrive.
	tail := h.Journal().Replay(snap.BaseSeq, 0)
	dst := NewHub(Options{Store: StoreConfig{SeriesCapacity: 8, Tiers: NoTiers}})
	adopted, imported := dst.Restore(snap, tail)
	if adopted != 2 || imported != len(tail) {
		t.Fatalf("Restore adopted %d series / %d events, want 2 / %d", adopted, imported, len(tail))
	}
	if owner, ok := dst.Owner("node/a1"); !ok || owner != "gm-a" {
		t.Fatalf("restored owner = %q, %v; want gm-a, true", owner, ok)
	}
}

func TestValidSample(t *testing.T) {
	for _, tc := range []struct {
		v  float64
		ok bool
	}{
		{0, true}, {0.5, true}, {1e9, true},
		{-0.001, false}, {math.NaN(), false}, {math.Inf(1), false}, {math.Inf(-1), false},
	} {
		if got := ValidSample(tc.v); got != tc.ok {
			t.Errorf("ValidSample(%v) = %v, want %v", tc.v, got, tc.ok)
		}
	}
}

// BenchmarkSnapshotRestore measures a full snapshot+restore cycle of a
// 64-node fleet's worth of series — the cost of one GM state-sync push plus
// the successor's bootstrap.
func BenchmarkSnapshotRestore(b *testing.B) {
	src := NewStore(StoreConfig{SeriesCapacity: 512})
	for n := 0; n < 64; n++ {
		entity := fmt.Sprintf("node/n%02d", n)
		for i := 0; i < 512; i++ {
			src.Append(entity, "util", time.Duration(i)*time.Second, float64(i%10)/10)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := src.Snapshot(nil)
		dst := NewStore(StoreConfig{SeriesCapacity: 512})
		dst.Restore(snap)
	}
}

// BenchmarkJournalReplay measures replaying a full journal segment into a
// fresh journal — the bootstrap's tail-replay step.
func BenchmarkJournalReplay(b *testing.B) {
	src := NewJournal(1024)
	for i := 0; i < 1024; i++ {
		src.Publish(Event{At: time.Duration(i) * time.Millisecond, Type: EventVMState, Entity: "vm/v1"})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		segment := src.Replay(1, 0)
		dst := NewJournal(1024)
		dst.Import(segment)
	}
}
