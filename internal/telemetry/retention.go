package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Tiered series retention. A series is a raw fixed-capacity ring plus zero or
// more downsampled tiers (default: 1m- and 10m-resolution bucket rings). When
// the raw ring evicts its oldest sample, the sample is not lost: it is folded
// into the finest tier's pending bucket; completed buckets are pushed into
// that tier's ring, whose own evictions cascade into the next coarser tier.
// Only data evicted from the coarsest tier is gone for good.
//
// Compaction is incremental — every Append does O(1) amortized folding work
// under the shard lock it already holds — and tier rings are allocated lazily
// on the first eviction, so short-lived series (VM churn) never pay for them.
//
// Coverage is disjoint by construction: evictions flow oldest-first, so every
// point retained by tier k is older than every point of tier k-1, and every
// tier point is older than the raw ring's oldest sample. Stitched reads
// (Query, Reduce) therefore walk coarsest ring → coarsest pending → ... →
// finest pending → raw and see a time-ordered sequence with no overlap.
// Bucket points are stamped at the bucket start and valued at the bucket
// average (the same convention as Downsample); their min/max/count survive
// for Reduce, which prefers them for exact extremes.

// TierConfig describes one downsampled retention tier.
type TierConfig struct {
	// Step is the bucket resolution (e.g. time.Minute).
	Step time.Duration
	// Capacity is the ring length in buckets.
	Capacity int
}

// DefaultTiers is the standard raw → 1m → 10m retention ladder: 512 one-
// minute buckets (≈8.5h) backed by 512 ten-minute buckets (≈3.5d).
func DefaultTiers() []TierConfig {
	return []TierConfig{
		{Step: time.Minute, Capacity: 512},
		{Step: 10 * time.Minute, Capacity: 512},
	}
}

// NoTiers disables downsampled retention: the raw ring overwrites and evicted
// samples are gone (the pre-tiering behaviour). Distinct from nil, which
// selects DefaultTiers.
var NoTiers = []TierConfig{}

// ParseTiers parses a tier ladder from its flag form: a comma-separated list
// of "step:capacity" pairs with ascending steps (e.g. "1m:512,10m:512").
// "" selects the default ladder (nil), "none" disables tiers.
func ParseTiers(s string) ([]TierConfig, error) {
	switch strings.TrimSpace(s) {
	case "":
		return nil, nil
	case "none":
		return NoTiers, nil
	}
	var out []TierConfig
	for _, part := range strings.Split(s, ",") {
		step, capa, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("telemetry: tier %q: want step:capacity", part)
		}
		d, err := time.ParseDuration(step)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("telemetry: tier %q: bad step", part)
		}
		n, err := strconv.Atoi(capa)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("telemetry: tier %q: bad capacity", part)
		}
		if len(out) > 0 && d <= out[len(out)-1].Step {
			return nil, fmt.Errorf("telemetry: tier steps must ascend (%v after %v)", d, out[len(out)-1].Step)
		}
		out = append(out, TierConfig{Step: d, Capacity: n})
	}
	return out, nil
}

// sanitizeTiers normalizes a tier ladder: nil → defaults, invalid entries
// dropped, steps forced ascending (a misordered ladder keeps its first
// consistent prefix rather than corrupting compaction).
func sanitizeTiers(tiers []TierConfig) []TierConfig {
	if tiers == nil {
		return DefaultTiers()
	}
	out := make([]TierConfig, 0, len(tiers))
	for _, tc := range tiers {
		if tc.Step <= 0 || tc.Capacity <= 0 {
			continue
		}
		if len(out) > 0 && tc.Step <= out[len(out)-1].Step {
			continue
		}
		out = append(out, tc)
	}
	return out
}

// bucket is one downsampled tier point: the aggregate of the raw samples
// folded into it. A bucket with count 0 is empty (the pending slot's idle
// state).
type bucket struct {
	at       time.Duration // bucket start: floor(sample.At / step) * step
	min, max float64
	sum      float64
	count    int // raw samples behind this bucket
}

func (b bucket) avg() float64 { return b.sum / float64(b.count) }

// fold merges another aggregate (a raw sample or a finer bucket) into b.
func (b *bucket) fold(o bucket) {
	if o.min < b.min {
		b.min = o.min
	}
	if o.max > b.max {
		b.max = o.max
	}
	b.sum += o.sum
	b.count += o.count
}

// tier is one downsampled ring. buf is allocated on the first absorb, so a
// series that never wraps its raw ring carries only this header.
type tier struct {
	step    time.Duration
	cap     int
	buf     []bucket
	head, n int
	// pending accumulates the tier's newest (still-growing) bucket; it is
	// part of the tier's retained data (stitched reads include it) but lives
	// outside the ring until a later-bucket absorb completes it.
	pending bucket
	// evicted counts buckets pushed out of this ring — into the next tier,
	// or lost for good from the coarsest one.
	evicted uint64
}

// at returns the i-th retained ring bucket, oldest first (pending excluded).
func (t *tier) at(i int) bucket { return t.buf[(t.head+i)%len(t.buf)] }

// points counts the tier's retained points including the pending bucket.
func (t *tier) points() int {
	if t.pending.count > 0 {
		return t.n + 1
	}
	return t.n
}

// searchAtLeast returns the first ring index whose bucket start is >= at.
func (t *tier) searchAtLeast(at time.Duration) int {
	lo, hi := 0, t.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.at(mid).at >= at {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// bounds returns the ring index range [lo, hi) of buckets stamped in
// [from, to] (pending excluded; stitched walkers handle it separately).
func (t *tier) bounds(from, to time.Duration) (lo, hi int) {
	lo = t.searchAtLeast(from)
	l, h := lo, t.n
	for l < h {
		mid := int(uint(l+h) >> 1)
		if t.at(mid).at > to {
			h = mid
		} else {
			l = mid + 1
		}
	}
	return lo, l
}

// absorb folds one finer-resolution aggregate into tier i of tiers, flushing
// the pending bucket into the ring when the aggregate opens a later bucket.
// Ring evictions cascade into tier i+1. Aggregates arrive oldest-first (the
// eviction order), so pending never needs reordering.
func absorb(tiers []tier, i int, b bucket) {
	t := &tiers[i]
	start := b.at - b.at%t.step
	if t.pending.count == 0 {
		t.pending = bucket{at: start, min: b.min, max: b.max, sum: b.sum, count: b.count}
		return
	}
	if start == t.pending.at {
		t.pending.fold(b)
		return
	}
	t.flush(tiers, i)
	t.pending = bucket{at: start, min: b.min, max: b.max, sum: b.sum, count: b.count}
}

// flush pushes the completed pending bucket into the ring, evicting the
// oldest ring bucket into the next tier when full.
func (t *tier) flush(tiers []tier, i int) {
	if t.buf == nil {
		t.buf = make([]bucket, t.cap)
	}
	if t.n < len(t.buf) {
		t.buf[(t.head+t.n)%len(t.buf)] = t.pending
		t.n++
		return
	}
	old := t.buf[t.head]
	t.evicted++
	if i+1 < len(tiers) {
		absorb(tiers, i+1, old)
	}
	t.buf[t.head] = t.pending
	t.head = (t.head + 1) % len(t.buf)
}

// point is one element of the stitched (tier-merged) view of a series: a raw
// sample (count 1, min == max == value) or a downsampled bucket (value =
// bucket average, min/max/count preserved).
type point struct {
	at       time.Duration
	value    float64
	min, max float64
	count    int
}

func rawPoint(sm Sample) point {
	return point{at: sm.At, value: sm.Value, min: sm.Value, max: sm.Value, count: 1}
}

func bucketPoint(b bucket) point {
	return point{at: b.at, value: b.avg(), min: b.min, max: b.max, count: b.count}
}

// evictRaw routes one sample evicted from the raw ring into the tiers (or
// drops it when retention is raw-only) and folds it into the eviction sketch
// and moments, so history that the tier ladder decimates — or, with NoTiers,
// drops outright — keeps its full value distribution at sketch resolution.
func (s *series) evictRaw(sm Sample) {
	s.evicted++
	if s.evict != nil {
		s.evict.Insert(sm.Value)
		s.evictM.add(sm.At.Seconds(), sm.Value)
	}
	if len(s.tiers) > 0 {
		absorb(s.tiers, 0, bucket{at: sm.At, min: sm.Value, max: sm.Value, sum: sm.Value, count: 1})
	}
}

// oldestAt returns the oldest retained timestamp across every tier (the
// series-wide retention watermark). Must only be called on a non-empty
// series (n > 0 after the first append).
func (s *series) oldestAt() time.Duration {
	for i := len(s.tiers) - 1; i >= 0; i-- {
		t := &s.tiers[i]
		if t.n > 0 {
			return t.at(0).at
		}
		if t.pending.count > 0 {
			return t.pending.at
		}
	}
	return s.at(0).At
}

// oldestPoint returns the oldest retained stitched point (the coarsest
// tier's oldest bucket, its pending bucket, or the oldest raw sample). Must
// only be called on a non-empty series.
func (s *series) oldestPoint() point {
	for i := len(s.tiers) - 1; i >= 0; i-- {
		t := &s.tiers[i]
		if t.n > 0 {
			return bucketPoint(t.at(0))
		}
		if t.pending.count > 0 {
			return bucketPoint(t.pending)
		}
	}
	return rawPoint(s.at(0))
}

// retainedPoints counts every retained stitched point across raw ring and
// tiers — what a window covering the whole series would visit.
func (s *series) retainedPoints() int {
	n := s.n
	for i := range s.tiers {
		n += s.tiers[i].points()
	}
	return n
}

// rawFrom returns the timestamp where full-resolution coverage begins: the
// raw ring's oldest retained sample. Samples older than this survive only as
// tier buckets (or not at all).
func (s *series) rawFrom() time.Duration { return s.at(0).At }

// truncated reports whether a window starting at from reaches into evicted
// history: part of it is served at tier resolution or is lost outright.
func (s *series) truncated(from time.Duration) bool {
	return s.evicted > 0 && from < s.rawFrom()
}

// countPoints counts the stitched points stamped in [from, to].
func (s *series) countPoints(from, to time.Duration) int {
	n := 0
	for i := len(s.tiers) - 1; i >= 0; i-- {
		t := &s.tiers[i]
		lo, hi := t.bounds(from, to)
		n += hi - lo
		if p := t.pending; p.count > 0 && p.at >= from && p.at <= to {
			n++
		}
	}
	lo, hi := s.bounds(from, to)
	return n + (hi - lo)
}

// visitTierPoints walks the tier-resident points stamped in [from, to],
// oldest first: coarsest tier ring, its pending bucket, ..., finest pending.
// Eviction-order disjointness makes the sequence time-ordered and strictly
// older than every raw sample.
func (s *series) visitTierPoints(from, to time.Duration, visit func(point)) {
	for i := len(s.tiers) - 1; i >= 0; i-- {
		t := &s.tiers[i]
		lo, hi := t.bounds(from, to)
		for j := lo; j < hi; j++ {
			visit(bucketPoint(t.at(j)))
		}
		if p := t.pending; p.count > 0 && p.at >= from && p.at <= to {
			visit(bucketPoint(p))
		}
	}
}

// visitPoints walks the stitched points stamped in [from, to], oldest first:
// the tier-resident history, then the raw ring.
func (s *series) visitPoints(from, to time.Duration, visit func(point)) {
	s.visitTierPoints(from, to, visit)
	lo, hi := s.bounds(from, to)
	for i := lo; i < hi; i++ {
		visit(rawPoint(s.at(i)))
	}
}

// stitchWindow appends the stitched points stamped in [from, to] to dst as
// samples (bucket points valued at the bucket average), oldest first.
func (s *series) stitchWindow(from, to time.Duration, dst []Sample) []Sample {
	n := s.countPoints(from, to)
	if n == 0 {
		return dst
	}
	if dst == nil {
		dst = make([]Sample, 0, n)
	}
	s.visitPoints(from, to, func(p point) {
		dst = append(dst, Sample{At: p.at, Value: p.value})
	})
	return dst
}

// TierInfo describes one retention tier of a series.
type TierInfo struct {
	// Step is the tier's bucket resolution.
	Step time.Duration
	// Capacity is the tier ring length in buckets.
	Capacity int
	// Points is the retained bucket count (including the pending bucket).
	Points int
	// Evicted counts buckets pushed out of this tier's ring.
	Evicted uint64
}

// SeriesInfo is the retention metadata of one series: how much history each
// tier holds and where full-resolution coverage begins.
type SeriesInfo struct {
	// RawCapacity / RawPoints size the raw ring.
	RawCapacity int
	RawPoints   int
	// Points counts every retained point across all tiers (the stitched
	// series length).
	Points int
	// OldestAt / NewestAt bound the retained range (any resolution).
	OldestAt time.Duration
	NewestAt time.Duration
	// RawFrom is where full-resolution coverage begins; older history exists
	// only as tier buckets. Equals OldestAt while Evicted is 0.
	RawFrom time.Duration
	// Evicted counts raw samples pushed out of the raw ring since the series
	// was created. Non-zero means windows reaching before RawFrom are
	// decimated (Summary.Truncated).
	Evicted uint64
	// Tiers describes the downsampled rings, finest first.
	Tiers []TierInfo
	// Gen is the series' append generation (see Store.Generation).
	Gen uint64
}

// Info returns the retention metadata of one series, and whether it exists.
func (s *Store) Info(entity, metric string) (SeriesInfo, bool) {
	sh := s.shardFor(entity, metric)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[Key{Entity: entity, Metric: metric}]
	if !ok || ser.n == 0 {
		return SeriesInfo{}, false
	}
	info := SeriesInfo{
		RawCapacity: len(ser.buf),
		RawPoints:   ser.n,
		Points:      ser.n,
		OldestAt:    ser.oldestAt(),
		NewestAt:    ser.at(ser.n - 1).At,
		RawFrom:     ser.rawFrom(),
		Evicted:     ser.evicted,
		Gen:         ser.gen,
	}
	if len(ser.tiers) > 0 {
		info.Tiers = make([]TierInfo, len(ser.tiers))
		for i := range ser.tiers {
			t := &ser.tiers[i]
			info.Tiers[i] = TierInfo{Step: t.step, Capacity: t.cap, Points: t.points(), Evicted: t.evicted}
			info.Points += t.points()
		}
	}
	return info, true
}

// EntityNewest returns, for every entity whose name starts with prefix, the
// newest retained sample timestamp across all of that entity's series. It is
// the liveness sweep's scan primitive: an entity whose newest sample is older
// than the grace period has stopped reporting everywhere.
func (s *Store) EntityNewest(prefix string) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, ser := range sh.series {
			if ser.n == 0 || !strings.HasPrefix(k.Entity, prefix) {
				continue
			}
			newest := ser.at(ser.n - 1).At
			if cur, ok := out[k.Entity]; !ok || newest > cur {
				out[k.Entity] = newest
			}
		}
		sh.mu.RUnlock()
	}
	return out
}
