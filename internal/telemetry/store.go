// Package telemetry is the observability substrate of the reproduction: a
// deterministic, allocation-light in-memory time-series store plus an event
// journal with fan-out subscriptions. The paper's autonomic loop runs on
// resource monitoring and estimation flowing up the LC → GM → GL hierarchy
// (Section II-B); this package retains that flow as history — per-entity
// ring-buffer series for windowed queries and downsampling — and turns
// threshold crossings into a watchable event stream (node.overload,
// node.underload, vm.state, hierarchy.*) that drives GM relocation and the
// api/v1 /v1/series and /v1/watch routes.
//
// Timestamps are runtime-relative durations (simkernel.Runtime.Now): virtual
// time under the simulation kernel, process uptime in live deployments. The
// same code path serves both, exactly like the hierarchy components.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snooze/internal/telemetry/sketch"
)

// Key names one series: an entity (canonical forms "node/<id>", "vm/<id>",
// "gm/<id>") and a metric (e.g. "cpu.used", "util").
type Key struct {
	Entity string
	Metric string
}

// Sample is one measurement of a series.
type Sample struct {
	At    time.Duration
	Value float64
}

// StoreConfig parameterizes a Store.
type StoreConfig struct {
	// SeriesCapacity is the fixed raw ring-buffer length of every series
	// (default 512 samples). Samples evicted from the raw ring are folded
	// into the downsampled tiers rather than lost (see retention.go).
	SeriesCapacity int
	// Shards is the lock-shard count, rounded up to a power of two
	// (default 32). More shards = less contention on concurrent ingest.
	Shards int
	// Tiers is the downsampled retention ladder behind the raw ring, finest
	// first with strictly ascending steps. Nil selects DefaultTiers
	// (1m × 512, 10m × 512); NoTiers (an empty slice) disables tiering and
	// restores plain ring overwrite.
	Tiers []TierConfig
	// SketchAlpha is the relative-error bound of the per-series quantile
	// sketches maintained on Append (default sketch.DefaultAlpha, 1%).
	SketchAlpha float64
	// ExactReduce forces every Reduce onto the exact sort-based reference
	// reduction instead of the sketch-backed default — the escape hatch (and
	// property-test oracle) for consumers that need bit-exact percentiles.
	// Per-call SummarySpec.Exact selects the same path for one reduction.
	ExactReduce bool
}

// Moments are running least-squares accumulators over (time, value) samples:
// enough state to recover count, mean and the linear trend of everything ever
// folded in, in O(1). The store keeps one per series for its lifetime and one
// for the evicted prefix, so covers-everything reductions need no iteration.
type Moments struct {
	N     uint64  `json:"n"`
	Sum   float64 `json:"sum"`
	SumT  float64 `json:"sumT"`
	SumTT float64 `json:"sumTT"`
	SumTV float64 `json:"sumTV"`
}

// add folds one sample (t in seconds). Non-finite values are skipped, exactly
// as the sketches skip them.
func (m *Moments) add(t, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	m.N++
	m.Sum += v
	m.SumT += t
	m.SumTT += t * t
	m.SumTV += t * v
}

// trend returns the least-squares slope (per second), 0 below 2 samples.
func (m *Moments) trend() float64 {
	if m.N < 2 {
		return 0
	}
	n := float64(m.N)
	denom := n*m.SumTT - m.SumT*m.SumT
	if denom == 0 || math.IsNaN(denom) {
		return 0
	}
	return (n*m.SumTV - m.SumT*m.Sum) / denom
}

// series is a fixed-capacity ring buffer of time-ordered samples, backed by
// downsampled retention tiers (retention.go) that absorb evicted samples and
// shadowed by mergeable quantile sketches (sketch package) that keep the full
// value distribution at relative-error resolution no matter how much raw
// history the rings have decimated.
type series struct {
	buf     []Sample
	head    int    // index of the oldest sample
	n       int    // number of valid samples
	gen     uint64 // generation of the newest append (store-wide unique)
	evicted uint64 // raw samples pushed out of the raw ring
	tiers   []tier // downsampled rings, finest first (bufs lazily allocated)

	// life sketches every sample ever appended; evict sketches the samples
	// pushed out of the raw ring (a prefix of life, so life alone answers
	// covers-everything quantile queries honestly even past tier evictions).
	// Both update in O(1) under the shard lock Append already holds.
	life  *sketch.Sketch
	evict *sketch.Sketch
	// adopted is a replicated distribution installed by AdoptSketch (GM→GL
	// rollups, failover restores): when present, covers-everything quantile
	// queries prefer it over life, whose inputs on a rollup series are mere
	// point averages.
	adopted *sketch.Sketch
	// lifeM / evictM mirror life/evict with trend moments.
	lifeM  Moments
	evictM Moments
}

func (s *series) append(sm Sample) {
	if s.n < len(s.buf) {
		s.buf[(s.head+s.n)%len(s.buf)] = sm
		s.n++
		return
	}
	s.evictRaw(s.buf[s.head])
	s.buf[s.head] = sm
	s.head = (s.head + 1) % len(s.buf)
}

// at returns the i-th retained sample, oldest first.
func (s *series) at(i int) Sample { return s.buf[(s.head+i)%len(s.buf)] }

// searchAtLeast returns the first retained index whose At is >= t (binary
// search over the time-ordered ring; s.n when every sample is older).
func (s *series) searchAtLeast(t time.Duration) int {
	lo, hi := 0, s.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.at(mid).At >= t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// bounds returns the retained index range [lo, hi) covering At in [from, to].
func (s *series) bounds(from, to time.Duration) (lo, hi int) {
	lo = s.searchAtLeast(from)
	l, h := lo, s.n // first index with At > to, searched from lo
	for l < h {
		mid := int(uint(l+h) >> 1)
		if s.at(mid).At > to {
			h = mid
		} else {
			l = mid + 1
		}
	}
	return lo, l
}

// window appends the samples with At in [from, to] to dst, oldest first. The
// window start/end are located by binary search, not a full ring scan.
func (s *series) window(from, to time.Duration, dst []Sample) []Sample {
	lo, hi := s.bounds(from, to)
	if hi <= lo {
		return dst
	}
	if dst == nil {
		dst = make([]Sample, 0, hi-lo)
	}
	for i := lo; i < hi; i++ {
		dst = append(dst, s.at(i))
	}
	return dst
}

type shard struct {
	mu     sync.RWMutex
	series map[Key]*series
}

// Store is the lock-sharded time-series store. Appends to different keys
// proceed concurrently on separate shards; appends to the same key are
// serialized by that key's shard lock. Samples per key must arrive in
// non-decreasing time order (the hierarchy's monitoring flow guarantees it).
type Store struct {
	shards     []shard
	mask       uint64
	capacity   int
	tiers      []TierConfig  // sanitized retention ladder for new series
	alpha      float64       // relative-error bound of the per-series sketches
	exact      bool          // force the exact reference reduction store-wide
	samples    atomic.Uint64 // total samples ever appended
	reductions atomic.Uint64 // total Reduce calls ever served
}

// NewStore creates a store.
func NewStore(cfg StoreConfig) *Store {
	if cfg.SeriesCapacity <= 0 {
		cfg.SeriesCapacity = 512
	}
	n := cfg.Shards
	if n <= 0 {
		n = 32
	}
	// Round up to a power of two so key hashes mask instead of mod.
	size := 1
	for size < n {
		size <<= 1
	}
	alpha := sketch.New(cfg.SketchAlpha).Alpha() // normalized exactly as sketches will see it
	s := &Store{shards: make([]shard, size), mask: uint64(size - 1), capacity: cfg.SeriesCapacity, tiers: sanitizeTiers(cfg.Tiers), alpha: alpha, exact: cfg.ExactReduce}
	for i := range s.shards {
		s.shards[i].series = make(map[Key]*series)
	}
	return s
}

// SketchAlpha returns the store's configured relative-error bound — the
// error bar API consumers attach to sketch-derived quantiles.
func (s *Store) SketchAlpha() float64 { return s.alpha }

// hashKey is FNV-1a over entity+"\x00"+metric.
func hashKey(entity, metric string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(entity); i++ {
		h ^= uint64(entity[i])
		h *= prime
	}
	h *= prime // separator byte 0: XOR is a no-op, the multiply still mixes
	for i := 0; i < len(metric); i++ {
		h ^= uint64(metric[i])
		h *= prime
	}
	return h
}

func (s *Store) shardFor(entity, metric string) *shard {
	return &s.shards[hashKey(entity, metric)&s.mask]
}

// Append records one sample. The hot path takes exactly one shard lock and
// allocates nothing once the series ring exists. Every append advances the
// series' generation (see Generation).
func (s *Store) Append(entity, metric string, at time.Duration, v float64) {
	sh := s.shardFor(entity, metric)
	key := Key{Entity: entity, Metric: metric}
	sh.mu.Lock()
	ser, ok := sh.series[key]
	if !ok {
		// The sketches allocate their bucket windows lazily on first insert,
		// so the headers here cost a few words each.
		ser = &series{buf: make([]Sample, s.capacity), life: sketch.New(s.alpha), evict: sketch.New(s.alpha)}
		if len(s.tiers) > 0 {
			// Tier headers only: the bucket rings allocate on first eviction,
			// so short-lived series never pay for retention they don't use.
			ser.tiers = make([]tier, len(s.tiers))
			for i, tc := range s.tiers {
				ser.tiers[i] = tier{step: tc.Step, cap: tc.Capacity}
			}
		}
		sh.series[key] = ser
	}
	ser.append(Sample{At: at, Value: v})
	ser.life.Insert(v)
	ser.lifeM.add(at.Seconds(), v)
	// Generations draw from the store-wide sample counter, so they are unique
	// across series: a series dropped by RemoveEntity and later recreated can
	// never replay an old generation value to a caching consumer.
	ser.gen = s.samples.Add(1)
	sh.mu.Unlock()
}

// Generation returns the append generation of one series: a value that
// changes on every Append and never repeats, 0 for an unknown series. View
// caches key on it to detect (in)validity without touching the samples.
func (s *Store) Generation(entity, metric string) uint64 {
	sh := s.shardFor(entity, metric)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if ser, ok := sh.series[Key{Entity: entity, Metric: metric}]; ok {
		return ser.gen
	}
	return 0
}

// Newest returns the most recent retained sample of one series in O(1) — a
// shard read-lock and a ring index, no window search. The GL uses it to test
// whether a GM's rollup series is already fresh before re-recording a summary
// it received over the wire.
func (s *Store) Newest(entity, metric string) (Sample, bool) {
	sh := s.shardFor(entity, metric)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[Key{Entity: entity, Metric: metric}]
	if !ok || ser.n == 0 {
		return Sample{}, false
	}
	return ser.at(ser.n - 1), true
}

// Query returns the retained points of (entity, metric) with timestamps in
// [from, to], oldest first, stitched across the retention tiers: history that
// has left the raw ring is served from the downsampled tier rings (one point
// per bucket, stamped at the bucket start, valued at the bucket average),
// seamlessly followed by the raw samples. A to of 0 or less means "no upper
// bound". An empty window (from > to, after the unbounded rewrite) returns
// nil without touching the series — the explicit empty-window contract.
// Callers needing to distinguish full-resolution from decimated coverage
// consult Info (or Reduce's Summary.Truncated watermark).
func (s *Store) Query(entity, metric string, from, to time.Duration) []Sample {
	if to <= 0 {
		to = time.Duration(1<<63 - 1)
	}
	if from > to {
		return nil
	}
	sh := s.shardFor(entity, metric)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[Key{Entity: entity, Metric: metric}]
	if !ok {
		return nil
	}
	return ser.stitchWindow(from, to, nil)
}

// Window visits the retained RAW samples of (entity, metric) with timestamps
// in [from, to] without copying them: visit is called with up to two
// contiguous ring segments (the window may wrap the ring boundary), oldest
// first, while the shard read-lock is held. Unlike Query it does not stitch
// retention tiers — it is the full-resolution fast path for consumers that
// must not mix measurements with bucket averages (demand estimation). The
// segments alias the live ring — visit must not retain them past its return,
// and must not call back into the store. to <= 0 means "no upper bound", as
// in Query. Returns the visited count.
func (s *Store) Window(entity, metric string, from, to time.Duration, visit func([]Sample)) int {
	if to <= 0 {
		to = time.Duration(1<<63 - 1)
	}
	if from > to {
		return 0
	}
	sh := s.shardFor(entity, metric)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[Key{Entity: entity, Metric: metric}]
	if !ok {
		return 0
	}
	lo, hi := ser.bounds(from, to)
	if hi <= lo {
		return 0
	}
	p := (ser.head + lo) % len(ser.buf)
	first := hi - lo
	if wrap := len(ser.buf) - p; first > wrap {
		first = wrap
	}
	visit(ser.buf[p : p+first])
	if rest := (hi - lo) - first; rest > 0 {
		visit(ser.buf[:rest])
	}
	return hi - lo
}

// Len returns the raw-ring sample count of one series (tier points excluded;
// see Info for the full retention picture).
func (s *Store) Len(entity, metric string) int {
	sh := s.shardFor(entity, metric)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if ser, ok := sh.series[Key{Entity: entity, Metric: metric}]; ok {
		return ser.n
	}
	return 0
}

// Keys lists every series key, sorted by entity then metric.
func (s *Store) Keys() []Key {
	var out []Key
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.series {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// RemoveEntity drops every series of one entity (a failed node, a destroyed
// VM), releasing its rings. It scans all shards; callers are rare
// (membership changes), appends are not slowed.
func (s *Store) RemoveEntity(entity string) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.series {
			if k.Entity == entity {
				delete(sh.series, k)
			}
		}
		sh.mu.Unlock()
	}
}

// NumSeries counts distinct series.
func (s *Store) NumSeries() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.series)
		sh.mu.RUnlock()
	}
	return n
}

// SeriesSketch returns the serialized lifetime value distribution of one
// series — the adopted replica when one was installed (it is the true
// distribution behind a rollup series), the locally accumulated sketch
// otherwise. ok is false for an unknown or empty-sketch series. This is what
// a GM ships inside its rollup summaries and what property tests compare
// against exact reductions.
func (s *Store) SeriesSketch(entity, metric string) (sketch.Encoded, bool) {
	sh := s.shardFor(entity, metric)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[Key{Entity: entity, Metric: metric}]
	if !ok {
		return sketch.Encoded{}, false
	}
	src := ser.life
	if ser.adopted != nil && ser.adopted.Count() > 0 {
		src = ser.adopted
	}
	if src == nil || src.Count() == 0 {
		return sketch.Encoded{}, false
	}
	return src.Encode(), true
}

// AdoptSketch installs a replicated distribution for one series: the GL calls
// it when a GM's rollup summary arrives carrying the group's real utilization
// sketch, so GL-side reductions over the rollup series answer quantiles from
// the member distribution instead of the point averages the rollup ring
// holds. Adoption is monotone by count (a replayed or stale sketch is a
// no-op, making re-deliveries idempotent) and bumps the series generation so
// view caches keyed on it refresh. The series is created if absent.
func (s *Store) AdoptSketch(entity, metric string, enc sketch.Encoded) bool {
	if enc.Total == 0 {
		return false
	}
	dec := sketch.Decode(enc)
	if dec.Count() == 0 {
		return false // malformed encoding
	}
	sh := s.shardFor(entity, metric)
	key := Key{Entity: entity, Metric: metric}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ser, ok := sh.series[key]
	if !ok {
		ser = &series{buf: make([]Sample, s.capacity), life: sketch.New(s.alpha), evict: sketch.New(s.alpha)}
		if len(s.tiers) > 0 {
			ser.tiers = make([]tier, len(s.tiers))
			for i, tc := range s.tiers {
				ser.tiers[i] = tier{step: tc.Step, cap: tc.Capacity}
			}
		}
		sh.series[key] = ser
	}
	if ser.adopted != nil && ser.adopted.Count() >= dec.Count() {
		return false
	}
	ser.adopted = dec
	ser.gen = s.samples.Add(1)
	return true
}

// TotalSamples returns the number of samples ever appended (including ones
// the rings have since overwritten).
func (s *Store) TotalSamples() uint64 { return s.samples.Load() }

// TotalReductions returns the number of Reduce calls ever served — the
// instrumentation view caches use to prove they hit (a cached build performs
// zero reductions).
func (s *Store) TotalReductions() uint64 { return s.reductions.Load() }
