package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"

	"snooze/internal/telemetry/sketch"
)

// TestCountWeightedDecimation is the accuracy regression for count-weighted
// stitched reductions: dense decimated history must dominate sparse recent
// raw samples in proportion to the samples behind it. 900 early samples at
// value 10 collapse into ~15 tier buckets; 100 recent samples at value 90
// stay raw. Per-point (unweighted) reduction would see ~15 points of 10 vs
// 100 points of 90 and report avg ≈ 79 and p50 = 90; the weighted reduction
// recovers the true distribution (avg 18, p50 = 10) from the same buckets.
func TestCountWeightedDecimation(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 128, Tiers: []TierConfig{
		{Step: time.Minute, Capacity: 512},
		{Step: 10 * time.Minute, Capacity: 512},
	}})
	at := time.Duration(0)
	for i := 0; i < 1000; i++ {
		at += time.Second
		v := 10.0
		if i >= 900 {
			v = 90.0
		}
		s.Append("e", "m", at, v)
	}
	for _, spec := range []*SummarySpec{
		{Percentiles: []float64{50, 99}, Exact: true},
		{Percentiles: []float64{50, 99}},
	} {
		sum, ok := s.Reduce("e", "m", 0, 0, spec)
		if !ok || !sum.Truncated {
			t.Fatalf("exact=%v: expected truncated full-window reduce: %+v %v", spec.Exact, sum, ok)
		}
		if sum.Weight != 1000 {
			t.Fatalf("exact=%v: weight %d, want 1000", spec.Exact, sum.Weight)
		}
		if math.Abs(sum.Avg-18) > 1e-9 {
			t.Fatalf("exact=%v: avg %v, want 18 (count-weighted)", spec.Exact, sum.Avg)
		}
		if math.Abs(sum.Percentiles[0]-10) > 10*0.011 {
			t.Fatalf("exact=%v: p50 %v, want ~10 (dense history dominates)", spec.Exact, sum.Percentiles[0])
		}
		if math.Abs(sum.Percentiles[1]-90) > 90*0.011 {
			t.Fatalf("exact=%v: p99 %v, want ~90", spec.Exact, sum.Percentiles[1])
		}
	}
}

func TestAdoptSketch(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 16})
	// A rollup series: the local appends are point averages.
	for i := 0; i < 8; i++ {
		s.Append("gm/g1", "util", sec(i), 0.5)
	}
	genBefore := s.Generation("gm/g1", "util")

	// The member distribution behind those averages is bimodal.
	member := sketch.New(0.01)
	member.InsertN(0.1, 500)
	member.InsertN(0.9, 500)
	if !s.AdoptSketch("gm/g1", "util", member.Encode()) {
		t.Fatal("adoption rejected")
	}
	if g := s.Generation("gm/g1", "util"); g <= genBefore {
		t.Fatalf("adoption did not bump the generation: %d then %d", genBefore, g)
	}
	spec := &SummarySpec{Percentiles: []float64{5, 95}}
	sum, ok := s.Reduce("gm/g1", "util", 0, 0, spec)
	if !ok {
		t.Fatal("reduce failed")
	}
	if math.Abs(sum.Percentiles[0]-0.1) > 0.1*0.011 || math.Abs(sum.Percentiles[1]-0.9) > 0.9*0.011 {
		t.Fatalf("quantiles did not come from the adopted distribution: %v", sum.Percentiles)
	}
	// SeriesSketch prefers the adopted replica.
	enc, ok := s.SeriesSketch("gm/g1", "util")
	if !ok || enc.Total != 1000 {
		t.Fatalf("SeriesSketch: %+v %v", enc, ok)
	}
	// A stale (smaller) replica is a no-op; a larger one replaces.
	stale := sketch.New(0.01)
	stale.InsertN(0.4, 10)
	if s.AdoptSketch("gm/g1", "util", stale.Encode()) {
		t.Fatal("stale adoption accepted")
	}
	member.InsertN(0.9, 100)
	if !s.AdoptSketch("gm/g1", "util", member.Encode()) {
		t.Fatal("grown adoption rejected")
	}
	// Adoption onto an unknown series creates it.
	if !s.AdoptSketch("gm/g2", "util", member.Encode()) {
		t.Fatal("adoption onto missing series rejected")
	}
	if _, ok := s.SeriesSketch("gm/g2", "util"); !ok {
		t.Fatal("created series has no sketch")
	}
	// Malformed encodings are rejected.
	bad := member.Encode()
	bad.Total += 7
	if s.AdoptSketch("gm/g3", "util", bad) {
		t.Fatal("malformed encoding adopted")
	}
}

// TestSnapshotCarriesSketches pins the failover contract: a SnapshotSince-
// trimmed snapshot (no tiers, recent raw only) restored into a fresh store
// still answers lifetime quantiles identical to the source, because the
// sketches and moments ride the snapshot.
func TestSnapshotCarriesSketches(t *testing.T) {
	src := NewStore(StoreConfig{SeriesCapacity: 64})
	at := time.Duration(0)
	for i := 0; i < 500; i++ {
		at += time.Second
		src.Append("node/n1", "util", at, float64(i%100))
	}
	spec := &SummarySpec{Percentiles: []float64{50, 95}, Trend: true}
	want, ok := src.Reduce("node/n1", "util", 0, 0, spec)
	if !ok {
		t.Fatal("source reduce failed")
	}
	wantP50, wantP95 := want.Percentiles[0], want.Percentiles[1]

	snap := src.SnapshotSince(nil, at-30*time.Second)
	if len(snap.Series) != 1 || snap.Series[0].Life == nil || snap.Series[0].Evict == nil {
		t.Fatalf("trimmed snapshot lost the sketches: %+v", snap.Series)
	}
	if len(snap.Series[0].Tiers) != 0 {
		t.Fatal("trimmed snapshot carried tiers")
	}

	dst := NewStore(StoreConfig{SeriesCapacity: 64})
	if got := dst.Restore(snap); got != 1 {
		t.Fatalf("restored %d series, want 1", got)
	}
	got, ok := dst.Reduce("node/n1", "util", 0, 0, spec)
	if !ok {
		t.Fatal("restored reduce failed")
	}
	if got.Percentiles[0] != wantP50 || got.Percentiles[1] != wantP95 {
		t.Fatalf("restored quantiles %v, want [%v %v]", got.Percentiles, wantP50, wantP95)
	}
	if got.Avg != want.Avg || got.Trend != want.Trend || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("restored moments diverged: got %+v want %+v", got, want)
	}
	// The restored series keeps accumulating.
	dst.Append("node/n1", "util", at+time.Second, 1000)
	after, _ := dst.Reduce("node/n1", "util", 0, 0, spec)
	if after.Max != 1000 || after.Weight != want.Weight+1 {
		t.Fatalf("restored series did not keep sketching: %+v", after)
	}
}

// TestConcurrentAppendReduce exercises the sketch read/write paths under the
// race detector: appends and adoptions mutate per-series sketches under
// shard write-locks while reductions (fast path, windowed sketch path and
// exact path) read them under read-locks.
func TestConcurrentAppendReduce(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 32})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // appender: same series the readers reduce
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			s.Append("e", "m", time.Duration(i)*time.Second, float64(i%100))
		}
	}()
	wg.Add(1)
	go func() { // adopter: installs growing replicas concurrently
		defer wg.Done()
		member := sketch.New(0.01)
		for i := 1; i <= 50; i++ {
			member.InsertN(float64(i), 10)
			s.AdoptSketch("e", "m", member.Encode())
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := &SummarySpec{Percentiles: []float64{50, 95}, Trend: true}
			exact := &SummarySpec{Percentiles: []float64{50, 95}, Trend: true, Exact: true}
			for i := 0; i < 500; i++ {
				s.Reduce("e", "m", 0, 0, spec)                                      // covers-everything fast path
				s.Reduce("e", "m", time.Duration(i)*time.Second, sec(i+1000), spec) // windowed sketch path
				s.Reduce("e", "m", 0, 0, exact)
				s.SeriesSketch("e", "m")
				s.Snapshot(nil)
			}
		}()
	}
	wg.Wait()
}
