package telemetry

import (
	"fmt"
	"sync"
	"time"

	"snooze/internal/types"
)

// Thresholds parameterize the node anomaly detector. They mirror the LC-side
// scheduling thresholds (Section II-A): a node is overloaded when its L∞
// utilization exceeds Overload, underloaded when it hosts VMs and sits below
// Underload.
type Thresholds struct {
	Overload  float64
	Underload float64
	// Repeat is the per-entity anomaly cooldown, mirroring the LC's
	// AnomalyCooldown: after an anomaly event fires for an entity, further
	// anomaly events — fresh crossings and persisting conditions alike —
	// wait Repeat before firing again. This damps relocation feedback loops
	// (an underload drained into an empty peer re-crosses immediately on the
	// peer) while persisting anomalies still re-emit, so a consumer that
	// failed to act gets another chance. 0 disables the cooldown and the
	// re-emission: every crossing fires, persistence is silent.
	Repeat time.Duration
}

// DefaultThresholds matches scheduling.DefaultThresholds plus a 15s repeat
// (the LC anomaly-report cooldown).
func DefaultThresholds() Thresholds {
	return Thresholds{Overload: 0.9, Underload: 0.2, Repeat: 15 * time.Second}
}

// nodeCondition is the detector's per-entity state.
type nodeCondition int

const (
	condNormal nodeCondition = iota
	condOverload
	condUnderload
)

func (c nodeCondition) event() string {
	switch c {
	case condOverload:
		return EventNodeOverload
	case condUnderload:
		return EventNodeUnderload
	default:
		return EventNodeNormal
	}
}

type detectorState struct {
	cond nodeCondition
	// lastAnomaly stamps the last emitted anomaly event (not recoveries);
	// initialized far in the past so a first anomaly always fires.
	lastAnomaly time.Duration
	// announced is true while an emitted anomaly event awaits its closing
	// node.normal; recoveries fire only when set, so consumers always see
	// anomaly/recovery pairs even when a crossing was cooldown-suppressed.
	announced bool
}

// Detector turns per-node utilization observations into edge-triggered
// anomaly events with optional periodic re-emission. It is the GM's
// replacement for interpreting each LC anomaly report ad hoc: both the LC
// report path and the monitoring ingest path feed the same state machine, so
// an anomaly is acted on once per crossing (plus every Repeat while it
// lasts), no matter how many messages carry it.
type Detector struct {
	th Thresholds

	mu    sync.Mutex
	nodes map[string]*detectorState
}

// NewDetector creates a detector.
func NewDetector(th Thresholds) *Detector {
	if th.Overload <= 0 {
		th = DefaultThresholds()
	}
	return &Detector{th: th, nodes: make(map[string]*detectorState)}
}

// Classify evaluates a node status against the thresholds.
func (d *Detector) Classify(st types.NodeStatus) nodeCondition {
	if st.Power != types.PowerOn {
		return condNormal
	}
	u := st.Used.Divide(st.Spec.Capacity).NormInf()
	switch {
	case u > d.th.Overload:
		return condOverload
	case len(st.VMs) > 0 && u < d.th.Underload:
		return condUnderload
	default:
		return condNormal
	}
}

// Observe feeds one node observation. It returns an event (without a
// sequence number — publish it through a Journal or Hub) and true when the
// node crossed a threshold, returned to normal after an anomaly, or has
// stayed anomalous for another Repeat interval. Anomaly events respect the
// per-entity Repeat cooldown; recoveries are immediate.
func (d *Detector) Observe(entity string, at time.Duration, st types.NodeStatus) (Event, bool) {
	cond := d.Classify(st)
	d.mu.Lock()
	state, ok := d.nodes[entity]
	if !ok {
		state = &detectorState{lastAnomaly: -1 << 62}
		d.nodes[entity] = state
	}
	fire := false
	switch {
	case cond != state.cond:
		// A node's very first observation in a normal state never reaches
		// here (fresh state starts at condNormal), so it is silent.
		state.cond = cond
		if cond == condNormal {
			// Recovery: immediate, but only when an anomaly event was
			// actually published for this episode — a suppressed crossing
			// must not produce an unpaired node.normal.
			fire = state.announced
			state.announced = false
		} else if d.th.Repeat <= 0 || at-state.lastAnomaly >= d.th.Repeat {
			fire = true
			state.lastAnomaly = at
			state.announced = true
		}
	case cond != condNormal && d.th.Repeat > 0 && at-state.lastAnomaly >= d.th.Repeat:
		fire = true
		state.lastAnomaly = at
		state.announced = true
	}
	d.mu.Unlock()
	if !fire {
		return Event{}, false
	}
	u := st.Used.Divide(st.Spec.Capacity).NormInf()
	return Event{
		At:     at,
		Type:   cond.event(),
		Entity: entity,
		Attrs: A(
			"util", fmt.Sprintf("%.3f", u),
			"vms", fmt.Sprintf("%d", len(st.VMs)),
		),
	}, true
}

// Condition reports the detector's current view of an entity:
// "normal", "overload" or "underload".
func (d *Detector) Condition(entity string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.nodes[entity]; ok {
		switch s.cond {
		case condOverload:
			return "overload"
		case condUnderload:
			return "underload"
		}
	}
	return "normal"
}

// Forget drops an entity's state (node removed from the hierarchy).
func (d *Detector) Forget(entity string) {
	d.mu.Lock()
	delete(d.nodes, entity)
	d.mu.Unlock()
}
