package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Agg is a downsampling aggregation: one of "min", "max", "avg", "last" or
// "pXX" (any percentile, e.g. "p50", "p95", "p99").
type Agg string

// Built-in aggregations; percentiles are parsed dynamically.
const (
	AggMin  Agg = "min"
	AggMax  Agg = "max"
	AggAvg  Agg = "avg"
	AggLast Agg = "last"
)

// ParseAgg validates an aggregation name.
func ParseAgg(s string) (Agg, error) {
	switch Agg(s) {
	case AggMin, AggMax, AggAvg, AggLast:
		return Agg(s), nil
	}
	if q, ok := percentile(Agg(s)); ok && q >= 0 && q <= 100 {
		return Agg(s), nil
	}
	return "", fmt.Errorf("telemetry: unknown aggregation %q (want min|max|avg|last|pXX)", s)
}

func percentile(a Agg) (float64, bool) {
	s := string(a)
	if !strings.HasPrefix(s, "p") || len(s) < 2 {
		return 0, false
	}
	q, err := strconv.ParseFloat(s[1:], 64)
	if err != nil {
		return 0, false
	}
	return q, true
}

// Downsample buckets time-ordered samples into fixed step windows (bucket
// start = floor(At/step)*step) and reduces each bucket with agg. The result
// carries one sample per non-empty bucket, stamped at the bucket start.
// step <= 0 reduces the whole input to a single sample stamped at the first
// sample's bucket (the raw window's opening time).
func Downsample(samples []Sample, step time.Duration, agg Agg) []Sample {
	if len(samples) == 0 {
		return nil
	}
	if step <= 0 {
		v := reduce(samples, agg)
		return []Sample{{At: samples[0].At, Value: v}}
	}
	var out []Sample
	start := 0
	bucket := samples[0].At / step
	for i := 1; i <= len(samples); i++ {
		if i < len(samples) && samples[i].At/step == bucket {
			continue
		}
		out = append(out, Sample{At: bucket * step, Value: reduce(samples[start:i], agg)})
		if i < len(samples) {
			start = i
			bucket = samples[i].At / step
		}
	}
	return out
}

func reduce(samples []Sample, agg Agg) float64 {
	switch agg {
	case AggMin:
		v := math.Inf(1)
		for _, s := range samples {
			v = math.Min(v, s.Value)
		}
		return v
	case AggMax:
		v := math.Inf(-1)
		for _, s := range samples {
			v = math.Max(v, s.Value)
		}
		return v
	case AggAvg:
		sum := 0.0
		for _, s := range samples {
			sum += s.Value
		}
		return sum / float64(len(samples))
	case AggLast:
		return samples[len(samples)-1].Value
	}
	if q, ok := percentile(agg); ok {
		vals := make([]float64, len(samples))
		for i, s := range samples {
			vals[i] = s.Value
		}
		sort.Float64s(vals)
		rank := q / 100 * float64(len(vals)-1)
		lo, hi := int(math.Floor(rank)), int(math.Ceil(rank))
		if lo == hi {
			return vals[lo]
		}
		frac := rank - float64(lo)
		return vals[lo]*(1-frac) + vals[hi]*frac
	}
	// Unknown aggregations fall back to last (callers validate via ParseAgg).
	return samples[len(samples)-1].Value
}
