package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Agg is a downsampling aggregation: one of "min", "max", "avg", "last" or
// "pXX" (any percentile, e.g. "p50", "p95", "p99").
type Agg string

// Built-in aggregations; percentiles are parsed dynamically.
const (
	AggMin  Agg = "min"
	AggMax  Agg = "max"
	AggAvg  Agg = "avg"
	AggLast Agg = "last"
)

// ParseAgg validates an aggregation name.
func ParseAgg(s string) (Agg, error) {
	switch Agg(s) {
	case AggMin, AggMax, AggAvg, AggLast:
		return Agg(s), nil
	}
	if q, ok := percentile(Agg(s)); ok && q >= 0 && q <= 100 {
		return Agg(s), nil
	}
	return "", fmt.Errorf("telemetry: unknown aggregation %q (want min|max|avg|last|pXX)", s)
}

func percentile(a Agg) (float64, bool) {
	s := string(a)
	if !strings.HasPrefix(s, "p") || len(s) < 2 {
		return 0, false
	}
	q, err := strconv.ParseFloat(s[1:], 64)
	if err != nil {
		return 0, false
	}
	return q, true
}

// Downsample buckets time-ordered samples into fixed step windows (bucket
// start = floor(At/step)*step) and reduces each bucket with agg. The result
// carries one sample per non-empty bucket, stamped at the bucket start.
// step <= 0 reduces the whole input to a single sample stamped at the first
// sample's bucket (the raw window's opening time).
func Downsample(samples []Sample, step time.Duration, agg Agg) []Sample {
	if len(samples) == 0 {
		return nil
	}
	// One reducer for the whole call: its percentile scratch is allocated
	// once and reused across every bucket instead of per bucket.
	var r reducer
	if step <= 0 {
		v := r.reduce(samples, agg)
		return []Sample{{At: samples[0].At, Value: v}}
	}
	var out []Sample
	start := 0
	bucket := samples[0].At / step
	for i := 1; i <= len(samples); i++ {
		if i < len(samples) && samples[i].At/step == bucket {
			continue
		}
		out = append(out, Sample{At: bucket * step, Value: r.reduce(samples[start:i], agg)})
		if i < len(samples) {
			start = i
			bucket = samples[i].At / step
		}
	}
	return out
}

// reducer reduces sample windows while reusing one percentile scratch buffer
// across calls — the same single-sort core Store.Reduce builds on.
type reducer struct {
	scratch []float64
}

func (r *reducer) reduce(samples []Sample, agg Agg) float64 {
	switch agg {
	case AggMin:
		v := math.Inf(1)
		for _, s := range samples {
			v = math.Min(v, s.Value)
		}
		return v
	case AggMax:
		v := math.Inf(-1)
		for _, s := range samples {
			v = math.Max(v, s.Value)
		}
		return v
	case AggAvg:
		sum := 0.0
		for _, s := range samples {
			sum += s.Value
		}
		return sum / float64(len(samples))
	case AggLast:
		return samples[len(samples)-1].Value
	}
	if q, ok := percentile(agg); ok {
		r.scratch = r.scratch[:0]
		for _, s := range samples {
			r.scratch = append(r.scratch, s.Value)
		}
		sort.Float64s(r.scratch)
		return quantile(r.scratch, q)
	}
	// Unknown aggregations fall back to last (callers validate via ParseAgg).
	return samples[len(samples)-1].Value
}

// quantile interpolates the q-th percentile (q in [0, 100]) of an ascending
// sorted, non-empty value slice.
func quantile(sorted []float64, q float64) float64 {
	rank := q / 100 * float64(len(sorted)-1)
	lo, hi := int(math.Floor(rank)), int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
