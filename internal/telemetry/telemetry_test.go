package telemetry

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"snooze/internal/metrics"
	"snooze/internal/types"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

func TestStoreAppendQueryWindow(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 8})
	for i := 0; i < 5; i++ {
		s.Append("node/n1", "util", sec(i), float64(i))
	}
	got := s.Query("node/n1", "util", sec(1), sec(3))
	if len(got) != 3 {
		t.Fatalf("window [1s,3s]: %v", got)
	}
	for i, sm := range got {
		if sm.At != sec(i+1) || sm.Value != float64(i+1) {
			t.Fatalf("sample %d: %+v", i, sm)
		}
	}
	if got := s.Query("node/n1", "util", 0, 0); len(got) != 5 {
		t.Fatalf("unbounded window: %d samples", len(got))
	}
	if got := s.Query("node/nX", "util", 0, 0); got != nil {
		t.Fatalf("unknown series: %v", got)
	}
}

func TestStoreRingOverwrite(t *testing.T) {
	// NoTiers isolates the raw ring: evicted samples are dropped, not folded
	// into retention tiers (retention_test.go covers the tiered path).
	s := NewStore(StoreConfig{SeriesCapacity: 4, Tiers: NoTiers})
	for i := 0; i < 10; i++ {
		s.Append("e", "m", sec(i), float64(i))
	}
	got := s.Query("e", "m", 0, 0)
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, sm := range got {
		if want := float64(6 + i); sm.Value != want {
			t.Fatalf("sample %d = %v, want %v (oldest evicted first)", i, sm.Value, want)
		}
	}
	if s.TotalSamples() != 10 {
		t.Fatalf("TotalSamples = %d", s.TotalSamples())
	}
	if s.Len("e", "m") != 4 {
		t.Fatalf("Len = %d", s.Len("e", "m"))
	}
}

func TestStoreQueryEmptyWindow(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 8})
	for i := 0; i < 5; i++ {
		s.Append("e", "m", sec(i), float64(i))
	}
	// from > to is the explicit empty window: nil, even over a live series.
	if got := s.Query("e", "m", sec(3), sec(1)); got != nil {
		t.Fatalf("inverted window: %v", got)
	}
	if n := s.Window("e", "m", sec(3), sec(1), func([]Sample) { t.Fatal("visited") }); n != 0 {
		t.Fatalf("inverted window visit count: %d", n)
	}
	// A window past the retained range is empty but not nil-by-accident: the
	// binary search proves it without scanning.
	if got := s.Query("e", "m", sec(10), sec(20)); len(got) != 0 {
		t.Fatalf("future window: %v", got)
	}
	// Window edges are inclusive on both ends.
	if got := s.Query("e", "m", sec(1), sec(1)); len(got) != 1 || got[0].Value != 1 {
		t.Fatalf("single-point window: %v", got)
	}
}

func TestStoreWindowAcrossRingWrap(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 8, Tiers: NoTiers})
	for i := 0; i < 12; i++ { // ring wraps: retained are 4s..11s, head mid-buffer
		s.Append("e", "m", sec(i), float64(i))
	}
	// Full retained range.
	if got := s.Query("e", "m", 0, 0); len(got) != 8 || got[0].Value != 4 || got[7].Value != 11 {
		t.Fatalf("full wrapped window: %v", got)
	}
	// A window straddling the physical ring boundary stays time-ordered.
	got := s.Query("e", "m", sec(5), sec(10))
	if len(got) != 6 {
		t.Fatalf("straddling window: %v", got)
	}
	for i, sm := range got {
		if sm.Value != float64(i+5) {
			t.Fatalf("straddling window order: %v", got)
		}
	}
	// Edges: from before the oldest retained sample clips to it; to beyond
	// the newest clips to it.
	if got := s.Query("e", "m", sec(0), sec(4)); len(got) != 1 || got[0].Value != 4 {
		t.Fatalf("left-clipped window: %v", got)
	}
	if got := s.Query("e", "m", sec(11), sec(99)); len(got) != 1 || got[0].Value != 11 {
		t.Fatalf("right-clipped window: %v", got)
	}
	// The zero-copy visitor sees the same window as Query, in order, split
	// into at most two ring segments.
	var visited []Sample
	segments := 0
	n := s.Window("e", "m", sec(5), sec(10), func(seg []Sample) {
		segments++
		visited = append(visited, seg...)
	})
	if n != 6 || segments != 2 || len(visited) != 6 {
		t.Fatalf("visitor: n=%d segments=%d visited=%v", n, segments, visited)
	}
	for i, sm := range visited {
		if sm.Value != float64(i+5) {
			t.Fatalf("visitor order: %v", visited)
		}
	}
	if s.Window("e", "m", 0, 0, func([]Sample) {}) != 8 {
		t.Fatal("visitor full window")
	}
	if s.Window("ghost", "m", 0, 0, func([]Sample) { t.Fatal("visited") }) != 0 {
		t.Fatal("visitor unknown series")
	}
}

func TestStoreKeysSortedAndSharded(t *testing.T) {
	s := NewStore(StoreConfig{Shards: 4})
	s.Append("b", "y", 0, 1)
	s.Append("a", "z", 0, 1)
	s.Append("a", "x", 0, 1)
	keys := s.Keys()
	want := []Key{{"a", "x"}, {"a", "z"}, {"b", "y"}}
	if len(keys) != len(want) {
		t.Fatalf("keys: %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys[%d] = %v, want %v", i, keys[i], want[i])
		}
	}
	if s.NumSeries() != 3 {
		t.Fatalf("NumSeries = %d", s.NumSeries())
	}
}

func TestStoreConcurrentIngest(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 64})
	const writers, per = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			entity := fmt.Sprintf("node/n%02d", w)
			for i := 0; i < per; i++ {
				s.Append(entity, "util", sec(i), float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := s.TotalSamples(); got != writers*per {
		t.Fatalf("TotalSamples = %d, want %d", got, writers*per)
	}
	if s.NumSeries() != writers {
		t.Fatalf("NumSeries = %d", s.NumSeries())
	}
}

func TestDownsample(t *testing.T) {
	var in []Sample
	for i := 0; i < 10; i++ { // 0..9s, values 0..9
		in = append(in, Sample{At: sec(i), Value: float64(i)})
	}
	avg := Downsample(in, 5*time.Second, AggAvg)
	if len(avg) != 2 || avg[0].Value != 2 || avg[1].Value != 7 {
		t.Fatalf("avg: %v", avg)
	}
	if avg[0].At != 0 || avg[1].At != sec(5) {
		t.Fatalf("bucket stamps: %v", avg)
	}
	mn := Downsample(in, 5*time.Second, AggMin)
	mx := Downsample(in, 5*time.Second, AggMax)
	if mn[1].Value != 5 || mx[1].Value != 9 {
		t.Fatalf("min/max: %v %v", mn, mx)
	}
	p50 := Downsample(in, 0, "p50")
	if len(p50) != 1 || math.Abs(p50[0].Value-4.5) > 1e-9 {
		t.Fatalf("p50 whole-window: %v", p50)
	}
	last := Downsample(in, 0, AggLast)
	if last[0].Value != 9 {
		t.Fatalf("last: %v", last)
	}
	if out := Downsample(nil, time.Second, AggAvg); out != nil {
		t.Fatalf("empty input: %v", out)
	}
}

func TestParseAgg(t *testing.T) {
	for _, ok := range []string{"min", "max", "avg", "last", "p50", "p99", "p99.9"} {
		if _, err := ParseAgg(ok); err != nil {
			t.Fatalf("ParseAgg(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "mean", "p", "p101", "px"} {
		if _, err := ParseAgg(bad); err == nil {
			t.Fatalf("ParseAgg(%q) accepted", bad)
		}
	}
}

func TestJournalPublishReplay(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		ev := j.Publish(Event{Type: EventVMState, Entity: fmt.Sprintf("vm/v%d", i)})
		if ev.Seq != uint64(i+1) {
			t.Fatalf("seq %d on publish %d", ev.Seq, i)
		}
	}
	if j.FirstSeq() != 3 || j.LastSeq() != 6 {
		t.Fatalf("retention window [%d,%d], want [3,6]", j.FirstSeq(), j.LastSeq())
	}
	all := j.Replay(0, 0)
	if len(all) != 4 || all[0].Seq != 3 || all[3].Seq != 6 {
		t.Fatalf("replay all: %v", all)
	}
	some := j.Replay(5, 0)
	if len(some) != 2 || some[0].Seq != 5 {
		t.Fatalf("replay from 5: %v", some)
	}
	capped := j.Replay(0, 2)
	if len(capped) != 2 || capped[1].Seq != 4 {
		t.Fatalf("replay capped: %v", capped)
	}
}

func TestJournalSubscribeReplayThenLive(t *testing.T) {
	j := NewJournal(16)
	j.Publish(Event{Type: "a"})
	j.Publish(Event{Type: "b"})
	sub := j.Subscribe(2, 8)
	defer sub.Close()
	j.Publish(Event{Type: "c"})
	want := []string{"b", "c"}
	for i, w := range want {
		select {
		case ev := <-sub.Events():
			if ev.Type != w || ev.Seq != uint64(i+2) {
				t.Fatalf("event %d: %+v", i, ev)
			}
		case <-time.After(time.Second):
			t.Fatalf("timed out waiting for %q", w)
		}
	}
}

func TestJournalSlowSubscriberLagsOut(t *testing.T) {
	j := NewJournal(64)
	sub := j.Subscribe(0, 2)
	for i := 0; i < 5; i++ { // buffer 2 → overflow on the 3rd publish
		j.Publish(Event{Type: "x"})
	}
	// Drain: the channel must close after the buffered events.
	n := 0
	for range sub.Events() {
		n++
	}
	if n != 2 {
		t.Fatalf("delivered %d before lag-out, want 2", n)
	}
	if sub.Err() != ErrLagged {
		t.Fatalf("Err = %v, want ErrLagged", sub.Err())
	}
	if j.Subscribers() != 0 {
		t.Fatalf("lagged subscriber still registered")
	}
	sub.Close() // idempotent after lag-out
}

func nodeStatus(id string, usedCPU float64, vms int) types.NodeStatus {
	st := types.NodeStatus{
		Spec:  types.NodeSpec{ID: types.NodeID(id), Capacity: types.RV(8, 32768, 1000, 1000)},
		Power: types.PowerOn,
		Used:  types.RV(usedCPU, 1024, 1, 1),
	}
	for i := 0; i < vms; i++ {
		st.VMs = append(st.VMs, types.VMID(fmt.Sprintf("v%d", i)))
	}
	return st
}

func TestDetectorCrossingsAndRepeat(t *testing.T) {
	d := NewDetector(Thresholds{Overload: 0.9, Underload: 0.2, Repeat: 10 * time.Second})

	// First observation, normal: silent.
	if _, ok := d.Observe("node/n1", 0, nodeStatus("n1", 4, 1)); ok {
		t.Fatal("normal first observation fired")
	}
	// Crossing into overload fires once...
	ev, ok := d.Observe("node/n1", sec(3), nodeStatus("n1", 7.9, 2))
	if !ok || ev.Type != EventNodeOverload {
		t.Fatalf("overload crossing: %+v %v", ev, ok)
	}
	// ...then stays quiet until Repeat elapses.
	if _, ok := d.Observe("node/n1", sec(6), nodeStatus("n1", 7.9, 2)); ok {
		t.Fatal("re-fired before Repeat")
	}
	if ev, ok := d.Observe("node/n1", sec(13), nodeStatus("n1", 7.9, 2)); !ok || ev.Type != EventNodeOverload {
		t.Fatalf("no re-emission after Repeat: %+v %v", ev, ok)
	}
	// Recovery fires node.normal.
	if ev, ok := d.Observe("node/n1", sec(15), nodeStatus("n1", 4, 2)); !ok || ev.Type != EventNodeNormal {
		t.Fatalf("recovery: %+v %v", ev, ok)
	}
	if d.Condition("node/n1") != "normal" {
		t.Fatalf("condition: %s", d.Condition("node/n1"))
	}
	// Underload needs hosted VMs.
	if _, ok := d.Observe("node/n2", 0, nodeStatus("n2", 0.1, 0)); ok {
		t.Fatal("empty node classified underloaded")
	}
	if ev, ok := d.Observe("node/n3", 0, nodeStatus("n3", 0.1, 1)); !ok || ev.Type != EventNodeUnderload {
		t.Fatalf("underload: %+v %v", ev, ok)
	}
	// Powered-off nodes are never anomalous.
	st := nodeStatus("n3", 0.1, 1)
	st.Power = types.PowerSuspended
	if ev, ok := d.Observe("node/n3", sec(1), st); !ok || ev.Type != EventNodeNormal {
		t.Fatalf("suspended node should recover to normal: %+v %v", ev, ok)
	}
}

func TestDetectorSuppressedCrossingKeepsEventsPaired(t *testing.T) {
	d := NewDetector(Thresholds{Overload: 0.9, Underload: 0.2, Repeat: 15 * time.Second})
	// Announced overload at t=0, recovery at t=5.
	if ev, ok := d.Observe("node/n1", 0, nodeStatus("n1", 7.9, 1)); !ok || ev.Type != EventNodeOverload {
		t.Fatalf("first overload: %+v %v", ev, ok)
	}
	if ev, ok := d.Observe("node/n1", sec(5), nodeStatus("n1", 4, 1)); !ok || ev.Type != EventNodeNormal {
		t.Fatalf("first recovery: %+v %v", ev, ok)
	}
	// Re-crossing at t=7 is inside the cooldown: suppressed.
	if _, ok := d.Observe("node/n1", sec(7), nodeStatus("n1", 7.9, 1)); ok {
		t.Fatal("crossing inside cooldown fired")
	}
	// The suppressed episode must not close with an unpaired node.normal.
	if ev, ok := d.Observe("node/n1", sec(9), nodeStatus("n1", 4, 1)); ok {
		t.Fatalf("unpaired recovery fired: %+v", ev)
	}
	// After the cooldown, the next episode announces and pairs again.
	if ev, ok := d.Observe("node/n1", sec(20), nodeStatus("n1", 7.9, 1)); !ok || ev.Type != EventNodeOverload {
		t.Fatalf("post-cooldown overload: %+v %v", ev, ok)
	}
	if ev, ok := d.Observe("node/n1", sec(22), nodeStatus("n1", 4, 1)); !ok || ev.Type != EventNodeNormal {
		t.Fatalf("post-cooldown recovery: %+v %v", ev, ok)
	}
}

func TestStoreRemoveEntity(t *testing.T) {
	s := NewStore(StoreConfig{})
	s.Append("node/n1", "util", 0, 1)
	s.Append("node/n1", "vms", 0, 2)
	s.Append("node/n2", "util", 0, 3)
	s.RemoveEntity("node/n1")
	if s.NumSeries() != 1 || s.Len("node/n1", "util") != 0 || s.Len("node/n2", "util") != 1 {
		t.Fatalf("after remove: %v", s.Keys())
	}
}

func TestHubEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewHub(Options{Metrics: reg, Thresholds: Thresholds{Overload: 0.8, Underload: 0.2}})
	h.RecordNode(sec(1), nodeStatus("n1", 4, 1))
	if got := h.Store().Query("node/n1", "util", 0, 0); len(got) != 1 || got[0].Value != 0.5 {
		t.Fatalf("util series: %v", got)
	}
	h.RecordGroup(sec(1), types.GroupSummary{GM: "gm-00", Used: types.RV(4, 0, 0, 0), VMs: 3, ActiveLCs: 2})
	if got := h.Store().Query("gm/gm-00", "vms", 0, 0); len(got) != 1 || got[0].Value != 3 {
		t.Fatalf("group series: %v", got)
	}

	sub := h.Journal().Subscribe(0, 8)
	defer sub.Close()
	ev, fired := h.DetectNode(sec(2), nodeStatus("n1", 7.5, 2))
	if !fired || ev.Type != EventNodeOverload || ev.Seq == 0 {
		t.Fatalf("DetectNode: %+v %v", ev, fired)
	}
	select {
	case got := <-sub.Events():
		if got.Seq != ev.Seq || got.Entity != "node/n1" {
			t.Fatalf("fan-out event: %+v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("detector event not fanned out")
	}

	h.PublishGauges()
	if v, ok := reg.Gauge("telemetry.series"); !ok || v < 8 {
		t.Fatalf("series gauge: %v %v", v, ok)
	}
	if v, ok := reg.Gauge("telemetry.samples-total"); !ok || v < 8 {
		t.Fatalf("samples gauge: %v %v", v, ok)
	}
	if reg.Count("telemetry.events") == 0 {
		t.Fatal("event counter not recorded")
	}
}

func TestJournalObservers(t *testing.T) {
	j := NewJournal(16)
	var seen []uint64
	cancel := j.Observe(func(ev Event) { seen = append(seen, ev.Seq) })
	j.Publish(Event{Type: EventVMState})
	j.Publish(Event{Type: EventNodeIdle})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("observed: %v", seen)
	}
	cancel()
	cancel() // idempotent
	j.Publish(Event{Type: EventVMState})
	if len(seen) != 2 {
		t.Fatalf("observer survived cancel: %v", seen)
	}
}

func TestJournalObserverRunsOutsideLock(t *testing.T) {
	// An observer may publish back into the journal (e.g. a reaction event):
	// the fan-out must happen after the journal lock is released.
	j := NewJournal(16)
	reacted := false
	var cancel func()
	cancel = j.Observe(func(ev Event) {
		if ev.Type == EventNodeIdle && !reacted {
			reacted = true
			cancel()
			j.Publish(Event{Type: EventVMState})
		}
	})
	j.Publish(Event{Type: EventNodeIdle})
	if !reacted || j.LastSeq() != 2 {
		t.Fatalf("reentrant publish: reacted=%v lastSeq=%d", reacted, j.LastSeq())
	}
}

func TestHubForgetsTerminalVMs(t *testing.T) {
	h := NewHub(Options{})
	vm := types.VMStatus{Spec: types.VMSpec{ID: "v1"}, Used: types.RV(1, 100, 1, 1)}
	h.RecordVM(time.Second, vm)
	h.RecordVM(2*time.Second, vm)
	if h.Store().Len(VMEntity("v1"), "cpu.used") == 0 {
		t.Fatal("fixture: no samples recorded")
	}
	// Non-terminal states keep the series.
	h.Emit(EventVMState, VMEntity("v1"), 3*time.Second, A("state", "migrated"))
	if h.Store().Len(VMEntity("v1"), "cpu.used") == 0 {
		t.Fatal("non-terminal vm.state dropped the series")
	}
	// Terminal state drops every series of the VM.
	h.Emit(EventVMState, VMEntity("v1"), 4*time.Second, A("state", "failed"))
	for _, k := range h.Store().Keys() {
		if k.Entity == VMEntity("v1") {
			t.Fatalf("series %v lingers after terminal vm.state", k)
		}
	}
	// Attr-less events (and other entities) are untouched.
	h.Record(NodeEntity("n1"), "util", 5*time.Second, 0.5)
	h.Emit(EventVMState, VMEntity("v2"), 6*time.Second, Attrs{})
	if h.Store().Len(NodeEntity("n1"), "util") != 1 {
		t.Fatal("unrelated series affected")
	}
}
