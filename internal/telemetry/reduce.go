package telemetry

import (
	"math"
	"sort"
	"time"
)

// SummarySpec selects what Store.Reduce computes and owns the reusable
// scratch buffers, so a long-lived spec makes repeated reductions
// allocation-free. A spec must not be shared between concurrent Reduce calls
// (give each consumer its own, or serialize externally — the view cache
// guards its spec with the cache lock).
type SummarySpec struct {
	// Percentiles are the percentile ranks to compute, in [0, 100]
	// (e.g. 50, 95). All of them share one sort of the window's values.
	Percentiles []float64
	// Trend requests the least-squares slope of value over time (1/second).
	Trend bool

	scratch []float64 // window values, sorted once per Reduce
	out     []float64 // percentile results, aliased by Summary.Percentiles
}

// Summary is the result of one windowed reduction over the stitched series:
// raw samples plus, where the window reaches past the raw ring, downsampled
// tier buckets (valued at the bucket average). Min and Max are exact — they
// come from the buckets' retained extremes — while Avg, Percentiles and
// Trend are computed over the stitched point values, so on a Truncated
// window they are decimation approximations. Callers gating decisions on
// them must honour Truncated.
type Summary struct {
	// Count is the number of stitched points in the window (raw samples
	// count one each; a tier bucket counts one regardless of how many raw
	// samples it absorbed). The remaining fields are meaningful only when
	// Count > 0.
	Count int
	// Min, Max and Avg summarize the window's value distribution. Min/Max
	// are exact even across compacted history; Avg weights each stitched
	// point equally.
	Min, Max, Avg float64
	// First/Last are the oldest/newest point values with their timestamps.
	First, Last     float64
	FirstAt, LastAt time.Duration
	// Trend is the least-squares slope in 1/second (0 unless requested and
	// Count >= 2).
	Trend float64
	// NewestAt is the timestamp of the series' newest retained sample — of
	// the whole series, not the window. A caller reusing this summary for a
	// later window [from', to'] with to' > to needs NewestAt <= to to prove
	// the grown right edge admits nothing new.
	NewestAt time.Duration
	// OldestAt is the oldest retained timestamp of the series across every
	// retention tier — the eviction watermark's far edge. History before it
	// is gone entirely.
	OldestAt time.Duration
	// RawFrom is where full-resolution coverage begins: samples older than
	// RawFrom survive only as downsampled tier buckets (or not at all).
	// Equals OldestAt while nothing has been evicted.
	RawFrom time.Duration
	// Truncated reports that the window's left edge precedes RawFrom while
	// the series has evicted raw samples: part of the requested window was
	// decimated to tier resolution or lost outright, so percentile and trend
	// figures are approximations. Consumers feeding control decisions
	// (view.Builder freshness gating) must treat a truncated window as
	// untrustworthy history rather than a full-fidelity sample set.
	Truncated bool
	// Percentiles holds one value per SummarySpec.Percentiles rank, in spec
	// order. It aliases the spec's buffer: valid until the next Reduce with
	// the same spec.
	Percentiles []float64
	// Gen is the series' append generation at reduction time (0 for an
	// unknown series), taken under the same lock as the samples — a caller
	// caching this summary keyed by Gen can never associate it with data it
	// did not see.
	Gen uint64
}

// Reduce computes the windowed summary of (entity, metric) over At in
// [from, to] in a single pass under the shard read-lock, with one sort
// shared by every requested percentile and no per-call window copy: the only
// buffer touched is the spec's reusable scratch. The window is stitched
// across retention tiers (see Query); the returned watermark fields
// (Truncated, OldestAt, RawFrom) tell the caller whether it saw full-
// resolution history. to <= 0 means "no upper bound"; an empty window
// (from > to, unknown series, or no points in range) reports ok == false
// with the series' generation and watermark still populated.
func (s *Store) Reduce(entity, metric string, from, to time.Duration, spec *SummarySpec) (Summary, bool) {
	s.reductions.Add(1)
	if to <= 0 {
		to = time.Duration(1<<63 - 1)
	}
	sum := Summary{}
	if from > to {
		sum.Gen = s.Generation(entity, metric)
		return sum, false
	}
	wantPct := len(spec.Percentiles) > 0

	sh := s.shardFor(entity, metric)
	sh.mu.RLock()
	ser, ok := sh.series[Key{Entity: entity, Metric: metric}]
	if !ok {
		sh.mu.RUnlock()
		return sum, false
	}
	sum.Gen = ser.gen
	if ser.n > 0 {
		sum.NewestAt = ser.at(ser.n - 1).At
		sum.OldestAt = ser.oldestAt()
		sum.RawFrom = ser.rawFrom()
		sum.Truncated = ser.truncated(from)
	}
	if wantPct {
		spec.scratch = spec.scratch[:0]
	}
	var first, last point
	var mn, mx, total float64
	var sumT, sumV, sumTT, sumTV float64
	count := 0
	// Tier-resident (evicted) part of the window. Usually empty — scheduling
	// horizons live inside the raw ring — so the closure indirection is paid
	// only by genuinely truncated windows.
	if sum.Truncated && len(ser.tiers) > 0 {
		ser.visitTierPoints(from, to, func(p point) {
			if count == 0 {
				first, mn, mx = p, p.min, p.max
			} else {
				if p.min < mn {
					mn = p.min
				}
				if p.max > mx {
					mx = p.max
				}
			}
			last = p
			count++
			total += p.value
			if spec.Trend {
				t := p.at.Seconds()
				sumT += t
				sumV += p.value
				sumTT += t * t
				sumTV += t * p.value
			}
			if wantPct {
				spec.scratch = append(spec.scratch, p.value)
			}
		})
	}
	// Raw part: the hot path, kept as the branch-light inline loop the
	// pre-tiering Reduce ran (first/last hoisted, extremes on bare values).
	lo, hi := ser.bounds(from, to)
	if hi > lo {
		firstRaw, lastRaw := ser.at(lo), ser.at(hi-1)
		if count == 0 {
			first = rawPoint(firstRaw)
			mn, mx = firstRaw.Value, firstRaw.Value
		}
		last = rawPoint(lastRaw)
		count += hi - lo
		for i := lo; i < hi; i++ {
			sm := ser.at(i)
			if sm.Value < mn {
				mn = sm.Value
			}
			if sm.Value > mx {
				mx = sm.Value
			}
			total += sm.Value
			if spec.Trend {
				t := sm.At.Seconds()
				sumT += t
				sumV += sm.Value
				sumTT += t * t
				sumTV += t * sm.Value
			}
			if wantPct {
				spec.scratch = append(spec.scratch, sm.Value)
			}
		}
	}
	sh.mu.RUnlock()
	if count == 0 {
		return sum, false
	}

	sum.Count = count
	sum.First, sum.FirstAt = first.value, first.at
	sum.Last, sum.LastAt = last.value, last.at
	sum.Min, sum.Max, sum.Avg = mn, mx, total/float64(count)
	if spec.Trend && count >= 2 {
		n := float64(count)
		if denom := n*sumTT - sumT*sumT; denom != 0 && !math.IsNaN(denom) {
			sum.Trend = (n*sumTV - sumT*sumV) / denom
		}
	}
	if wantPct {
		// The single sort all percentile ranks share.
		sort.Float64s(spec.scratch)
		if cap(spec.out) < len(spec.Percentiles) {
			spec.out = make([]float64, len(spec.Percentiles))
		}
		spec.out = spec.out[:len(spec.Percentiles)]
		for i, q := range spec.Percentiles {
			spec.out[i] = quantile(spec.scratch, q)
		}
		sum.Percentiles = spec.out
	}
	return sum, true
}
