package telemetry

import (
	"math"
	"sort"
	"time"
)

// SummarySpec selects what Store.Reduce computes and owns the reusable
// scratch buffers, so a long-lived spec makes repeated reductions
// allocation-free. A spec must not be shared between concurrent Reduce calls
// (give each consumer its own, or serialize externally — the view cache
// guards its spec with the cache lock).
type SummarySpec struct {
	// Percentiles are the percentile ranks to compute, in [0, 100]
	// (e.g. 50, 95). All of them share one sort of the window's values.
	Percentiles []float64
	// Trend requests the least-squares slope of value over time (1/second).
	Trend bool

	scratch []float64 // window values, sorted once per Reduce
	out     []float64 // percentile results, aliased by Summary.Percentiles
}

// Summary is the result of one windowed reduction.
type Summary struct {
	// Count is the number of samples in the window. The remaining fields are
	// meaningful only when Count > 0.
	Count int
	// Min, Max and Avg summarize the window's value distribution.
	Min, Max, Avg float64
	// First/Last are the oldest/newest values with their timestamps.
	First, Last     float64
	FirstAt, LastAt time.Duration
	// Trend is the least-squares slope in 1/second (0 unless requested and
	// Count >= 2).
	Trend float64
	// NewestAt is the timestamp of the series' newest retained sample — of
	// the whole series, not the window. A caller reusing this summary for a
	// later window [from', to'] with to' > to needs NewestAt <= to to prove
	// the grown right edge admits no sample it has not seen.
	NewestAt time.Duration
	// Percentiles holds one value per SummarySpec.Percentiles rank, in spec
	// order. It aliases the spec's buffer: valid until the next Reduce with
	// the same spec.
	Percentiles []float64
	// Gen is the series' append generation at reduction time (0 for an
	// unknown series), taken under the same lock as the samples — a caller
	// caching this summary keyed by Gen can never associate it with data it
	// did not see.
	Gen uint64
}

// Reduce computes the windowed summary of (entity, metric) over At in
// [from, to] in a single pass under the shard read-lock, with one sort
// shared by every requested percentile and no per-call window copy: the only
// buffer touched is the spec's reusable scratch. to <= 0 means "no upper
// bound"; an empty window (from > to, unknown series, or no samples in
// range) reports ok == false with the series' generation still populated.
func (s *Store) Reduce(entity, metric string, from, to time.Duration, spec *SummarySpec) (Summary, bool) {
	s.reductions.Add(1)
	if to <= 0 {
		to = time.Duration(1<<63 - 1)
	}
	sum := Summary{}
	if from > to {
		sum.Gen = s.Generation(entity, metric)
		return sum, false
	}
	wantPct := len(spec.Percentiles) > 0

	sh := s.shardFor(entity, metric)
	sh.mu.RLock()
	ser, ok := sh.series[Key{Entity: entity, Metric: metric}]
	if !ok {
		sh.mu.RUnlock()
		return sum, false
	}
	sum.Gen = ser.gen
	if ser.n > 0 {
		sum.NewestAt = ser.at(ser.n - 1).At
	}
	lo, hi := ser.bounds(from, to)
	if hi <= lo {
		sh.mu.RUnlock()
		return sum, false
	}
	sum.Count = hi - lo
	first, last := ser.at(lo), ser.at(hi-1)
	sum.First, sum.FirstAt = first.Value, first.At
	sum.Last, sum.LastAt = last.Value, last.At
	if wantPct {
		spec.scratch = spec.scratch[:0]
	}
	mn, mx, total := first.Value, first.Value, 0.0
	var sumT, sumV, sumTT, sumTV float64
	for i := lo; i < hi; i++ {
		sm := ser.at(i)
		if sm.Value < mn {
			mn = sm.Value
		}
		if sm.Value > mx {
			mx = sm.Value
		}
		total += sm.Value
		if spec.Trend {
			t := sm.At.Seconds()
			sumT += t
			sumV += sm.Value
			sumTT += t * t
			sumTV += t * sm.Value
		}
		if wantPct {
			spec.scratch = append(spec.scratch, sm.Value)
		}
	}
	sh.mu.RUnlock()

	sum.Min, sum.Max, sum.Avg = mn, mx, total/float64(sum.Count)
	if spec.Trend && sum.Count >= 2 {
		n := float64(sum.Count)
		if denom := n*sumTT - sumT*sumT; denom != 0 && !math.IsNaN(denom) {
			sum.Trend = (n*sumTV - sumT*sumV) / denom
		}
	}
	if wantPct {
		// The single sort all percentile ranks share.
		sort.Float64s(spec.scratch)
		if cap(spec.out) < len(spec.Percentiles) {
			spec.out = make([]float64, len(spec.Percentiles))
		}
		spec.out = spec.out[:len(spec.Percentiles)]
		for i, q := range spec.Percentiles {
			spec.out[i] = quantile(spec.scratch, q)
		}
		sum.Percentiles = spec.out
	}
	return sum, true
}
