package telemetry

import (
	"math"
	"sort"
	"time"

	"snooze/internal/telemetry/sketch"
)

// SummarySpec selects what Store.Reduce computes and owns the reusable
// scratch buffers (including the scratch quantile sketch), so a long-lived
// spec makes repeated reductions allocation-free. A spec must not be shared
// between concurrent Reduce calls (give each consumer its own, or serialize
// externally — the view cache guards its spec with the cache lock).
type SummarySpec struct {
	// Percentiles are the percentile ranks to compute, in [0, 100]
	// (e.g. 50, 95).
	Percentiles []float64
	// Trend requests the least-squares slope of value over time (1/second).
	Trend bool
	// Exact forces the sort-based reference reduction for this spec's calls:
	// percentiles computed over the sorted window values instead of the
	// sketch estimate, at O(n log n) per call. StoreConfig.ExactReduce is the
	// store-wide equivalent. The exact path is the oracle the sketch property
	// tests compare against.
	Exact bool

	scratch []float64      // window values (exact mode), sorted once per Reduce
	weights []uint64       // per-value count weights, parallel to scratch (tier windows)
	sorter  weightedValues // persistent sort.Interface header over scratch+weights
	out     []float64      // percentile results, aliased by Summary.Percentiles
	sk      *sketch.Sketch // reusable scratch sketch for windowed sketch reductions
}

// Summary is the result of one windowed reduction over the stitched series:
// raw samples plus, where the window reaches past the raw ring, downsampled
// tier buckets (valued at the bucket average, weighted by their absorbed
// sample count). Min and Max are exact — they come from the buckets' retained
// extremes — while Avg, Percentiles and Trend are computed over the stitched
// point values. On a Truncated window they are decimation approximations;
// when the window covers the series' entire retained range, the default
// sketch mode instead answers from the series' lifetime distribution (every
// sample ever appended, at relative-error resolution) — strictly more honest
// than any decimated walk. Callers gating decisions must honour Truncated.
type Summary struct {
	// Count is the number of stitched points in the window (raw samples
	// count one each; a tier bucket counts one regardless of how many raw
	// samples it absorbed). The remaining fields are meaningful only when
	// Count > 0.
	Count int
	// Weight is the raw-sample mass behind the window's statistics: raw
	// samples weigh 1, tier buckets their absorbed Count, and the lifetime
	// fast path every sample ever appended. Equals Count when nothing in the
	// window was decimated.
	Weight uint64
	// Min, Max and Avg summarize the window's value distribution. Min/Max
	// are exact even across compacted history; Avg weights each stitched
	// point by its absorbed sample count.
	Min, Max, Avg float64
	// First/Last are the oldest/newest point values with their timestamps.
	First, Last     float64
	FirstAt, LastAt time.Duration
	// Trend is the least-squares slope in 1/second (0 unless requested and
	// the window holds >= 2 weighted samples).
	Trend float64
	// NewestAt is the timestamp of the series' newest retained sample — of
	// the whole series, not the window. A caller reusing this summary for a
	// later window [from', to'] with to' > to needs NewestAt <= to to prove
	// the grown right edge admits nothing new.
	NewestAt time.Duration
	// OldestAt is the oldest retained timestamp of the series across every
	// retention tier — the eviction watermark's far edge. History before it
	// survives only in the lifetime sketch.
	OldestAt time.Duration
	// RawFrom is where full-resolution coverage begins: samples older than
	// RawFrom survive only as downsampled tier buckets (or in the sketches).
	// Equals OldestAt while nothing has been evicted.
	RawFrom time.Duration
	// Truncated reports that the window's left edge precedes RawFrom while
	// the series has evicted raw samples: part of the requested window was
	// decimated to tier resolution or lost outright, so point-walk figures
	// are approximations. Consumers feeding control decisions (view.Builder
	// freshness gating) must treat a truncated window as untrustworthy
	// history rather than a full-fidelity sample set.
	Truncated bool
	// Percentiles holds one value per SummarySpec.Percentiles rank, in spec
	// order. It aliases the spec's buffer: valid until the next Reduce with
	// the same spec.
	Percentiles []float64
	// QuantileError is the relative-error bound on Percentiles: the sketch's
	// alpha when they are sketch-derived, 0 on the exact reference path.
	QuantileError float64
	// Gen is the series' append generation at reduction time (0 for an
	// unknown series), taken under the same lock as the samples — a caller
	// caching this summary keyed by Gen can never associate it with data it
	// did not see.
	Gen uint64
}

// weightedValues sorts a value slice and its parallel count-weight slice
// together — the exact reference reduction's weighted multiset.
type weightedValues struct {
	v []float64
	w []uint64
}

func (p *weightedValues) Len() int           { return len(p.v) }
func (p *weightedValues) Less(i, j int) bool { return p.v[i] < p.v[j] }
func (p *weightedValues) Swap(i, j int) {
	p.v[i], p.v[j] = p.v[j], p.v[i]
	p.w[i], p.w[j] = p.w[j], p.w[i]
}

// weightedQuantile returns percentile rank q over the expanded multiset in
// which sorted value vals[i] appears ws[i] times (total mass is the sum of
// ws), with the same rank convention and linear interpolation as quantile():
// with all weights 1 the two agree bit-for-bit.
func weightedQuantile(vals []float64, ws []uint64, total uint64, q float64) float64 {
	if len(vals) == 0 || total == 0 {
		return 0
	}
	if q <= 0 {
		return vals[0]
	}
	if q >= 100 {
		return vals[len(vals)-1]
	}
	rank := q / 100 * float64(total-1)
	lo := uint64(math.Floor(rank))
	frac := rank - float64(lo)
	// Locate the values at expanded indices lo and lo+1, then interpolate
	// with the same expression quantile() uses over an explicitly expanded
	// slice, so the two agree bit-for-bit.
	var cum uint64
	for i, w := range ws {
		cum += w
		if lo < cum {
			v0 := vals[i]
			if frac == 0 {
				return v0
			}
			v1 := v0
			if lo+1 >= cum && i+1 < len(vals) {
				v1 = vals[i+1]
			}
			return v0*(1-frac) + v1*frac
		}
	}
	return vals[len(vals)-1]
}

// Reduce computes the windowed summary of (entity, metric) over At in
// [from, to] in a single pass under the shard read-lock.
//
// In the default sketch mode, percentiles come from the sketch plane: a
// window covering the series' entire retained range is answered in O(1) from
// the per-series lifetime sketch and moments (no iteration at all — the path
// uncached capacity-view builds ride); any other window streams its stitched
// points into the spec's scratch sketch (no sort, no per-call allocation) and
// reads quantiles at relative-error QuantileError. With SummarySpec.Exact or
// StoreConfig.ExactReduce the sort-based reference reduction runs instead.
//
// Both modes weight each stitched point by its absorbed raw-sample count, so
// decimated history contributes to Avg, Trend and Percentiles in proportion
// to the samples behind it rather than one point per bucket.
//
// The window is stitched across retention tiers (see Query); the returned
// watermark fields (Truncated, OldestAt, RawFrom) tell the caller whether it
// saw full-resolution history. to <= 0 means "no upper bound"; an empty
// window (from > to, unknown series, or no points in range) reports
// ok == false with the series' generation and watermark still populated.
func (s *Store) Reduce(entity, metric string, from, to time.Duration, spec *SummarySpec) (Summary, bool) {
	s.reductions.Add(1)
	if to <= 0 {
		to = time.Duration(1<<63 - 1)
	}
	sum := Summary{}
	if from > to {
		sum.Gen = s.Generation(entity, metric)
		return sum, false
	}
	wantPct := len(spec.Percentiles) > 0
	exact := spec.Exact || s.exact

	sh := s.shardFor(entity, metric)
	sh.mu.RLock()
	ser, ok := sh.series[Key{Entity: entity, Metric: metric}]
	if !ok {
		sh.mu.RUnlock()
		return sum, false
	}
	sum.Gen = ser.gen
	if ser.n > 0 {
		sum.NewestAt = ser.at(ser.n - 1).At
		sum.OldestAt = ser.oldestAt()
		sum.RawFrom = ser.rawFrom()
		sum.Truncated = ser.truncated(from)

		// Covers-everything fast path: the window admits every retained
		// point, so the lifetime sketch and moments — maintained O(1) on
		// Append — already hold the answer. No iteration, no sort. A series
		// carrying an adopted replica (GM rollup, failover restore) answers
		// quantiles from the replicated member distribution.
		if !exact && ser.life != nil && from <= sum.OldestAt && to >= sum.NewestAt {
			qs := ser.life
			if ser.adopted != nil && ser.adopted.Count() > 0 {
				qs = ser.adopted
			}
			first := ser.oldestPoint()
			newest := ser.at(ser.n - 1)
			sum.Count = ser.retainedPoints()
			sum.Weight = ser.lifeM.N
			sum.First, sum.FirstAt = first.value, first.at
			sum.Last, sum.LastAt = newest.Value, newest.At
			sum.Min, sum.Max = qs.Min(), qs.Max()
			if ser.lifeM.N > 0 {
				sum.Avg = ser.lifeM.Sum / float64(ser.lifeM.N)
			}
			if spec.Trend {
				sum.Trend = ser.lifeM.trend()
			}
			if wantPct {
				if cap(spec.out) < len(spec.Percentiles) {
					spec.out = make([]float64, len(spec.Percentiles))
				}
				spec.out = spec.out[:len(spec.Percentiles)]
				for i, q := range spec.Percentiles {
					spec.out[i] = qs.Quantile(q)
				}
				sum.Percentiles = spec.out
				sum.QuantileError = qs.Alpha()
			}
			sh.mu.RUnlock()
			return sum, true
		}
	}
	if wantPct {
		spec.scratch = spec.scratch[:0]
		spec.weights = spec.weights[:0]
		if !exact {
			if spec.sk == nil || spec.sk.Alpha() != s.alpha {
				spec.sk = sketch.New(s.alpha)
			} else {
				spec.sk.Reset()
			}
		}
	}
	var first, last point
	var mn, mx, total float64
	var sumT, sumV, sumTT, sumTV float64
	count := 0
	var weight uint64
	// Tier-resident (evicted) part of the window. Usually empty — scheduling
	// horizons live inside the raw ring — so the closure indirection is paid
	// only by genuinely truncated windows. Each bucket contributes with its
	// absorbed sample count as weight.
	if sum.Truncated && len(ser.tiers) > 0 {
		ser.visitTierPoints(from, to, func(p point) {
			if count == 0 {
				first, mn, mx = p, p.min, p.max
			} else {
				if p.min < mn {
					mn = p.min
				}
				if p.max > mx {
					mx = p.max
				}
			}
			last = p
			count++
			w := float64(p.count)
			weight += uint64(p.count)
			total += p.value * w
			if spec.Trend {
				t := p.at.Seconds()
				sumT += t * w
				sumV += p.value * w
				sumTT += t * t * w
				sumTV += t * p.value * w
			}
			if wantPct {
				if exact {
					spec.scratch = append(spec.scratch, p.value)
					spec.weights = append(spec.weights, uint64(p.count))
				} else {
					spec.sk.InsertN(p.value, uint64(p.count))
				}
			}
		})
	}
	// Raw part: the hot path, kept as the branch-light inline loop the
	// pre-tiering Reduce ran (first/last hoisted, extremes on bare values,
	// unit weights).
	lo, hi := ser.bounds(from, to)
	if hi > lo {
		firstRaw, lastRaw := ser.at(lo), ser.at(hi-1)
		if count == 0 {
			first = rawPoint(firstRaw)
			mn, mx = firstRaw.Value, firstRaw.Value
		}
		last = rawPoint(lastRaw)
		count += hi - lo
		weight += uint64(hi - lo)
		for i := lo; i < hi; i++ {
			sm := ser.at(i)
			if sm.Value < mn {
				mn = sm.Value
			}
			if sm.Value > mx {
				mx = sm.Value
			}
			total += sm.Value
			if spec.Trend {
				t := sm.At.Seconds()
				sumT += t
				sumV += sm.Value
				sumTT += t * t
				sumTV += t * sm.Value
			}
			if wantPct {
				if exact {
					spec.scratch = append(spec.scratch, sm.Value)
				} else {
					spec.sk.Insert(sm.Value)
				}
			}
		}
	}
	sh.mu.RUnlock()
	if count == 0 {
		return sum, false
	}

	sum.Count = count
	sum.Weight = weight
	sum.First, sum.FirstAt = first.value, first.at
	sum.Last, sum.LastAt = last.value, last.at
	sum.Min, sum.Max, sum.Avg = mn, mx, total/float64(weight)
	if spec.Trend && weight >= 2 {
		n := float64(weight)
		if denom := n*sumTT - sumT*sumT; denom != 0 && !math.IsNaN(denom) {
			sum.Trend = (n*sumTV - sumT*sumV) / denom
		}
	}
	if wantPct {
		if cap(spec.out) < len(spec.Percentiles) {
			spec.out = make([]float64, len(spec.Percentiles))
		}
		spec.out = spec.out[:len(spec.Percentiles)]
		switch {
		case !exact:
			for i, q := range spec.Percentiles {
				spec.out[i] = spec.sk.Quantile(q)
			}
			sum.QuantileError = spec.sk.Alpha()
		case len(spec.weights) == 0:
			// Pure-raw exact window: the single shared sort, as before.
			sort.Float64s(spec.scratch)
			for i, q := range spec.Percentiles {
				spec.out[i] = quantile(spec.scratch, q)
			}
		default:
			// Tier-weighted exact window: sort values and weights together,
			// then rank over the expanded (count-weighted) multiset.
			for len(spec.weights) < len(spec.scratch) {
				spec.weights = append(spec.weights, 1)
			}
			spec.sorter.v, spec.sorter.w = spec.scratch, spec.weights
			sort.Sort(&spec.sorter)
			for i, q := range spec.Percentiles {
				spec.out[i] = weightedQuantile(spec.scratch, spec.weights, weight, q)
			}
		}
		sum.Percentiles = spec.out
	}
	return sum, true
}
