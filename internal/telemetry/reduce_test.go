package telemetry

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestStoreReduceBasics(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 16})
	for i := 0; i < 10; i++ { // values 0..9 at 0..9s
		s.Append("e", "m", sec(i), float64(i))
	}
	spec := &SummarySpec{Percentiles: []float64{0, 50, 100}, Trend: true, Exact: true}
	sum, ok := s.Reduce("e", "m", sec(2), sec(7), spec)
	if !ok || sum.Count != 6 {
		t.Fatalf("reduce [2s,7s]: %+v %v", sum, ok)
	}
	if sum.Min != 2 || sum.Max != 7 || sum.Avg != 4.5 {
		t.Fatalf("min/max/avg: %+v", sum)
	}
	if sum.First != 2 || sum.FirstAt != sec(2) || sum.Last != 7 || sum.LastAt != sec(7) {
		t.Fatalf("first/last: %+v", sum)
	}
	if len(sum.Percentiles) != 3 || sum.Percentiles[0] != 2 || sum.Percentiles[1] != 4.5 || sum.Percentiles[2] != 7 {
		t.Fatalf("percentiles: %v", sum.Percentiles)
	}
	// Values climb 1 per second.
	if math.Abs(sum.Trend-1) > 1e-9 {
		t.Fatalf("trend: %v", sum.Trend)
	}
	if sum.Gen != s.Generation("e", "m") {
		t.Fatalf("gen: %d vs %d", sum.Gen, s.Generation("e", "m"))
	}

	// Unbounded window (to <= 0).
	if sum, ok := s.Reduce("e", "m", 0, 0, spec); !ok || sum.Count != 10 {
		t.Fatalf("unbounded reduce: %+v %v", sum, ok)
	}
	// Unknown series: not ok, zero generation.
	if sum, ok := s.Reduce("ghost", "m", 0, 0, spec); ok || sum.Gen != 0 {
		t.Fatalf("unknown series: %+v %v", sum, ok)
	}
	// Empty window on a live series: not ok, generation still populated.
	if sum, ok := s.Reduce("e", "m", sec(100), sec(200), spec); ok || sum.Gen == 0 {
		t.Fatalf("empty window: %+v %v", sum, ok)
	}
	// Inverted window (from > to): explicit empty contract.
	if sum, ok := s.Reduce("e", "m", sec(7), sec(2), spec); ok || sum.Count != 0 {
		t.Fatalf("inverted window: %+v %v", sum, ok)
	}
	// A spec without percentiles or trend skips both.
	if sum, ok := s.Reduce("e", "m", 0, 0, &SummarySpec{}); !ok || sum.Percentiles != nil || sum.Trend != 0 {
		t.Fatalf("bare spec: %+v %v", sum, ok)
	}
}

// slopePerSecondRef is the pre-Reduce least-squares slope implementation the
// view package used, kept as the reference for the equivalence property.
func slopePerSecondRef(samples []Sample) float64 {
	n := float64(len(samples))
	if n < 2 {
		return 0
	}
	var sumT, sumV, sumTT, sumTV float64
	for _, s := range samples {
		t := s.At.Seconds()
		sumT += t
		sumV += s.Value
		sumTT += t * t
		sumTV += t * s.Value
	}
	denom := n*sumTT - sumT*sumT
	if denom == 0 || math.IsNaN(denom) {
		return 0
	}
	return (n*sumTV - sumT*sumV) / denom
}

// sketchWithin asserts a sketch-derived estimate is within relative error
// alpha of the empirical value bracket at percentile rank q of sorted
// (rank = q/100 * (n-1), floor/ceil endpoints).
func sketchWithin(t *testing.T, est float64, sorted []float64, q, alpha float64, ctx string) {
	t.Helper()
	if len(sorted) == 0 {
		return
	}
	rank := q / 100 * float64(len(sorted)-1)
	lo := sorted[int(math.Floor(rank))]
	hi := sorted[int(math.Ceil(rank))]
	lob := lo - alpha*math.Abs(lo) - 1e-12
	hib := hi + alpha*math.Abs(hi) + 1e-12
	if est < lob || est > hib {
		t.Fatalf("%s: p%.0f estimate %v outside [%v, %v] (alpha %v)", ctx, q, est, lob, hib, alpha)
	}
}

// TestReduceMatchesDownsample is the property-style equivalence check: over
// random series (including wrapped rings) and random windows, the single-
// pass single-sort exact Reduce must reproduce the legacy three-pass
// pipeline — Query copy + one whole-window Downsample per aggregate — bit
// for bit, and the default sketch-backed Reduce must agree with it within
// the configured relative-error bound.
func TestReduceMatchesDownsample(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	spec := &SummarySpec{Percentiles: []float64{50, 95}, Trend: true, Exact: true}
	skSpec := &SummarySpec{Percentiles: []float64{50, 95}, Trend: true}
	for trial := 0; trial < 200; trial++ {
		capacity := 4 + rng.Intn(60)
		// NoTiers: this property pins the RAW single-pass reduction against
		// the Query+Downsample reference; the tiered (stitched) equivalence
		// has its own reference-model test in retention_test.go.
		s := NewStore(StoreConfig{SeriesCapacity: capacity, Tiers: NoTiers})
		n := 1 + rng.Intn(2*capacity) // under- and over-filled rings
		at := time.Duration(0)
		var allValues []float64
		for i := 0; i < n; i++ {
			at += time.Duration(1+rng.Intn(5)) * time.Second
			v := rng.Float64() * 100
			s.Append("e", "m", at, v)
			allValues = append(allValues, v)
		}
		from := time.Duration(rng.Intn(int(at/time.Second)+1)) * time.Second
		to := from + time.Duration(rng.Intn(int(at/time.Second)+1))*time.Second

		raw := s.Query("e", "m", from, to)
		sum, ok := s.Reduce("e", "m", from, to, spec)
		if ok != (len(raw) > 0) || sum.Count != len(raw) {
			t.Fatalf("trial %d: count %d vs query %d (ok=%v)", trial, sum.Count, len(raw), ok)
		}
		if !ok {
			continue
		}
		if sum.QuantileError != 0 {
			t.Fatalf("trial %d: exact reduction reported error bound %v", trial, sum.QuantileError)
		}
		for i, agg := range []Agg{"p50", "p95"} {
			if want := Downsample(raw, 0, agg)[0].Value; sum.Percentiles[i] != want {
				t.Fatalf("trial %d: %s = %v, want %v", trial, agg, sum.Percentiles[i], want)
			}
		}
		if want := Downsample(raw, 0, AggMax)[0].Value; sum.Max != want {
			t.Fatalf("trial %d: max = %v, want %v", trial, sum.Max, want)
		}
		if want := Downsample(raw, 0, AggMin)[0].Value; sum.Min != want {
			t.Fatalf("trial %d: min = %v, want %v", trial, sum.Min, want)
		}
		if want := Downsample(raw, 0, AggAvg)[0].Value; sum.Avg != want {
			t.Fatalf("trial %d: avg = %v, want %v", trial, sum.Avg, want)
		}
		if want := slopePerSecondRef(raw); sum.Trend != want {
			t.Fatalf("trial %d: trend = %v, want %v", trial, sum.Trend, want)
		}

		// The default sketch mode: a window covering the whole retained range
		// answers from the lifetime sketch (every value ever appended, even
		// ones the NoTiers ring dropped); any other window streams exactly
		// the raw values the exact path sorted.
		skSum, skOk := s.Reduce("e", "m", from, to, skSpec)
		if skOk != ok {
			t.Fatalf("trial %d: sketch ok=%v exact ok=%v", trial, skOk, ok)
		}
		if skSum.QuantileError <= 0 {
			t.Fatalf("trial %d: sketch reduction reported no error bound", trial)
		}
		effTo := to
		if effTo <= 0 {
			effTo = 1 << 62 // Reduce's unbounded rewrite
		}
		ref := make([]float64, 0, len(allValues))
		if from <= sum.OldestAt && effTo >= sum.NewestAt {
			ref = append(ref, allValues...)
		} else {
			for _, sm := range raw {
				ref = append(ref, sm.Value)
			}
		}
		sortFloats(ref)
		for i, q := range skSpec.Percentiles {
			sketchWithin(t, skSum.Percentiles[i], ref, q, skSum.QuantileError, "sketch vs exact")
		}
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ { // insertion sort: tiny test inputs
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestStoreGeneration(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 4})
	if s.Generation("e", "m") != 0 {
		t.Fatal("unknown series must report generation 0")
	}
	s.Append("e", "m", sec(1), 1)
	g1 := s.Generation("e", "m")
	if g1 == 0 {
		t.Fatal("append did not set a generation")
	}
	s.Append("e", "m", sec(2), 2)
	g2 := s.Generation("e", "m")
	if g2 <= g1 {
		t.Fatalf("generation not monotonic: %d then %d", g1, g2)
	}
	// Appends to other series never disturb this one.
	s.Append("other", "m", sec(3), 3)
	if s.Generation("e", "m") != g2 {
		t.Fatal("unrelated append changed the generation")
	}
	// A dropped and recreated series can never replay an old generation:
	// generations draw from the store-wide counter.
	s.RemoveEntity("e")
	if s.Generation("e", "m") != 0 {
		t.Fatal("removed series must report generation 0")
	}
	s.Append("e", "m", sec(4), 4)
	if g := s.Generation("e", "m"); g <= g2 {
		t.Fatalf("recreated series replayed generation %d (old newest %d)", g, g2)
	}
}
