package telemetry

import (
	"errors"
	"sync"
	"time"
)

// Event type names emitted by the hierarchy. The node.* family comes from the
// threshold-crossing detectors, vm.state from placement/migration outcomes,
// hierarchy.* from membership changes.
const (
	EventNodeOverload  = "node.overload"
	EventNodeUnderload = "node.underload"
	EventNodeNormal    = "node.normal"
	EventNodeIdle      = "node.idle"
	EventVMState       = "vm.state"
	EventGMJoin        = "hierarchy.gm-join"
	EventGMFailed      = "hierarchy.gm-failed"
	EventLCJoin        = "hierarchy.lc-join"
	EventLCFailed      = "hierarchy.lc-failed"
	EventGLElected     = "hierarchy.gl-elected"
	EventRebalance     = "hierarchy.rebalance"
	// consolidation.* events are journaled by the online consolidation
	// optimizer: one per completed round and one per migration outcome
	// (executed, failed or cancelled by a trend shift).
	EventConsolidationRound     = "consolidation.round"
	EventConsolidationMigration = "consolidation.migration"
	// EventDecisionTrace is journaled once per finished decision span, with
	// the trace/span IDs in its attributes, so watch streams correlate with
	// GET /v1/traces.
	EventDecisionTrace = "decision.trace"
	// EventGMRecovered is journaled by a GM that rebuilt telemetry state from
	// a replicated snapshot + journal tail (failover recovery); its attributes
	// carry the source GM and the measured recovery latency.
	EventGMRecovered = "gm.failover-recovered"
	// EventMigrationAbandoned is journaled when a migration exhausted its
	// bounded retry budget and the GM gave up on the move.
	EventMigrationAbandoned = "gm.migration-abandoned"
)

// Event is one journal entry. Seq is assigned by the journal and is strictly
// monotonic; At is runtime-relative (virtual time in simulation).
type Event struct {
	Seq    uint64        `json:"seq"`
	At     time.Duration `json:"at"`
	Type   string        `json:"type"`
	Entity string        `json:"entity,omitempty"`
	Attrs  Attrs         `json:"attrs,omitzero"`
}

// ErrLagged terminates a subscription whose consumer fell behind the
// journal's fan-out buffer; the consumer should resubscribe from its last
// seen sequence number (the retained window will fill the gap).
var ErrLagged = errors.New("telemetry: subscriber lagged, events dropped")

// Subscription is one fan-out consumer of the journal.
type Subscription struct {
	j  *Journal
	ch chan Event

	mu     sync.Mutex
	err    error
	closed bool
}

// Events returns the delivery channel. It is closed when the subscription
// ends; check Err to distinguish Close from overflow (ErrLagged).
func (s *Subscription) Events() <-chan Event { return s.ch }

// Err reports why the channel closed (nil after a plain Close).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close detaches the subscription from the journal.
func (s *Subscription) Close() { s.j.unsubscribe(s, nil) }

// closeLocked finalizes the subscription; the journal's lock must be held.
func (s *Subscription) closeLocked(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = err
	s.mu.Unlock()
	close(s.ch)
}

// Journal is a fixed-capacity ring of events with monotonic sequence numbers
// and fan-out subscriptions. Publishes never block: a subscriber that cannot
// keep up is terminated with ErrLagged rather than stalling the hierarchy.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	head, n int
	nextSeq uint64
	subs    map[*Subscription]struct{}
	obs     map[uint64]Observer
	obsSeq  uint64
}

// NewJournal creates a journal retaining the last capacity events
// (default 1024).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Journal{
		buf:     make([]Event, capacity),
		nextSeq: 1,
		subs:    make(map[*Subscription]struct{}),
		obs:     make(map[uint64]Observer),
	}
}

// Observer is a synchronous journal consumer: Publish invokes it on the
// publishing goroutine, after the journal lock is released. Observers must
// be fast and non-blocking (schedule real work via a runtime timer); unlike
// channel subscriptions they cannot lag, which makes them the right hook for
// simulation-deterministic consumers such as the GM's event-driven energy
// manager.
type Observer func(Event)

// Observe registers a synchronous observer and returns its cancel function
// (idempotent).
func (j *Journal) Observe(fn Observer) (cancel func()) {
	j.mu.Lock()
	id := j.obsSeq
	j.obsSeq++
	j.obs[id] = fn
	j.mu.Unlock()
	return func() {
		j.mu.Lock()
		delete(j.obs, id)
		j.mu.Unlock()
	}
}

// publishLocked assigns the next sequence number, retains the event and fans
// it out to every subscription; the journal lock must be held. Subscribers
// that cannot keep up are cut off with ErrLagged.
func (j *Journal) publishLocked(ev Event) Event {
	ev.Seq = j.nextSeq
	j.nextSeq++
	if j.n < len(j.buf) {
		j.buf[(j.head+j.n)%len(j.buf)] = ev
		j.n++
	} else {
		j.buf[j.head] = ev
		j.head = (j.head + 1) % len(j.buf)
	}
	var lagged []*Subscription
	for s := range j.subs {
		select {
		case s.ch <- ev:
		default:
			lagged = append(lagged, s)
		}
	}
	for _, s := range lagged {
		delete(j.subs, s)
		s.closeLocked(ErrLagged)
	}
	return ev
}

// observersLocked snapshots the registered observers (nil when none); the
// journal lock must be held. Observers are invoked after the lock drops.
func (j *Journal) observersLocked() []Observer {
	if len(j.obs) == 0 {
		return nil
	}
	observers := make([]Observer, 0, len(j.obs))
	for _, fn := range j.obs {
		observers = append(observers, fn)
	}
	return observers
}

// Publish assigns the next sequence number, retains the event and fans it out
// to every subscription. It returns the completed event.
func (j *Journal) Publish(ev Event) Event {
	j.mu.Lock()
	ev = j.publishLocked(ev)
	observers := j.observersLocked()
	j.mu.Unlock()
	for _, fn := range observers {
		fn(ev)
	}
	return ev
}

// PublishBatch publishes evs in order under a single lock acquisition — the
// fan-out lock is the per-event cost batching amortizes, so a GM sweep that
// journals dozens of vm.state transitions pays it once. Sequence numbers are
// assigned contiguously in slice order; evs is updated in place with the
// completed events. Observers run after the lock drops, seeing the batch in
// sequence order.
func (j *Journal) PublishBatch(evs []Event) {
	if len(evs) == 0 {
		return
	}
	j.mu.Lock()
	for i := range evs {
		evs[i] = j.publishLocked(evs[i])
	}
	observers := j.observersLocked()
	j.mu.Unlock()
	for _, fn := range observers {
		for _, ev := range evs {
			fn(ev)
		}
	}
}

// Replay returns up to max retained events with Seq >= from, oldest first
// (max <= 0 means all retained).
func (j *Journal) Replay(from uint64, max int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayLocked(from, max)
}

func (j *Journal) replayLocked(from uint64, max int) []Event {
	var out []Event
	for i := 0; i < j.n; i++ {
		ev := j.buf[(j.head+i)%len(j.buf)]
		if ev.Seq < from {
			continue
		}
		out = append(out, ev)
		if max > 0 && len(out) == max {
			break
		}
	}
	return out
}

// FirstSeq returns the oldest retained sequence number (0 when empty).
func (j *Journal) FirstSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.n == 0 {
		return 0
	}
	return j.buf[j.head].Seq
}

// LastSeq returns the newest assigned sequence number (0 when none).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq - 1
}

// Subscribe opens a fan-out subscription whose channel first replays the
// retained events with Seq >= from, then receives live events with no gap
// (replay and registration are atomic). buffer is the channel capacity on
// top of the replay backlog (default 256); a consumer that falls further
// behind than that is cut off with ErrLagged.
func (j *Journal) Subscribe(from uint64, buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 256
	}
	j.mu.Lock()
	replay := j.replayLocked(from, 0)
	s := &Subscription{j: j, ch: make(chan Event, len(replay)+buffer)}
	for _, ev := range replay {
		s.ch <- ev
	}
	j.subs[s] = struct{}{}
	j.mu.Unlock()
	return s
}

func (j *Journal) unsubscribe(s *Subscription, err error) {
	j.mu.Lock()
	if _, ok := j.subs[s]; ok {
		delete(j.subs, s)
		s.closeLocked(err)
	} else {
		s.closeLocked(err) // already lagged out: Close stays idempotent
	}
	j.mu.Unlock()
}

// Subscribers returns the current fan-out width (instrumentation).
func (j *Journal) Subscribers() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.subs)
}
