package telemetry

import (
	"bytes"
	"encoding/json"
	"sort"
)

// attrsInline is the number of key/value pairs an Attrs holds without any
// heap allocation. Every emitter in the hierarchy fits (vm.state carries at
// most five pairs including the trace correlation); the overflow map only
// exists for external producers.
const attrsInline = 5

// Attrs is a small-size-optimized attribute set for journal events. Up to
// attrsInline pairs live in an inline array inside the value itself, so the
// emit hot path — build attrs, publish, fan out — performs zero heap
// allocations; larger sets spill into a map. Attrs is a value type: events
// copy it by value into the ring and subscriber channels, which is exactly
// what makes the inline representation safe.
//
// Construct with A (inline fast path) or AttrsFromMap; read with Get, Lookup,
// Len, Each or Map. The zero value is an empty set.
type Attrs struct {
	n  int
	kv [2 * attrsInline]string
	m  map[string]string
}

// A builds an Attrs from alternating key, value strings. Up to attrsInline
// pairs are stored inline with no allocation (the variadic slice does not
// escape); beyond that the set spills into a map. A trailing unpaired key is
// ignored.
func A(kv ...string) Attrs {
	var a Attrs
	n := len(kv) / 2
	if n <= attrsInline {
		a.n = n
		copy(a.kv[:], kv[:2*n])
		return a
	}
	a.m = make(map[string]string, n)
	for i := 0; i+1 < len(kv); i += 2 {
		a.m[kv[i]] = kv[i+1]
	}
	return a
}

// AttrsFromMap adopts m (no copy) as an attribute set. Small maps are not
// flattened inline: the caller already paid for the map, and adopting keeps
// conversion at the map-based API borders (obs spans, consolidation hosts)
// free.
func AttrsFromMap(m map[string]string) Attrs {
	if len(m) == 0 {
		return Attrs{}
	}
	return Attrs{m: m}
}

// IsZero reports whether the set is empty; encoding/json's omitzero uses it
// so empty attrs stay off the wire exactly like the former nil map.
func (a Attrs) IsZero() bool { return a.Len() == 0 }

// Len returns the number of pairs.
func (a Attrs) Len() int {
	if a.m != nil {
		return len(a.m)
	}
	return a.n
}

// Get returns the value for key ("" when absent).
func (a Attrs) Get(key string) string {
	v, _ := a.Lookup(key)
	return v
}

// Lookup returns the value for key and whether it is present.
func (a Attrs) Lookup(key string) (string, bool) {
	if a.m != nil {
		v, ok := a.m[key]
		return v, ok
	}
	for i := 0; i < a.n; i++ {
		if a.kv[2*i] == key {
			return a.kv[2*i+1], true
		}
	}
	return "", false
}

// Each calls f for every pair. Iteration order is insertion order for inline
// sets and map order otherwise.
func (a Attrs) Each(f func(k, v string)) {
	if a.m != nil {
		for k, v := range a.m {
			f(k, v)
		}
		return
	}
	for i := 0; i < a.n; i++ {
		f(a.kv[2*i], a.kv[2*i+1])
	}
}

// Map returns the pairs as a freshly allocated map (nil when empty) — the
// bridge to map-based consumers such as the HTTP API encoders.
func (a Attrs) Map() map[string]string {
	if a.Len() == 0 {
		return nil
	}
	m := make(map[string]string, a.Len())
	a.Each(func(k, v string) { m[k] = v })
	return m
}

// Set inserts or replaces a pair in place, spilling to a map when the inline
// array is full.
func (a *Attrs) Set(key, value string) {
	if a.m != nil {
		a.m[key] = value
		return
	}
	for i := 0; i < a.n; i++ {
		if a.kv[2*i] == key {
			a.kv[2*i+1] = value
			return
		}
	}
	if a.n < attrsInline {
		a.kv[2*a.n] = key
		a.kv[2*a.n+1] = value
		a.n++
		return
	}
	a.m = make(map[string]string, a.n+1)
	for i := 0; i < a.n; i++ {
		a.m[a.kv[2*i]] = a.kv[2*i+1]
	}
	a.m[key] = value
	a.n = 0
}

// MarshalJSON encodes the set as a JSON object with sorted keys, preserving
// the wire format of the former map[string]string representation (null when
// empty, matching omitempty expectations via Event's marshalling).
func (a Attrs) MarshalJSON() ([]byte, error) {
	if a.Len() == 0 {
		return []byte("{}"), nil
	}
	keys := make([]string, 0, a.Len())
	a.Each(func(k, _ string) { keys = append(keys, k) })
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		vb, err := json.Marshal(a.Get(k))
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		buf.Write(vb)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// UnmarshalJSON decodes a JSON object into the set.
func (a *Attrs) UnmarshalJSON(data []byte) error {
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*a = AttrsFromMap(m)
	return nil
}
