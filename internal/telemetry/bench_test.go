package telemetry

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkTelemetryIngest measures the concurrent sharded Append hot path:
// every goroutine streams samples into its own slice of a 256-entity keyspace,
// so shard locks are contended realistically (many entities, few collisions).
// This is the repo's recorded perf baseline (BENCH_telemetry.json).
func BenchmarkTelemetryIngest(b *testing.B) {
	s := NewStore(StoreConfig{SeriesCapacity: 512})
	const entities = 256
	names := make([]string, entities)
	for i := range names {
		names[i] = fmt.Sprintf("node/n%03d", i)
	}
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := next.Add(1)
		i := uint64(0)
		for pb.Next() {
			i++
			e := names[(id*31+i)%entities]
			s.Append(e, "util", time.Duration(i)*time.Millisecond, float64(i%100)/100)
		}
	})
	b.ReportMetric(float64(s.TotalSamples())/b.Elapsed().Seconds()/1e6, "Msamples/s")
}

// BenchmarkTelemetryQuery measures concurrent windowed reads with p95
// downsampling over full rings (read-side shard RLocks only; ingest has its
// own benchmark above).
func BenchmarkTelemetryQuery(b *testing.B) {
	s := NewStore(StoreConfig{SeriesCapacity: 512})
	const entities = 64
	for e := 0; e < entities; e++ {
		entity := fmt.Sprintf("node/n%03d", e)
		for i := 0; i < 512; i++ {
			s.Append(entity, "util", time.Duration(i)*time.Second, float64(i%100)/100)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			entity := fmt.Sprintf("node/n%03d", i%entities)
			raw := s.Query(entity, "util", 0, 512*time.Second)
			if out := Downsample(raw, 30*time.Second, "p95"); len(out) == 0 {
				b.Fatal("empty downsample")
			}
		}
	})
}

// BenchmarkStoreReduce measures the single-pass windowed reduction over full
// 512-sample rings: min/max/avg/trend plus two percentiles off one sort into
// the spec's reusable scratch — the store call Builder.Stats makes once per
// entity (instead of the former three Query copies + three Downsample sorts).
func BenchmarkStoreReduce(b *testing.B) {
	s := NewStore(StoreConfig{SeriesCapacity: 512})
	const entities = 64
	names := make([]string, entities)
	for e := 0; e < entities; e++ {
		names[e] = fmt.Sprintf("node/n%03d", e)
		for i := 0; i < 512; i++ {
			s.Append(names[e], "util", time.Duration(i)*time.Second, float64(i%100)/100)
		}
	}
	spec := &SummarySpec{Percentiles: []float64{50, 95}, Trend: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, ok := s.Reduce(names[i%entities], "util", 0, 512*time.Second, spec)
		if !ok || sum.Count != 512 {
			b.Fatalf("reduce: %+v %v", sum, ok)
		}
	}
}

// BenchmarkTelemetryJournalFanout measures Publish with a handful of live
// subscribers draining concurrently — the /v1/watch fan-out path.
func BenchmarkTelemetryJournalFanout(b *testing.B) {
	j := NewJournal(1024)
	const watchers = 4
	done := make(chan struct{})
	for w := 0; w < watchers; w++ {
		sub := j.Subscribe(0, 4096)
		go func() {
			for {
				select {
				case <-sub.Events():
				case <-done:
					return
				}
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Publish(Event{Type: EventVMState, Entity: "vm/bench"})
	}
	b.StopTimer()
	close(done)
}

// BenchmarkTelemetryJournalEmit measures the steady-state emit hot path: one
// vm.state event with inline attributes through Hub.Emit. The Attrs inline
// representation (no per-event map) is what makes this 0 allocs/op — the
// proof for the journal-emit satellite of the fleet-throughput work.
func BenchmarkTelemetryJournalEmit(b *testing.B) {
	h := NewHub(Options{})
	entity := VMEntity("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Emit(EventVMState, entity, time.Duration(i), A(
			"state", "running",
			"node", "node/n001",
			"reason", "monitor",
		))
	}
}

// BenchmarkTelemetryJournalEmitBatch measures the batched counterpart: 64
// vm.state events per EmitBatch through a single journal lock acquisition,
// the GM-sweep shape. The batch slice is reused, so steady state stays
// allocation-free per event.
func BenchmarkTelemetryJournalEmitBatch(b *testing.B) {
	h := NewHub(Options{})
	entity := VMEntity("bench")
	const batch = 64
	evs := make([]Event, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range evs {
			evs[j] = Event{At: time.Duration(i), Type: EventVMState, Entity: entity,
				Attrs: A("state", "running", "node", "node/n001", "reason", "monitor")}
		}
		h.EmitBatch(evs)
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkRetentionAppend measures the Append hot path once the raw ring is
// saturated: every append evicts a sample through the tier compaction
// cascade (fold into the 1m pending bucket, periodically flush into the 1m
// ring, rarely cascade into the 10m ring) — the steady state of any
// long-running deployment. Compaction must stay allocation-free after the
// tier rings exist.
func BenchmarkRetentionAppend(b *testing.B) {
	s := NewStore(StoreConfig{SeriesCapacity: 512}) // default 1m/10m tiers
	const entities = 64
	names := make([]string, entities)
	for i := range names {
		names[i] = fmt.Sprintf("node/n%03d", i)
		// Pre-wrap each ring so the timed region is pure steady-state
		// eviction (and the lazily-created tier rings already exist).
		for j := 0; j < 1024; j++ {
			s.Append(names[i], "util", time.Duration(j)*3*time.Second, float64(j%100)/100)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := names[i%entities]
		at := time.Duration(1024+i/entities) * 3 * time.Second
		s.Append(e, "util", at, float64(i%100)/100)
	}
}

// BenchmarkTieredReduce measures the stitched windowed reduction over a
// series whose history spans all three resolutions: the unbounded window
// covers the 10m ring, the 1m ring and the raw ring in one pass — the
// /v1/series long-range query shape and the worst case for Reduce.
func BenchmarkTieredReduce(b *testing.B) {
	s := NewStore(StoreConfig{SeriesCapacity: 512})
	const entities = 16
	names := make([]string, entities)
	for e := 0; e < entities; e++ {
		names[e] = fmt.Sprintf("node/n%03d", e)
		// ~25h of 3s cadence: wraps raw (512), fills the 1m ring (512
		// buckets) and spills well into the 10m ring.
		for i := 0; i < 30000; i++ {
			s.Append(names[e], "util", time.Duration(i)*3*time.Second, float64(i%100)/100)
		}
	}
	spec := &SummarySpec{Percentiles: []float64{50, 95}, Trend: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, ok := s.Reduce(names[i%entities], "util", 1, 0, spec)
		if !ok || !sum.Truncated {
			b.Fatalf("reduce: %+v %v", sum, ok)
		}
	}
}
