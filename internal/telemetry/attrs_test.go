package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

func TestAttrsInlineAndOverflow(t *testing.T) {
	a := A("state", "running", "node", "n1")
	if a.Len() != 2 || a.Get("state") != "running" || a.Get("node") != "n1" {
		t.Fatalf("inline attrs: %+v", a)
	}
	if _, ok := a.Lookup("missing"); ok {
		t.Fatal("phantom key")
	}
	if a.Get("missing") != "" {
		t.Fatal("missing key not empty")
	}

	// Odd trailing key is ignored.
	if got := A("k1", "v1", "dangling"); got.Len() != 1 || got.Get("k1") != "v1" {
		t.Fatalf("odd kv list: %+v", got)
	}

	// More than attrsInline pairs spill into the map and stay readable.
	kv := []string{"a", "1", "b", "2", "c", "3", "d", "4", "e", "5", "f", "6", "g", "7"}
	big := A(kv...)
	if big.Len() != 7 || big.Get("g") != "7" || big.Get("a") != "1" {
		t.Fatalf("overflow attrs: %+v", big)
	}

	// Set replaces in place, appends inline, then spills past capacity.
	var s Attrs
	for i := 0; i < attrsInline; i++ {
		s.Set(string(rune('a'+i)), "x")
	}
	s.Set("a", "y")
	if s.Len() != attrsInline || s.Get("a") != "y" {
		t.Fatalf("inline Set: %+v", s)
	}
	s.Set("spill", "z")
	if s.Len() != attrsInline+1 || s.Get("spill") != "z" || s.Get("a") != "y" {
		t.Fatalf("spilled Set: %+v", s)
	}

	// Map round-trips every pair.
	m := big.Map()
	if len(m) != 7 || m["d"] != "4" {
		t.Fatalf("Map: %+v", m)
	}
	back := AttrsFromMap(m)
	if back.Len() != 7 || back.Get("f") != "6" {
		t.Fatalf("AttrsFromMap: %+v", back)
	}
	if AttrsFromMap(nil).Len() != 0 || !AttrsFromMap(nil).IsZero() {
		t.Fatal("nil map not empty")
	}
}

func TestAttrsJSONWireFormat(t *testing.T) {
	// Events keep the map-object wire format: attrs is a JSON object with
	// the pairs, omitted entirely when empty.
	ev := Event{Seq: 7, At: time.Second, Type: EventVMState, Entity: "vm/v1",
		Attrs: A("state", "running", "node", "n1")}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":7,"at":1000000000,"type":"vm.state","entity":"vm/v1","attrs":{"node":"n1","state":"running"}}`
	if string(b) != want {
		t.Fatalf("wire form:\n got %s\nwant %s", b, want)
	}
	var dec Event
	if err := json.Unmarshal(b, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Attrs.Get("state") != "running" || dec.Attrs.Get("node") != "n1" || dec.Attrs.Len() != 2 {
		t.Fatalf("round-trip: %+v", dec.Attrs)
	}

	// Empty attrs are omitted, as the former nil map was.
	b, err = json.Marshal(Event{Seq: 1, Type: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"seq":1,"at":0,"type":"x"}` {
		t.Fatalf("empty attrs leaked onto the wire: %s", b)
	}
}

func TestJournalPublishBatch(t *testing.T) {
	j := NewJournal(8)
	j.Publish(Event{Type: "warmup"})

	var observed []uint64
	cancel := j.Observe(func(ev Event) { observed = append(observed, ev.Seq) })
	defer cancel()
	sub := j.Subscribe(0, 64)
	defer sub.Close()
	<-sub.Events() // drain the warmup replay

	batch := []Event{
		{At: time.Second, Type: "a"},
		{At: 2 * time.Second, Type: "b"},
		{At: 3 * time.Second, Type: "c"},
	}
	j.PublishBatch(batch)

	// Seqs are assigned contiguously in slice order and written back.
	for i, ev := range batch {
		if ev.Seq != uint64(2+i) {
			t.Fatalf("batch[%d].Seq = %d", i, ev.Seq)
		}
	}
	// Observers saw the batch in order.
	if len(observed) != 3 || observed[0] != 2 || observed[2] != 4 {
		t.Fatalf("observer order: %v", observed)
	}
	// Subscribers receive every event in order.
	for i := 0; i < 3; i++ {
		ev := <-sub.Events()
		if ev.Seq != uint64(2+i) {
			t.Fatalf("sub event %d: %+v", i, ev)
		}
	}
	// The ring retains the batch like individual publishes.
	if got := j.Replay(2, 0); len(got) != 3 || got[1].Type != "b" {
		t.Fatalf("replay: %+v", got)
	}
	if j.LastSeq() != 4 {
		t.Fatalf("LastSeq: %d", j.LastSeq())
	}

	j.PublishBatch(nil) // no-op
	if j.LastSeq() != 4 {
		t.Fatal("empty batch advanced seq")
	}
}

func TestHubEmitBatchForgetsTerminalVMs(t *testing.T) {
	h := NewHub(Options{})
	h.Record(VMEntity("dead"), "cpu.used", time.Second, 1)
	h.Record(VMEntity("alive"), "cpu.used", time.Second, 1)
	evs := []Event{
		{At: 2 * time.Second, Type: EventVMState, Entity: VMEntity("dead"), Attrs: A("state", "vanished")},
		{At: 2 * time.Second, Type: EventVMState, Entity: VMEntity("alive"), Attrs: A("state", "running")},
	}
	h.EmitBatch(evs)
	if evs[0].Seq == 0 || evs[1].Seq != evs[0].Seq+1 {
		t.Fatalf("batch seqs: %d %d", evs[0].Seq, evs[1].Seq)
	}
	if h.Store().Len(VMEntity("dead"), "cpu.used") != 0 {
		t.Fatal("terminal vm.state in batch did not forget the entity")
	}
	if h.Store().Len(VMEntity("alive"), "cpu.used") == 0 {
		t.Fatal("non-terminal vm.state in batch dropped the series")
	}
}

func TestStoreNewest(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 4})
	if _, ok := s.Newest("node/n1", "util"); ok {
		t.Fatal("phantom newest")
	}
	for i := 1; i <= 6; i++ { // wraps the 4-sample ring
		s.Append("node/n1", "util", time.Duration(i)*time.Second, float64(i))
	}
	sm, ok := s.Newest("node/n1", "util")
	if !ok || sm.At != 6*time.Second || sm.Value != 6 {
		t.Fatalf("newest: %+v %v", sm, ok)
	}
}
