package telemetry

import (
	"math"
	"sort"
	"time"

	"snooze/internal/telemetry/sketch"
)

// State snapshot and restore. A Store (and the Hub around it) can be
// serialized into a compact, structural snapshot — per-series raw ring, tier
// ladder, eviction watermarks and append generation — and rebuilt elsewhere,
// so a GM handoff can carry its windowed telemetry across the failure instead
// of resetting every capacity view to Fresh=false. The snapshot is a plain
// value (no internal pointers), safe to send over the in-memory transport or
// encode for a wire.
//
// The journal side of the same story is Journal.Import: archived events are
// re-inserted with their ORIGINAL sequence numbers, skipping any already
// present, so a hub reconstructs as snapshot + journal tail and a second
// replay of the same segment is a no-op (idempotent recovery).

// BucketSnapshot is one downsampled tier bucket in snapshot form.
type BucketSnapshot struct {
	At    time.Duration `json:"at"`
	Min   float64       `json:"min"`
	Max   float64       `json:"max"`
	Sum   float64       `json:"sum"`
	Count int           `json:"count"`
}

func bucketToSnapshot(b bucket) BucketSnapshot {
	return BucketSnapshot{At: b.at, Min: b.min, Max: b.max, Sum: b.sum, Count: b.count}
}

func (b BucketSnapshot) bucket() bucket {
	return bucket{at: b.At, min: b.Min, max: b.Max, sum: b.Sum, count: b.Count}
}

// TierSnapshot is one retention tier in snapshot form: the retained buckets
// oldest first, the still-growing pending bucket (Count 0 when idle) and the
// eviction watermark.
type TierSnapshot struct {
	Step     time.Duration    `json:"step"`
	Capacity int              `json:"capacity"`
	Buckets  []BucketSnapshot `json:"buckets,omitempty"`
	Pending  BucketSnapshot   `json:"pending"`
	Evicted  uint64           `json:"evicted"`
}

// SeriesSnapshot is one series in snapshot form: the raw samples oldest
// first, the tier ladder, the watermarks (Gen, Evicted) that preserve
// cache-key and Truncated semantics across a restore, and the mergeable
// quantile sketches + moments that preserve the lifetime distribution.
// Sketches ride even the trimmed SnapshotSince form — they are tiny next to
// the raw window and are precisely what lets a failover adopter answer
// honest percentiles for history the trim dropped.
type SeriesSnapshot struct {
	Entity      string          `json:"entity"`
	Metric      string          `json:"metric"`
	RawCapacity int             `json:"rawCapacity"`
	Samples     []Sample        `json:"samples,omitempty"`
	Gen         uint64          `json:"gen"`
	Evicted     uint64          `json:"evicted"`
	Tiers       []TierSnapshot  `json:"tiers,omitempty"`
	Life        *sketch.Encoded `json:"life,omitempty"`
	Evict       *sketch.Encoded `json:"evict,omitempty"`
	Adopted     *sketch.Encoded `json:"adopted,omitempty"`
	LifeM       Moments         `json:"lifeM"`
	EvictM      Moments         `json:"evictM"`
}

// StoreSnapshot is a structural copy of (a filtered subset of) a Store.
type StoreSnapshot struct {
	Series []SeriesSnapshot `json:"series,omitempty"`
}

// Snapshot copies every series whose entity passes filter (nil = all) into a
// snapshot. Series are sorted by entity then metric so snapshots of the same
// state are identical — the determinism the simulation harness relies on.
func (s *Store) Snapshot(filter func(entity string) bool) StoreSnapshot {
	return s.SnapshotSince(filter, 0)
}

// SnapshotSince is the bounded form of Snapshot that periodic state sync
// ships: each series is trimmed to the raw samples stamped at or after from,
// and the downsampled tier ladders are omitted — a failover successor needs
// the recent full-resolution window that keeps capacity views fresh, not the
// whole retention ladder. Trimmed samples count toward the snapshot's
// eviction watermark, so windows reaching past the trim are honestly
// reported as truncated after a restore. from <= 0 captures everything
// (identical to Snapshot).
func (s *Store) SnapshotSince(filter func(entity string) bool, from time.Duration) StoreSnapshot {
	var out StoreSnapshot
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, ser := range sh.series {
			if filter != nil && !filter(k.Entity) {
				continue
			}
			out.Series = append(out.Series, snapshotSeries(k, ser, from))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out.Series, func(i, j int) bool {
		if out.Series[i].Entity != out.Series[j].Entity {
			return out.Series[i].Entity < out.Series[j].Entity
		}
		return out.Series[i].Metric < out.Series[j].Metric
	})
	return out
}

func snapshotSeries(k Key, ser *series, from time.Duration) SeriesSnapshot {
	ss := SeriesSnapshot{
		Entity:      k.Entity,
		Metric:      k.Metric,
		RawCapacity: len(ser.buf),
		Gen:         ser.gen,
		Evicted:     ser.evicted,
		LifeM:       ser.lifeM,
		EvictM:      ser.evictM,
	}
	if ser.life != nil && ser.life.Count() > 0 {
		enc := ser.life.Encode()
		ss.Life = &enc
	}
	if ser.evict != nil && ser.evict.Count() > 0 {
		enc := ser.evict.Encode()
		ss.Evict = &enc
	}
	if ser.adopted != nil && ser.adopted.Count() > 0 {
		enc := ser.adopted.Encode()
		ss.Adopted = &enc
	}
	if from > 0 {
		if ser.n > 0 {
			lo := ser.searchAtLeast(from)
			if lo < ser.n {
				ss.Samples = make([]Sample, ser.n-lo)
				for i := lo; i < ser.n; i++ {
					ss.Samples[i-lo] = ser.at(i)
				}
			}
			ss.Evicted += uint64(lo)
		}
		return ss
	}
	if ser.n > 0 {
		ss.Samples = make([]Sample, ser.n)
		for i := 0; i < ser.n; i++ {
			ss.Samples[i] = ser.at(i)
		}
	}
	if len(ser.tiers) > 0 {
		ss.Tiers = make([]TierSnapshot, len(ser.tiers))
		for i := range ser.tiers {
			t := &ser.tiers[i]
			ts := TierSnapshot{Step: t.step, Capacity: t.cap, Pending: bucketToSnapshot(t.pending), Evicted: t.evicted}
			if t.n > 0 {
				ts.Buckets = make([]BucketSnapshot, t.n)
				for j := 0; j < t.n; j++ {
					ts.Buckets[j] = bucketToSnapshot(t.at(j))
				}
			}
			ss.Tiers[i] = ts
		}
	}
	return ss
}

// Restore rebuilds the snapshot's series in the store and returns how many
// were adopted. A series that already exists locally with data at least as
// new as the snapshot's is left alone (the local copy wins), so restoring
// into a hub that kept receiving live monitoring — the shared-hub simulation
// case — is a no-op rather than a rollback. The store-wide generation counter
// is advanced past every restored generation, preserving the "generations
// never repeat" contract for view caches.
func (s *Store) Restore(snap StoreSnapshot) int {
	restored := 0
	var maxGen uint64
	for i := range snap.Series {
		ss := &snap.Series[i]
		if ss.Gen > maxGen {
			maxGen = ss.Gen
		}
		if s.restoreSeries(ss) {
			restored++
		}
	}
	// Lift the sample counter to at least maxGen so future appends draw
	// generations strictly above every restored one.
	for {
		cur := s.samples.Load()
		if cur >= maxGen || s.samples.CompareAndSwap(cur, maxGen) {
			break
		}
	}
	return restored
}

func (s *Store) restoreSeries(ss *SeriesSnapshot) bool {
	if len(ss.Samples) == 0 && len(ss.Tiers) == 0 {
		return false
	}
	sh := s.shardFor(ss.Entity, ss.Metric)
	key := Key{Entity: ss.Entity, Metric: ss.Metric}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.series[key]; ok && cur.n > 0 {
		if len(ss.Samples) == 0 || cur.at(cur.n-1).At >= ss.Samples[len(ss.Samples)-1].At {
			return false
		}
	}
	capacity := ss.RawCapacity
	if capacity < len(ss.Samples) {
		capacity = len(ss.Samples)
	}
	if capacity <= 0 {
		capacity = s.capacity
	}
	ser := &series{buf: make([]Sample, capacity), n: len(ss.Samples), gen: ss.Gen, evicted: ss.Evicted, lifeM: ss.LifeM, evictM: ss.EvictM}
	copy(ser.buf, ss.Samples)
	// Rebuild the sketch plane. A snapshot that predates the sketches (or an
	// empty series) still gets live empty sketches so future appends feed
	// them; an encoded lifetime distribution is adopted verbatim, preserving
	// quantiles across the handoff even where the raw window was trimmed.
	if ss.Life != nil {
		ser.life = sketch.Decode(*ss.Life)
	} else {
		ser.life = sketch.New(s.alpha)
	}
	if ss.Evict != nil {
		ser.evict = sketch.Decode(*ss.Evict)
	} else {
		ser.evict = sketch.New(s.alpha)
	}
	if ss.Adopted != nil {
		ser.adopted = sketch.Decode(*ss.Adopted)
	}
	if len(ss.Tiers) > 0 {
		ser.tiers = make([]tier, len(ss.Tiers))
		for i, ts := range ss.Tiers {
			t := tier{step: ts.Step, cap: ts.Capacity, pending: ts.Pending.bucket(), evicted: ts.Evicted}
			if len(ts.Buckets) > 0 {
				size := t.cap
				if size < len(ts.Buckets) {
					size = len(ts.Buckets)
				}
				t.buf = make([]bucket, size)
				for j, b := range ts.Buckets {
					t.buf[j] = b.bucket()
				}
				t.n = len(ts.Buckets)
			}
			ser.tiers[i] = t
		}
	}
	sh.series[key] = ser
	return true
}

// Import re-inserts archived events into the journal PRESERVING their
// original sequence numbers, oldest first. Events whose Seq is not beyond the
// journal's last assigned sequence are skipped, which makes importing the
// same segment twice a no-op — the idempotence a journal-replay bootstrap
// needs when a recovery push races a periodic one. Imported events are
// retained for Replay/Subscribe but are NOT fanned out to observers: they
// already happened, and replaying them into the energy manager or liveness
// sweep would double-apply history. Returns how many events were adopted.
func (j *Journal) Import(evs []Event) int {
	if len(evs) == 0 {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	adopted := 0
	for _, ev := range evs {
		if ev.Seq < j.nextSeq {
			continue
		}
		j.nextSeq = ev.Seq + 1
		if j.n < len(j.buf) {
			j.buf[(j.head+j.n)%len(j.buf)] = ev
			j.n++
		} else {
			j.buf[j.head] = ev
			j.head = (j.head + 1) % len(j.buf)
		}
		adopted++
	}
	return adopted
}

// DetectorEntry is one entity's anomaly-detector state in snapshot form.
type DetectorEntry struct {
	Entity      string        `json:"entity"`
	Condition   string        `json:"condition"`
	LastAnomaly time.Duration `json:"lastAnomaly"`
	Announced   bool          `json:"announced"`
}

// Export copies the detector state of every entity passing filter (nil =
// all), sorted by entity for determinism.
func (d *Detector) Export(filter func(entity string) bool) []DetectorEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []DetectorEntry
	for entity, st := range d.nodes {
		if filter != nil && !filter(entity) {
			continue
		}
		out = append(out, DetectorEntry{
			Entity:      entity,
			Condition:   st.cond.name(),
			LastAnomaly: st.lastAnomaly,
			Announced:   st.announced,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entity < out[j].Entity })
	return out
}

// Import adopts exported detector state for entities the detector has not
// observed yet (live local state wins), re-arming cooldowns and open-anomaly
// episodes across a handoff so the successor neither re-fires a suppressed
// crossing nor drops the closing node.normal of an announced one.
func (d *Detector) Import(entries []DetectorEntry) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	adopted := 0
	for _, e := range entries {
		if _, ok := d.nodes[e.Entity]; ok {
			continue
		}
		d.nodes[e.Entity] = &detectorState{
			cond:        condFromName(e.Condition),
			lastAnomaly: e.LastAnomaly,
			announced:   e.Announced,
		}
		adopted++
	}
	return adopted
}

func (c nodeCondition) name() string {
	switch c {
	case condOverload:
		return "overload"
	case condUnderload:
		return "underload"
	default:
		return "normal"
	}
}

func condFromName(s string) nodeCondition {
	switch s {
	case "overload":
		return condOverload
	case "underload":
		return condUnderload
	default:
		return condNormal
	}
}

// HubSnapshot bundles everything a successor needs to rebuild a hub's view
// of one GM's world: the owned series, the owner stamps, the detector state,
// and the journal high-water mark the snapshot was cut at (events with
// Seq > BaseSeq form the replay tail).
type HubSnapshot struct {
	At       time.Duration     `json:"at"`
	Store    StoreSnapshot     `json:"store"`
	Owners   map[string]string `json:"owners,omitempty"`
	Detector []DetectorEntry   `json:"detector,omitempty"`
	BaseSeq  uint64            `json:"baseSeq"`
}

// Snapshot captures the hub state attributable to one owning GM: every
// series whose entity is Claim-ed by owner or is the GM's own gm/<id> series,
// the matching owner stamps and detector state, and the journal position.
// An empty owner captures everything (whole-hub snapshot).
func (h *Hub) Snapshot(at time.Duration, owner string) HubSnapshot {
	return h.SnapshotSince(at, owner, 0)
}

// SnapshotSince is Snapshot bounded to recent history: series carry only raw
// samples stamped at or after from, with no tier ladders (see
// Store.SnapshotSince) — the cheap form cut on every state-sync tick.
func (h *Hub) SnapshotSince(at time.Duration, owner string, from time.Duration) HubSnapshot {
	var filter func(string) bool
	owners := map[string]string{}
	if owner != "" {
		self := EntityGMPrefix + owner
		h.ownerMu.RLock()
		for entity, o := range h.owners {
			if o == owner {
				owners[entity] = o
			}
		}
		h.ownerMu.RUnlock()
		filter = func(entity string) bool {
			if entity == self {
				return true
			}
			_, ok := owners[entity]
			return ok
		}
	} else {
		h.ownerMu.RLock()
		for entity, o := range h.owners {
			owners[entity] = o
		}
		h.ownerMu.RUnlock()
	}
	return HubSnapshot{
		At:       at,
		Store:    h.store.SnapshotSince(filter, from),
		Owners:   owners,
		Detector: h.detector.Export(filter),
		BaseSeq:  h.journal.LastSeq(),
	}
}

// Restore applies a snapshot plus its journal tail to the hub: series and
// detector state are adopted where the local hub has nothing fresher, owner
// stamps are re-applied for adopted entities, and the tail events are
// imported seq-preserving (idempotent). Returns the number of series adopted
// and tail events imported.
func (h *Hub) Restore(snap HubSnapshot, tail []Event) (seriesAdopted, eventsImported int) {
	seriesAdopted = h.store.Restore(snap.Store)
	h.detector.Import(snap.Detector)
	if len(snap.Owners) > 0 {
		h.ownerMu.Lock()
		for entity, owner := range snap.Owners {
			if _, ok := h.owners[entity]; !ok {
				h.owners[entity] = owner
			}
		}
		h.ownerMu.Unlock()
	}
	eventsImported = h.journal.Import(tail)
	return seriesAdopted, eventsImported
}

// ValidSample reports whether a measurement is ingestible: finite and
// non-negative. Monitoring flows use it to reject corrupted reports (NaN,
// Inf, negative utilization) before they poison windowed statistics — a NaN
// sample would silently disable every threshold comparison downstream.
func ValidSample(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}
