package telemetry

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Brute-force reference model
//
// refSeries replays the tiered retention policy with plain slices and no
// rings: an independent (much slower) implementation the store must agree
// with point for point. Evictions pop the front of the raw slice into the
// finest tier's pending bucket; completed buckets append to the tier slice,
// whose own front-pops cascade down the ladder.
// ---------------------------------------------------------------------------

type refTier struct {
	step    time.Duration
	cap     int
	buckets []bucket
	pending bucket
}

type refSeries struct {
	cap   int
	raw   []Sample
	tiers []refTier
}

func newRefSeries(capacity int, tiers []TierConfig) *refSeries {
	r := &refSeries{cap: capacity}
	for _, tc := range tiers {
		r.tiers = append(r.tiers, refTier{step: tc.Step, cap: tc.Capacity})
	}
	return r
}

func (r *refSeries) append(sm Sample) {
	r.raw = append(r.raw, sm)
	for len(r.raw) > r.cap {
		old := r.raw[0]
		r.raw = r.raw[1:]
		r.absorb(0, bucket{at: old.At, min: old.Value, max: old.Value, sum: old.Value, count: 1})
	}
}

func (r *refSeries) absorb(i int, b bucket) {
	if i >= len(r.tiers) {
		return
	}
	t := &r.tiers[i]
	start := b.at - b.at%t.step
	if t.pending.count == 0 {
		t.pending = bucket{at: start, min: b.min, max: b.max, sum: b.sum, count: b.count}
		return
	}
	if start == t.pending.at {
		t.pending.fold(b)
		return
	}
	t.buckets = append(t.buckets, t.pending)
	t.pending = bucket{at: start, min: b.min, max: b.max, sum: b.sum, count: b.count}
	for len(t.buckets) > t.cap {
		old := t.buckets[0]
		t.buckets = t.buckets[1:]
		r.absorb(i+1, old)
	}
}

// points returns the stitched point sequence in [from, to], oldest first.
func (r *refSeries) points(from, to time.Duration) []point {
	var out []point
	for i := len(r.tiers) - 1; i >= 0; i-- {
		t := &r.tiers[i]
		for _, b := range t.buckets {
			if b.at >= from && b.at <= to {
				out = append(out, bucketPoint(b))
			}
		}
		if t.pending.count > 0 && t.pending.at >= from && t.pending.at <= to {
			out = append(out, bucketPoint(t.pending))
		}
	}
	for _, sm := range r.raw {
		if sm.At >= from && sm.At <= to {
			out = append(out, rawPoint(sm))
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

// tiersSmall is a fast-compacting ladder for tests: 10s buckets backed by
// 1m buckets.
func tiersSmall(c1, c2 int) []TierConfig {
	return []TierConfig{{Step: 10 * time.Second, Capacity: c1}, {Step: time.Minute, Capacity: c2}}
}

func TestTieredEvictionCompactsIntoBuckets(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 4, Tiers: tiersSmall(4, 4)})
	// 2s cadence: each 10s bucket absorbs 5 raw samples once they evict.
	for i := 0; i < 24; i++ {
		s.Append("e", "m", sec(2*i), float64(i))
	}
	// 24 appends, raw keeps 4 → 20 evicted (t = 0s..38s).
	info, ok := s.Info("e", "m")
	if !ok {
		t.Fatal("no info")
	}
	if info.RawPoints != 4 || info.Evicted != 20 {
		t.Fatalf("raw=%d evicted=%d", info.RawPoints, info.Evicted)
	}
	if info.RawFrom != sec(40) || info.NewestAt != sec(46) {
		t.Fatalf("rawFrom=%v newest=%v", info.RawFrom, info.NewestAt)
	}
	// Evicted samples 0..19 (t=0..38s) → 10s buckets at 0,10,20,30 complete
	// or pending. Bucket at 30s holds t=30..38 and is still pending (no
	// eviction past 40s yet).
	got := s.Query("e", "m", 0, 0)
	if len(got) != 4+4 {
		t.Fatalf("stitched points: %v", got)
	}
	// First bucket: samples 0..4 (t=0,2,4,6,8), avg = 2.
	if got[0].At != 0 || got[0].Value != 2 {
		t.Fatalf("first bucket: %+v", got[0])
	}
	// Oldest watermark is the first bucket's start.
	if info.OldestAt != 0 {
		t.Fatalf("oldestAt=%v", info.OldestAt)
	}
	if info.Points != 8 {
		t.Fatalf("points=%d", info.Points)
	}
}

func TestTierRingWrapAtEachTier(t *testing.T) {
	// Raw 2, tier1 holds 3 ten-second buckets, tier2 two one-minute buckets:
	// a long stream must wrap all three rings and lose the oldest history.
	s := NewStore(StoreConfig{SeriesCapacity: 2, Tiers: tiersSmall(3, 2)})
	ref := newRefSeries(2, tiersSmall(3, 2))
	for i := 0; i < 200; i++ {
		sm := Sample{At: sec(2 * i), Value: float64(i % 17)}
		s.Append("e", "m", sm.At, sm.Value)
		ref.append(sm)
	}
	info, ok := s.Info("e", "m")
	if !ok {
		t.Fatal("no info")
	}
	if len(info.Tiers) != 2 {
		t.Fatalf("tiers: %+v", info.Tiers)
	}
	if info.Tiers[0].Points != 3+1 { // full ring + pending
		t.Fatalf("tier1 points=%d", info.Tiers[0].Points)
	}
	if info.Tiers[1].Points != 2+1 {
		t.Fatalf("tier2 points=%d", info.Tiers[1].Points)
	}
	if info.Tiers[1].Evicted == 0 {
		t.Fatal("coarsest tier never wrapped")
	}
	// The store's stitched view must equal the reference model's.
	want := ref.points(0, 1<<62)
	got := s.Query("e", "m", 0, 0)
	if len(got) != len(want) {
		t.Fatalf("stitched %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].At != want[i].at || got[i].Value != want[i].value {
			t.Fatalf("point %d: %+v want %+v", i, got[i], want[i])
		}
	}
	// Time-ordered, no overlap.
	for i := 1; i < len(got); i++ {
		if got[i].At <= got[i-1].At {
			t.Fatalf("unordered stitch at %d: %v", i, got)
		}
	}
	if info.OldestAt != got[0].At {
		t.Fatalf("oldestAt=%v first=%v", info.OldestAt, got[0].At)
	}
}

func TestStitchedQueryAcrossTierEdges(t *testing.T) {
	s := NewStore(StoreConfig{SeriesCapacity: 4, Tiers: tiersSmall(4, 4)})
	ref := newRefSeries(4, tiersSmall(4, 4))
	for i := 0; i < 120; i++ {
		sm := Sample{At: sec(2 * i), Value: float64(i)}
		s.Append("e", "m", sm.At, sm.Value)
		ref.append(sm)
	}
	info, _ := s.Info("e", "m")
	// Windows straddling every coverage edge: tier2→tier1, tier1→raw, plus
	// interior and out-of-range windows.
	t1From := info.OldestAt + time.Minute
	edges := []struct{ from, to time.Duration }{
		{0, 1 << 62},                        // everything
		{info.RawFrom - sec(1), 1 << 62},    // just before raw coverage
		{info.RawFrom, 1 << 62},             // exactly raw coverage
		{t1From, info.RawFrom + sec(3)},     // tier interior into raw
		{info.RawFrom, info.RawFrom},        // single point at the raw edge
		{info.NewestAt, 1 << 62},            // newest only
		{info.NewestAt + sec(1), 1 << 62},   // nothing
		{info.OldestAt - sec(30), sec(100)}, // before retention into tiers
	}
	for _, w := range edges {
		got := s.Query("e", "m", w.from, w.to)
		want := ref.points(w.from, w.to)
		if len(got) != len(want) {
			t.Fatalf("[%v,%v]: %d points, want %d", w.from, w.to, len(got), len(want))
		}
		for i := range want {
			if got[i].At != want[i].at || got[i].Value != want[i].value {
				t.Fatalf("[%v,%v] point %d: %+v want %+v", w.from, w.to, i, got[i], want[i])
			}
		}
	}
}

// slopeRef recomputes the least-squares slope of points (the legacy
// reference formula, mirroring reduce_test's slopePerSecondRef).
func slopeRef(pts []point) float64 {
	if len(pts) < 2 {
		return 0
	}
	var sumT, sumV, sumTT, sumTV float64
	for _, p := range pts {
		ts := p.at.Seconds()
		sumT += ts
		sumV += p.value
		sumTT += ts * ts
		sumTV += ts * p.value
	}
	n := float64(len(pts))
	denom := n*sumTT - sumT*sumT
	if denom == 0 || math.IsNaN(denom) {
		return 0
	}
	return (n*sumTV - sumT*sumV) / denom
}

// weightedSlopeRef recomputes the count-weighted least-squares slope with
// the exact accumulation order Reduce uses (each point folded once, scaled
// by its absorbed sample count), so the equivalence assertion is bit-exact.
func weightedSlopeRef(pts []point) float64 {
	var sumT, sumV, sumTT, sumTV float64
	var weight uint64
	for _, p := range pts {
		w := float64(p.count)
		ts := p.at.Seconds()
		sumT += ts * w
		sumV += p.value * w
		sumTT += ts * ts * w
		sumTV += ts * p.value * w
		weight += uint64(p.count)
	}
	if weight < 2 {
		return 0
	}
	n := float64(weight)
	denom := n*sumTT - sumT*sumT
	if denom == 0 || math.IsNaN(denom) {
		return 0
	}
	return (n*sumTV - sumT*sumV) / denom
}

// TestTieredReduceMatchesReference pins the stitched exact reduction against
// the reference retention model under COUNT-WEIGHTED semantics: a decimated
// tier bucket contributes its average with the absorbed sample count as
// weight — to Avg, Trend and the percentile multiset alike — instead of one
// point per bucket. The expected percentiles are computed over the expanded
// multiset (each point repeated count times). The default sketch mode is
// checked against the same references within its error bound.
func TestTieredReduceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec := &SummarySpec{Percentiles: []float64{50, 95}, Trend: true, Exact: true}
	skSpec := &SummarySpec{Percentiles: []float64{50, 95}, Trend: true}
	for trial := 0; trial < 150; trial++ {
		capacity := 2 + rng.Intn(20)
		tiers := []TierConfig{
			{Step: time.Duration(5+rng.Intn(10)) * time.Second, Capacity: 2 + rng.Intn(8)},
			{Step: time.Duration(60+rng.Intn(60)) * time.Second, Capacity: 2 + rng.Intn(6)},
		}
		s := NewStore(StoreConfig{SeriesCapacity: capacity, Tiers: tiers})
		ref := newRefSeries(capacity, tiers)
		n := 1 + rng.Intn(300) // from under-filled raw to deep tier churn
		at := time.Duration(0)
		var allValues []float64
		for i := 0; i < n; i++ {
			at += time.Duration(1+rng.Intn(5)) * time.Second
			sm := Sample{At: at, Value: rng.Float64() * 100}
			s.Append("e", "m", sm.At, sm.Value)
			ref.append(sm)
			allValues = append(allValues, sm.Value)
		}
		from := time.Duration(rng.Intn(int(at/time.Second)+1)) * time.Second
		to := from + time.Duration(rng.Intn(int(at/time.Second)+1))*time.Second

		want := ref.points(from, to)
		sum, ok := s.Reduce("e", "m", from, to, spec)
		if ok != (len(want) > 0) || sum.Count != len(want) {
			t.Fatalf("trial %d: count %d vs ref %d (ok=%v)", trial, sum.Count, len(want), ok)
		}
		// Watermarks agree with the reference's retention state.
		evicted := uint64(n) - uint64(len(ref.raw))
		if sum.Truncated != (evicted > 0 && from < ref.raw[0].At) {
			t.Fatalf("trial %d: truncated=%v (evicted=%d from=%v rawFrom=%v)",
				trial, sum.Truncated, evicted, from, ref.raw[0].At)
		}
		if sum.RawFrom != ref.raw[0].At {
			t.Fatalf("trial %d: rawFrom=%v want %v", trial, sum.RawFrom, ref.raw[0].At)
		}
		if all := ref.points(0, 1<<62); sum.OldestAt != all[0].at {
			t.Fatalf("trial %d: oldestAt=%v want %v", trial, sum.OldestAt, all[0].at)
		}
		if !ok {
			continue
		}
		// Min/Max are exact: compare against the bucket-preserved extremes.
		// Avg/Trend/Percentiles weight every point by its absorbed count.
		mn, mx, total := want[0].min, want[0].max, 0.0
		var weight uint64
		var expanded []float64
		for _, p := range want {
			if p.min < mn {
				mn = p.min
			}
			if p.max > mx {
				mx = p.max
			}
			total += p.value * float64(p.count)
			weight += uint64(p.count)
			for j := 0; j < p.count; j++ {
				expanded = append(expanded, p.value)
			}
		}
		if sum.Min != mn || sum.Max != mx {
			t.Fatalf("trial %d: min/max %v/%v want %v/%v", trial, sum.Min, sum.Max, mn, mx)
		}
		if sum.Weight != weight {
			t.Fatalf("trial %d: weight %d want %d", trial, sum.Weight, weight)
		}
		if sum.Avg != total/float64(weight) {
			t.Fatalf("trial %d: avg %v want %v", trial, sum.Avg, total/float64(weight))
		}
		if sum.First != want[0].value || sum.Last != want[len(want)-1].value {
			t.Fatalf("trial %d: first/last", trial)
		}
		if got := weightedSlopeRef(want); sum.Trend != got {
			t.Fatalf("trial %d: trend %v want %v", trial, sum.Trend, got)
		}
		srt := sortedCopy(expanded)
		for i, q := range spec.Percentiles {
			if got := quantile(srt, q); sum.Percentiles[i] != got {
				t.Fatalf("trial %d: p%.0f = %v want %v", trial, q, sum.Percentiles[i], got)
			}
		}

		// Sketch mode over the same window: a covers-everything window
		// answers from the lifetime sketch (every appended value); a partial
		// window streams the identical weighted multiset the exact path
		// expanded. Either way the bound holds against its reference.
		skSum, skOk := s.Reduce("e", "m", from, to, skSpec)
		if skOk != ok {
			t.Fatalf("trial %d: sketch ok=%v exact ok=%v", trial, skOk, ok)
		}
		if skSum.QuantileError <= 0 {
			t.Fatalf("trial %d: sketch reduction reported no error bound", trial)
		}
		skRef := expanded
		if from <= sum.OldestAt && to >= sum.NewestAt {
			skRef = append([]float64(nil), allValues...)
		}
		skSrt := sortedCopy(skRef)
		for i, q := range skSpec.Percentiles {
			sketchWithin(t, skSum.Percentiles[i], skSrt, q, skSum.QuantileError, "tiered sketch vs exact")
		}
	}
}

func sortedCopy(v []float64) []float64 {
	out := append([]float64(nil), v...)
	for i := 1; i < len(out); i++ { // insertion sort: tiny test inputs
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestTruncationWatermark(t *testing.T) {
	// Samples start at t=100s, leaving positive timestamps below retention
	// for the empty-window probe (to <= 0 means unbounded, so the probe must
	// stay positive).
	s := NewStore(StoreConfig{SeriesCapacity: 4, Tiers: tiersSmall(4, 4)})
	spec := &SummarySpec{}
	for i := 0; i < 4; i++ {
		s.Append("e", "m", sec(100+10*i), float64(i))
	}
	// No eviction yet: nothing is truncated, even asking from before the
	// first sample.
	sum, ok := s.Reduce("e", "m", sec(1), 0, spec)
	if !ok || sum.Truncated || sum.OldestAt != sec(100) || sum.RawFrom != sec(100) {
		t.Fatalf("pre-eviction: %+v", sum)
	}
	// Wrap the raw ring.
	for i := 4; i < 8; i++ {
		s.Append("e", "m", sec(100+10*i), float64(i))
	}
	// Window fully inside raw coverage: full fidelity.
	sum, ok = s.Reduce("e", "m", sec(140), sec(170), spec)
	if !ok || sum.Truncated {
		t.Fatalf("raw window flagged truncated: %+v", sum)
	}
	if sum.RawFrom != sec(140) {
		t.Fatalf("rawFrom=%v", sum.RawFrom)
	}
	// Window reaching before RawFrom: decimated → truncated.
	sum, ok = s.Reduce("e", "m", sec(1), sec(170), spec)
	if !ok || !sum.Truncated {
		t.Fatalf("decimated window not flagged: %+v", sum)
	}
	// Empty window before all retention still reports the watermark.
	sumEmpty, ok := s.Reduce("e", "m", sec(1), sec(50), spec)
	if ok || !sumEmpty.Truncated || sumEmpty.Gen == 0 {
		t.Fatalf("pre-retention window: ok=%v %+v", ok, sumEmpty)
	}
	// Tiers disabled: evicted history is simply gone, and windows reaching
	// into it are truncated with OldestAt == RawFrom.
	s2 := NewStore(StoreConfig{SeriesCapacity: 4, Tiers: NoTiers})
	for i := 0; i < 8; i++ {
		s2.Append("e", "m", sec(100+10*i), float64(i))
	}
	sum, ok = s2.Reduce("e", "m", sec(1), 0, spec)
	if !ok || !sum.Truncated || sum.OldestAt != sum.RawFrom || sum.Count != 4 {
		t.Fatalf("tierless truncation: %+v", sum)
	}
}

func TestParseTiers(t *testing.T) {
	if tiers, err := ParseTiers(""); err != nil || tiers != nil {
		t.Fatalf("empty: %v %v", tiers, err)
	}
	if tiers, err := ParseTiers("none"); err != nil || tiers == nil || len(tiers) != 0 {
		t.Fatalf("none: %v %v", tiers, err)
	}
	tiers, err := ParseTiers("30s:64, 5m:32")
	if err != nil || len(tiers) != 2 || tiers[0].Step != 30*time.Second || tiers[0].Capacity != 64 ||
		tiers[1].Step != 5*time.Minute || tiers[1].Capacity != 32 {
		t.Fatalf("ladder: %v %v", tiers, err)
	}
	for _, bad := range []string{"1m", "1m:", ":5", "0s:4", "1m:0", "5m:8,1m:8", "x:1"} {
		if _, err := ParseTiers(bad); err == nil {
			t.Fatalf("%q parsed", bad)
		}
	}
}

func TestEntityNewest(t *testing.T) {
	s := NewStore(StoreConfig{})
	s.Append("vm/a", "cpu.used", sec(10), 1)
	s.Append("vm/a", "mem.used", sec(14), 1) // newest across metrics wins
	s.Append("vm/b", "cpu.used", sec(3), 1)
	s.Append("node/n1", "util", sec(99), 1)
	got := s.EntityNewest("vm/")
	if len(got) != 2 || got["vm/a"] != sec(14) || got["vm/b"] != sec(3) {
		t.Fatalf("EntityNewest: %v", got)
	}
	if len(s.EntityNewest("gm/")) != 0 {
		t.Fatal("phantom prefix match")
	}
}

func TestSanitizeTiers(t *testing.T) {
	// nil → defaults; junk entries dropped; non-ascending steps dropped.
	if got := sanitizeTiers(nil); len(got) != 2 {
		t.Fatalf("default ladder: %v", got)
	}
	got := sanitizeTiers([]TierConfig{{Step: time.Minute, Capacity: 8}, {Step: time.Second, Capacity: 8}, {Step: 0, Capacity: 1}, {Step: 10 * time.Minute, Capacity: 4}})
	if len(got) != 2 || got[0].Step != time.Minute || got[1].Step != 10*time.Minute {
		t.Fatalf("sanitized: %v", got)
	}
}
