package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactBounds returns the empirical values bracketing percentile rank q of
// the sorted multiset under the floor/ceil rank convention the sketch and
// the exact reference reduction share (rank = q/100 * (n-1)).
func exactBounds(sorted []float64, q float64) (lo, hi float64) {
	if len(sorted) == 0 {
		return 0, 0
	}
	rank := q / 100 * float64(len(sorted)-1)
	f := int(math.Floor(rank))
	c := int(math.Ceil(rank))
	if c >= len(sorted) {
		c = len(sorted) - 1
	}
	return sorted[f], sorted[c]
}

// withinBound asserts est is inside [(1-alpha)*lo, (1+alpha)*hi] where
// lo/hi bracket the true empirical rank value.
func withinBound(t *testing.T, est, lo, hi, alpha float64, ctx string) {
	t.Helper()
	lob := lo - alpha*math.Abs(lo) - 1e-12
	hib := hi + alpha*math.Abs(hi) + 1e-12
	if est < lob || est > hib {
		t.Fatalf("%s: estimate %v outside [%v, %v] (empirical [%v, %v], alpha %v)", ctx, est, lob, hib, lo, hi, alpha)
	}
}

func TestQuantileRelativeErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, alpha := range []float64{0.005, 0.01, 0.05} {
		for trial := 0; trial < 20; trial++ {
			s := New(alpha)
			n := 1 + rng.Intn(4000)
			vals := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				var v float64
				switch rng.Intn(4) {
				case 0:
					v = 0 // idle utilization
				case 1:
					v = rng.Float64() // fractions
				case 2:
					v = math.Exp(rng.Float64()*20 - 4) // heavy-tailed, up to ~e^16
				default:
					v = float64(rng.Intn(10000)) / 100
				}
				vals = append(vals, v)
				s.Insert(v)
			}
			sort.Float64s(vals)
			if got := s.Count(); got != uint64(n) {
				t.Fatalf("count = %d, want %d", got, n)
			}
			if s.Min() != vals[0] || s.Max() != vals[len(vals)-1] {
				t.Fatalf("min/max = %v/%v, want %v/%v", s.Min(), s.Max(), vals[0], vals[len(vals)-1])
			}
			for _, q := range []float64{0, 1, 10, 25, 50, 75, 90, 95, 99, 100} {
				lo, hi := exactBounds(vals, q)
				withinBound(t, s.Quantile(q), lo, hi, alpha, "quantile")
			}
		}
	}
}

func TestInsertNMatchesRepeatedInsert(t *testing.T) {
	a, b := New(0.01), New(0.01)
	vals := []float64{0, 0.25, 3, 3, 3, 42.5, 1e6}
	for _, v := range vals {
		a.InsertN(v, 5)
		for i := 0; i < 5; i++ {
			b.Insert(v)
		}
	}
	for _, q := range []float64{0, 10, 50, 90, 100} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q%v: InsertN %v != repeated %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
	if a.Count() != b.Count() || a.Sum() != b.Sum() {
		t.Fatalf("count/sum mismatch: %d/%v vs %d/%v", a.Count(), a.Sum(), b.Count(), b.Sum())
	}
}

// TestMergeEquivalence pins merge-then-query ≡ query-then-merge: a random
// tree of same-alpha merges must yield bit-identical quantiles to one sketch
// fed every value directly, and stay within bound of the exact multiset.
func TestMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		parts := 2 + rng.Intn(6)
		sketches := make([]*Sketch, parts)
		direct := New(0.01)
		var all []float64
		for p := 0; p < parts; p++ {
			sketches[p] = New(0.01)
			n := rng.Intn(1000)
			for i := 0; i < n; i++ {
				v := math.Exp(rng.Float64()*12 - 2)
				if rng.Intn(10) == 0 {
					v = 0
				}
				sketches[p].Insert(v)
				direct.Insert(v)
				all = append(all, v)
			}
		}
		// Random merge tree: repeatedly merge a random sketch into another.
		for len(sketches) > 1 {
			i := rng.Intn(len(sketches) - 1)
			sketches[i].Merge(sketches[i+1])
			sketches = append(sketches[:i+1], sketches[i+2:]...)
		}
		merged := sketches[0]
		if merged.Count() != direct.Count() {
			t.Fatalf("merged count %d != direct %d", merged.Count(), direct.Count())
		}
		sort.Float64s(all)
		for _, q := range []float64{0, 5, 50, 95, 99, 100} {
			if m, d := merged.Quantile(q), direct.Quantile(q); m != d {
				t.Fatalf("q%v: merged %v != direct %v", q, m, d)
			}
			if len(all) > 0 {
				lo, hi := exactBounds(all, q)
				withinBound(t, merged.Quantile(q), lo, hi, 0.01, "merged quantile")
			}
		}
	}
}

func TestMergeMixedAlpha(t *testing.T) {
	coarse, fine := New(0.05), New(0.01)
	vals := []float64{1, 2, 4, 8, 16, 32}
	for _, v := range vals {
		coarse.Insert(v)
	}
	fine.InsertN(64, 2)
	fine.Merge(coarse)
	if fine.Count() != 8 {
		t.Fatalf("count = %d, want 8", fine.Count())
	}
	if fine.Min() != 1 || fine.Max() != 64 {
		t.Fatalf("min/max = %v/%v, want 1/64", fine.Min(), fine.Max())
	}
	wantSum := 1.0 + 2 + 4 + 8 + 16 + 32 + 128
	if math.Abs(fine.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", fine.Sum(), wantSum)
	}
	// Compounded bound: alpha_fine + alpha_coarse (+ cross term, negligible).
	sorted := append(append([]float64(nil), vals...), 64, 64)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 50, 100} {
		lo, hi := exactBounds(sorted, q)
		withinBound(t, fine.Quantile(q), lo, hi, 0.07, "mixed-alpha quantile")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(0.02)
	var vals []float64
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 100
		if i%7 == 0 {
			v = 0
		}
		s.Insert(v)
		vals = append(vals, v)
	}
	enc := s.Encode()
	dec := Decode(enc)
	if dec.Count() != s.Count() || dec.Min() != s.Min() || dec.Max() != s.Max() || dec.Sum() != s.Sum() || dec.Alpha() != s.Alpha() {
		t.Fatalf("round trip lost exact stats")
	}
	for _, q := range []float64{0, 25, 50, 75, 95, 100} {
		if dec.Quantile(q) != s.Quantile(q) {
			t.Fatalf("q%v: decoded %v != original %v", q, dec.Quantile(q), s.Quantile(q))
		}
	}
	// A decoded sketch keeps merging correctly.
	dec.Merge(s)
	if dec.Count() != 2*s.Count() {
		t.Fatalf("merge after decode: count %d, want %d", dec.Count(), 2*s.Count())
	}
	// Corrupt encoding decodes to an empty sketch, not a lying one.
	enc.Total += 3
	if bad := Decode(enc); bad.Count() != 0 {
		t.Fatalf("corrupt encoding decoded to count %d, want 0", bad.Count())
	}
}

func TestZerosAndEmpty(t *testing.T) {
	s := New(0.01)
	if s.Quantile(50) != 0 || s.Count() != 0 || s.Min() != 0 || s.Max() != 0 || s.Avg() != 0 {
		t.Fatalf("empty sketch not all-zero")
	}
	s.InsertN(0, 10)
	if s.Quantile(0) != 0 || s.Quantile(100) != 0 {
		t.Fatalf("all-zero sketch quantiles nonzero")
	}
	s.Insert(5)
	if got := s.Quantile(100); math.Abs(got-5) > 0.05 {
		t.Fatalf("q100 = %v, want ~5", got)
	}
	if got := s.Quantile(50); got != 0 {
		t.Fatalf("q50 = %v, want 0 (10 zeros vs 1 five)", got)
	}
	s.Insert(math.NaN())
	s.Insert(math.Inf(1))
	if s.Count() != 11 {
		t.Fatalf("non-finite values were counted")
	}
}

func TestResetReuse(t *testing.T) {
	s := New(0.01)
	for i := 1; i <= 100; i++ {
		s.Insert(float64(i))
	}
	s.Reset()
	if s.Count() != 0 || s.Quantile(50) != 0 {
		t.Fatalf("reset left residue")
	}
	s.Insert(7)
	if got := s.Quantile(50); math.Abs(got-7) > 0.07 {
		t.Fatalf("post-reset q50 = %v, want ~7", got)
	}
	if s.Min() != 7 || s.Max() != 7 || s.Count() != 1 {
		t.Fatalf("post-reset stats wrong: min %v max %v count %d", s.Min(), s.Max(), s.Count())
	}
}

func TestNewClampsAlpha(t *testing.T) {
	if got := New(0).Alpha(); got != DefaultAlpha {
		t.Fatalf("New(0) alpha = %v, want %v", got, DefaultAlpha)
	}
	if got := New(-1).Alpha(); got != DefaultAlpha {
		t.Fatalf("New(-1) alpha = %v, want %v", got, DefaultAlpha)
	}
	if got := New(0.9).Alpha(); got != maxAlpha {
		t.Fatalf("New(0.9) alpha = %v, want %v", got, maxAlpha)
	}
}

func TestClone(t *testing.T) {
	s := New(0.01)
	for i := 1; i <= 50; i++ {
		s.Insert(float64(i))
	}
	c := s.Clone()
	c.Insert(1e9)
	if s.Max() == c.Max() {
		t.Fatalf("clone shares state with original")
	}
	if s.Count() != 50 || c.Count() != 51 {
		t.Fatalf("counts: original %d clone %d", s.Count(), c.Count())
	}
}

func benchValues(n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	return vals
}

func BenchmarkSketchInsert(b *testing.B) {
	vals := benchValues(1024)
	s := New(DefaultAlpha)
	for _, v := range vals {
		s.Insert(v) // warm the bucket window
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(vals[i&1023])
	}
}

func BenchmarkSketchMerge(b *testing.B) {
	vals := benchValues(8192)
	left, right := New(DefaultAlpha), New(DefaultAlpha)
	for i, v := range vals {
		if i%2 == 0 {
			left.Insert(v)
		} else {
			right.Insert(v)
		}
	}
	scratch := New(DefaultAlpha)
	scratch.Merge(left)
	scratch.Merge(right) // warm the bucket window
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Reset()
		scratch.Merge(left)
		scratch.Merge(right)
	}
}

func BenchmarkSketchReduce(b *testing.B) {
	vals := benchValues(8192)
	s := New(DefaultAlpha)
	for _, v := range vals {
		s.Insert(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(50)
		_ = s.Quantile(95)
	}
}
