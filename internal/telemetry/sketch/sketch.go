// Package sketch implements a mergeable quantile sketch for the statistics
// plane: a DDSketch-style fixed-gamma log-bucket histogram with a
// relative-error guarantee. Inserting a value costs O(1) (a log, a ceil and a
// counter bump) and allocates nothing once the bucket range has been seen;
// quantile queries walk the bucket array (O(buckets), no sort); two sketches
// with the same accuracy parameter merge by bucket-wise count addition, so
// GM→GL rollups and failover state sync can ship whole distributions instead
// of point averages.
//
// Accuracy model: for a configured relative error alpha, values are mapped to
// buckets at gamma = (1+alpha)/(1-alpha) resolution. A rank-q query returns a
// value v' such that |v' - v| <= alpha*v for the true rank-q value v, for all
// v > the zero threshold (values at or below it — including exact zeros,
// ubiquitous in idle utilization series — collapse into a dedicated zero
// bucket and are reported as 0). Min, max, sum and count are tracked exactly,
// and quantile estimates are clamped into [Min, Max].
//
// The sketch is NOT safe for concurrent use; callers synchronize exactly as
// they do for the series rings it shadows (the telemetry store mutates
// sketches under its shard locks).
package sketch

import "math"

// DefaultAlpha is the relative-error bound used when New is given a
// non-positive alpha: 1% — p95 of a utilization series is off by at most one
// part in a hundred, far inside the noise of the monitoring cadence.
const DefaultAlpha = 0.01

// zeroThreshold is the smallest value tracked at relative resolution; values
// at or below it land in the zero bucket. Utilization fractions, MB and Mbps
// rates all sit far above it.
const zeroThreshold = 1e-9

// maxAlpha bounds the configurable relative error; a looser sketch than 50%
// would be meaningless.
const maxAlpha = 0.5

// Sketch is a mergeable log-bucket quantile sketch. The zero value is not
// usable; construct with New or Decode.
type Sketch struct {
	alpha    float64
	gamma    float64
	logGamma float64

	// counts[i] holds the population of bucket offset+i; bucket k covers the
	// value interval (gamma^(k-1), gamma^k]. The window grows on demand and
	// is the only allocation the sketch ever makes after construction.
	offset int
	counts []uint64

	zero  uint64 // values <= zeroThreshold (incl. exact zeros)
	total uint64
	min   float64
	max   float64
	sum   float64
}

// New creates an empty sketch with the given relative-error bound alpha
// (clamped to (0, 0.5]; non-positive selects DefaultAlpha).
func New(alpha float64) *Sketch {
	if alpha <= 0 || math.IsNaN(alpha) {
		alpha = DefaultAlpha
	}
	if alpha > maxAlpha {
		alpha = maxAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{alpha: alpha, gamma: gamma, logGamma: math.Log(gamma)}
}

// Alpha returns the sketch's relative-error bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count returns the number of inserted values.
func (s *Sketch) Count() uint64 { return s.total }

// Sum returns the exact sum of inserted values.
func (s *Sketch) Sum() float64 { return s.sum }

// Min returns the exact minimum inserted value (0 when empty).
func (s *Sketch) Min() float64 {
	if s.total == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum inserted value (0 when empty).
func (s *Sketch) Max() float64 {
	if s.total == 0 {
		return 0
	}
	return s.max
}

// Avg returns the exact mean of inserted values (0 when empty).
func (s *Sketch) Avg() float64 {
	if s.total == 0 {
		return 0
	}
	return s.sum / float64(s.total)
}

// Insert records one value. Non-finite values are ignored.
func (s *Sketch) Insert(v float64) { s.InsertN(v, 1) }

// InsertN records a value n times in O(1) — the count-weighted insert the
// stitched tier reduction uses (a decimated bucket's average enters with the
// bucket's absorbed sample count as its weight).
func (s *Sketch) InsertN(v float64, n uint64) {
	if n == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if s.total == 0 || v < s.min {
		s.min = v
	}
	if s.total == 0 || v > s.max {
		s.max = v
	}
	s.total += n
	s.sum += v * float64(n)
	if v <= zeroThreshold {
		s.zero += n
		return
	}
	s.bucketAt(s.index(v)).add(n)
}

// index maps a value > zeroThreshold to its bucket: the smallest k with
// gamma^k >= v.
func (s *Sketch) index(v float64) int {
	return int(math.Ceil(math.Log(v) / s.logGamma))
}

// estimate returns the representative value of bucket k: 2*gamma^k/(gamma+1),
// the point whose relative distance to both bucket edges is exactly alpha.
func (s *Sketch) estimate(k int) float64 {
	return 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
}

type bucketRef struct {
	s   *Sketch
	pos int
}

func (b bucketRef) add(n uint64) { b.s.counts[b.pos] += n }

// bucketAt returns a reference to bucket k, growing the count window to
// cover it. Inserts inside the seen range are allocation-free.
func (s *Sketch) bucketAt(k int) bucketRef {
	if len(s.counts) == 0 {
		s.offset = k
		if s.counts == nil {
			s.counts = make([]uint64, 1, 8)
		} else {
			s.counts = s.counts[:1]
			s.counts[0] = 0
		}
		return bucketRef{s, 0}
	}
	if k < s.offset {
		shift, need := s.offset-k, s.offset-k+len(s.counts)
		if cap(s.counts) >= need {
			old := len(s.counts)
			s.counts = s.counts[:need]
			copy(s.counts[shift:], s.counts[:old])
			for i := 0; i < shift; i++ {
				s.counts[i] = 0
			}
		} else {
			grown := make([]uint64, need)
			copy(grown[shift:], s.counts)
			s.counts = grown
		}
		s.offset = k
		return bucketRef{s, 0}
	}
	if pos := k - s.offset; pos < len(s.counts) {
		return bucketRef{s, pos}
	}
	for k-s.offset >= len(s.counts) {
		s.counts = append(s.counts, 0)
	}
	return bucketRef{s, k - s.offset}
}

// Merge folds another sketch into this one. Sketches built at the same alpha
// merge exactly (bucket-wise count addition); a differing alpha degrades
// gracefully by re-inserting the other sketch's bucket representatives
// count-weighted, compounding the two error bounds instead of failing.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.total == 0 {
		return
	}
	mn, mx := o.min, o.max
	if s.total > 0 {
		if s.min < mn {
			mn = s.min
		}
		if s.max > mx {
			mx = s.max
		}
	}
	if o.gamma == s.gamma {
		s.total += o.total
		s.sum += o.sum
		s.zero += o.zero
		for i, c := range o.counts {
			if c > 0 {
				s.bucketAt(o.offset + i).add(c)
			}
		}
	} else {
		// Mixed-alpha path: re-insert o's bucket representatives count-
		// weighted (compounds the two error bounds), then restore the exact
		// sum the representatives approximated.
		sum := s.sum + o.sum
		s.total += o.zero
		s.zero += o.zero
		for i, c := range o.counts {
			if c > 0 {
				s.InsertN(o.estimate(o.offset+i), c)
			}
		}
		s.sum = sum
	}
	// Exact extremes survive the merge; InsertN must not widen them with a
	// bucket representative that overshoots o's true max by alpha.
	s.min, s.max = mn, mx
}

// Quantile returns the estimated value at percentile rank q in [0, 100],
// using the same rank convention as the exact reference reduction
// (rank = q/100 * (count-1) over the sorted multiset). The estimate is within
// relative error Alpha of the true rank value and clamped into [Min, Max].
// An empty sketch returns 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 100 {
		q = 100
	}
	rank := q / 100 * float64(s.total-1)
	cum := float64(s.zero)
	var v float64
	if rank < cum || cum == float64(s.total) {
		v = 0
	} else {
		for i, c := range s.counts {
			cum += float64(c)
			if rank < cum {
				v = s.estimate(s.offset + i)
				break
			}
		}
		if cum <= rank { // numeric slack on the last bucket
			v = s.estimate(s.offset + len(s.counts) - 1)
		}
	}
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v
}

// Reset empties the sketch in place, keeping the bucket window's capacity so
// a reused scratch sketch stays allocation-free across reductions.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.counts = s.counts[:0]
	s.offset = 0
	s.zero, s.total = 0, 0
	s.min, s.max, s.sum = 0, 0, 0
}

// Clone returns an independent deep copy.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.counts = append([]uint64(nil), s.counts...)
	return &c
}

// Encoded is the wire/snapshot form of a sketch: a plain value with no
// internal pointers shared with the live sketch, JSON-encodable, compact
// (leading and trailing empty buckets trimmed).
type Encoded struct {
	Alpha  float64  `json:"alpha"`
	Offset int      `json:"offset"`
	Counts []uint64 `json:"counts,omitempty"`
	Zero   uint64   `json:"zero,omitempty"`
	Total  uint64   `json:"total"`
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
	Sum    float64  `json:"sum"`
}

// Encode serializes the sketch.
func (s *Sketch) Encode() Encoded {
	lo, hi := 0, len(s.counts)
	for lo < hi && s.counts[lo] == 0 {
		lo++
	}
	for hi > lo && s.counts[hi-1] == 0 {
		hi--
	}
	e := Encoded{Alpha: s.alpha, Offset: s.offset + lo, Zero: s.zero, Total: s.total, Min: s.min, Max: s.max, Sum: s.sum}
	if hi > lo {
		e.Counts = append([]uint64(nil), s.counts[lo:hi]...)
	}
	return e
}

// Decode rebuilds a sketch from its encoded form. A malformed encoding
// (count mismatch) yields an empty sketch at the encoded alpha rather than a
// corrupt one.
func Decode(e Encoded) *Sketch {
	s := New(e.Alpha)
	var sum uint64
	for _, c := range e.Counts {
		sum += c
	}
	if sum+e.Zero != e.Total {
		return s
	}
	s.offset = e.Offset
	s.counts = append([]uint64(nil), e.Counts...)
	s.zero, s.total = e.Zero, e.Total
	s.min, s.max, s.sum = e.Min, e.Max, e.Sum
	return s
}
