package telemetry

import (
	"sync"
	"time"

	"snooze/internal/metrics"
	"snooze/internal/types"
)

// Canonical entity name prefixes used by the hierarchy's instrumentation.
const (
	EntityNodePrefix = "node/"
	EntityVMPrefix   = "vm/"
	EntityGMPrefix   = "gm/"
)

// internTable interns canonical entity names so the hot paths that resolve
// one name per entity per round — capacity-view builds resolve a node entity
// for every member on every build — allocate only on the first sighting of
// an ID. The read path is an RLock + map hit (string keys, no boxing); the
// table is bluntly capped like view.Cache: entity churn past the cap flushes
// everything, costing one re-intern round.
type internTable struct {
	prefix string
	mu     sync.RWMutex
	m      map[string]string
}

const maxInternEntries = 8192

func newInternTable(prefix string) *internTable {
	return &internTable{prefix: prefix, m: make(map[string]string)}
}

func (t *internTable) get(id string) string {
	t.mu.RLock()
	s, ok := t.m[id]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.m[id]; ok {
		return s
	}
	if len(t.m) >= maxInternEntries {
		t.m = make(map[string]string)
	}
	s = t.prefix + id
	t.m[id] = s
	return s
}

var (
	nodeEntities = newInternTable(EntityNodePrefix)
	vmEntities   = newInternTable(EntityVMPrefix)
	gmEntities   = newInternTable(EntityGMPrefix)
)

// NodeEntity returns the canonical (interned) entity name of a node.
func NodeEntity(id types.NodeID) string { return nodeEntities.get(string(id)) }

// VMEntity returns the canonical (interned) entity name of a VM.
func VMEntity(id types.VMID) string { return vmEntities.get(string(id)) }

// GMEntity returns the canonical (interned) entity name of a group manager.
func GMEntity(id types.GroupManagerID) string { return gmEntities.get(string(id)) }

// NodeIDFromEntity recovers the node ID from a canonical node entity name.
func NodeIDFromEntity(entity string) (types.NodeID, bool) {
	if len(entity) <= len(EntityNodePrefix) || entity[:len(EntityNodePrefix)] != EntityNodePrefix {
		return "", false
	}
	return types.NodeID(entity[len(EntityNodePrefix):]), true
}

// VMIDFromEntity recovers the VM ID from a canonical VM entity name.
func VMIDFromEntity(entity string) (types.VMID, bool) {
	if len(entity) <= len(EntityVMPrefix) || entity[:len(EntityVMPrefix)] != EntityVMPrefix {
		return "", false
	}
	return types.VMID(entity[len(EntityVMPrefix):]), true
}

// Options parameterize a Hub.
type Options struct {
	// Store sizes the time-series side.
	Store StoreConfig
	// JournalCapacity is the event retention window (default 1024).
	JournalCapacity int
	// Thresholds configure the node anomaly detector.
	Thresholds Thresholds
	// Metrics optionally receives ingestion counters
	// (telemetry.samples, telemetry.events).
	Metrics *metrics.Registry
}

// Hub bundles the store, the event journal and the node anomaly detector —
// the single handle the hierarchy, the simulated cluster and the api/v1
// backends share. One hub instance serves a whole deployment.
type Hub struct {
	store    *Store
	journal  *Journal
	detector *Detector
	reg      *metrics.Registry

	// owners stamps entities with the identity of the GM whose monitoring
	// flow feeds their series (see Claim). On a hub shared by several GMs it
	// fences cross-GM reconciliation: the VM liveness sweep skips entities
	// owned by another GM outright instead of relying on staleness alone.
	ownerMu sync.RWMutex
	owners  map[string]string
}

// NewHub creates a hub.
func NewHub(opts Options) *Hub {
	return &Hub{
		store:    NewStore(opts.Store),
		journal:  NewJournal(opts.JournalCapacity),
		detector: NewDetector(opts.Thresholds),
		reg:      opts.Metrics,
		owners:   make(map[string]string),
	}
}

// Store returns the time-series store.
func (h *Hub) Store() *Store { return h.store }

// Journal returns the event journal.
func (h *Hub) Journal() *Journal { return h.journal }

// Detector returns the node anomaly detector.
func (h *Hub) Detector() *Detector { return h.detector }

// Record appends one sample. The hot path deliberately skips the metrics
// registry (a shared mutex); sample volume is published as a gauge by
// PublishGauges instead.
func (h *Hub) Record(entity, metric string, at time.Duration, v float64) {
	h.store.Append(entity, metric, at, v)
}

// TerminalVMStates are the vm.state attrs values that mark a VM as gone for
// good; emitting one drops the VM's series (see Emit). "vanished" is the
// synthetic state the GM's liveness sweep journals for VMs that disappeared
// without any terminal event (migration races, LC crashes mid-handoff).
var TerminalVMStates = map[string]bool{"terminated": true, "destroyed": true, "failed": true, "vanished": true}

// Emit publishes an event and returns it with its sequence number assigned.
// A vm.state event carrying a terminal state (TerminalVMStates) additionally
// forgets the VM's series and detector state, so dead VMs stop lingering in
// the store under churn.
func (h *Hub) Emit(typ, entity string, at time.Duration, attrs Attrs) Event {
	ev := h.journal.Publish(Event{At: at, Type: typ, Entity: entity, Attrs: attrs})
	if h.reg != nil {
		h.reg.Inc("telemetry.events", 1)
	}
	if typ == EventVMState && TerminalVMStates[attrs.Get("state")] {
		h.ForgetEntity(entity)
	}
	return ev
}

// EmitBatch publishes evs (At/Type/Entity/Attrs populated, Seq assigned here)
// through a single journal lock acquisition — the batched counterpart of Emit
// for hot loops that journal many events at once, such as the GM's liveness
// sweep reaping a wave of vanished VMs. Terminal vm.state events forget their
// entities exactly as Emit would. evs is updated in place with the completed
// events.
func (h *Hub) EmitBatch(evs []Event) {
	if len(evs) == 0 {
		return
	}
	h.journal.PublishBatch(evs)
	if h.reg != nil {
		h.reg.Inc("telemetry.events", int64(len(evs)))
	}
	for _, ev := range evs {
		if ev.Type == EventVMState && TerminalVMStates[ev.Attrs.Get("state")] {
			h.ForgetEntity(ev.Entity)
		}
	}
}

// RecordNode appends the standard per-node series from one monitored status:
// cpu.used, mem.used, util (L∞ utilization) and vms.
func (h *Hub) RecordNode(at time.Duration, st types.NodeStatus) {
	entity := NodeEntity(st.Spec.ID)
	h.Record(entity, "cpu.used", at, st.Used.CPU)
	h.Record(entity, "mem.used", at, st.Used.Memory)
	h.Record(entity, "util", at, st.Used.Divide(st.Spec.Capacity).NormInf())
	h.Record(entity, "vms", at, float64(len(st.VMs)))
}

// RecordGroup appends the standard per-GM series from one group summary:
// cpu.used, cpu.reserved, util (L∞ utilization of the group), vms and
// active-lcs. The util series feeds the group-level capacity views the GL's
// dispatch policies consume.
func (h *Hub) RecordGroup(at time.Duration, s types.GroupSummary) {
	entity := GMEntity(s.GM)
	h.Record(entity, "cpu.used", at, s.Used.CPU)
	h.Record(entity, "cpu.reserved", at, s.Reserved.CPU)
	h.Record(entity, "util", at, s.Used.Divide(s.Total).NormInf())
	h.Record(entity, "vms", at, float64(s.VMs))
	h.Record(entity, "active-lcs", at, float64(s.ActiveLCs))
}

// RecordVM appends the full per-VM demand series from one monitored VM:
// cpu.used, mem.used, net.rx and net.tx — the four dimensions the view
// Builder's Demand reconstruction zips back into ResourceVectors for the
// GM's estimators.
func (h *Hub) RecordVM(at time.Duration, vm types.VMStatus) {
	entity := VMEntity(vm.Spec.ID)
	h.Record(entity, "cpu.used", at, vm.Used.CPU)
	h.Record(entity, "mem.used", at, vm.Used.Memory)
	h.Record(entity, "net.rx", at, vm.Used.NetRx)
	h.Record(entity, "net.tx", at, vm.Used.NetTx)
}

// DetectNode feeds one node status into the anomaly detector and publishes
// the resulting event, if any. It returns the published event and whether
// one fired — callers (the GM) hang relocation off that signal.
func (h *Hub) DetectNode(at time.Duration, st types.NodeStatus) (Event, bool) {
	ev, ok := h.detector.Observe(NodeEntity(st.Spec.ID), at, st)
	if !ok {
		return Event{}, false
	}
	return h.Emit(ev.Type, ev.Entity, ev.At, ev.Attrs), true
}

// Claim stamps entity as owned by owner — the GM whose monitoring flow feeds
// its series. Ownership follows the monitoring flow: when an LC rejoins
// another GM, the new GM's next report re-claims its entities. The fast path
// (unchanged owner) is a read-lock and a map hit.
func (h *Hub) Claim(entity, owner string) {
	h.ownerMu.RLock()
	cur, ok := h.owners[entity]
	h.ownerMu.RUnlock()
	if ok && cur == owner {
		return
	}
	h.ownerMu.Lock()
	h.owners[entity] = owner
	h.ownerMu.Unlock()
}

// Owner returns the owning-GM identity stamped on entity, if any.
func (h *Hub) Owner(entity string) (string, bool) {
	h.ownerMu.RLock()
	defer h.ownerMu.RUnlock()
	owner, ok := h.owners[entity]
	return owner, ok
}

// ForgetEntity drops an entity's series, detector state and owner stamp when
// it leaves the deployment (node failure, VM destruction) so the store does
// not grow without bound under churn.
func (h *Hub) ForgetEntity(entity string) {
	h.store.RemoveEntity(entity)
	h.detector.Forget(entity)
	h.ownerMu.Lock()
	delete(h.owners, entity)
	h.ownerMu.Unlock()
}

// PublishGauges refreshes the hub's registry gauges (series/sample/event
// volume); backends call it before snapshotting metrics.
func (h *Hub) PublishGauges() {
	if h.reg == nil {
		return
	}
	h.reg.SetGauge("telemetry.series", float64(h.store.NumSeries()))
	h.reg.SetGauge("telemetry.samples-total", float64(h.store.TotalSamples()))
	h.reg.SetGauge("telemetry.events-last-seq", float64(h.journal.LastSeq()))
	h.reg.SetGauge("telemetry.watchers", float64(h.journal.Subscribers()))
}
