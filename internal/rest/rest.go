// Package rest is the HTTP transport for real (wall-clock) Snooze
// deployments, standing in for the paper's "Java RESTful web services"
// (Section II-A). Each snoozed process hosts its components on an in-process
// bus and exposes them through a Server; a Gateway registers remote peers as
// proxy addresses on the local bus, so component code is identical in
// simulation and deployment.
//
// Wire format: POST /deliver with an Envelope; the reply carries the JSON
// response payload. One-way messages return 202 immediately. Multicast
// groups work through static peer registration (AddPeer with group names) —
// the deployment analogue of joining a UDP multicast group.
package rest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"snooze/internal/protocol"
	"snooze/internal/transport"
)

// Envelope is the on-wire message frame.
type Envelope struct {
	From    string          `json:"from"`
	To      string          `json:"to"`
	Kind    string          `json:"kind"`
	OneWay  bool            `json:"oneWay,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// replyFrame is the on-wire response frame.
type replyFrame struct {
	Payload json.RawMessage `json:"payload,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// maxEnvelopeBytes caps /deliver request bodies: large VM batches fit with
// room to spare, runaway or hostile bodies do not.
const maxEnvelopeBytes = 1 << 20

// Server exposes a local bus over HTTP.
type Server struct {
	bus     *transport.Bus
	timeout time.Duration
}

// NewServer creates a server delivering into bus; timeout bounds
// request-response calls.
func NewServer(bus *transport.Bus, timeout time.Duration) *Server {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Server{bus: bus, timeout: timeout}
}

// Handler returns the HTTP handler (mount at /).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/deliver", s.handleDeliver)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeFrame(w, http.StatusOK, replyFrame{Payload: json.RawMessage(`"ok"`)})
	})
	return mux
}

// writeFrame sends a reply frame with the given status; every /deliver
// response is JSON, success or failure.
func writeFrame(w http.ResponseWriter, status int, frame replyFrame) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(frame)
}

func (s *Server) handleDeliver(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFrame(w, http.StatusMethodNotAllowed, replyFrame{Error: "POST only"})
		return
	}
	var env Envelope
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEnvelopeBytes)).Decode(&env); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeFrame(w, status, replyFrame{Error: "bad envelope: " + err.Error()})
		return
	}
	payload, err := protocol.DecodeRequest(env.Kind, env.Payload)
	if err != nil {
		writeFrame(w, http.StatusBadRequest, replyFrame{Error: err.Error()})
		return
	}
	if env.OneWay {
		// An unknown destination is the caller's addressing mistake: report
		// it as 404 instead of silently accepting the message.
		if err := s.bus.Send(transport.Address(env.From), transport.Address(env.To), env.Kind, payload); errors.Is(err, transport.ErrUnreachable) {
			writeFrame(w, http.StatusNotFound, replyFrame{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		return
	}
	type outcome struct {
		reply any
		err   error
	}
	ch := make(chan outcome, 1)
	s.bus.Call(transport.Address(env.From), transport.Address(env.To), env.Kind, payload, s.timeout,
		func(reply any, err error) { ch <- outcome{reply, err} })
	out := <-ch
	if out.err != nil {
		status := http.StatusOK // component-level error: transport succeeded
		if errors.Is(out.err, transport.ErrUnreachable) {
			status = http.StatusNotFound
		}
		writeFrame(w, status, replyFrame{Error: out.err.Error()})
		return
	}
	data, err := json.Marshal(out.reply)
	if err != nil {
		writeFrame(w, http.StatusOK, replyFrame{Error: "encode reply: " + err.Error()})
		return
	}
	writeFrame(w, http.StatusOK, replyFrame{Payload: data})
}

// ---------------------------------------------------------------------------
// Gateway (outbound proxy)
// ---------------------------------------------------------------------------

// Gateway bridges the local bus to remote processes: every registered peer
// address gets a proxy handler on the local bus that forwards over HTTP.
type Gateway struct {
	bus    *transport.Bus
	client *http.Client

	mu    sync.Mutex
	peers map[transport.Address]string // addr -> base URL
}

// NewGateway creates a gateway on the local bus.
func NewGateway(bus *transport.Bus, timeout time.Duration) *Gateway {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Gateway{
		bus:    bus,
		client: &http.Client{Timeout: timeout},
		peers:  make(map[transport.Address]string),
	}
}

// AddPeer registers a remote component: addr becomes routable on the local
// bus (forwarded to baseURL), and the proxy joins the given multicast groups
// on the remote component's behalf.
func (g *Gateway) AddPeer(addr transport.Address, baseURL string, groups ...string) {
	g.mu.Lock()
	g.peers[addr] = baseURL
	g.mu.Unlock()
	g.bus.Register(addr, func(req *transport.Request) { g.forward(baseURL, req) })
	for _, grp := range groups {
		g.bus.JoinGroup(grp, addr)
	}
}

// RemovePeer drops a remote registration.
func (g *Gateway) RemovePeer(addr transport.Address) {
	g.mu.Lock()
	delete(g.peers, addr)
	g.mu.Unlock()
	g.bus.Unregister(addr)
}

// Peers returns the number of registered peers.
func (g *Gateway) Peers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.peers)
}

func (g *Gateway) forward(baseURL string, req *transport.Request) {
	payload, err := json.Marshal(req.Payload)
	if err != nil {
		req.RespondErr(err)
		return
	}
	env := Envelope{
		From:    string(req.From),
		To:      string(req.To),
		Kind:    req.Kind,
		OneWay:  req.OneWay(),
		Payload: payload,
	}
	body, err := json.Marshal(env)
	if err != nil {
		req.RespondErr(err)
		return
	}
	// Never block the bus executor: HTTP happens on its own goroutine.
	go func() {
		resp, err := g.client.Post(baseURL+"/deliver", "application/json", bytes.NewReader(body))
		if err != nil {
			// The remote process itself is not answering: same meaning as an
			// unregistered bus address, so keep the sentinel for callers.
			req.RespondErr(fmt.Errorf("%w: %s: %v", transport.ErrUnreachable, req.To, err))
			return
		}
		defer resp.Body.Close()
		if req.OneWay() {
			return
		}
		frame, err := decodeFrame(resp)
		if err != nil {
			req.RespondErr(err)
			return
		}
		if frame.Error != "" {
			// A 404 frame is the server's "destination unreachable" marker;
			// re-type it so errors.Is works across the HTTP hop.
			if resp.StatusCode == http.StatusNotFound {
				req.RespondErr(fmt.Errorf("%w: %s",
					transport.ErrUnreachable,
					strings.TrimPrefix(frame.Error, transport.ErrUnreachable.Error()+": ")))
				return
			}
			req.RespondErr(errors.New(frame.Error))
			return
		}
		reply, err := protocol.DecodeReply(req.Kind, frame.Payload)
		if err != nil {
			req.RespondErr(err)
			return
		}
		req.Respond(reply)
	}()
}

// ---------------------------------------------------------------------------
// Thin client (CLI side)
// ---------------------------------------------------------------------------

// Client performs one-shot protocol calls against a remote snoozed process —
// what the paper's command line interface does against the EP/GL services.
type Client struct {
	http *http.Client
}

// NewClient creates a CLI client.
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Client{http: &http.Client{Timeout: timeout}}
}

// Call sends kind+payload to the component addr hosted at baseURL and
// decodes the typed reply.
func (c *Client) Call(baseURL string, addr, kind string, payload any) (any, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	env := Envelope{From: "cli", To: addr, Kind: kind, Payload: data}
	body, err := json.Marshal(env)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(baseURL+"/deliver", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	frame, err := decodeFrame(resp)
	if err != nil {
		return nil, err
	}
	if frame.Error != "" {
		return nil, errors.New(frame.Error)
	}
	return protocol.DecodeReply(kind, frame.Payload)
}

// decodeFrame reads a /deliver response: JSON frames carry the payload or a
// component/addressing error regardless of status code; anything else
// surfaces as a transport-level error.
func decodeFrame(resp *http.Response) (replyFrame, error) {
	var frame replyFrame
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted ||
		strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		if err := json.NewDecoder(resp.Body).Decode(&frame); err != nil {
			return frame, fmt.Errorf("rest: %s: %w", resp.Status, err)
		}
		return frame, nil
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return frame, fmt.Errorf("rest: %s: %s", resp.Status, bytes.TrimSpace(data))
}
