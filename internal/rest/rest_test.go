package rest

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"snooze/internal/coord"
	"snooze/internal/hierarchy"
	"snooze/internal/hypervisor"
	"snooze/internal/protocol"
	"snooze/internal/simkernel"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// wallBus builds a wall-clock bus for HTTP tests.
func wallBus() (*transport.Bus, *simkernel.WallRuntime) {
	rt := simkernel.NewWallRuntime()
	return transport.NewBus(rt, transport.Config{Latency: 0}), rt
}

func TestServerRoundTrip(t *testing.T) {
	bus, _ := wallBus()
	bus.Register("echo", func(req *transport.Request) {
		sr := req.Payload.(protocol.StartVMRequest)
		req.Respond(protocol.StartVMResponse{OK: true, Error: string(sr.Spec.ID)})
	})
	srv := httptest.NewServer(NewServer(bus, 5*time.Second).Handler())
	defer srv.Close()

	cli := NewClient(5 * time.Second)
	reply, err := cli.Call(srv.URL, "echo", protocol.KindStartVM,
		protocol.StartVMRequest{Spec: types.VMSpec{ID: "vm-7", Requested: types.RV(1, 1, 1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := reply.(protocol.StartVMResponse)
	if !ok || !resp.OK || resp.Error != "vm-7" {
		t.Fatalf("reply: %#v", reply)
	}
}

func TestServerErrorPropagation(t *testing.T) {
	bus, _ := wallBus()
	bus.Register("boom", func(req *transport.Request) {
		req.RespondErr(errFixture)
	})
	srv := httptest.NewServer(NewServer(bus, 5*time.Second).Handler())
	defer srv.Close()
	cli := NewClient(5 * time.Second)
	_, err := cli.Call(srv.URL, "boom", protocol.KindStartVM, protocol.StartVMRequest{})
	if err == nil || !strings.Contains(err.Error(), "fixture") {
		t.Fatalf("err: %v", err)
	}
}

var errFixture = errFixtureT{}

type errFixtureT struct{}

func (errFixtureT) Error() string { return "fixture error" }

func TestServerUnknownDestination(t *testing.T) {
	bus, _ := wallBus()
	srv := httptest.NewServer(NewServer(bus, time.Second).Handler())
	defer srv.Close()
	cli := NewClient(5 * time.Second)
	_, err := cli.Call(srv.URL, "ghost", protocol.KindStartVM, protocol.StartVMRequest{})
	if err == nil {
		t.Fatal("expected error for unknown destination")
	}
}

func TestServerRejectsBadKind(t *testing.T) {
	bus, _ := wallBus()
	srv := httptest.NewServer(NewServer(bus, time.Second).Handler())
	defer srv.Close()
	cli := NewClient(5 * time.Second)
	_, err := cli.Call(srv.URL, "x", "bogus.kind", struct{}{})
	if err == nil {
		t.Fatal("expected bad-kind error")
	}
}

func TestGatewayForwardsBetweenProcesses(t *testing.T) {
	// Two "processes", each with its own wall bus and HTTP server; gateways
	// cross-register the peers.
	busA, _ := wallBus()
	busB, _ := wallBus()
	srvA := httptest.NewServer(NewServer(busA, 5*time.Second).Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(NewServer(busB, 5*time.Second).Handler())
	defer srvB.Close()

	busB.Register("svcB", func(req *transport.Request) {
		req.Respond(protocol.GLQueryResponse{Addr: "hello-from-B", Known: true})
	})
	gwA := NewGateway(busA, 5*time.Second)
	gwA.AddPeer("svcB", srvB.URL)
	if gwA.Peers() != 1 {
		t.Fatal("peer count")
	}

	// A local caller on bus A reaches svcB transparently.
	type out struct {
		reply any
		err   error
	}
	ch := make(chan out, 1)
	busA.Call("local", "svcB", protocol.KindGLQuery, struct{}{}, 5*time.Second,
		func(reply any, err error) { ch <- out{reply, err} })
	got := <-ch
	if got.err != nil {
		t.Fatal(got.err)
	}
	resp := got.reply.(protocol.GLQueryResponse)
	if resp.Addr != "hello-from-B" {
		t.Fatalf("reply: %+v", resp)
	}
}

func TestGatewayKeepsUnreachableTyped(t *testing.T) {
	// An unreachable destination must stay errors.Is-able across the HTTP
	// hop: api/v1/livebackend maps transport.ErrUnreachable to 503.
	busA, _ := wallBus()
	busB, _ := wallBus()
	srvB := httptest.NewServer(NewServer(busB, time.Second).Handler())
	defer srvB.Close()
	gwA := NewGateway(busA, 5*time.Second)
	gwA.AddPeer("ghost", srvB.URL) // registered locally, absent on B

	errCh := make(chan error, 1)
	busA.Call("local", "ghost", protocol.KindGLQuery, struct{}{}, 5*time.Second,
		func(_ any, err error) { errCh <- err })
	err := <-errCh
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("remote unreachable lost its type: %v", err)
	}

	// A dead remote process is equally unreachable.
	srvDead := httptest.NewServer(NewServer(busB, time.Second).Handler())
	gwA.AddPeer("dead", srvDead.URL)
	srvDead.Close()
	busA.Call("local", "dead", protocol.KindGLQuery, struct{}{}, 5*time.Second,
		func(_ any, err error) { errCh <- err })
	err = <-errCh
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("dead remote lost its type: %v", err)
	}
}

func TestGatewayMulticastMembership(t *testing.T) {
	busA, _ := wallBus()
	busB, _ := wallBus()
	srvB := httptest.NewServer(NewServer(busB, 5*time.Second).Handler())
	defer srvB.Close()

	got := make(chan protocol.GLHeartbeat, 1)
	busB.Register("lcB", func(req *transport.Request) {
		if hb, ok := req.Payload.(protocol.GLHeartbeat); ok {
			select {
			case got <- hb:
			default:
			}
		}
	})
	gwA := NewGateway(busA, 5*time.Second)
	gwA.AddPeer("lcB", srvB.URL, protocol.GroupGL)

	busA.Multicast("gl", protocol.GroupGL, protocol.KindGLHeartbeat, protocol.GLHeartbeat{Addr: "gl", Epoch: 1})
	select {
	case hb := <-got:
		if hb.Addr != "gl" || hb.Epoch != 1 {
			t.Fatalf("heartbeat: %+v", hb)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("multicast not forwarded")
	}
	gwA.RemovePeer("lcB")
	if gwA.Peers() != 0 {
		t.Fatal("RemovePeer")
	}
}

func TestEndToEndDeploymentOverHTTP(t *testing.T) {
	// A miniature real deployment: one process hosts a manager (it becomes
	// GL), another hosts an LC + node; heartbeats and placement flow over
	// HTTP in both directions. This is the cmd/snoozed wiring in miniature.
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	rtA := simkernel.NewWallRuntime()
	busA := transport.NewBus(rtA, transport.Config{})
	rtB := simkernel.NewWallRuntime()
	busB := transport.NewBus(rtB, transport.Config{})
	srvA := httptest.NewServer(NewServer(busA, 10*time.Second).Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(NewServer(busB, 10*time.Second).Handler())
	defer srvB.Close()

	// Process A: coordination + manager pair (GL + GM) + EP.
	svc := coord.NewService(rtA)
	mcfg := hierarchy.DefaultManagerConfig("gm-00", "mgr:gm-00")
	mcfg.HeartbeatPeriod = 200 * time.Millisecond
	mcfg.SummaryPeriod = 300 * time.Millisecond
	mcfg.SessionTTL = 2 * time.Second
	mcfg.LCTimeout = 5 * time.Second
	m0 := hierarchy.NewManager(rtA, busA, svc, mcfg)
	mcfg1 := mcfg
	mcfg1.ID, mcfg1.Addr = "gm-01", "mgr:gm-01"
	m1 := hierarchy.NewManager(rtA, busA, svc, mcfg1)
	if err := m0.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	ep := hierarchy.NewEP(rtA, busA, "ep:0", 5*time.Second)
	ep.Start()

	// Process B: node + LC.
	node := hypervisor.NewNode(rtB, types.NodeSpec{ID: "n1", Capacity: types.RV(8, 16384, 1000, 1000)}, hypervisor.DefaultConfig())
	lcCfg := hierarchy.DefaultLCConfig()
	lcCfg.MonitorPeriod = 300 * time.Millisecond
	lcCfg.GMTimeout = 5 * time.Second
	lc := hierarchy.NewLC(rtB, busB, node, "lc:n1", func(types.NodeID) (*hypervisor.Node, bool) { return nil, false }, lcCfg)
	lc.Start()

	// Cross-register peers. A knows B's LC (for GM→LC commands and GL
	// heartbeat multicast); B knows A's managers (for joins/monitoring).
	gwA := NewGateway(busA, 10*time.Second)
	gwA.AddPeer("lc:n1", srvB.URL, protocol.GroupGL)
	gwA.AddPeer("oob:lc:n1", srvB.URL)
	gwB := NewGateway(busB, 10*time.Second)
	gwB.AddPeer("mgr:gm-00", srvA.URL, protocol.GroupGMPrefix+"gm-00")
	gwB.AddPeer("mgr:gm-01", srvA.URL, protocol.GroupGMPrefix+"gm-01")

	// Wait for the LC to join a GM over HTTP.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if lc.GM() != "" {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if lc.GM() == "" {
		t.Fatal("LC never joined over HTTP")
	}
	// Let the GM's next summary reach the GL so dispatch sees the capacity.
	time.Sleep(time.Second)

	// Submit a VM through the CLI client → EP → GL → GM → LC(B).
	cli := NewClient(20 * time.Second)
	reply, err := cli.Call(srvA.URL, "ep:0", protocol.KindGLQuery, struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	gl := reply.(protocol.GLQueryResponse)
	if !gl.Known {
		t.Fatal("EP does not know the GL")
	}
	reply, err = cli.Call(srvA.URL, gl.Addr, protocol.KindSubmit, protocol.SubmitRequest{
		VMs: []types.VMSpec{{ID: "vm-http", Requested: types.RV(2, 2048, 10, 10)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := reply.(protocol.SubmitResponse)
	if len(sub.Placed) != 1 {
		t.Fatalf("submit over HTTP: %+v", sub)
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !node.HasVM("vm-http") {
		time.Sleep(100 * time.Millisecond)
	}
	if !node.HasVM("vm-http") {
		t.Fatal("VM not on remote node")
	}
	m0.Stop()
	m1.Stop()
	lc.Stop()
}
