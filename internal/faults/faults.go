// Package faults orchestrates fault-injection scenarios against a simulated
// cluster: timed crash failures of the GL, GMs and nodes, message loss,
// network partitions, and gray failures — components that are degraded
// rather than dead. SlowLC delays and duplicates an LC's outgoing messages,
// CorruptReports poisons its monitoring payloads (NaN/negative usage,
// future-stamped clocks) and LevelPartition cuts one hierarchy level off
// from another in a single direction. Experiment E3 (fault tolerance,
// Section II-F), E6 (self-healing latency) and E9 (gray failures) are
// driven by these scenarios.
package faults

import (
	"fmt"
	"math"
	"sort"
	"time"

	"snooze/internal/cluster"
	"snooze/internal/hierarchy"
	"snooze/internal/protocol"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// Action is one fault (or repair) applied to a cluster.
type Action interface {
	Apply(c *cluster.Cluster)
	Describe() string
}

// CrashGL fail-stops the current Group Leader.
type CrashGL struct{}

// Apply implements Action.
func (CrashGL) Apply(c *cluster.Cluster) { c.CrashLeader() }

// Describe implements Action.
func (CrashGL) Describe() string { return "crash group leader" }

// CrashGMs fail-stops up to N current Group Managers (deterministic order).
type CrashGMs struct {
	N int
}

// Apply implements Action.
func (a CrashGMs) Apply(c *cluster.Cluster) {
	gms := c.GroupManagers()
	sort.Slice(gms, func(i, j int) bool { return gms[i].ID() < gms[j].ID() })
	n := a.N
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n && i < len(gms); i++ {
		gms[i].Crash()
	}
}

// Describe implements Action.
func (a CrashGMs) Describe() string { return fmt.Sprintf("crash %d group manager(s)", a.N) }

// FailNodes crash-stops the named nodes (LCs die with them).
type FailNodes struct {
	IDs []types.NodeID
}

// Apply implements Action.
func (a FailNodes) Apply(c *cluster.Cluster) {
	for _, id := range a.IDs {
		c.FailNode(id)
	}
}

// Describe implements Action.
func (a FailNodes) Describe() string { return fmt.Sprintf("fail %d node(s)", len(a.IDs)) }

// SetLoss injects uniform message loss on the bus.
type SetLoss struct {
	Probability float64
}

// Apply implements Action.
func (a SetLoss) Apply(c *cluster.Cluster) { c.Bus.SetDropProbability(a.Probability) }

// Describe implements Action.
func (a SetLoss) Describe() string { return fmt.Sprintf("message loss %.0f%%", a.Probability*100) }

// Partition splits the named addresses into partition group 1 (everything
// else stays in group 0).
type Partition struct {
	Addrs []string
}

// Apply implements Action.
func (a Partition) Apply(c *cluster.Cluster) {
	for _, addr := range a.Addrs {
		c.Bus.SetPartition(transport.Address(addr), 1)
	}
}

// Describe implements Action.
func (a Partition) Describe() string { return fmt.Sprintf("partition %d component(s)", len(a.Addrs)) }

// SlowLC makes the named LCs slow-but-alive: their outgoing messages are
// delayed by Delay and duplicated with probability DupProbability. The LC
// process itself keeps running, so this models a gray failure (overloaded
// host, congested NIC) rather than a crash.
type SlowLC struct {
	IDs            []types.NodeID
	Delay          time.Duration
	DupProbability float64
}

// Apply implements Action.
func (a SlowLC) Apply(c *cluster.Cluster) {
	for _, id := range a.IDs {
		addr := transport.Address("lc:" + string(id))
		c.Bus.SetLinkDelay(addr, a.Delay)
		c.Bus.SetDuplication(addr, a.DupProbability)
	}
}

// Describe implements Action.
func (a SlowLC) Describe() string {
	return fmt.Sprintf("slow %d LC(s) by %v (dup %.0f%%)", len(a.IDs), a.Delay, a.DupProbability*100)
}

// Corruption modes for CorruptReports.
const (
	// CorruptNaN sets node and VM usage components to NaN.
	CorruptNaN = "nan"
	// CorruptNegative negates node usage (impossible negative utilization).
	CorruptNegative = "negative"
	// CorruptFuture stamps reports one hour into the future.
	CorruptFuture = "future"
)

// CorruptReports poisons the monitoring reports of the named LCs according
// to Mode (CorruptNaN, CorruptNegative or CorruptFuture). The GM's
// ingestion validation must reject these without polluting capacity views.
type CorruptReports struct {
	IDs  []types.NodeID
	Mode string
}

// Apply implements Action.
func (a CorruptReports) Apply(c *cluster.Cluster) {
	fn := corruptor(a.Mode)
	for _, id := range a.IDs {
		if lc, ok := c.LCs[id]; ok {
			lc.SetCorrupt(fn)
		}
	}
}

// Describe implements Action.
func (a CorruptReports) Describe() string {
	return fmt.Sprintf("corrupt reports (%s) on %d LC(s)", a.Mode, len(a.IDs))
}

func corruptor(mode string) func(*protocol.MonitorReport) {
	switch mode {
	case CorruptNegative:
		return func(rep *protocol.MonitorReport) {
			rep.Status.Used = rep.Status.Used.Scale(-1)
		}
	case CorruptFuture:
		return func(rep *protocol.MonitorReport) {
			rep.AtNs += int64(time.Hour)
		}
	default: // CorruptNaN
		return func(rep *protocol.MonitorReport) {
			rep.Status.Used = rep.Status.Used.Scale(math.NaN())
			for i := range rep.VMs {
				rep.VMs[i].Used = rep.VMs[i].Used.Scale(math.NaN())
			}
		}
	}
}

// LevelPartition blocks messages from one hierarchy level to another in a
// single direction: LCs can no longer reach GMs ("lc->gm"), or GMs can no
// longer reach the GL level ("gm->gl"). The reverse direction stays intact,
// which is what distinguishes a gray partition from a clean split.
type LevelPartition struct {
	// Direction is "lc->gm" or "gm->gl".
	Direction string
}

// Apply implements Action.
func (a LevelPartition) Apply(c *cluster.Cluster) {
	lcs := make([]transport.Address, 0, len(c.LCs))
	for _, lc := range c.LCs {
		lcs = append(lcs, lc.Addr())
	}
	mgrs := make([]transport.Address, 0, len(c.Managers))
	for _, m := range c.Managers {
		mgrs = append(mgrs, m.Addr())
	}
	switch a.Direction {
	case "gm->gl":
		// Managers can no longer talk to each other (GM->GL summaries,
		// state sync, join calls) while LC traffic still flows.
		for _, from := range mgrs {
			for _, to := range mgrs {
				if from != to {
					c.Bus.BlockDirected(from, to)
				}
			}
		}
	default: // "lc->gm"
		for _, from := range lcs {
			for _, to := range mgrs {
				c.Bus.BlockDirected(from, to)
			}
		}
	}
}

// Describe implements Action.
func (a LevelPartition) Describe() string {
	dir := a.Direction
	if dir == "" {
		dir = "lc->gm"
	}
	return "level partition " + dir
}

// Heal clears all partitions, message loss, gray failures and report
// corruption.
type Heal struct{}

// Apply implements Action.
func (Heal) Apply(c *cluster.Cluster) {
	c.Bus.ClearPartitions()
	c.Bus.SetDropProbability(0)
	c.Bus.ClearGrayFailures()
	for _, lc := range c.LCs {
		lc.SetCorrupt(nil)
	}
}

// Describe implements Action.
func (Heal) Describe() string { return "heal partitions, loss and gray failures" }

// Event is one scheduled fault.
type Event struct {
	At     time.Duration
	Action Action
}

// Scenario is a timed fault schedule.
type Scenario struct {
	Events []Event
	// Log receives a line per applied fault (may be nil).
	Log func(at time.Duration, desc string)
}

// Install schedules every event on the cluster's kernel (at absolute virtual
// times). Call before running the experiment workload.
func (s Scenario) Install(c *cluster.Cluster) {
	for _, ev := range s.Events {
		ev := ev
		c.Kernel.At(ev.At, func() {
			ev.Action.Apply(c)
			if s.Log != nil {
				s.Log(ev.At, ev.Action.Describe())
			}
		})
	}
}

// GLFailover is the canonical E3 scenario: kill the GL at tGL, then one GM
// at tGM.
func GLFailover(tGL, tGM time.Duration) Scenario {
	return Scenario{Events: []Event{
		{At: tGL, Action: CrashGL{}},
		{At: tGM, Action: CrashGMs{N: 1}},
	}}
}

// HealLatency measures self-healing after a GL crash: returns the virtual
// time from the crash until a new GL is elected AND every surviving LC is
// re-assigned to a live GM. The cluster must already be settled.
func HealLatency(c *cluster.Cluster, maxSim time.Duration) (time.Duration, error) {
	start := c.Kernel.Now()
	old := c.CrashLeader()
	if old == nil {
		return 0, fmt.Errorf("faults: no leader to crash")
	}
	deadline := start + maxSim
	for c.Kernel.Now() < deadline {
		if !c.Kernel.Step() {
			break
		}
		if healed(c, old) {
			return c.Kernel.Now() - start, nil
		}
	}
	return 0, fmt.Errorf("faults: cluster did not heal within %v", maxSim)
}

func healed(c *cluster.Cluster, crashed *hierarchy.Manager) bool {
	nl := c.Leader()
	if nl == nil || nl == crashed {
		return false
	}
	liveGMs := map[string]bool{}
	for _, m := range c.GroupManagers() {
		liveGMs[string(m.Addr())] = true
	}
	if len(liveGMs) == 0 {
		return false
	}
	for _, lc := range c.LCs {
		if !liveGMs[string(lc.GM())] {
			return false
		}
	}
	return true
}
