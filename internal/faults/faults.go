// Package faults orchestrates fault-injection scenarios against a simulated
// cluster: timed crash failures of the GL, GMs and nodes, message loss and
// network partitions. Experiment E3 (fault tolerance, Section II-F) and E6
// (self-healing latency) are driven by these scenarios.
package faults

import (
	"fmt"
	"sort"
	"time"

	"snooze/internal/cluster"
	"snooze/internal/hierarchy"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// Action is one fault (or repair) applied to a cluster.
type Action interface {
	Apply(c *cluster.Cluster)
	Describe() string
}

// CrashGL fail-stops the current Group Leader.
type CrashGL struct{}

// Apply implements Action.
func (CrashGL) Apply(c *cluster.Cluster) { c.CrashLeader() }

// Describe implements Action.
func (CrashGL) Describe() string { return "crash group leader" }

// CrashGMs fail-stops up to N current Group Managers (deterministic order).
type CrashGMs struct {
	N int
}

// Apply implements Action.
func (a CrashGMs) Apply(c *cluster.Cluster) {
	gms := c.GroupManagers()
	sort.Slice(gms, func(i, j int) bool { return gms[i].ID() < gms[j].ID() })
	n := a.N
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n && i < len(gms); i++ {
		gms[i].Crash()
	}
}

// Describe implements Action.
func (a CrashGMs) Describe() string { return fmt.Sprintf("crash %d group manager(s)", a.N) }

// FailNodes crash-stops the named nodes (LCs die with them).
type FailNodes struct {
	IDs []types.NodeID
}

// Apply implements Action.
func (a FailNodes) Apply(c *cluster.Cluster) {
	for _, id := range a.IDs {
		c.FailNode(id)
	}
}

// Describe implements Action.
func (a FailNodes) Describe() string { return fmt.Sprintf("fail %d node(s)", len(a.IDs)) }

// SetLoss injects uniform message loss on the bus.
type SetLoss struct {
	Probability float64
}

// Apply implements Action.
func (a SetLoss) Apply(c *cluster.Cluster) { c.Bus.SetDropProbability(a.Probability) }

// Describe implements Action.
func (a SetLoss) Describe() string { return fmt.Sprintf("message loss %.0f%%", a.Probability*100) }

// Partition splits the named addresses into partition group 1 (everything
// else stays in group 0).
type Partition struct {
	Addrs []string
}

// Apply implements Action.
func (a Partition) Apply(c *cluster.Cluster) {
	for _, addr := range a.Addrs {
		c.Bus.SetPartition(transport.Address(addr), 1)
	}
}

// Describe implements Action.
func (a Partition) Describe() string { return fmt.Sprintf("partition %d component(s)", len(a.Addrs)) }

// Heal clears all partitions and message loss.
type Heal struct{}

// Apply implements Action.
func (Heal) Apply(c *cluster.Cluster) {
	c.Bus.ClearPartitions()
	c.Bus.SetDropProbability(0)
}

// Describe implements Action.
func (Heal) Describe() string { return "heal partitions and loss" }

// Event is one scheduled fault.
type Event struct {
	At     time.Duration
	Action Action
}

// Scenario is a timed fault schedule.
type Scenario struct {
	Events []Event
	// Log receives a line per applied fault (may be nil).
	Log func(at time.Duration, desc string)
}

// Install schedules every event on the cluster's kernel (at absolute virtual
// times). Call before running the experiment workload.
func (s Scenario) Install(c *cluster.Cluster) {
	for _, ev := range s.Events {
		ev := ev
		c.Kernel.At(ev.At, func() {
			ev.Action.Apply(c)
			if s.Log != nil {
				s.Log(ev.At, ev.Action.Describe())
			}
		})
	}
}

// GLFailover is the canonical E3 scenario: kill the GL at tGL, then one GM
// at tGM.
func GLFailover(tGL, tGM time.Duration) Scenario {
	return Scenario{Events: []Event{
		{At: tGL, Action: CrashGL{}},
		{At: tGM, Action: CrashGMs{N: 1}},
	}}
}

// HealLatency measures self-healing after a GL crash: returns the virtual
// time from the crash until a new GL is elected AND every surviving LC is
// re-assigned to a live GM. The cluster must already be settled.
func HealLatency(c *cluster.Cluster, maxSim time.Duration) (time.Duration, error) {
	start := c.Kernel.Now()
	old := c.CrashLeader()
	if old == nil {
		return 0, fmt.Errorf("faults: no leader to crash")
	}
	deadline := start + maxSim
	for c.Kernel.Now() < deadline {
		if !c.Kernel.Step() {
			break
		}
		if healed(c, old) {
			return c.Kernel.Now() - start, nil
		}
	}
	return 0, fmt.Errorf("faults: cluster did not heal within %v", maxSim)
}

func healed(c *cluster.Cluster, crashed *hierarchy.Manager) bool {
	nl := c.Leader()
	if nl == nil || nl == crashed {
		return false
	}
	liveGMs := map[string]bool{}
	for _, m := range c.GroupManagers() {
		liveGMs[string(m.Addr())] = true
	}
	if len(liveGMs) == 0 {
		return false
	}
	for _, lc := range c.LCs {
		if !liveGMs[string(lc.GM())] {
			return false
		}
	}
	return true
}
