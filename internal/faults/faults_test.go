package faults

import (
	"strings"
	"testing"
	"time"

	"snooze/internal/cluster"
	"snooze/internal/types"
	"snooze/internal/workload"
)

func testCluster(t *testing.T, nodes, gms int, seed int64) *cluster.Cluster {
	t.Helper()
	c := cluster.New(cluster.DefaultConfig(workload.Grid5000Topology(nodes, gms), seed))
	c.Settle(30 * time.Second)
	return c
}

func TestScenarioInstallAppliesInOrder(t *testing.T) {
	c := testCluster(t, 8, 2, 1)
	var log []string
	s := Scenario{
		Events: []Event{
			{At: c.Kernel.Now() + 10*time.Second, Action: CrashGL{}},
			{At: c.Kernel.Now() + 20*time.Second, Action: CrashGMs{N: 1}},
		},
		Log: func(at time.Duration, desc string) { log = append(log, desc) },
	}
	s.Install(c)
	c.Settle(2 * time.Minute)
	if len(log) != 2 || log[0] != "crash group leader" || !strings.Contains(log[1], "group manager") {
		t.Fatalf("log: %v", log)
	}
	if c.Leader() == nil {
		t.Fatal("no leader after scenario + healing window")
	}
}

func TestHealLatencyMeasures(t *testing.T) {
	c := testCluster(t, 8, 2, 2)
	heal, err := HealLatency(c, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Healing is bounded by session TTL (6s) + heartbeat/joining rounds;
	// it cannot be instantaneous nor take minutes.
	if heal < 5*time.Second || heal > 2*time.Minute {
		t.Fatalf("heal latency out of plausible range: %v", heal)
	}
}

func TestHealLatencyNoLeader(t *testing.T) {
	c := testCluster(t, 4, 1, 3)
	c.CrashLeader()
	c.Settle(time.Minute)
	// Crash the new leader too, then immediately ask again — eventually no
	// candidates remain.
	c.CrashLeader()
	if l := c.Leader(); l != nil {
		t.Fatalf("leader survived double crash: %v", l.ID())
	}
	if _, err := HealLatency(c, time.Second); err == nil {
		t.Fatal("expected error with no leader")
	}
}

func TestFailNodesAndLoss(t *testing.T) {
	c := testCluster(t, 4, 1, 4)
	FailNodes{IDs: []types.NodeID{"lc-0000"}}.Apply(c)
	if c.Nodes["lc-0000"].Power() != types.PowerFailed {
		t.Fatal("node not failed")
	}
	SetLoss{Probability: 0.5}.Apply(c)
	Heal{}.Apply(c) // clears loss
	c.Settle(time.Minute)
	if c.Leader() == nil {
		t.Fatal("cluster should still have a leader")
	}
}

func TestPartitionIsolatesGL(t *testing.T) {
	c := testCluster(t, 8, 2, 5)
	gl := c.Leader()
	Partition{Addrs: []string{string(gl.Addr())}}.Apply(c)
	c.Settle(90 * time.Second)
	// The partitioned GL's election session expires (it cannot reach the
	// coordination service in a real deployment; here the session survives
	// but its heartbeats do not) — at minimum, a submission through the
	// majority side must still be served after healing.
	Heal{}.Apply(c)
	c.Settle(30 * time.Second)
	resp, err := c.SubmitAndWait([]types.VMSpec{{ID: "p-vm", Requested: types.RV(1, 1024, 10, 10)}}, 5*time.Minute)
	if err != nil || len(resp.Placed) != 1 {
		t.Fatalf("post-heal submit: %+v %v", resp, err)
	}
}

func TestDescribeStrings(t *testing.T) {
	actions := []Action{CrashGL{}, CrashGMs{N: 2}, FailNodes{IDs: []types.NodeID{"a"}},
		SetLoss{Probability: 0.1}, Partition{Addrs: []string{"x"}}, Heal{}}
	for _, a := range actions {
		if a.Describe() == "" {
			t.Fatalf("%T: empty description", a)
		}
	}
}

func TestGLFailoverScenarioConstructor(t *testing.T) {
	s := GLFailover(time.Minute, 2*time.Minute)
	if len(s.Events) != 2 || s.Events[0].At != time.Minute {
		t.Fatalf("scenario: %+v", s)
	}
}
