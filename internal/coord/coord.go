// Package coord is the coordination substrate standing in for Apache
// ZooKeeper, which the paper's leader-election scheme is "built on top of"
// (Section II-D). It implements the subset of ZooKeeper semantics the
// election recipe needs: a hierarchical znode namespace, sessions with
// liveness-based expiry, ephemeral and sequential znodes, and one-shot
// watches on node existence and children.
//
// Like ZooKeeper, ephemeral znodes are deleted when their owning session
// expires — that property is exactly what converts a Group Manager crash
// into a leader-election trigger. The service runs on a simkernel.Runtime so
// session expiry is deterministic in simulation and real-time in deployment.
package coord

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"snooze/internal/simkernel"
)

// Errors returned by the service, mirroring ZooKeeper's error model.
var (
	ErrNoNode         = errors.New("coord: node does not exist")
	ErrNodeExists     = errors.New("coord: node already exists")
	ErrNotEmpty       = errors.New("coord: node has children")
	ErrSessionExpired = errors.New("coord: session expired")
	ErrBadPath        = errors.New("coord: invalid path")
)

// CreateFlag selects znode creation modes.
type CreateFlag int

// Creation flags; combine with bitwise OR.
const (
	// FlagEphemeral ties the znode lifetime to the creating session.
	FlagEphemeral CreateFlag = 1 << iota
	// FlagSequential appends a monotonically increasing, zero-padded
	// sequence number to the path.
	FlagSequential
)

// EventType describes what a watch observed.
type EventType int

// Watch event types.
const (
	EventCreated EventType = iota
	EventDeleted
	EventDataChanged
	EventChildrenChanged
	// EventSessionExpired is delivered to all of an expired session's
	// pending watches so waiters do not hang forever.
	EventSessionExpired
)

// String implements fmt.Stringer.
func (e EventType) String() string {
	switch e {
	case EventCreated:
		return "created"
	case EventDeleted:
		return "deleted"
	case EventDataChanged:
		return "data-changed"
	case EventChildrenChanged:
		return "children-changed"
	case EventSessionExpired:
		return "session-expired"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event is delivered to watch callbacks.
type Event struct {
	Type EventType
	Path string
}

// Watcher receives exactly one event (watches are one-shot, as in ZooKeeper).
type Watcher func(Event)

type znode struct {
	data      []byte
	owner     *Session // non-nil for ephemeral nodes
	children  map[string]*znode
	seq       int // next child sequence number
	dataWatch []watchReg
	childWach []watchReg
	existWach []watchReg // watches set on a path that does not exist yet
}

type watchReg struct {
	session *Session
	fn      Watcher
}

func newZnode() *znode {
	return &znode{children: make(map[string]*znode)}
}

// Service is the in-memory coordination service. All methods are safe for
// concurrent use.
type Service struct {
	rt         simkernel.Runtime
	mu         sync.Mutex
	root       *znode
	sessionSeq int
	// pendingExist holds watches for paths that do not exist yet,
	// keyed by path.
	pendingExist map[string][]watchReg
}

// NewService creates a coordination service on the given runtime.
func NewService(rt simkernel.Runtime) *Service {
	return &Service{
		rt:           rt,
		root:         newZnode(),
		pendingExist: make(map[string][]watchReg),
	}
}

// Session is a client connection whose liveness governs its ephemeral nodes.
type Session struct {
	svc     *Service
	id      int
	ttl     time.Duration
	expiry  simkernel.Canceler
	expired bool
	onExp   func()
}

// ID returns the session's unique identifier.
func (s *Session) ID() int { return s.id }

// NewSession opens a session with the given TTL. If the session is not
// Ping()ed within TTL it expires: its ephemeral nodes are deleted (firing
// watches) and onExpired (optional) is called. TTL <= 0 means the session
// never expires on its own (useful in tests).
func (s *Service) NewSession(ttl time.Duration, onExpired func()) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessionSeq++
	sess := &Session{svc: s, id: s.sessionSeq, ttl: ttl, onExp: onExpired}
	if ttl > 0 {
		sess.expiry = s.rt.After(ttl, func() { s.expire(sess) })
	}
	return sess
}

// Ping refreshes the session's liveness timer, like a ZooKeeper heartbeat.
func (sess *Session) Ping() error {
	s := sess.svc
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess.expired {
		return ErrSessionExpired
	}
	if sess.ttl > 0 {
		if sess.expiry != nil {
			sess.expiry.Cancel()
		}
		sess.expiry = s.rt.After(sess.ttl, func() { s.expire(sess) })
	}
	return nil
}

// Close expires the session immediately (graceful disconnect).
func (sess *Session) Close() { sess.svc.expire(sess) }

// Expired reports whether the session has expired.
func (sess *Session) Expired() bool {
	sess.svc.mu.Lock()
	defer sess.svc.mu.Unlock()
	return sess.expired
}

func (s *Service) expire(sess *Session) {
	s.mu.Lock()
	if sess.expired {
		s.mu.Unlock()
		return
	}
	sess.expired = true
	if sess.expiry != nil {
		sess.expiry.Cancel()
	}
	// Delete all ephemeral nodes owned by this session, collecting watch
	// notifications.
	var notify []func()
	notify = append(notify, s.deleteOwnedLocked(s.root, "", sess)...)
	onExp := sess.onExp
	s.mu.Unlock()
	for _, fn := range notify {
		fn()
	}
	if onExp != nil {
		s.rt.After(0, onExp)
	}
}

// deleteOwnedLocked removes ephemeral nodes owned by sess depth-first,
// returning watch notifications to fire after unlock.
func (s *Service) deleteOwnedLocked(n *znode, path string, sess *Session) []func() {
	var notify []func()
	for name, child := range n.children {
		childPath := path + "/" + name
		notify = append(notify, s.deleteOwnedLocked(child, childPath, sess)...)
		if child.owner == sess && len(child.children) == 0 {
			delete(n.children, name)
			notify = append(notify, s.fireDeleteLocked(child, childPath)...)
			notify = append(notify, s.fireWatchesLocked(n.childWach, Event{Type: EventChildrenChanged, Path: path})...)
			n.childWach = nil
		}
	}
	return notify
}

// ---------------------------------------------------------------------------
// Path handling
// ---------------------------------------------------------------------------

func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") || strings.Contains(path, "//") {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	path = strings.TrimSuffix(path, "/")
	if path == "" {
		return nil, nil // root
	}
	return strings.Split(path[1:], "/"), nil
}

// lookupLocked returns the node at path, or nil.
func (s *Service) lookupLocked(parts []string) *znode {
	n := s.root
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return nil
		}
		n = child
	}
	return n
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

// Create creates a znode at path with the given data. The parent must exist
// (create parents explicitly, as in ZooKeeper). With FlagSequential the
// actual created path gets a 10-digit suffix and is returned. sess may be
// nil for persistent nodes created by infrastructure code.
func (s *Service) Create(sess *Session, path string, data []byte, flags CreateFlag) (string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return "", err
	}
	if len(parts) == 0 {
		return "", fmt.Errorf("%w: cannot create root", ErrBadPath)
	}
	if flags&FlagEphemeral != 0 && sess == nil {
		return "", fmt.Errorf("%w: ephemeral node needs a session", ErrBadPath)
	}
	s.mu.Lock()
	if sess != nil && sess.expired {
		s.mu.Unlock()
		return "", ErrSessionExpired
	}
	parent := s.lookupLocked(parts[:len(parts)-1])
	if parent == nil {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: parent of %s", ErrNoNode, path)
	}
	name := parts[len(parts)-1]
	if flags&FlagSequential != 0 {
		name = fmt.Sprintf("%s%010d", name, parent.seq)
		parent.seq++
	}
	if _, exists := parent.children[name]; exists {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrNodeExists, path)
	}
	n := newZnode()
	n.data = append([]byte(nil), data...)
	if flags&FlagEphemeral != 0 {
		n.owner = sess
	}
	parent.children[name] = n
	created := "/" + strings.Join(append(parts[:len(parts)-1], name), "/")

	var notify []func()
	notify = append(notify, s.fireWatchesLocked(parent.childWach, Event{Type: EventChildrenChanged, Path: parentPath(created)})...)
	parent.childWach = nil
	if regs, ok := s.pendingExist[created]; ok {
		notify = append(notify, s.fireWatchesLocked(regs, Event{Type: EventCreated, Path: created})...)
		delete(s.pendingExist, created)
	}
	s.mu.Unlock()
	for _, fn := range notify {
		fn()
	}
	return created, nil
}

func parentPath(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// Delete removes the znode at path; it must have no children.
func (s *Service) Delete(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot delete root", ErrBadPath)
	}
	s.mu.Lock()
	parent := s.lookupLocked(parts[:len(parts)-1])
	if parent == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	name := parts[len(parts)-1]
	n, ok := parent.children[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	if len(n.children) > 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	delete(parent.children, name)
	var notify []func()
	notify = append(notify, s.fireDeleteLocked(n, path)...)
	notify = append(notify, s.fireWatchesLocked(parent.childWach, Event{Type: EventChildrenChanged, Path: parentPath(path)})...)
	parent.childWach = nil
	s.mu.Unlock()
	for _, fn := range notify {
		fn()
	}
	return nil
}

func (s *Service) fireDeleteLocked(n *znode, path string) []func() {
	var notify []func()
	ev := Event{Type: EventDeleted, Path: path}
	notify = append(notify, s.fireWatchesLocked(n.dataWatch, ev)...)
	notify = append(notify, s.fireWatchesLocked(n.existWach, ev)...)
	n.dataWatch, n.existWach = nil, nil
	return notify
}

// fireWatchesLocked converts registrations into deferred callbacks, dropping
// watches whose session has expired.
func (s *Service) fireWatchesLocked(regs []watchReg, ev Event) []func() {
	var out []func()
	for _, reg := range regs {
		if reg.session != nil && reg.session.expired {
			continue
		}
		fn := reg.fn
		out = append(out, func() { s.rt.After(0, func() { fn(ev) }) })
	}
	return out
}

// Exists reports whether path exists. If watch is non-nil it fires once on
// the next create/delete/data change of the path.
func (s *Service) Exists(sess *Session, path string, watch Watcher) (bool, error) {
	parts, err := splitPath(path)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.lookupLocked(parts)
	if watch != nil {
		reg := watchReg{session: sess, fn: watch}
		if n != nil {
			n.dataWatch = append(n.dataWatch, reg)
		} else {
			s.pendingExist[path] = append(s.pendingExist[path], reg)
		}
	}
	return n != nil, nil
}

// Get returns the data stored at path.
func (s *Service) Get(path string) ([]byte, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.lookupLocked(parts)
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	return append([]byte(nil), n.data...), nil
}

// Set replaces the data at path, firing data watches.
func (s *Service) Set(path string, data []byte) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	n := s.lookupLocked(parts)
	if n == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	n.data = append([]byte(nil), data...)
	notify := s.fireWatchesLocked(n.dataWatch, Event{Type: EventDataChanged, Path: path})
	n.dataWatch = nil
	s.mu.Unlock()
	for _, fn := range notify {
		fn()
	}
	return nil
}

// Children returns the sorted child names of path. If watch is non-nil it
// fires once on the next membership change.
func (s *Service) Children(sess *Session, path string, watch Watcher) ([]string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.lookupLocked(parts)
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	if watch != nil {
		n.childWach = append(n.childWach, watchReg{session: sess, fn: watch})
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// EnsurePath creates every missing component of path as a persistent node
// (mkdir -p). Existing components are left untouched.
func (s *Service) EnsurePath(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, p := range parts {
		cur += "/" + p
		if _, err := s.Create(nil, cur, nil, 0); err != nil && !errors.Is(err, ErrNodeExists) {
			return err
		}
	}
	return nil
}
