package coord

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"snooze/internal/simkernel"
)

// Model-based property test: random sequences of Create/Set/Delete against
// the service must agree with a plain-map reference model (ignoring
// sessions/watches, which have their own tests).

type modelOp struct {
	kind string // create | set | delete | get | children
	path string
	data byte
}

func randomOps(rng *rand.Rand, n int) []modelOp {
	paths := []string{"/a", "/b", "/a/x", "/a/y", "/b/z", "/a/x/deep"}
	kinds := []string{"create", "set", "delete", "get", "children"}
	ops := make([]modelOp, n)
	for i := range ops {
		ops[i] = modelOp{
			kind: kinds[rng.Intn(len(kinds))],
			path: paths[rng.Intn(len(paths))],
			data: byte(rng.Intn(256)),
		}
	}
	return ops
}

func parentOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			if i == 0 {
				return "/"
			}
			return path[:i]
		}
	}
	return "/"
}

func TestModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := simkernel.New(seed)
		svc := NewService(k)
		model := map[string]byte{} // path -> data

		modelHasChildren := func(path string) bool {
			prefix := path + "/"
			for p := range model {
				if len(p) > len(prefix) && p[:len(prefix)] == prefix {
					return true
				}
			}
			return false
		}
		for i, op := range randomOps(rng, 120) {
			switch op.kind {
			case "create":
				_, gotErr := svc.Create(nil, op.path, []byte{op.data}, 0)
				_, exists := model[op.path]
				parent := parentOf(op.path)
				_, parentOK := model[parent]
				if parent == "/" {
					parentOK = true
				}
				wantErr := exists || !parentOK
				if (gotErr != nil) != wantErr {
					t.Logf("op %d create %s: got %v want err=%v", i, op.path, gotErr, wantErr)
					return false
				}
				if gotErr == nil {
					model[op.path] = op.data
				}
			case "set":
				gotErr := svc.Set(op.path, []byte{op.data})
				_, exists := model[op.path]
				if (gotErr != nil) != !exists {
					return false
				}
				if gotErr == nil {
					model[op.path] = op.data
				}
			case "delete":
				gotErr := svc.Delete(op.path)
				_, exists := model[op.path]
				wantErr := !exists || modelHasChildren(op.path)
				if (gotErr != nil) != wantErr {
					return false
				}
				if gotErr == nil {
					delete(model, op.path)
				}
				if wantErr && exists && modelHasChildren(op.path) {
					if !errors.Is(gotErr, ErrNotEmpty) {
						return false
					}
				}
			case "get":
				data, gotErr := svc.Get(op.path)
				want, exists := model[op.path]
				if (gotErr != nil) != !exists {
					return false
				}
				if gotErr == nil && (len(data) != 1 || data[0] != want) {
					return false
				}
			case "children":
				kids, gotErr := svc.Children(nil, op.path, nil)
				_, exists := model[op.path]
				if (gotErr != nil) != !exists {
					return false
				}
				if gotErr == nil {
					var want []string
					prefix := op.path + "/"
					for p := range model {
						if len(p) > len(prefix) && p[:len(prefix)] == prefix {
							rest := p[len(prefix):]
							if !containsSlash(rest) {
								want = append(want, rest)
							}
						}
					}
					sort.Strings(want)
					if fmt.Sprint(kids) != fmt.Sprint(want) {
						t.Logf("children(%s): got %v want %v", op.path, kids, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func containsSlash(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return true
		}
	}
	return false
}
