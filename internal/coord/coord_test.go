package coord

import (
	"errors"
	"testing"
	"time"

	"snooze/internal/simkernel"
)

func newSvc() (*Service, *simkernel.Kernel) {
	k := simkernel.New(1)
	return NewService(k), k
}

func TestCreateGetSet(t *testing.T) {
	s, _ := newSvc()
	if _, err := s.Create(nil, "/a", []byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	data, err := s.Get("/a")
	if err != nil || string(data) != "hello" {
		t.Fatalf("Get: %q %v", data, err)
	}
	if err := s.Set("/a", []byte("world")); err != nil {
		t.Fatal(err)
	}
	data, _ = s.Get("/a")
	if string(data) != "world" {
		t.Fatalf("after Set: %q", data)
	}
}

func TestCreateErrors(t *testing.T) {
	s, _ := newSvc()
	if _, err := s.Create(nil, "/a/b", nil, 0); !errors.Is(err, ErrNoNode) {
		t.Fatalf("missing parent: %v", err)
	}
	if _, err := s.Create(nil, "bad", nil, 0); !errors.Is(err, ErrBadPath) {
		t.Fatalf("bad path: %v", err)
	}
	if _, err := s.Create(nil, "/", nil, 0); !errors.Is(err, ErrBadPath) {
		t.Fatalf("root create: %v", err)
	}
	s.Create(nil, "/a", nil, 0)
	if _, err := s.Create(nil, "/a", nil, 0); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := s.Create(nil, "/e", nil, FlagEphemeral); !errors.Is(err, ErrBadPath) {
		t.Fatalf("ephemeral without session: %v", err)
	}
}

func TestGetSetDeleteErrors(t *testing.T) {
	s, _ := newSvc()
	if _, err := s.Get("/nope"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("Get missing: %v", err)
	}
	if err := s.Set("/nope", nil); !errors.Is(err, ErrNoNode) {
		t.Fatalf("Set missing: %v", err)
	}
	if err := s.Delete("/nope"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("Delete missing: %v", err)
	}
	s.Create(nil, "/p", nil, 0)
	s.Create(nil, "/p/c", nil, 0)
	if err := s.Delete("/p"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Delete non-empty: %v", err)
	}
	if err := s.Delete("/p/c"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/p"); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialNodes(t *testing.T) {
	s, _ := newSvc()
	s.Create(nil, "/election", nil, 0)
	p1, err := s.Create(nil, "/election/n-", nil, FlagSequential)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := s.Create(nil, "/election/n-", nil, FlagSequential)
	if p1 != "/election/n-0000000000" || p2 != "/election/n-0000000001" {
		t.Fatalf("sequential paths: %s %s", p1, p2)
	}
	kids, _ := s.Children(nil, "/election", nil)
	if len(kids) != 2 || kids[0] != "n-0000000000" {
		t.Fatalf("children: %v", kids)
	}
}

func TestEphemeralDeletedOnExpiry(t *testing.T) {
	s, k := newSvc()
	s.Create(nil, "/live", nil, 0)
	expired := false
	sess := s.NewSession(100*time.Millisecond, func() { expired = true })
	if _, err := s.Create(sess, "/live/me", nil, FlagEphemeral); err != nil {
		t.Fatal(err)
	}
	// Pings keep it alive.
	for i := 0; i < 5; i++ {
		k.Run(k.Now() + 50*time.Millisecond)
		if err := sess.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	if ok, _ := s.Exists(nil, "/live/me", nil); !ok {
		t.Fatal("node vanished while pinged")
	}
	// Stop pinging → expiry.
	k.Run(k.Now() + 200*time.Millisecond)
	if ok, _ := s.Exists(nil, "/live/me", nil); ok {
		t.Fatal("ephemeral survived expiry")
	}
	if !expired || !sess.Expired() {
		t.Fatal("expiry callback/flag missing")
	}
	if err := sess.Ping(); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("Ping after expiry: %v", err)
	}
	if _, err := s.Create(sess, "/live/again", nil, FlagEphemeral); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("Create after expiry: %v", err)
	}
}

func TestSessionClose(t *testing.T) {
	s, k := newSvc()
	s.Create(nil, "/g", nil, 0)
	sess := s.NewSession(0, nil) // never self-expires
	s.Create(sess, "/g/e", nil, FlagEphemeral)
	k.Run(time.Hour)
	if ok, _ := s.Exists(nil, "/g/e", nil); !ok {
		t.Fatal("ttl=0 session expired on its own")
	}
	sess.Close()
	if ok, _ := s.Exists(nil, "/g/e", nil); ok {
		t.Fatal("Close did not delete ephemerals")
	}
	sess.Close() // idempotent
}

func TestExistsWatchOnCreateAndDelete(t *testing.T) {
	s, k := newSvc()
	var events []Event
	// Watch a path that does not exist yet.
	ok, err := s.Exists(nil, "/x", func(e Event) { events = append(events, e) })
	if err != nil || ok {
		t.Fatalf("Exists: %v %v", ok, err)
	}
	s.Create(nil, "/x", nil, 0)
	k.Run(time.Second)
	if len(events) != 1 || events[0].Type != EventCreated || events[0].Path != "/x" {
		t.Fatalf("create watch: %v", events)
	}
	// Watch existing node for deletion; watches are one-shot.
	s.Exists(nil, "/x", func(e Event) { events = append(events, e) })
	s.Delete("/x")
	k.Run(2 * time.Second)
	if len(events) != 2 || events[1].Type != EventDeleted {
		t.Fatalf("delete watch: %v", events)
	}
	// No further events after one-shot fired.
	s.Create(nil, "/x", nil, 0)
	k.Run(3 * time.Second)
	if len(events) != 2 {
		t.Fatalf("one-shot violated: %v", events)
	}
}

func TestDataWatch(t *testing.T) {
	s, k := newSvc()
	s.Create(nil, "/d", []byte("v1"), 0)
	var ev *Event
	s.Exists(nil, "/d", func(e Event) { ev = &e })
	s.Set("/d", []byte("v2"))
	k.Run(time.Second)
	if ev == nil || ev.Type != EventDataChanged {
		t.Fatalf("data watch: %v", ev)
	}
}

func TestChildrenWatch(t *testing.T) {
	s, k := newSvc()
	s.Create(nil, "/p", nil, 0)
	var events []Event
	kids, err := s.Children(nil, "/p", func(e Event) { events = append(events, e) })
	if err != nil || len(kids) != 0 {
		t.Fatalf("Children: %v %v", kids, err)
	}
	s.Create(nil, "/p/a", nil, 0)
	k.Run(time.Second)
	if len(events) != 1 || events[0].Type != EventChildrenChanged {
		t.Fatalf("children watch on create: %v", events)
	}
	// Re-arm and check delete fires too.
	s.Children(nil, "/p", func(e Event) { events = append(events, e) })
	s.Delete("/p/a")
	k.Run(2 * time.Second)
	if len(events) != 2 {
		t.Fatalf("children watch on delete: %v", events)
	}
	if _, err := s.Children(nil, "/nope", nil); !errors.Is(err, ErrNoNode) {
		t.Fatalf("Children missing: %v", err)
	}
}

func TestWatchFiresOnSessionExpiry(t *testing.T) {
	s, k := newSvc()
	s.Create(nil, "/el", nil, 0)
	sess := s.NewSession(50*time.Millisecond, nil)
	path, _ := s.Create(sess, "/el/m-", []byte("gm1"), FlagEphemeral|FlagSequential)
	var got *Event
	s.Exists(nil, path, func(e Event) { got = &e })
	k.Run(time.Second) // session expires, ephemeral deleted
	if got == nil || got.Type != EventDeleted {
		t.Fatalf("expiry watch: %v", got)
	}
	kids, _ := s.Children(nil, "/el", nil)
	if len(kids) != 0 {
		t.Fatalf("ephemeral remained: %v", kids)
	}
}

func TestExpiredSessionWatchesDropped(t *testing.T) {
	s, k := newSvc()
	s.Create(nil, "/w", nil, 0)
	sess := s.NewSession(10*time.Millisecond, nil)
	fired := false
	s.Exists(sess, "/w", func(Event) { fired = true })
	k.Run(time.Second) // session expires first
	s.Set("/w", []byte("x"))
	k.Run(2 * time.Second)
	if fired {
		t.Fatal("watch from expired session fired")
	}
}

func TestEnsurePath(t *testing.T) {
	s, _ := newSvc()
	if err := s.EnsurePath("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Exists(nil, "/a/b/c", nil); !ok {
		t.Fatal("EnsurePath did not create")
	}
	// Idempotent.
	if err := s.EnsurePath("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := s.EnsurePath("bad//path"); err == nil {
		t.Fatal("EnsurePath accepted bad path")
	}
}

func TestSessionIDsUnique(t *testing.T) {
	s, _ := newSvc()
	a, b := s.NewSession(0, nil), s.NewSession(0, nil)
	if a.ID() == b.ID() {
		t.Fatal("duplicate session IDs")
	}
}

func TestDeepEphemeralCleanup(t *testing.T) {
	s, k := newSvc()
	s.EnsurePath("/top/mid")
	sess := s.NewSession(20*time.Millisecond, nil)
	s.Create(sess, "/top/mid/leaf", nil, FlagEphemeral)
	k.Run(time.Second)
	if ok, _ := s.Exists(nil, "/top/mid/leaf", nil); ok {
		t.Fatal("deep ephemeral not cleaned")
	}
	if ok, _ := s.Exists(nil, "/top/mid", nil); !ok {
		t.Fatal("persistent parent removed")
	}
}
