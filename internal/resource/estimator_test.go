package resource

import (
	"math"
	"testing"
	"testing/quick"

	"snooze/internal/types"
)

func rvs(cpus ...float64) []types.ResourceVector {
	out := make([]types.ResourceVector, len(cpus))
	for i, c := range cpus {
		out[i] = types.RV(c, c*100, 0, 0)
	}
	return out
}

func TestLastValue(t *testing.T) {
	e := LastValue{}
	if got := e.Estimate(nil); !got.Zero() {
		t.Fatalf("empty window: got %v", got)
	}
	if got := e.Estimate(rvs(1, 2, 3)); got.CPU != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestMovingAverage(t *testing.T) {
	e := MovingAverage{}
	if got := e.Estimate(nil); !got.Zero() {
		t.Fatalf("empty window: got %v", got)
	}
	got := e.Estimate(rvs(1, 2, 3))
	if math.Abs(got.CPU-2) > 1e-9 || math.Abs(got.Memory-200) > 1e-9 {
		t.Fatalf("got %v", got)
	}
}

func TestEWMAWeighting(t *testing.T) {
	e := EWMA{Alpha: 1} // alpha=1 degenerates to last value
	if got := e.Estimate(rvs(5, 1)); got.CPU != 1 {
		t.Fatalf("alpha=1: got %v", got)
	}
	e = EWMA{Alpha: 0.5}
	got := e.Estimate(rvs(0, 4)) // 0*(1-.5)+4*.5 = 2
	if math.Abs(got.CPU-2) > 1e-9 {
		t.Fatalf("alpha=.5: got %v", got)
	}
	// Invalid alpha falls back to 0.5 rather than panicking.
	e = EWMA{Alpha: -3}
	if got := e.Estimate(rvs(0, 4)); math.Abs(got.CPU-2) > 1e-9 {
		t.Fatalf("invalid alpha fallback: got %v", got)
	}
	if got := (EWMA{Alpha: 0.3}).Estimate(nil); !got.Zero() {
		t.Fatalf("empty window: got %v", got)
	}
}

func TestPercentile(t *testing.T) {
	w := rvs(1, 2, 3, 4, 5)
	if got := (Percentile{P: 50}).Estimate(w); math.Abs(got.CPU-3) > 1e-9 {
		t.Fatalf("median: got %v", got)
	}
	if got := (Percentile{P: 100}).Estimate(w); got.CPU != 5 {
		t.Fatalf("p100: got %v", got)
	}
	if got := (Percentile{P: 0}).Estimate(w); got.CPU != 1 {
		t.Fatalf("p0: got %v", got)
	}
	// Interpolation: p25 of [1..5] = 2.0 exactly at rank 1.
	if got := (Percentile{P: 25}).Estimate(w); math.Abs(got.CPU-2) > 1e-9 {
		t.Fatalf("p25: got %v", got)
	}
	// Out-of-range p clamps.
	if got := (Percentile{P: 150}).Estimate(w); got.CPU != 5 {
		t.Fatalf("p150 clamp: got %v", got)
	}
	if got := (Percentile{P: 95}).Estimate(nil); !got.Zero() {
		t.Fatalf("empty window: got %v", got)
	}
}

func TestMaxWindow(t *testing.T) {
	w := []types.ResourceVector{types.RV(1, 500, 3, 0), types.RV(2, 100, 1, 9)}
	got := MaxWindow{}.Estimate(w)
	if got != types.RV(2, 500, 3, 9) {
		t.Fatalf("got %v", got)
	}
}

func TestEstimatorBoundsProperty(t *testing.T) {
	// Every estimator's output lies within [min, max] of the window,
	// per dimension.
	ests := []Estimator{LastValue{}, MovingAverage{}, EWMA{Alpha: 0.3}, Percentile{P: 95}, Percentile{P: 50}, MaxWindow{}}
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]types.ResourceVector, len(raw))
		lo := types.RV(math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1))
		hi := types.ResourceVector{}
		for i, v := range raw {
			v = math.Abs(v)
			if math.IsInf(v, 0) || math.IsNaN(v) {
				v = 1
			}
			v = math.Mod(v, 1e6) // keep sums far from overflow
			w[i] = types.RV(v, v, v, v)
			lo = lo.Min(w[i])
			hi = hi.Max(w[i])
		}
		for _, e := range ests {
			got := e.Estimate(w)
			if !got.FitsIn(hi) || !lo.Sub(types.RV(1e-9, 1e-9, 1e-9, 1e-9)).FitsIn(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryRing(t *testing.T) {
	h := NewHistory(3)
	if h.Len() != 0 {
		t.Fatal("new history should be empty")
	}
	h.Push(types.RV(1, 0, 0, 0))
	h.Push(types.RV(2, 0, 0, 0))
	if h.Len() != 2 {
		t.Fatalf("Len: got %d", h.Len())
	}
	w := h.Window()
	if len(w) != 2 || w[0].CPU != 1 || w[1].CPU != 2 {
		t.Fatalf("Window before wrap: %v", w)
	}
	h.Push(types.RV(3, 0, 0, 0))
	h.Push(types.RV(4, 0, 0, 0)) // evicts 1
	if h.Len() != 3 {
		t.Fatalf("Len after wrap: got %d", h.Len())
	}
	w = h.Window()
	if len(w) != 3 || w[0].CPU != 2 || w[2].CPU != 4 {
		t.Fatalf("Window after wrap: %v", w)
	}
}

func TestHistoryMinCapacity(t *testing.T) {
	h := NewHistory(0) // clamps to 1
	h.Push(types.RV(1, 0, 0, 0))
	h.Push(types.RV(2, 0, 0, 0))
	if h.Len() != 1 || h.Window()[0].CPU != 2 {
		t.Fatalf("capacity-1 history wrong: %v", h.Window())
	}
}

func TestHistoryEstimate(t *testing.T) {
	h := NewHistory(8)
	for i := 1; i <= 4; i++ {
		h.Push(types.RV(float64(i), 0, 0, 0))
	}
	if got := h.Estimate(MovingAverage{}); math.Abs(got.CPU-2.5) > 1e-9 {
		t.Fatalf("Estimate: got %v", got)
	}
}

func TestHistoryConcurrent(t *testing.T) {
	h := NewHistory(64)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			h.Push(types.RV(float64(i), 0, 0, 0))
		}
		close(done)
	}()
	for i := 0; i < 100; i++ {
		_ = h.Window()
		_ = h.Len()
	}
	<-done
	if h.Len() != 64 {
		t.Fatalf("after concurrent pushes Len=%d", h.Len())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"last-value", "moving-average", "ewma", "p90", "p95", "p99", "median", "max", ""} {
		e, err := ByName(name)
		if err != nil || e == nil {
			t.Errorf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) should fail")
	}
}

func TestEstimatorNames(t *testing.T) {
	if (EWMA{Alpha: 0.25}).Name() != "ewma(0.25)" {
		t.Fatal("EWMA name")
	}
	if (Percentile{P: 95}).Name() != "p95" {
		t.Fatal("Percentile name")
	}
	if (LastValue{}).Name() != "last-value" || (MovingAverage{}).Name() != "moving-average" || (MaxWindow{}).Name() != "max" {
		t.Fatal("names")
	}
}
