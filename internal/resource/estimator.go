// Package resource provides resource-demand estimation over monitored
// utilization histories. The paper's Group Managers perform "resource (i.e.
// CPU, memory and network utilization) demand estimation" from the raw
// monitoring samples each Local Controller forwards (Section II-B); the
// estimator chosen determines how aggressively the scheduler packs VMs and
// how often overload relocation fires, so several standard estimators are
// provided and the choice is a documented ablation (DESIGN.md §5).
package resource

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"snooze/internal/types"
)

// Estimator turns a window of utilization samples into a single demand
// estimate per dimension. Implementations must be safe for concurrent use.
type Estimator interface {
	// Estimate returns the demand estimate for the given sample window,
	// oldest sample first. An empty window yields the zero vector.
	Estimate(window []types.ResourceVector) types.ResourceVector
	// Name identifies the estimator in experiment output.
	Name() string
}

// LastValue is the simplest estimator: demand = most recent sample.
type LastValue struct{}

// Estimate implements Estimator.
func (LastValue) Estimate(w []types.ResourceVector) types.ResourceVector {
	if len(w) == 0 {
		return types.ResourceVector{}
	}
	return w[len(w)-1]
}

// Name implements Estimator.
func (LastValue) Name() string { return "last-value" }

// MovingAverage estimates demand as the arithmetic mean of the window.
type MovingAverage struct{}

// Estimate implements Estimator.
func (MovingAverage) Estimate(w []types.ResourceVector) types.ResourceVector {
	if len(w) == 0 {
		return types.ResourceVector{}
	}
	var sum types.ResourceVector
	for _, s := range w {
		sum = sum.Add(s)
	}
	return sum.Scale(1 / float64(len(w)))
}

// Name implements Estimator.
func (MovingAverage) Name() string { return "moving-average" }

// EWMA is an exponentially weighted moving average with smoothing factor
// Alpha in (0,1]; larger Alpha weights recent samples more.
type EWMA struct {
	Alpha float64
}

// Estimate implements Estimator.
func (e EWMA) Estimate(w []types.ResourceVector) types.ResourceVector {
	if len(w) == 0 {
		return types.ResourceVector{}
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.5
	}
	est := w[0]
	for _, s := range w[1:] {
		est = est.Scale(1 - a).Add(s.Scale(a))
	}
	return est
}

// Name implements Estimator.
func (e EWMA) Name() string { return fmt.Sprintf("ewma(%.2f)", e.Alpha) }

// Percentile estimates demand as the per-dimension p-th percentile of the
// window (p in [0,100]). p=95 is the conservative estimator typically used
// for overload avoidance; p=50 is the median.
type Percentile struct {
	P float64
}

// Estimate implements Estimator.
func (p Percentile) Estimate(w []types.ResourceVector) types.ResourceVector {
	if len(w) == 0 {
		return types.ResourceVector{}
	}
	pct := p.P
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	var out [4]float64
	col := make([]float64, len(w))
	for d := 0; d < 4; d++ {
		for i, s := range w {
			col[i] = s.Components()[d]
		}
		sort.Float64s(col)
		// Nearest-rank with linear interpolation.
		rank := pct / 100 * float64(len(col)-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		if lo == hi {
			out[d] = col[lo]
		} else {
			frac := rank - float64(lo)
			out[d] = col[lo]*(1-frac) + col[hi]*frac
		}
	}
	return types.FromComponents(out)
}

// Name implements Estimator.
func (p Percentile) Name() string { return fmt.Sprintf("p%.0f", p.P) }

// MaxWindow estimates demand as the per-dimension maximum over the window —
// the most conservative estimator.
type MaxWindow struct{}

// Estimate implements Estimator.
func (MaxWindow) Estimate(w []types.ResourceVector) types.ResourceVector {
	var m types.ResourceVector
	for _, s := range w {
		m = m.Max(s)
	}
	return m
}

// Name implements Estimator.
func (MaxWindow) Name() string { return "max" }

// ---------------------------------------------------------------------------
// History ring buffer
// ---------------------------------------------------------------------------

// History is a fixed-capacity ring of utilization samples for one VM or node.
// It is safe for concurrent use.
type History struct {
	mu      sync.Mutex
	samples []types.ResourceVector
	next    int
	full    bool
}

// NewHistory creates a history that retains the last n samples (n >= 1).
func NewHistory(n int) *History {
	if n < 1 {
		n = 1
	}
	return &History{samples: make([]types.ResourceVector, n)}
}

// Push appends a sample, evicting the oldest when full.
func (h *History) Push(s types.ResourceVector) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples[h.next] = s
	h.next++
	if h.next == len(h.samples) {
		h.next = 0
		h.full = true
	}
}

// Len returns the number of retained samples.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.full {
		return len(h.samples)
	}
	return h.next
}

// Window returns the retained samples oldest-first as a fresh slice.
func (h *History) Window() []types.ResourceVector {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.full {
		out := make([]types.ResourceVector, h.next)
		copy(out, h.samples[:h.next])
		return out
	}
	out := make([]types.ResourceVector, 0, len(h.samples))
	out = append(out, h.samples[h.next:]...)
	out = append(out, h.samples[:h.next]...)
	return out
}

// Estimate applies est to the current window.
func (h *History) Estimate(est Estimator) types.ResourceVector {
	return est.Estimate(h.Window())
}

// ByName returns the estimator with the given configuration name, used by
// experiment configuration files. Recognized: "last-value", "moving-average",
// "ewma" (alpha 0.5), "p90", "p95", "p99", "median", "max".
func ByName(name string) (Estimator, error) {
	switch name {
	case "last-value", "":
		return LastValue{}, nil
	case "moving-average":
		return MovingAverage{}, nil
	case "ewma":
		return EWMA{Alpha: 0.5}, nil
	case "p90":
		return Percentile{P: 90}, nil
	case "p95":
		return Percentile{P: 95}, nil
	case "p99":
		return Percentile{P: 99}, nil
	case "median":
		return Percentile{P: 50}, nil
	case "max":
		return MaxWindow{}, nil
	default:
		return nil, fmt.Errorf("resource: unknown estimator %q", name)
	}
}
