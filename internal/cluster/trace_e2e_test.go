package cluster

import (
	"testing"
	"time"

	"snooze/internal/obs"
	"snooze/internal/scheduling"
	"snooze/internal/telemetry"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// TestDecisionTraceAcrossDispatchAndPlacement is the end-to-end check for
// the decision-tracing pipeline: a VM submission must leave one trace whose
// dispatch root (GL) and placement child (GM) are linked by parentage, with
// the placement span carrying percentile-fit's per-candidate rejection
// reasons and the capacity-view generation the decision was priced from.
func TestDecisionTraceAcrossDispatchAndPlacement(t *testing.T) {
	top := workload.Grid5000Topology(8, 2)
	cfg := DefaultConfig(top, 17)
	cfg.Manager.Placement = scheduling.PercentileFitPlacement{}
	c := New(cfg)
	c.Settle(2 * time.Minute) // hierarchy formed, telemetry flowing

	resp, err := c.SubmitAndWait([]types.VMSpec{vmSpec("traced", 1, 1024)}, 2*time.Minute)
	if err != nil || len(resp.Placed) != 1 {
		t.Fatalf("submit: %+v %v", resp, err)
	}

	recs := c.Tracer.Select(obs.Query{Entity: telemetry.VMEntity("traced")})
	var dispatch, placement *obs.Record
	for i := range recs {
		switch recs[i].Kind {
		case obs.KindDispatch:
			dispatch = &recs[i]
		case obs.KindPlacement:
			placement = &recs[i]
		}
	}
	if dispatch == nil || placement == nil {
		t.Fatalf("want dispatch and placement spans, got %+v", recs)
	}

	// One trace end to end, linked by parentage across the GL→GM hop.
	if dispatch.TraceID != placement.TraceID {
		t.Fatalf("trace split across hops: dispatch=%s placement=%s", dispatch.TraceID, placement.TraceID)
	}
	if placement.Parent != dispatch.SpanID {
		t.Fatalf("placement.Parent = %q, want dispatch span %q", placement.Parent, dispatch.SpanID)
	}
	if dispatch.Parent != "" {
		t.Fatalf("dispatch must be the trace root, has parent %q", dispatch.Parent)
	}
	if dispatch.Outcome != "placed" || placement.Outcome != "placed" {
		t.Fatalf("outcomes: dispatch=%q placement=%q", dispatch.Outcome, placement.Outcome)
	}

	// The evidence: deciding policy, chosen target, and — with 4 nodes per
	// group — at least one candidate percentile-fit rejected, with a reason.
	if placement.Policy != "percentile-fit" {
		t.Fatalf("placement.Policy = %q", placement.Policy)
	}
	if placement.Target == "" || placement.Target != string(resp.Placed["traced"]) {
		t.Fatalf("placement.Target = %q, placed on %q", placement.Target, resp.Placed["traced"])
	}
	chosen, rejected := 0, 0
	for _, cand := range placement.Candidates {
		if cand.Chosen {
			chosen++
			continue
		}
		rejected++
		if cand.Reason == "" {
			t.Fatalf("rejected candidate %q has no reason", cand.ID)
		}
	}
	if chosen != 1 || rejected == 0 {
		t.Fatalf("candidates: chosen=%d rejected=%d (%+v)", chosen, rejected, placement.Candidates)
	}

	// The capacity view the decision consumed is pinned by generation — the
	// cluster has been running monitoring for minutes, so it cannot be 0.
	if placement.View.Gen == 0 {
		t.Fatalf("placement.View.Gen = 0, want the telemetry append generation (view evidence missing)")
	}

	// Span completion also journals a decision.trace event carrying the
	// trace ID, so watch streams correlate with /v1/traces.
	found := false
	for _, ev := range c.Telemetry.Journal().Replay(0, 1<<20) {
		if ev.Type == telemetry.EventDecisionTrace && ev.Attrs.Get("trace") == dispatch.TraceID && ev.Attrs.Get("kind") == obs.KindDispatch {
			found = true
		}
	}
	if !found {
		t.Fatalf("no decision.trace journal event for trace %s", dispatch.TraceID)
	}
}
