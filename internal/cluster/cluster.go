// Package cluster assembles complete simulated Snooze deployments: a
// discrete-event kernel, an in-process message bus, the coordination
// service, one hypervisor node + Local Controller per topology entry, a set
// of Manager processes (GM/GL via election) and replicated Entry Points.
// Experiments and tests drive the returned Cluster's virtual clock and
// inject faults through it.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"snooze/internal/coord"
	"snooze/internal/hierarchy"
	"snooze/internal/hypervisor"
	"snooze/internal/metrics"
	"snooze/internal/obs"
	"snooze/internal/protocol"
	"snooze/internal/simkernel"
	"snooze/internal/telemetry"
	"snooze/internal/transport"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// Config parameterizes a simulated cluster.
type Config struct {
	// Seed drives every random source (bus jitter, ACO, workloads).
	Seed int64
	// Topology describes nodes and hierarchy shape.
	Topology workload.Topology
	// Hypervisor configures nodes (power model, traces, migration rate).
	Hypervisor hypervisor.Config
	// LC configures local controllers.
	LC hierarchy.LCConfig
	// Manager is the template for all managers; ID/Addr are filled per
	// manager. Leave zero-valued to use defaults.
	Manager hierarchy.ManagerConfig
	// Bus configures latency/jitter.
	Bus transport.Config
	// MeterPeriod samples node energy meters (0 disables).
	MeterPeriod time.Duration
	// Metrics receives counters from all managers (created when nil).
	Metrics *metrics.Registry
	// Tracer records decision traces across the hierarchy (created when
	// nil, clocked by the sim kernel and journaling decision.trace events
	// on the telemetry hub).
	Tracer *obs.Tracer
	// Telemetry is the deployment-wide telemetry hub shared by every manager
	// (created when nil, with detector thresholds mirroring LC.Thresholds so
	// the GM-side detector and the LC-side classifier agree).
	Telemetry *telemetry.Hub
	// Retention sizes the created hub's series store: raw ring capacity and
	// the downsampled tier ladder (see telemetry.StoreConfig). Ignored when
	// Telemetry is provided.
	Retention telemetry.StoreConfig
	// PerGMHubs gives every manager its own private telemetry hub instead of
	// the deployment-shared one — the live-deployment topology, where a GM
	// crash actually loses its windowed telemetry. The state-recovery e2e
	// tests use it to exercise snapshot + journal-replay failover; the
	// shared hub (default) keeps the single-process simulation cheap.
	PerGMHubs bool
	// AutoRole, when non-nil, enables autonomic manager-population control
	// (the paper's Section V future work: the framework, not the
	// administrator, decides which nodes act as GMs).
	AutoRole *hierarchy.AutoRoleConfig
}

// DefaultConfig returns a ready-to-run configuration for the given topology.
func DefaultConfig(top workload.Topology, seed int64) Config {
	return Config{
		Seed:        seed,
		Topology:    top,
		Hypervisor:  hypervisor.DefaultConfig(),
		LC:          hierarchy.DefaultLCConfig(),
		Manager:     hierarchy.DefaultManagerConfig("", ""),
		Bus:         transport.Config{Latency: 500 * time.Microsecond, Jitter: 250 * time.Microsecond, Seed: seed},
		MeterPeriod: 5 * time.Second,
		Metrics:     metrics.NewRegistry(),
	}
}

// Cluster is a fully wired simulated deployment.
type Cluster struct {
	Kernel    *simkernel.Kernel
	Bus       *transport.Bus
	Coord     *coord.Service
	Nodes     map[types.NodeID]*hypervisor.Node
	LCs       map[types.NodeID]*hierarchy.LC
	Managers  []*hierarchy.Manager
	EPs       []*hierarchy.EP
	Client    *hierarchy.Client
	Metrics   *metrics.Registry
	Telemetry *telemetry.Hub
	Tracer    *obs.Tracer
	AutoRole  *hierarchy.AutoRole

	cfg   Config
	meter *simkernel.Ticker
}

// New builds and starts a cluster. The hierarchy self-organizes once the
// kernel runs (call Settle).
func New(cfg Config) *Cluster {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Telemetry == nil {
		lcTh := cfg.LC.Thresholds
		if lcTh.Overload == 0 {
			lcTh = hierarchy.DefaultLCConfig().Thresholds
		}
		cooldown := cfg.LC.AnomalyCooldown
		if cooldown == 0 {
			cooldown = hierarchy.DefaultLCConfig().AnomalyCooldown
		}
		cfg.Telemetry = telemetry.NewHub(telemetry.Options{
			Metrics: cfg.Metrics,
			Store:   cfg.Retention,
			Thresholds: telemetry.Thresholds{
				Overload:  lcTh.Overload,
				Underload: lcTh.Underload,
				Repeat:    cooldown,
			},
		})
	}
	k := simkernel.New(cfg.Seed)
	if cfg.Tracer == nil {
		hub := cfg.Telemetry
		cfg.Tracer = obs.New(obs.Config{
			Now:     k.Now,
			Metrics: cfg.Metrics,
			Emit: func(entity string, attrs map[string]string) {
				hub.Emit(telemetry.EventDecisionTrace, entity, k.Now(), telemetry.AttrsFromMap(attrs))
			},
		})
	}
	bus := transport.NewBus(k, cfg.Bus)
	svc := coord.NewService(k)
	c := &Cluster{
		Kernel:    k,
		Bus:       bus,
		Coord:     svc,
		Nodes:     make(map[types.NodeID]*hypervisor.Node),
		LCs:       make(map[types.NodeID]*hierarchy.LC),
		Metrics:   cfg.Metrics,
		Telemetry: cfg.Telemetry,
		Tracer:    cfg.Tracer,
		cfg:       cfg,
	}

	// Nodes + LCs.
	resolve := func(id types.NodeID) (*hypervisor.Node, bool) {
		n, ok := c.Nodes[id]
		return n, ok
	}
	for _, spec := range cfg.Topology.Nodes {
		node := hypervisor.NewNode(k, spec, cfg.Hypervisor)
		c.Nodes[spec.ID] = node
		lc := hierarchy.NewLC(k, bus, node, transport.Address("lc:"+string(spec.ID)), resolve, cfg.LC)
		c.LCs[spec.ID] = lc
		lc.Start()
	}

	// Managers: Topology.GMs counts group managers; one extra process is
	// spawned because the election promotes one manager to GL and "GL and
	// GMs do not host VMs" — the promoted one sheds its LC group.
	gms := cfg.Topology.GMs
	if gms < 1 {
		gms = 1
	}
	for i := 0; i < gms+1; i++ {
		mcfg := cfg.Manager
		mcfg.ID = types.GroupManagerID(fmt.Sprintf("gm-%02d", i))
		mcfg.Addr = transport.Address("mgr:" + string(mcfg.ID))
		if mcfg.HeartbeatPeriod == 0 {
			mcfg = mergeDefaults(mcfg)
		}
		mcfg.Metrics = cfg.Metrics
		mcfg.Telemetry = cfg.Telemetry
		mcfg.Tracer = cfg.Tracer
		if cfg.PerGMHubs {
			// Nil makes NewManager create a private hub per process (sized
			// by Retention); GM failover then really loses state unless the
			// snapshot + journal-replay recovery restores it.
			mcfg.Telemetry = nil
			mcfg.Retention = cfg.Retention
		}
		m := hierarchy.NewManager(k, bus, svc, mcfg)
		c.Managers = append(c.Managers, m)
		if err := m.Start(); err != nil {
			panic(fmt.Sprintf("cluster: manager start: %v", err))
		}
	}

	// Entry points + client.
	eps := cfg.Topology.EPs
	if eps < 1 {
		eps = 1
	}
	var epAddrs []transport.Address
	for i := 0; i < eps; i++ {
		addr := transport.Address(fmt.Sprintf("ep:%02d", i))
		ep := hierarchy.NewEP(k, bus, addr, 0)
		ep.Start()
		c.EPs = append(c.EPs, ep)
		epAddrs = append(epAddrs, addr)
	}
	c.Client = hierarchy.NewClient(k, bus, "client:0", epAddrs, 0)

	// Autonomic role assignment (optional).
	if cfg.AutoRole != nil {
		factory := func(index int) (*hierarchy.Manager, error) {
			id := types.GroupManagerID(hierarchy.AutoManagerID(index))
			mcfg := cfg.Manager
			mcfg.ID = id
			mcfg.Addr = transport.Address("mgr:" + string(id))
			if mcfg.HeartbeatPeriod == 0 {
				mcfg = mergeDefaults(mcfg)
			}
			mcfg.Metrics = cfg.Metrics
			mcfg.Telemetry = cfg.Telemetry
			mcfg.Tracer = cfg.Tracer
			if cfg.PerGMHubs {
				mcfg.Telemetry = nil
				mcfg.Retention = cfg.Retention
			}
			m := hierarchy.NewManager(k, bus, svc, mcfg)
			if err := m.Start(); err != nil {
				return nil, err
			}
			c.Managers = append(c.Managers, m)
			return m, nil
		}
		c.AutoRole = hierarchy.NewAutoRole(k, bus, "autorole:0", factory, *cfg.AutoRole)
		c.AutoRole.Start()
	}

	// Periodic energy metering.
	if cfg.MeterPeriod > 0 {
		c.meter = simkernel.NewTicker(k, cfg.MeterPeriod, func() {
			for _, n := range c.Nodes {
				n.MeterSample()
			}
		})
		c.meter.Start()
	}
	return c
}

// mergeDefaults fills zero fields of a manager config template with the
// package defaults, preserving explicitly set policies.
func mergeDefaults(mcfg hierarchy.ManagerConfig) hierarchy.ManagerConfig {
	def := hierarchy.DefaultManagerConfig(mcfg.ID, mcfg.Addr)
	if mcfg.Dispatch != nil {
		def.Dispatch = mcfg.Dispatch
	}
	if mcfg.Placement != nil {
		def.Placement = mcfg.Placement
	}
	if mcfg.Overload != nil {
		def.Overload = mcfg.Overload
	}
	if mcfg.Underload != nil {
		def.Underload = mcfg.Underload
	}
	if mcfg.Estimator != nil {
		def.Estimator = mcfg.Estimator
	}
	if mcfg.ViewHorizon > 0 {
		def.ViewHorizon = mcfg.ViewHorizon
	}
	if mcfg.ViewMinSamples > 0 {
		def.ViewMinSamples = mcfg.ViewMinSamples
	}
	if mcfg.ViewMaxAge > 0 {
		def.ViewMaxAge = mcfg.ViewMaxAge
	}
	def.EnergyEnabled = mcfg.EnergyEnabled
	if mcfg.IdleThreshold > 0 {
		def.IdleThreshold = mcfg.IdleThreshold
	}
	if mcfg.PendingTimeout > 0 {
		def.PendingTimeout = mcfg.PendingTimeout
	}
	def.Reconfig = mcfg.Reconfig
	if mcfg.ReconfigPeriod > 0 {
		def.ReconfigPeriod = mcfg.ReconfigPeriod
	}
	def.RescheduleOnLCFailure = mcfg.RescheduleOnLCFailure
	if mcfg.VMLivenessGrace != 0 {
		def.VMLivenessGrace = mcfg.VMLivenessGrace
	}
	def.Retention = mcfg.Retention
	def.Consolidation = mcfg.Consolidation
	if mcfg.DispatchBatch != 0 {
		def.DispatchBatch = mcfg.DispatchBatch
	}
	if mcfg.AdmissionOrder != "" {
		def.AdmissionOrder = mcfg.AdmissionOrder
	}
	if mcfg.RollupInterval != 0 {
		def.RollupInterval = mcfg.RollupInterval
	}
	def.DisableScanGating = mcfg.DisableScanGating
	if mcfg.StateSyncPeriod != 0 {
		def.StateSyncPeriod = mcfg.StateSyncPeriod
	}
	if mcfg.MigrationRetries != 0 {
		def.MigrationRetries = mcfg.MigrationRetries
	}
	if mcfg.MigrationBackoff != 0 {
		def.MigrationBackoff = mcfg.MigrationBackoff
	}
	return def
}

// Settle advances virtual time by d, letting the hierarchy self-organize
// (election, joins, first heartbeats).
func (c *Cluster) Settle(d time.Duration) {
	c.Kernel.Run(c.Kernel.Now() + d)
}

// Leader returns the current GL manager, or nil during an election.
func (c *Cluster) Leader() *hierarchy.Manager {
	for _, m := range c.Managers {
		if m.Role() == hierarchy.RoleGL {
			return m
		}
	}
	return nil
}

// GroupManagers returns managers currently in the GM role.
func (c *Cluster) GroupManagers() []*hierarchy.Manager {
	var out []*hierarchy.Manager
	for _, m := range c.Managers {
		if m.Role() == hierarchy.RoleGM {
			out = append(out, m)
		}
	}
	return out
}

// ErrTimeout is returned by the *AndWait helpers.
var ErrTimeout = errors.New("cluster: operation did not complete in simulated time")

// SubmitAndWait submits VMs through the client and drives the kernel until
// the response arrives (or maxSim virtual time elapses).
func (c *Cluster) SubmitAndWait(vms []types.VMSpec, maxSim time.Duration) (protocol.SubmitResponse, error) {
	var resp protocol.SubmitResponse
	var rerr error
	done := false
	c.Client.Submit(vms, func(r protocol.SubmitResponse, err error) {
		resp, rerr, done = r, err, true
	})
	deadline := c.Kernel.Now() + maxSim
	for !done && c.Kernel.Now() < deadline {
		if !c.Kernel.Step() {
			break
		}
	}
	if !done {
		return resp, ErrTimeout
	}
	return resp, rerr
}

// TopologyAndWait fetches the hierarchy export through the client.
func (c *Cluster) TopologyAndWait(maxSim time.Duration) (protocol.TopologyResponse, error) {
	return c.topologyAndWait(maxSim, false)
}

// TopologyDeepAndWait fetches the hierarchy export including per-LC detail
// (the GL fans out to every GM).
func (c *Cluster) TopologyDeepAndWait(maxSim time.Duration) (protocol.TopologyResponse, error) {
	return c.topologyAndWait(maxSim, true)
}

func (c *Cluster) topologyAndWait(maxSim time.Duration, deep bool) (protocol.TopologyResponse, error) {
	var resp protocol.TopologyResponse
	var rerr error
	done := false
	cb := func(r protocol.TopologyResponse, err error) {
		resp, rerr, done = r, err, true
	}
	if deep {
		c.Client.TopologyDeep(cb)
	} else {
		c.Client.Topology(cb)
	}
	deadline := c.Kernel.Now() + maxSim
	for !done && c.Kernel.Now() < deadline {
		if !c.Kernel.Step() {
			break
		}
	}
	if !done {
		return resp, ErrTimeout
	}
	return resp, rerr
}

// RunningVMs counts VMs in VMRunning state across all nodes.
func (c *Cluster) RunningVMs() int {
	n := 0
	for _, node := range c.Nodes {
		for _, vm := range node.VMs() {
			if vm.State == types.VMRunning {
				n++
			}
		}
	}
	return n
}

// TotalVMs counts VMs in any live state across all nodes.
func (c *Cluster) TotalVMs() int {
	n := 0
	for _, node := range c.Nodes {
		n += len(node.VMs())
	}
	return n
}

// PowerStates counts nodes per power state.
func (c *Cluster) PowerStates() map[types.PowerState]int {
	out := map[types.PowerState]int{}
	for _, node := range c.Nodes {
		out[node.Power()]++
	}
	return out
}

// TotalEnergyJoules sums node energy meters (sample first). Summation is in
// node-ID order so the floating-point result is identical across runs.
func (c *Cluster) TotalEnergyJoules() float64 {
	ids := make([]string, 0, len(c.Nodes))
	for id := range c.Nodes {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	var sum float64
	for _, id := range ids {
		n := c.Nodes[types.NodeID(id)]
		n.MeterSample()
		sum += n.EnergyJoules()
	}
	return sum
}

// CrashLeader fail-stops the current GL; returns the crashed manager (nil if
// no leader).
func (c *Cluster) CrashLeader() *hierarchy.Manager {
	gl := c.Leader()
	if gl == nil {
		return nil
	}
	gl.Crash()
	return gl
}

// FailNode crash-stops a node (and with it, its LC).
func (c *Cluster) FailNode(id types.NodeID) {
	if n, ok := c.Nodes[id]; ok {
		n.Fail()
	}
}
