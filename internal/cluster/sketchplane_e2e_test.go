package cluster

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"snooze/internal/hierarchy"
	"snooze/internal/telemetry"
	"snooze/internal/telemetry/sketch"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// TestAdmissionOrderEquivalentResourceTotals pins the AdmissionOrder
// contract: with capacity to spare, batched dispatch admits the same VMs —
// hence identical placed resource totals — whether the batch is ranked
// first-fit-decreasing (the default) or left in arrival order. Only the
// admission order may differ, never the admitted capacity.
func TestAdmissionOrderEquivalentResourceTotals(t *testing.T) {
	run := func(t *testing.T, order string) (map[types.VMID]types.NodeID, types.ResourceVector, int64) {
		t.Helper()
		cfg := DefaultConfig(workload.Grid5000Topology(48, 4), 11)
		cfg.Manager.DispatchBatch = 32
		cfg.Manager.AdmissionOrder = order
		c := New(cfg)
		c.Settle(30 * time.Second)
		gen := workload.NewGenerator(11, nil)
		batch := gen.Batch(60)
		specs := make(map[types.VMID]types.ResourceVector, len(batch))
		for _, vm := range batch {
			specs[vm.ID] = vm.Requested
		}
		resp, err := c.SubmitAndWait(batch, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Unplaced) > 0 {
			t.Fatalf("order %q left %d VMs unplaced with spare capacity", order, len(resp.Unplaced))
		}
		var total types.ResourceVector
		ids := make([]types.VMID, 0, len(resp.Placed))
		for vm := range resp.Placed {
			ids = append(ids, vm)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, vm := range ids {
			total = total.Add(specs[vm])
		}
		return resp.Placed, total, c.Metrics.Count("gl.dispatch-batches")
	}

	ffdPlaced, ffdTotal, ffdBatches := run(t, hierarchy.AdmissionFFD)
	arrPlaced, arrTotal, arrBatches := run(t, hierarchy.AdmissionArrival)
	if ffdBatches == 0 || arrBatches == 0 {
		t.Fatalf("fixture: batched dispatch not exercised (ffd %d, arrival %d batches)", ffdBatches, arrBatches)
	}
	if len(ffdPlaced) != len(arrPlaced) {
		t.Fatalf("admitted VM count diverged: ffd %d, arrival %d", len(ffdPlaced), len(arrPlaced))
	}
	if ffdTotal != arrTotal {
		t.Fatalf("placed resource totals diverged: ffd %+v, arrival %+v", ffdTotal, arrTotal)
	}
}

// TestSummaryCarriesMergedUtilSketch pins the GM→GL sketch rollup: every
// summary push carries the merged quantile sketch of the group's member
// node-util series, and the GL adopts it onto the gm/<id> rollup series — so
// group-level quantiles answer over the members' actual utilization
// distribution, with the error bound attached, instead of over the rollup's
// series of group averages.
func TestSummaryCarriesMergedUtilSketch(t *testing.T) {
	cfg := DefaultConfig(workload.Grid5000Topology(24, 3), 5)
	c := New(cfg)
	c.Settle(30 * time.Second)
	var vms []types.VMSpec
	for i := 0; i < 24; i++ {
		vms = append(vms, vmSpec(fmt.Sprintf("s%d", i), 1, 2048))
	}
	if resp, err := c.SubmitAndWait(vms, 2*time.Minute); err != nil || len(resp.Placed) != 24 {
		t.Fatalf("submit: %+v %v", resp, err)
	}
	c.Settle(30 * time.Second)

	if got := c.Metrics.Count("gl.summary-sketch-adoptions"); got == 0 {
		t.Fatal("GL adopted no summary sketches")
	}
	store := c.Telemetry.Store()
	topo, err := c.TopologyAndWait(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, gm := range topo.GMs {
		if gm.Summary.ActiveLCs == 0 {
			continue
		}
		// Per-GM scheduling info rides the same pushes as the sketch.
		if gm.Scheduling == nil || gm.Scheduling.Placement == "" {
			t.Fatalf("GM %s reported no scheduling info: %+v", gm.GM, gm.Scheduling)
		}
		entity := telemetry.GMEntity(gm.GM)
		enc, ok := store.SeriesSketch(entity, "util")
		if !ok || enc.Total == 0 {
			t.Fatalf("GM %s rollup series has no adopted sketch", gm.GM)
		}
		spec := &telemetry.SummarySpec{Percentiles: []float64{50, 95}}
		sum, ok := store.Reduce(entity, "util", 0, 0, spec)
		if !ok {
			t.Fatalf("GM %s rollup reduce failed", gm.GM)
		}
		if sum.QuantileError <= 0 {
			t.Fatalf("GM %s quantiles carry no error bound: %+v", gm.GM, sum)
		}
		// The adopted distribution must agree with a hand-merge of the
		// member sketches done now — the adopted copy is at most one summary
		// period staler, so each member contributed a couple fewer samples.
		adopted := sketch.Decode(enc)
		hand := sketch.New(store.SketchAlpha())
		for id, lc := range c.LCs {
			if string(lc.GM()) != gm.Addr {
				continue
			}
			if e, ok := store.SeriesSketch(telemetry.NodeEntity(id), "util"); ok {
				hand.Merge(sketch.Decode(e))
			}
		}
		if hand.Count() == 0 {
			t.Fatalf("GM %s: no member util sketches to merge", gm.GM)
		}
		for _, q := range []float64{50, 95} {
			a, h := adopted.Quantile(q), hand.Quantile(q)
			if math.Abs(a-h) > 3*adopted.Alpha()*math.Max(h, 0.05)+0.02 {
				t.Fatalf("GM %s p%.0f: adopted %v vs hand-merged %v", gm.GM, q, a, h)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no GM with members checked")
	}
}

// TestGMCrashRestoresSketchQuantiles extends the state-recovery path to the
// statistics plane: with per-GM private hubs, a tiny raw ring and no
// retention tiers, an orphaned node's utilization history survives a GM
// crash ONLY inside the lifetime sketch and moments that ride the
// KindStateSync snapshots — the raw ring holds 8 samples and everything
// older was evicted outright. The adopting survivor must answer honest
// truncated lifetime statistics (Weight beyond anything it could rebuild
// from restored raw samples, quantiles with the error bound attached) that
// bracket the victim's own at-crash distribution.
func TestGMCrashRestoresSketchQuantiles(t *testing.T) {
	top := workload.Grid5000Topology(12, 3)
	cfg := DefaultConfig(top, 77)
	cfg.PerGMHubs = true
	cfg.Retention = telemetry.StoreConfig{SeriesCapacity: 8, Tiers: telemetry.NoTiers}
	cfg.Manager.StateSyncPeriod = 2 * time.Second
	c := New(cfg)
	c.Settle(30 * time.Second)

	var vms []types.VMSpec
	for i := 0; i < 12; i++ {
		vms = append(vms, vmSpec(fmt.Sprintf("q%d", i), 1, 2048))
	}
	if resp, err := c.SubmitAndWait(vms, 2*time.Minute); err != nil || len(resp.Placed) != 12 {
		t.Fatalf("submit: %+v %v", resp, err)
	}
	// Long enough that every node series has evicted well past its 8-slot
	// ring, so lifetime distributions exist only in the sketches.
	c.Settle(40 * time.Second)

	gms := c.GroupManagers()
	sort.Slice(gms, func(i, j int) bool { return gms[i].ID() < gms[j].ID() })
	if len(gms) < 2 {
		t.Fatalf("need >=2 GMs, have %d", len(gms))
	}
	victim := gms[0]
	var orphans []types.NodeID
	for id, lc := range c.LCs {
		if lc.GM() == victim.Addr() {
			orphans = append(orphans, id)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	if len(orphans) == 0 {
		t.Fatal("victim GM manages no LCs")
	}

	// The victim's own at-crash lifetime statistics, per orphan (its
	// in-memory store stays readable after the simulated crash).
	type ref struct {
		weight   uint64
		min, max float64
	}
	spec := &telemetry.SummarySpec{Percentiles: []float64{50, 95}}
	before := map[types.NodeID]ref{}
	for _, id := range orphans {
		if sum, ok := victim.Telemetry().Store().Reduce(telemetry.NodeEntity(id), "util", 0, 0, spec); ok {
			before[id] = ref{weight: sum.Weight, min: sum.Min, max: sum.Max}
		}
	}
	victim.Crash()
	c.Settle(16 * time.Second)

	if got := c.Metrics.Count("gm.recoveries"); got == 0 {
		t.Fatal("no survivor adopted the restored state")
	}
	survivors := map[string]*hierarchy.Manager{}
	for _, m := range c.GroupManagers() {
		if m != victim {
			survivors[string(m.Addr())] = m
		}
	}
	recovered := 0
	for _, id := range orphans {
		adopter, ok := survivors[string(c.LCs[id].GM())]
		if !ok {
			t.Fatalf("orphan %s not re-assigned to a survivor", id)
		}
		want, ok := before[id]
		if !ok || want.weight <= 8 {
			continue // no evicted history to prove carriage with
		}
		sum, ok := adopter.Telemetry().Store().Reduce(telemetry.NodeEntity(id), "util", 0, 0, spec)
		if !ok {
			continue // restore may have raced the rejoin for this node
		}
		// Weight beyond the 8-slot ring is only reachable via the carried
		// sketch/moments: the restored raw window cannot account for it. A
		// weight within ring capacity means this orphan rejoined a survivor
		// that was not handed the archive — skip it, like the base recovery
		// test does, and require at least one restored orphan at the end.
		if sum.Weight <= 8 {
			continue
		}
		if sum.Weight+2 < want.weight {
			t.Fatalf("orphan %s: restored weight %d lost history (victim had %d)", id, sum.Weight, want.weight)
		}
		if !sum.Truncated {
			t.Fatalf("orphan %s: truncation not reported on evicted history", id)
		}
		if sum.QuantileError <= 0 {
			t.Fatalf("orphan %s: restored quantiles carry no error bound", id)
		}
		a := sum.QuantileError
		for i, q := range spec.Percentiles {
			v := sum.Percentiles[i]
			if v < want.min*(1-a)-1e-9 || v > want.max*(1+a)+1e-9 {
				t.Fatalf("orphan %s p%.0f = %v outside victim's lifetime range [%v, %v]", id, q, v, want.min, want.max)
			}
		}
		recovered++
	}
	if recovered == 0 {
		t.Fatal("no orphan with evicted history was verified across the failover")
	}
}
