package cluster

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"snooze/internal/hierarchy"
	"snooze/internal/scheduling/view"
	"snooze/internal/telemetry"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// TestGMCrashRecoversTelemetryState is the state-recovery acceptance test:
// with per-GM private hubs (the live-deployment topology where a GM crash
// really loses its telemetry), a GM killed mid-workload must be survivable
// without a cold capacity view — the GL pushes the victim's replicated
// snapshot + journal tail to the survivors, and the successor that adopts
// the orphaned LCs prices them from restored, still-Fresh statistics
// instead of falling back to bare snapshots for the next five monitoring
// periods.
func TestGMCrashRecoversTelemetryState(t *testing.T) {
	top := workload.Grid5000Topology(12, 3)
	cfg := DefaultConfig(top, 77)
	cfg.PerGMHubs = true
	cfg.Manager.StateSyncPeriod = 2 * time.Second
	c := New(cfg)
	c.Settle(30 * time.Second)

	var vms []types.VMSpec
	for i := 0; i < 12; i++ {
		vms = append(vms, vmSpec(fmt.Sprintf("r%d", i), 1, 2048))
	}
	resp, err := c.SubmitAndWait(vms, 2*time.Minute)
	if err != nil || len(resp.Placed) != 12 {
		t.Fatalf("submit: %+v %v", resp, err)
	}
	// Accumulate enough monitoring history for Fresh statistics (monitor
	// period 3s, MinSamples 5) and several state-sync pushes to the GL.
	c.Settle(20 * time.Second)

	gms := c.GroupManagers()
	sort.Slice(gms, func(i, j int) bool { return gms[i].ID() < gms[j].ID() })
	if len(gms) < 2 {
		t.Fatalf("need >=2 GMs, have %d", len(gms))
	}
	victim := gms[0]
	var orphans []types.NodeID
	for id, lc := range c.LCs {
		if lc.GM() == victim.Addr() {
			orphans = append(orphans, id)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	if len(orphans) == 0 {
		t.Fatal("victim GM manages no LCs")
	}
	if c.Metrics.Count("gm.state-syncs") == 0 {
		t.Fatal("no state syncs reached the GL before the crash")
	}

	crashAt := c.Kernel.Now()
	victim.Crash()
	// GL sweep declares the GM dead after GMTimeout (12s); LCs detect the
	// dead GM and rejoin on a similar clock. Keep the window short enough
	// that fewer than MinSamples post-adoption reports exist, so only the
	// restored history can make the successor's view Fresh.
	c.Settle(16 * time.Second)

	if got := c.Metrics.Count("gl.state-restores"); got == 0 {
		t.Fatal("GL pushed no archives after the GM failure")
	}
	if got := c.Metrics.Count("gm.recoveries"); got == 0 {
		t.Fatal("no survivor adopted the restored state")
	}
	if _, ok := c.Metrics.Histogram("gm.recovery-latency"); !ok {
		t.Fatal("recovery latency not observed")
	}

	// The orphaned LCs must have rejoined a live GM, and that GM's private
	// hub must hold the victim's pre-crash samples — provable only via the
	// snapshot+journal handoff, since per-GM hubs share nothing.
	survivors := map[string]*hierarchy.Manager{}
	for _, m := range c.GroupManagers() {
		if m != victim {
			survivors[string(m.Addr())] = m
		}
	}
	recovered := false
	for _, id := range orphans {
		lc := c.LCs[id]
		adopter, ok := survivors[string(lc.GM())]
		if !ok {
			t.Fatalf("orphan %s not re-assigned to a survivor (gm=%s)", id, lc.GM())
		}
		entity := telemetry.NodeEntity(id)
		preCrash := 0
		adopter.Telemetry().Store().Window(entity, "util", 0, crashAt, func(seg []telemetry.Sample) {
			preCrash += len(seg)
		})
		if preCrash == 0 {
			continue
		}
		b := view.Builder{Hub: adopter.Telemetry()}
		st := b.Stats(c.Kernel.Now(), entity)
		if !st.Fresh {
			t.Fatalf("orphan %s: restored stats not fresh: %+v", id, st)
		}
		recovered = true
	}
	if !recovered {
		t.Fatal("no orphan's pre-crash history survived the handoff")
	}

	// The successor journaled the recovery with its measured latency.
	found := false
	for _, m := range survivors {
		for _, ev := range m.Telemetry().Journal().Replay(0, 0) {
			if ev.Type == telemetry.EventGMRecovered {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no %s event journaled by any survivor", telemetry.EventGMRecovered)
	}

	// Failover must not lose workload.
	c.Settle(30 * time.Second)
	if got := c.RunningVMs(); got != 12 {
		t.Fatalf("running VMs after GM failover: %d", got)
	}
}
