package cluster

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"snooze/internal/consolidation/online"
	"snooze/internal/scheduling"
	"snooze/internal/telemetry"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// These tests exercise the continuous consolidation service end to end: the
// GM-embedded optimizer (internal/consolidation/online) planning from live
// capacity views, executing budgeted migrations through the hierarchy, and
// cancelling plans when the trends they were computed from shift.

// TestOnlineConsolidationImprovesPackingUnderChurn spreads eight VMs over
// eight nodes and lets the online optimizer pack them while their demand
// oscillates (phase-shifted diurnal traces). The packing must improve across
// at least two distinct rounds — the per-round migration budget of 2 makes a
// one-shot collapse impossible — and no round may exceed the budget.
func TestOnlineConsolidationImprovesPackingUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("long convergence test (several simulated consolidation rounds)")
	}
	top := workload.Grid5000Topology(8, 1)
	cfg := DefaultConfig(top, 42)
	// Demand oscillates between 85% and 95% of the reservation with per-VM
	// phase shifts: enough churn that every round re-prices the problem, but
	// a p95 demand (~1.9 CPU) that keeps four VMs per 8-CPU node feasible by
	// demand AND by reservation, so planned migrations are admissible.
	reg := workload.NewRegistry()
	for i := 0; i < 8; i++ {
		reg.Register(fmt.Sprintf("churn%d", i), workload.DiurnalTrace{
			Low: 0.85, High: 0.95, MemFraction: 0.8,
			Period: 20 * time.Minute,
			Phase:  time.Duration(i) * 2 * time.Minute,
		})
	}
	cfg.Hypervisor.Traces = reg
	cfg.Manager.Placement = &scheduling.RoundRobinPlacement{}
	// A packed node peaks at 95% measured utilization; keep overload
	// relocation out of the picture so only the optimizer moves VMs.
	cfg.LC.Thresholds = scheduling.Thresholds{Overload: 0.99, Underload: 0}
	cfg.Manager.Consolidation = online.Config{
		Enabled:         true,
		Period:          2 * time.Minute,
		MigrationBudget: 2,
		Colonies:        2,
	}
	c := New(cfg)
	c.Settle(30 * time.Second)

	var vms []types.VMSpec
	for i := 0; i < 8; i++ {
		s := vmSpec(fmt.Sprintf("v%d", i), 2, 4096)
		s.TraceID = fmt.Sprintf("churn%d", i)
		vms = append(vms, s)
	}
	resp, err := c.SubmitAndWait(vms, 2*time.Minute)
	if err != nil || len(resp.Placed) != 8 {
		t.Fatalf("submit: %+v %v", resp, err)
	}
	c.Settle(10 * time.Second)
	occupiedBefore := occupiedNodes(c)
	if occupiedBefore < 6 {
		t.Fatalf("fixture: round-robin should spread, occupied=%d", occupiedBefore)
	}
	floor := c.Telemetry.Journal().LastSeq()

	c.Settle(12 * time.Minute) // several budgeted rounds

	if rounds := c.Metrics.Count("gm.consolidation-rounds"); rounds < 2 {
		t.Fatalf("gm.consolidation-rounds = %d, want >= 2", rounds)
	}
	if migs := c.Metrics.Count("gm.consolidation-migrations"); migs < 4 {
		t.Fatalf("gm.consolidation-migrations = %d, want >= 4", migs)
	}
	occupiedAfter := occupiedNodes(c)
	if occupiedAfter >= occupiedBefore {
		t.Fatalf("online consolidation did not pack: %d -> %d nodes", occupiedBefore, occupiedAfter)
	}
	// 8 VMs × ~1.9 CPU p95 demand on 8-CPU nodes: 2 nodes suffice.
	if occupiedAfter > 3 {
		t.Fatalf("weak consolidation: still %d nodes", occupiedAfter)
	}

	// The journal must show the same story round by round: nobody exceeded
	// the budget, and the packing improved in at least two distinct rounds.
	improving := 0
	for _, ev := range c.Telemetry.Journal().Replay(floor+1, 0) {
		if ev.Type != telemetry.EventConsolidationRound {
			continue
		}
		executed := atoiAttr(t, ev, "executed")
		if executed > 2 {
			t.Fatalf("round exceeded migration budget: %+v", ev)
		}
		if executed > 0 && atoiAttr(t, ev, "hostsAfter") < atoiAttr(t, ev, "hostsBefore") {
			improving++
		}
	}
	if improving < 2 {
		t.Fatalf("packing improved in %d rounds, want >= 2", improving)
	}
	// No VM lost in the shuffle.
	if c.RunningVMs() != 8 {
		t.Fatalf("running VMs after consolidation: %d", c.RunningVMs())
	}
}

// TestOnlineConsolidationCancelsOnTrendReversal forces the scenario the
// cancellation gates exist for: a plan computed from a still-hot p95 window
// while the actual load has just collapsed. Four VMs run hot long enough to
// dominate the demand window, then drop to near idle; the optimizer is
// started only after the drop, so its first round plans a consolidation from
// the hot p95 but every source's fresh trend is falling — the first migration
// must be cancelled and the plan abandoned, with nothing moved.
func TestOnlineConsolidationCancelsOnTrendReversal(t *testing.T) {
	top := workload.Grid5000Topology(4, 1)
	cfg := DefaultConfig(top, 17)
	reg := workload.NewRegistry()
	reg.Register("fade", workload.OnOffTrace{
		Busy: 0.9, OnFor: 4 * time.Minute, OffFor: 2 * time.Hour, IdleFraction: 0.05,
	})
	cfg.Hypervisor.Traces = reg
	cfg.Manager.Placement = &scheduling.RoundRobinPlacement{}
	cfg.LC.Thresholds = scheduling.Thresholds{Overload: 0.99, Underload: 0}
	// Enabled is off: the test starts the optimizer at a chosen instant via
	// the control surface. The step down from 90% to 5% utilization yields a
	// regression slope around -0.001/s over the 5-minute view window, so the
	// gate is sensitized below that (the -0.002 default targets steeper
	// drains).
	cfg.Manager.Consolidation = online.Config{
		Period:             time.Minute,
		MigrationBudget:    4,
		Colonies:           2,
		SourceFallingTrend: -0.0001,
	}
	c := New(cfg)
	c.Settle(30 * time.Second)

	var vms []types.VMSpec
	for i := 0; i < 4; i++ {
		s := vmSpec(fmt.Sprintf("v%d", i), 2, 4096)
		s.TraceID = "fade"
		vms = append(vms, s)
	}
	resp, err := c.SubmitAndWait(vms, 2*time.Minute)
	if err != nil || len(resp.Placed) != 4 {
		t.Fatalf("submit: %+v %v", resp, err)
	}
	c.Settle(10 * time.Second)
	if occupiedNodes(c) != 4 {
		t.Fatalf("fixture: want 4 occupied nodes, got %d", occupiedNodes(c))
	}

	// Run past the load drop (traces are in absolute simulation time: the
	// drop is at t=4m), then start the optimizer. Its first round fires one
	// period later, while the p95 window still reads hot but the fresh trend
	// is already falling.
	if target := 4*time.Minute + 50*time.Second; c.Kernel.Now() < target {
		c.Settle(target - c.Kernel.Now())
	}
	floor := c.Telemetry.Journal().LastSeq()
	started := 0
	for _, m := range c.GroupManagers() {
		if _, ok := m.StartConsolidation(); ok {
			started++
		}
	}
	if started == 0 {
		t.Fatal("no GM accepted the consolidation start")
	}
	c.Settle(90 * time.Second) // exactly one round

	if cancels := c.Metrics.Count("gm.consolidation-cancels"); cancels < 1 {
		t.Fatalf("gm.consolidation-cancels = %d, want >= 1", cancels)
	}
	if migs := c.Metrics.Count("gm.consolidation-migrations"); migs != 0 {
		t.Fatalf("gm.consolidation-migrations = %d, want 0 (plan must be abandoned)", migs)
	}
	if occupiedNodes(c) != 4 {
		t.Fatalf("cancelled plan still moved VMs: %d occupied nodes", occupiedNodes(c))
	}
	cancelled, planned := 0, 0
	for _, ev := range c.Telemetry.Journal().Replay(floor+1, 0) {
		switch ev.Type {
		case telemetry.EventConsolidationMigration:
			if ev.Attrs.Get("outcome") != "cancelled" || ev.Attrs.Get("reason") != "source-trend-falling" {
				t.Fatalf("unexpected migration event: %+v", ev)
			}
			cancelled++
		case telemetry.EventConsolidationRound:
			planned += atoiAttr(t, ev, "planned")
			if atoiAttr(t, ev, "executed") != 0 {
				t.Fatalf("round executed migrations despite reversal: %+v", ev)
			}
		}
	}
	if cancelled < 1 || planned < 1 {
		t.Fatalf("want a planned migration cancelled in the journal, got planned=%d cancelled=%d", planned, cancelled)
	}
	var status online.Status
	for _, m := range c.GroupManagers() {
		if st, ok := m.ConsolidationStatus(); ok && st.Rounds > 0 {
			status = st
		}
	}
	if status.Cancels < 1 || status.LastRound == nil || status.LastRound.Planned < 1 || status.LastRound.Executed != 0 {
		t.Fatalf("optimizer status does not reflect the cancel: %+v", status)
	}
	if c.RunningVMs() != 4 {
		t.Fatalf("running VMs: %d", c.RunningVMs())
	}
}

func atoiAttr(t *testing.T, ev telemetry.Event, key string) int {
	t.Helper()
	n, err := strconv.Atoi(ev.Attrs.Get(key))
	if err != nil {
		t.Fatalf("event %+v: attr %q: %v", ev, key, err)
	}
	return n
}
