package cluster

import (
	"testing"
	"time"

	"snooze/internal/hierarchy"
	"snooze/internal/workload"
)

func TestAutoRoleGrowsManagerPopulation(t *testing.T) {
	// 32 LCs with only 1 initial GM and a target ratio of 8 LCs/GM: the
	// controller must activate additional managers until ~4 GMs serve the
	// hierarchy (Section V future work).
	top := workload.Grid5000Topology(32, 1)
	cfg := DefaultConfig(top, 51)
	cfg.AutoRole = &hierarchy.AutoRoleConfig{
		TargetRatio: 8,
		Period:      15 * time.Second,
	}
	c := New(cfg)
	c.Settle(5 * time.Minute)

	if c.AutoRole.Spawned() == 0 {
		t.Fatal("autorole never spawned a manager")
	}
	gms := len(c.GroupManagers())
	if gms < 4 {
		t.Fatalf("GMs after reconciliation: %d, want >= 4", gms)
	}
	if c.AutoRole.Reconciliations() == 0 {
		t.Fatal("no reconciliation rounds recorded")
	}
	// The hierarchy still serves submissions with the grown population.
	gen := workload.NewGenerator(1, nil)
	resp, err := c.SubmitAndWait(gen.Batch(10), 2*time.Minute)
	if err != nil || len(resp.Placed) != 10 {
		t.Fatalf("submit with auto-grown hierarchy: %+v %v", resp, err)
	}
}

func TestAutoRoleShrinksWhenLCsVanish(t *testing.T) {
	top := workload.Grid5000Topology(32, 1)
	cfg := DefaultConfig(top, 52)
	cfg.AutoRole = &hierarchy.AutoRoleConfig{
		TargetRatio: 8,
		Period:      15 * time.Second,
	}
	c := New(cfg)
	c.Settle(5 * time.Minute)
	grown := len(c.GroupManagers())
	if grown < 4 {
		t.Fatalf("fixture: only %d GMs", grown)
	}
	// Fail most of the nodes; the ratio collapses and spawned managers
	// must retire.
	i := 0
	for id := range c.Nodes {
		if i >= 28 {
			break
		}
		c.FailNode(id)
		i++
	}
	c.Settle(5 * time.Minute)
	if got := len(c.GroupManagers()); got >= grown {
		t.Fatalf("manager population did not shrink: %d -> %d", grown, got)
	}
}

func TestAutoRoleRespectsMaxManagers(t *testing.T) {
	top := workload.Grid5000Topology(32, 1)
	cfg := DefaultConfig(top, 53)
	cfg.AutoRole = &hierarchy.AutoRoleConfig{
		TargetRatio: 4,
		MaxManagers: 3,
		Period:      15 * time.Second,
	}
	c := New(cfg)
	c.Settle(5 * time.Minute)
	if got := len(c.Managers); got > 3+2 { // initial 2 + at most 1 spawn to reach cap
		t.Fatalf("manager population exceeded cap: %d", got)
	}
	if got := len(c.GroupManagers()); got > 2 { // cap 3 managers = GL + 2 GMs
		t.Fatalf("GMs exceed MaxManagers-1: %d", got)
	}
}

func TestAutoRoleStop(t *testing.T) {
	top := workload.Grid5000Topology(8, 1)
	cfg := DefaultConfig(top, 54)
	cfg.AutoRole = &hierarchy.AutoRoleConfig{TargetRatio: 2, Period: 10 * time.Second}
	c := New(cfg)
	c.Settle(time.Minute)
	c.AutoRole.Stop()
	before := c.AutoRole.Reconciliations()
	c.Settle(2 * time.Minute)
	if c.AutoRole.Reconciliations() != before {
		t.Fatal("reconciliation continued after Stop")
	}
}

func TestRebalanceSpreadsLCsAfterGrowth(t *testing.T) {
	top := workload.Grid5000Topology(32, 1)
	cfg := DefaultConfig(top, 55)
	cfg.AutoRole = &hierarchy.AutoRoleConfig{TargetRatio: 8, Period: 15 * time.Second}
	c := New(cfg)
	c.Settle(8 * time.Minute) // grow + rebalance rounds
	counts := map[string]int{}
	for _, lc := range c.LCs {
		counts[string(lc.GM())]++
	}
	if len(counts) < 3 {
		t.Fatalf("LCs still concentrated: %v", counts)
	}
	for gm, n := range counts {
		if n > 14 {
			t.Fatalf("GM %s still over-subscribed with %d LCs: %v", gm, n, counts)
		}
	}
	if c.Metrics.Count("gl.rebalances") == 0 {
		t.Fatal("no rebalance rounds recorded")
	}
	if c.Metrics.Count("gm.lcs-shed") == 0 {
		t.Fatal("no LCs shed")
	}
}
