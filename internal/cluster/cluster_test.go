package cluster

import (
	"fmt"
	"testing"
	"time"

	"snooze/internal/hierarchy"
	"snooze/internal/types"
	"snooze/internal/workload"
)

func smallCluster(t *testing.T, nodes, gms int, seed int64) *Cluster {
	t.Helper()
	top := workload.Grid5000Topology(nodes, gms)
	c := New(DefaultConfig(top, seed))
	c.Settle(30 * time.Second)
	return c
}

func vmSpec(id string, cpu, mem float64) types.VMSpec {
	return types.VMSpec{ID: types.VMID(id), Requested: types.RV(cpu, mem, 10, 10)}
}

func TestHierarchyFormsOneLeader(t *testing.T) {
	c := smallCluster(t, 8, 2, 1)
	leaders := 0
	for _, m := range c.Managers {
		if m.Role() == hierarchy.RoleGL {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders: %d", leaders)
	}
	if got := len(c.GroupManagers()); got != 2 {
		t.Fatalf("GMs: %d", got)
	}
	// Every LC is assigned to some GM.
	for id, lc := range c.LCs {
		if lc.GM() == "" {
			t.Fatalf("LC %s unassigned", id)
		}
	}
	// The GL knows both GMs.
	if got := c.Leader().GMCount(); got != 2 {
		t.Fatalf("GL sees %d GMs", got)
	}
}

func TestLCsSpreadAcrossGMs(t *testing.T) {
	c := smallCluster(t, 16, 4, 2)
	counts := map[string]int{}
	for _, lc := range c.LCs {
		counts[string(lc.GM())]++
	}
	if len(counts) != 4 {
		t.Fatalf("LCs concentrated on %d GMs: %v", len(counts), counts)
	}
	for gm, n := range counts {
		if n < 2 || n > 6 {
			t.Fatalf("unbalanced assignment %s=%d: %v", gm, n, counts)
		}
	}
}

func TestSubmitPlacesVMs(t *testing.T) {
	c := smallCluster(t, 8, 2, 3)
	var vms []types.VMSpec
	for i := 0; i < 10; i++ {
		vms = append(vms, vmSpec(fmt.Sprintf("v%02d", i), 2, 4096))
	}
	resp, err := c.SubmitAndWait(vms, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Placed) != 10 || len(resp.Unplaced) != 0 {
		t.Fatalf("placed=%d unplaced=%v", len(resp.Placed), resp.Unplaced)
	}
	c.Settle(10 * time.Second) // VM boot delay
	if got := c.RunningVMs(); got != 10 {
		t.Fatalf("running VMs: %d", got)
	}
	// Every placed VM lives on exactly one node. (It need not be the node
	// the GL reported: overload relocation may have rebalanced since.)
	for vm := range resp.Placed {
		hosts := 0
		for _, node := range c.Nodes {
			if node.HasVM(vm) {
				hosts++
			}
		}
		if hosts != 1 {
			t.Fatalf("VM %s on %d nodes", vm, hosts)
		}
	}
}

func TestSubmitRejectsOversized(t *testing.T) {
	c := smallCluster(t, 4, 1, 4)
	resp, err := c.SubmitAndWait([]types.VMSpec{vmSpec("huge", 100, 999999)}, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Placed) != 0 || len(resp.Unplaced) != 1 {
		t.Fatalf("oversized VM outcome: %+v", resp)
	}
}

func TestSubmitFillsCluster(t *testing.T) {
	// 4 nodes × 8 CPU; submit 5 VMs of 8 CPU: exactly 4 place.
	c := smallCluster(t, 4, 1, 5)
	var vms []types.VMSpec
	for i := 0; i < 5; i++ {
		vms = append(vms, vmSpec(fmt.Sprintf("big%d", i), 8, 1024))
	}
	resp, err := c.SubmitAndWait(vms, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Placed) != 4 || len(resp.Unplaced) != 1 {
		t.Fatalf("placed=%d unplaced=%d", len(resp.Placed), len(resp.Unplaced))
	}
}

func TestGLFailover(t *testing.T) {
	c := smallCluster(t, 8, 2, 6)
	old := c.CrashLeader()
	if old == nil {
		t.Fatal("no leader to crash")
	}
	// Election TTL (6s) + heartbeats: settle well past it.
	c.Settle(45 * time.Second)
	nl := c.Leader()
	if nl == nil {
		t.Fatal("no new leader elected")
	}
	if nl == old {
		t.Fatal("crashed leader still leads")
	}
	// The system keeps serving submissions after failover.
	resp, err := c.SubmitAndWait([]types.VMSpec{vmSpec("after-failover", 1, 1024)}, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Placed) != 1 {
		t.Fatalf("post-failover placement: %+v", resp)
	}
}

func TestGMFailureLCsRejoin(t *testing.T) {
	c := smallCluster(t, 8, 2, 7)
	gms := c.GroupManagers()
	victim := gms[0]
	// Count LCs assigned to the victim.
	var orphans []types.NodeID
	for id, lc := range c.LCs {
		if lc.GM() == victim.Addr() {
			orphans = append(orphans, id)
		}
	}
	if len(orphans) == 0 {
		t.Fatal("victim GM manages no LCs; bad fixture")
	}
	victim.Crash()
	// LC GM timeout (10s) + rejoin via GL heartbeat.
	c.Settle(60 * time.Second)
	for _, id := range orphans {
		got := c.LCs[id].GM()
		if got == "" || got == victim.Addr() {
			t.Fatalf("LC %s did not rejoin (gm=%q)", id, got)
		}
	}
	// GL pruned the dead GM.
	if got := c.Leader().GMCount(); got != 1 {
		t.Fatalf("GL sees %d GMs after GM crash", got)
	}
}

func TestLCFailureInvalidated(t *testing.T) {
	top := workload.Grid5000Topology(6, 1)
	cfg := DefaultConfig(top, 8)
	cfg.Manager.RescheduleOnLCFailure = true
	c := New(cfg)
	c.Settle(30 * time.Second)

	resp, err := c.SubmitAndWait([]types.VMSpec{vmSpec("v1", 2, 2048), vmSpec("v2", 2, 2048)}, 2*time.Minute)
	if err != nil || len(resp.Placed) != 2 {
		t.Fatalf("submit: %+v %v", resp, err)
	}
	c.Settle(10 * time.Second)

	// Fail the node hosting v1.
	victim := resp.Placed["v1"]
	c.FailNode(victim)
	c.Settle(90 * time.Second)

	// The VM was rescheduled onto a surviving node (snapshot recovery).
	found := false
	for id, node := range c.Nodes {
		if id == victim {
			continue
		}
		if node.HasVM("v1") {
			found = true
		}
	}
	if !found {
		t.Fatal("v1 not rescheduled after LC failure")
	}
	if c.Metrics.Count("gm.lc-failures") == 0 {
		t.Fatal("LC failure not detected")
	}
}

func TestEnergyIdleSuspend(t *testing.T) {
	top := workload.Grid5000Topology(6, 1)
	cfg := DefaultConfig(top, 9)
	cfg.Manager.EnergyEnabled = true
	cfg.Manager.IdleThreshold = 20 * time.Second
	c := New(cfg)
	c.Settle(2 * time.Minute)

	states := c.PowerStates()
	if states[types.PowerSuspended] == 0 {
		t.Fatalf("no nodes suspended despite idleness: %v", states)
	}
	if c.Metrics.Count("gm.suspends") == 0 {
		t.Fatal("no suspend commands issued")
	}
}

func TestEnergyWakeOnDemand(t *testing.T) {
	top := workload.Grid5000Topology(3, 1)
	cfg := DefaultConfig(top, 10)
	cfg.Manager.EnergyEnabled = true
	cfg.Manager.IdleThreshold = 15 * time.Second
	c := New(cfg)
	c.Settle(2 * time.Minute) // all nodes suspend (no VMs)

	if got := c.PowerStates()[types.PowerSuspended]; got == 0 {
		t.Fatalf("fixture: no suspended nodes: %v", c.PowerStates())
	}
	// Submission must wake capacity and place.
	resp, err := c.SubmitAndWait([]types.VMSpec{vmSpec("wakeup", 2, 2048)}, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Placed) != 1 {
		t.Fatalf("wake-on-demand placement failed: %+v", resp)
	}
	if c.Metrics.Count("gm.wakes") == 0 {
		t.Fatal("no wake commands issued")
	}
	c.Settle(10 * time.Second)
	if c.RunningVMs() != 1 {
		t.Fatalf("running VMs: %d", c.RunningVMs())
	}
}

func TestTopologyExport(t *testing.T) {
	c := smallCluster(t, 8, 2, 11)
	top, err := c.TopologyAndWait(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if top.GL == "" || len(top.GMs) != 2 {
		t.Fatalf("topology: %+v", top)
	}
	totalLCs := 0
	for _, gm := range top.GMs {
		totalLCs += gm.Summary.ActiveLCs + gm.Summary.AsleepLCs
	}
	if totalLCs != 8 {
		t.Fatalf("topology LC count: %d", totalLCs)
	}
	// The export carries the active scheduling configuration (defaults here).
	s := top.Scheduling
	if s.Dispatch != "round-robin" || s.Placement != "first-fit" ||
		s.Overload != "overload-relocation" || s.Underload != "underload-relocation" {
		t.Fatalf("scheduling info: %+v", s)
	}
	if s.ViewHorizonNs <= 0 {
		t.Fatalf("view horizon missing: %+v", s)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (placed int, energy float64) {
		c := smallCluster(t, 8, 2, 42)
		var vms []types.VMSpec
		for i := 0; i < 12; i++ {
			vms = append(vms, vmSpec(fmt.Sprintf("v%02d", i), 2, 2048))
		}
		resp, err := c.SubmitAndWait(vms, 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		c.Settle(time.Minute)
		return len(resp.Placed), c.TotalEnergyJoules()
	}
	p1, e1 := run()
	p2, e2 := run()
	if p1 != p2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%d, %v) vs (%d, %v)", p1, e1, p2, e2)
	}
}

func TestScalesTo144Nodes(t *testing.T) {
	// The paper's testbed scale: 144 LCs, 12 GMs, 100 VMs (500 in the
	// bench; kept smaller here for test runtime).
	c := smallCluster(t, 144, 12, 12)
	gen := workload.NewGenerator(12, nil)
	resp, err := c.SubmitAndWait(gen.Batch(100), 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Placed) != 100 {
		t.Fatalf("placed %d/100 (unplaced: %d)", len(resp.Placed), len(resp.Unplaced))
	}
}
