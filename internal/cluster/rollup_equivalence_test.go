package cluster

import (
	"testing"
	"time"

	"snooze/internal/types"
	"snooze/internal/workload"
)

// TestRollupEquivalentPlacements pins the GM rollup series' contract: the
// rollup is an observability substitution — the GL reads one gm/<id> series
// per group instead of N per-node views — and must not perturb scheduling.
// Two identically-seeded clusters, one with rollups on (the default) and one
// with rollups disabled, must dispatch an identical workload to identical
// nodes, in both the sequential and the batched dispatch paths.
func TestRollupEquivalentPlacements(t *testing.T) {
	run := func(t *testing.T, rollup time.Duration, batch int) (map[types.VMID]types.NodeID, []types.VMID, int64) {
		t.Helper()
		cfg := DefaultConfig(workload.Grid5000Topology(48, 4), 7)
		cfg.Manager.RollupInterval = rollup
		cfg.Manager.DispatchBatch = batch
		c := New(cfg)
		c.Settle(30 * time.Second)
		gen := workload.NewGenerator(7, nil)
		resp, err := c.SubmitAndWait(gen.Batch(60), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Placed, resp.Unplaced, c.Metrics.Count("gm.rollups")
	}

	for _, tc := range []struct {
		name  string
		batch int
	}{
		{"sequential", 1},
		{"batched", 32},
	} {
		t.Run(tc.name, func(t *testing.T) {
			withPlaced, withUnplaced, withRollups := run(t, 0, tc.batch) // 0 = default: on
			offPlaced, offUnplaced, offRollups := run(t, -1, tc.batch)   // negative disables

			// The comparison is only meaningful if the two runs actually took
			// different telemetry paths.
			if withRollups == 0 {
				t.Fatal("fixture: rollup run recorded no gm.rollups")
			}
			if offRollups != 0 {
				t.Fatalf("fixture: rollup-disabled run recorded %d gm.rollups", offRollups)
			}

			if len(withPlaced) != len(offPlaced) || len(withUnplaced) != len(offUnplaced) {
				t.Fatalf("placement outcome diverged: rollup %d placed / %d unplaced, per-node %d / %d",
					len(withPlaced), len(withUnplaced), len(offPlaced), len(offUnplaced))
			}
			for vm, node := range withPlaced {
				if got, ok := offPlaced[vm]; !ok || got != node {
					t.Fatalf("VM %s: rollup run placed on %q, per-node run on %q", vm, node, got)
				}
			}
		})
	}
}
