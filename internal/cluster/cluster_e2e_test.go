package cluster

import (
	"fmt"
	"testing"
	"time"

	"snooze/internal/consolidation"
	"snooze/internal/protocol"
	"snooze/internal/scheduling"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// These tests exercise whole-system behaviours that combine several
// subsystems: periodic reconfiguration driving live migrations, robustness
// to message loss, and the energy manager's wake paths.

func TestReconfigurationConsolidatesLiveCluster(t *testing.T) {
	top := workload.Grid5000Topology(8, 1)
	cfg := DefaultConfig(top, 21)
	// Spread placement, then let periodic ACO reconfiguration pack it. VMs
	// demand 50% of their reservation so a fully packed node sits at 50%
	// measured utilization — consolidation and overload protection must not
	// fight (packing to 100% measured WOULD re-trigger overload relocation,
	// by design).
	reg := workload.NewRegistry()
	reg.Register("half", workload.FlatTrace{Fraction: 0.5})
	cfg.Hypervisor.Traces = reg
	cfg.Manager.Placement = &scheduling.RoundRobinPlacement{}
	cfg.LC.Thresholds = scheduling.Thresholds{Overload: 0.95, Underload: 0} // isolate reconfig
	cfg.Manager.Reconfig = consolidation.ACO{Config: consolidation.DefaultACOConfig()}
	cfg.Manager.ReconfigPeriod = 2 * time.Minute
	c := New(cfg)
	c.Settle(30 * time.Second)

	var vms []types.VMSpec
	for i := 0; i < 8; i++ {
		s := vmSpec(fmt.Sprintf("v%d", i), 2, 4096)
		s.TraceID = "half"
		vms = append(vms, s)
	}
	resp, err := c.SubmitAndWait(vms, 2*time.Minute)
	if err != nil || len(resp.Placed) != 8 {
		t.Fatalf("submit: %+v %v", resp, err)
	}
	c.Settle(10 * time.Second)
	occupiedBefore := occupiedNodes(c)
	if occupiedBefore < 6 {
		t.Fatalf("fixture: round-robin should spread, occupied=%d", occupiedBefore)
	}

	c.Settle(10 * time.Minute) // several reconfiguration rounds
	occupiedAfter := occupiedNodes(c)
	if occupiedAfter >= occupiedBefore {
		t.Fatalf("reconfiguration did not consolidate: %d -> %d nodes", occupiedBefore, occupiedAfter)
	}
	// 8 VMs × (2 CPU, 4096 MB) on 8-CPU/32-GB nodes: 2 nodes suffice.
	if occupiedAfter > 3 {
		t.Fatalf("weak consolidation: still %d nodes", occupiedAfter)
	}
	if c.Metrics.Count("gm.reconfig-migrations") == 0 {
		t.Fatal("no reconfiguration migrations recorded")
	}
	// No VM lost in the shuffle.
	if c.RunningVMs() != 8 {
		t.Fatalf("running VMs after reconfiguration: %d", c.RunningVMs())
	}
}

func occupiedNodes(c *Cluster) int {
	n := 0
	for _, node := range c.Nodes {
		if len(node.Status().VMs) > 0 {
			n++
		}
	}
	return n
}

func TestHierarchySurvivesMessageLoss(t *testing.T) {
	c := smallCluster(t, 8, 2, 31)
	// 20% uniform message loss: heartbeats and monitors are periodic, so
	// the hierarchy must stay formed (no false failure cascades).
	c.Bus.SetDropProbability(0.2)
	c.Settle(2 * time.Minute)
	if c.Leader() == nil {
		t.Fatal("lost the leader under 20% message loss")
	}
	assigned := 0
	for _, lc := range c.LCs {
		if lc.GM() != "" {
			assigned++
		}
	}
	if assigned < 6 {
		t.Fatalf("only %d/8 LCs assigned under loss", assigned)
	}
	c.Bus.SetDropProbability(0)
	c.Settle(time.Minute)
	resp, err := c.SubmitAndWait([]types.VMSpec{vmSpec("after-loss", 1, 1024)}, 4*time.Minute)
	if err != nil || len(resp.Placed) != 1 {
		t.Fatalf("submit after loss healed: %+v %v", resp, err)
	}
}

func TestWakeOnOverload(t *testing.T) {
	top := workload.Grid5000Topology(3, 1)
	cfg := DefaultConfig(top, 33)
	reg := workload.NewRegistry()
	// Quiet at first, then permanently hot: overload begins mid-run.
	reg.Register("hot-later", workload.OnOffTrace{
		Busy: 0.2, OnFor: 4 * time.Minute, OffFor: time.Hour, IdleFraction: 1.0,
	})
	cfg.Hypervisor.Traces = reg
	cfg.Manager.EnergyEnabled = true
	cfg.Manager.IdleThreshold = 30 * time.Second
	th := scheduling.Thresholds{Overload: 0.8, Underload: 0}
	cfg.LC.Thresholds = th
	cfg.Manager.Overload = scheduling.OverloadRelocation{Thresholds: th}
	c := New(cfg)
	c.Settle(20 * time.Second)

	// Fill one node to its reservation limit; the other two stay idle and
	// get suspended.
	var vms []types.VMSpec
	for i := 0; i < 4; i++ {
		s := vmSpec(fmt.Sprintf("v%d", i), 2, 2048)
		s.TraceID = "hot-later"
		vms = append(vms, s)
	}
	resp, err := c.SubmitAndWait(vms, 2*time.Minute)
	if err != nil || len(resp.Placed) != 4 {
		t.Fatalf("submit: %+v %v", resp, err)
	}
	c.Settle(90 * time.Second) // idle nodes suspend during the quiet phase
	if got := c.PowerStates()[types.PowerSuspended]; got == 0 {
		t.Fatalf("fixture: no nodes suspended: %v", c.PowerStates())
	}
	// The hot phase (all 4 VMs at 100% of reservation = 8/8 CPU) overloads
	// the host; the GM has no active receiver, so it must wake one.
	c.Settle(10 * time.Minute)
	if c.Metrics.Count("gm.wakes") == 0 {
		t.Fatal("overload with sleeping capacity did not trigger a wake")
	}
}

func TestPendingPlacementExpires(t *testing.T) {
	top := workload.Grid5000Topology(2, 1)
	cfg := DefaultConfig(top, 34)
	cfg.Manager.EnergyEnabled = true
	cfg.Manager.IdleThreshold = 15 * time.Second
	cfg.Manager.PendingTimeout = 20 * time.Second
	c := New(cfg)
	c.Settle(90 * time.Second) // both nodes suspend

	// Fail the nodes while suspended: wakes will never complete, so the
	// queued placement must expire and be reported unplaced.
	for id := range c.Nodes {
		c.FailNode(id)
	}
	resp, err := c.SubmitAndWait([]types.VMSpec{vmSpec("doomed", 1, 1024)}, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Unplaced) != 1 {
		t.Fatalf("expected expiry → unplaced, got %+v", resp)
	}
}

func TestClusterMeterPeriodZeroDisables(t *testing.T) {
	top := workload.Grid5000Topology(2, 1)
	cfg := DefaultConfig(top, 35)
	cfg.MeterPeriod = 0
	c := New(cfg)
	c.Settle(time.Minute)
	// Energy is still computable on demand (TotalEnergyJoules samples).
	if c.TotalEnergyJoules() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestDeepTopologyExport(t *testing.T) {
	c := smallCluster(t, 6, 2, 61)
	resp, err := c.SubmitAndWait([]types.VMSpec{vmSpec("tv", 2, 2048)}, 2*time.Minute)
	if err != nil || len(resp.Placed) != 1 {
		t.Fatalf("submit: %+v %v", resp, err)
	}
	c.Settle(10 * time.Second)

	var topo protocol.TopologyResponse
	var terr error
	done := false
	c.Client.TopologyDeep(func(r protocol.TopologyResponse, err error) { topo, terr, done = r, err, true })
	deadline := c.Kernel.Now() + time.Minute
	for !done && c.Kernel.Now() < deadline {
		if !c.Kernel.Step() {
			break
		}
	}
	if !done || terr != nil {
		t.Fatalf("deep topology: done=%v err=%v", done, terr)
	}
	totalLCs, totalVMs := 0, 0
	for _, gm := range topo.GMs {
		totalLCs += len(gm.LCs)
		for _, lc := range gm.LCs {
			totalVMs += lc.VMs
			if lc.Capacity.Zero() {
				t.Fatalf("LC %s missing capacity", lc.ID)
			}
		}
	}
	if totalLCs != 6 {
		t.Fatalf("deep export LCs: %d", totalLCs)
	}
	if totalVMs != 1 {
		t.Fatalf("deep export VMs: %d", totalVMs)
	}
}

// TestVMLivenessSweepReapsSilentlyVanishedVM proves the deployment-level
// liveness sweep end to end: a VM killed directly on the hypervisor — behind
// the hierarchy's back, so no terminal vm.state event is ever emitted (the
// migration-race / crash-mid-handoff signature) — must be reaped: the GM
// journals a synthetic terminal vm.state "vanished" event and the VM's
// telemetry series are dropped, while its still-running sibling is left
// untouched.
func TestVMLivenessSweepReapsSilentlyVanishedVM(t *testing.T) {
	top := workload.Grid5000Topology(3, 1)
	cfg := DefaultConfig(top, 11)
	cfg.Manager.VMLivenessGrace = 30 * time.Second
	c := New(cfg)
	c.Settle(30 * time.Second)

	resp, err := c.SubmitAndWait([]types.VMSpec{
		vmSpec("victim", 1, 2048),
		vmSpec("survivor", 1, 2048),
	}, 2*time.Minute)
	if err != nil || len(resp.Placed) != 2 {
		t.Fatalf("submit: %+v %v", resp, err)
	}
	// Let monitoring build per-VM series for both.
	c.Settle(30 * time.Second)
	store := c.Telemetry.Store()
	if store.Len("vm/victim", "cpu.used") == 0 || store.Len("vm/survivor", "cpu.used") == 0 {
		t.Fatal("fixture: per-VM series not recorded")
	}

	// Kill the victim straight on its hypervisor: the LC's next monitor
	// report simply stops listing it — no vm.state event anywhere.
	sweepFloor := c.Telemetry.Journal().LastSeq()
	node := resp.Placed["victim"]
	if err := c.Nodes[node].StopVM("victim"); err != nil {
		t.Fatalf("silent stop: %v", err)
	}

	// One grace period plus monitoring slack: the inventory shrink arms the
	// sweep, staleness ripens, the sweep reaps.
	c.Settle(cfg.Manager.VMLivenessGrace + 15*time.Second)

	if n := store.Len("vm/victim", "cpu.used"); n != 0 {
		t.Fatalf("victim series survived the sweep: %d samples", n)
	}
	if store.Len("vm/survivor", "cpu.used") == 0 {
		t.Fatal("survivor series was reaped")
	}
	var vanished int
	for _, ev := range c.Telemetry.Journal().Replay(sweepFloor+1, 0) {
		if ev.Type == "vm.state" && ev.Entity == "vm/victim" {
			if ev.Attrs.Get("state") != "vanished" || ev.Attrs.Get("reason") != "liveness-sweep" {
				t.Fatalf("unexpected terminal event: %+v", ev)
			}
			vanished++
		}
		if ev.Type == "vm.state" && ev.Entity == "vm/survivor" && ev.Attrs.Get("state") == "vanished" {
			t.Fatalf("survivor falsely reaped: %+v", ev)
		}
	}
	if vanished != 1 {
		t.Fatalf("want exactly one synthetic vanished event, got %d", vanished)
	}
	if n := c.Metrics.Count("gm.vms-vanished"); n != 1 {
		t.Fatalf("gm.vms-vanished = %d", n)
	}
}
