package hierarchy

import (
	"fmt"
	"sync"
	"time"

	"snooze/internal/protocol"
	"snooze/internal/simkernel"
	"snooze/internal/transport"
)

// AutoRole implements the paper's first future-work item (Section V): "we
// plan to make the system even more autonomic by removing the distinction
// between GMs and LCs. Consequently, the decisions when a node should play
// the role of GM or LC in the hierarchy will be taken by the framework
// instead of the system administrator upon configuration."
//
// AutoRole observes the hierarchy (GL heartbeats + topology queries) and
// keeps the manager population proportional to the LC population: when the
// LC-per-GM ratio exceeds the target it spawns additional manager processes
// through the injected factory (in a deployment: activating the manager
// binary on a node currently acting only as LC); when the hierarchy shrinks
// it gracefully retires managers it previously spawned.
type AutoRoleConfig struct {
	// TargetRatio is the desired number of LCs per GM (default 16).
	TargetRatio int
	// MinManagers is the managers floor, GL included (default 2: a GL and
	// one GM — the smallest serving hierarchy).
	MinManagers int
	// MaxManagers caps the population (0 = unlimited).
	MaxManagers int
	// Period is the reconciliation interval (default 30s).
	Period time.Duration
	// CallTimeout bounds topology queries.
	CallTimeout time.Duration
}

// ManagerFactory creates (and starts) a new manager process with the given
// index; the cluster glue co-locates it with spare node capacity.
type ManagerFactory func(index int) (*Manager, error)

// AutoRole is the reconciliation controller.
type AutoRole struct {
	rt    simkernel.Runtime
	bus   *transport.Bus
	cfg   AutoRoleConfig
	spawn ManagerFactory
	addr  transport.Address

	mu       sync.Mutex
	glAddr   transport.Address
	epoch    uint64
	spawned  []*Manager
	next     int
	ticker   *simkernel.Ticker
	stopped  bool
	reconcls uint64
}

// NewAutoRole creates the controller; call Start to begin reconciling.
func NewAutoRole(rt simkernel.Runtime, bus *transport.Bus, addr transport.Address, spawn ManagerFactory, cfg AutoRoleConfig) *AutoRole {
	if cfg.TargetRatio <= 0 {
		cfg.TargetRatio = 16
	}
	if cfg.MinManagers < 2 {
		cfg.MinManagers = 2
	}
	if cfg.Period <= 0 {
		cfg.Period = 30 * time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	return &AutoRole{rt: rt, bus: bus, cfg: cfg, spawn: spawn, addr: addr}
}

// Start subscribes to GL heartbeats and arms the reconciliation ticker.
func (a *AutoRole) Start() {
	a.bus.Register(a.addr, a.handle)
	a.bus.JoinGroup(protocol.GroupGL, a.addr)
	a.ticker = simkernel.NewTicker(a.rt, a.cfg.Period, a.reconcile)
	a.ticker.Start()
}

// Stop halts reconciliation (spawned managers keep running).
func (a *AutoRole) Stop() {
	a.mu.Lock()
	a.stopped = true
	a.mu.Unlock()
	if a.ticker != nil {
		a.ticker.Stop()
	}
	a.bus.LeaveGroup(protocol.GroupGL, a.addr)
	a.bus.Unregister(a.addr)
}

// Spawned returns the number of managers this controller has added.
func (a *AutoRole) Spawned() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.spawned)
}

// Reconciliations returns how many reconcile rounds have run.
func (a *AutoRole) Reconciliations() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reconcls
}

func (a *AutoRole) handle(req *transport.Request) {
	if req.Kind != protocol.KindGLHeartbeat {
		return
	}
	hb, ok := req.Payload.(protocol.GLHeartbeat)
	if !ok {
		return
	}
	a.mu.Lock()
	if hb.Epoch >= a.epoch {
		a.glAddr = transport.Address(hb.Addr)
		a.epoch = hb.Epoch
	}
	a.mu.Unlock()
}

// reconcile queries the GL's topology and adjusts the manager population.
func (a *AutoRole) reconcile() {
	a.mu.Lock()
	gl := a.glAddr
	stopped := a.stopped
	a.mu.Unlock()
	if stopped || gl == "" {
		return
	}
	a.bus.Call(a.addr, gl, protocol.KindTopology, struct{}{}, a.cfg.CallTimeout,
		func(reply any, err error) {
			if err != nil {
				return
			}
			topo, ok := reply.(protocol.TopologyResponse)
			if !ok {
				return
			}
			a.adjust(topo)
		})
}

func (a *AutoRole) adjust(topo protocol.TopologyResponse) {
	lcs := 0
	for _, gm := range topo.GMs {
		lcs += gm.Summary.ActiveLCs + gm.Summary.AsleepLCs
	}
	managersAlive := len(topo.GMs) + 1 // + the GL itself
	want := lcs/a.cfg.TargetRatio + 1  // GMs needed for the ratio
	if lcs%a.cfg.TargetRatio != 0 {
		want++
	}
	if want < a.cfg.MinManagers {
		want = a.cfg.MinManagers
	}
	if a.cfg.MaxManagers > 0 && want > a.cfg.MaxManagers {
		want = a.cfg.MaxManagers
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopped {
		return
	}
	a.reconcls++
	switch {
	case managersAlive < want:
		// Grow: activate manager roles until the ratio is met.
		for i := managersAlive; i < want; i++ {
			m, err := a.spawn(a.next)
			a.next++
			if err != nil || m == nil {
				return
			}
			a.spawned = append(a.spawned, m)
		}
	case managersAlive > want && len(a.spawned) > 0:
		// Shrink: retire the most recently spawned manager gracefully (its
		// LCs rejoin through the GL; the election handles a retiring GL).
		excess := managersAlive - want
		for excess > 0 && len(a.spawned) > 0 {
			m := a.spawned[len(a.spawned)-1]
			a.spawned = a.spawned[:len(a.spawned)-1]
			a.rt.After(0, m.Stop)
			excess--
		}
	}
}

// AutoManagerID names managers created by AutoRole.
func AutoManagerID(index int) string { return fmt.Sprintf("gm-auto-%02d", index) }
