package hierarchy

import (
	"math"
	"testing"
	"time"

	"snooze/internal/protocol"
	"snooze/internal/types"
)

// Reconfiguration must pack against residual capacity: reservations held by
// VMs that are NOT part of the re-packed set (suspended, starting, failed —
// anything non-running) stay subtracted from their node's capacity, so a
// plan can never double-book a slot a resident VM still owns.
func TestBuildReconfigProblemResidualCapacity(t *testing.T) {
	cap := types.RV(8, 32768, 1000, 1000)
	running := types.VMStatus{
		Spec:  types.VMSpec{ID: "run", Requested: types.RV(2, 4096, 10, 10)},
		State: types.VMRunning,
		Node:  "n1",
	}
	suspended := types.VMStatus{
		Spec:  types.VMSpec{ID: "susp", Requested: types.RV(4, 8192, 10, 10)},
		State: types.VMSuspended,
		Node:  "n1",
	}
	inputs := []reconfigNodeInput{{
		Status: types.NodeStatus{
			Spec: types.NodeSpec{ID: "n1", Capacity: cap},
			// Reserved covers BOTH resident VMs.
			Reserved: running.Spec.Requested.Add(suspended.Spec.Requested),
		},
		VMs: []types.VMStatus{running, suspended},
	}}
	estimate := func(vm types.VMStatus) types.ResourceVector { return vm.Spec.Requested }
	problem, current, specs := buildReconfigProblem(inputs, estimate)

	// Only the running VM is re-packed.
	if len(problem.VMs) != 1 || problem.VMs[0].ID != "run" {
		t.Fatalf("repacked VMs: %+v", problem.VMs)
	}
	if current["run"] != "n1" || len(current) != 1 {
		t.Fatalf("current placement: %+v", current)
	}
	if _, ok := specs["susp"]; ok {
		t.Fatal("suspended VM leaked into the spec map")
	}
	// The suspended VM's reservation must be carved out of node capacity.
	want := cap.Sub(suspended.Spec.Requested)
	if got := problem.Nodes[0].Capacity; got != want {
		t.Fatalf("residual capacity: got %v want %v", got, want)
	}
	// A plan filling the residual capacity exactly must not conflict with
	// the resident: residual + resident reservation == full capacity.
	if total := problem.Nodes[0].Capacity.Add(suspended.Spec.Requested); total != cap {
		t.Fatalf("resident conflict: %v + %v != %v", problem.Nodes[0].Capacity, suspended.Spec.Requested, cap)
	}
}

// The re-packed VM must be priced at max(reservation, estimated demand) so a
// hot VM is never squeezed into a slot its measured demand has outgrown.
func TestBuildReconfigProblemUsesDemandEstimate(t *testing.T) {
	cap := types.RV(8, 32768, 1000, 1000)
	vm := types.VMStatus{
		Spec:  types.VMSpec{ID: "hot", Requested: types.RV(1, 2048, 10, 10)},
		State: types.VMRunning,
		Node:  "n1",
	}
	est := types.RV(3, 1024, 10, 10) // CPU demand outgrew the reservation
	inputs := []reconfigNodeInput{{
		Status: types.NodeStatus{Spec: types.NodeSpec{ID: "n1", Capacity: cap}, Reserved: vm.Spec.Requested},
		VMs:    []types.VMStatus{vm},
	}}
	problem, _, specs := buildReconfigProblem(inputs, func(types.VMStatus) types.ResourceVector { return est })
	want := vm.Spec.Requested.Max(est) // component-wise: cpu from est, mem from reservation
	if got := problem.VMs[0].Requested; got != want {
		t.Fatalf("sizing: got %v want %v", got, want)
	}
	if got := specs["hot"].Requested; got != want {
		t.Fatalf("spec map sizing: got %v want %v", got, want)
	}
}

func TestValidMonitorReport(t *testing.T) {
	now := 100 * time.Second
	good := protocol.MonitorReport{
		Status: types.NodeStatus{Used: types.RV(1, 1024, 5, 5)},
		VMs:    []types.VMStatus{{Used: types.RV(0.5, 512, 1, 1)}},
		AtNs:   int64(90 * time.Second),
	}
	if !validMonitorReport(good, now) {
		t.Fatal("valid report rejected")
	}
	unstamped := good
	unstamped.AtNs = 0
	if !validMonitorReport(unstamped, now) {
		t.Fatal("unstamped report rejected (must stay accepted for compatibility)")
	}
	nan := good
	nan.Status.Used = types.RV(math.NaN(), 1024, 5, 5)
	if validMonitorReport(nan, now) {
		t.Fatal("NaN node usage accepted")
	}
	neg := good
	neg.VMs = []types.VMStatus{{Used: types.RV(-1, 512, 1, 1)}}
	if validMonitorReport(neg, now) {
		t.Fatal("negative VM usage accepted")
	}
	future := good
	future.AtNs = int64(now + time.Hour)
	if validMonitorReport(future, now) {
		t.Fatal("future-stamped report accepted")
	}
}

// Retry backoff must be deterministic (same VM + attempt → same delay) and
// bounded: attempt n waits base·2^(n-2) plus at most one extra base of
// jitter, so the schedule is reproducible in the simulator and never
// degenerates into a synchronized thundering herd across VMs.
func TestMigrationDelayDeterministicAndBounded(t *testing.T) {
	base := 500 * time.Millisecond
	for attempt := 2; attempt <= 4; attempt++ {
		d1 := migrationDelay(base, "vm-a", attempt)
		d2 := migrationDelay(base, "vm-a", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d not deterministic: %v vs %v", attempt, d1, d2)
		}
		lo := base << uint(attempt-2)
		if d1 < lo || d1 >= lo+base {
			t.Fatalf("attempt %d delay %v outside [%v, %v)", attempt, d1, lo, lo+base)
		}
	}
	if migrationDelay(base, "vm-a", 2) == migrationDelay(base, "vm-b", 2) {
		t.Fatal("jitter does not separate VMs (hash collision in fixture is astronomically unlikely)")
	}
}
