package hierarchy

import (
	"sort"
	"strconv"
	"time"

	"snooze/internal/protocol"
	"snooze/internal/telemetry"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// This file implements GM state replication and failover recovery
// (self-healing extended from membership to telemetry state, Section II-E):
// GMs periodically push snapshots of their owned telemetry plus incremental
// journal segments to the GL, which archives them per GM. Two recovery paths
// share the archive:
//
//   - A manager (re)entering the GM role fetches its own archive during its
//     bootstrap phase (KindRecoveryFetch) — the restart/re-election case.
//   - When the GL's sweep declares a GM dead, it pushes the dead GM's
//     archive at the survivors (KindStateRestore); the orphaned LCs rejoin
//     those GMs, whose first scheduling decisions then run on restored
//     windowed statistics (Fresh capacity views) instead of waiting out the
//     freshness gate on an empty store.
//
// Restores merge: fresher local series win, owner stamps are only adopted
// where absent and journal imports are idempotent, so re-deliveries and
// shared-hub deployments (where a GM crash loses nothing) are no-ops.

// maxSyncEvents bounds the journal segment carried by one state-sync push
// and the events accumulated per archive; the journal's own ring bounds
// total retention anyway.
const maxSyncEvents = 4096

// defaultStateSyncPeriod is the automatic replication cadence on private
// hubs (StateSyncPeriod == 0).
const defaultStateSyncPeriod = 8 * time.Second

// stateSyncPeriod resolves ManagerConfig.StateSyncPeriod: an explicit value
// wins, 0 means automatic — replicate on a private hub (a crash there loses
// the hub), stay quiet on a shared one (the successor reads the same store,
// so replication would only burn snapshot copies).
func (m *Manager) stateSyncPeriod() time.Duration {
	if m.cfg.StateSyncPeriod != 0 {
		return m.cfg.StateSyncPeriod
	}
	if m.privateHub {
		return defaultStateSyncPeriod
	}
	return -1
}

// gmArchive is the GL's copy of one GM's replicated state.
type gmArchive struct {
	snapshot telemetry.HubSnapshot
	events   []telemetry.Event
	lastSeq  uint64 // highest event Seq accumulated
}

// syncHorizonFactor scales the view horizon into the history window a
// state-sync snapshot carries: twice the statistics window keeps a restored
// view's percentiles and demand estimates intact with margin for sync lag,
// while bounding the per-tick copy to a fraction of the raw ring.
const syncHorizonFactor = 2

// gmStateSyncTick pushes this GM's owned telemetry state to the GL: a
// horizon-bounded snapshot cut now, plus the journal events published since
// the previous push (the incremental segment the GL accumulates between
// snapshots). The snapshot is trimmed to the recent window capacity views
// consume (SnapshotSince) — replicating the full retention ladder every tick
// would cost far more than warm failover is worth.
func (m *Manager) gmStateSyncTick() {
	m.mu.Lock()
	if m.role != RoleGM || m.stopped || m.glAddr == "" {
		m.mu.Unlock()
		return
	}
	gl := m.glAddr
	since := m.lastSyncSeq
	m.mu.Unlock()

	now := m.rt.Now()
	from := now - syncHorizonFactor*m.cfg.ViewHorizon
	if from < 0 {
		from = 0
	}
	snap := m.tel.SnapshotSince(now, string(m.cfg.ID), from)
	events := m.tel.Journal().Replay(since+1, maxSyncEvents)
	m.mu.Lock()
	if snap.BaseSeq > m.lastSyncSeq {
		m.lastSyncSeq = snap.BaseSeq
	}
	m.mu.Unlock()
	m.mark("gm.state-syncs", 1)
	_ = m.bus.Send(m.cfg.Addr, gl, protocol.KindStateSync, protocol.StateSync{
		GM:       m.cfg.ID,
		Addr:     string(m.cfg.Addr),
		Snapshot: snap,
		SinceSeq: since,
		Events:   events,
	})
}

// glOnStateSync archives a GM's replication push: the latest snapshot
// replaces the previous one, the event segment is deduplicated by sequence
// and appended (bounded at maxSyncEvents, oldest dropped).
func (m *Manager) glOnStateSync(req *transport.Request) {
	sync, ok := req.Payload.(protocol.StateSync)
	if !ok || sync.GM == "" {
		return
	}
	m.mu.Lock()
	active := m.role == RoleGL && !m.stopped
	m.mu.Unlock()
	if !active {
		return
	}
	m.archMu.Lock()
	arch, ok := m.archives[sync.GM]
	if !ok {
		arch = &gmArchive{}
		m.archives[sync.GM] = arch
	}
	arch.snapshot = sync.Snapshot
	for _, ev := range sync.Events {
		if ev.Seq <= arch.lastSeq {
			continue
		}
		arch.events = append(arch.events, ev)
		arch.lastSeq = ev.Seq
	}
	if n := len(arch.events); n > maxSyncEvents {
		arch.events = append(arch.events[:0:0], arch.events[n-maxSyncEvents:]...)
	}
	m.archMu.Unlock()
	m.mark("gl.state-syncs", 1)
}

// glOnRecoveryFetch serves a GM's bootstrap request for its archived state.
func (m *Manager) glOnRecoveryFetch(req *transport.Request) {
	fetch, ok := req.Payload.(protocol.RecoveryFetchRequest)
	if !ok {
		req.RespondErr(errBadPayload)
		return
	}
	m.mu.Lock()
	active := m.role == RoleGL && !m.stopped
	m.mu.Unlock()
	if !active {
		req.Respond(protocol.RecoveryFetchResponse{})
		return
	}
	var resp protocol.RecoveryFetchResponse
	m.archMu.Lock()
	if arch, ok := m.archives[fetch.GM]; ok {
		resp = protocol.RecoveryFetchResponse{
			Found:    true,
			Snapshot: arch.snapshot,
			Events:   append([]telemetry.Event(nil), arch.events...),
		}
	}
	m.archMu.Unlock()
	if resp.Found {
		m.mark("gl.recovery-fetches", 1)
	}
	req.Respond(resp)
}

// glPushArchives hands the failed GMs' archived state to every surviving GM
// (called from the sweep after the failures were journaled). Each survivor
// merges the archive into its hub; on per-process hubs this is what keeps
// percentile gating alive across the handoff, because the orphaned LCs spread
// over several successors and the GL cannot know which one adopts which LC.
// The archive itself is retained for a later RecoveryFetch (GM restart).
func (m *Manager) glPushArchives(failed []types.GroupManagerID) {
	m.mu.Lock()
	if m.role != RoleGL || m.stopped {
		m.mu.Unlock()
		return
	}
	addrs := make([]transport.Address, 0, len(m.gms))
	for _, gm := range m.gms {
		addrs = append(addrs, gm.addr)
	}
	now := m.rt.Now()
	m.mu.Unlock()
	if len(addrs) == 0 {
		return
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, id := range failed {
		m.archMu.Lock()
		arch, ok := m.archives[id]
		var push protocol.StateRestore
		if ok {
			push = protocol.StateRestore{
				FailedGM:   id,
				Snapshot:   arch.snapshot,
				Events:     append([]telemetry.Event(nil), arch.events...),
				FailedAtNs: int64(now),
			}
		}
		m.archMu.Unlock()
		if !ok {
			continue
		}
		m.mark("gl.state-restores", 1)
		for _, addr := range addrs {
			_ = m.bus.Send(m.cfg.Addr, addr, protocol.KindStateRestore, push)
		}
	}
}

// gmOnStateRestore adopts a failed GM's archived telemetry pushed by the GL.
func (m *Manager) gmOnStateRestore(req *transport.Request) {
	push, ok := req.Payload.(protocol.StateRestore)
	if !ok {
		return
	}
	m.mu.Lock()
	active := m.role == RoleGM && !m.stopped
	m.mu.Unlock()
	if !active {
		return
	}
	latency := m.rt.Now() - time.Duration(push.FailedAtNs)
	m.restoreState(string(push.FailedGM), push.Snapshot, push.Events, latency)
}

// gmRecoverState is the GM bootstrap phase: fetch this GM's archived state
// from the GL and rebuild the hub as snapshot + journal tail. started is the
// stint's start instant, so the journaled recovery latency measures bootstrap
// start → restore completion.
func (m *Manager) gmRecoverState(started time.Duration) {
	m.mu.Lock()
	gl := m.glAddr
	active := m.role == RoleGM && !m.stopped
	m.mu.Unlock()
	if !active || gl == "" {
		return
	}
	fetch := protocol.RecoveryFetchRequest{GM: m.cfg.ID}
	m.bus.Call(m.cfg.Addr, gl, protocol.KindRecoveryFetch, fetch, m.cfg.CallTimeout, func(reply any, err error) {
		if err != nil {
			return // a fresh GL has no archive; state-sync pushes rebuild it
		}
		resp, ok := reply.(protocol.RecoveryFetchResponse)
		if !ok || !resp.Found {
			return
		}
		m.mu.Lock()
		active := m.role == RoleGM && !m.stopped
		m.mu.Unlock()
		if !active {
			return
		}
		m.restoreState(string(m.cfg.ID), resp.Snapshot, resp.Events, m.rt.Now()-started)
	})
}

// restoreState merges a replicated snapshot + journal tail into this
// manager's hub, re-arms the machinery that consumes the restored series
// (view memo, liveness sweep; detector state travels in the snapshot) and
// journals the recovery with its measured latency.
func (m *Manager) restoreState(source string, snap telemetry.HubSnapshot, tail []telemetry.Event, latency time.Duration) {
	series, events := m.tel.Restore(snap, tail)
	m.mu.Lock()
	if m.role == RoleGM && !m.stopped {
		// The restored series change what the capacity views would read;
		// drop the memoized builds and re-arm the liveness sweep so adopted
		// vm/* series are reconciled against inventory after the grace.
		m.bumpViewEpochLocked()
		m.viewMemo.Invalidate()
		if m.cfg.VMLivenessGrace > 0 && m.sweepUnsub != nil {
			m.scheduleVMSweepLocked(m.rt.Now() + m.cfg.VMLivenessGrace)
		}
	}
	m.mu.Unlock()
	if series == 0 && events == 0 {
		return // nothing new: shared hub, or a re-delivered push
	}
	if latency < 0 {
		latency = 0
	}
	m.mark("gm.recoveries", 1)
	m.observe("gm.recovery-latency", latency)
	m.emit(telemetry.EventGMRecovered, telemetry.GMEntity(m.cfg.ID), telemetry.A(
		"source", source,
		"series", strconv.Itoa(series),
		"events", strconv.Itoa(events),
		"latencyNs", strconv.FormatInt(int64(latency), 10)))
}
