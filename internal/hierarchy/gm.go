package hierarchy

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"time"

	"snooze/internal/consolidation"
	"snooze/internal/obs"
	"snooze/internal/protocol"
	"snooze/internal/scheduling"
	"snooze/internal/scheduling/view"
	"snooze/internal/telemetry"
	"snooze/internal/telemetry/sketch"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// This file implements the Group Manager role: monitoring reception, demand
// estimation, VM placement, overload/underload relocation, energy
// management and periodic reconfiguration (Sections II-B, II-C, III).

// becomeGMLocked (re)activates the GM role against the given GL address.
func (m *Manager) becomeGMLocked(gl transport.Address) {
	wasGL := m.role == RoleGL
	sameGL := m.role == RoleGM && m.glAddr == gl
	m.role = RoleGM
	m.glAddr = gl
	m.joined = false
	if wasGL {
		// Demotion: drop GL-side state; our LCs (if any linger from an
		// earlier GM stint) will re-register through monitoring.
		m.gms = make(map[types.GroupManagerID]*gmRecord)
	}
	if !sameGL {
		m.mark("gm.gl-changes", 1)
	}
	m.lastRollup = 0 // fresh stint: first monitor report rolls up immediately
	m.bumpViewEpochLocked()
	m.viewMemo.Invalidate()
	m.stopTickersLocked()
	m.addTicker(m.cfg.HeartbeatPeriod, m.gmHeartbeatTick)
	m.addTicker(m.cfg.SummaryPeriod, m.gmSummaryTick)
	m.addTicker(m.cfg.LCTimeout/3, m.gmSweepTick)
	if m.cfg.EnergyEnabled {
		// Idle detection is event-driven: the journal observer reacts to
		// node.idle / node.normal / vm.state / lc-join events, and each check
		// re-arms itself at the exact moment the earliest idle node ripens.
		// One bootstrap check covers LCs that linger from an earlier GM stint.
		m.energyUnsub = m.tel.Journal().Observe(m.onEnergyEvent)
		m.scheduleEnergyCheckLocked(m.rt.Now() + m.cfg.IdleThreshold)
	}
	if m.cfg.Reconfig != nil && m.cfg.ReconfigPeriod > 0 {
		m.addTicker(m.cfg.ReconfigPeriod, m.gmReconfigTick)
	}
	if m.cfg.Consolidation.Enabled {
		// The continuous consolidation service runs for the duration of the
		// GM stint; stopTickersLocked stops it on demotion/promotion.
		m.optimizerLocked().Start()
	}
	if m.cfg.VMLivenessGrace > 0 {
		// The deployment-level VM liveness sweep is journal-armed: lifecycle
		// and membership events (plus inventory shrinkage noticed by
		// gmOnMonitor) schedule exact-deadline reconciliations of the hub's
		// vm/* series against this GM's inventory. One bootstrap sweep
		// covers series that predate this GM stint.
		m.sweepUnsub = m.tel.Journal().Observe(m.onSweepEvent)
		m.scheduleVMSweepLocked(m.rt.Now() + m.cfg.VMLivenessGrace)
	}
	if period := m.stateSyncPeriod(); period > 0 {
		// State replication: push owned-telemetry snapshots + journal
		// segments to the GL so a successor can rebuild this GM's hub after
		// a failure. The bootstrap fetch below is the receiving end: a
		// restarted/re-elected GM recovers what a previous incarnation
		// replicated, restoring Fresh capacity views across the handoff.
		m.addTicker(period, m.gmStateSyncTick)
		m.lastSyncSeq = 0
		started := m.rt.Now()
		m.rt.After(0, func() { m.gmRecoverState(started) })
	}
	// Join the GL immediately (heartbeat-paced retries cover failures).
	m.rt.After(0, m.gmJoinGL)
}

// gmJoinGL enrolls this GM with the current GL.
func (m *Manager) gmJoinGL() {
	m.mu.Lock()
	gl := m.glAddr
	stopped := m.stopped || m.role != RoleGM
	m.mu.Unlock()
	if stopped || gl == "" {
		return
	}
	req := protocol.GMJoinRequest{GM: m.cfg.ID, Addr: string(m.cfg.Addr)}
	m.bus.Call(m.cfg.Addr, gl, protocol.KindGMJoin, req, m.cfg.CallTimeout, func(reply any, err error) {
		if err != nil {
			return // summary ticks retry enrollment implicitly
		}
		if ack, ok := reply.(protocol.GMJoinResponse); ok && ack.Accepted {
			m.mu.Lock()
			m.joined = true
			m.mu.Unlock()
			m.mark("gm.joins", 1)
		}
	})
}

// gmHeartbeatTick multicasts the GM heartbeat to this GM's LC group.
func (m *Manager) gmHeartbeatTick() {
	m.mu.Lock()
	active := m.role == RoleGM && !m.stopped
	m.mu.Unlock()
	if !active {
		return
	}
	hb := protocol.GMHeartbeat{GM: m.cfg.ID, Addr: string(m.cfg.Addr)}
	m.bus.Multicast(m.cfg.Addr, protocol.GroupGMPrefix+string(m.cfg.ID), protocol.KindGMHeartbeat, hb)
}

// gmSummaryTick pushes the aggregated group summary to the GL; it doubles as
// the GM's heartbeat to the GL (Section II-B). Beyond the point-in-time
// aggregate, the push carries the merged quantile sketch of the members'
// util series and this GM's scheduling configuration — the distribution and
// policy facts a GL cannot reconstruct from group averages.
func (m *Manager) gmSummaryTick() {
	m.mu.Lock()
	if m.role != RoleGM || m.stopped {
		m.mu.Unlock()
		return
	}
	gl := m.glAddr
	joined := m.joined
	summary := m.summaryLocked()
	nodes := make([]types.NodeID, 0, len(m.lcs))
	for id := range m.lcs {
		nodes = append(nodes, id)
	}
	m.mu.Unlock()
	if gl == "" {
		return
	}
	if !joined {
		m.gmJoinGL()
	}
	sched := m.schedulingInfo()
	up := protocol.SummaryUpdate{
		Summary:    summary,
		Addr:       string(m.cfg.Addr),
		Rollup:     m.rollupEvery() > 0,
		Scheduling: &sched,
	}
	if enc, ok := m.mergedUtilSketch(nodes); ok {
		up.UtilSketch = &enc
	}
	_ = m.bus.Send(m.cfg.Addr, gl, protocol.KindSummary, up)
}

// mergedUtilSketch merges the lifetime util sketches of the given member
// nodes into one group-level distribution. The store serializes each series'
// sketch under its own locks, so this runs without m.mu held; it allocates a
// few decode buffers once per summary period, far off any hot path.
func (m *Manager) mergedUtilSketch(nodes []types.NodeID) (sketch.Encoded, bool) {
	store := m.tel.Store()
	merged := sketch.New(store.SketchAlpha())
	for _, id := range nodes {
		enc, ok := store.SeriesSketch(telemetry.NodeEntity(id), "util")
		if !ok {
			continue
		}
		merged.Merge(sketch.Decode(enc))
	}
	if merged.Count() == 0 {
		return sketch.Encoded{}, false
	}
	return merged.Encode(), true
}

// summaryLocked aggregates used/total capacity over the GM's LCs, counting
// sleeping LCs as wakeable capacity.
func (m *Manager) summaryLocked() types.GroupSummary {
	s := types.GroupSummary{GM: m.cfg.ID}
	for _, lc := range m.lcs {
		s.Total = s.Total.Add(lc.status.Spec.Capacity)
		if lc.sleeping {
			s.AsleepLCs++
			continue
		}
		s.ActiveLCs++
		s.Used = s.Used.Add(lc.status.Used)
		s.Reserved = s.Reserved.Add(lc.status.Reserved)
		s.VMs += len(lc.vms)
	}
	return s
}

// gmOnLCJoin admits an LC into this group (Section II-D, final step of the
// LC join protocol).
func (m *Manager) gmOnLCJoin(req *transport.Request) {
	join, ok := req.Payload.(protocol.LCJoinRequest)
	if !ok {
		req.Respond(protocol.LCJoinResponse{})
		return
	}
	m.mu.Lock()
	if m.role != RoleGM || m.stopped {
		m.mu.Unlock()
		req.Respond(protocol.LCJoinResponse{})
		return
	}
	id := join.Status.Spec.ID
	rec, exists := m.lcs[id]
	if !exists {
		rec = &lcRecord{id: id}
		m.lcs[id] = rec
	}
	rec.addr = transport.Address(join.Addr)
	rec.oob = transport.Address(join.OOB)
	rec.status = join.Status
	rec.vms = join.VMs
	rec.lastSeen = m.rt.Now()
	rec.sleeping = false
	rec.waking = false
	m.bumpViewEpochLocked()
	m.mu.Unlock()
	m.mark("gm.lc-joins", 1)
	m.emit(telemetry.EventLCJoin, telemetry.NodeEntity(id), telemetry.A("gm", string(m.cfg.ID)))
	req.Respond(protocol.LCJoinResponse{Accepted: true})
	// Fresh capacity may satisfy queued placements.
	m.drainPending()
}

// gmOnMonitor ingests an LC monitoring report: store status and refresh the
// demand series used by the schedulers' estimators (Section II-B). Every
// accepted report feeds the telemetry store — per-node series for capacity
// views, all four per-VM demand dimensions for store-backed estimation — and
// the anomaly detector, whose node.overload / node.underload events drive
// relocation. A report that transitions a node into idleness additionally
// publishes node.idle, the signal the event-driven energy manager waits on.
func (m *Manager) gmOnMonitor(req *transport.Request) {
	rep, ok := req.Payload.(protocol.MonitorReport)
	if !ok {
		return
	}
	if !validMonitorReport(rep, m.rt.Now()) {
		// Corrupted input (NaN/Inf/negative usage, future-stamped clock)
		// never reaches the store, the detector or the LC bookkeeping — a
		// single bad sensor must not poison the windowed statistics every
		// scheduling decision consumes.
		m.mark("gm.monitor-rejects", 1)
		return
	}
	m.mu.Lock()
	if m.role != RoleGM || m.stopped {
		m.mu.Unlock()
		return
	}
	id := rep.Status.Spec.ID
	rec, exists := m.lcs[id]
	if !exists {
		// Unknown LC (e.g. we were promoted and demoted again): admit it
		// implicitly — monitoring proves liveness.
		rec = &lcRecord{id: id}
		m.lcs[id] = rec
		rec.addr = transport.Address(req.From)
		rec.oob = OOBAddress(req.From)
	}
	if rec.sleeping && rep.Status.Generation <= rec.sleepGen {
		// Stale report that was in flight when we ordered the suspend; a
		// genuinely woken node reports a higher generation.
		m.mu.Unlock()
		return
	}
	rec.lastSeen = m.rt.Now()
	if rec.sleeping {
		// A woken node starts a fresh idle episode: un-latch the idle
		// announcement so the energy manager hears about it again.
		rec.idleAnnounced = false
	}
	rec.sleeping = false
	rec.waking = false
	rec.status = rep.Status
	// A VM leaving the report without a terminal vm.state event is the
	// silent-vanish signature (stopped behind the hierarchy's back, lost in
	// a migration race): arm the liveness sweep so its series is reconciled
	// once the grace period proves it gone everywhere.
	if m.cfg.VMLivenessGrace > 0 && vmsRemoved(rec.vms, rep.VMs) {
		m.scheduleVMSweepLocked(m.rt.Now() + m.cfg.VMLivenessGrace)
	}
	rec.vms = rep.VMs
	becameIdle := false
	if rep.Status.Idle {
		if !rec.idleAnnounced {
			rec.idleAnnounced = true
			becameIdle = true
		}
	} else {
		rec.idleAnnounced = false
	}
	// One ingested report = one epoch bump: the member series are about to be
	// appended below, so every consumer keyed on the epoch re-reads exactly
	// once per report (the property the epoch test pins down).
	m.bumpViewEpochLocked()
	// Rollup: at most once per rollupEvery, aggregate the group and append
	// the gm/<id> series right here on the monitoring flow — the GL's group
	// views then track capacity at monitoring cadence, without the GL ever
	// touching per-node state (the hierarchy's whole point).
	var rollup types.GroupSummary
	doRollup := false
	if every := m.rollupEvery(); every > 0 {
		if now := m.rt.Now(); m.lastRollup == 0 || now-m.lastRollup >= every {
			m.lastRollup = now
			rollup = m.summaryLocked()
			doRollup = true
		}
	}
	m.mu.Unlock()

	now := m.rt.Now()
	if doRollup {
		m.tel.RecordGroup(now, rollup)
		// Stamp the rollup series like the per-VM series: on a shared hub the
		// claim tells the GL that this GM's monitoring flow feeds gm/<id>
		// directly, so glOnSummary skips its own (coarser) re-record.
		m.tel.Claim(telemetry.GMEntity(m.cfg.ID), string(m.cfg.ID))
		m.mark("gm.rollups", 1)
	}
	m.tel.RecordNode(now, rep.Status)
	// Stamp the node series too: besides fencing shared-hub sweeps, the
	// claim scopes this entity into the GM's state-sync snapshot, so a
	// successor inherits the node's utilization history on failover.
	m.tel.Claim(telemetry.NodeEntity(id), string(m.cfg.ID))
	for _, vm := range rep.VMs {
		entity := telemetry.VMEntity(vm.Spec.ID)
		m.tel.RecordVM(now, vm)
		// Stamp the series with this GM: on a shared hub the stamp fences
		// other GMs' liveness sweeps away from entities we are feeding.
		m.tel.Claim(entity, string(m.cfg.ID))
	}
	if becameIdle {
		m.emit(telemetry.EventNodeIdle, telemetry.NodeEntity(id),
			telemetry.A("sinceNs", fmt.Sprintf("%d", rep.Status.IdleSince)))
	}
	if ev, fired := m.tel.DetectNode(now, rep.Status); fired {
		m.onTelemetryEvent(ev, rep.Status, rep.VMs)
	}
	m.drainPending()
}

// onTelemetryEvent reacts to a detector event: anomaly events trigger the
// relocation policies, recoveries are journal-only. This is the single entry
// point for relocation — the LC anomaly fast path and the monitoring path
// both funnel through the detector, so an anomaly is acted on at most once
// per Thresholds.Repeat cooldown per node, regardless of how many reports
// carry it. status/vms are the report that fired the event — fresher than
// the GM's cached record when messages reorder.
func (m *Manager) onTelemetryEvent(ev telemetry.Event, status types.NodeStatus, vms []types.VMStatus) {
	var kind protocol.AnomalyKind
	switch ev.Type {
	case telemetry.EventNodeOverload:
		kind = protocol.AnomalyOverload
	case telemetry.EventNodeUnderload:
		kind = protocol.AnomalyUnderload
	default:
		return
	}
	m.mark("gm.detector-relocations", 1)
	m.relocate(kind, status, vms)
}

// estimateVM returns the demand estimate for one VM, reconstructed from the
// telemetry store's retained per-VM series (the single history path — the
// former per-caller resource.History rings are gone). A VM with no retained
// samples yet falls back to its most recent measurement.
func (m *Manager) estimateVM(now time.Duration, vm types.VMStatus) types.ResourceVector {
	if est, ok := m.views.Demand(now, telemetry.VMEntity(vm.Spec.ID), m.cfg.Estimator); ok {
		return est
	}
	return vm.Used
}

// activeStatusesLocked snapshots the schedulable LC statuses.
func (m *Manager) activeStatusesLocked() []types.NodeStatus {
	out := make([]types.NodeStatus, 0, len(m.lcs))
	for _, lc := range m.lcs {
		if lc.sleeping || lc.busy > 0 {
			continue
		}
		out = append(out, lc.status)
	}
	return out
}

// activeViewsLocked builds capacity views over the schedulable LCs — the
// input every placement decision consumes. Builds are memoized on the GM-wide
// view epoch: while nothing moved (no monitor ingestion, reservation,
// migration, sleep/wake or membership change bumped the epoch), a burst of
// placements reuses the previous build outright — zero per-entity cache
// probes, zero store reductions. The heartbeat period bounds the Age drift a
// reused build may carry.
func (m *Manager) activeViewsLocked() []view.Node {
	now := m.rt.Now()
	if m.cfg.DisableScanGating {
		return m.views.Nodes(now, m.activeStatusesLocked())
	}
	if nodes, ok := m.viewMemo.Get(m.viewEpoch, now, m.cfg.HeartbeatPeriod); ok {
		return nodes
	}
	nodes := m.views.Nodes(now, m.activeStatusesLocked())
	m.viewMemo.Put(m.viewEpoch, now, nodes)
	return nodes
}

// gmOnPlace serves the GL's placement probe: run the placement policy per VM
// against current LC statuses, issue StartVM commands, and respond with the
// outcome. VMs that fit no active LC wait for a wake when energy management
// is on (Section III: LCs "are woken up by the GM in case ... not enough
// capacity is available").
func (m *Manager) gmOnPlace(req *transport.Request) {
	pr, ok := req.Payload.(protocol.PlaceRequest)
	if !ok {
		req.RespondErr(errBadPayload)
		return
	}
	m.mu.Lock()
	if m.role != RoleGM || m.stopped {
		m.mu.Unlock()
		req.Respond(protocol.PlaceResponse{Unplaced: vmIDs(pr.VMs)})
		return
	}
	m.mu.Unlock()

	resp := protocol.PlaceResponse{Placed: make(map[types.VMID]types.NodeID)}
	remaining := len(pr.VMs)
	if remaining == 0 {
		req.Respond(resp)
		return
	}
	var respMu = make(chan struct{}, 1)
	respMu <- struct{}{}
	finishOne := func(id types.VMID, node types.NodeID, ok bool) {
		<-respMu
		if ok {
			resp.Placed[id] = node
		} else {
			resp.Unplaced = append(resp.Unplaced, id)
		}
		remaining--
		done := remaining == 0
		respMu <- struct{}{}
		if done {
			req.Respond(resp)
		}
	}
	parent := obs.SpanContext{TraceID: pr.TraceID, SpanID: pr.ParentSpan}
	for _, spec := range pr.VMs {
		spec := spec
		m.placeVM(spec, parent, func(node types.NodeID, ok bool) { finishOne(spec.ID, node, ok) })
	}
}

// placeVM runs one VM through the placement policy; cb is invoked exactly
// once with the outcome. parent is the dispatch span that probed this GM
// (invalid when the submission was untraced).
func (m *Manager) placeVM(spec types.VMSpec, parent obs.SpanContext, cb func(node types.NodeID, ok bool)) {
	m.mu.Lock()
	if m.stopped || m.role != RoleGM {
		m.mu.Unlock()
		cb("", false)
		return
	}
	span := m.cfg.Tracer.StartSpan(obs.KindPlacement, telemetry.VMEntity(spec.ID), parent)
	span.SetPolicy(m.cfg.Placement.Name())
	var ex *scheduling.Explain
	if span.Enabled() {
		ex = &scheduling.Explain{}
	}
	nodes := m.activeViewsLocked()
	nodeID, ok := m.cfg.Placement.Place(spec, nodes, ex)
	if span.Enabled() {
		for _, c := range ex.Candidates {
			span.Candidate(c.ID, c.Chosen, c.Reason)
		}
		if ok {
			span.SetTarget(string(nodeID))
			for _, n := range nodes {
				if n.Spec.ID == nodeID {
					span.SetView(n.Stats.Gen, n.Stats.Samples, n.Stats.Fresh, n.Stats.Truncated)
					break
				}
			}
		}
	}
	if !ok {
		// No active LC fits. Queue for a wake if energy management can
		// create capacity, else fail fast.
		if m.cfg.EnergyEnabled && m.sleepingLocked() > 0 {
			m.pending = append(m.pending, pendingPlacement{
				spec:     spec,
				deadline: m.rt.Now() + m.cfg.PendingTimeout,
				respond:  cb,
				trace:    parent,
			})
			m.wakeOneLocked()
			// Arm the retry heartbeat: if the wake call is lost, no journal
			// event will follow to drive the energy check, so the queued
			// placement needs a scheduled check to retry the wake and
			// enforce its deadline (gmEnergyCheck keeps re-arming while the
			// queue is non-empty).
			m.scheduleEnergyCheckLocked(m.rt.Now() + m.cfg.IdleThreshold/2)
			m.mu.Unlock()
			m.mark("gm.place-queued", 1)
			span.Finish("queued")
			return
		}
		m.mu.Unlock()
		span.Finish("no-fit")
		cb("", false)
		return
	}
	rec := m.lcs[nodeID]
	// Optimistic reservation so concurrent placements see the load.
	rec.status.Reserved = rec.status.Reserved.Add(spec.Requested)
	rec.status.VMs = append(rec.status.VMs, spec.ID)
	m.bumpViewEpochLocked()
	addr := rec.addr
	m.mu.Unlock()

	sc := span.Context()
	sreq := protocol.StartVMRequest{Spec: spec, TraceID: sc.TraceID, ParentSpan: sc.SpanID}
	m.bus.Call(m.cfg.Addr, addr, protocol.KindStartVM, sreq, m.cfg.CallTimeout,
		func(reply any, err error) {
			ack, isAck := reply.(protocol.StartVMResponse)
			if err != nil || !isAck || !ack.OK {
				// Roll back the optimistic reservation and report failure.
				m.mu.Lock()
				if rec, ok := m.lcs[nodeID]; ok {
					rec.status.Reserved = rec.status.Reserved.Sub(spec.Requested).Max(types.ResourceVector{})
					rec.status.VMs = removeVMID(rec.status.VMs, spec.ID)
					m.bumpViewEpochLocked()
				}
				m.mu.Unlock()
				m.mark("gm.place-failed", 1)
				span.Finish("start-failed")
				cb("", false)
				return
			}
			m.mark("gm.place-ok", 1)
			m.emit(telemetry.EventVMState, telemetry.VMEntity(spec.ID),
				vmStateAttrs(sc, "state", "placed", "node", string(nodeID)))
			span.Finish("placed")
			cb(nodeID, true)
		})
}

func (m *Manager) sleepingLocked() int {
	n := 0
	for _, lc := range m.lcs {
		if lc.sleeping {
			n++
		}
	}
	return n
}

// wakeOneLocked sends an out-of-band wake to one sleeping LC (deterministic
// choice: lowest node ID not already waking).
func (m *Manager) wakeOneLocked() {
	var best *lcRecord
	for _, lc := range m.lcs {
		if lc.sleeping && !lc.waking {
			if best == nil || lc.id < best.id {
				best = lc
			}
		}
	}
	if best == nil {
		return
	}
	best.waking = true
	oob := best.oob
	m.mark("gm.wakes", 1)
	sp := m.cfg.Tracer.StartTrace(obs.KindEnergy, telemetry.NodeEntity(best.id))
	sp.Annotate("action", "wake")
	m.rt.After(0, func() {
		m.bus.Call(m.cfg.Addr, oob, protocol.KindWakeHost, struct{}{}, m.cfg.CallTimeout, func(_ any, err error) {
			if err != nil {
				sp.Finish("failed")
				return
			}
			sp.Finish("ok")
		})
	})
}

// drainPending retries queued placements (after a join, monitor report or
// wake) and expires entries past their deadline.
func (m *Manager) drainPending() {
	m.mu.Lock()
	if len(m.pending) == 0 || m.stopped {
		m.mu.Unlock()
		return
	}
	queue := m.pending
	m.pending = nil
	now := m.rt.Now()
	m.mu.Unlock()

	for _, p := range queue {
		p := p
		if now > p.deadline {
			m.mark("gm.place-expired", 1)
			p.respond("", false)
			continue
		}
		m.mu.Lock()
		span := m.cfg.Tracer.StartSpan(obs.KindPlacement, telemetry.VMEntity(p.spec.ID), p.trace)
		span.SetPolicy(m.cfg.Placement.Name())
		span.Annotate("retry", "pending-queue")
		var ex *scheduling.Explain
		if span.Enabled() {
			ex = &scheduling.Explain{}
		}
		nodes := m.activeViewsLocked()
		nodeID, ok := m.cfg.Placement.Place(p.spec, nodes, ex)
		if span.Enabled() {
			for _, c := range ex.Candidates {
				span.Candidate(c.ID, c.Chosen, c.Reason)
			}
		}
		if !ok {
			// Still no room: requeue.
			m.pending = append(m.pending, p)
			m.mu.Unlock()
			span.Finish("requeued")
			continue
		}
		if span.Enabled() {
			span.SetTarget(string(nodeID))
			for _, n := range nodes {
				if n.Spec.ID == nodeID {
					span.SetView(n.Stats.Gen, n.Stats.Samples, n.Stats.Fresh, n.Stats.Truncated)
					break
				}
			}
		}
		rec := m.lcs[nodeID]
		rec.status.Reserved = rec.status.Reserved.Add(p.spec.Requested)
		rec.status.VMs = append(rec.status.VMs, p.spec.ID)
		m.bumpViewEpochLocked()
		addr := rec.addr
		m.mu.Unlock()
		sc := span.Context()
		sreq := protocol.StartVMRequest{Spec: p.spec, TraceID: sc.TraceID, ParentSpan: sc.SpanID}
		m.bus.Call(m.cfg.Addr, addr, protocol.KindStartVM, sreq, m.cfg.CallTimeout,
			func(reply any, err error) {
				ack, isAck := reply.(protocol.StartVMResponse)
				if err != nil || !isAck || !ack.OK {
					m.mu.Lock()
					if rec, ok := m.lcs[nodeID]; ok {
						rec.status.Reserved = rec.status.Reserved.Sub(p.spec.Requested).Max(types.ResourceVector{})
						rec.status.VMs = removeVMID(rec.status.VMs, p.spec.ID)
						m.bumpViewEpochLocked()
					}
					m.mu.Unlock()
					span.Finish("start-failed")
					p.respond("", false)
					return
				}
				m.emit(telemetry.EventVMState, telemetry.VMEntity(p.spec.ID),
					vmStateAttrs(sc, "state", "placed", "node", string(nodeID)))
				span.Finish("placed")
				p.respond(nodeID, true)
			})
	}
}

// gmOnAnomaly handles an LC overload/underload report. The LC's local
// classification is advisory: the report's fresh status feeds the shared
// telemetry detector, and relocation runs iff the detector (which the
// monitoring path feeds too) confirms a crossing — the GM no longer
// interprets thresholds ad hoc per message (Section II-C).
func (m *Manager) gmOnAnomaly(req *transport.Request) {
	rep, ok := req.Payload.(protocol.AnomalyReport)
	if !ok {
		return
	}
	m.mark("gm.anomalies-received", 1)
	m.mu.Lock()
	_, known := m.lcs[rep.Status.Spec.ID]
	active := m.role == RoleGM && !m.stopped
	m.mu.Unlock()
	if !active || !known {
		return
	}
	if ev, fired := m.tel.DetectNode(m.rt.Now(), rep.Status); fired {
		m.onTelemetryEvent(ev, rep.Status, rep.VMs)
	}
}

// relocate runs the relocation policy for an anomaly on one of this GM's
// nodes and executes the resulting moves (Section II-C). It is invoked by
// onTelemetryEvent, never directly from message handlers; status/vms are
// the reported state that fired the detector.
func (m *Manager) relocate(kind protocol.AnomalyKind, status types.NodeStatus, srcVMs []types.VMStatus) {
	m.mu.Lock()
	if m.role != RoleGM || m.stopped {
		m.mu.Unlock()
		return
	}
	src, exists := m.lcs[status.Spec.ID]
	if !exists || src.sleeping || src.busy > 0 {
		m.mu.Unlock()
		return
	}
	now := m.rt.Now()
	// Estimate demand for the source VMs from the store's retained series.
	vms := make([]types.VMStatus, len(srcVMs))
	copy(vms, srcVMs)
	for i := range vms {
		vms[i].Used = m.estimateVM(now, vms[i])
	}
	others := make([]types.NodeStatus, 0, len(m.lcs))
	for _, lc := range m.lcs {
		if lc.id == src.id || lc.sleeping || lc.busy > 0 {
			continue
		}
		others = append(others, lc.status)
	}
	var policy = m.cfg.Overload
	if kind == protocol.AnomalyUnderload {
		policy = m.cfg.Underload
	}
	srcView := m.views.Node(now, status)
	// A relocation is trace-root: the detector event, not a user request,
	// started this chain. Its migrations become child spans.
	span := m.cfg.Tracer.StartTrace(obs.KindRelocation, telemetry.NodeEntity(status.Spec.ID))
	span.SetPolicy(policy.Name())
	span.Annotate("anomaly", kind.String())
	span.SetView(srcView.Stats.Gen, srcView.Stats.Samples, srcView.Stats.Fresh, srcView.Stats.Truncated)
	if sk, ok := policy.(scheduling.SkipsAnomaly); ok && sk.SkipAnomaly(srcView) {
		// Deliberate inaction (e.g. trend-relocation judging the spike to be
		// draining on its own) — in particular, do NOT wake sleeping
		// capacity for it.
		m.mark("gm.relocations-skipped", 1)
		m.mu.Unlock()
		span.Finish("skipped")
		return
	}
	var ex *scheduling.Explain
	if span.Enabled() {
		ex = &scheduling.Explain{}
	}
	moves := policy.Relocate(srcView, vms, m.views.Nodes(now, others), ex)
	if span.Enabled() {
		for _, c := range ex.Candidates {
			span.Candidate(c.ID, c.Chosen, c.Reason)
		}
	}
	if len(moves) == 0 {
		// An unresolvable overload wakes sleeping capacity (Section III:
		// "LCs are woken up by the GM in case ... overload situations on
		// the LCs occur").
		if kind == protocol.AnomalyOverload && m.cfg.EnergyEnabled {
			m.wakeOneLocked()
		}
		m.mu.Unlock()
		span.Finish("no-moves")
		return
	}
	m.mark("gm.relocations", int64(len(moves)))
	if kind == protocol.AnomalyOverload {
		m.mark("gm.overload-events", 1)
	} else {
		m.mark("gm.underload-events", 1)
	}
	m.executeMovesLocked(moves, span.Context())
	m.mu.Unlock()
	span.Finish("executing")
}

// executeMovesLocked issues migrations for the given moves, maintaining busy
// markers so schedulers leave the endpoints alone mid-transfer. parent is
// the relocation span the migrations hang off (invalid when untraced).
func (m *Manager) executeMovesLocked(moves []scheduling.Move, parent obs.SpanContext) {
	for _, mv := range moves {
		sp := m.cfg.Tracer.StartSpan(obs.KindMigration, telemetry.VMEntity(mv.VM), parent)
		sp.SetTarget(string(mv.To))
		sp.Annotate("from", string(mv.From))
		m.migrateVMTracedLocked(types.Migration{VM: mv.VM, From: mv.From, To: mv.To}, sp.Context(), func(ok bool) {
			if ok {
				sp.Finish("migrated")
			} else {
				sp.Finish("failed")
			}
		})
	}
}

// migrateVMLocked issues one live migration, maintaining busy markers and the
// optimistic reservation shift; done is invoked exactly once with the
// outcome, never while m.mu is held. It is the single migration primitive —
// relocation, reconfiguration and the online consolidation optimizer all
// funnel through it.
func (m *Manager) migrateVMLocked(mv types.Migration, done func(ok bool)) {
	m.migrateVMTracedLocked(mv, obs.SpanContext{}, done)
}

// migrateVMTracedLocked is migrateVMLocked with the issuing decision span's
// context, carried to the LC on the MigrateVMRequest and tagged onto the
// vm.state journal event. Failures are retried with exponential backoff up
// to the configured attempt budget; an exhausted budget journals
// gm.migration-abandoned and reports failure once.
func (m *Manager) migrateVMTracedLocked(mv types.Migration, sc obs.SpanContext, done func(ok bool)) {
	m.migrateAttemptLocked(mv, sc, 1, done)
}

// migrationAttempts resolves the bounded retry budget (total attempts,
// minimum one).
func (m *Manager) migrationAttempts() int {
	if m.cfg.MigrationRetries < 1 {
		return 1
	}
	return m.cfg.MigrationRetries
}

// migrationDelay computes the backoff before retry attempt next (2, 3, …):
// exponential in the base plus a deterministic jitter hashed from the VM ID
// and the attempt number — concurrent retries spread without shared random
// state, so schedules are reproducible in simulation.
func migrationDelay(base time.Duration, vm types.VMID, next int) time.Duration {
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	d := base << uint(next-2)
	h := fnv.New64a()
	h.Write([]byte(vm))
	h.Write([]byte{byte(next)})
	return d + time.Duration(h.Sum64()%uint64(base))
}

// migrateAttemptLocked issues one attempt of a migration; m.mu must be held.
func (m *Manager) migrateAttemptLocked(mv types.Migration, sc obs.SpanContext, attempt int, done func(ok bool)) {
	src, okS := m.lcs[mv.From]
	dst, okD := m.lcs[mv.To]
	if !okS || !okD {
		m.rt.After(0, func() { done(false) })
		return
	}
	src.busy++
	dst.busy++
	// Reflect the reservation shift optimistically.
	var spec types.VMSpec
	for _, vm := range src.vms {
		if vm.Spec.ID == mv.VM {
			spec = vm.Spec
			break
		}
	}
	dst.status.Reserved = dst.status.Reserved.Add(spec.Requested)
	m.bumpViewEpochLocked()
	mreq := protocol.MigrateVMRequest{VM: mv.VM, DestNode: mv.To, DestAddr: string(dst.addr), TraceID: sc.TraceID, ParentSpan: sc.SpanID}
	srcAddr := src.addr
	from, to := mv.From, mv.To
	m.rt.After(0, func() {
		m.bus.Call(m.cfg.Addr, srcAddr, protocol.KindMigrateVM, mreq, m.cfg.CallTimeout,
			func(reply any, err error) {
				m.mu.Lock()
				if s, ok := m.lcs[from]; ok && s.busy > 0 {
					s.busy--
				}
				if d, ok := m.lcs[to]; ok {
					if d.busy > 0 {
						d.busy--
					}
				}
				m.bumpViewEpochLocked()
				m.mu.Unlock()
				ack, isAck := reply.(protocol.MigrateVMResponse)
				if err != nil || !isAck || !ack.OK {
					m.mark("gm.migrations-failed", 1)
					if attempt < m.migrationAttempts() {
						// Bounded retry: back off and re-issue. The endpoint
						// records are re-resolved under the lock, so an LC
						// that failed or was shed meanwhile aborts the retry.
						m.mark("gm.migration-retries", 1)
						m.rt.After(migrationDelay(m.cfg.MigrationBackoff, mv.VM, attempt+1), func() {
							m.mu.Lock()
							if m.role != RoleGM || m.stopped {
								m.mu.Unlock()
								done(false)
								return
							}
							m.migrateAttemptLocked(mv, sc, attempt+1, done)
							m.mu.Unlock()
						})
						return
					}
					m.mark("gm.migration-abandoned", 1)
					m.emit(telemetry.EventMigrationAbandoned, telemetry.VMEntity(mv.VM),
						vmStateAttrs(sc, "from", string(from), "to", string(to),
							"attempts", strconv.Itoa(attempt)))
					done(false)
					return
				}
				m.mark("gm.migrations-ok", 1)
				m.emit(telemetry.EventVMState, telemetry.VMEntity(mv.VM),
					vmStateAttrs(sc, "state", "migrated", "from", string(from), "to", string(to)))
				done(true)
			})
	})
}

// gmSweepTick detects failed LCs ("GM failures are detected by the GL based
// on missing heartbeats" — symmetrically, LC heartbeats here) and invalidates
// them; optionally their VMs are rescheduled from snapshots (Section II-E).
func (m *Manager) gmSweepTick() {
	m.mu.Lock()
	if m.role != RoleGM || m.stopped {
		m.mu.Unlock()
		return
	}
	now := m.rt.Now()
	var lost []types.VMSpec
	var dead []types.VMID
	var failed []types.NodeID
	for id, lc := range m.lcs {
		if lc.sleeping || lc.waking {
			continue // deliberate sleep: heartbeat silence is expected
		}
		if now-lc.lastSeen > m.cfg.LCTimeout {
			for _, vm := range lc.vms {
				if m.cfg.RescheduleOnLCFailure {
					lost = append(lost, vm.Spec)
				} else {
					dead = append(dead, vm.Spec.ID)
				}
			}
			delete(m.lcs, id)
			failed = append(failed, id)
			m.mark("gm.lc-failures", 1)
		}
	}
	if len(failed) > 0 {
		m.bumpViewEpochLocked()
	}
	m.mu.Unlock()
	sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
	for _, id := range failed {
		entity := telemetry.NodeEntity(id)
		m.emit(telemetry.EventLCFailed, entity, telemetry.A("gm", string(m.cfg.ID)))
		m.tel.ForgetEntity(entity)
	}
	// VMs that died with the node (no rescheduling) get a terminal vm.state;
	// the hub drops their series on that event, so dead VMs do not linger in
	// the store. Rescheduled VMs keep their series — the workload lives on.
	// One journaled batch covers the whole wave: a failed LC can take dozens
	// of VMs with it, and per-event fan-out locking would serialize the sweep.
	if len(dead) > 0 {
		sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
		evs := make([]telemetry.Event, len(dead))
		for i, id := range dead {
			evs[i] = telemetry.Event{At: now, Type: telemetry.EventVMState,
				Entity: telemetry.VMEntity(id), Attrs: telemetry.A("state", "failed")}
		}
		m.tel.EmitBatch(evs)
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].ID < lost[j].ID })
	for _, spec := range lost {
		spec := spec
		m.mark("gm.vm-reschedules", 1)
		m.placeVM(spec, obs.SpanContext{}, func(types.NodeID, bool) {})
	}
}

// onEnergyEvent is the journal observer driving event-driven energy
// management: any event that can change idleness (a node reporting idle, a
// recovery, a VM lifecycle outcome, an LC joining) kicks one idle check.
// It runs synchronously on the publishing goroutine — possibly while the
// publisher holds m.mu — so it touches no manager state beyond the atomic
// debounce and defers the real work to a runtime event.
func (m *Manager) onEnergyEvent(ev telemetry.Event) {
	switch ev.Type {
	case telemetry.EventNodeIdle, telemetry.EventNodeNormal, telemetry.EventVMState, telemetry.EventLCJoin:
	default:
		return
	}
	if m.energyKick.CompareAndSwap(false, true) {
		m.rt.After(0, func() {
			m.energyKick.Store(false)
			m.gmEnergyCheck()
		})
	}
}

// scheduleEnergyCheckLocked arms (or re-arms) the idle check at the absolute
// runtime instant at, keeping only the earliest outstanding deadline.
func (m *Manager) scheduleEnergyCheckLocked(at time.Duration) {
	if m.energyCancel != nil && m.energyAt <= at {
		return // an earlier (or equal) check is already scheduled
	}
	if m.energyCancel != nil {
		m.energyCancel.Cancel()
	}
	m.energyAt = at
	delay := at - m.rt.Now()
	if delay < 0 {
		delay = 0
	}
	m.energyCancel = m.rt.After(delay, func() {
		m.mu.Lock()
		m.energyAt = 0
		m.energyCancel = nil
		m.mu.Unlock()
		m.gmEnergyCheck()
	})
}

// gmEnergyCheck suspends LCs that have been idle past the administrator's
// threshold (Section III) and wakes capacity when placements are queued. It
// replaces the former polling tick: journal events (node.idle, node.normal,
// vm.state, lc-join) trigger it, and when it finds idle-but-not-yet-ripe
// nodes it re-arms itself for the exact moment the earliest one ripens — so
// large idle groups cost no periodic tick work at all.
func (m *Manager) gmEnergyCheck() {
	m.mu.Lock()
	if m.role != RoleGM || m.stopped || !m.cfg.EnergyEnabled {
		m.mu.Unlock()
		return
	}
	now := m.rt.Now()
	type target struct {
		addr transport.Address
		id   types.NodeID
	}
	var toSuspend []target
	var nextRipe time.Duration
	for _, lc := range m.lcs {
		if lc.sleeping || lc.waking || lc.busy > 0 || len(lc.status.VMs) > 0 {
			continue
		}
		if lc.status.Power != types.PowerOn || !lc.status.Idle {
			continue
		}
		ripe := time.Duration(lc.status.IdleSince) + m.cfg.IdleThreshold
		if now >= ripe {
			toSuspend = append(toSuspend, target{addr: lc.addr, id: lc.id})
			lc.sleeping = true
			lc.sleepGen = lc.status.Generation
			lc.status.Power = types.PowerSuspended
			continue
		}
		if nextRipe == 0 || ripe < nextRipe {
			nextRipe = ripe
		}
	}
	if len(toSuspend) > 0 {
		m.bumpViewEpochLocked()
	}
	pendingLeft := len(m.pending)
	if pendingLeft > 0 {
		// Queued placements keep a bounded retry heartbeat alive (a wake
		// call may have failed); it stops as soon as the queue drains.
		retry := now + m.cfg.IdleThreshold/2
		if nextRipe == 0 || retry < nextRipe {
			nextRipe = retry
		}
	}
	if nextRipe > 0 {
		m.scheduleEnergyCheckLocked(nextRipe)
	}
	m.mu.Unlock()
	sort.Slice(toSuspend, func(i, j int) bool { return toSuspend[i].id < toSuspend[j].id })
	for _, t := range toSuspend {
		m.mark("gm.suspends", 1)
		sp := m.cfg.Tracer.StartTrace(obs.KindEnergy, telemetry.NodeEntity(t.id))
		sp.Annotate("action", "suspend")
		m.bus.Call(m.cfg.Addr, t.addr, protocol.KindSuspendHost, struct{}{}, m.cfg.CallTimeout,
			func(reply any, err error) {
				if err != nil {
					sp.Finish("failed")
					// Suspend refused (e.g. a VM landed meanwhile) or lost:
					// unmark and arm a re-check. Without it a still-idle node
					// would stay powered forever — its continuing idle
					// reports emit no fresh node.idle (the announcement is
					// latched) and nothing else would retry.
					m.mu.Lock()
					if rec, ok := m.lcs[t.id]; ok {
						rec.sleeping = false
						rec.status.Power = types.PowerOn
						m.bumpViewEpochLocked()
					}
					if m.role == RoleGM && !m.stopped {
						m.scheduleEnergyCheckLocked(m.rt.Now() + m.cfg.IdleThreshold/2)
					}
					m.mu.Unlock()
					return
				}
				sp.Finish("ok")
			})
	}
	if pendingLeft > 0 {
		m.mu.Lock()
		m.wakeOneLocked()
		m.mu.Unlock()
		m.drainPending()
	}
}

// onSweepEvent is the journal observer arming the VM liveness sweep: any
// event that can orphan a vm/* series — a VM lifecycle outcome, an LC
// failing or changing hands, a GM failing mid-handoff — schedules a
// reconciliation one grace period out. Like onEnergyEvent it runs
// synchronously on the publishing goroutine (possibly under m.mu), so it
// only debounces and defers.
func (m *Manager) onSweepEvent(ev telemetry.Event) {
	switch ev.Type {
	case telemetry.EventVMState, telemetry.EventLCFailed, telemetry.EventLCJoin, telemetry.EventGMFailed:
	default:
		return
	}
	if m.sweepKick.CompareAndSwap(false, true) {
		m.rt.After(0, func() {
			m.sweepKick.Store(false)
			m.mu.Lock()
			if m.role == RoleGM && !m.stopped {
				m.scheduleVMSweepLocked(m.rt.Now() + m.cfg.VMLivenessGrace)
			}
			m.mu.Unlock()
		})
	}
}

// scheduleVMSweepLocked arms (or re-arms) the liveness sweep at the absolute
// runtime instant at, keeping only the earliest outstanding deadline.
func (m *Manager) scheduleVMSweepLocked(at time.Duration) {
	if m.sweepCancel != nil && m.sweepAt <= at {
		return // an earlier (or equal) sweep is already scheduled
	}
	if m.sweepCancel != nil {
		m.sweepCancel.Cancel()
	}
	m.sweepAt = at
	delay := at - m.rt.Now()
	if delay < 0 {
		delay = 0
	}
	m.sweepCancel = m.rt.After(delay, func() {
		m.mu.Lock()
		m.sweepAt = 0
		m.sweepCancel = nil
		m.mu.Unlock()
		m.gmVMSweep()
	})
}

// gmVMSweep reconciles the hub's vm/* series against this GM's inventory:
// a series belonging to no known VM whose newest sample is older than the
// grace period is declared vanished — a synthetic terminal vm.state event is
// journaled (which also drops the series, see telemetry.TerminalVMStates)
// and the leak is closed. Series stamped with another GM's owner claim
// (Hub.Claim, set by that GM's monitoring flow) are skipped outright — on a
// shared hub they are that GM's to reconcile. Remaining unknown-but-fresh
// series (typically a handoff still in flight) re-arm the sweep for the
// exact instant the earliest of them could ripen.
func (m *Manager) gmVMSweep() {
	m.mu.Lock()
	if m.role != RoleGM || m.stopped || m.cfg.VMLivenessGrace <= 0 {
		m.mu.Unlock()
		return
	}
	now := m.rt.Now()
	grace := m.cfg.VMLivenessGrace
	known := make(map[types.VMID]bool)
	for _, lc := range m.lcs {
		// rec.vms covers reported inventory (kept across deliberate
		// suspends); status.VMs additionally covers optimistic in-flight
		// placements whose StartVM has not reported back yet.
		for _, vm := range lc.vms {
			known[vm.Spec.ID] = true
		}
		for _, id := range lc.status.VMs {
			known[id] = true
		}
	}
	for _, p := range m.pending {
		known[p.spec.ID] = true
	}
	m.mu.Unlock()

	var reap []string
	var nextRipe time.Duration
	for entity, newest := range m.tel.Store().EntityNewest(telemetry.EntityVMPrefix) {
		id, ok := telemetry.VMIDFromEntity(entity)
		if !ok || known[id] {
			continue
		}
		// GM fencing: on a shared hub, a series stamped with another GM's
		// identity is that GM's to reconcile — skip it outright rather than
		// waiting out its staleness.
		if owner, ok := m.tel.Owner(entity); ok && owner != string(m.cfg.ID) {
			continue
		}
		if ripe := newest + grace; now < ripe {
			if nextRipe == 0 || ripe < nextRipe {
				nextRipe = ripe
			}
			continue
		}
		reap = append(reap, entity)
	}
	sort.Strings(reap)
	if len(reap) > 0 {
		// The terminal state makes the hub forget each entity's series and
		// detector state; the events are the audit trail. A sweep can reap a
		// whole wave at once, so they go through one batched journal append.
		evs := make([]telemetry.Event, len(reap))
		for i, entity := range reap {
			evs[i] = telemetry.Event{At: now, Type: telemetry.EventVMState, Entity: entity,
				Attrs: telemetry.A("state", "vanished", "reason", "liveness-sweep", "gm", string(m.cfg.ID))}
		}
		m.tel.EmitBatch(evs)
		m.mark("gm.vms-vanished", int64(len(reap)))
		m.mark("gm.vm-sweeps", 1)
	}
	if nextRipe > 0 {
		m.mu.Lock()
		if m.role == RoleGM && !m.stopped {
			m.scheduleVMSweepLocked(nextRipe)
		}
		m.mu.Unlock()
	}
}

// gmReconfigTick runs the configured consolidation algorithm over this GM's
// moderately loaded LCs and executes the resulting migration plan —
// the periodic "reconfiguration" policy family of Section II-C.
func (m *Manager) gmReconfigTick() {
	m.mu.Lock()
	if m.role != RoleGM || m.stopped || m.cfg.Reconfig == nil {
		m.mu.Unlock()
		return
	}
	// Epoch gate: nothing moved since the last solve (no monitor ingestion,
	// placement, migration, sleep/wake or membership change bumped the view
	// epoch) means the same problem would be rebuilt and re-solved for the
	// same answer — skip the whole scan.
	if !m.cfg.DisableScanGating && m.lastReconfigEpoch == m.viewEpoch {
		m.mu.Unlock()
		m.mark("gm.reconfig-skipped-unchanged", 1)
		return
	}
	m.lastReconfigEpoch = m.viewEpoch
	// Build the consolidation problem: active, non-busy LCs and their VMs
	// with estimated demand, against residual (not full) node capacity.
	now := m.rt.Now()
	inputs := make([]reconfigNodeInput, 0, len(m.lcs))
	for _, lc := range m.lcs {
		if lc.sleeping || lc.busy > 0 || lc.status.Power != types.PowerOn {
			continue
		}
		inputs = append(inputs, reconfigNodeInput{Status: lc.status, VMs: lc.vms})
	}
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].Status.Spec.ID < inputs[j].Status.Spec.ID })
	problem, current, specs := buildReconfigProblem(inputs, func(vm types.VMStatus) types.ResourceVector {
		return m.estimateVM(now, vm)
	})
	if len(problem.VMs) == 0 || len(problem.Nodes) < 2 {
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()

	result, err := m.cfg.Reconfig.Solve(problem)
	if err != nil {
		return
	}
	plan := consolidation.Plan(current, result.Placement, specs, problem.Nodes)
	if len(plan) == 0 {
		return
	}
	m.mark("gm.reconfig-rounds", 1)
	m.mark("gm.reconfig-migrations", int64(len(plan)))
	moves := make([]scheduling.Move, 0, len(plan))
	for _, mg := range plan {
		moves = append(moves, scheduling.Move{VM: mg.VM, From: mg.From, To: mg.To})
	}
	span := m.cfg.Tracer.StartTrace(obs.KindRelocation, telemetry.GMEntity(m.cfg.ID))
	span.SetPolicy(m.cfg.Reconfig.Name())
	span.Annotate("origin", "reconfig")
	m.mu.Lock()
	m.executeMovesLocked(moves, span.Context())
	m.mu.Unlock()
	span.Finish("executing")
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

var errBadPayload = fmt.Errorf("hierarchy: bad payload type")

// validMonitorReport rejects corrupted monitoring input before it reaches
// the telemetry store, the anomaly detector or the LC bookkeeping:
// NaN/Inf/negative usage vectors and reports stamped in the future (a
// corrupted or replayed sender clock). AtNs 0 means unstamped and is
// accepted for compatibility with senders that do not stamp.
func validMonitorReport(rep protocol.MonitorReport, now time.Duration) bool {
	if rep.AtNs != 0 && time.Duration(rep.AtNs) > now {
		return false
	}
	for _, c := range rep.Status.Used.Components() {
		if !telemetry.ValidSample(c) {
			return false
		}
	}
	for _, vm := range rep.VMs {
		for _, c := range vm.Used.Components() {
			if !telemetry.ValidSample(c) {
				return false
			}
		}
	}
	return true
}

// reconfigNodeInput is one schedulable LC's contribution to the periodic
// consolidation problem.
type reconfigNodeInput struct {
	Status types.NodeStatus
	VMs    []types.VMStatus
}

// buildReconfigProblem assembles the consolidation problem over schedulable
// LCs. Only running VMs are re-packed; every other resident reservation —
// VMs mid-start or suspended, and optimistic in-flight placements — is
// subtracted from its node's capacity, so the solver plans against residual
// room and never produces placements that conflict with residents the plan
// cannot move (the failed-migration storms the full-capacity problem used
// to cause). Each re-packed VM is sized at the componentwise max of its
// reservation and its estimated demand: admission checks reservations,
// while the estimate keeps hot VMs from being packed as if idle.
func buildReconfigProblem(inputs []reconfigNodeInput, estimate func(types.VMStatus) types.ResourceVector) (consolidation.Problem, types.Placement, map[types.VMID]types.VMSpec) {
	var problem consolidation.Problem
	current := types.Placement{}
	specs := map[types.VMID]types.VMSpec{}
	for _, in := range inputs {
		node := in.Status.Spec
		var included types.ResourceVector
		for _, vm := range in.VMs {
			if vm.State != types.VMRunning {
				continue
			}
			spec := vm.Spec
			spec.Requested = vm.Spec.Requested.Max(estimate(vm))
			included = included.Add(vm.Spec.Requested)
			problem.VMs = append(problem.VMs, spec)
			current[vm.Spec.ID] = node.ID
			specs[vm.Spec.ID] = spec
		}
		foreign := in.Status.Reserved.Sub(included).Max(types.ResourceVector{})
		node.Capacity = node.Capacity.Sub(foreign).Max(types.ResourceVector{})
		problem.Nodes = append(problem.Nodes, node)
	}
	return problem, current, specs
}

func vmIDs(specs []types.VMSpec) []types.VMID {
	out := make([]types.VMID, len(specs))
	for i, s := range specs {
		out[i] = s.ID
	}
	return out
}

// vmsRemoved reports whether old contains a VM absent from cur — the silent
// inventory shrink that, without a terminal vm.state event, would leak the
// VM's telemetry series. Per-node VM counts are small; the nested scan is
// cheaper than building sets per report.
func vmsRemoved(old, cur []types.VMStatus) bool {
	for _, o := range old {
		found := false
		for _, c := range cur {
			if c.Spec.ID == o.Spec.ID {
				found = true
				break
			}
		}
		if !found {
			return true
		}
	}
	return false
}

func removeVMID(ids []types.VMID, id types.VMID) []types.VMID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// LCCount returns (active, sleeping) LC counts — experiment instrumentation.
func (m *Manager) LCCount() (active, sleeping int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, lc := range m.lcs {
		if lc.sleeping {
			sleeping++
		} else {
			active++
		}
	}
	return
}

// gmOnShed serves the GL's rebalancing request: release up to Count of this
// GM's LCs back into the hierarchy. Quiet LCs (no VMs, not sleeping or
// mid-migration) are preferred; each released LC gets a rejoin command and
// is dropped from this GM's bookkeeping.
func (m *Manager) gmOnShed(req *transport.Request) {
	sr, ok := req.Payload.(protocol.ShedRequest)
	if !ok {
		req.RespondErr(errBadPayload)
		return
	}
	m.mu.Lock()
	if m.role != RoleGM || m.stopped || sr.Count <= 0 {
		m.mu.Unlock()
		req.Respond(protocol.ShedResponse{})
		return
	}
	type cand struct {
		id   types.NodeID
		addr transport.Address
		vms  int
	}
	var cands []cand
	for _, lc := range m.lcs {
		if lc.sleeping || lc.waking || lc.busy > 0 {
			continue
		}
		cands = append(cands, cand{id: lc.id, addr: lc.addr, vms: len(lc.vms)})
	}
	// Fewest VMs first (their monitoring history is cheapest to lose),
	// then by ID for determinism.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].vms != cands[j].vms {
			return cands[i].vms < cands[j].vms
		}
		return cands[i].id < cands[j].id
	})
	released := 0
	var toNotify []transport.Address
	for _, c := range cands {
		if released >= sr.Count {
			break
		}
		delete(m.lcs, c.id)
		toNotify = append(toNotify, c.addr)
		released++
	}
	if released > 0 {
		m.bumpViewEpochLocked()
	}
	m.mu.Unlock()
	for _, addr := range toNotify {
		m.bus.Call(m.cfg.Addr, addr, protocol.KindRejoin, struct{}{}, m.cfg.CallTimeout, func(any, error) {})
	}
	m.mark("gm.lcs-shed", int64(released))
	req.Respond(protocol.ShedResponse{Released: released})
}

// gmOnLCList serves the deep-topology export: this GM's LC inventory.
func (m *Manager) gmOnLCList(req *transport.Request) {
	m.mu.Lock()
	resp := protocol.LCListResponse{}
	for _, lc := range m.lcs {
		resp.LCs = append(resp.LCs, protocol.TopologyLC{
			ID:       lc.id,
			Power:    lc.status.Power.String(),
			VMs:      len(lc.status.VMs),
			Reserved: lc.status.Reserved,
			Capacity: lc.status.Spec.Capacity,
		})
	}
	m.mu.Unlock()
	sort.Slice(resp.LCs, func(i, j int) bool { return resp.LCs[i].ID < resp.LCs[j].ID })
	req.Respond(resp)
}

// gmOnInventory serves the api/v1 control-plane listing: every managed LC's
// monitored status plus the VMs it hosts, with the hosting node filled in.
// Each LC carries the age of its last monitor report so aggregators can
// discard a stale claim when another GM reports the same LC more freshly.
func (m *Manager) gmOnInventory(req *transport.Request) {
	m.mu.Lock()
	now := m.rt.Now()
	resp := protocol.InventoryResponse{}
	for _, lc := range m.lcs {
		resp.Nodes = append(resp.Nodes, protocol.InventoryNode{
			Status: lc.status,
			AgeNs:  int64(now - lc.lastSeen),
		})
		for _, vm := range lc.vms {
			vm.Node = lc.id
			resp.VMs = append(resp.VMs, vm)
		}
	}
	m.mu.Unlock()
	resp.Scheduling = m.schedulingInfo()
	sort.Slice(resp.Nodes, func(i, j int) bool { return resp.Nodes[i].Status.Spec.ID < resp.Nodes[j].Status.Spec.ID })
	sort.Slice(resp.VMs, func(i, j int) bool { return resp.VMs[i].Spec.ID < resp.VMs[j].Spec.ID })
	req.Respond(resp)
}

// LCBusy exposes the per-LC in-flight migration counters (experiment and
// test instrumentation).
func (m *Manager) LCBusy() map[types.NodeID]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[types.NodeID]int, len(m.lcs))
	for id, lc := range m.lcs {
		if lc.busy != 0 {
			out[id] = lc.busy
		}
	}
	return out
}
