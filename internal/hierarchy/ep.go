package hierarchy

import (
	"errors"
	"sync"
	"time"

	"snooze/internal/protocol"
	"snooze/internal/simkernel"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// EP is an Entry Point: the replicated client-facing component "queried by
// the clients to discover the current GL" (Section II-A). EPs learn the GL
// passively from GL heartbeats on the multicast group.
type EP struct {
	rt       simkernel.Runtime
	bus      *transport.Bus
	addr     transport.Address
	staleAge time.Duration

	mu       sync.Mutex
	glAddr   transport.Address
	epoch    uint64
	lastBeat time.Duration
	started  bool
}

// NewEP creates an entry point. staleAge bounds how old the last GL
// heartbeat may be before the EP reports the GL as unknown.
func NewEP(rt simkernel.Runtime, bus *transport.Bus, addr transport.Address, staleAge time.Duration) *EP {
	if staleAge <= 0 {
		staleAge = 15 * time.Second
	}
	return &EP{rt: rt, bus: bus, addr: addr, staleAge: staleAge}
}

// Addr returns the EP's bus address.
func (ep *EP) Addr() transport.Address { return ep.addr }

// Start registers the EP and subscribes to GL heartbeats.
func (ep *EP) Start() {
	ep.mu.Lock()
	ep.started = true
	ep.mu.Unlock()
	ep.bus.Register(ep.addr, ep.handle)
	ep.bus.JoinGroup(protocol.GroupGL, ep.addr)
}

// Stop removes the EP from the bus.
func (ep *EP) Stop() {
	ep.mu.Lock()
	ep.started = false
	ep.mu.Unlock()
	ep.bus.LeaveGroup(protocol.GroupGL, ep.addr)
	ep.bus.Unregister(ep.addr)
}

// GL returns the EP's current view of the GL ("" if unknown/stale).
func (ep *EP) GL() transport.Address {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.glAddr == "" || ep.rt.Now()-ep.lastBeat > ep.staleAge {
		return ""
	}
	return ep.glAddr
}

func (ep *EP) handle(req *transport.Request) {
	switch req.Kind {
	case protocol.KindGLHeartbeat:
		hb, ok := req.Payload.(protocol.GLHeartbeat)
		if !ok {
			return
		}
		ep.mu.Lock()
		// Epoch ordering protects against a deposed GL whose heartbeats
		// are still in flight.
		if hb.Epoch >= ep.epoch {
			ep.glAddr = transport.Address(hb.Addr)
			ep.epoch = hb.Epoch
			ep.lastBeat = ep.rt.Now()
		}
		ep.mu.Unlock()
	case protocol.KindGLQuery:
		gl := ep.GL()
		req.Respond(protocol.GLQueryResponse{Addr: string(gl), Known: gl != ""})
	default:
		req.RespondErr(errors.New("ep: unknown message kind " + req.Kind))
	}
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

// Client is the user-side helper that discovers the GL through the EPs and
// submits VMs — the programmatic equivalent of the paper's CLI.
type Client struct {
	rt          simkernel.Runtime
	bus         *transport.Bus
	addr        transport.Address
	eps         []transport.Address
	callTimeout time.Duration
}

// NewClient creates a client using the given (replicated) entry points.
func NewClient(rt simkernel.Runtime, bus *transport.Bus, addr transport.Address, eps []transport.Address, callTimeout time.Duration) *Client {
	if callTimeout <= 0 {
		callTimeout = 120 * time.Second
	}
	c := &Client{rt: rt, bus: bus, addr: addr, eps: append([]transport.Address(nil), eps...), callTimeout: callTimeout}
	bus.Register(addr, func(req *transport.Request) {
		req.RespondErr(errors.New("client: unexpected inbound message"))
	})
	return c
}

// ErrNoGL is reported when no entry point knows a live GL.
var ErrNoGL = errors.New("hierarchy: no group leader known to any entry point")

// DiscoverGL queries the EPs in order until one reports a live GL.
func (c *Client) DiscoverGL(cb func(gl transport.Address, err error)) {
	var probe func(i int)
	probe = func(i int) {
		if i >= len(c.eps) {
			cb("", ErrNoGL)
			return
		}
		c.bus.Call(c.addr, c.eps[i], protocol.KindGLQuery, struct{}{}, c.callTimeout, func(reply any, err error) {
			if err == nil {
				if r, ok := reply.(protocol.GLQueryResponse); ok && r.Known {
					cb(transport.Address(r.Addr), nil)
					return
				}
			}
			probe(i + 1)
		})
	}
	probe(0)
}

// Submit discovers the GL and submits the VM batch; cb receives the
// per-VM placement outcome.
func (c *Client) Submit(vms []types.VMSpec, cb func(resp protocol.SubmitResponse, err error)) {
	c.DiscoverGL(func(gl transport.Address, err error) {
		if err != nil {
			cb(protocol.SubmitResponse{}, err)
			return
		}
		c.bus.Call(c.addr, gl, protocol.KindSubmit, protocol.SubmitRequest{VMs: vms}, c.callTimeout,
			func(reply any, err error) {
				if err != nil {
					cb(protocol.SubmitResponse{}, err)
					return
				}
				resp, ok := reply.(protocol.SubmitResponse)
				if !ok {
					cb(protocol.SubmitResponse{}, errors.New("hierarchy: bad submit response"))
					return
				}
				cb(resp, nil)
			})
	})
}

// Topology fetches the hierarchy layout from the GL.
func (c *Client) Topology(cb func(resp protocol.TopologyResponse, err error)) {
	c.topology(protocol.TopologyRequest{}, cb)
}

// TopologyDeep fetches the hierarchy including per-LC detail (the GL fans
// out to every GM).
func (c *Client) TopologyDeep(cb func(resp protocol.TopologyResponse, err error)) {
	c.topology(protocol.TopologyRequest{Deep: true}, cb)
}

func (c *Client) topology(tr protocol.TopologyRequest, cb func(resp protocol.TopologyResponse, err error)) {
	c.DiscoverGL(func(gl transport.Address, err error) {
		if err != nil {
			cb(protocol.TopologyResponse{}, err)
			return
		}
		c.bus.Call(c.addr, gl, protocol.KindTopology, tr, c.callTimeout, func(reply any, err error) {
			if err != nil {
				cb(protocol.TopologyResponse{}, err)
				return
			}
			resp, ok := reply.(protocol.TopologyResponse)
			if !ok {
				cb(protocol.TopologyResponse{}, errors.New("hierarchy: bad topology response"))
				return
			}
			cb(resp, nil)
		})
	})
}
