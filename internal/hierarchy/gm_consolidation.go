package hierarchy

import (
	"fmt"
	"sort"
	"time"

	"snooze/internal/consolidation/online"
	"snooze/internal/protocol"
	"snooze/internal/telemetry"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// This file adapts the Manager's GM role to the online consolidation
// optimizer (internal/consolidation/online): the Host implementation the
// optimizer plans and executes through, plus the control surface the
// gm.consolidation protocol message and the api/v1 backends use.

// optimizerLocked lazily creates the optimizer (not started) so the control
// surface can report and start it even when Consolidation.Enabled is off.
func (m *Manager) optimizerLocked() *online.Optimizer {
	if m.optimizer == nil {
		cfg := m.cfg.Consolidation
		cfg.Tracer = m.cfg.Tracer
		m.optimizer = online.New(m.rt, gmHost{m}, cfg)
	}
	return m.optimizer
}

// ConsolidationStatus reports the online optimizer's state; ok is false when
// this manager is not currently in the GM role.
func (m *Manager) ConsolidationStatus() (online.Status, bool) {
	return m.consolidationCtl(protocol.ConsolidationStatus)
}

// StartConsolidation starts the online optimizer (idempotent); ok is false
// when this manager is not currently in the GM role.
func (m *Manager) StartConsolidation() (online.Status, bool) {
	return m.consolidationCtl(protocol.ConsolidationStart)
}

// StopConsolidation stops the online optimizer and abandons any in-flight
// plan; ok is false when this manager is not currently in the GM role.
func (m *Manager) StopConsolidation() (online.Status, bool) {
	return m.consolidationCtl(protocol.ConsolidationStop)
}

func (m *Manager) consolidationCtl(action string) (online.Status, bool) {
	m.mu.Lock()
	if m.role != RoleGM || m.stopped {
		m.mu.Unlock()
		return online.Status{}, false
	}
	opt := m.optimizerLocked()
	m.mu.Unlock()
	switch action {
	case protocol.ConsolidationStart:
		opt.Start()
	case protocol.ConsolidationStop:
		opt.Stop()
	}
	return opt.Status(), true
}

// gmOnConsolidation serves the gm.consolidation control message.
func (m *Manager) gmOnConsolidation(req *transport.Request) {
	cr, ok := req.Payload.(protocol.ConsolidationCtlRequest)
	if !ok {
		req.RespondErr(errBadPayload)
		return
	}
	action := cr.Action
	if action == "" {
		action = protocol.ConsolidationStatus
	}
	switch action {
	case protocol.ConsolidationStatus, protocol.ConsolidationStart, protocol.ConsolidationStop:
	default:
		req.RespondErr(fmt.Errorf("manager %s: unknown consolidation action %q", m.cfg.ID, cr.Action))
		return
	}
	st, active := m.consolidationCtl(action)
	if !active {
		req.RespondErr(fmt.Errorf("manager %s: not in the GM role", m.cfg.ID))
		return
	}
	resp := protocol.ConsolidationCtlResponse{
		GM:         m.cfg.ID,
		Running:    st.Running,
		InRound:    st.InRound,
		Rounds:     st.Rounds,
		Migrations: st.Migrations,
		Cancels:    st.Cancels,
		Failures:   st.Failures,
		Budget:     st.Budget,
		PeriodNs:   int64(st.Period),
	}
	if st.LastRound != nil {
		lr := *st.LastRound
		resp.LastRound = &protocol.ConsolidationRound{
			Round:       lr.Round,
			AtNs:        int64(lr.At),
			HostsBefore: lr.HostsBefore,
			HostsAfter:  lr.HostsAfter,
			Planned:     lr.Planned,
			Executed:    lr.Executed,
			Failed:      lr.Failed,
			Cancelled:   lr.Cancelled,
		}
	}
	req.Respond(resp)
}

// gmHost adapts the Manager to the optimizer's Host interface. None of its
// methods are called with the optimizer's lock held (the optimizer's
// documented invariant), so they may take m.mu freely.
type gmHost struct{ m *Manager }

// ConsolidationSnapshot implements online.Host: the schedulable LCs with
// their view statistics, and every running VM priced at its p95 windowed
// demand (snapshot fallback).
func (h gmHost) ConsolidationSnapshot() (online.Snapshot, bool) {
	m := h.m
	m.mu.Lock()
	if m.role != RoleGM || m.stopped {
		m.mu.Unlock()
		return online.Snapshot{}, false
	}
	now := m.rt.Now()
	snap := online.Snapshot{Now: now}
	if !m.cfg.DisableScanGating {
		snap.Epoch = m.viewEpoch // zero disables the optimizer's epoch gate
	}
	for _, lc := range m.lcs {
		if lc.sleeping || lc.busy > 0 || lc.status.Power != types.PowerOn {
			continue
		}
		v := m.views.Node(now, lc.status)
		snap.Nodes = append(snap.Nodes, online.NodeLoad{
			Spec:  lc.status.Spec,
			P95:   v.Stats.P95,
			Trend: v.Stats.Trend,
			Fresh: v.Stats.Fresh,
		})
		for _, vm := range lc.vms {
			if vm.State != types.VMRunning {
				continue
			}
			snap.VMs = append(snap.VMs, online.VMDemand{
				Spec:   vm.Spec,
				Node:   lc.id,
				Demand: m.consolidationDemandLocked(now, vm),
			})
		}
	}
	m.mu.Unlock()
	sort.Slice(snap.Nodes, func(i, j int) bool { return snap.Nodes[i].Spec.ID < snap.Nodes[j].Spec.ID })
	sort.Slice(snap.VMs, func(i, j int) bool { return snap.VMs[i].Spec.ID < snap.VMs[j].Spec.ID })
	return snap, true
}

// consolidationDemandLocked prices one VM for consolidation through the
// shared view helper (p95 windowed demand, snapshot fallback, then the
// reservation) — the same chain the demand=p95 API dry run uses.
func (m *Manager) consolidationDemandLocked(now time.Duration, vm types.VMStatus) types.ResourceVector {
	return m.views.ConsolidationDemand(now, vm)
}

// NodeLoad implements online.Host: a fresh view of one node for
// pre-migration re-validation.
func (h gmHost) NodeLoad(id types.NodeID) (online.NodeLoad, bool) {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	lc, ok := m.lcs[id]
	if !ok || lc.sleeping || lc.busy > 0 || lc.status.Power != types.PowerOn {
		return online.NodeLoad{}, false
	}
	v := m.views.Node(m.rt.Now(), lc.status)
	return online.NodeLoad{
		Spec:  lc.status.Spec,
		P95:   v.Stats.P95,
		Trend: v.Stats.Trend,
		Fresh: v.Stats.Fresh,
	}, true
}

// Migrate implements online.Host via the Manager's migration primitive.
func (h gmHost) Migrate(mig types.Migration, done func(ok bool)) {
	m := h.m
	m.mu.Lock()
	if m.role != RoleGM || m.stopped {
		m.mu.Unlock()
		m.rt.After(0, func() { done(false) })
		return
	}
	m.migrateVMLocked(mig, done)
	m.mu.Unlock()
}

// Emit implements online.Host. The online optimizer's event rate is one per
// round plus one per migration, so adopting the map via AttrsFromMap (rather
// than widening the Host interface to the telemetry type) costs nothing.
func (h gmHost) Emit(typ, entity string, attrs map[string]string) {
	h.m.emit(typ, entity, telemetry.AttrsFromMap(attrs))
}

// Mark implements online.Host.
func (h gmHost) Mark(name string, delta int64) { h.m.mark(name, delta) }
