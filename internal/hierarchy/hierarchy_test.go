package hierarchy

import (
	"testing"
	"time"

	"snooze/internal/coord"
	"snooze/internal/hypervisor"
	"snooze/internal/protocol"
	"snooze/internal/simkernel"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// rig is a minimal handcrafted environment: kernel, bus, coord, and helpers.
type rig struct {
	k     *simkernel.Kernel
	bus   *transport.Bus
	svc   *coord.Service
	nodes map[types.NodeID]*hypervisor.Node
}

func newRig(seed int64) *rig {
	k := simkernel.New(seed)
	return &rig{
		k:     k,
		bus:   transport.NewBus(k, transport.Config{Latency: time.Millisecond, Seed: seed}),
		svc:   coord.NewService(k),
		nodes: make(map[types.NodeID]*hypervisor.Node),
	}
}

func (r *rig) node(id string) *hypervisor.Node {
	n := hypervisor.NewNode(r.k, types.NodeSpec{ID: types.NodeID(id), Capacity: types.RV(8, 16384, 1000, 1000)}, hypervisor.DefaultConfig())
	r.nodes[types.NodeID(id)] = n
	return n
}

func (r *rig) lc(id string) *LC {
	n := r.node(id)
	lc := NewLC(r.k, r.bus, n, transport.Address("lc:"+id), func(nid types.NodeID) (*hypervisor.Node, bool) {
		nn, ok := r.nodes[nid]
		return nn, ok
	}, DefaultLCConfig())
	lc.Start()
	return lc
}

func (r *rig) manager(id string) *Manager {
	cfg := DefaultManagerConfig(types.GroupManagerID(id), transport.Address("mgr:"+id))
	m := NewManager(r.k, r.bus, r.svc, cfg)
	if err := m.Start(); err != nil {
		panic(err)
	}
	return m
}

func (r *rig) settle(d time.Duration) { r.k.Run(r.k.Now() + d) }

func TestSingleManagerBecomesGL(t *testing.T) {
	r := newRig(1)
	m := r.manager("m0")
	r.settle(10 * time.Second)
	if m.Role() != RoleGL {
		t.Fatalf("role: %v", m.Role())
	}
}

func TestSecondManagerBecomesGM(t *testing.T) {
	r := newRig(2)
	m0 := r.manager("m0")
	r.settle(5 * time.Second)
	m1 := r.manager("m1")
	r.settle(20 * time.Second)
	if m0.Role() != RoleGL || m1.Role() != RoleGM {
		t.Fatalf("roles: %v %v", m0.Role(), m1.Role())
	}
	if m0.GMCount() != 1 {
		t.Fatalf("GL sees %d GMs", m0.GMCount())
	}
}

func TestLCJoinsViaGLHeartbeat(t *testing.T) {
	r := newRig(3)
	r.manager("m0")
	m1 := r.manager("m1")
	lc := r.lc("n1")
	r.settle(30 * time.Second)
	if lc.GM() != m1.Addr() {
		t.Fatalf("LC assigned to %q, want %q", lc.GM(), m1.Addr())
	}
	if lc.Rejoins() != 1 {
		t.Fatalf("rejoins: %d", lc.Rejoins())
	}
	active, _ := m1.LCCount()
	if active != 1 {
		t.Fatalf("GM LC count: %d", active)
	}
}

func TestLCRejoinsAfterGMCrash(t *testing.T) {
	r := newRig(4)
	r.manager("m0")
	m1 := r.manager("m1")
	m2 := r.manager("m2")
	lc := r.lc("n1")
	r.settle(30 * time.Second)
	victim := m1
	other := m2
	if lc.GM() == m2.Addr() {
		victim, other = m2, m1
	}
	victim.Crash()
	r.settle(60 * time.Second)
	if lc.GM() != other.Addr() {
		t.Fatalf("LC on %q after crash, want %q", lc.GM(), other.Addr())
	}
	if lc.Rejoins() != 2 {
		t.Fatalf("rejoins: %d", lc.Rejoins())
	}
}

func TestPromotedGMShedsLCs(t *testing.T) {
	r := newRig(5)
	m0 := r.manager("m0")
	m1 := r.manager("m1")
	lc := r.lc("n1")
	r.settle(30 * time.Second)
	if lc.GM() != m1.Addr() {
		t.Fatalf("fixture: LC on %q", lc.GM())
	}
	// Crash the GL; m1 is promoted and must shed its LC, which re-joins m1?
	// No — with no other manager, the LC re-joins the new GL's... there is
	// no GM left, so the LC stays unassigned. That matches the paper: a
	// one-manager system cannot serve (GL does not host VMs).
	m0.Crash()
	r.settle(60 * time.Second)
	if m1.Role() != RoleGL {
		t.Fatalf("m1 role: %v", m1.Role())
	}
	active, sleeping := m1.LCCount()
	if active+sleeping != 0 {
		t.Fatalf("promoted GL still manages %d LCs", active+sleeping)
	}
	if lc.GM() != "" {
		t.Fatalf("LC still assigned to %q", lc.GM())
	}
}

func TestEPLearnsGLAndAnswersQueries(t *testing.T) {
	r := newRig(6)
	m := r.manager("m0")
	ep := NewEP(r.k, r.bus, "ep:0", 0)
	ep.Start()
	r.settle(10 * time.Second)
	if ep.GL() != m.Addr() {
		t.Fatalf("EP GL: %q", ep.GL())
	}
	var resp protocol.GLQueryResponse
	r.bus.Call("test", "ep:0", protocol.KindGLQuery, struct{}{}, time.Second, func(reply any, err error) {
		if err == nil {
			resp = reply.(protocol.GLQueryResponse)
		}
	})
	r.settle(time.Second)
	if !resp.Known || resp.Addr != string(m.Addr()) {
		t.Fatalf("query response: %+v", resp)
	}
}

func TestEPReportsStaleGL(t *testing.T) {
	r := newRig(7)
	m := r.manager("m0")
	ep := NewEP(r.k, r.bus, "ep:0", 5*time.Second)
	ep.Start()
	r.settle(10 * time.Second)
	if ep.GL() == "" {
		t.Fatal("EP should know the GL")
	}
	m.Crash()
	r.settle(30 * time.Second) // heartbeats stop; view goes stale
	if ep.GL() != "" {
		t.Fatalf("EP still reports %q after GL death", ep.GL())
	}
}

func TestClientDiscoverGLFallsBackAcrossEPs(t *testing.T) {
	r := newRig(8)
	m := r.manager("m0")
	epDead := NewEP(r.k, r.bus, "ep:dead", 0) // never started: unreachable
	_ = epDead
	epLive := NewEP(r.k, r.bus, "ep:live", 0)
	epLive.Start()
	r.settle(10 * time.Second)
	client := NewClient(r.k, r.bus, "client:t", []transport.Address{"ep:dead", "ep:live"}, 5*time.Second)
	var got transport.Address
	var gotErr error
	client.DiscoverGL(func(gl transport.Address, err error) { got, gotErr = gl, err })
	r.settle(30 * time.Second)
	if gotErr != nil || got != m.Addr() {
		t.Fatalf("discover: %q %v", got, gotErr)
	}
}

func TestClientNoGL(t *testing.T) {
	r := newRig(9)
	ep := NewEP(r.k, r.bus, "ep:0", 0)
	ep.Start()
	client := NewClient(r.k, r.bus, "client:t", []transport.Address{"ep:0"}, 2*time.Second)
	var gotErr error
	done := false
	client.Submit([]types.VMSpec{{ID: "v", Requested: types.RV(1, 1, 1, 1)}},
		func(_ protocol.SubmitResponse, err error) { gotErr, done = err, true })
	r.settle(time.Minute)
	if !done || gotErr != ErrNoGL {
		t.Fatalf("submit without GL: done=%v err=%v", done, gotErr)
	}
}

func TestLCCommandHandlers(t *testing.T) {
	r := newRig(10)
	r.manager("m0")
	m1 := r.manager("m1")
	_ = m1
	lc := r.lc("n1")
	r.lc("n2")
	r.settle(30 * time.Second)

	// StartVM via bus.
	spec := types.VMSpec{ID: "v1", Requested: types.RV(2, 2048, 10, 10)}
	var start protocol.StartVMResponse
	r.bus.Call("test", lc.Addr(), protocol.KindStartVM, protocol.StartVMRequest{Spec: spec}, time.Second,
		func(reply any, err error) {
			if err == nil {
				start = reply.(protocol.StartVMResponse)
			}
		})
	r.settle(5 * time.Second)
	if !start.OK {
		t.Fatalf("start: %+v", start)
	}
	if !r.nodes["n1"].HasVM("v1") {
		t.Fatal("VM missing after start")
	}

	// Duplicate start reports the hypervisor error in-band.
	var dup protocol.StartVMResponse
	r.bus.Call("test", lc.Addr(), protocol.KindStartVM, protocol.StartVMRequest{Spec: spec}, time.Second,
		func(reply any, err error) {
			if err == nil {
				dup = reply.(protocol.StartVMResponse)
			}
		})
	r.settle(time.Second)
	if dup.OK || dup.Error == "" {
		t.Fatalf("dup start: %+v", dup)
	}

	// Migrate to n2.
	var mig protocol.MigrateVMResponse
	r.bus.Call("test", lc.Addr(), protocol.KindMigrateVM,
		protocol.MigrateVMRequest{VM: "v1", DestNode: "n2", DestAddr: "lc:n2"}, time.Minute,
		func(reply any, err error) {
			if err == nil {
				mig = reply.(protocol.MigrateVMResponse)
			}
		})
	r.settle(time.Minute)
	if !mig.OK {
		t.Fatalf("migrate: %+v", mig)
	}
	if !r.nodes["n2"].HasVM("v1") || r.nodes["n1"].HasVM("v1") {
		t.Fatal("migration did not move the VM")
	}

	// Stop.
	stopped := false
	r.bus.Call("test", lc.Addr(), protocol.KindStopVM, protocol.StopVMRequest{VM: "v1"}, time.Second,
		func(_ any, err error) { stopped = err == nil })
	// v1 is on n2 now; stopping via n1's LC must fail.
	r.settle(time.Second)
	if stopped {
		t.Fatal("stop on wrong LC succeeded")
	}
}

func TestMigrateUnknownDestination(t *testing.T) {
	r := newRig(11)
	r.manager("m0")
	r.manager("m1")
	lc := r.lc("n1")
	r.settle(30 * time.Second)
	spec := types.VMSpec{ID: "v1", Requested: types.RV(2, 2048, 10, 10)}
	r.nodes["n1"].StartVM(spec)
	r.settle(5 * time.Second)
	var mig protocol.MigrateVMResponse
	r.bus.Call("test", lc.Addr(), protocol.KindMigrateVM,
		protocol.MigrateVMRequest{VM: "v1", DestNode: "ghost", DestAddr: "lc:ghost"}, time.Minute,
		func(reply any, err error) {
			if err == nil {
				mig = reply.(protocol.MigrateVMResponse)
			}
		})
	r.settle(time.Minute)
	if mig.OK || mig.Error == "" {
		t.Fatalf("migrate to ghost: %+v", mig)
	}
}

func TestOOBWakeIdempotent(t *testing.T) {
	r := newRig(12)
	r.manager("m0")
	r.manager("m1")
	lc := r.lc("n1")
	r.settle(20 * time.Second)
	// Wake while already on → treated as success.
	okReply := false
	r.bus.Call("test", OOBAddress(lc.Addr()), protocol.KindWakeHost, struct{}{}, time.Second,
		func(_ any, err error) { okReply = err == nil })
	r.settle(time.Second)
	if !okReply {
		t.Fatal("wake-while-on should be idempotent success")
	}
}

func TestRoleString(t *testing.T) {
	if RoleIdle.String() != "idle" || RoleGM.String() != "GM" || RoleGL.String() != "GL" {
		t.Fatal("role strings")
	}
}

func TestManagerStopIsClean(t *testing.T) {
	r := newRig(13)
	m0 := r.manager("m0")
	m1 := r.manager("m1")
	r.settle(20 * time.Second)
	m1.Stop() // graceful resign
	r.settle(20 * time.Second)
	if m0.Role() != RoleGL {
		t.Fatalf("GL role after GM stop: %v", m0.Role())
	}
	// Graceful stop of the GL hands leadership over instantly (session
	// close, no TTL wait).
	m2 := r.manager("m2")
	r.settle(20 * time.Second)
	m0.Stop()
	r.settle(5 * time.Second)
	if m2.Role() != RoleGL {
		t.Fatalf("m2 role after GL stop: %v", m2.Role())
	}
}
