package hierarchy

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snooze/internal/consolidation"
	"snooze/internal/consolidation/online"
	"snooze/internal/coord"
	"snooze/internal/election"
	"snooze/internal/metrics"
	"snooze/internal/obs"
	"snooze/internal/protocol"
	"snooze/internal/resource"
	"snooze/internal/scheduling"
	"snooze/internal/scheduling/view"
	"snooze/internal/simkernel"
	"snooze/internal/telemetry"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// Role is a Manager's current hierarchy role.
type Role int

// Manager roles. The paper's self-organization promotes a GM to GL
// dynamically during leader election (Section II-D); there is no statically
// configured leader.
const (
	RoleIdle Role = iota
	RoleGM
	RoleGL
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleIdle:
		return "idle"
	case RoleGM:
		return "GM"
	case RoleGL:
		return "GL"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// ManagerConfig parameterizes a Manager (GM/GL process).
type ManagerConfig struct {
	ID   types.GroupManagerID
	Addr transport.Address

	// Timers.
	HeartbeatPeriod time.Duration // GM→LC group and GL→GroupGL heartbeats
	SummaryPeriod   time.Duration // GM→GL summary push
	LCTimeout       time.Duration // declare LC dead (Section II-E)
	GMTimeout       time.Duration // GL declares GM dead
	CallTimeout     time.Duration // placement probe RPCs
	SessionTTL      time.Duration // election session TTL (failure detection)

	// Policies (Section II-C).
	Dispatch  scheduling.DispatchPolicy
	Placement scheduling.PlacementPolicy
	Overload  scheduling.RelocationPolicy
	Underload scheduling.RelocationPolicy

	// DispatchBatch is the largest number of a submission's VMs the GL
	// coalesces into one PlaceRequest per candidate GM. Values above 1 enable
	// batched dispatch: the GL ranks every queued VM against the group views
	// once, groups the VMs by first-choice GM and probes each GM with a
	// single multi-VM request, falling back to the per-VM linear probe only
	// for the VMs a batch left unplaced. <=1 keeps the paper-faithful
	// sequential dispatch, whose submission time scales with the batch size
	// (experiment E1).
	DispatchBatch int

	// AdmissionOrder selects how batched dispatch orders a submission's VMs
	// before grouping them by first-choice GM: AdmissionFFD (the default)
	// ranks largest-first so the placement order packs first-fit-decreasing;
	// AdmissionArrival preserves the submission order, reproducing the
	// paper's arrival-order admission inside the batched fast path. Both
	// orders place identical resource totals when capacity suffices; under
	// overcommit they admit different VM sets (see dispatchBatch). Ignored
	// when DispatchBatch <= 1.
	AdmissionOrder string

	// RollupInterval debounces the GM-level rollup series: on monitor
	// ingestion, at most once per interval, the GM aggregates its LC records
	// (summaryLocked) and appends the gm/<id> series itself — so the group
	// capacity views the GL's dispatch consumes are fed at monitoring cadence
	// instead of the slower GM→GL summary push. 0 selects HeartbeatPeriod;
	// negative disables rollups and restores summary-fed group series only.
	RollupInterval time.Duration

	// DisableScanGating turns off the group-wide view-epoch gates: the
	// memoized activeViews build, the reconfiguration tick's skip-unchanged
	// check and the online optimizer's epoch gate all re-run from scratch on
	// every invocation. The default (false) keeps the gates on; the knob
	// exists for A/B measurement (BenchmarkFleetRelocationScan) and for
	// operators who want every scan recomputed regardless of churn.
	DisableScanGating bool

	// Demand estimation (Section II-B). Estimates are computed over the
	// telemetry store's retained per-VM series (see view.Builder.Demand);
	// the estimator reduces the windowed samples to one demand vector.
	Estimator resource.Estimator

	// Capacity views: every scheduling decision consumes views built from
	// the Telemetry hub over this window. Thin or stale histories fall back
	// to the point-in-time snapshot inside the policies.
	ViewHorizon    time.Duration // statistics window (default view.DefaultHorizon)
	ViewMinSamples int           // freshness gate (default view.DefaultMinSamples)
	ViewMaxAge     time.Duration // freshness gate (default view.DefaultMaxAge)

	// Energy management (Section III).
	EnergyEnabled  bool
	IdleThreshold  time.Duration // idle time before suspend
	PendingTimeout time.Duration // how long a placement may wait for a wake

	// Reconfiguration (periodic consolidation, Section II-C). Nil disables.
	Reconfig       consolidation.Algorithm
	ReconfigPeriod time.Duration

	// Consolidation configures the continuous online consolidation service
	// (internal/consolidation/online): with Enabled set, every GM stint runs
	// an Optimizer that periodically re-packs the group's VMs from p95
	// capacity views within a per-round migration budget. Whether or not
	// Enabled is set, the optimizer can be started and stopped at runtime
	// via the gm.consolidation control message (api/v1 consolidation
	// routes).
	Consolidation online.Config

	// RescheduleOnLCFailure re-places the VMs of a failed LC on the
	// surviving LCs (the hypervisor-snapshot recovery of Section II-E).
	RescheduleOnLCFailure bool

	// StateSyncPeriod paces the GM's state replication push to the GL
	// (KindStateSync): a snapshot of the GM's owned telemetry plus the
	// journal segment since the previous push. The GL archives the state so
	// a successor GM can rebuild its hub after a failure (snapshot + journal
	// replay) instead of starting from empty, stale capacity views.
	// 0 is automatic: defaultStateSyncPeriod when this manager owns a
	// private hub (no ManagerConfig.Telemetry supplied — the topology where
	// a GM crash actually loses state), disabled on a shared hub where the
	// successor reads the same store and replication would be pure
	// overhead. Positive forces that period regardless of hub topology;
	// negative disables replication.
	StateSyncPeriod time.Duration

	// MigrationRetries bounds how many times one migration is attempted
	// before the GM gives up (journaling gm.migration-abandoned). The retry
	// loop is shared by relocation, reconfiguration and the online
	// consolidation optimizer — everything funnelling through the migration
	// primitive. <=0 means a single attempt (no retries); the default is 3
	// attempts total.
	MigrationRetries int

	// MigrationBackoff is the base delay before a migration retry; attempt n
	// waits base<<(n-1) plus a deterministic jitter hashed from the VM ID and
	// attempt number (no shared random state, so retry schedules are
	// reproducible in simulation). Default 500ms.
	MigrationBackoff time.Duration

	// VMLivenessGrace drives the GM's deployment-level VM liveness sweep:
	// a vm/* series whose VM is absent from this GM's inventory AND has not
	// recorded a sample for this long is declared vanished — the GM journals
	// a synthetic terminal vm.state event and drops the series, closing the
	// leak left by VMs that disappear without any terminal event (migration
	// races, LC crashes mid-handoff). The sweep is journal-armed, not
	// polled: lifecycle/membership events and inventory shrinkage schedule
	// exact-deadline checks. 0 selects 4 × LCTimeout; negative disables.
	// The staleness requirement makes the sweep safe on a hub shared by
	// several GMs: a VM alive under another GM keeps appending samples and
	// is never stale, while a VM on a deliberately suspended LC stays in
	// its GM's inventory.
	VMLivenessGrace time.Duration

	// ElectionBase is the coordination path of the GL election.
	ElectionBase string

	// Metrics receives counters and latency series (may be nil).
	Metrics *metrics.Registry

	// Tracer records decision traces for dispatch, placement, relocation,
	// migration, energy and consolidation actions (nil disables tracing;
	// every instrumentation site is a no-op then).
	Tracer *obs.Tracer

	// Telemetry is the deployment-wide telemetry hub: monitoring reports and
	// group summaries feed its time-series store, membership changes and the
	// anomaly detector feed its event journal, and the GM runs relocation off
	// the detector's node.overload / node.underload events. Nil creates a
	// private hub with default thresholds, so Manager behaviour does not
	// depend on wiring.
	Telemetry *telemetry.Hub

	// Retention sizes the private hub's series store (raw ring capacity and
	// downsampled tier ladder) when Telemetry is nil; a wired hub carries
	// its own store configuration.
	Retention telemetry.StoreConfig
}

// DefaultManagerConfig returns the configuration used by the experiments.
func DefaultManagerConfig(id types.GroupManagerID, addr transport.Address) ManagerConfig {
	return ManagerConfig{
		ID:               id,
		Addr:             addr,
		HeartbeatPeriod:  2 * time.Second,
		SummaryPeriod:    4 * time.Second,
		LCTimeout:        12 * time.Second,
		GMTimeout:        12 * time.Second,
		CallTimeout:      90 * time.Second,
		SessionTTL:       6 * time.Second,
		Dispatch:         &scheduling.RoundRobinDispatch{},
		Placement:        scheduling.FirstFit{},
		Overload:         scheduling.OverloadRelocation{},
		Underload:        scheduling.UnderloadRelocation{},
		Estimator:        resource.LastValue{},
		EnergyEnabled:    false,
		IdleThreshold:    30 * time.Second,
		PendingTimeout:   60 * time.Second,
		ReconfigPeriod:   0,
		ElectionBase:     "/snooze/election",
		MigrationRetries: 3,
		MigrationBackoff: 500 * time.Millisecond,
	}
}

// lcRecord is the GM's view of one Local Controller.
type lcRecord struct {
	id       types.NodeID
	addr     transport.Address
	oob      transport.Address
	status   types.NodeStatus
	vms      []types.VMStatus
	lastSeen time.Duration
	sleeping bool   // suspended by the energy manager (deliberate, not a failure)
	sleepGen uint64 // node generation when suspend was ordered; fences stale reports
	waking   bool
	busy     int // in-flight migrations involving this LC
	// idleAnnounced tracks whether the current idle stretch has already
	// produced a node.idle journal event (reset by any non-idle report), so
	// the event-driven energy manager sees each idle transition exactly once.
	idleAnnounced bool
}

// AdmissionOrder values (ManagerConfig.AdmissionOrder).
const (
	// AdmissionFFD ranks a dispatch batch largest-first (first-fit-decreasing).
	AdmissionFFD = "ffd"
	// AdmissionArrival keeps the submission's arrival order.
	AdmissionArrival = "arrival"
)

// gmRecord is the GL's view of one Group Manager. scheduling is the policy
// configuration the GM itself reported in its summary pushes (nil until the
// first push carrying one arrives).
type gmRecord struct {
	id         types.GroupManagerID
	addr       transport.Address
	summary    types.GroupSummary
	scheduling *protocol.SchedulingInfo
	lastSeen   time.Duration
}

// pendingPlacement is a VM waiting for capacity (typically a wake).
type pendingPlacement struct {
	spec     types.VMSpec
	deadline time.Duration
	respond  func(node types.NodeID, ok bool)
	// trace is the originating dispatch's span context, so the retried
	// placement joins the submit chain when it finally runs.
	trace obs.SpanContext
}

// Manager is one GM/GL process. It enrolls in the GL election at Start; the
// election outcome selects which role's state machine is active.
type Manager struct {
	rt    simkernel.Runtime
	bus   *transport.Bus
	cfg   ManagerConfig
	tel   *telemetry.Hub
	views view.Builder
	cand  *election.Candidate

	mu   sync.Mutex
	role Role
	// GM state.
	glAddr  transport.Address
	joined  bool
	lcs     map[types.NodeID]*lcRecord
	pending []pendingPlacement
	// Event-driven energy management (GM role): the journal observer's
	// cancel hook, the target time of the earliest scheduled idle check and
	// its canceler.
	energyUnsub  func()
	energyAt     time.Duration
	energyCancel simkernel.Canceler
	// VM liveness sweep (GM role): same shape as the energy machinery — a
	// journal observer arms exact-deadline sweeps.
	sweepUnsub  func()
	sweepAt     time.Duration
	sweepCancel simkernel.Canceler
	// optimizer is the online consolidation service (GM role), created
	// lazily and reused across GM stints. The optimizer never holds its own
	// lock while calling back into the Manager, so m.mu → optimizer-lock is
	// the only ordering.
	optimizer *online.Optimizer
	// GL state.
	gms   map[types.GroupManagerID]*gmRecord
	epoch uint64

	tickers []*simkernel.Ticker
	stopped bool

	// energyKick debounces observer-triggered idle checks. It lives outside
	// mu because journal observers run synchronously on the publishing
	// goroutine, which may hold mu.
	energyKick atomic.Bool
	// sweepKick debounces observer-triggered liveness-sweep arming, for the
	// same reason.
	sweepKick atomic.Bool

	// lastRollup is the virtual time of the last GM rollup append (GM role,
	// under mu); 0 means none yet this stint.
	lastRollup time.Duration

	// privateHub records that this manager created its own telemetry hub
	// (no ManagerConfig.Telemetry supplied): the topology where a crash
	// loses the hub, which is what turns automatic state sync on.
	privateHub bool

	// lastSyncSeq is the journal sequence through which state-sync pushes
	// have already shipped events to the GL (GM role, under mu); reset at
	// each stint start so a new GL receives the full retained tail.
	lastSyncSeq uint64

	// archMu guards archives, the GL-side per-GM telemetry archive fed by
	// KindStateSync pushes; it is served to a rejoining GM (RecoveryFetch)
	// and pushed to the survivors when the sweep declares a GM dead
	// (StateRestore). A separate lock keeps the archive copies off m.mu.
	archMu   sync.Mutex
	archives map[types.GroupManagerID]*gmArchive

	// viewEpoch is the GM-wide cache epoch (under mu): the O(1) group-level
	// stand-in for "max of the member series' Store.Generations", bumped by
	// every state change that can alter the capacity views the GM schedules
	// over — monitor ingestion (member appends), optimistic reservations and
	// their rollbacks, migrations, sleep/wake transitions, membership churn.
	// viewMemo keys whole []view.Node builds on it, and the relocation /
	// consolidation scans skip outright when it has not moved.
	viewEpoch uint64
	viewMemo  view.Memo
	// lastReconfigEpoch fences gmReconfigTick: a tick finding the epoch
	// unchanged since the last solve skips the whole consolidation scan.
	lastReconfigEpoch uint64
}

// bumpViewEpochLocked advances the GM-wide view epoch; m.mu must be held.
func (m *Manager) bumpViewEpochLocked() { m.viewEpoch++ }

// ViewEpoch returns the current GM-wide view epoch (instrumentation/tests).
func (m *Manager) ViewEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewEpoch
}

// ViewMemoCounters returns the lifetime hit/miss counts of the memoized
// whole-group view builds (instrumentation/tests).
func (m *Manager) ViewMemoCounters() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewMemo.Counters()
}

// rollupEvery resolves the effective rollup debounce interval (0 = rollups
// disabled): RollupInterval, defaulting to HeartbeatPeriod.
func (m *Manager) rollupEvery() time.Duration {
	if m.cfg.RollupInterval < 0 {
		return 0
	}
	if m.cfg.RollupInterval == 0 {
		return m.cfg.HeartbeatPeriod
	}
	return m.cfg.RollupInterval
}

// NewManager creates a Manager. svc is the coordination service used for
// leader election.
func NewManager(rt simkernel.Runtime, bus *transport.Bus, svc *coord.Service, cfg ManagerConfig) *Manager {
	if cfg.Dispatch == nil {
		cfg.Dispatch = &scheduling.RoundRobinDispatch{}
	}
	if cfg.Placement == nil {
		cfg.Placement = scheduling.FirstFit{}
	}
	if cfg.Overload == nil {
		cfg.Overload = scheduling.OverloadRelocation{}
	}
	if cfg.Underload == nil {
		cfg.Underload = scheduling.UnderloadRelocation{}
	}
	if cfg.Estimator == nil {
		cfg.Estimator = resource.LastValue{}
	}
	if cfg.ViewHorizon <= 0 {
		cfg.ViewHorizon = view.DefaultHorizon
	}
	if cfg.ViewMinSamples <= 0 {
		cfg.ViewMinSamples = view.DefaultMinSamples
	}
	if cfg.ViewMaxAge <= 0 {
		cfg.ViewMaxAge = view.DefaultMaxAge
	}
	if cfg.ElectionBase == "" {
		cfg.ElectionBase = "/snooze/election"
	}
	if cfg.AdmissionOrder != AdmissionArrival {
		cfg.AdmissionOrder = AdmissionFFD
	}
	if cfg.VMLivenessGrace == 0 {
		if cfg.LCTimeout > 0 {
			cfg.VMLivenessGrace = 4 * cfg.LCTimeout
		} else {
			cfg.VMLivenessGrace = 48 * time.Second
		}
	}
	privateHub := cfg.Telemetry == nil
	if privateHub {
		cfg.Telemetry = telemetry.NewHub(telemetry.Options{Metrics: cfg.Metrics, Store: cfg.Retention})
	}
	m := &Manager{
		rt:         rt,
		bus:        bus,
		cfg:        cfg,
		tel:        cfg.Telemetry,
		privateHub: privateHub,
		views: view.Builder{
			Hub:        cfg.Telemetry,
			Horizon:    cfg.ViewHorizon,
			MinSamples: cfg.ViewMinSamples,
			MaxAge:     cfg.ViewMaxAge,
			// The builder lives as long as the manager, so generation-keyed
			// caching makes repeated builds between monitoring reports (GL
			// dispatch fan-out, GM relocation scans) map lookups.
			Cache: view.NewCache(),
		},
		lcs:      make(map[types.NodeID]*lcRecord),
		gms:      make(map[types.GroupManagerID]*gmRecord),
		archives: make(map[types.GroupManagerID]*gmArchive),
	}
	if cfg.Metrics != nil {
		cfg.Metrics.SetGauge("scheduler.view-horizon-ns", float64(cfg.ViewHorizon))
	}
	m.cand = election.NewCandidate(svc, rt, election.Config{
		Base:       cfg.ElectionBase,
		ID:         string(cfg.Addr),
		SessionTTL: cfg.SessionTTL,
		Listener:   m.onElection,
	})
	return m
}

// ID returns the manager's identifier.
func (m *Manager) ID() types.GroupManagerID { return m.cfg.ID }

// Addr returns the manager's bus address.
func (m *Manager) Addr() transport.Address { return m.cfg.Addr }

// Role returns the current role.
func (m *Manager) Role() Role {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.role
}

// Start registers on the bus and joins the GL election ("when a GM first
// attempts to join the system, a leader election algorithm is triggered",
// Section II-D).
func (m *Manager) Start() error {
	m.bus.Register(m.cfg.Addr, m.handle)
	return m.cand.Join()
}

// Stop halts all periodic work and resigns from the election.
func (m *Manager) Stop() {
	m.mu.Lock()
	m.stopped = true
	m.role = RoleIdle
	tickers := m.tickers
	m.tickers = nil
	m.stopEnergyLocked()
	m.mu.Unlock()
	for _, t := range tickers {
		t.Stop()
	}
	m.cand.Resign()
	m.bus.Unregister(m.cfg.Addr)
}

// Crash simulates a fail-stop crash: the process vanishes without resigning
// gracefully — the election notices via session expiry, peers via missing
// heartbeats. Used by the fault-injection experiments.
func (m *Manager) Crash() {
	m.mu.Lock()
	m.stopped = true
	m.role = RoleIdle
	tickers := m.tickers
	m.tickers = nil
	m.stopEnergyLocked()
	m.mu.Unlock()
	for _, t := range tickers {
		t.Stop()
	}
	m.cand.Abandon()
	m.bus.SetDown(m.cfg.Addr, true)
}

// Restart revives a crashed manager: the bus address comes back up, the
// handler is re-registered and the process re-enters the GL election as a
// fresh candidate. State recovery happens in the GM bootstrap phase (the
// manager fetches its previous incarnation's archived telemetry from the GL
// via KindRecoveryFetch). Restart fails while the crashed incarnation's
// election session has not expired yet; callers retry after the session TTL.
func (m *Manager) Restart() error {
	m.mu.Lock()
	m.stopped = false
	m.role = RoleIdle
	m.mu.Unlock()
	m.bus.SetDown(m.cfg.Addr, false)
	m.bus.Register(m.cfg.Addr, m.handle)
	return m.cand.Join()
}

// mark records a counter if metrics are configured.
func (m *Manager) mark(name string, delta int64) {
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.Inc(name, delta)
	}
}

func (m *Manager) observe(name string, d time.Duration) {
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.ObserveDuration(name, d)
	}
}

func (m *Manager) observeValue(name string, v float64) {
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.Observe(name, v)
	}
}

// Telemetry returns the manager's telemetry hub (shared across the
// deployment when wired through cluster.Config / snoozed, private otherwise).
func (m *Manager) Telemetry() *telemetry.Hub { return m.tel }

// schedulingInfo reports this manager's active scheduling configuration. It
// travels with topology exports, inventory responses and the GM's summary
// pushes, so operators see the policies each group actually runs (managers
// need not share one config template). cfg is immutable after NewManager, so
// no lock is needed.
func (m *Manager) schedulingInfo() protocol.SchedulingInfo {
	return protocol.SchedulingInfo{
		Dispatch:      m.cfg.Dispatch.Name(),
		Placement:     m.cfg.Placement.Name(),
		Overload:      m.cfg.Overload.Name(),
		Underload:     m.cfg.Underload.Name(),
		Estimator:     m.cfg.Estimator.Name(),
		ViewHorizonNs: int64(m.cfg.ViewHorizon),
	}
}

// emit publishes a hierarchy event on the telemetry journal.
func (m *Manager) emit(typ, entity string, attrs telemetry.Attrs) {
	m.tel.Emit(typ, entity, m.rt.Now(), attrs)
}

// vmStateAttrs builds a vm.state attribute set from key/value pairs, tagging
// it with the decision trace ID when one is active so watch streams correlate
// with /v1/traces. The inline Attrs representation keeps this allocation-free
// on the emit hot path.
func vmStateAttrs(sc obs.SpanContext, kv ...string) telemetry.Attrs {
	attrs := telemetry.A(kv...)
	if sc.Valid() {
		attrs.Set("trace", sc.TraceID)
	}
	return attrs
}

// onElection reacts to election transitions: follower → run the GM role
// against the new leader; leader → promote to GL (Section II-E: "When an
// existing GM becomes the new leader it switches to GL mode").
func (m *Manager) onElection(st election.State, leaderID string) {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	switch st {
	case election.StateLeader:
		m.becomeGLLocked()
		m.mu.Unlock()
	case election.StateFollower:
		m.becomeGMLocked(transport.Address(leaderID))
		m.mu.Unlock()
	default:
		m.mu.Unlock()
	}
}

// stopTickersLocked halts the current role's periodic work, including the
// event-driven energy machinery.
func (m *Manager) stopTickersLocked() {
	for _, t := range m.tickers {
		t.Stop()
	}
	m.tickers = nil
	m.stopEnergyLocked()
	if m.optimizer != nil {
		m.optimizer.Stop()
	}
}

// stopEnergyLocked detaches the journal observers and cancels any scheduled
// idle check or liveness sweep.
func (m *Manager) stopEnergyLocked() {
	if m.energyUnsub != nil {
		m.energyUnsub()
		m.energyUnsub = nil
	}
	if m.energyCancel != nil {
		m.energyCancel.Cancel()
		m.energyCancel = nil
	}
	m.energyAt = 0
	if m.sweepUnsub != nil {
		m.sweepUnsub()
		m.sweepUnsub = nil
	}
	if m.sweepCancel != nil {
		m.sweepCancel.Cancel()
		m.sweepCancel = nil
	}
	m.sweepAt = 0
}

func (m *Manager) addTicker(period time.Duration, fn func()) {
	t := simkernel.NewTicker(m.rt, period, fn)
	m.tickers = append(m.tickers, t)
	t.Start()
}

// handle dispatches inbound messages to the active role.
func (m *Manager) handle(req *transport.Request) {
	switch req.Kind {
	// GL-role messages.
	case protocol.KindGMJoin:
		m.glOnGMJoin(req)
	case protocol.KindSummary:
		m.glOnSummary(req)
	case protocol.KindLCAssign:
		m.glOnLCAssign(req)
	case protocol.KindSubmit:
		m.glOnSubmit(req)
	case protocol.KindTopology:
		m.glOnTopology(req)
	// GM-role messages.
	case protocol.KindLCJoin:
		m.gmOnLCJoin(req)
	case protocol.KindMonitor:
		m.gmOnMonitor(req)
	case protocol.KindAnomaly:
		m.gmOnAnomaly(req)
	case protocol.KindPlace:
		m.gmOnPlace(req)
	case protocol.KindShed:
		m.gmOnShed(req)
	case protocol.KindLCList:
		m.gmOnLCList(req)
	case protocol.KindInventory:
		m.gmOnInventory(req)
	case protocol.KindConsolidation:
		m.gmOnConsolidation(req)
	case protocol.KindStateRestore:
		m.gmOnStateRestore(req)
	// State replication messages handled in the GL role.
	case protocol.KindStateSync:
		m.glOnStateSync(req)
	case protocol.KindRecoveryFetch:
		m.glOnRecoveryFetch(req)
	default:
		req.RespondErr(fmt.Errorf("manager %s: unknown message kind %q", m.cfg.ID, req.Kind))
	}
}
