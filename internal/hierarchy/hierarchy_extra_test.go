package hierarchy

import (
	"errors"
	"testing"
	"time"

	"snooze/internal/metrics"
	"snooze/internal/protocol"
	"snooze/internal/transport"
	"snooze/internal/types"
)

func metricsRegistry() *metrics.Registry { return metrics.NewRegistry() }

func TestLCStopRemovesFromBus(t *testing.T) {
	r := newRig(20)
	r.manager("m0")
	r.manager("m1")
	lc := r.lc("n1")
	r.settle(20 * time.Second)
	if lc.NodeID() != "n1" {
		t.Fatalf("NodeID: %s", lc.NodeID())
	}
	lc.Stop()
	if err := r.bus.Send("test", lc.Addr(), protocol.KindStopVM, protocol.StopVMRequest{VM: "x"}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("stopped LC still reachable: %v", err)
	}
}

func TestEPStopAndAddr(t *testing.T) {
	r := newRig(21)
	ep := NewEP(r.k, r.bus, "ep:x", 0)
	ep.Start()
	if ep.Addr() != "ep:x" {
		t.Fatalf("Addr: %s", ep.Addr())
	}
	ep.Stop()
	if err := r.bus.Send("test", "ep:x", protocol.KindGLQuery, struct{}{}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("stopped EP still reachable: %v", err)
	}
}

func TestManagerUnknownKind(t *testing.T) {
	r := newRig(22)
	m := r.manager("m0")
	r.settle(10 * time.Second)
	var gotErr error
	r.bus.Call("test", m.Addr(), "bogus.kind", struct{}{}, time.Second, func(_ any, err error) { gotErr = err })
	r.settle(time.Second)
	if gotErr == nil {
		t.Fatal("unknown kind accepted")
	}
	if m.ID() != "m0" {
		t.Fatalf("ID: %s", m.ID())
	}
}

func TestLCUnknownKind(t *testing.T) {
	r := newRig(23)
	r.manager("m0")
	r.manager("m1")
	lc := r.lc("n1")
	r.settle(20 * time.Second)
	var gotErr error
	r.bus.Call("test", lc.Addr(), "bogus.kind", struct{}{}, time.Second, func(_ any, err error) { gotErr = err })
	r.settle(time.Second)
	if gotErr == nil {
		t.Fatal("unknown kind accepted by LC")
	}
	// OOB endpoint likewise rejects non-wake messages.
	gotErr = nil
	r.bus.Call("test", OOBAddress(lc.Addr()), "bogus.kind", struct{}{}, time.Second, func(_ any, err error) { gotErr = err })
	r.settle(time.Second)
	if gotErr == nil {
		t.Fatal("unknown kind accepted by OOB endpoint")
	}
}

func TestTopologyRefusedByNonLeader(t *testing.T) {
	r := newRig(24)
	r.manager("m0")
	m1 := r.manager("m1")
	r.settle(20 * time.Second)
	if m1.Role() != RoleGM {
		t.Fatalf("fixture: m1 role %v", m1.Role())
	}
	var gotErr error
	r.bus.Call("test", m1.Addr(), protocol.KindTopology, struct{}{}, time.Second, func(_ any, err error) { gotErr = err })
	r.settle(time.Second)
	if gotErr == nil {
		t.Fatal("GM answered a topology query meant for the GL")
	}
}

func TestLCAssignWithNoGMs(t *testing.T) {
	r := newRig(25)
	m0 := r.manager("m0") // lone manager: becomes GL, no GMs exist
	r.settle(10 * time.Second)
	var resp protocol.LCAssignResponse
	r.bus.Call("test", m0.Addr(), protocol.KindLCAssign, protocol.LCAssignRequest{}, time.Second,
		func(reply any, err error) {
			if err == nil {
				resp = reply.(protocol.LCAssignResponse)
			}
		})
	r.settle(time.Second)
	if resp.Addr != "" {
		t.Fatalf("assignment without GMs: %+v", resp)
	}
}

func TestSubmitEmptyBatch(t *testing.T) {
	r := newRig(26)
	m0 := r.manager("m0")
	r.settle(10 * time.Second)
	var resp protocol.SubmitResponse
	done := false
	r.bus.Call("test", m0.Addr(), protocol.KindSubmit, protocol.SubmitRequest{}, time.Second,
		func(reply any, err error) {
			if err == nil {
				resp = reply.(protocol.SubmitResponse)
			}
			done = true
		})
	r.settle(time.Second)
	if !done || len(resp.Placed) != 0 || len(resp.Unplaced) != 0 {
		t.Fatalf("empty submit: done=%v %+v", done, resp)
	}
}

func TestPlaceRequestToGL(t *testing.T) {
	// A placement probe sent to a GL-role manager reports everything
	// unplaced rather than hanging.
	r := newRig(27)
	m0 := r.manager("m0")
	r.settle(10 * time.Second)
	var resp protocol.PlaceResponse
	r.bus.Call("test", m0.Addr(), protocol.KindPlace,
		protocol.PlaceRequest{VMs: []types.VMSpec{{ID: "v", Requested: types.RV(1, 1, 1, 1)}}},
		time.Second, func(reply any, err error) {
			if err == nil {
				resp = reply.(protocol.PlaceResponse)
			}
		})
	r.settle(time.Second)
	if len(resp.Unplaced) != 1 {
		t.Fatalf("GL place probe: %+v", resp)
	}
}

func TestHelperFunctions(t *testing.T) {
	ids := vmIDs([]types.VMSpec{{ID: "a"}, {ID: "b"}})
	if len(ids) != 2 || ids[0] != "a" {
		t.Fatalf("vmIDs: %v", ids)
	}
	out := removeVMID([]types.VMID{"a", "b", "c"}, "b")
	if len(out) != 2 || out[0] != "a" || out[1] != "c" {
		t.Fatalf("removeVMID: %v", out)
	}
	if got := removeVMID([]types.VMID{"a"}, "zz"); len(got) != 1 {
		t.Fatalf("removeVMID missing: %v", got)
	}
}

func TestLCBusyAccessor(t *testing.T) {
	r := newRig(28)
	r.manager("m0")
	m1 := r.manager("m1")
	r.lc("n1")
	r.settle(20 * time.Second)
	if got := m1.LCBusy(); len(got) != 0 {
		t.Fatalf("busy on idle cluster: %v", got)
	}
}

func TestShedAndRejoin(t *testing.T) {
	r := newRig(29)
	r.manager("m0")
	m1 := r.manager("m1")
	m2 := r.manager("m2")
	// Join 6 LCs; with least-loaded assignment they spread 3/3.
	lcs := make([]*LC, 6)
	for i := range lcs {
		lcs[i] = r.lc(string(rune('a' + i)))
	}
	r.settle(30 * time.Second)
	count := func(m *Manager) int { a, s := m.LCCount(); return a + s }
	if count(m1)+count(m2) != 6 {
		t.Fatalf("fixture: %d + %d LCs", count(m1), count(m2))
	}
	donor := m1
	if count(m2) > count(m1) {
		donor = m2
	}
	before := count(donor)
	var resp protocol.ShedResponse
	r.bus.Call("test", donor.Addr(), protocol.KindShed, protocol.ShedRequest{Count: 2}, time.Second,
		func(reply any, err error) {
			if err == nil {
				resp = reply.(protocol.ShedResponse)
			}
		})
	r.settle(time.Second)
	if resp.Released != 2 {
		t.Fatalf("released: %d", resp.Released)
	}
	if got := count(donor); got != before-2 {
		t.Fatalf("donor LC count: %d -> %d", before, got)
	}
	// Shed LCs rejoin the hierarchy within a few heartbeats.
	r.settle(30 * time.Second)
	total := 0
	for _, m := range []*Manager{m1, m2} {
		total += count(m)
	}
	if total != 6 {
		t.Fatalf("LCs lost after shed: %d", total)
	}
}

func TestShedZeroAndBadPayload(t *testing.T) {
	r := newRig(30)
	r.manager("m0")
	m1 := r.manager("m1")
	r.lc("n1")
	r.settle(20 * time.Second)
	var resp protocol.ShedResponse
	r.bus.Call("test", m1.Addr(), protocol.KindShed, protocol.ShedRequest{Count: 0}, time.Second,
		func(reply any, err error) {
			if err == nil {
				resp = reply.(protocol.ShedResponse)
			}
		})
	r.settle(time.Second)
	if resp.Released != 0 {
		t.Fatalf("released on zero request: %d", resp.Released)
	}
	var gotErr error
	r.bus.Call("test", m1.Addr(), protocol.KindShed, "wrong type", time.Second,
		func(_ any, err error) { gotErr = err })
	r.settle(time.Second)
	if gotErr == nil {
		t.Fatal("bad shed payload accepted")
	}
}

func TestLinearSearchSkipsFragmentedGM(t *testing.T) {
	// Section II-C: "when a client submits a VM requesting 2GB ... and a GM
	// reports 4GB available it does not necessary mean that the VM can be
	// finally placed on this GM as its available memory could be
	// distributed among multiple LCs". The GL must fall through to the next
	// candidate GM.
	r := newRig(31)
	reg := metricsRegistry()
	mkManager := func(id string) *Manager {
		cfg := DefaultManagerConfig(types.GroupManagerID(id), transport.Address("mgr:"+id))
		cfg.Metrics = reg
		m := NewManager(r.k, r.bus, r.svc, cfg)
		if err := m.Start(); err != nil {
			panic(err)
		}
		return m
	}
	mkManager("m0") // becomes GL
	r.settle(5 * time.Second)
	m1 := mkManager("m1")
	r.settle(10 * time.Second)

	// m1 gets two LCs and each is half-filled: 4 CPU free per LC, 8 CPU
	// free in the summary — fragmented.
	lcA, lcB := r.lc("frag-a"), r.lc("frag-b")
	r.settle(20 * time.Second)
	if lcA.GM() != m1.Addr() || lcB.GM() != m1.Addr() {
		t.Fatalf("fixture: LCs on %q/%q", lcA.GM(), lcB.GM())
	}
	for _, n := range []string{"frag-a", "frag-b"} {
		if err := r.nodes[types.NodeID(n)].StartVM(types.VMSpec{
			ID: types.VMID("filler-" + n), Requested: types.RV(4, 4096, 10, 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// m2 joins later with one empty LC.
	m2 := mkManager("m2")
	r.settle(10 * time.Second)
	lcC := r.lc("roomy")
	r.settle(20 * time.Second)
	if lcC.GM() != m2.Addr() {
		t.Fatalf("fixture: roomy LC on %q", lcC.GM())
	}
	r.settle(10 * time.Second) // summaries propagate

	// Submit a 6-CPU VM via the GL: m1's summary shows 8 CPU free so it is
	// a candidate, but no single LC fits; the linear search must place it
	// on m2's empty LC.
	ep := NewEP(r.k, r.bus, "ep:ls", 0)
	ep.Start()
	r.settle(10 * time.Second) // EP learns the GL from heartbeats
	client := NewClient(r.k, r.bus, "client:ls", []transport.Address{"ep:ls"}, 0)
	var resp protocol.SubmitResponse
	var rerr error
	client.Submit([]types.VMSpec{{ID: "big", Requested: types.RV(6, 6144, 10, 10)}},
		func(rs protocol.SubmitResponse, err error) { resp, rerr = rs, err })
	r.settle(time.Minute)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if resp.Placed["big"] != "roomy" {
		t.Fatalf("placement: %+v", resp)
	}
	// The probe depth series must show a probe beyond the first candidate
	// for at least one dispatch.
	depths := reg.Series("gl.probe-depth")
	max := 0.0
	for _, d := range depths {
		if d > max {
			max = d
		}
	}
	if max < 2 {
		t.Fatalf("linear search never probed past the first GM: %v", depths)
	}
}
