// Package hierarchy implements the Snooze component state machines: Local
// Controllers (LCs), the Group Manager / Group Leader roles (a single
// Manager process that is promoted to GL by leader election, Section II-D),
// and Entry Points (EPs). Components are transport-agnostic: they exchange
// protocol messages over an injected transport.Bus and schedule their
// periodic work on a simkernel.Runtime, so identical code runs deterministic
// simulations and real wall-clock deployments.
package hierarchy

import (
	"fmt"
	"sync"
	"time"

	"snooze/internal/hypervisor"
	"snooze/internal/protocol"
	"snooze/internal/scheduling"
	"snooze/internal/simkernel"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// NodeResolver lets a source LC find the destination hypervisor for a live
// migration. In simulation this is the cluster's node table; a real
// deployment would establish a libvirt peer connection instead.
type NodeResolver func(id types.NodeID) (*hypervisor.Node, bool)

// LCConfig parameterizes a Local Controller.
type LCConfig struct {
	// MonitorPeriod is the interval of monitoring reports to the GM, which
	// double as LC heartbeats (Section II-B).
	MonitorPeriod time.Duration
	// GMTimeout declares the GM dead when no GM heartbeat arrives for this
	// long; the LC then rejoins the hierarchy (Section II-E).
	GMTimeout time.Duration
	// Thresholds configures local overload/underload detection.
	Thresholds scheduling.Thresholds
	// AnomalyCooldown rate-limits repeated anomaly reports.
	AnomalyCooldown time.Duration
	// CallTimeout bounds join/assign RPCs.
	CallTimeout time.Duration
}

// DefaultLCConfig returns the timers used by the experiments (heartbeat
// scales chosen to match the paper's multi-second failure detection).
func DefaultLCConfig() LCConfig {
	return LCConfig{
		MonitorPeriod:   3 * time.Second,
		GMTimeout:       10 * time.Second,
		Thresholds:      scheduling.DefaultThresholds(),
		AnomalyCooldown: 15 * time.Second,
		CallTimeout:     5 * time.Second,
	}
}

// LC is a Local Controller: the per-node agent that "enforce[s] VM and host
// management commands coming from the GM" and "detect[s] local
// overload/underload anomaly situations" (Section II-A).
type LC struct {
	rt      simkernel.Runtime
	bus     *transport.Bus
	node    *hypervisor.Node
	cfg     LCConfig
	addr    transport.Address
	oobAddr transport.Address
	resolve NodeResolver

	mu            sync.Mutex
	gmAddr        transport.Address
	gmID          types.GroupManagerID
	lastGMBeat    time.Duration
	joining       bool
	stopped       bool
	lastAnomaly   time.Duration
	monitorTicker *simkernel.Ticker
	sweepTicker   *simkernel.Ticker
	rejoins       uint64
	// corrupt, when set, mutates outgoing monitor reports in flight — the
	// gray-failure injection hook (a sensor gone bad, a broken sender
	// clock). Production code never sets it.
	corrupt func(*protocol.MonitorReport)
}

// NewLC creates a Local Controller for the given node. addr is the LC's bus
// address; the out-of-band wake endpoint is registered at OOBAddress(addr).
func NewLC(rt simkernel.Runtime, bus *transport.Bus, node *hypervisor.Node, addr transport.Address, resolve NodeResolver, cfg LCConfig) *LC {
	if cfg.MonitorPeriod <= 0 {
		cfg = DefaultLCConfig()
	}
	return &LC{
		rt:      rt,
		bus:     bus,
		node:    node,
		cfg:     cfg,
		addr:    addr,
		oobAddr: OOBAddress(addr),
		resolve: resolve,
	}
}

// OOBAddress derives the out-of-band (wake-on-LAN analogue) address for an
// LC address. The OOB endpoint stays reachable while the node sleeps.
func OOBAddress(lc transport.Address) transport.Address {
	return "oob:" + lc
}

// Addr returns the LC's bus address.
func (lc *LC) Addr() transport.Address { return lc.addr }

// SetCorrupt installs (or, with nil, clears) a hook mutating outgoing
// monitor reports — the fault-injection entry point for gray failures
// (NaN/negative usage, future-stamped clocks). See internal/faults.
func (lc *LC) SetCorrupt(fn func(*protocol.MonitorReport)) {
	lc.mu.Lock()
	lc.corrupt = fn
	lc.mu.Unlock()
}

// NodeID returns the managed node's ID.
func (lc *LC) NodeID() types.NodeID { return lc.node.ID() }

// GM returns the currently assigned GM address ("" when unassigned).
func (lc *LC) GM() transport.Address {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.gmAddr
}

// Rejoins returns how many times this LC joined (or re-joined) a GM — the
// self-healing activity counter used by experiment E6.
func (lc *LC) Rejoins() uint64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.rejoins
}

// Start registers the LC on the bus, subscribes to GL heartbeats and begins
// periodic monitoring. The LC starts unassigned; assignment happens on the
// first GL heartbeat (Section II-D).
func (lc *LC) Start() {
	lc.bus.Register(lc.addr, lc.handle)
	lc.bus.Register(lc.oobAddr, lc.handleOOB)
	lc.bus.JoinGroup(protocol.GroupGL, lc.addr)
	// Power transitions gate the LC's reachability: a suspending node's LC
	// process freezes with it.
	lc.node.OnPowerChange(func(_ types.NodeID, st types.PowerState) {
		switch st {
		case types.PowerSuspended, types.PowerOff, types.PowerFailed:
			lc.bus.SetDown(lc.addr, true)
		case types.PowerOn:
			lc.bus.SetDown(lc.addr, false)
		}
	})
	lc.monitorTicker = simkernel.NewTicker(lc.rt, lc.cfg.MonitorPeriod, lc.monitorTick)
	lc.monitorTicker.Start()
	lc.sweepTicker = simkernel.NewTicker(lc.rt, lc.cfg.MonitorPeriod, lc.livenessTick)
	lc.sweepTicker.Start()
}

// Stop halts periodic work and removes the LC from the bus.
func (lc *LC) Stop() {
	lc.mu.Lock()
	lc.stopped = true
	lc.mu.Unlock()
	if lc.monitorTicker != nil {
		lc.monitorTicker.Stop()
	}
	if lc.sweepTicker != nil {
		lc.sweepTicker.Stop()
	}
	lc.bus.LeaveGroup(protocol.GroupGL, lc.addr)
	lc.bus.Unregister(lc.addr)
	lc.bus.Unregister(lc.oobAddr)
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

func (lc *LC) handle(req *transport.Request) {
	switch req.Kind {
	case protocol.KindGLHeartbeat:
		lc.onGLHeartbeat(req)
	case protocol.KindGMHeartbeat:
		lc.onGMHeartbeat(req)
	case protocol.KindStartVM:
		lc.onStartVM(req)
	case protocol.KindStopVM:
		lc.onStopVM(req)
	case protocol.KindMigrateVM:
		lc.onMigrateVM(req)
	case protocol.KindSuspendHost:
		lc.onSuspend(req)
	case protocol.KindRejoin:
		lc.onRejoin(req)
	default:
		req.RespondErr(fmt.Errorf("lc %s: unknown message kind %q", lc.node.ID(), req.Kind))
	}
}

// handleOOB serves the out-of-band endpoint: wake requests reach the
// platform even while the LC software is frozen.
func (lc *LC) handleOOB(req *transport.Request) {
	if req.Kind != protocol.KindWakeHost {
		req.RespondErr(fmt.Errorf("oob %s: unknown message kind %q", lc.node.ID(), req.Kind))
		return
	}
	err := lc.node.Wake()
	if err != nil && lc.node.Power() == types.PowerOn {
		err = nil // already awake: wake is idempotent from the caller's view
	}
	if err != nil {
		req.RespondErr(err)
		return
	}
	req.Respond(struct{}{})
}

// onGLHeartbeat triggers the join protocol when unassigned (Section II-D:
// "When a heartbeat arrives, it contacts the GL to get a GM assigned").
func (lc *LC) onGLHeartbeat(req *transport.Request) {
	hb, ok := req.Payload.(protocol.GLHeartbeat)
	if !ok {
		return
	}
	lc.mu.Lock()
	if lc.stopped || lc.joining || lc.gmAddr != "" {
		lc.mu.Unlock()
		return
	}
	lc.joining = true
	lc.mu.Unlock()

	assignReq := protocol.LCAssignRequest{Spec: lc.node.Spec()}
	lc.bus.Call(lc.addr, transport.Address(hb.Addr), protocol.KindLCAssign, assignReq, lc.cfg.CallTimeout,
		func(reply any, err error) {
			if err != nil {
				lc.abortJoin()
				return
			}
			assign, ok := reply.(protocol.LCAssignResponse)
			if !ok || assign.Addr == "" {
				lc.abortJoin()
				return
			}
			join := protocol.LCJoinRequest{
				Addr:   string(lc.addr),
				OOB:    string(lc.oobAddr),
				Status: lc.node.Status(),
				VMs:    lc.node.VMs(),
			}
			lc.bus.Call(lc.addr, transport.Address(assign.Addr), protocol.KindLCJoin, join, lc.cfg.CallTimeout,
				func(reply any, err error) {
					if err != nil {
						lc.abortJoin()
						return
					}
					if ack, ok := reply.(protocol.LCJoinResponse); !ok || !ack.Accepted {
						lc.abortJoin()
						return
					}
					lc.mu.Lock()
					lc.joining = false
					lc.gmAddr = transport.Address(assign.Addr)
					lc.gmID = assign.GM
					lc.lastGMBeat = lc.rt.Now()
					lc.rejoins++
					lc.mu.Unlock()
					lc.bus.JoinGroup(protocol.GroupGMPrefix+string(assign.GM), lc.addr)
				})
		})
}

func (lc *LC) abortJoin() {
	lc.mu.Lock()
	lc.joining = false
	lc.mu.Unlock()
}

func (lc *LC) onGMHeartbeat(req *transport.Request) {
	hb, ok := req.Payload.(protocol.GMHeartbeat)
	if !ok {
		return
	}
	lc.mu.Lock()
	if lc.gmAddr == transport.Address(hb.Addr) {
		lc.lastGMBeat = lc.rt.Now()
	}
	lc.mu.Unlock()
}

func (lc *LC) onStartVM(req *transport.Request) {
	sr, ok := req.Payload.(protocol.StartVMRequest)
	if !ok {
		req.RespondErr(fmt.Errorf("lc: bad start payload"))
		return
	}
	if err := lc.node.StartVM(sr.Spec); err != nil {
		req.Respond(protocol.StartVMResponse{OK: false, Error: err.Error()})
		return
	}
	req.Respond(protocol.StartVMResponse{OK: true})
}

func (lc *LC) onStopVM(req *transport.Request) {
	sr, ok := req.Payload.(protocol.StopVMRequest)
	if !ok {
		req.RespondErr(fmt.Errorf("lc: bad stop payload"))
		return
	}
	if err := lc.node.StopVM(sr.VM); err != nil {
		req.RespondErr(err)
		return
	}
	req.Respond(struct{}{})
}

// onMigrateVM executes a live migration ordered by the GM; the response is
// sent when the transfer completes, so the GM learns the true outcome.
func (lc *LC) onMigrateVM(req *transport.Request) {
	mr, ok := req.Payload.(protocol.MigrateVMRequest)
	if !ok {
		req.RespondErr(fmt.Errorf("lc: bad migrate payload"))
		return
	}
	dest, ok := lc.resolve(mr.DestNode)
	if !ok {
		req.Respond(protocol.MigrateVMResponse{OK: false, Error: "unknown destination node"})
		return
	}
	err := lc.node.MigrateTo(mr.VM, dest, func(err error) {
		if err != nil {
			req.Respond(protocol.MigrateVMResponse{OK: false, Error: err.Error()})
			return
		}
		req.Respond(protocol.MigrateVMResponse{OK: true})
	})
	if err != nil {
		req.Respond(protocol.MigrateVMResponse{OK: false, Error: err.Error()})
	}
}

// onRejoin implements the GL's rebalancing lever: the LC abandons its
// current GM and re-runs the join protocol (it will be assigned to the
// least-loaded GM on the next GL heartbeat).
func (lc *LC) onRejoin(req *transport.Request) {
	lc.mu.Lock()
	gmID := lc.gmID
	assigned := lc.gmAddr != ""
	lc.gmAddr = ""
	lc.gmID = ""
	lc.mu.Unlock()
	if assigned {
		lc.bus.LeaveGroup(protocol.GroupGMPrefix+string(gmID), lc.addr)
	}
	req.Respond(struct{}{})
}

func (lc *LC) onSuspend(req *transport.Request) {
	if err := lc.node.Suspend(); err != nil {
		req.RespondErr(err)
		return
	}
	req.Respond(struct{}{})
}

// ---------------------------------------------------------------------------
// Periodic work
// ---------------------------------------------------------------------------

// monitorTick sends monitoring data (doubling as the LC heartbeat) and runs
// local anomaly detection.
func (lc *LC) monitorTick() {
	if lc.node.Power() != types.PowerOn {
		return
	}
	lc.node.MeterSample()
	lc.mu.Lock()
	gm := lc.gmAddr
	stopped := lc.stopped
	corrupt := lc.corrupt
	lc.mu.Unlock()
	if stopped || gm == "" {
		return
	}
	status := lc.node.Status()
	vms := lc.node.VMs()
	rep := protocol.MonitorReport{Status: status, VMs: vms, AtNs: int64(lc.rt.Now())}
	if corrupt != nil {
		corrupt(&rep)
	}
	_ = lc.bus.Send(lc.addr, gm, protocol.KindMonitor, rep)

	over, under := lc.cfg.Thresholds.Classify(status)
	if !over && !under {
		return
	}
	lc.mu.Lock()
	now := lc.rt.Now()
	if now-lc.lastAnomaly < lc.cfg.AnomalyCooldown {
		lc.mu.Unlock()
		return
	}
	lc.lastAnomaly = now
	lc.mu.Unlock()
	kind := protocol.AnomalyOverload
	if under {
		kind = protocol.AnomalyUnderload
	}
	_ = lc.bus.Send(lc.addr, gm, protocol.KindAnomaly, protocol.AnomalyReport{Kind: kind, Status: status, VMs: vms})
}

// livenessTick implements GM failure detection: "LCs which were previously
// assigned to the failed GM fail to receive its GM heartbeats and rejoin the
// system" (Section II-E).
func (lc *LC) livenessTick() {
	if lc.node.Power() != types.PowerOn {
		return
	}
	lc.mu.Lock()
	if lc.stopped || lc.gmAddr == "" {
		lc.mu.Unlock()
		return
	}
	if lc.rt.Now()-lc.lastGMBeat <= lc.cfg.GMTimeout {
		lc.mu.Unlock()
		return
	}
	gmID := lc.gmID
	lc.gmAddr = ""
	lc.gmID = ""
	lc.mu.Unlock()
	lc.bus.LeaveGroup(protocol.GroupGMPrefix+string(gmID), lc.addr)
}
