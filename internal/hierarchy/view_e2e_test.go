package hierarchy

import (
	"testing"
	"time"

	"snooze/internal/protocol"
	"snooze/internal/scheduling"
	"snooze/internal/telemetry"
	"snooze/internal/types"
)

// TestPercentileFitAvoidsHistoricallyHotNode drives the full GM path — LC
// monitoring over the bus feeding the telemetry store, capacity views built
// from it, the percentile-fit policy consuming them — and checks the exact
// scenario point-in-time estimates cannot see: a node that is idle at
// placement time but ran hot for most of the window must be passed over in
// favour of a genuinely quiet peer.
func TestPercentileFitAvoidsHistoricallyHotNode(t *testing.T) {
	r := newRig(77)
	r.manager("m0") // becomes GL
	r.settle(5 * time.Second)

	cfg := DefaultManagerConfig("m1", "mgr:m1")
	cfg.Placement = scheduling.PercentileFitPlacement{}
	m1 := NewManager(r.k, r.bus, r.svc, cfg)
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	lc1 := r.lc("n1")
	r.lc("n2")
	r.settle(30 * time.Second)
	if lc1.GM() != m1.Addr() {
		t.Fatalf("fixture: n1 joined %q, want %q", lc1.GM(), m1.Addr())
	}

	// Run a demanding VM on n1 long enough for its monitoring reports to
	// build a hot util history (~0.875 L∞) in the GM's telemetry store.
	hog := types.VMSpec{ID: "hog", Requested: types.RV(7, 14336, 10, 10)}
	var started protocol.StartVMResponse
	r.bus.Call("test", lc1.Addr(), protocol.KindStartVM, protocol.StartVMRequest{Spec: hog}, time.Second,
		func(reply any, err error) {
			if err == nil {
				started = reply.(protocol.StartVMResponse)
			}
		})
	r.settle(45 * time.Second)
	if !started.OK {
		t.Fatalf("hog start: %+v", started)
	}

	// Stop the hog: n1 turns idle, but its p95 over the view horizon stays
	// hot. A couple of monitor periods let the idle snapshot reach the GM.
	r.bus.Call("test", lc1.Addr(), protocol.KindStopVM, protocol.StopVMRequest{VM: "hog"}, time.Second,
		func(any, error) {})
	r.settle(7 * time.Second)

	// Sanity: the store must still remember n1's hot stretch.
	samples := m1.Telemetry().Store().Query(telemetry.NodeEntity("n1"), "util", 0, 0)
	hot := 0
	for _, s := range samples {
		if s.Value > 0.8 {
			hot++
		}
	}
	if hot < 5 {
		t.Fatalf("fixture: only %d hot samples retained (%d total)", hot, len(samples))
	}

	// Place a fresh VM through the GM. Best-fit/first-fit would pick n1
	// (lower ID, equally empty); percentile-fit must route around it.
	spec := types.VMSpec{ID: "fresh", Requested: types.RV(2, 2048, 10, 10)}
	var placed protocol.PlaceResponse
	r.bus.Call("test", m1.Addr(), protocol.KindPlace, protocol.PlaceRequest{VMs: []types.VMSpec{spec}}, time.Minute,
		func(reply any, err error) {
			if err == nil {
				placed = reply.(protocol.PlaceResponse)
			}
		})
	r.settle(15 * time.Second)
	node, ok := placed.Placed["fresh"]
	if !ok {
		t.Fatalf("placement failed: %+v", placed)
	}
	if node != "n2" {
		t.Fatalf("fresh VM landed on %s; p95-aware placement should avoid the historically hot n1", node)
	}

	// The monitoring flow should also have announced n1's idle transition —
	// the signal the event-driven energy manager consumes.
	sawIdle := false
	for _, ev := range m1.Telemetry().Journal().Replay(0, 0) {
		if ev.Type == telemetry.EventNodeIdle && ev.Entity == telemetry.NodeEntity("n1") {
			sawIdle = true
		}
	}
	if !sawIdle {
		t.Fatal("no node.idle event for n1 after the hog stopped")
	}
}

// TestEventDrivenEnergySuspendsLateIdler covers the polling-free energy
// path end to end: a node that becomes idle mid-run (not at boot) must be
// suspended IdleThreshold after its last VM leaves, driven purely by
// journal events and the self-armed deadline check.
func TestEventDrivenEnergySuspendsLateIdler(t *testing.T) {
	r := newRig(78)
	r.manager("m0")
	r.settle(5 * time.Second)

	cfg := DefaultManagerConfig("m1", "mgr:m1")
	cfg.EnergyEnabled = true
	cfg.IdleThreshold = 15 * time.Second
	m1 := NewManager(r.k, r.bus, r.svc, cfg)
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	lc1 := r.lc("n1")
	r.settle(30 * time.Second)
	if lc1.GM() != m1.Addr() {
		t.Fatalf("fixture: n1 joined %q", lc1.GM())
	}
	// n1 was idle since boot; the bootstrap check should already have
	// suspended it. Wake it up again via a VM, then stop the VM and verify
	// the *event-driven* suspend happens for the late idler too.
	r.settle(30 * time.Second)
	if r.nodes["n1"].Power() != types.PowerSuspended {
		t.Fatalf("idle-at-boot node not suspended: %v", r.nodes["n1"].Power())
	}

	if err := r.nodes["n1"].Wake(); err != nil {
		t.Fatal(err)
	}
	r.settle(20 * time.Second) // wake latency is 15s
	var started protocol.StartVMResponse
	r.bus.Call("test", lc1.Addr(), protocol.KindStartVM,
		protocol.StartVMRequest{Spec: types.VMSpec{ID: "v", Requested: types.RV(2, 2048, 10, 10)}}, 5*time.Second,
		func(reply any, err error) {
			if err == nil {
				started = reply.(protocol.StartVMResponse)
			}
		})
	r.settle(10 * time.Second)
	if !started.OK {
		t.Fatalf("start: %+v", started)
	}
	r.bus.Call("test", lc1.Addr(), protocol.KindStopVM, protocol.StopVMRequest{VM: "v"}, time.Second,
		func(any, error) {})
	// Idle transition → node.idle event → check arms at idleSince+15s.
	r.settle(40 * time.Second)
	if r.nodes["n1"].Power() != types.PowerSuspended {
		t.Fatalf("late idler not suspended: %v", r.nodes["n1"].Power())
	}
}
