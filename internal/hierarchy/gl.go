package hierarchy

import (
	"fmt"
	"sort"
	"strconv"

	"snooze/internal/obs"
	"snooze/internal/protocol"
	"snooze/internal/scheduling"
	"snooze/internal/scheduling/view"
	"snooze/internal/telemetry"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// This file implements the Group Leader role: GL heartbeats, GM bookkeeping,
// LC→GM assignment and VM submission dispatching (Sections II-A, II-C).

// becomeGLLocked promotes this manager to Group Leader.
func (m *Manager) becomeGLLocked() {
	if m.role == RoleGL {
		return
	}
	m.role = RoleGL
	m.epoch++
	m.mark("gl.promotions", 1)
	m.emit(telemetry.EventGLElected, telemetry.GMEntity(m.cfg.ID),
		telemetry.A("addr", string(m.cfg.Addr)))
	// GM-side state is abandoned: "GL and GMs do not host VMs" and the
	// paper's promoted GM sheds its LCs, which rejoin through the new GL.
	m.lcs = make(map[types.NodeID]*lcRecord)
	m.glAddr = ""
	failPendingLocked(m)
	m.gms = make(map[types.GroupManagerID]*gmRecord)
	m.stopTickersLocked()
	m.addTicker(m.cfg.HeartbeatPeriod, m.glHeartbeatTick)
	m.addTicker(m.cfg.GMTimeout/3, m.glSweepTick)
	// Announce leadership immediately: a fast first heartbeat shortens the
	// healing window after GL failover (Section II-E).
	m.rt.After(0, m.glHeartbeatTick)
}

func failPendingLocked(m *Manager) {
	pending := m.pending
	m.pending = nil
	for _, p := range pending {
		p := p
		m.rt.After(0, func() { p.respond("", false) })
	}
}

// glHeartbeatTick multicasts the GL heartbeat on GroupGL; EPs and unassigned
// LCs listen (Section II-D).
func (m *Manager) glHeartbeatTick() {
	m.mu.Lock()
	if m.role != RoleGL || m.stopped {
		m.mu.Unlock()
		return
	}
	epoch := m.epoch
	m.mu.Unlock()
	hb := protocol.GLHeartbeat{Addr: string(m.cfg.Addr), Epoch: epoch}
	m.bus.Multicast(m.cfg.Addr, protocol.GroupGL, protocol.KindGLHeartbeat, hb)
}

// glSweepTick prunes GMs whose summaries stopped arriving: "GM failures are
// detected by the GL based on missing heartbeats, and its contact
// information is gracefully removed in order to prevent new VMs from being
// scheduled on it" (Section II-E). It also rebalances LC assignments when
// the population is badly skewed (e.g. after autonomic role assignment
// grows the GM population, Section V).
func (m *Manager) glSweepTick() {
	m.mu.Lock()
	if m.role != RoleGL || m.stopped {
		m.mu.Unlock()
		return
	}
	now := m.rt.Now()
	var failedGMs []types.GroupManagerID
	for id, gm := range m.gms {
		if now-gm.lastSeen > m.cfg.GMTimeout {
			delete(m.gms, id)
			failedGMs = append(failedGMs, id)
			m.mark("gl.gm-failures", 1)
		}
	}
	// Rebalance: if the most-loaded GM manages at least 4 more LCs than
	// the least-loaded one, ask it to shed half the difference.
	var minGM, maxGM *gmRecord
	for _, gm := range m.gms {
		n := gm.summary.ActiveLCs + gm.summary.AsleepLCs
		if minGM == nil || n < minGM.summary.ActiveLCs+minGM.summary.AsleepLCs ||
			(n == minGM.summary.ActiveLCs+minGM.summary.AsleepLCs && gm.id < minGM.id) {
			minGM = gm
		}
		if maxGM == nil || n > maxGM.summary.ActiveLCs+maxGM.summary.AsleepLCs ||
			(n == maxGM.summary.ActiveLCs+maxGM.summary.AsleepLCs && gm.id < maxGM.id) {
			maxGM = gm
		}
	}
	var shedAddr transport.Address
	var shedID types.GroupManagerID
	shed := 0
	if minGM != nil && maxGM != nil && minGM != maxGM {
		lo := minGM.summary.ActiveLCs + minGM.summary.AsleepLCs
		hi := maxGM.summary.ActiveLCs + maxGM.summary.AsleepLCs
		if hi-lo >= 4 {
			shed = (hi - lo) / 2
			shedAddr = maxGM.addr
			shedID = maxGM.id
			// Optimistically shrink the summary so the next sweep does not
			// re-issue before fresh summaries arrive.
			maxGM.summary.ActiveLCs -= shed
		}
	}
	m.mu.Unlock()
	sort.Slice(failedGMs, func(i, j int) bool { return failedGMs[i] < failedGMs[j] })
	for _, id := range failedGMs {
		m.emit(telemetry.EventGMFailed, telemetry.GMEntity(id), telemetry.Attrs{})
	}
	if len(failedGMs) > 0 {
		// State-recovering failover: hand each dead GM's archived telemetry
		// to the survivors, which adopt the history of the LCs about to
		// rejoin them (see recovery.go).
		m.glPushArchives(failedGMs)
	}
	if shed > 0 {
		m.mark("gl.rebalances", 1)
		m.emit(telemetry.EventRebalance, telemetry.GMEntity(shedID),
			telemetry.A("shed", fmt.Sprintf("%d", shed)))
		m.bus.Call(m.cfg.Addr, shedAddr, protocol.KindShed, protocol.ShedRequest{Count: shed}, m.cfg.CallTimeout,
			func(any, error) {})
	}
}

// glOnGMJoin enrolls a GM.
func (m *Manager) glOnGMJoin(req *transport.Request) {
	join, ok := req.Payload.(protocol.GMJoinRequest)
	if !ok {
		req.Respond(protocol.GMJoinResponse{})
		return
	}
	m.mu.Lock()
	if m.role != RoleGL || m.stopped {
		m.mu.Unlock()
		req.Respond(protocol.GMJoinResponse{})
		return
	}
	rec, exists := m.gms[join.GM]
	if !exists {
		rec = &gmRecord{id: join.GM}
		m.gms[join.GM] = rec
	}
	rec.addr = transport.Address(join.Addr)
	rec.lastSeen = m.rt.Now()
	m.mu.Unlock()
	m.mark("gl.gm-joins", 1)
	if !exists {
		m.emit(telemetry.EventGMJoin, telemetry.GMEntity(join.GM),
			telemetry.A("addr", join.Addr))
	}
	req.Respond(protocol.GMJoinResponse{Accepted: true})
}

// glOnSummary ingests a GM summary (doubles as GM→GL heartbeat) and feeds
// the per-group telemetry series the summary carries.
func (m *Manager) glOnSummary(req *transport.Request) {
	up, ok := req.Payload.(protocol.SummaryUpdate)
	if !ok {
		return
	}
	m.mu.Lock()
	if m.role != RoleGL || m.stopped {
		m.mu.Unlock()
		return
	}
	rec, exists := m.gms[up.Summary.GM]
	if !exists {
		rec = &gmRecord{id: up.Summary.GM, addr: transport.Address(up.Addr)}
		m.gms[up.Summary.GM] = rec
	}
	rec.summary = up.Summary
	if up.Scheduling != nil {
		rec.scheduling = up.Scheduling
	}
	rec.lastSeen = m.rt.Now()
	m.mu.Unlock()
	// The merged member-util sketch rides every summary, so the group series'
	// quantiles answer over the members' actual utilization distribution
	// instead of over the rollup's group averages. Adoption is monotone by
	// count and happens on every push path, including the rollup skip below —
	// the sketch is precisely the part of the push a shared-hub rollup does
	// NOT already provide.
	if up.UtilSketch != nil {
		if m.tel.Store().AdoptSketch(telemetry.GMEntity(up.Summary.GM), "util", *up.UtilSketch) {
			m.mark("gl.summary-sketch-adoptions", 1)
		}
	}
	// A GM pushing rollups on a hub shared with this GL already appends the
	// gm/<id> series from its own monitoring flow (gmOnMonitor) at heartbeat
	// cadence; re-recording the coarser summary here would double-feed the
	// series. The GM's claim stamp plus an O(1) freshness probe distinguishes
	// that case from a live deployment with per-process hubs, where this
	// record is the series' only feed. The staleness bound keeps the GL
	// recording when a claimed rollup went quiet (a GM whose LCs all left
	// stops ingesting monitor reports, hence stops rolling up).
	if up.Rollup {
		entity := telemetry.GMEntity(up.Summary.GM)
		if owner, ok := m.tel.Owner(entity); ok && owner == string(up.Summary.GM) {
			if sm, ok := m.tel.Store().Newest(entity, "util"); ok && m.rt.Now()-sm.At <= 2*m.cfg.SummaryPeriod {
				m.mark("gl.summary-rollup-skips", 1)
				return
			}
		}
	}
	m.tel.RecordGroup(m.rt.Now(), up.Summary)
}

// glOnLCAssign assigns an LC to a GM. The default policy follows the paper's
// "least loaded GM" suggestion with a deterministic tie-break, so LCs spread
// across GMs as the hierarchy grows (Section II-D).
func (m *Manager) glOnLCAssign(req *transport.Request) {
	_, ok := req.Payload.(protocol.LCAssignRequest)
	if !ok {
		req.RespondErr(errBadPayload)
		return
	}
	m.mu.Lock()
	if m.role != RoleGL || m.stopped || len(m.gms) == 0 {
		m.mu.Unlock()
		req.Respond(protocol.LCAssignResponse{})
		return
	}
	// Least-loaded by managed LC count, then by ID.
	var best *gmRecord
	for _, gm := range m.gms {
		if best == nil {
			best = gm
			continue
		}
		bl := best.summary.ActiveLCs + best.summary.AsleepLCs
		gl := gm.summary.ActiveLCs + gm.summary.AsleepLCs
		if gl < bl || (gl == bl && gm.id < best.id) {
			best = gm
		}
	}
	// Optimistically count the assignment so a burst of joining LCs
	// spreads instead of piling onto one GM before its next summary.
	best.summary.ActiveLCs++
	resp := protocol.LCAssignResponse{GM: best.id, Addr: string(best.addr)}
	m.mu.Unlock()
	m.mark("gl.lc-assignments", 1)
	req.Respond(resp)
}

// glOnSubmit dispatches a VM submission: per VM, the dispatch policy ranks
// candidate GMs from the (inexact) summaries and the GL probes them linearly
// with placement requests (Section II-C).
func (m *Manager) glOnSubmit(req *transport.Request) {
	sub, ok := req.Payload.(protocol.SubmitRequest)
	if !ok {
		req.RespondErr(errBadPayload)
		return
	}
	start := m.rt.Now()
	m.mu.Lock()
	if m.role != RoleGL || m.stopped {
		m.mu.Unlock()
		req.Respond(protocol.SubmitResponse{Unplaced: vmIDs(sub.VMs)})
		return
	}
	m.mu.Unlock()
	m.mark("gl.submissions", int64(len(sub.VMs)))

	resp := protocol.SubmitResponse{Placed: make(map[types.VMID]types.NodeID)}
	if len(sub.VMs) == 0 {
		req.Respond(resp)
		return
	}
	if m.cfg.DispatchBatch > 1 && len(sub.VMs) > 1 {
		m.dispatchBatch(sub.VMs, func(placed map[types.VMID]types.NodeID, unplaced []types.VMID) {
			resp.Placed = placed
			resp.Unplaced = unplaced
			m.observe("gl.submit-latency", m.rt.Now()-start)
			req.Respond(resp)
		})
		return
	}
	// VMs are dispatched one after another, as in the Snooze GL where a
	// submission's VMs flow through the dispatching policy sequentially;
	// this is what makes submission time scale with the batch size (E1).
	var next func(i int)
	next = func(i int) {
		if i >= len(sub.VMs) {
			m.observe("gl.submit-latency", m.rt.Now()-start)
			req.Respond(resp)
			return
		}
		spec := sub.VMs[i]
		m.dispatchVM(spec, func(node types.NodeID, ok bool) {
			if ok {
				resp.Placed[spec.ID] = node
			} else {
				resp.Unplaced = append(resp.Unplaced, spec.ID)
			}
			next(i + 1)
		})
	}
	next(0)
}

// dispatchVM runs the GL's linear search over candidate GMs for one VM.
func (m *Manager) dispatchVM(spec types.VMSpec, cb func(node types.NodeID, ok bool)) {
	m.mu.Lock()
	if m.role != RoleGL || m.stopped {
		m.mu.Unlock()
		cb("", false)
		return
	}
	summaries := make([]types.GroupSummary, 0, len(m.gms))
	addrs := make(map[types.GroupManagerID]transport.Address, len(m.gms))
	for _, gm := range m.gms {
		summaries = append(summaries, gm.summary)
		addrs[gm.id] = gm.addr
	}
	sort.Slice(summaries, func(i, j int) bool { return summaries[i].GM < summaries[j].GM })
	// The dispatch decision opens the trace the rest of the chain joins:
	// the chosen GM's placement span links back here via the PlaceRequest's
	// trace attributes.
	span := m.cfg.Tracer.StartTrace(obs.KindDispatch, telemetry.VMEntity(spec.ID))
	span.SetPolicy(m.cfg.Dispatch.Name())
	var ex *scheduling.Explain
	if span.Enabled() {
		ex = &scheduling.Explain{}
	}
	// Dispatch consumes capacity views: the summaries enriched with windowed
	// statistics of each group's util series (fed by glOnSummary).
	groups := m.views.Groups(m.rt.Now(), summaries)
	candidates := m.cfg.Dispatch.Candidates(spec, groups, ex)
	var groupStats map[types.GroupManagerID]view.Stats
	if span.Enabled() {
		groupStats = make(map[types.GroupManagerID]view.Stats, len(groups))
		for _, g := range groups {
			groupStats[g.GM] = g.Stats
		}
	}
	// The policy only ranks; which shortlisted GM wins is decided by the
	// probe loop below. Candidate evidence is therefore recorded at the end,
	// once chosen = the GM whose placement succeeded (empty when none did)
	// and probed = how deep the linear search got.
	recordDispatchCandidates := func(chosen types.GroupManagerID, probed int) {
		if ex == nil {
			return
		}
		probeIndex := make(map[string]int, len(candidates))
		for i, id := range candidates {
			probeIndex[string(id)] = i
		}
		for _, c := range ex.Candidates {
			reason := c.Reason
			if c.ID == string(chosen) {
				span.Candidate(c.ID, true, "")
				continue
			}
			if reason == "" { // shortlisted, not chosen: why not?
				if i, ok := probeIndex[c.ID]; ok && i < probed {
					reason = "place-rejected"
				} else {
					reason = "not-probed"
				}
			}
			span.Candidate(c.ID, false, reason)
		}
	}
	m.mu.Unlock()

	if len(candidates) == 0 {
		m.mark("gl.dispatch-no-candidates", 1)
		recordDispatchCandidates("", 0)
		span.Finish("no-candidates")
		cb("", false)
		return
	}
	sc := span.Context()
	var probe func(i int)
	probe = func(i int) {
		if i >= len(candidates) {
			m.mark("gl.dispatch-exhausted", 1)
			recordDispatchCandidates("", len(candidates))
			span.Finish("exhausted")
			cb("", false)
			return
		}
		addr := addrs[candidates[i]]
		preq := protocol.PlaceRequest{VMs: []types.VMSpec{spec}, TraceID: sc.TraceID, ParentSpan: sc.SpanID}
		m.bus.Call(m.cfg.Addr, addr, protocol.KindPlace, preq, m.cfg.CallTimeout, func(reply any, err error) {
			if err == nil {
				if pr, ok := reply.(protocol.PlaceResponse); ok {
					if node, placed := pr.Placed[spec.ID]; placed {
						m.observeValue("gl.probe-depth", float64(i+1))
						// Optimistically shrink the GM's summary so
						// subsequent dispatches in the same burst see the
						// committed capacity.
						m.mu.Lock()
						if gm, ok := m.gms[candidates[i]]; ok {
							gm.summary.Reserved = gm.summary.Reserved.Add(spec.Requested)
							gm.summary.VMs++
						}
						m.mu.Unlock()
						span.SetTarget(string(candidates[i]))
						if st, ok := groupStats[candidates[i]]; ok {
							span.SetView(st.Gen, st.Samples, st.Fresh, st.Truncated)
						}
						span.Annotate("node", string(node))
						span.Annotate("probe-depth", strconv.Itoa(i+1))
						recordDispatchCandidates(candidates[i], i)
						span.Finish("placed")
						cb(node, true)
						return
					}
				}
			}
			probe(i + 1)
		})
	}
	probe(0)
}

// dispatchBatch coalesces one submission into multi-VM placement requests:
// the group views are built once, every VM is ranked through the dispatch
// policy against that single snapshot, and the VMs are grouped by their
// first-choice GM — one PlaceRequest per GM (chunked at DispatchBatch VMs)
// instead of one probe chain per VM. VMs whose batch the GM rejected fall
// back to the sequential per-VM probe, which walks the full candidate list
// with refreshed views. Under AdmissionFFD (the default) the batch is ranked
// largest-first before grouping, so under capacity pressure the placement
// order packs at least as well as arrival order (first-fit-decreasing);
// AdmissionArrival keeps the submission order.
//
// Under overcommit (aggregate demand exceeding fleet capacity) both orders
// saturate the cluster and place identical resource totals, but the admitted
// *set* differs: largest-first admits fewer, larger VMs where arrival order
// admits more small ones. That is an admission-ordering property of FFD, not
// a capacity loss — callers who care about admitted-VM count rather than
// admitted resources under scarcity should set AdmissionOrder to "arrival"
// or keep DispatchBatch at 1.
func (m *Manager) dispatchBatch(specs []types.VMSpec, done func(placed map[types.VMID]types.NodeID, unplaced []types.VMID)) {
	m.mu.Lock()
	if m.role != RoleGL || m.stopped {
		m.mu.Unlock()
		done(nil, vmIDs(specs))
		return
	}
	summaries := make([]types.GroupSummary, 0, len(m.gms))
	addrs := make(map[types.GroupManagerID]transport.Address, len(m.gms))
	for _, gm := range m.gms {
		summaries = append(summaries, gm.summary)
		addrs[gm.id] = gm.addr
	}
	sort.Slice(summaries, func(i, j int) bool { return summaries[i].GM < summaries[j].GM })
	// One Groups build and one policy pass per VM against the same snapshot
	// replace the sequential path's N rebuilds — the views are equally stale
	// for every VM in the batch, which is exactly the summary inexactness the
	// dispatch policy already tolerates.
	groups := m.views.Groups(m.rt.Now(), summaries)
	// Rank the batch largest-first (decreasing CPU, then memory, ID
	// tie-break): under capacity pressure the placement order decides how
	// well the bins pack, and first-fit-decreasing beats arrival order.
	// AdmissionArrival skips the ranking and admits in submission order.
	ranked := append([]types.VMSpec(nil), specs...)
	if m.cfg.AdmissionOrder != AdmissionArrival {
		sort.Slice(ranked, func(i, j int) bool {
			a, b := ranked[i].Requested, ranked[j].Requested
			if a.CPU != b.CPU {
				return a.CPU > b.CPU
			}
			if a.Memory != b.Memory {
				return a.Memory > b.Memory
			}
			return ranked[i].ID < ranked[j].ID
		})
	}
	byGM := make(map[types.GroupManagerID][]types.VMSpec)
	var gmOrder []types.GroupManagerID
	var noCandidates []types.VMID
	for _, spec := range ranked {
		cands := m.cfg.Dispatch.Candidates(spec, groups, nil)
		if len(cands) == 0 {
			noCandidates = append(noCandidates, spec.ID)
			continue
		}
		if _, seen := byGM[cands[0]]; !seen {
			gmOrder = append(gmOrder, cands[0])
		}
		byGM[cands[0]] = append(byGM[cands[0]], spec)
	}
	m.mu.Unlock()
	if n := len(noCandidates); n > 0 {
		m.mark("gl.dispatch-no-candidates", int64(n))
	}

	placed := make(map[types.VMID]types.NodeID, len(specs))
	unplaced := noCandidates
	var fallback []types.VMSpec
	// Fallback runs after every batch response arrived: the optimistic
	// summary updates from the placed VMs are then visible, so the linear
	// probes rank GMs against post-batch capacity.
	runFallback := func() {
		var next func(i int)
		next = func(i int) {
			if i >= len(fallback) {
				done(placed, unplaced)
				return
			}
			spec := fallback[i]
			m.dispatchVM(spec, func(node types.NodeID, ok bool) {
				if ok {
					placed[spec.ID] = node
				} else {
					unplaced = append(unplaced, spec.ID)
				}
				next(i + 1)
			})
		}
		next(0)
	}

	// Chunk each GM's share at DispatchBatch VMs per request and issue all
	// requests concurrently; a channel gate serializes the aggregation.
	type chunk struct {
		gm   types.GroupManagerID
		addr transport.Address
		vms  []types.VMSpec
	}
	var chunks []chunk
	for _, id := range gmOrder {
		vms := byGM[id]
		for len(vms) > 0 {
			n := m.cfg.DispatchBatch
			if n > len(vms) {
				n = len(vms)
			}
			chunks = append(chunks, chunk{gm: id, addr: addrs[id], vms: vms[:n]})
			vms = vms[n:]
		}
	}
	if len(chunks) == 0 {
		runFallback()
		return
	}
	m.mark("gl.dispatch-batches", int64(len(chunks)))
	remaining := len(chunks)
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	for _, c := range chunks {
		c := c
		// One dispatch trace covers the whole chunk; the GM's per-VM
		// placement spans link back through the request's trace fields.
		span := m.cfg.Tracer.StartTrace(obs.KindDispatch, telemetry.GMEntity(c.gm))
		span.SetPolicy(m.cfg.Dispatch.Name())
		span.SetTarget(string(c.gm))
		span.Annotate("batch", strconv.Itoa(len(c.vms)))
		sc := span.Context()
		preq := protocol.PlaceRequest{VMs: c.vms, TraceID: sc.TraceID, ParentSpan: sc.SpanID}
		m.bus.Call(m.cfg.Addr, c.addr, protocol.KindPlace, preq, m.cfg.CallTimeout, func(reply any, err error) {
			pr, ok := protocol.PlaceResponse{}, false
			if err == nil {
				pr, ok = reply.(protocol.PlaceResponse)
			}
			<-gate
			got := 0
			for _, spec := range c.vms {
				if node, hit := pr.Placed[spec.ID]; ok && hit {
					placed[spec.ID] = node
					got++
					m.mu.Lock()
					if gm, live := m.gms[c.gm]; live {
						gm.summary.Reserved = gm.summary.Reserved.Add(spec.Requested)
						gm.summary.VMs++
					}
					m.mu.Unlock()
				} else {
					fallback = append(fallback, spec)
				}
			}
			remaining--
			last := remaining == 0
			gate <- struct{}{}
			span.Annotate("placed", strconv.Itoa(got))
			switch {
			case got == len(c.vms):
				span.Finish("placed")
			case got > 0:
				span.Finish("partial")
			default:
				span.Finish("rejected")
			}
			if last {
				runFallback()
			}
		})
	}
}

// glOnTopology exports the hierarchy for CLI visualization (Section II-A).
// A deep request fans out to every GM for per-LC detail.
func (m *Manager) glOnTopology(req *transport.Request) {
	tr, _ := req.Payload.(protocol.TopologyRequest) // zero value = shallow
	m.mu.Lock()
	if m.role != RoleGL || m.stopped {
		m.mu.Unlock()
		req.RespondErr(errNotLeader)
		return
	}
	resp := protocol.TopologyResponse{
		GL: string(m.cfg.Addr),
		// The GL's own scheduling configuration travels with the topology;
		// each GM additionally reports its own (via summary pushes), so the
		// export stays truthful when groups run different policies.
		Scheduling: m.schedulingInfo(),
	}
	addrs := make([]transport.Address, 0, len(m.gms))
	for _, gm := range m.gms {
		resp.GMs = append(resp.GMs, protocol.TopologyGM{
			GM: gm.id, Addr: string(gm.addr), Summary: gm.summary, Scheduling: gm.scheduling,
		})
		addrs = append(addrs, gm.addr)
	}
	m.mu.Unlock()
	sort.Slice(resp.GMs, func(i, j int) bool { return resp.GMs[i].GM < resp.GMs[j].GM })
	if !tr.Deep || len(resp.GMs) == 0 {
		req.Respond(resp)
		return
	}
	// Deep export: collect each GM's LC inventory; unreachable GMs simply
	// contribute no detail.
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	remaining := len(resp.GMs)
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	for i := range resp.GMs {
		i := i
		m.bus.Call(m.cfg.Addr, transport.Address(resp.GMs[i].Addr), protocol.KindLCList, struct{}{}, m.cfg.CallTimeout,
			func(reply any, err error) {
				<-gate
				if err == nil {
					if lr, ok := reply.(protocol.LCListResponse); ok {
						resp.GMs[i].LCs = lr.LCs
					}
				}
				remaining--
				done := remaining == 0
				gate <- struct{}{}
				if done {
					req.Respond(resp)
				}
			})
	}
}

var errNotLeader = fmtErr("hierarchy: not the group leader")

type fmtErr string

func (e fmtErr) Error() string { return string(e) }

// GMCount returns the number of enrolled GMs (GL role instrumentation).
func (m *Manager) GMCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.gms)
}
