package hierarchy

import (
	"testing"
	"time"

	"snooze/internal/protocol"
	"snooze/internal/types"
)

// TestViewEpochGatesStoreReductions pins the two properties the GM-wide view
// epoch promises:
//
//  1. epoch unchanged ⇒ a repeated view build is a pure memo hit — zero new
//     telemetry-store reductions, the whole []view.Node comes from cache;
//  2. a member monitor-report append invalidates the memo exactly once — the
//     next build misses, every build after that (same epoch) hits again.
//
// The builds are driven through the public placement path with an oversized
// VM: placeVM constructs the active views before discovering nothing fits,
// and the no-fit reply leaves no reservation behind, so probing never moves
// the epoch itself.
func TestViewEpochGatesStoreReductions(t *testing.T) {
	r := newRig(91)
	r.manager("m0") // becomes GL
	r.settle(5 * time.Second)
	m1 := r.manager("m1") // becomes GM
	r.lc("n1")
	r.lc("n2")
	r.settle(30 * time.Second)
	if m1.Role() != RoleGM {
		t.Fatalf("fixture: m1 role %v, want GM", m1.Role())
	}
	if active, _ := m1.LCCount(); active != 2 {
		t.Fatalf("fixture: m1 manages %d active LCs, want 2", active)
	}

	// probe drives exactly one view build on m1: a Place request whose VM is
	// far larger than any node, so the build happens but no reservation (and
	// hence no epoch bump) follows.
	probe := func(id string) {
		spec := types.VMSpec{ID: types.VMID(id), Requested: types.RV(1000, 1<<30, 10, 10)}
		r.bus.Call("test", m1.Addr(), protocol.KindPlace,
			protocol.PlaceRequest{VMs: []types.VMSpec{spec}}, time.Second,
			func(any, error) {})
		r.settle(30 * time.Millisecond)
	}

	// Align to the start of a quiet window: wait for the next monitor burst
	// to bump the epoch, then let the whole burst drain. The next burst is a
	// full MonitorPeriod away, leaving plenty of room for two probes.
	align := m1.ViewEpoch()
	for i := 0; i < 1000 && m1.ViewEpoch() == align; i++ {
		r.settle(10 * time.Millisecond)
	}
	if m1.ViewEpoch() == align {
		t.Fatal("fixture: epoch never moved — monitor reports not flowing")
	}
	r.settle(300 * time.Millisecond)

	// Property 1: two builds in one epoch — one miss at most, and the second
	// build reduces nothing.
	probe("p1") // warm the memo at the current epoch
	e1 := m1.ViewEpoch()
	hits1, miss1 := m1.ViewMemoCounters()
	red1 := m1.Telemetry().Store().TotalReductions()

	probe("p2")
	e2 := m1.ViewEpoch()
	hits2, miss2 := m1.ViewMemoCounters()
	red2 := m1.Telemetry().Store().TotalReductions()

	if e2 != e1 {
		t.Fatalf("fixture: epoch moved %d -> %d between probes; widen the quiet window", e1, e2)
	}
	if miss2 != miss1 {
		t.Fatalf("epoch unchanged but memo missed: misses %d -> %d", miss1, miss2)
	}
	if hits2 < hits1+1 {
		t.Fatalf("second build did not hit the memo: hits %d -> %d", hits1, hits2)
	}
	if red2 != red1 {
		t.Fatalf("epoch-unchanged rebuild reduced series: reductions %d -> %d", red1, red2)
	}

	// Property 2: the next monitor burst appends member reports and bumps the
	// epoch; the first build after it misses exactly once, and the build
	// after that hits again with zero new reductions.
	for i := 0; i < 1000 && m1.ViewEpoch() == e2; i++ {
		r.settle(10 * time.Millisecond)
	}
	if m1.ViewEpoch() == e2 {
		t.Fatal("fixture: epoch never moved after the quiet window")
	}
	r.settle(300 * time.Millisecond)

	probe("p3")
	_, miss3 := m1.ViewMemoCounters()
	if miss3 != miss2+1 {
		t.Fatalf("monitor append should invalidate exactly once: misses %d -> %d", miss2, miss3)
	}
	red3 := m1.Telemetry().Store().TotalReductions()
	if red3 == red2 {
		t.Fatalf("post-append rebuild served from cache: reductions stuck at %d", red2)
	}

	probe("p4")
	hits4, miss4 := m1.ViewMemoCounters()
	red4 := m1.Telemetry().Store().TotalReductions()
	if miss4 != miss3 {
		t.Fatalf("repeat build after invalidation missed again: misses %d -> %d", miss3, miss4)
	}
	if hits4 == 0 {
		t.Fatal("memo recorded no hits at all")
	}
	if red4 != red3 {
		t.Fatalf("epoch-unchanged rebuild reduced series: reductions %d -> %d", red3, red4)
	}
}
