// Package scheduling implements the two-level VM scheduling policies of
// Section II-C. At the Group Leader, dispatching policies shortlist
// candidate GMs from (inexact) group summaries; the GL then performs a
// linear search over the candidates. At the Group Manager, placement
// policies choose a Local Controller for each incoming VM, and relocation
// policies react to overload/underload anomaly events from the LCs.
//
// All policies consume capacity views (internal/scheduling/view): the
// point-in-time snapshot enriched with windowed utilization statistics from
// the telemetry store. The classic policies read only the snapshot half;
// the telemetry-aware ones (telemetry_policies.go) additionally use the
// percentile and trend statistics, falling back to snapshot behaviour when
// a view's history is thin or stale.
package scheduling

import (
	"fmt"
	"sort"

	"snooze/internal/scheduling/view"
	"snooze/internal/types"
)

// ---------------------------------------------------------------------------
// GL-level dispatching
// ---------------------------------------------------------------------------

// DispatchPolicy orders GMs as placement candidates for a VM request.
// As Section II-C notes, "summary information is not sufficient to take
// exact dispatching decisions... Consequently, a list of candidate GMs is
// provided by the dispatching policies" — the GL linearly probes the list.
type DispatchPolicy interface {
	// Candidates returns GM IDs to probe, best first. Groups whose free
	// capacity cannot possibly hold the VM are filtered out (they may still
	// fail the probe: free capacity may be fragmented across LCs). A non-nil
	// ex collects per-group consideration evidence (nil disables).
	Candidates(vm types.VMSpec, groups []view.Group, ex *Explain) []types.GroupManagerID
	Name() string
}

func feasible(vm types.VMSpec, g view.Group) bool {
	return g.ActiveLCs+g.AsleepLCs > 0 && vm.Requested.FitsIn(g.Free())
}

// RoundRobinDispatch cycles through GMs across calls, spreading load
// uniformly (the paper's example policy).
type RoundRobinDispatch struct {
	next int
}

// Candidates implements DispatchPolicy.
func (r *RoundRobinDispatch) Candidates(vm types.VMSpec, groups []view.Group, ex *Explain) []types.GroupManagerID {
	sorted := append([]view.Group(nil), groups...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].GM < sorted[j].GM })
	n := len(sorted)
	var out []types.GroupManagerID
	for i := 0; i < n; i++ {
		g := sorted[(r.next+i)%n]
		if feasible(vm, g) {
			out = append(out, g.GM)
			ex.Shortlist(string(g.GM))
		} else {
			ex.Reject(string(g.GM), ReasonInfeasible)
		}
	}
	if n > 0 {
		r.next = (r.next + 1) % n
	}
	return out
}

// Name implements DispatchPolicy.
func (r *RoundRobinDispatch) Name() string { return "round-robin" }

// LeastLoadedDispatch prefers the GM with the most free capacity (L1 norm of
// the free vector normalized by total), the paper's "load balanced" option.
type LeastLoadedDispatch struct{}

// Candidates implements DispatchPolicy.
func (LeastLoadedDispatch) Candidates(vm types.VMSpec, groups []view.Group, ex *Explain) []types.GroupManagerID {
	type scored struct {
		id   types.GroupManagerID
		free float64
	}
	var sc []scored
	for _, g := range groups {
		if !feasible(vm, g) {
			ex.Reject(string(g.GM), ReasonInfeasible)
			continue
		}
		sc = append(sc, scored{id: g.GM, free: g.Free().UtilizationL1(g.Total)})
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].free != sc[j].free {
			return sc[i].free > sc[j].free
		}
		return sc[i].id < sc[j].id
	})
	out := make([]types.GroupManagerID, len(sc))
	for i, s := range sc {
		out[i] = s.id
		ex.Shortlist(string(s.id))
	}
	return out
}

// Name implements DispatchPolicy.
func (LeastLoadedDispatch) Name() string { return "least-loaded" }

// MostLoadedDispatch prefers the fullest GM that can still hold the VM —
// the energy-friendly choice, concentrating load so whole groups stay idle.
type MostLoadedDispatch struct{}

// Candidates implements DispatchPolicy.
func (MostLoadedDispatch) Candidates(vm types.VMSpec, groups []view.Group, ex *Explain) []types.GroupManagerID {
	type scored struct {
		id   types.GroupManagerID
		free float64
	}
	var sc []scored
	for _, g := range groups {
		if !feasible(vm, g) {
			ex.Reject(string(g.GM), ReasonInfeasible)
			continue
		}
		sc = append(sc, scored{id: g.GM, free: g.Free().UtilizationL1(g.Total)})
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].free != sc[j].free {
			return sc[i].free < sc[j].free
		}
		return sc[i].id < sc[j].id
	})
	out := make([]types.GroupManagerID, len(sc))
	for i, s := range sc {
		out[i] = s.id
		ex.Shortlist(string(s.id))
	}
	return out
}

// Name implements DispatchPolicy.
func (MostLoadedDispatch) Name() string { return "most-loaded" }

// ---------------------------------------------------------------------------
// GM-level placement
// ---------------------------------------------------------------------------

// PlacementPolicy chooses an LC for one VM. Nodes are offered with their
// current reservations; only PowerOn nodes are offered.
type PlacementPolicy interface {
	// Place returns the chosen node ID, or false if no active node fits. A
	// non-nil ex collects per-node rejection evidence (nil disables).
	Place(vm types.VMSpec, nodes []view.Node, ex *Explain) (types.NodeID, bool)
	Name() string
}

func fits(vm types.VMSpec, n view.Node) bool {
	return n.Power == types.PowerOn && vm.Requested.FitsIn(n.FreeReserved())
}

// unfitReason classifies why fits failed for evidence recording.
func unfitReason(n view.Node) string {
	if n.Power != types.PowerOn {
		return ReasonPoweredOff
	}
	return ReasonNoFit
}

// sortedByID returns nodes sorted by ID for deterministic iteration.
func sortedByID(nodes []view.Node) []view.Node {
	out := append([]view.Node(nil), nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.ID < out[j].Spec.ID })
	return out
}

// FirstFit places on the first node (by ID) with room — Eucalyptus-style
// "greedy" (Section IV).
type FirstFit struct{}

// Place implements PlacementPolicy.
func (FirstFit) Place(vm types.VMSpec, nodes []view.Node, ex *Explain) (types.NodeID, bool) {
	for _, n := range sortedByID(nodes) {
		if fits(vm, n) {
			ex.Choose(string(n.Spec.ID))
			return n.Spec.ID, true
		}
		ex.Reject(string(n.Spec.ID), unfitReason(n))
	}
	return "", false
}

// Name implements PlacementPolicy.
func (FirstFit) Name() string { return "first-fit" }

// BestFit places on the feasible node with the least free capacity left
// after placement (tightest fit → better packing).
type BestFit struct{}

// Place implements PlacementPolicy.
func (BestFit) Place(vm types.VMSpec, nodes []view.Node, ex *Explain) (types.NodeID, bool) {
	best, found := types.NodeID(""), false
	bestFree := 0.0
	var feasibleIDs []types.NodeID
	for _, n := range sortedByID(nodes) {
		if !fits(vm, n) {
			ex.Reject(string(n.Spec.ID), unfitReason(n))
			continue
		}
		if ex != nil {
			feasibleIDs = append(feasibleIDs, n.Spec.ID)
		}
		free := n.FreeReserved().Sub(vm.Requested).UtilizationL1(n.Spec.Capacity)
		if !found || free < bestFree {
			best, bestFree, found = n.Spec.ID, free, true
		}
	}
	recordScored(ex, feasibleIDs, best)
	return best, found
}

// Name implements PlacementPolicy.
func (BestFit) Name() string { return "best-fit" }

// WorstFit places on the feasible node with the most free capacity —
// the load-balancing choice that minimizes overload risk.
type WorstFit struct{}

// Place implements PlacementPolicy.
func (WorstFit) Place(vm types.VMSpec, nodes []view.Node, ex *Explain) (types.NodeID, bool) {
	best, found := types.NodeID(""), false
	bestFree := 0.0
	var feasibleIDs []types.NodeID
	for _, n := range sortedByID(nodes) {
		if !fits(vm, n) {
			ex.Reject(string(n.Spec.ID), unfitReason(n))
			continue
		}
		if ex != nil {
			feasibleIDs = append(feasibleIDs, n.Spec.ID)
		}
		free := n.FreeReserved().Sub(vm.Requested).UtilizationL1(n.Spec.Capacity)
		if !found || free > bestFree {
			best, bestFree, found = n.Spec.ID, free, true
		}
	}
	recordScored(ex, feasibleIDs, best)
	return best, found
}

// Name implements PlacementPolicy.
func (WorstFit) Name() string { return "worst-fit" }

// RoundRobinPlacement cycles through LCs across calls (the paper's example
// placement policy alongside first-fit).
type RoundRobinPlacement struct {
	next int
}

// Place implements PlacementPolicy.
func (r *RoundRobinPlacement) Place(vm types.VMSpec, nodes []view.Node, ex *Explain) (types.NodeID, bool) {
	sorted := sortedByID(nodes)
	n := len(sorted)
	for i := 0; i < n; i++ {
		cand := sorted[(r.next+i)%n]
		if fits(vm, cand) {
			r.next = (r.next + i + 1) % n
			ex.Choose(string(cand.Spec.ID))
			return cand.Spec.ID, true
		}
		ex.Reject(string(cand.Spec.ID), unfitReason(cand))
	}
	return "", false
}

// Name implements PlacementPolicy.
func (r *RoundRobinPlacement) Name() string { return "round-robin" }

// ---------------------------------------------------------------------------
// Relocation (overload / underload)
// ---------------------------------------------------------------------------

// Thresholds define the LC anomaly detectors (Section II-A: LCs "detect
// local overload/underload anomaly situations and report them to the
// assigned GM").
type Thresholds struct {
	// Overload fires when measured utilization exceeds this fraction of
	// capacity on any dimension.
	Overload float64
	// Underload fires when utilization is below this fraction on every
	// dimension (and the node hosts at least one VM).
	Underload float64
}

// DefaultThresholds matches the common 90%/20% split of the adaptive
// threshold literature the paper cites ([8]).
func DefaultThresholds() Thresholds { return Thresholds{Overload: 0.9, Underload: 0.2} }

// Classify returns (overloaded, underloaded) for a node status.
func (t Thresholds) Classify(n types.NodeStatus) (over, under bool) {
	if n.Power != types.PowerOn {
		return false, false
	}
	u := n.Used.Divide(n.Spec.Capacity)
	over = u.NormInf() > t.Overload
	under = len(n.VMs) > 0 && !over && u.NormInf() < t.Underload
	return over, under
}

// Move pairs a VM with a relocation destination.
type Move struct {
	VM   types.VMID
	From types.NodeID
	To   types.NodeID
}

// RelocationPolicy computes moves in response to an anomaly on one node.
type RelocationPolicy interface {
	// Relocate returns moves for VMs on the anomalous node `src`;
	// `srcVMs` are its current VMs, `others` the GM's other active nodes.
	// A non-nil ex records each planned move as a chosen "vm→node"
	// candidate (nil disables).
	Relocate(src view.Node, srcVMs []types.VMStatus, others []view.Node, ex *Explain) []Move
	Name() string
}

// recordScored marks the feasible candidates of a scored placement pass:
// the winner as chosen, the rest as outscored.
func recordScored(ex *Explain, feasible []types.NodeID, chosen types.NodeID) {
	if ex == nil {
		return
	}
	for _, id := range feasible {
		if id == chosen {
			ex.Choose(string(id))
		} else {
			ex.Reject(string(id), ReasonOutscored)
		}
	}
}

// recordMoves records planned relocation moves as chosen candidates.
func recordMoves(ex *Explain, moves []Move) {
	if ex == nil {
		return
	}
	for _, mv := range moves {
		ex.Choose(string(mv.VM) + "→" + string(mv.To))
	}
}

// SkipsAnomaly is an optional RelocationPolicy extension: a policy that can
// judge an anomaly to be resolving on its own implements it, so the caller
// (the GM) can distinguish deliberate inaction from "no feasible moves" —
// only the latter should escalate (e.g. wake sleeping capacity on an
// unresolvable overload).
type SkipsAnomaly interface {
	// SkipAnomaly reports that the anomaly on src needs no action.
	SkipAnomaly(src view.Node) bool
}

// OverloadRelocation moves the smallest set of VMs (largest-first by measured
// demand) needed to bring the source back under the overload threshold; each
// is sent to the least-loaded node with room ("VMs must be relocated to a
// more lightly loaded node in order to mitigate performance degradation").
type OverloadRelocation struct {
	Thresholds Thresholds
}

// Relocate implements RelocationPolicy.
func (p OverloadRelocation) Relocate(src view.Node, srcVMs []types.VMStatus, others []view.Node, ex *Explain) []Move {
	th := p.Thresholds
	if th.Overload == 0 {
		th = DefaultThresholds()
	}
	// Candidate receivers: active nodes, least loaded first.
	recv := filterActive(others, src.Spec.ID)
	sort.Slice(recv, func(i, j int) bool {
		ui := recv[i].Used.UtilizationL1(recv[i].Spec.Capacity)
		uj := recv[j].Used.UtilizationL1(recv[j].Spec.Capacity)
		if ui != uj {
			return ui < uj
		}
		return recv[i].Spec.ID < recv[j].Spec.ID
	})
	// Move the most demanding VMs first: fewest migrations to relieve the
	// hot spot.
	vms := append([]types.VMStatus(nil), srcVMs...)
	sort.Slice(vms, func(i, j int) bool {
		ni, nj := vms[i].Used.Norm1(), vms[j].Used.Norm1()
		if ni != nj {
			return ni > nj
		}
		return vms[i].Spec.ID < vms[j].Spec.ID
	})
	used := src.Used
	reserved := src.Reserved
	var moves []Move
	for _, vm := range vms {
		if used.Divide(src.Spec.Capacity).NormInf() <= th.Overload {
			break
		}
		if vm.State != types.VMRunning {
			continue
		}
		for i := range recv {
			if !vm.Spec.Requested.FitsIn(recv[i].FreeReserved()) {
				continue
			}
			// Receiving this VM must not overload the receiver.
			after := recv[i].Used.Add(vm.Used).Divide(recv[i].Spec.Capacity)
			if after.NormInf() > th.Overload {
				continue
			}
			moves = append(moves, Move{VM: vm.Spec.ID, From: src.Spec.ID, To: recv[i].Spec.ID})
			recv[i].Used = recv[i].Used.Add(vm.Used)
			recv[i].Reserved = recv[i].Reserved.Add(vm.Spec.Requested)
			used = used.Sub(vm.Used).Max(types.ResourceVector{})
			reserved = reserved.Sub(vm.Spec.Requested).Max(types.ResourceVector{})
			break
		}
	}
	recordMoves(ex, moves)
	return moves
}

// Name implements RelocationPolicy.
func (OverloadRelocation) Name() string { return "overload-relocation" }

// UnderloadRelocation tries to empty an underutilized node by moving ALL its
// VMs to moderately loaded nodes ("move away VMs to moderately loaded LCs in
// order to create enough idle-time to transition the underutilized LCs into
// a lower power state"). Returns nil unless every VM can be rehomed —
// partially draining a node saves no energy.
type UnderloadRelocation struct {
	Thresholds Thresholds
}

// Relocate implements RelocationPolicy.
func (p UnderloadRelocation) Relocate(src view.Node, srcVMs []types.VMStatus, others []view.Node, ex *Explain) []Move {
	th := p.Thresholds
	if th.Overload == 0 {
		th = DefaultThresholds()
	}
	// Receivers: prefer the most loaded nodes that still have room, so
	// moderately loaded nodes fill up and empty nodes stay empty. Empty
	// nodes are not receivers at all: draining an underloaded node into an
	// empty one just relocates the underload (and oscillates when the pair
	// keeps trading places).
	recv := filterActive(others, src.Spec.ID)
	kept := recv[:0]
	for _, n := range recv {
		if len(n.VMs) == 0 && n.Used.Zero() {
			continue
		}
		kept = append(kept, n)
	}
	recv = kept
	sort.Slice(recv, func(i, j int) bool {
		ui := recv[i].Used.UtilizationL1(recv[i].Spec.Capacity)
		uj := recv[j].Used.UtilizationL1(recv[j].Spec.Capacity)
		if ui != uj {
			return ui > uj
		}
		return recv[i].Spec.ID < recv[j].Spec.ID
	})
	vms := append([]types.VMStatus(nil), srcVMs...)
	sort.Slice(vms, func(i, j int) bool { // biggest first: hardest to fit
		ni, nj := vms[i].Spec.Requested.Norm1(), vms[j].Spec.Requested.Norm1()
		if ni != nj {
			return ni > nj
		}
		return vms[i].Spec.ID < vms[j].Spec.ID
	})
	var moves []Move
	for _, vm := range vms {
		if vm.State != types.VMRunning {
			return nil // cannot fully drain (booting/migrating VM present)
		}
		placed := false
		for i := range recv {
			if !vm.Spec.Requested.FitsIn(recv[i].FreeReserved()) {
				continue
			}
			after := recv[i].Used.Add(vm.Used).Divide(recv[i].Spec.Capacity)
			if after.NormInf() > th.Overload {
				continue
			}
			moves = append(moves, Move{VM: vm.Spec.ID, From: src.Spec.ID, To: recv[i].Spec.ID})
			recv[i].Used = recv[i].Used.Add(vm.Used)
			recv[i].Reserved = recv[i].Reserved.Add(vm.Spec.Requested)
			placed = true
			break
		}
		if !placed {
			return nil // all-or-nothing
		}
	}
	recordMoves(ex, moves)
	return moves
}

// Name implements RelocationPolicy.
func (UnderloadRelocation) Name() string { return "underload-relocation" }

func filterActive(nodes []view.Node, exclude types.NodeID) []view.Node {
	var out []view.Node
	for _, n := range nodes {
		if n.Spec.ID == exclude || n.Power != types.PowerOn {
			continue
		}
		out = append(out, n)
	}
	return out
}

// ---------------------------------------------------------------------------
// Policy registry
// ---------------------------------------------------------------------------

// NewDispatchPolicy returns the named dispatch policy.
func NewDispatchPolicy(name string) (DispatchPolicy, error) {
	switch name {
	case "round-robin", "":
		return &RoundRobinDispatch{}, nil
	case "least-loaded":
		return LeastLoadedDispatch{}, nil
	case "most-loaded":
		return MostLoadedDispatch{}, nil
	case "p95-headroom":
		return P95HeadroomDispatch{}, nil
	default:
		return nil, fmt.Errorf("scheduling: unknown dispatch policy %q", name)
	}
}

// NewPlacementPolicy returns the named placement policy.
func NewPlacementPolicy(name string) (PlacementPolicy, error) {
	switch name {
	case "first-fit", "":
		return FirstFit{}, nil
	case "best-fit":
		return BestFit{}, nil
	case "worst-fit":
		return WorstFit{}, nil
	case "round-robin":
		return &RoundRobinPlacement{}, nil
	case "percentile-fit":
		return PercentileFitPlacement{}, nil
	default:
		return nil, fmt.Errorf("scheduling: unknown placement policy %q", name)
	}
}

// NewRelocationPolicy returns the named relocation policy. The default
// (empty) name maps to the overload policy; callers configuring the
// underload side should name it explicitly.
func NewRelocationPolicy(name string) (RelocationPolicy, error) {
	switch name {
	case "overload-relocation", "":
		return OverloadRelocation{}, nil
	case "underload-relocation":
		return UnderloadRelocation{}, nil
	case "trend-relocation":
		return TrendAwareRelocation{}, nil
	case "trend-underload":
		return TrendAwareUnderload{}, nil
	default:
		return nil, fmt.Errorf("scheduling: unknown relocation policy %q", name)
	}
}
