package scheduling

// Telemetry-aware policies: the consumers of the windowed half of the
// capacity views. Each one degrades gracefully — a view whose Stats are not
// Fresh (thin history, stale series, no hub wired) is treated exactly like
// its point-in-time snapshot, so these policies are safe defaults even on a
// cold deployment.

import (
	"sort"

	"snooze/internal/scheduling/view"
	"snooze/internal/types"
)

// P95HeadroomDispatch ranks GMs by predicted headroom: 1 minus the larger of
// the group's p95 utilization over the view horizon and its instantaneous
// utilization. A group that looks empty right now but ran hot for most of
// the window sorts behind a genuinely quiet one — the GL stops chasing
// transient dips in the (inexact) summaries. With thin history the score
// degrades to instantaneous utilization, i.e. least-loaded-by-utilization.
type P95HeadroomDispatch struct{}

// Candidates implements DispatchPolicy.
func (P95HeadroomDispatch) Candidates(vm types.VMSpec, groups []view.Group, ex *Explain) []types.GroupManagerID {
	type scored struct {
		id       types.GroupManagerID
		headroom float64
		free     float64
	}
	var sc []scored
	for _, g := range groups {
		if !feasible(vm, g) {
			ex.Reject(string(g.GM), ReasonInfeasible)
			continue
		}
		sc = append(sc, scored{
			id:       g.GM,
			headroom: 1 - g.PredictedUtil(),
			free:     g.Free().UtilizationL1(g.Total),
		})
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].headroom != sc[j].headroom {
			return sc[i].headroom > sc[j].headroom
		}
		if sc[i].free != sc[j].free {
			return sc[i].free > sc[j].free
		}
		return sc[i].id < sc[j].id
	})
	out := make([]types.GroupManagerID, len(sc))
	for i, s := range sc {
		out[i] = s.id
		ex.Shortlist(string(s.id))
	}
	return out
}

// Name implements DispatchPolicy.
func (P95HeadroomDispatch) Name() string { return "p95-headroom" }

// PercentileFitPlacement is best-fit over reservations, gated by predicted
// utilization: a node whose p95 utilization plus the VM's demand share would
// cross SafetyThreshold is not a candidate, even if its instantaneous load
// says otherwise — the "transiently idle but historically hot" node the
// paper's point-in-time estimates cannot see. If no node passes the safety
// gate (or histories are thin), it degrades to plain best-fit.
type PercentileFitPlacement struct {
	// SafetyThreshold caps predicted post-placement utilization
	// (default 0.9, the overload threshold).
	SafetyThreshold float64
}

func (p PercentileFitPlacement) threshold() float64 {
	if p.SafetyThreshold > 0 {
		return p.SafetyThreshold
	}
	return DefaultThresholds().Overload
}

// Place implements PlacementPolicy.
func (p PercentileFitPlacement) Place(vm types.VMSpec, nodes []view.Node, ex *Explain) (types.NodeID, bool) {
	th := p.threshold()
	best, found := types.NodeID(""), false
	bestFree := 0.0
	safe := func(n view.Node) bool {
		demand := vm.Requested.Divide(n.Spec.Capacity).NormInf()
		return n.PredictedUtil()+demand <= th
	}
	var feasibleIDs []types.NodeID
	for _, n := range sortedByID(nodes) {
		if !fits(vm, n) {
			ex.Reject(string(n.Spec.ID), unfitReason(n))
			continue
		}
		if !safe(n) {
			ex.Reject(string(n.Spec.ID), ReasonP95OverThreshold)
			continue
		}
		if ex != nil {
			feasibleIDs = append(feasibleIDs, n.Spec.ID)
		}
		free := n.FreeReserved().Sub(vm.Requested).UtilizationL1(n.Spec.Capacity)
		if !found || free < bestFree {
			best, bestFree, found = n.Spec.ID, free, true
		}
	}
	if found {
		recordScored(ex, feasibleIDs, best)
		return best, true
	}
	// No node passes the safety gate: better an imperfect placement than
	// none (the relocation policies clean up afterwards). The fallback's
	// evidence is appended after the gate rejections above, so a trace shows
	// both phases of the decision.
	return BestFit{}.Place(vm, nodes, ex)
}

// Name implements PlacementPolicy.
func (PercentileFitPlacement) Name() string { return "percentile-fit" }

// DefaultTrendSlope is the utilization slope (1/second) below which a load
// is considered "already falling": roughly 3 percentage points per standard
// 3-second monitoring period.
const DefaultTrendSlope = 0.01

// TrendAwareRelocation wraps overload relocation with trend gating:
//
//   - a source whose fresh utilization trend is already falling steeper
//     than MinSlope is left alone — the spike is resolving itself and
//     migrating VMs off it would pay the migration cost for nothing;
//   - receivers whose fresh trend is rising steeper than MinSlope, or whose
//     p95 utilization already sits above the overload threshold, are
//     excluded — relocating onto a node that is itself heating up just
//     moves the anomaly.
//
// With thin or stale histories both gates disarm and the policy behaves
// exactly like OverloadRelocation.
type TrendAwareRelocation struct {
	Thresholds Thresholds
	// MinSlope is the |slope| (1/second) that counts as a real trend
	// (DefaultTrendSlope when zero).
	MinSlope float64
}

func (p TrendAwareRelocation) minSlope() float64 {
	if p.MinSlope > 0 {
		return p.MinSlope
	}
	return DefaultTrendSlope
}

// SkipAnomaly implements SkipsAnomaly: a source whose fresh trend is
// already falling needs no action.
func (p TrendAwareRelocation) SkipAnomaly(src view.Node) bool {
	return src.Stats.Fresh && src.Stats.Trend <= -p.minSlope()
}

// Relocate implements RelocationPolicy.
func (p TrendAwareRelocation) Relocate(src view.Node, srcVMs []types.VMStatus, others []view.Node, ex *Explain) []Move {
	th := p.Thresholds
	if th.Overload == 0 {
		th = DefaultThresholds()
	}
	slope := p.minSlope()
	if src.Stats.Fresh && src.Stats.Trend <= -slope {
		return nil // load already falling: let the spike drain on its own
	}
	kept := make([]view.Node, 0, len(others))
	for _, n := range others {
		if n.Stats.Fresh && (n.Stats.Trend >= slope || n.Stats.P95 > th.Overload) {
			ex.Reject(string(n.Spec.ID), "receiver-trend-hot")
			continue
		}
		kept = append(kept, n)
	}
	return OverloadRelocation{Thresholds: th}.Relocate(src, srcVMs, kept, ex)
}

// Name implements RelocationPolicy.
func (TrendAwareRelocation) Name() string { return "trend-relocation" }

// TrendAwareUnderload is the symmetric trend gate for the underload side:
//
//   - a source whose fresh utilization trend is rising steeper than MinSlope
//     is left alone — the load is coming back, and draining it now just
//     re-triggers the empty-receiver oscillation from the other end (the
//     node would be refilled or re-woken moments after it was emptied);
//   - receivers whose fresh p95 utilization already sits above the overload
//     threshold are excluded — consolidating onto a historically hot node
//     converts an underload event into an overload one.
//
// With thin or stale histories both gates disarm and the policy behaves
// exactly like UnderloadRelocation.
type TrendAwareUnderload struct {
	Thresholds Thresholds
	// MinSlope is the |slope| (1/second) that counts as a real trend
	// (DefaultTrendSlope when zero).
	MinSlope float64
}

func (p TrendAwareUnderload) minSlope() float64 {
	if p.MinSlope > 0 {
		return p.MinSlope
	}
	return DefaultTrendSlope
}

// SkipAnomaly implements SkipsAnomaly: a source whose fresh trend is rising
// back needs no draining — and, in particular, no woken capacity to drain
// into.
func (p TrendAwareUnderload) SkipAnomaly(src view.Node) bool {
	return src.Stats.Fresh && src.Stats.Trend >= p.minSlope()
}

// Relocate implements RelocationPolicy.
func (p TrendAwareUnderload) Relocate(src view.Node, srcVMs []types.VMStatus, others []view.Node, ex *Explain) []Move {
	th := p.Thresholds
	if th.Overload == 0 {
		th = DefaultThresholds()
	}
	if p.SkipAnomaly(src) {
		return nil // load rising back: draining would oscillate
	}
	kept := make([]view.Node, 0, len(others))
	for _, n := range others {
		if n.Stats.Fresh && n.Stats.P95 > th.Overload {
			ex.Reject(string(n.Spec.ID), "receiver-p95-hot")
			continue
		}
		kept = append(kept, n)
	}
	return UnderloadRelocation{Thresholds: th}.Relocate(src, srcVMs, kept, ex)
}

// Name implements RelocationPolicy.
func (TrendAwareUnderload) Name() string { return "trend-underload" }
