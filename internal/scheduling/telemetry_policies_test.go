package scheduling

import (
	"testing"

	"snooze/internal/scheduling/view"
	"snooze/internal/types"
)

func withStats(n view.Node, st view.Stats) view.Node {
	n.Stats = st
	return n
}

func gmWithStats(g view.Group, st view.Stats) view.Group {
	g.Stats = st
	return g
}

func TestP95HeadroomDispatch(t *testing.T) {
	fresh := func(p95 float64) view.Stats { return view.Stats{Samples: 10, P95: p95, Fresh: true} }
	cases := []struct {
		name   string
		groups []view.Group
		want   types.GroupManagerID
	}{
		{
			// Both look empty right now; gm1 ran hot for the window, gm2 did
			// not — the dispatcher must prefer gm2.
			name: "historically-hot group sorts last",
			groups: []view.Group{
				gmWithStats(gm("gm1", 0, 16, 2), fresh(0.9)),
				gmWithStats(gm("gm2", 0, 16, 2), fresh(0.2)),
			},
			want: "gm2",
		},
		{
			// Thin history on both: degrade to instantaneous utilization.
			name: "thin history falls back to current load",
			groups: []view.Group{
				gm("busy", 12, 16, 2),
				gm("idle", 0, 16, 2),
			},
			want: "idle",
		},
		{
			// Stale stats must be ignored even when alarming.
			name: "stale stats ignored",
			groups: []view.Group{
				gmWithStats(gm("gm1", 0, 16, 2), view.Stats{Samples: 10, P95: 0.99, Fresh: false}),
				gmWithStats(gm("gm2", 4, 16, 2), view.Stats{}),
			},
			want: "gm1",
		},
		{
			// The snapshot dominates history when it is hotter: a group that
			// is loaded right now cannot hide behind a calm window.
			name: "current load dominates calm history",
			groups: []view.Group{
				gmWithStats(gm("gm1", 14, 16, 2), fresh(0.1)),
				gmWithStats(gm("gm2", 4, 16, 2), fresh(0.4)),
			},
			want: "gm2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := P95HeadroomDispatch{}.Candidates(vmSpec(1), tc.groups, nil)
			if len(got) == 0 || got[0] != tc.want {
				t.Fatalf("candidates: %v want head %s", got, tc.want)
			}
		})
	}
}

func TestP95HeadroomDispatchFiltersInfeasible(t *testing.T) {
	groups := []view.Group{gm("full", 16, 16, 2), gm("roomy", 2, 16, 2)}
	got := P95HeadroomDispatch{}.Candidates(vmSpec(4), groups, nil)
	if len(got) != 1 || got[0] != "roomy" {
		t.Fatalf("feasibility filter: %v", got)
	}
}

func TestPercentileFitPlacement(t *testing.T) {
	hot := func(p95 float64) view.Stats { return view.Stats{Samples: 20, P95: p95, Fresh: true} }
	cases := []struct {
		name  string
		nodes []view.Node
		cpu   float64
		want  types.NodeID
	}{
		{
			// n1 is idle right now but p95-hot: the VM must land on n2 even
			// though plain best-fit (tie on reservations, ID order) picks n1.
			name: "avoids transiently idle but historically hot node",
			nodes: []view.Node{
				withStats(node("n1", 0, 8), hot(0.95)),
				withStats(node("n2", 0, 8), hot(0.10)),
			},
			cpu:  2,
			want: "n2",
		},
		{
			// Thin history everywhere: behaves like best-fit (tightest).
			name: "thin history degrades to best-fit",
			nodes: []view.Node{
				node("n1", 1, 8),
				node("n2", 5, 8),
			},
			cpu:  1,
			want: "n2",
		},
		{
			// Every node fails the safety gate: better an imperfect placement
			// than none — fall back to best-fit instead of rejecting.
			name: "all unsafe falls back to best-fit",
			nodes: []view.Node{
				withStats(node("n1", 0, 8), hot(0.95)),
				withStats(node("n2", 1, 8), hot(0.95)),
			},
			cpu:  2,
			want: "n2",
		},
		{
			// Percentile window picks the tightest *safe* fit, not the
			// tightest overall.
			name: "tightest safe fit wins",
			nodes: []view.Node{
				withStats(node("n1", 6, 8), hot(0.88)), // tightest but unsafe with the VM
				withStats(node("n2", 4, 8), hot(0.55)),
				withStats(node("n3", 1, 8), hot(0.20)),
			},
			cpu:  2,
			want: "n2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := PercentileFitPlacement{}.Place(vmSpec(tc.cpu), tc.nodes, nil)
			if !ok || got != tc.want {
				t.Fatalf("place: %v ok=%v want %s", got, ok, tc.want)
			}
		})
	}
}

func TestPercentileFitPlacementNoCapacity(t *testing.T) {
	nodes := []view.Node{node("n1", 8, 8)}
	if _, ok := (PercentileFitPlacement{}).Place(vmSpec(2), nodes, nil); ok {
		t.Fatal("placed on a full node")
	}
}

func TestTrendAwareRelocation(t *testing.T) {
	overloadedSrc := func(st view.Stats) view.Node {
		src := node("hot", 8, 8)
		src.VMs = []types.VMID{"a"}
		src.Stats = st
		return src
	}
	vms := []types.VMStatus{vmStatus("a", 4, types.VMRunning)}
	cases := []struct {
		name      string
		src       view.Node
		others    []view.Node
		wantMoves int
		wantTo    types.NodeID
	}{
		{
			// Source trend is firmly falling: the spike is resolving itself,
			// no migration.
			name:      "falling source is left alone",
			src:       overloadedSrc(view.Stats{Samples: 10, Trend: -0.05, Fresh: true}),
			others:    []view.Node{node("cool", 0, 8)},
			wantMoves: 0,
		},
		{
			// Rising receivers are excluded; the flat one takes the VM.
			name: "rising receiver excluded",
			src:  overloadedSrc(view.Stats{Samples: 10, Trend: 0.05, Fresh: true}),
			others: []view.Node{
				withStats(node("heating", 0, 8), view.Stats{Samples: 10, Trend: 0.05, Fresh: true}),
				withStats(node("steady", 1, 8), view.Stats{Samples: 10, Trend: 0, Fresh: true}),
			},
			wantMoves: 1,
			wantTo:    "steady",
		},
		{
			// p95-hot receivers are excluded even when momentarily idle.
			name: "p95-hot receiver excluded",
			src:  overloadedSrc(view.Stats{}),
			others: []view.Node{
				withStats(node("lurking", 0, 8), view.Stats{Samples: 10, P95: 0.95, Fresh: true}),
				withStats(node("calm", 1, 8), view.Stats{Samples: 10, P95: 0.30, Fresh: true}),
			},
			wantMoves: 1,
			wantTo:    "calm",
		},
		{
			// Thin/stale histories disarm both gates: plain overload
			// relocation to the least-loaded receiver.
			name:      "thin history behaves like overload-relocation",
			src:       overloadedSrc(view.Stats{}),
			others:    []view.Node{node("cool", 1, 8), node("warm", 4, 8)},
			wantMoves: 1,
			wantTo:    "cool",
		},
		{
			// A stale falling trend on the source must not suppress action.
			name:      "stale falling trend does not suppress",
			src:       overloadedSrc(view.Stats{Samples: 10, Trend: -0.5, Fresh: false}),
			others:    []view.Node{node("cool", 0, 8)},
			wantMoves: 1,
			wantTo:    "cool",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			moves := TrendAwareRelocation{}.Relocate(tc.src, vms, tc.others, nil)
			if len(moves) != tc.wantMoves {
				t.Fatalf("moves: %+v want %d", moves, tc.wantMoves)
			}
			if tc.wantMoves > 0 && moves[0].To != tc.wantTo {
				t.Fatalf("destination: %s want %s", moves[0].To, tc.wantTo)
			}
		})
	}
}

func TestTrendAwareSkipAnomaly(t *testing.T) {
	// The optional SkipsAnomaly extension lets the GM distinguish deliberate
	// inaction (no wake escalation) from "no feasible moves".
	var p RelocationPolicy = TrendAwareRelocation{}
	sk, ok := p.(SkipsAnomaly)
	if !ok {
		t.Fatal("trend-relocation must implement SkipsAnomaly")
	}
	falling := node("hot", 8, 8)
	falling.Stats = view.Stats{Samples: 10, Trend: -0.05, Fresh: true}
	if !sk.SkipAnomaly(falling) {
		t.Fatal("fresh falling source should be skipped")
	}
	stale := falling
	stale.Stats.Fresh = false
	if sk.SkipAnomaly(stale) {
		t.Fatal("stale trend must not suppress action")
	}
	if _, ok := RelocationPolicy(OverloadRelocation{}).(SkipsAnomaly); ok {
		t.Fatal("plain overload relocation should not claim SkipsAnomaly")
	}
}

func TestTelemetryPolicyRegistries(t *testing.T) {
	if p, err := NewDispatchPolicy("p95-headroom"); err != nil || p.Name() != "p95-headroom" {
		t.Fatalf("p95-headroom: %v", err)
	}
	if p, err := NewPlacementPolicy("percentile-fit"); err != nil || p.Name() != "percentile-fit" {
		t.Fatalf("percentile-fit: %v", err)
	}
	for _, n := range []string{"", "overload-relocation", "underload-relocation", "trend-relocation", "trend-underload"} {
		if p, err := NewRelocationPolicy(n); err != nil || p == nil {
			t.Fatalf("relocation %q: %v", n, err)
		}
	}
	if _, err := NewRelocationPolicy("bogus"); err == nil {
		t.Fatal("bogus relocation accepted")
	}
}

func TestTrendAwareUnderload(t *testing.T) {
	underloadedSrc := func(st view.Stats) view.Node {
		src := node("quiet", 1, 8)
		src.VMs = []types.VMID{"a"}
		src.Stats = st
		return src
	}
	vms := []types.VMStatus{vmStatus("a", 1, types.VMRunning)}
	cases := []struct {
		name      string
		src       view.Node
		others    []view.Node
		wantMoves int
		wantTo    types.NodeID
	}{
		{
			// The load is rising back: draining now would oscillate — the
			// PR 2 empty-receiver loop from the other end.
			name:      "rising source is left alone",
			src:       underloadedSrc(view.Stats{Samples: 10, Trend: 0.05, Fresh: true}),
			others:    []view.Node{node("busy", 4, 8)},
			wantMoves: 0,
		},
		{
			// Falling or flat load: drain like plain underload relocation.
			name:      "falling source drains fully",
			src:       underloadedSrc(view.Stats{Samples: 10, Trend: -0.05, Fresh: true}),
			others:    []view.Node{node("busy", 4, 8)},
			wantMoves: 1,
			wantTo:    "busy",
		},
		{
			// Receivers that ran hot for the window are excluded even when
			// momentarily moderate: consolidating onto them converts the
			// underload into an overload.
			name: "p95-hot receiver excluded",
			src:  underloadedSrc(view.Stats{Samples: 10, Trend: 0, Fresh: true}),
			others: []view.Node{
				withStats(node("lurking", 3, 8), view.Stats{Samples: 10, P95: 0.95, Fresh: true}),
				withStats(node("moderate", 2, 8), view.Stats{Samples: 10, P95: 0.40, Fresh: true}),
			},
			wantMoves: 1,
			wantTo:    "moderate",
		},
		{
			// Thin history disarms both gates: behaves exactly like
			// UnderloadRelocation (most-loaded receiver preferred).
			name:      "thin history behaves like underload-relocation",
			src:       underloadedSrc(view.Stats{}),
			others:    []view.Node{node("warm", 2, 8), node("warmer", 4, 8)},
			wantMoves: 1,
			wantTo:    "warmer",
		},
		{
			// A stale rising trend must not suppress a real drain.
			name:      "stale rising trend does not suppress",
			src:       underloadedSrc(view.Stats{Samples: 10, Trend: 0.5, Fresh: false}),
			others:    []view.Node{node("busy", 4, 8)},
			wantMoves: 1,
			wantTo:    "busy",
		},
		{
			// Empty receivers stay excluded (inherited from the underload
			// core): with only an empty peer there is nowhere to drain.
			name:      "empty receiver still excluded",
			src:       underloadedSrc(view.Stats{Samples: 10, Trend: -0.05, Fresh: true}),
			others:    []view.Node{node("empty", 0, 8)},
			wantMoves: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			moves := TrendAwareUnderload{}.Relocate(tc.src, vms, tc.others, nil)
			if len(moves) != tc.wantMoves {
				t.Fatalf("moves: %+v want %d", moves, tc.wantMoves)
			}
			if tc.wantMoves > 0 && moves[0].To != tc.wantTo {
				t.Fatalf("destination: %s want %s", moves[0].To, tc.wantTo)
			}
		})
	}
}

func TestTrendAwareUnderloadSkipAnomaly(t *testing.T) {
	var p RelocationPolicy = TrendAwareUnderload{}
	sk, ok := p.(SkipsAnomaly)
	if !ok {
		t.Fatal("trend-underload must implement SkipsAnomaly")
	}
	rising := node("quiet", 1, 8)
	rising.Stats = view.Stats{Samples: 10, Trend: 0.05, Fresh: true}
	if !sk.SkipAnomaly(rising) {
		t.Fatal("fresh rising source should be skipped")
	}
	falling := rising
	falling.Stats.Trend = -0.05
	if sk.SkipAnomaly(falling) {
		t.Fatal("falling source must drain")
	}
	stale := rising
	stale.Stats.Fresh = false
	if sk.SkipAnomaly(stale) {
		t.Fatal("stale trend must not suppress action")
	}
}
