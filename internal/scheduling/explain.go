package scheduling

// Rejection reasons recorded into an Explain. Policies use these constants so
// trace consumers can match on them; free-form reasons are allowed too.
const (
	// ReasonPoweredOff: the node is not powered on (sleeping or failed).
	ReasonPoweredOff = "powered-off"
	// ReasonNoFit: the snapshot reservation cannot hold the VM's request.
	ReasonNoFit = "no-fit"
	// ReasonInfeasible: the group summary cannot possibly hold the VM.
	ReasonInfeasible = "infeasible-summary"
	// ReasonP95OverThreshold: the windowed p95 utilization plus the VM's
	// demand would cross the placement safety threshold (percentile-fit).
	ReasonP95OverThreshold = "p95-over-threshold"
	// ReasonOutscored: feasible, but another candidate scored better.
	ReasonOutscored = "outscored"
)

// Explain collects the evidence behind one scheduling decision: which
// candidates the policy considered, which it rejected and why, and which it
// chose. A nil *Explain disables collection — every method is nil-receiver
// safe, so policies record unconditionally and the caller decides whether
// evidence is wanted (the hot path passes nil and pays nothing).
type Explain struct {
	// Candidates lists the considered targets in policy-visit order.
	Candidates []CandidateDecision
}

// CandidateDecision is one considered target: a GM for dispatching, a node
// for placement, a "vm→node" move for relocation.
type CandidateDecision struct {
	ID     string
	Chosen bool
	// Reason is the rejection reason (empty for chosen or shortlisted
	// candidates — a dispatch shortlist has many non-rejected entries).
	Reason string
}

// Reject records a considered-and-rejected candidate.
func (e *Explain) Reject(id, reason string) {
	if e == nil {
		return
	}
	e.Candidates = append(e.Candidates, CandidateDecision{ID: id, Reason: reason})
}

// Shortlist records a candidate kept in a ranked shortlist (dispatch).
func (e *Explain) Shortlist(id string) {
	if e == nil {
		return
	}
	e.Candidates = append(e.Candidates, CandidateDecision{ID: id})
}

// Choose records the chosen candidate.
func (e *Explain) Choose(id string) {
	if e == nil {
		return
	}
	e.Candidates = append(e.Candidates, CandidateDecision{ID: id, Chosen: true})
}
