package view

import (
	"testing"
	"time"

	"snooze/internal/resource"
	"snooze/internal/telemetry"
	"snooze/internal/types"
)

func cacheFixture(t *testing.T, entities, samples int) (*telemetry.Hub, []string) {
	t.Helper()
	hub := telemetry.NewHub(telemetry.Options{})
	names := make([]string, entities)
	for e := 0; e < entities; e++ {
		names[e] = telemetry.NodeEntity(types.NodeID(string(rune('a' + e))))
		for i := 0; i < samples; i++ {
			hub.Record(names[e], "util", time.Duration(i)*3*time.Second, float64((e+i)%10)/10)
		}
	}
	return hub, names
}

func TestCachedStatsMatchUncached(t *testing.T) {
	hub, names := cacheFixture(t, 4, 20)
	cached := Builder{Hub: hub, Cache: NewCache()}
	plain := Builder{Hub: hub}
	for _, now := range []time.Duration{30 * time.Second, time.Minute, 10 * time.Minute} {
		for _, entity := range names {
			got, want := cached.Stats(now, entity), plain.Stats(now, entity)
			if got != want {
				t.Fatalf("cached stats diverge at now=%v entity=%s: %+v vs %+v", now, entity, got, want)
			}
			// Second build: served from cache, still identical.
			if again := cached.Stats(now, entity); again != want {
				t.Fatalf("cache hit diverges: %+v vs %+v", again, want)
			}
		}
	}
}

// TestBuilderStatsSingleReduction pins the acceptance contract: one store
// reduction per entity per build — not the former three Query + three
// Downsample passes — and zero reductions when the generation-keyed cache
// hits.
func TestBuilderStatsSingleReduction(t *testing.T) {
	hub, names := cacheFixture(t, 8, 20)
	store := hub.Store()
	now := 60 * time.Second

	plain := Builder{Hub: hub}
	before := store.TotalReductions()
	for _, entity := range names {
		plain.Stats(now, entity)
	}
	if got := store.TotalReductions() - before; got != uint64(len(names)) {
		t.Fatalf("uncached build made %d reductions for %d entities", got, len(names))
	}

	cached := Builder{Hub: hub, Cache: NewCache()}
	before = store.TotalReductions()
	for _, entity := range names {
		cached.Stats(now, entity) // cold: one reduction each
	}
	if got := store.TotalReductions() - before; got != uint64(len(names)) {
		t.Fatalf("cold cached build made %d reductions for %d entities", got, len(names))
	}
	before = store.TotalReductions()
	for _, entity := range names {
		cached.Stats(now, entity) // warm, no intervening Append: pure lookups
	}
	if got := store.TotalReductions() - before; got != 0 {
		t.Fatalf("warm cached build still made %d reductions", got)
	}
	if hits, misses := cached.Cache.Counters(); hits != uint64(len(names)) || misses != uint64(len(names)) {
		t.Fatalf("counters: hits=%d misses=%d", hits, misses)
	}
}

// TestCacheInvalidatedByExactlyOneAppend: one Append invalidates exactly the
// appended entity's entry; every other entity keeps hitting.
func TestCacheInvalidatedByExactlyOneAppend(t *testing.T) {
	hub, names := cacheFixture(t, 4, 20)
	store := hub.Store()
	b := Builder{Hub: hub, Cache: NewCache(), MaxAge: time.Hour}
	now := 60 * time.Second
	for _, entity := range names {
		b.Stats(now, entity)
	}

	hub.Record(names[0], "util", now, 0.99)
	now += time.Second
	before := store.TotalReductions()
	st := b.Stats(now, names[0])
	if got := store.TotalReductions() - before; got != 1 {
		t.Fatalf("invalidated entity rebuilt with %d reductions", got)
	}
	if st.Max != 0.99 || st.Samples != 21 {
		t.Fatalf("rebuilt stats missed the new sample: %+v", st)
	}
	before = store.TotalReductions()
	for _, entity := range names[1:] {
		b.Stats(now, entity)
	}
	if got := store.TotalReductions() - before; got != 0 {
		t.Fatalf("untouched entities recomputed %d times after another entity's append", got)
	}
}

// TestCacheRevalidatesWhenWindowSlides: advancing now without appends keeps
// hitting only while no retained sample slides out of the horizon; once the
// left edge passes the oldest cached sample the entry recomputes, so cached
// and uncached stats never diverge.
func TestCacheRevalidatesWhenWindowSlides(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	entity := telemetry.NodeEntity("n1")
	// Samples at 0s..9s; horizon 30s.
	for i := 0; i < 10; i++ {
		hub.Record(entity, "util", time.Duration(i)*time.Second, float64(i)/10)
	}
	b := Builder{Hub: hub, Horizon: 30 * time.Second, MaxAge: time.Hour}
	cached := Builder{Hub: hub, Horizon: 30 * time.Second, MaxAge: time.Hour, Cache: NewCache()}
	store := hub.Store()

	if got, want := cached.Stats(20*time.Second, entity), b.Stats(20*time.Second, entity); got != want {
		t.Fatalf("cold build: %+v vs %+v", got, want)
	}
	// now=29s: window [0, 29s] still spans every sample — hit, fresh Age.
	before := store.TotalReductions()
	got, want := cached.Stats(29*time.Second, entity), b.Stats(29*time.Second, entity)
	if got != want || got.Age != 20*time.Second {
		t.Fatalf("sliding hit: %+v vs %+v", got, want)
	}
	if store.TotalReductions()-before != 1 { // the uncached builder's one
		t.Fatal("cache recomputed despite identical window content")
	}
	// now=35s: window [5s, 35s] drops samples 0s..4s — must recompute.
	got, want = cached.Stats(35*time.Second, entity), b.Stats(35*time.Second, entity)
	if got != want || got.Samples != 5 {
		t.Fatalf("slid-out window: %+v vs %+v", got, want)
	}
}

func TestCacheDemandMatchesUncached(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	vm := types.VMStatus{Spec: types.VMSpec{ID: "v1"}}
	for i := 0; i < 6; i++ {
		vm.Used = types.RV(float64(i), float64(i)*100, float64(i)*10, float64(i))
		hub.RecordVM(time.Duration(i)*3*time.Second, vm)
	}
	// A dimension recorded late exercises the tail-alignment path too.
	hub.Record("vm/v2", "cpu.used", time.Second, 1)
	hub.Record("vm/v2", "cpu.used", 2*time.Second, 2)
	hub.Record("vm/v2", "mem.used", 2*time.Second, 20)

	cached := Builder{Hub: hub, Cache: NewCache()}
	plain := Builder{Hub: hub}
	now := 20 * time.Second
	for _, entity := range []string{"vm/v1", "vm/v2"} {
		for _, est := range []resource.Estimator{resource.LastValue{}, resource.MaxWindow{}} {
			got, gotOK := cached.Demand(now, entity, est)
			want, wantOK := plain.Demand(now, entity, est)
			if got != want || gotOK != wantOK {
				t.Fatalf("%s: cached demand %v/%v, uncached %v/%v", entity, got, gotOK, want, wantOK)
			}
		}
	}
	// Unknown entities fall back identically, and scratch from the previous
	// estimate must not leak into the miss.
	if _, ok := cached.Demand(now, "vm/ghost", resource.LastValue{}); ok {
		t.Fatal("estimate for unknown entity via cache scratch leak")
	}
}
