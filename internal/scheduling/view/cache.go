package view

import (
	"sync"
	"time"

	"snooze/internal/telemetry"
	"snooze/internal/types"
)

// maxCacheEntries bounds the cache map. Entities churn (VMs terminate, nodes
// fail) and their entries linger until this cap flushes everything — a
// deliberate blunt bound: the working set (nodes + GMs of one deployment) is
// tiny, and a flush only costs one rebuild round.
const maxCacheEntries = 8192

// cacheKey identifies one memoized reduction. The horizon is part of the key
// so builders with different windows sharing a cache never cross-read.
type cacheKey struct {
	entity  string
	horizon time.Duration
}

// cacheEntry is the horizon-window reduction of one entity's "util" series,
// plus the coordinates proving it still valid: the series generation (any
// append changes it) and the window edges (advancing time may slide retained
// samples out of the horizon even with no append).
type cacheEntry struct {
	gen      uint64
	at       time.Duration // now at compute time
	newestAt time.Duration // series' newest retained timestamp at compute time
	count    int
	firstAt  time.Duration
	lastAt   time.Duration
	p50      float64
	p95      float64
	max      float64
	trend    float64
	// truncated records the reduction's eviction watermark. It stays valid
	// under the entry's reuse rules: the retention state only changes on an
	// append (a generation change), and the firstAt >= from guard means a
	// reused entry covers the same point set — truncation is a property of
	// that set (it contains sub-raw-resolution points or not).
	truncated bool
}

// valid reports whether the entry still describes the window [from, now] of
// a series at generation gen: same generation (no appends), time moved
// forward, no retained sample beyond the compute-time right edge (a sample
// stamped ahead of the clock would enter the window as now advances), and no
// cached sample slid out of the window's left edge.
func (e cacheEntry) valid(gen uint64, now, from time.Duration) bool {
	if e.gen != gen || now < e.at || e.newestAt > e.at {
		return false
	}
	return e.count == 0 || e.firstAt >= from
}

// stats materializes Stats at now. Age and Fresh are always recomputed —
// they depend on now and the builder's freshness gates, not on the series.
func (e cacheEntry) stats(b Builder, now time.Duration) Stats {
	if e.count == 0 {
		return Stats{}
	}
	st := Stats{
		Samples:   e.count,
		P50:       e.p50,
		P95:       e.p95,
		Max:       e.max,
		Trend:     e.trend,
		Age:       now - e.lastAt,
		Truncated: e.truncated,
		Gen:       e.gen,
	}
	st.Fresh = st.Samples >= b.minSamples() && st.Age <= b.maxAge() && !st.Truncated
	return st
}

// Cache memoizes windowed statistics across scheduling rounds, keyed by
// (entity, horizon, series generation). Between appends — a GL fanning one
// dispatch across its groups, a GM's relocation scan re-viewing the same
// nodes — a view build degenerates to a map lookup; one Append to an
// entity's "util" series invalidates exactly that entity. It also owns the
// reusable reduction spec and the Demand scratch windows, so a cache-equipped
// Builder allocates nothing on the hot path. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]cacheEntry
	spec    telemetry.SummarySpec
	hits    uint64
	misses  uint64

	dims   [4][]telemetry.Sample
	window []types.ResourceVector
}

// NewCache creates an empty cache. One cache serves one long-lived Builder
// (or several builders sharing a store, e.g. a Manager's GL and GM roles).
func NewCache() *Cache {
	return &Cache{
		entries: make(map[cacheKey]cacheEntry),
		spec: telemetry.SummarySpec{
			Percentiles: []float64{50, 95},
			Trend:       true,
		},
	}
}

// Counters returns the lifetime hit/miss counts.
func (c *Cache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// stats serves one Stats build through the cache.
func (c *Cache) stats(b Builder, store *telemetry.Store, now, from time.Duration, entity string) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{entity: entity, horizon: b.horizon()}
	gen := store.Generation(entity, "util")
	if e, ok := c.entries[key]; ok && e.valid(gen, now, from) {
		c.hits++
		return e.stats(b, now)
	}
	c.misses++
	sum, ok := store.Reduce(entity, "util", from, now, &c.spec)
	e := cacheEntry{gen: sum.Gen, at: now, newestAt: sum.NewestAt}
	if ok {
		e.count = sum.Count
		e.firstAt = sum.FirstAt
		e.lastAt = sum.LastAt
		e.p50 = sum.Percentiles[0]
		e.p95 = sum.Percentiles[1]
		e.max = sum.Max
		e.trend = sum.Trend
		e.truncated = sum.Truncated
	}
	if len(c.entries) >= maxCacheEntries {
		c.entries = make(map[cacheKey]cacheEntry)
	}
	c.entries[key] = e
	return e.stats(b, now)
}

// demand serves one Demand estimate reusing the cache's per-dimension
// scratch windows. The reconstructed window aliases cache-owned buffers; the
// estimator must not retain it (none of the resource estimators do).
func (c *Cache) demand(store *telemetry.Store, now, from time.Duration, entity string, estimate func([]types.ResourceVector) types.ResourceVector) (types.ResourceVector, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for d, metric := range DemandMetrics {
		c.dims[d] = c.dims[d][:0]
		store.Window(entity, metric, from, now, func(seg []telemetry.Sample) {
			c.dims[d] = append(c.dims[d], seg...)
		})
		if len(c.dims[d]) > n {
			n = len(c.dims[d])
		}
	}
	if n == 0 {
		return types.ResourceVector{}, false
	}
	if cap(c.window) < n {
		c.window = make([]types.ResourceVector, n)
	}
	c.window = c.window[:n]
	alignWindow(c.dims, c.window)
	return estimate(c.window), true
}
