package view

import "time"

// Memo memoizes one whole built []Node slice against a group-wide view
// epoch — the O(1) "did anything move?" gate in front of Cache's per-entity
// generation checks. The GM bumps its epoch on every state change that can
// alter the views it schedules over (a monitor ingestion appending member
// series, a reservation, a migration, a sleep/wake, membership churn); while
// the epoch stands still, a placement burst or relocation scan reuses the
// previous build outright, performing zero per-entity probes and zero store
// reductions.
//
// A hit additionally requires the memoized build to be no older than the
// caller's tolerance: statistics age with the clock even when nothing is
// appended, and the tolerance bounds how much Age drift a reused view may
// carry (the GM passes its heartbeat period — new monitor reports bump the
// epoch at that cadence anyway, so the bound only matters for quiescent
// groups).
//
// Memo is not safe for concurrent use; the owning manager serializes access
// under its own lock. The memoized slice is shared across callers — treat it
// as immutable (the scheduling policies only read views).
type Memo struct {
	valid   bool
	epoch   uint64
	builtAt time.Duration
	nodes   []Node

	hits   uint64
	misses uint64
}

// Get returns the memoized views when they were built at the same epoch no
// longer than tolerance ago.
func (m *Memo) Get(epoch uint64, now, tolerance time.Duration) ([]Node, bool) {
	if m.valid && m.epoch == epoch && now >= m.builtAt && now-m.builtAt <= tolerance {
		m.hits++
		return m.nodes, true
	}
	m.misses++
	return nil, false
}

// Put memoizes a fresh build for the given epoch.
func (m *Memo) Put(epoch uint64, now time.Duration, nodes []Node) {
	m.valid = true
	m.epoch = epoch
	m.builtAt = now
	m.nodes = nodes
}

// Invalidate drops the memoized build (role changes, config swaps).
func (m *Memo) Invalidate() {
	m.valid = false
	m.nodes = nil
}

// Counters returns the lifetime hit/miss counts.
func (m *Memo) Counters() (hits, misses uint64) { return m.hits, m.misses }
