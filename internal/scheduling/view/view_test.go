package view

import (
	"math"
	"testing"
	"time"

	"snooze/internal/resource"
	"snooze/internal/telemetry"
	"snooze/internal/types"
)

func nodeStatus(id string, usedCPU, capCPU float64) types.NodeStatus {
	return types.NodeStatus{
		Spec:     types.NodeSpec{ID: types.NodeID(id), Capacity: types.RV(capCPU, capCPU*2048, 0, 0)},
		Power:    types.PowerOn,
		Used:     types.RV(usedCPU, usedCPU*2048, 0, 0),
		Reserved: types.RV(usedCPU, usedCPU*2048, 0, 0),
	}
}

func TestStatsFromHistory(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	entity := telemetry.NodeEntity("n1")
	// Rising utilization: 0.0, 0.1, ..., 0.9 at 3s spacing.
	for i := 0; i < 10; i++ {
		hub.Record(entity, "util", time.Duration(i)*3*time.Second, float64(i)/10)
	}
	now := 30 * time.Second
	b := Builder{Hub: hub}
	st := b.Stats(now, entity)
	if st.Samples != 10 {
		t.Fatalf("samples: %d", st.Samples)
	}
	if !st.Fresh {
		t.Fatalf("stats should be fresh: %+v", st)
	}
	if st.Max != 0.9 {
		t.Fatalf("max: %v", st.Max)
	}
	// Exact interpolated p50 is 0.45; the sketch-backed reduction answers
	// the empirical rank-floor value 0.4 within its relative-error bound.
	if st.P50 < 0.39 || st.P50 > 0.46 {
		t.Fatalf("p50: %v", st.P50)
	}
	// Rank-floor p95 is 0.8 (exact interpolation would give 0.855).
	if st.P95 < 0.79 || st.P95 > 0.9 {
		t.Fatalf("p95: %v", st.P95)
	}
	// 0.1 per 3 seconds.
	if math.Abs(st.Trend-0.1/3) > 1e-9 {
		t.Fatalf("trend: %v", st.Trend)
	}
	if st.Age != 3*time.Second {
		t.Fatalf("age: %v", st.Age)
	}
}

func TestStatsThinHistoryNotFresh(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	entity := telemetry.NodeEntity("n1")
	hub.Record(entity, "util", time.Second, 0.5)
	hub.Record(entity, "util", 2*time.Second, 0.5)
	st := Builder{Hub: hub}.Stats(3*time.Second, entity)
	if st.Fresh {
		t.Fatalf("2 samples < DefaultMinSamples must not be fresh: %+v", st)
	}
	if st.Samples != 2 {
		t.Fatalf("samples: %d", st.Samples)
	}
}

func TestStatsStaleHistoryNotFresh(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	entity := telemetry.NodeEntity("n1")
	for i := 0; i < 10; i++ {
		hub.Record(entity, "util", time.Duration(i)*time.Second, 0.8)
	}
	// Newest sample is 10 minutes old with a 1m MaxAge default — stale, and
	// with the default 5m horizon it is outside the window entirely.
	st := Builder{Hub: hub}.Stats(10*time.Minute, entity)
	if st.Fresh {
		t.Fatalf("stale history must not be fresh: %+v", st)
	}
	// With a wide horizon the samples are in-window but still too old.
	st = Builder{Hub: hub, Horizon: time.Hour}.Stats(10*time.Minute, entity)
	if st.Samples != 10 || st.Fresh {
		t.Fatalf("in-window stale stats: %+v", st)
	}
}

func TestStatsNilHubAndUnknownEntity(t *testing.T) {
	if st := (Builder{}).Stats(time.Minute, "node/x"); st.Fresh || st.Samples != 0 {
		t.Fatalf("nil hub stats: %+v", st)
	}
	hub := telemetry.NewHub(telemetry.Options{})
	if st := (Builder{Hub: hub}).Stats(time.Minute, "node/x"); st.Fresh || st.Samples != 0 {
		t.Fatalf("unknown entity stats: %+v", st)
	}
}

func TestPredictedUtilFallsBackToSnapshot(t *testing.T) {
	// No history: predicted util equals instantaneous util.
	n := Node{NodeStatus: nodeStatus("n1", 6, 8)}
	if got := n.PredictedUtil(); got != 0.75 {
		t.Fatalf("fallback predicted util: %v", got)
	}
	// Fresh history dominates when hotter than the snapshot.
	n.Stats = Stats{Fresh: true, P95: 0.95}
	if got := n.PredictedUtil(); got != 0.95 {
		t.Fatalf("p95 predicted util: %v", got)
	}
	// A snapshot hotter than history wins (never plan below observed load).
	n.Stats = Stats{Fresh: true, P95: 0.5}
	if got := n.PredictedUtil(); got != 0.75 {
		t.Fatalf("snapshot-dominant predicted util: %v", got)
	}
	// Stale history is ignored.
	n.Stats = Stats{Fresh: false, P95: 0.95}
	if got := n.PredictedUtil(); got != 0.75 {
		t.Fatalf("stale predicted util: %v", got)
	}
}

func TestGroupViews(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	s := types.GroupSummary{
		GM:        "gm-01",
		Used:      types.RV(4, 4096, 0, 0),
		Total:     types.RV(16, 16384, 0, 0),
		ActiveLCs: 2,
	}
	// RecordGroup feeds the util series the group views read.
	for i := 0; i < 10; i++ {
		hub.RecordGroup(time.Duration(i)*3*time.Second, s)
	}
	g := (Builder{Hub: hub}).Group(30*time.Second, s)
	if !g.Stats.Fresh {
		t.Fatalf("group stats not fresh: %+v", g.Stats)
	}
	if g.Util() != 0.25 || g.Stats.Max != 0.25 {
		t.Fatalf("group util: %v max %v", g.Util(), g.Stats.Max)
	}
}

func TestDemandReconstruction(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	vm := types.VMStatus{Spec: types.VMSpec{ID: "v1"}}
	for i := 0; i < 5; i++ {
		vm.Used = types.RV(float64(i), float64(i)*100, float64(i)*10, float64(i))
		hub.RecordVM(time.Duration(i)*3*time.Second, vm)
	}
	b := Builder{Hub: hub}
	now := 15 * time.Second

	// LastValue reproduces the newest full vector.
	got, ok := b.Demand(now, telemetry.VMEntity("v1"), resource.LastValue{})
	if !ok {
		t.Fatal("no demand estimate despite retained samples")
	}
	want := types.RV(4, 400, 40, 4)
	if got != want {
		t.Fatalf("last-value demand: %v want %v", got, want)
	}

	// MaxWindow reduces per dimension over the window.
	got, _ = b.Demand(now, telemetry.VMEntity("v1"), resource.MaxWindow{})
	if got != want {
		t.Fatalf("max demand: %v want %v", got, want)
	}

	// Unknown entity: fall back.
	if _, ok := b.Demand(now, telemetry.VMEntity("ghost"), resource.LastValue{}); ok {
		t.Fatal("estimate for unknown entity")
	}
	// Nil hub: fall back.
	if _, ok := (Builder{}).Demand(now, telemetry.VMEntity("v1"), resource.LastValue{}); ok {
		t.Fatal("estimate from nil hub")
	}
}

func TestDemandAlignsShorterDimensions(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	entity := "vm/v1"
	// cpu has 4 samples, mem only the last 2 (started recording later).
	for i := 0; i < 4; i++ {
		hub.Record(entity, "cpu.used", time.Duration(i)*time.Second, float64(i+1))
	}
	hub.Record(entity, "mem.used", 2*time.Second, 30)
	hub.Record(entity, "mem.used", 3*time.Second, 40)
	got, ok := (Builder{Hub: hub}).Demand(4*time.Second, entity, resource.LastValue{})
	if !ok || got.CPU != 4 || got.Memory != 40 {
		t.Fatalf("tail-aligned demand: %+v ok=%v", got, ok)
	}
}

func TestWrapHelpers(t *testing.T) {
	nodes := WrapNodes([]types.NodeStatus{nodeStatus("a", 1, 8), nodeStatus("b", 2, 8)})
	if len(nodes) != 2 || nodes[0].Spec.ID != "a" || nodes[0].Stats.Fresh {
		t.Fatalf("wrap nodes: %+v", nodes)
	}
	groups := WrapGroups([]types.GroupSummary{{GM: "g"}})
	if len(groups) != 1 || groups[0].GM != "g" || groups[0].Stats.Fresh {
		t.Fatalf("wrap groups: %+v", groups)
	}
}

func TestTrendFalling(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	entity := telemetry.NodeEntity("n1")
	for i := 0; i < 10; i++ {
		hub.Record(entity, "util", time.Duration(i)*3*time.Second, 0.9-float64(i)*0.05)
	}
	st := Builder{Hub: hub}.Stats(30*time.Second, entity)
	if st.Trend >= 0 {
		t.Fatalf("falling load should have negative trend: %v", st.Trend)
	}
}

// TestTruncatedWindowNotFresh is the eviction-watermark regression test: a
// small raw ring under a horizon longer than its retained span used to pass
// percentile gating on whatever fraction of the horizon survived. The stats
// must now carry Truncated and demote to snapshot fallback (not Fresh) —
// cached and uncached builders alike.
func TestTruncatedWindowNotFresh(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{
		// A 512-sample ring with tiers disabled: long histories silently
		// evict, the pre-tiering deployment shape.
		Store: telemetry.StoreConfig{SeriesCapacity: 512, Tiers: telemetry.NoTiers},
	})
	entity := telemetry.NodeEntity("n1")
	// 1h of 3s reports = 1200 samples: the ring retains the last 512
	// (~25.6m) — the 1h horizon can only be partially served.
	for i := 0; i < 1200; i++ {
		hub.Record(entity, "util", time.Duration(i)*3*time.Second, 0.5)
	}
	now := 1200 * 3 * time.Second
	for _, b := range []Builder{
		{Hub: hub, Horizon: time.Hour, MaxAge: 24 * time.Hour},
		{Hub: hub, Horizon: time.Hour, MaxAge: 24 * time.Hour, Cache: NewCache()},
	} {
		st := b.Stats(now, entity)
		if st.Samples != 512 {
			t.Fatalf("samples: %d", st.Samples)
		}
		if !st.Truncated {
			t.Fatalf("truncated window not flagged: %+v", st)
		}
		if st.Fresh {
			t.Fatalf("truncated stats must not be fresh (cache=%v): %+v", b.Cache != nil, st)
		}
		// A horizon inside raw coverage is full fidelity and fresh again.
		st = Builder{Hub: hub, Horizon: 10 * time.Minute, MaxAge: 24 * time.Hour, Cache: b.Cache}.Stats(now, entity)
		if st.Truncated || !st.Fresh {
			t.Fatalf("raw-covered horizon: %+v", st)
		}
	}
}

// TestTruncatedWindowWithTiersStillNotFresh pins the same gate when tiers
// ARE retaining the evicted history: the horizon is fully covered, but part
// of it only at bucket resolution — decimated percentiles must not steer
// placement either.
func TestTruncatedWindowWithTiersStillNotFresh(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{
		Store: telemetry.StoreConfig{SeriesCapacity: 64}, // default tiers
	})
	entity := telemetry.NodeEntity("n1")
	for i := 0; i < 1200; i++ {
		hub.Record(entity, "util", time.Duration(i)*3*time.Second, 0.5)
	}
	now := 1200 * 3 * time.Second
	st := Builder{Hub: hub, Horizon: time.Hour, MaxAge: 24 * time.Hour}.Stats(now, entity)
	if !st.Truncated || st.Fresh {
		t.Fatalf("tier-covered horizon must still demote: %+v", st)
	}
	// The cache keeps the verdict across reuse and revalidation rounds.
	c := NewCache()
	b := Builder{Hub: hub, Horizon: time.Hour, MaxAge: 24 * time.Hour, Cache: c}
	first := b.Stats(now, entity)
	// Same instant, same generation — the GL fan-out repeat-build case. (A
	// slid window whose left edge passes the first retained point forces a
	// revalidating miss instead; that conservatism is deliberate.)
	again := b.Stats(now, entity)
	if !first.Truncated || !again.Truncated || again.Fresh {
		t.Fatalf("cached truncation lost: %+v -> %+v", first, again)
	}
	hits, _ := c.Counters()
	if hits == 0 {
		t.Fatal("expected a cache hit")
	}
}
