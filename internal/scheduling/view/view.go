// Package view materializes capacity views — the enriched scheduling inputs
// of the two-level hierarchy. The paper concedes that GL summaries are "not
// sufficient to take exact dispatching decisions" (Section II-C); a capacity
// view narrows that gap by pairing each point-in-time snapshot
// (types.NodeStatus / types.GroupSummary) with windowed statistics drawn from
// the telemetry store: utilization percentiles over a configurable horizon, a
// load trend, and a staleness stamp. Policies consume the view and fall back
// to the bare snapshot whenever the history is too thin or too old to trust
// (Stats.Fresh == false), so a cold deployment schedules exactly like the
// pre-telemetry code path.
//
// The same Builder also unifies demand estimation: per-VM windows are
// reconstructed from the store's retained series and reduced with any
// resource.Estimator, replacing the GM's former ad-hoc per-caller history
// rings with the store's single retention path.
package view

import (
	"sync"
	"time"

	"snooze/internal/resource"
	"snooze/internal/telemetry"
	"snooze/internal/types"
)

// Builder defaults.
const (
	// DefaultHorizon is the history window feeding a view's statistics.
	DefaultHorizon = 5 * time.Minute
	// DefaultMinSamples is the minimum retained sample count for stats to be
	// considered fresh; thinner histories fall back to the snapshot.
	DefaultMinSamples = 5
	// DefaultMaxAge bounds the age of the newest sample for stats to be
	// considered fresh; staler series fall back to the snapshot.
	DefaultMaxAge = time.Minute
)

// Stats are windowed utilization statistics of one entity's "util" series
// (L∞ utilization in [0,1]), as recorded by the hierarchy's monitoring flow.
type Stats struct {
	// Samples is the number of retained samples inside the horizon.
	Samples int
	// P50, P95 and Max summarize the window's utilization distribution.
	P50, P95, Max float64
	// Trend is the least-squares utilization slope in 1/second; negative
	// means the load is falling.
	Trend float64
	// Age is now minus the newest sample's timestamp.
	Age time.Duration
	// Truncated reports that the statistics window reached into evicted
	// history: the store served part of it at downsampled tier resolution
	// (or not at all), so the percentiles describe a decimated sample set,
	// not the full horizon. Truncated stats are never Fresh.
	Truncated bool
	// Fresh reports whether the statistics are trustworthy: enough samples,
	// recent enough, and at full resolution (not Truncated). Policies must
	// fall back to the point-in-time snapshot when false.
	Fresh bool
	// Gen is the telemetry append generation of the series these statistics
	// were reduced from (0 with no history) — the evidence a decision trace
	// records to pin a choice to the exact view it was priced from.
	Gen uint64
}

// Node is the capacity view of one Local Controller: the monitored snapshot
// plus windowed statistics.
type Node struct {
	types.NodeStatus
	Stats Stats
}

// Util returns the node's instantaneous L∞ utilization.
func (n Node) Util() float64 {
	return n.Used.Divide(n.Spec.Capacity).NormInf()
}

// PredictedUtil is the utilization a scheduler should plan against: the p95
// of recent history when the view is fresh, never less than the
// instantaneous utilization. With thin or stale history it degrades to the
// snapshot's utilization.
func (n Node) PredictedUtil() float64 {
	u := n.Util()
	if n.Stats.Fresh && n.Stats.P95 > u {
		return n.Stats.P95
	}
	return u
}

// Group is the capacity view of one Group Manager: the (inexact) summary
// plus windowed statistics of the group's "util" series.
type Group struct {
	types.GroupSummary
	Stats Stats
}

// Util returns the group's instantaneous L∞ utilization.
func (g Group) Util() float64 {
	return g.Used.Divide(g.Total).NormInf()
}

// PredictedUtil mirrors Node.PredictedUtil at group granularity.
func (g Group) PredictedUtil() float64 {
	u := g.Util()
	if g.Stats.Fresh && g.Stats.P95 > u {
		return g.Stats.P95
	}
	return u
}

// WrapNodes lifts bare snapshots into views with no history (Stats zero, not
// fresh) — the graceful-fallback form used when no telemetry hub is wired.
func WrapNodes(sts []types.NodeStatus) []Node {
	out := make([]Node, len(sts))
	for i, st := range sts {
		out[i] = Node{NodeStatus: st}
	}
	return out
}

// WrapGroups lifts bare summaries into views with no history.
func WrapGroups(sums []types.GroupSummary) []Group {
	out := make([]Group, len(sums))
	for i, s := range sums {
		out[i] = Group{GroupSummary: s}
	}
	return out
}

// Builder materializes capacity views from a telemetry hub. The zero value
// (nil Hub) builds snapshot-only views, so callers need no special casing
// for unwired deployments.
type Builder struct {
	// Hub is the deployment's telemetry hub; nil disables history.
	Hub *telemetry.Hub
	// Horizon is the statistics window (DefaultHorizon when zero).
	Horizon time.Duration
	// MinSamples gates freshness (DefaultMinSamples when zero).
	MinSamples int
	// MaxAge gates freshness (DefaultMaxAge when zero).
	MaxAge time.Duration
	// Cache, when set, memoizes per-entity statistics keyed by the series'
	// append generation and reuses reduction/demand scratch buffers across
	// builds — the configuration long-lived schedulers (the hierarchy's
	// GL/GM) run with. Invalidation is automatic: any Append to the entity's
	// series changes its generation. Nil disables caching; every build then
	// reduces from the store directly.
	Cache *Cache
}

func (b Builder) horizon() time.Duration {
	if b.Horizon > 0 {
		return b.Horizon
	}
	return DefaultHorizon
}

func (b Builder) minSamples() int {
	if b.MinSamples > 0 {
		return b.MinSamples
	}
	return DefaultMinSamples
}

func (b Builder) maxAge() time.Duration {
	if b.MaxAge > 0 {
		return b.MaxAge
	}
	return DefaultMaxAge
}

// Node builds the capacity view of one node status at virtual time now.
func (b Builder) Node(now time.Duration, st types.NodeStatus) Node {
	return Node{NodeStatus: st, Stats: b.Stats(now, telemetry.NodeEntity(st.Spec.ID))}
}

// Nodes builds views for a node snapshot set.
func (b Builder) Nodes(now time.Duration, sts []types.NodeStatus) []Node {
	out := make([]Node, len(sts))
	for i, st := range sts {
		out[i] = b.Node(now, st)
	}
	return out
}

// Group builds the capacity view of one group summary at virtual time now.
func (b Builder) Group(now time.Duration, s types.GroupSummary) Group {
	return Group{GroupSummary: s, Stats: b.Stats(now, telemetry.GMEntity(s.GM))}
}

// Groups builds views for a summary set.
func (b Builder) Groups(now time.Duration, sums []types.GroupSummary) []Group {
	out := make([]Group, len(sums))
	for i, s := range sums {
		out[i] = b.Group(now, s)
	}
	return out
}

// specPool recycles reduction specs (and their scratch buffers) for cache-less
// builders, so even the uncached Stats path settles to zero steady-state
// allocations beyond the store's own work.
var specPool = sync.Pool{New: func() any {
	return &telemetry.SummarySpec{Percentiles: []float64{50, 95}, Trend: true}
}}

// Stats computes the windowed statistics of an entity's "util" series in a
// single store reduction (one pass, one sort for both percentiles) — or, with
// a Cache attached, a map lookup when the series generation is unchanged
// since the last build. With no hub or no retained samples it returns the
// zero Stats (not fresh).
func (b Builder) Stats(now time.Duration, entity string) Stats {
	if b.Hub == nil {
		return Stats{}
	}
	from := now - b.horizon()
	if from < 0 {
		from = 0
	}
	store := b.Hub.Store()
	if b.Cache != nil {
		return b.Cache.stats(b, store, now, from, entity)
	}
	spec := specPool.Get().(*telemetry.SummarySpec)
	defer specPool.Put(spec)
	sum, ok := store.Reduce(entity, "util", from, now, spec)
	if !ok {
		return Stats{}
	}
	st := Stats{
		Samples:   sum.Count,
		P50:       sum.Percentiles[0],
		P95:       sum.Percentiles[1],
		Max:       sum.Max,
		Trend:     sum.Trend,
		Age:       now - sum.LastAt,
		Truncated: sum.Truncated,
		Gen:       sum.Gen,
	}
	st.Fresh = st.Samples >= b.minSamples() && st.Age <= b.maxAge() && !st.Truncated
	return st
}

// DemandMetrics are the per-entity series jointly reconstructed by Demand,
// in the canonical ResourceVector component order.
var DemandMetrics = [4]string{"cpu.used", "mem.used", "net.rx", "net.tx"}

// Demand reconstructs a per-dimension utilization window for an entity from
// the store's retained series and reduces it with est — the store-backed
// replacement for the GM's former per-VM resource.History rings. The window
// is [now-Horizon, now], read at raw resolution only (Store.Window): demand
// estimators reduce real measurements, never retention-tier bucket averages.
// ok is false when no samples are retained (a caller should then fall back
// to the most recent measurement in hand).
func (b Builder) Demand(now time.Duration, entity string, est resource.Estimator) (types.ResourceVector, bool) {
	if b.Hub == nil || est == nil {
		return types.ResourceVector{}, false
	}
	from := now - b.horizon()
	if from < 0 {
		from = 0
	}
	store := b.Hub.Store()
	if b.Cache != nil {
		return b.Cache.demand(store, now, from, entity, est.Estimate)
	}
	var dims [4][]telemetry.Sample
	n := 0
	for d, metric := range DemandMetrics {
		dst := dims[d]
		store.Window(entity, metric, from, now, func(seg []telemetry.Sample) {
			dst = append(dst, seg...)
		})
		dims[d] = dst
		if len(dims[d]) > n {
			n = len(dims[d])
		}
	}
	if n == 0 {
		return types.ResourceVector{}, false
	}
	window := make([]types.ResourceVector, n)
	alignWindow(dims, window)
	return est.Estimate(window), true
}

// demandP95 is the estimator behind DemandP95 — shared so every consolidation
// path prices VMs identically.
var demandP95 = resource.Percentile{P: 95}

// DemandP95 reduces an entity's demand window with the p95 estimator — the
// single demand-extraction helper shared by the consolidation dry run
// (ConsolidationRequest demand=p95) and the online consolidation optimizer,
// so both price VMs from the same statistic over the same window.
func (b Builder) DemandP95(now time.Duration, entity string) (types.ResourceVector, bool) {
	return b.Demand(now, entity, demandP95)
}

// ConsolidationDemand prices one VM for consolidation packing: the p95 of
// its windowed demand series when history exists, else the most recent
// snapshot measurement, else the reservation — never raw points, and never
// zero for a running VM with a reservation. The online optimizer and the
// ConsolidationRequest demand=p95 dry run both price through this chain, so
// a dry-run plan predicts what the online service would execute.
func (b Builder) ConsolidationDemand(now time.Duration, vm types.VMStatus) types.ResourceVector {
	if d, ok := b.DemandP95(now, telemetry.VMEntity(vm.Spec.ID)); ok && !d.Zero() {
		return d
	}
	if !vm.Used.Zero() {
		return vm.Used
	}
	return vm.Spec.Requested
}

// alignWindow zips per-dimension sample windows into resource vectors. The
// hierarchy appends all four dims per report, so the windows align;
// tail-align defensively in case a dimension started recording later.
func alignWindow(dims [4][]telemetry.Sample, window []types.ResourceVector) {
	n := len(window)
	for i := 0; i < n; i++ {
		var c [4]float64
		for d := range dims {
			if j := len(dims[d]) - n + i; j >= 0 {
				c[d] = dims[d][j].Value
			}
		}
		window[i] = types.FromComponents(c)
	}
}
