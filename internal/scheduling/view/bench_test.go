package view

import (
	"fmt"
	"testing"
	"time"

	"snooze/internal/resource"
	"snooze/internal/telemetry"
	"snooze/internal/types"
)

// benchHub returns a hub whose store holds a full util history for n nodes,
// plus the matching point-in-time statuses — the GM-side placement input.
func benchHub(n, samples int) (*telemetry.Hub, []types.NodeStatus) {
	return benchHubWith(telemetry.Options{}, n, samples)
}

// benchHubExact is benchHub with the store pinned to the exact sort-based
// reference reduction instead of the sketch fast path.
func benchHubExact(n, samples int) (*telemetry.Hub, []types.NodeStatus) {
	return benchHubWith(telemetry.Options{Store: telemetry.StoreConfig{ExactReduce: true}}, n, samples)
}

func benchHubWith(opts telemetry.Options, n, samples int) (*telemetry.Hub, []types.NodeStatus) {
	hub := telemetry.NewHub(opts)
	sts := make([]types.NodeStatus, n)
	for i := 0; i < n; i++ {
		id := types.NodeID(fmt.Sprintf("n%03d", i))
		sts[i] = types.NodeStatus{
			Spec:     types.NodeSpec{ID: id, Capacity: types.RV(8, 16384, 1000, 1000)},
			Power:    types.PowerOn,
			Used:     types.RV(float64(i%8), float64(i%8)*2048, 0, 0),
			Reserved: types.RV(float64(i%8), float64(i%8)*2048, 0, 0),
		}
		entity := telemetry.NodeEntity(id)
		// Per-node base load with a small ripple, so the group spans calm
		// through hot nodes instead of every p95 saturating.
		for s := 0; s < samples; s++ {
			at := time.Duration(s) * 3 * time.Second
			hub.Record(entity, "util", at, (float64(i%10)+float64(s%10)/10)/12)
		}
	}
	return hub, sts
}

// BenchmarkCapacityViewBuild measures materializing per-node views (windowed
// p50/p95/max + trend over 100 samples) for a 64-LC group — the per-decision
// cost the GM pays on every placement. The builder is the hierarchy's real
// configuration: long-lived with a generation-keyed cache, so rebuilds
// between appends (dispatch fan-out, relocation scans) are map lookups.
func BenchmarkCapacityViewBuild(b *testing.B) {
	hub, sts := benchHub(64, 100)
	builder := Builder{Hub: hub, Horizon: 10 * time.Minute, MaxAge: 24 * time.Hour, Cache: NewCache()}
	now := 100 * 3 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		views := builder.Nodes(now, sts)
		if len(views) != len(sts) {
			b.Fatal("missing views")
		}
	}
}

// BenchmarkCapacityViewBuildUncached is the same build with no cache: every
// view pays one full store reduction (single pass, single sort) per node.
func BenchmarkCapacityViewBuildUncached(b *testing.B) {
	hub, sts := benchHub(64, 100)
	builder := Builder{Hub: hub, Horizon: 10 * time.Minute, MaxAge: 24 * time.Hour}
	now := 100 * 3 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		views := builder.Nodes(now, sts)
		if len(views) != len(sts) {
			b.Fatal("missing views")
		}
	}
}

// BenchmarkCapacityViewBuildUncachedExact is the uncached build against a
// store in exact-reduce reference mode: every windowed quantile pays the
// sort-based reduction instead of answering from the per-series sketch — the
// before/after for the sketch-backed statistics plane.
func BenchmarkCapacityViewBuildUncachedExact(b *testing.B) {
	hub, sts := benchHubExact(64, 100)
	builder := Builder{Hub: hub, Horizon: 10 * time.Minute, MaxAge: 24 * time.Hour}
	now := 100 * 3 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		views := builder.Nodes(now, sts)
		if len(views) != len(sts) {
			b.Fatal("missing views")
		}
	}
}

// BenchmarkCapacityViewBuildInvalidated interleaves appends with builds: each
// round one node reports a fresh sample (invalidating exactly its entry), so
// a 64-node build is 1 reduction + 63 cache hits — the steady monitoring-
// ingest pattern a running GM sees.
func BenchmarkCapacityViewBuildInvalidated(b *testing.B) {
	hub, sts := benchHub(64, 100)
	builder := Builder{Hub: hub, Horizon: 10 * time.Minute, MaxAge: 24 * time.Hour, Cache: NewCache()}
	base := 100 * 3 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := base + time.Duration(i)*time.Millisecond
		entity := telemetry.NodeEntity(sts[i%len(sts)].Spec.ID)
		hub.Record(entity, "util", now, 0.5)
		views := builder.Nodes(now, sts)
		if len(views) != len(sts) {
			b.Fatal("missing views")
		}
	}
}

// BenchmarkCapacityViewPolicy measures the full placement hot path: build
// views for a 64-LC group and run the percentile-fit evaluation loop over
// them (the policy itself lives in package scheduling; the evaluation here
// replicates its per-node predicate to keep the packages decoupled).
func BenchmarkCapacityViewPolicy(b *testing.B) {
	hub, sts := benchHub(64, 100)
	builder := Builder{Hub: hub, Horizon: 10 * time.Minute, MaxAge: 24 * time.Hour, Cache: NewCache()}
	now := 100 * 3 * time.Second
	vm := types.RV(2, 4096, 10, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		views := builder.Nodes(now, sts)
		picked := false
		for _, v := range views {
			demand := vm.Divide(v.Spec.Capacity).NormInf()
			if vm.FitsIn(v.FreeReserved()) && v.PredictedUtil()+demand <= 0.9 {
				picked = true
			}
		}
		if !picked {
			b.Fatal("no candidate")
		}
	}
}

// BenchmarkDemandEstimate measures per-VM demand reconstruction (four
// aligned dimension windows reduced by an estimator) through the cache's
// reusable scratch — the per-VM cost of a GM relocation scan.
func BenchmarkDemandEstimate(b *testing.B) {
	hub := telemetry.NewHub(telemetry.Options{})
	entity := telemetry.VMEntity("v1")
	vm := types.VMStatus{Spec: types.VMSpec{ID: "v1"}}
	for i := 0; i < 100; i++ {
		vm.Used = types.RV(float64(i%8), float64(i%8)*512, 10, 10)
		hub.RecordVM(time.Duration(i)*3*time.Second, vm)
	}
	builder := Builder{Hub: hub, Horizon: 10 * time.Minute, Cache: NewCache()}
	now := 100 * 3 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := builder.Demand(now, entity, resource.MaxWindow{}); !ok {
			b.Fatal("no estimate")
		}
	}
}
