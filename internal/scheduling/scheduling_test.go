package scheduling

import (
	"testing"

	"snooze/internal/scheduling/view"
	"snooze/internal/types"
)

// gm and node build snapshot-only capacity views (no history → not fresh),
// the fallback form every policy must handle.
func gm(id string, usedCPU, totalCPU float64, lcs int) view.Group {
	return view.Group{GroupSummary: types.GroupSummary{
		GM:        types.GroupManagerID(id),
		Used:      types.RV(usedCPU, usedCPU*1024, 0, 0),
		Reserved:  types.RV(usedCPU, usedCPU*1024, 0, 0),
		Total:     types.RV(totalCPU, totalCPU*1024, 0, 0),
		ActiveLCs: lcs,
	}}
}

func node(id string, resCPU, capCPU float64) view.Node {
	return view.Node{NodeStatus: types.NodeStatus{
		Spec:     types.NodeSpec{ID: types.NodeID(id), Capacity: types.RV(capCPU, capCPU*2048, 0, 0)},
		Power:    types.PowerOn,
		Used:     types.RV(resCPU, resCPU*2048, 0, 0),
		Reserved: types.RV(resCPU, resCPU*2048, 0, 0),
	}}
}

func vmSpec(cpu float64) types.VMSpec {
	return types.VMSpec{ID: "vm", Requested: types.RV(cpu, cpu*1024, 0, 0)}
}

func TestRoundRobinDispatchCycles(t *testing.T) {
	p := &RoundRobinDispatch{}
	sums := []view.Group{gm("gm1", 0, 16, 2), gm("gm2", 0, 16, 2), gm("gm3", 0, 16, 2)}
	vm := vmSpec(1)
	first := p.Candidates(vm, sums, nil)
	second := p.Candidates(vm, sums, nil)
	third := p.Candidates(vm, sums, nil)
	if first[0] != "gm1" || second[0] != "gm2" || third[0] != "gm3" {
		t.Fatalf("heads: %v %v %v", first[0], second[0], third[0])
	}
	if len(first) != 3 {
		t.Fatalf("all feasible GMs should be listed: %v", first)
	}
	fourth := p.Candidates(vm, sums, nil)
	if fourth[0] != "gm1" {
		t.Fatalf("wrap-around: %v", fourth[0])
	}
}

func TestDispatchFiltersInfeasible(t *testing.T) {
	sums := []view.Group{
		gm("full", 16, 16, 2),
		gm("empty-lcs", 0, 16, 0), // no LCs at all
		gm("roomy", 2, 16, 2),
	}
	vm := vmSpec(4)
	for _, p := range []DispatchPolicy{&RoundRobinDispatch{}, LeastLoadedDispatch{}, MostLoadedDispatch{}} {
		got := p.Candidates(vm, sums, nil)
		if len(got) != 1 || got[0] != "roomy" {
			t.Errorf("%s: %v", p.Name(), got)
		}
	}
}

func TestDispatchCountsAsleepLCs(t *testing.T) {
	// A GM whose LCs are all asleep still has wakeable capacity.
	s := gm("sleepy", 0, 16, 0)
	s.AsleepLCs = 2
	got := LeastLoadedDispatch{}.Candidates(vmSpec(1), []view.Group{s}, nil)
	if len(got) != 1 {
		t.Fatalf("asleep capacity ignored: %v", got)
	}
}

func TestLeastLoadedDispatchOrder(t *testing.T) {
	sums := []view.Group{gm("busy", 12, 16, 2), gm("idle", 0, 16, 2), gm("half", 8, 16, 2)}
	got := LeastLoadedDispatch{}.Candidates(vmSpec(1), sums, nil)
	if len(got) != 3 || got[0] != "idle" || got[1] != "half" || got[2] != "busy" {
		t.Fatalf("order: %v", got)
	}
}

func TestMostLoadedDispatchOrder(t *testing.T) {
	sums := []view.Group{gm("busy", 12, 16, 2), gm("idle", 0, 16, 2), gm("half", 8, 16, 2)}
	got := MostLoadedDispatch{}.Candidates(vmSpec(1), sums, nil)
	if len(got) != 3 || got[0] != "busy" || got[2] != "idle" {
		t.Fatalf("order: %v", got)
	}
}

func TestFirstFit(t *testing.T) {
	nodes := []view.Node{node("n3", 0, 8), node("n1", 7, 8), node("n2", 0, 8)}
	id, ok := FirstFit{}.Place(vmSpec(2), nodes, nil)
	if !ok || id != "n2" {
		t.Fatalf("first-fit: %v %v", id, ok)
	}
	// Nothing fits.
	if _, ok := (FirstFit{}).Place(vmSpec(100), nodes, nil); ok {
		t.Fatal("oversized VM placed")
	}
}

func TestPlacementSkipsUnavailableNodes(t *testing.T) {
	off := node("n1", 0, 8)
	off.Power = types.PowerSuspended
	nodes := []view.Node{off, node("n2", 0, 8)}
	for _, p := range []PlacementPolicy{FirstFit{}, BestFit{}, WorstFit{}, &RoundRobinPlacement{}} {
		id, ok := p.Place(vmSpec(1), nodes, nil)
		if !ok || id != "n2" {
			t.Errorf("%s chose %v (ok=%v)", p.Name(), id, ok)
		}
	}
}

func TestBestFitTightest(t *testing.T) {
	nodes := []view.Node{node("n1", 1, 8), node("n2", 5, 8), node("n3", 7, 8)}
	id, ok := BestFit{}.Place(vmSpec(1), nodes, nil)
	if !ok || id != "n3" {
		t.Fatalf("best-fit: %v", id)
	}
}

func TestWorstFitEmptiest(t *testing.T) {
	nodes := []view.Node{node("n1", 1, 8), node("n2", 5, 8), node("n3", 7, 8)}
	id, ok := WorstFit{}.Place(vmSpec(1), nodes, nil)
	if !ok || id != "n1" {
		t.Fatalf("worst-fit: %v", id)
	}
}

func TestRoundRobinPlacementCycles(t *testing.T) {
	p := &RoundRobinPlacement{}
	nodes := []view.Node{node("n1", 0, 8), node("n2", 0, 8), node("n3", 0, 8)}
	a, _ := p.Place(vmSpec(1), nodes, nil)
	b, _ := p.Place(vmSpec(1), nodes, nil)
	c, _ := p.Place(vmSpec(1), nodes, nil)
	d, _ := p.Place(vmSpec(1), nodes, nil)
	if a != "n1" || b != "n2" || c != "n3" || d != "n1" {
		t.Fatalf("cycle: %v %v %v %v", a, b, c, d)
	}
	// Skips full nodes.
	nodes[0] = node("n1", 8, 8)
	e, ok := p.Place(vmSpec(1), nodes, nil)
	if !ok || e == "n1" {
		t.Fatalf("rr skipped full node: %v %v", e, ok)
	}
}

func TestThresholdsClassify(t *testing.T) {
	th := DefaultThresholds()
	over := node("n1", 7.5, 8) // 93.75% > 90%
	over.VMs = []types.VMID{"v"}
	if o, u := th.Classify(over.NodeStatus); !o || u {
		t.Fatalf("overload: %v %v", o, u)
	}
	under := node("n2", 1, 8) // 12.5% < 20%
	under.VMs = []types.VMID{"v"}
	if o, u := th.Classify(under.NodeStatus); o || !u {
		t.Fatalf("underload: %v %v", o, u)
	}
	mid := node("n3", 4, 8)
	mid.VMs = []types.VMID{"v"}
	if o, u := th.Classify(mid.NodeStatus); o || u {
		t.Fatalf("moderate: %v %v", o, u)
	}
	// Empty node is not "underloaded" (it is idle — energy manager's job).
	empty := node("n4", 0, 8)
	if o, u := th.Classify(empty.NodeStatus); o || u {
		t.Fatalf("empty: %v %v", o, u)
	}
	// Non-running node is never anomalous.
	susp := node("n5", 7.5, 8)
	susp.Power = types.PowerSuspended
	if o, u := th.Classify(susp.NodeStatus); o || u {
		t.Fatalf("suspended: %v %v", o, u)
	}
}

func vmStatus(id string, cpu float64, state types.VMState) types.VMStatus {
	return types.VMStatus{
		Spec:  types.VMSpec{ID: types.VMID(id), Requested: types.RV(cpu, cpu*1024, 0, 0)},
		State: state,
		Used:  types.RV(cpu, cpu*1024, 0, 0),
	}
}

func TestOverloadRelocationMovesEnough(t *testing.T) {
	src := node("hot", 8, 8)
	src.VMs = []types.VMID{"a", "b", "c"}
	vms := []types.VMStatus{
		vmStatus("a", 4, types.VMRunning),
		vmStatus("b", 2, types.VMRunning),
		vmStatus("c", 2, types.VMRunning),
	}
	others := []view.Node{node("cool", 1, 8), node("warm", 4, 8)}
	moves := OverloadRelocation{}.Relocate(src, vms, others, nil)
	if len(moves) == 0 {
		t.Fatal("no moves for overloaded node")
	}
	// Largest VM first, to the least loaded receiver.
	if moves[0].VM != "a" || moves[0].To != "cool" {
		t.Fatalf("first move: %+v", moves[0])
	}
	// Moving "a" (4 CPU) brings the node to 4/8 = 50% <= 90%: one move is
	// enough.
	if len(moves) != 1 {
		t.Fatalf("moves: %+v", moves)
	}
}

func TestOverloadRelocationRespectsReceiverThreshold(t *testing.T) {
	src := node("hot", 8, 8)
	vms := []types.VMStatus{vmStatus("a", 4, types.VMRunning)}
	// Receiver has room by reservation but would exceed 90% measured.
	crowded := node("crowded", 5, 8)
	moves := OverloadRelocation{}.Relocate(src, vms, []view.Node{crowded}, nil)
	if len(moves) != 0 {
		t.Fatalf("moved into a would-be-overloaded receiver: %+v", moves)
	}
}

func TestOverloadRelocationSkipsNonRunning(t *testing.T) {
	src := node("hot", 8, 8)
	vms := []types.VMStatus{vmStatus("a", 6, types.VMMigrating), vmStatus("b", 1, types.VMRunning)}
	others := []view.Node{node("cool", 0, 8)}
	moves := OverloadRelocation{}.Relocate(src, vms, others, nil)
	for _, m := range moves {
		if m.VM == "a" {
			t.Fatal("migrating VM selected for relocation")
		}
	}
}

func TestUnderloadRelocationDrainsFully(t *testing.T) {
	src := node("cold", 1, 8)
	src.VMs = []types.VMID{"a", "b"}
	vms := []types.VMStatus{vmStatus("a", 0.5, types.VMRunning), vmStatus("b", 0.5, types.VMRunning)}
	others := []view.Node{node("mid", 4, 8), node("empty", 0, 8)}
	moves := UnderloadRelocation{}.Relocate(src, vms, others, nil)
	if len(moves) != 2 {
		t.Fatalf("moves: %+v", moves)
	}
	// Prefers the moderately loaded receiver over the empty one.
	for _, m := range moves {
		if m.To != "mid" {
			t.Fatalf("move went to %s, want mid", m.To)
		}
	}
}

func TestUnderloadRelocationAllOrNothing(t *testing.T) {
	src := node("cold", 1, 8)
	vms := []types.VMStatus{vmStatus("a", 0.5, types.VMRunning), vmStatus("big", 6, types.VMRunning)}
	// Receiver can hold "a" but not "big".
	others := []view.Node{node("mid", 4, 8)}
	moves := UnderloadRelocation{}.Relocate(src, vms, others, nil)
	if moves != nil {
		t.Fatalf("partial drain returned: %+v", moves)
	}
}

func TestUnderloadRelocationRefusesBootingVM(t *testing.T) {
	src := node("cold", 1, 8)
	vms := []types.VMStatus{vmStatus("a", 0.5, types.VMBooting)}
	others := []view.Node{node("mid", 0, 8)}
	if moves := (UnderloadRelocation{}).Relocate(src, vms, others, nil); moves != nil {
		t.Fatalf("drained a booting VM: %+v", moves)
	}
}

func TestRelocationExcludesSourceAndInactive(t *testing.T) {
	src := node("hot", 8, 8)
	vms := []types.VMStatus{vmStatus("a", 4, types.VMRunning)}
	susp := node("susp", 0, 8)
	susp.Power = types.PowerSuspended
	others := []view.Node{src, susp}
	if moves := (OverloadRelocation{}).Relocate(src, vms, others, nil); len(moves) != 0 {
		t.Fatalf("relocated to source/suspended node: %+v", moves)
	}
}

func TestPolicyRegistries(t *testing.T) {
	for _, n := range []string{"round-robin", "least-loaded", "most-loaded", ""} {
		if p, err := NewDispatchPolicy(n); err != nil || p == nil {
			t.Errorf("dispatch %q: %v", n, err)
		}
	}
	if _, err := NewDispatchPolicy("bogus"); err == nil {
		t.Error("bogus dispatch accepted")
	}
	for _, n := range []string{"first-fit", "best-fit", "worst-fit", "round-robin", ""} {
		if p, err := NewPlacementPolicy(n); err != nil || p == nil {
			t.Errorf("placement %q: %v", n, err)
		}
	}
	if _, err := NewPlacementPolicy("bogus"); err == nil {
		t.Error("bogus placement accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]bool{}
	for _, n := range []string{
		(&RoundRobinDispatch{}).Name(), LeastLoadedDispatch{}.Name(), MostLoadedDispatch{}.Name(),
		FirstFit{}.Name(), BestFit{}.Name(), WorstFit{}.Name(), (&RoundRobinPlacement{}).Name(),
		OverloadRelocation{}.Name(), UnderloadRelocation{}.Name(),
	} {
		if n == "" {
			t.Fatal("empty policy name")
		}
		names[n] = true
	}
	if len(names) < 8 { // round-robin appears twice (dispatch+placement)
		t.Fatalf("names not distinct enough: %v", names)
	}
}
