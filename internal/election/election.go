// Package election implements the leader-election recipe the Snooze Group
// Managers run to designate the Group Leader (Section II-D): "when a GM first
// attempts to join the system, a leader election algorithm is triggered ...
// built on top of the Apache ZooKeeper highly available and reliable
// coordination system. If a leader exists, the GM joins it and starts sending
// GM heartbeats. Otherwise, it becomes the new GL".
//
// The recipe is the standard ZooKeeper ephemeral-sequential election: each
// candidate creates an ephemeral sequence znode under the election path; the
// candidate owning the lowest sequence is the leader; every other candidate
// watches only its immediate predecessor, so a leader crash wakes exactly one
// candidate (no herd effect) and GM crashes that are not the leader cause no
// election activity at all.
package election

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"snooze/internal/coord"
	"snooze/internal/simkernel"
)

// State is a candidate's view of the election.
type State int

// Election states.
const (
	// StateIdle means the candidate has not joined (or has resigned).
	StateIdle State = iota
	// StateFollower means another candidate currently leads.
	StateFollower
	// StateLeader means this candidate is the leader.
	StateLeader
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateFollower:
		return "follower"
	case StateLeader:
		return "leader"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Listener is notified on every state change. leaderID is the identity
// payload of the current leader ("" while unknown).
type Listener func(st State, leaderID string)

// Candidate participates in one election.
type Candidate struct {
	svc      *coord.Service
	rt       simkernel.Runtime
	base     string
	id       string
	ttl      time.Duration
	listener Listener

	mu       sync.Mutex
	sess     *coord.Session
	ownPath  string // full path of our election znode
	state    State
	leaderID string
	pinger   *simkernel.Ticker
	resigned bool
}

// Config parameterizes NewCandidate.
type Config struct {
	// Base is the election root path, e.g. "/snooze/election".
	Base string
	// ID is the candidate's identity payload (the GM's address).
	ID string
	// SessionTTL bounds failure-detection latency: a crashed candidate's
	// znode disappears after at most this long.
	SessionTTL time.Duration
	// Listener receives state transitions (may be nil).
	Listener Listener
}

// NewCandidate creates a candidate; call Join to enter the election.
func NewCandidate(svc *coord.Service, rt simkernel.Runtime, cfg Config) *Candidate {
	return &Candidate{
		svc:      svc,
		rt:       rt,
		base:     strings.TrimSuffix(cfg.Base, "/"),
		id:       cfg.ID,
		ttl:      cfg.SessionTTL,
		listener: cfg.Listener,
	}
}

// State returns the candidate's current view.
func (c *Candidate) State() (State, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state, c.leaderID
}

// ID returns the candidate's identity payload.
func (c *Candidate) ID() string { return c.id }

// Join enters the election: opens a session, creates the ephemeral sequence
// node and evaluates leadership. Safe to call again after Resign or session
// expiry.
func (c *Candidate) Join() error {
	c.mu.Lock()
	if c.sess != nil && !c.sess.Expired() {
		c.mu.Unlock()
		return errors.New("election: already joined")
	}
	c.resigned = false
	if err := c.svc.EnsurePath(c.base); err != nil {
		c.mu.Unlock()
		return err
	}
	sess := c.svc.NewSession(c.ttl, func() { c.onSessionExpired() })
	c.sess = sess
	own, err := c.svc.Create(sess, c.base+"/n-", []byte(c.id), coord.FlagEphemeral|coord.FlagSequential)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.ownPath = own
	// Keep the session alive at TTL/3, the usual ZK client cadence.
	if c.ttl > 0 {
		c.pinger = simkernel.NewTicker(c.rt, c.ttl/3, func() { _ = sess.Ping() })
		c.pinger.Start()
	}
	c.mu.Unlock()
	c.evaluate()
	return nil
}

// Abandon simulates a crash: the candidate stops keeping its session alive
// WITHOUT closing it, so peers only notice when the session TTL expires —
// exactly the failure-detection path the paper relies on ("when a GL fails,
// its heartbeats are lost and the leader election procedure is restarted").
func (c *Candidate) Abandon() {
	c.mu.Lock()
	c.resigned = true
	if c.pinger != nil {
		c.pinger.Stop()
		c.pinger = nil
	}
	c.mu.Unlock()
}

// Resign leaves the election, releasing leadership if held.
func (c *Candidate) Resign() {
	c.mu.Lock()
	c.resigned = true
	sess := c.sess
	if c.pinger != nil {
		c.pinger.Stop()
		c.pinger = nil
	}
	c.mu.Unlock()
	if sess != nil {
		sess.Close() // triggers onSessionExpired → StateIdle
	}
}

func (c *Candidate) onSessionExpired() {
	c.mu.Lock()
	c.sess = nil
	c.ownPath = ""
	if c.pinger != nil {
		c.pinger.Stop()
		c.pinger = nil
	}
	changed := c.state != StateIdle
	c.state = StateIdle
	c.leaderID = ""
	l := c.listener
	c.mu.Unlock()
	if changed && l != nil {
		l(StateIdle, "")
	}
}

// evaluate inspects the candidate list and either assumes leadership or
// watches the immediate predecessor.
func (c *Candidate) evaluate() {
	c.mu.Lock()
	if c.resigned || c.sess == nil || c.sess.Expired() {
		c.mu.Unlock()
		return
	}
	own := path.Base(c.ownPath)
	sess := c.sess
	c.mu.Unlock()

	kids, err := c.svc.Children(sess, c.base, nil)
	if err != nil {
		return
	}
	sort.Strings(kids)
	idx := -1
	for i, k := range kids {
		if k == own {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Our node is gone (session raced expiry); the expiry callback
		// handles the transition.
		return
	}
	if idx == 0 {
		c.transition(StateLeader, c.id)
		return
	}
	// Follower: learn the leader's ID, watch our immediate predecessor for
	// succession and the head for leader-identity changes. Predecessor
	// watching keeps non-leader crashes herd-free; the head watch only
	// fires on actual leader turnover, which is inherently global.
	leaderData, err := c.svc.Get(c.base + "/" + kids[0])
	leaderID := ""
	if err == nil {
		leaderID = string(leaderData)
	}
	pred := c.base + "/" + kids[idx-1]
	exists, err := c.svc.Exists(sess, pred, func(coord.Event) { c.evaluate() })
	if err == nil && !exists {
		// Predecessor vanished between listing and watching: re-evaluate.
		c.rt.After(0, c.evaluate)
		return
	}
	if idx > 1 { // for idx==1 the predecessor IS the head
		head := c.base + "/" + kids[0]
		exists, err = c.svc.Exists(sess, head, func(coord.Event) { c.evaluate() })
		if err == nil && !exists {
			c.rt.After(0, c.evaluate)
			return
		}
	}
	c.transition(StateFollower, leaderID)
}

func (c *Candidate) transition(st State, leaderID string) {
	c.mu.Lock()
	if c.state == st && c.leaderID == leaderID {
		c.mu.Unlock()
		return
	}
	c.state = st
	c.leaderID = leaderID
	l := c.listener
	c.mu.Unlock()
	if l != nil {
		l(st, leaderID)
	}
}

// ---------------------------------------------------------------------------
// Observers (Entry Points)
// ---------------------------------------------------------------------------

// CurrentLeader returns the ID payload of the current leader of the election
// at base, or "" if no candidate is enrolled. Entry Points use this to
// answer client GL-discovery queries.
func CurrentLeader(svc *coord.Service, base string) string {
	kids, err := svc.Children(nil, base, nil)
	if err != nil || len(kids) == 0 {
		return ""
	}
	sort.Strings(kids)
	data, err := svc.Get(strings.TrimSuffix(base, "/") + "/" + kids[0])
	if err != nil {
		return ""
	}
	return string(data)
}
