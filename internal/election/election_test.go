package election

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"snooze/internal/coord"
	"snooze/internal/simkernel"
)

const ttl = 100 * time.Millisecond

type harness struct {
	k   *simkernel.Kernel
	svc *coord.Service
}

func newHarness() *harness {
	k := simkernel.New(1)
	return &harness{k: k, svc: coord.NewService(k)}
}

func (h *harness) candidate(id string, l Listener) *Candidate {
	return NewCandidate(h.svc, h.k, Config{Base: "/el", ID: id, SessionTTL: ttl, Listener: l})
}

func (h *harness) settle() { h.k.Run(h.k.Now() + time.Second) }

func TestFirstCandidateBecomesLeader(t *testing.T) {
	h := newHarness()
	c := h.candidate("gm1", nil)
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	h.settle()
	st, leader := c.State()
	if st != StateLeader || leader != "gm1" {
		t.Fatalf("state=%v leader=%q", st, leader)
	}
}

func TestSecondCandidateFollows(t *testing.T) {
	h := newHarness()
	c1, c2 := h.candidate("gm1", nil), h.candidate("gm2", nil)
	c1.Join()
	h.settle()
	c2.Join()
	h.settle()
	if st, _ := c1.State(); st != StateLeader {
		t.Fatalf("c1 state=%v", st)
	}
	st, leader := c2.State()
	if st != StateFollower || leader != "gm1" {
		t.Fatalf("c2 state=%v leader=%q", st, leader)
	}
}

func TestFailoverToNextCandidate(t *testing.T) {
	h := newHarness()
	var events []string
	var mu sync.Mutex
	listen := func(name string) Listener {
		return func(st State, leader string) {
			mu.Lock()
			events = append(events, fmt.Sprintf("%s:%v:%s", name, st, leader))
			mu.Unlock()
		}
	}
	c1, c2, c3 := h.candidate("gm1", listen("c1")), h.candidate("gm2", listen("c2")), h.candidate("gm3", listen("c3"))
	c1.Join()
	h.settle()
	c2.Join()
	h.settle()
	c3.Join()
	h.settle()
	// Crash the leader: resign closes the session like a crash would.
	c1.Resign()
	h.settle()
	if st, _ := c2.State(); st != StateLeader {
		t.Fatalf("c2 should lead, state=%v", st)
	}
	st, leader := c3.State()
	if st != StateFollower || leader != "gm2" {
		t.Fatalf("c3 state=%v leader=%q", st, leader)
	}
	if st, _ := c1.State(); st != StateIdle {
		t.Fatalf("c1 state=%v", st)
	}
}

func TestCrashByMissedPings(t *testing.T) {
	h := newHarness()
	c1, c2 := h.candidate("gm1", nil), h.candidate("gm2", nil)
	c1.Join()
	h.settle()
	c2.Join()
	h.settle()
	// Simulate a GL crash: stop c1's pinger without a graceful close.
	c1.mu.Lock()
	c1.pinger.Stop()
	c1.mu.Unlock()
	h.k.Run(h.k.Now() + 10*ttl)
	if st, _ := c2.State(); st != StateLeader {
		t.Fatalf("c2 should take over after leader session expiry, state=%v", st)
	}
	if st, _ := c1.State(); st != StateIdle {
		t.Fatalf("crashed leader state=%v", st)
	}
}

func TestMiddleFollowerCrashDoesNotChangeLeader(t *testing.T) {
	h := newHarness()
	c1, c2, c3 := h.candidate("gm1", nil), h.candidate("gm2", nil), h.candidate("gm3", nil)
	for _, c := range []*Candidate{c1, c2, c3} {
		c.Join()
		h.settle()
	}
	c2.Resign()
	h.settle()
	if st, _ := c1.State(); st != StateLeader {
		t.Fatalf("c1 state=%v", st)
	}
	st, leader := c3.State()
	if st != StateFollower || leader != "gm1" {
		t.Fatalf("c3 state=%v leader=%q", st, leader)
	}
}

func TestRejoinAfterResign(t *testing.T) {
	h := newHarness()
	c1, c2 := h.candidate("gm1", nil), h.candidate("gm2", nil)
	c1.Join()
	h.settle()
	c2.Join()
	h.settle()
	c1.Resign()
	h.settle()
	// c1 rejoins as a follower of the new leader c2.
	if err := c1.Join(); err != nil {
		t.Fatal(err)
	}
	h.settle()
	st, leader := c1.State()
	if st != StateFollower || leader != "gm2" {
		t.Fatalf("rejoined c1 state=%v leader=%q", st, leader)
	}
}

func TestDoubleJoinRejected(t *testing.T) {
	h := newHarness()
	c := h.candidate("gm1", nil)
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(); err == nil {
		t.Fatal("second Join should fail while session alive")
	}
}

func TestExactlyOneLeaderProperty(t *testing.T) {
	h := newHarness()
	const n = 10
	cands := make([]*Candidate, n)
	for i := range cands {
		cands[i] = h.candidate(fmt.Sprintf("gm%02d", i), nil)
		cands[i].Join()
		h.k.Run(h.k.Now() + 10*time.Millisecond)
	}
	h.settle()
	countLeaders := func() (leaders int, ids []string) {
		for _, c := range cands {
			st, l := c.State()
			if st == StateLeader {
				leaders++
			}
			if st != StateIdle {
				ids = append(ids, l)
			}
		}
		return
	}
	// Crash leaders one after another; after every settle there must be
	// exactly one leader among the living and all followers must agree.
	for round := 0; round < n-1; round++ {
		leaders, ids := countLeaders()
		if leaders != 1 {
			t.Fatalf("round %d: %d leaders", round, leaders)
		}
		for _, id := range ids {
			if id != ids[0] {
				t.Fatalf("round %d: leader disagreement %v", round, ids)
			}
		}
		// Kill the current leader.
		for _, c := range cands {
			if st, _ := c.State(); st == StateLeader {
				c.Resign()
				break
			}
		}
		h.settle()
	}
}

func TestCurrentLeaderObserver(t *testing.T) {
	h := newHarness()
	if got := CurrentLeader(h.svc, "/el"); got != "" {
		t.Fatalf("empty election leader: %q", got)
	}
	c1 := h.candidate("gm1", nil)
	c1.Join()
	h.settle()
	if got := CurrentLeader(h.svc, "/el"); got != "gm1" {
		t.Fatalf("leader: %q", got)
	}
	c2 := h.candidate("gm2", nil)
	c2.Join()
	h.settle()
	c1.Resign()
	h.settle()
	if got := CurrentLeader(h.svc, "/el"); got != "gm2" {
		t.Fatalf("leader after failover: %q", got)
	}
}

func TestListenerSequence(t *testing.T) {
	h := newHarness()
	var seq []State
	c := h.candidate("gm1", func(st State, _ string) { seq = append(seq, st) })
	c.Join()
	h.settle()
	c.Resign()
	h.settle()
	if len(seq) != 2 || seq[0] != StateLeader || seq[1] != StateIdle {
		t.Fatalf("listener sequence: %v", seq)
	}
}

func TestStateString(t *testing.T) {
	if StateIdle.String() != "idle" || StateFollower.String() != "follower" || StateLeader.String() != "leader" {
		t.Fatal("state strings")
	}
}
